(* The Prognosis command-line interface: learn models of the bundled
   protocol implementations, compare them, run the nondeterminism
   check, synthesize register machines and check temporal properties —
   the same analyses the paper's evaluation performs (§6). *)

open Cmdliner
module Mealy = Prognosis_automata.Mealy
module Learn = Prognosis_learner.Learn
open Prognosis

let profile_of_name name =
  match Prognosis_quic.Quic_profile.find name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown profile %S (available: %s)" name
           (String.concat ", "
              (List.map
                 (fun p -> p.Prognosis_quic.Quic_profile.name)
                 Prognosis_quic.Quic_profile.all)))

(* --- common options --- *)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let verbose =
  let doc = "Log learning progress to stderr." in
  Term.(const setup_logs $ Arg.(value & flag & info [ "verbose"; "v" ] ~doc))

let seed =
  let doc = "Seed for every pseudo-random choice (fully reproducible runs)." in
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"N" ~doc)

let algorithm =
  let doc = "Learning algorithm: $(b,ttt) or $(b,lstar)." in
  let algo_conv = Arg.enum [ ("ttt", Learn.Ttt_tree); ("lstar", Learn.L_star) ] in
  Arg.(value & opt algo_conv Learn.Ttt_tree & info [ "algorithm" ] ~docv:"ALGO" ~doc)

let protocol =
  let doc = "Protocol to analyze: $(b,tcp), $(b,quic) or $(b,dtls)." in
  Arg.(value
       & opt (enum [ ("tcp", `Tcp); ("quic", `Quic); ("dtls", `Dtls) ]) `Tcp
       & info [ "protocol" ] ~docv:"PROTO" ~doc)

let profile_arg =
  let doc = "QUIC server profile (quiche-like, google-like, mvfst-like, strict-retry, ncid-buggy)." in
  Arg.(value & opt string "quiche-like" & info [ "profile" ] ~docv:"NAME" ~doc)

let dot_out =
  let doc = "Write a Graphviz rendering of the learned model to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1

(* --- learn --- *)

let do_learn () protocol profile_name seed algorithm workers batch parallel
    replicas dot_out save_out trace_out metrics_out =
  (* Any exec-related flag routes membership queries through the
     query-execution engine; plain invocations keep the historical
     sequential path. *)
  let exec =
    if workers > 1 || batch || parallel || replicas > 1 then
      Some
        {
          Prognosis_exec.Engine.default with
          Prognosis_exec.Engine.workers;
          batch;
          parallel;
          replicas;
        }
    else None
  in
  (* Telemetry: zero the process-wide registry so the metrics snapshot
     describes exactly this run, and tee spans into a JSONL file when
     asked (docs/OBSERVABILITY.md documents both formats). *)
  Prognosis_obs.Metrics.reset Prognosis_obs.Metrics.default;
  (match trace_out with
  | None -> ()
  | Some path -> (
      try Prognosis_obs.Trace.set_sink (Prognosis_obs.Trace.Sink.jsonl_file path)
      with Sys_error msg -> or_die (Error ("cannot open trace file: " ^ msg))));
  let finally () =
    if trace_out <> None then Prognosis_obs.Trace.unset_sink ()
  in
  let report, dot, save =
    try
      match protocol with
    | `Tcp ->
        let r = Tcp_study.learn ~seed ~algorithm ?exec () in
        ( r.Tcp_study.report,
          Tcp_study.model_dot r.Tcp_study.model,
          fun path -> Persist.save ~path Persist.Tcp_model r.Tcp_study.model )
    | `Quic ->
        let profile = or_die (profile_of_name profile_name) in
        let r = Quic_study.learn ~seed ~algorithm ?exec ~profile () in
        ( r.Quic_study.report,
          Quic_study.model_dot r.Quic_study.model,
          fun path -> Persist.save ~path Persist.Quic_model r.Quic_study.model )
    | `Dtls ->
        let r = Dtls_study.learn ~seed ~algorithm ?exec () in
        ( r.Dtls_study.report,
          Dtls_study.model_dot r.Dtls_study.model,
          fun path -> Persist.save ~path Persist.Dtls_model r.Dtls_study.model )
    with
    | Invalid_argument msg when String.length msg >= 5 && String.sub msg 0 5 = "Cache"
      ->
        or_die
          (Error
             ("the implementation answered the same query differently across \
               runs — learning pauses, as in the paper's nondeterminism check \
               (§5). Investigate with `prognosis nondet`. Detail: " ^ msg))
    | Prognosis_sul.Nondet.Nondeterministic_sul msg ->
        or_die
          (Error
             ("nondeterministic implementation: " ^ msg
            ^ ". Investigate with `prognosis nondet`."))
  in
  finally ();
  Format.printf "%a@." Report.pp report;
  Format.printf "traces of length <= 10 over this alphabet: %d@."
    (Report.trace_count report ~max_len:10);
  (match report.Report.exec with
  | None -> ()
  | Some e ->
      let n k =
        match Prognosis_obs.Jsonx.member k e with
        | Some v -> Option.value ~default:0 (Prognosis_obs.Jsonx.to_int_opt v)
        | None -> 0
      in
      Format.printf
        "exec: %d workers, %d runs (%d resumed), %d resets / %d steps (saved \
         %d resets / %d steps vs no-reuse sequential)@."
        (n "workers") (n "runs") (n "resumed_runs") (n "resets") (n "steps")
        (n "saved_resets") (n "saved_steps");
      if n "quarantines" > 0 then
        Format.printf "exec: %d worker quarantine(s), %d disagreement(s)@."
          (n "quarantines") (n "disagreements"));
  (match trace_out with
  | None -> ()
  | Some path -> Format.printf "trace written to %s@." path);
  (match metrics_out with
  | None -> ()
  | Some path ->
      let oc =
        try open_out path
        with Sys_error msg -> or_die (Error ("cannot open metrics file: " ^ msg))
      in
      output_string oc
        (Report.to_json_string ~metrics:Prognosis_obs.Metrics.default report);
      output_char oc '\n';
      close_out oc;
      Format.printf "metrics written to %s@." path);
  (match dot_out with
  | None -> ()
  | Some path ->
      Prognosis_analysis.Visualize.write_file ~path dot;
      Format.printf "model written to %s@." path);
  match save_out with
  | None -> ()
  | Some path ->
      save path;
      Format.printf "model saved to %s (reload with `prognosis replay`)@." path

let save_out =
  let doc = "Persist the learned model to $(docv) for later replay." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let trace_out =
  let doc =
    "Write a JSONL span trace of the run (learner rounds, membership \
     queries, network fault events) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Write the machine-readable report with a metrics snapshot (query-latency \
     histogram quantiles, cache hit rate, fault counters) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let workers_arg =
  let doc =
    "Size of the query-execution worker pool: $(docv) independent SUL \
     instances answer membership queries (with per-worker resume across \
     shared prefixes). 1 keeps the sequential oracle unless another exec \
     flag is given."
  in
  Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)

let batch_arg =
  let doc =
    "Let equivalence oracles submit whole query batches to the engine, \
     which dedups them and answers prefix-subsumed words from a single \
     longer run."
  in
  Arg.(value & flag & info [ "batch" ] ~doc)

let parallel_arg =
  let doc =
    "Execute batched runs in parallel, one domain per worker (in-process \
     substrates only; ignored while --trace is active)."
  in
  Arg.(value & flag & info [ "parallel" ] ~doc)

let replicas_arg =
  let doc =
    "Cross-validate every SUL run on $(docv) distinct workers, majority \
     vote on disagreement, quarantining workers that keep losing votes."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"R" ~doc)

let learn_cmd =
  let doc = "Learn a Mealy-machine model of a protocol implementation." in
  Cmd.v
    (Cmd.info "learn" ~doc)
    Term.(
      const do_learn $ verbose $ protocol $ profile_arg $ seed $ algorithm
      $ workers_arg $ batch_arg $ parallel_arg $ replicas_arg $ dot_out
      $ save_out $ trace_out $ metrics_out)

(* --- compare --- *)

let do_compare () profile_a profile_b seed dot_out =
  let pa = or_die (profile_of_name profile_a) in
  let pb = or_die (profile_of_name profile_b) in
  let summary = Quic_study.compare_profiles ~seed pa pb in
  Format.printf "%a@."
    (Prognosis_analysis.Model_diff.pp_summary
       ~input_pp:Quic_study.Alphabet.pp
       ~output_pp:Quic_study.Alphabet.pp_output)
    summary;
  match dot_out with
  | None -> ()
  | Some path ->
      let a = Quic_study.learn ~seed ~profile:pa () in
      let b = Quic_study.learn ~seed:(Int64.add seed 31L) ~profile:pb () in
      let dot =
        Prognosis_analysis.Visualize.diff_dot
          ~input_pp:Quic_study.Alphabet.pp
          ~output_pp:Quic_study.Alphabet.pp_output a.Quic_study.model
          b.Quic_study.model
      in
      Prognosis_analysis.Visualize.write_file ~path dot;
      Format.printf "diff written to %s@." path

let compare_cmd =
  let doc = "Learn two QUIC profiles and compare their models." in
  let profile_b =
    Arg.(value & opt string "strict-retry"
         & info [ "against" ] ~docv:"NAME" ~doc:"Second profile.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(const do_compare $ verbose $ profile_arg $ profile_b $ seed $ dot_out)

(* --- nondet --- *)

let do_nondet () profile_name seed runs =
  let profile = or_die (profile_of_name profile_name) in
  let rate = Quic_study.close_reset_rate ~seed ~runs profile in
  Format.printf
    "profile %s: %.1f%% of post-close probes answered with a Stateless Reset \
     (%d runs)@."
    profile_name (100.0 *. rate) runs;
  if rate > 0.01 && rate < 0.99 then
    Format.printf
      "NONDETERMINISTIC reset behaviour: inconsistent RESET policy with no \
       back-off (the paper's Issue 2, a DoS vector).@."
  else Format.printf "consistent reset policy.@."

let nondet_cmd =
  let doc = "Measure post-close Stateless Reset behaviour (Issue 2)." in
  let runs =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Probe count.")
  in
  Cmd.v (Cmd.info "nondet" ~doc) Term.(const do_nondet $ verbose $ profile_arg $ seed $ runs)

(* --- synthesize --- *)

let do_synthesize () protocol profile_name seed =
  match protocol with
  | `Dtls ->
      or_die (Error "register synthesis is available for tcp and quic targets")
  | `Tcp -> begin
      let r = Tcp_study.learn ~seed () in
      let words =
        Prognosis_tcp.Tcp_alphabet.
          [ [ Syn; Ack; Ack_psh; Ack_psh ]; [ Syn; Ack_psh; Fin_ack ]; [ Syn; Ack; Fin_ack; Ack ] ]
      in
      match Tcp_study.synthesize r words with
      | Error e -> or_die (Error e)
      | Ok machine ->
          print_string
            (Prognosis_synthesis.Ext_mealy.to_dot
               ~input_pp:(fun fmt s ->
                 Format.pp_print_string fmt (Prognosis_tcp.Tcp_alphabet.to_string s))
               ~output_pp:(fun fmt o ->
                 Format.pp_print_string fmt
                   (Prognosis_tcp.Tcp_alphabet.output_to_string o))
               ~names_in:Tcp_study.input_field_names
               ~names_out:Tcp_study.output_field_names machine)
    end
  | `Quic -> begin
      let profile = or_die (profile_of_name profile_name) in
      let r = Quic_study.learn ~seed ~profile () in
      let words =
        Quic_study.Alphabet.
          [
            [ Initial_crypto; Initial_crypto; Handshake_ack_crypto; Short_ack_stream ];
            [
              Initial_crypto;
              Initial_crypto;
              Handshake_ack_crypto;
              Short_ack_stream;
              Short_ack_flow;
            ];
          ]
      in
      match Quic_study.synthesize_sdb r words with
      | Error e -> or_die (Error e)
      | Ok machine -> (
          match Quic_study.sdb_verdict machine with
          | `Constant c ->
              Format.printf
                "STREAM_DATA_BLOCKED Maximum Stream Data is the CONSTANT %d — \
                 the paper's Issue 4 when 0.@."
                c
          | `Symbolic ->
              Format.printf
                "STREAM_DATA_BLOCKED Maximum Stream Data tracks the blocked \
                 offset (compliant).@."
          | `Unobserved ->
              Format.printf "no STREAM_DATA_BLOCKED frames observed.@.")
    end

let synthesize_cmd =
  let doc = "Synthesize a register-extended model from Oracle-Table traces." in
  Cmd.v
    (Cmd.info "synthesize" ~doc)
    Term.(const do_synthesize $ verbose $ protocol $ profile_arg $ seed)

(* --- check --- *)

let do_check () profile_name seed =
  let profile = or_die (profile_of_name profile_name) in
  let r = Quic_study.learn ~seed ~profile () in
  let module Safety = Prognosis_analysis.Safety in
  (* Model-level property: once the server answered with
     CONNECTION_CLOSE, it never sends application data again. *)
  let has_close (out : Quic_study.Alphabet.output) =
    List.exists
      (fun (a : Quic_study.Alphabet.apacket) ->
        List.mem Prognosis_quic.Frame.K_connection_close a.Quic_study.Alphabet.frames)
      out
  in
  let has_stream (out : Quic_study.Alphabet.output) =
    List.exists
      (fun (a : Quic_study.Alphabet.apacket) ->
        List.mem Prognosis_quic.Frame.K_stream a.Quic_study.Alphabet.frames)
      out
  in
  let prop =
    Safety.after_always "no stream data after CONNECTION_CLOSE"
      ~trigger:(fun (_, o) -> has_close o)
      ~then_:(fun (_, o) -> not (has_stream o))
  in
  (match Safety.check prop r.Quic_study.model with
  | None -> Format.printf "[ok]   %s@." (Safety.name prop)
  | Some word ->
      Format.printf "[FAIL] %s; witness: %s@." (Safety.name prop)
        (String.concat " " (List.map Quic_study.Alphabet.to_string word)));
  (* Concrete-trace properties. *)
  let words =
    Quic_study.Alphabet.
      [ [ Initial_crypto; Initial_crypto; Handshake_ack_crypto; Short_ack_stream ] ]
  in
  let pns = Quic_study.packet_number_sequences r words in
  List.iter
    (fun seq ->
      match Safety.strictly_increasing seq with
      | Safety.Holds -> Format.printf "[ok]   packet numbers always increasing@."
      | Safety.Violated _ as v ->
          Format.printf "[FAIL] packet numbers: %a@." Safety.pp_verdict v)
    pns;
  let ncids =
    Prognosis_quic.Quic_client.ncid_sequence_numbers r.Quic_study.client
  in
  if ncids <> [] then
    match Safety.increases_by ~stride:1 ncids with
    | Safety.Holds ->
        Format.printf "[ok]   connection-id sequence numbers increase by 1@."
    | Safety.Violated _ as v ->
        Format.printf "[FAIL] connection-id sequence numbers: %a@."
          Safety.pp_verdict v

let check_cmd =
  let doc = "Check temporal and numeric properties of a QUIC profile." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const do_check $ verbose $ profile_arg $ seed)

(* --- difftest --- *)

let do_difftest () profile_a profile_b seed =
  let pa = or_die (profile_of_name profile_a) in
  let pb = or_die (profile_of_name profile_b) in
  let model_a = (Quic_study.learn ~seed ~profile:pa ()).Quic_study.model in
  let sul_b =
    Prognosis_quic.Quic_adapter.sul ~profile:pb ~seed:(Int64.add seed 31L) ()
  in
  let module Diff_test = Prognosis_analysis.Diff_test in
  Format.printf
    "model of %s drives %d conformance tests against a live %s instance@."
    profile_a
    (Diff_test.suite_size model_a)
    profile_b;
  match Diff_test.model_guided ~max_mismatches:5 ~model:model_a sul_b with
  | [] -> Format.printf "no behavioural differences found.@."
  | mismatches ->
      Format.printf "%d mismatching test cases (showing replayable witnesses):@."
        (List.length mismatches);
      List.iter
        (fun m ->
          Format.printf "  on: %s@."
            (String.concat " "
               (List.map Quic_study.Alphabet.to_string m.Diff_test.word));
          Format.printf "    %-12s: %s@." profile_a
            (String.concat " "
               (List.map Quic_study.Alphabet.output_to_string m.Diff_test.outputs_a));
          Format.printf "    %-12s: %s@." profile_b
            (String.concat " "
               (List.map Quic_study.Alphabet.output_to_string m.Diff_test.outputs_b)))
        mismatches

let difftest_cmd =
  let doc =
    "Model-guided differential testing: a learned model of one QUIC profile \
     generates a conformance suite executed against another (paper §7)."
  in
  let profile_b =
    Arg.(value & opt string "strict-retry"
         & info [ "against" ] ~docv:"NAME" ~doc:"Implementation under test.")
  in
  Cmd.v
    (Cmd.info "difftest" ~doc)
    Term.(const do_difftest $ verbose $ profile_arg $ profile_b $ seed)

(* --- render --- *)

let do_render () seed dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name dot =
    let path = Filename.concat dir name in
    Prognosis_analysis.Visualize.write_file ~path dot;
    Format.printf "%s@." path
  in
  write "tcp_model.dot" (Tcp_study.model_dot (Tcp_study.learn ~seed ()).Tcp_study.model);
  List.iter
    (fun profile ->
      let r = Quic_study.learn ~seed ~profile () in
      write
        (Printf.sprintf "quic_%s.dot"
           (String.map
              (fun c -> if c = '-' then '_' else c)
              profile.Prognosis_quic.Quic_profile.name))
        (Quic_study.model_dot r.Quic_study.model))
    Prognosis_quic.Quic_profile.
      [ quiche_like; google_like; strict_retry ];
  write "dtls_model.dot" (Dtls_study.model_dot (Dtls_study.learn ~seed ()).Dtls_study.model)

let render_cmd =
  let doc = "Render every learned model to Graphviz files (paper App. A figures)." in
  let dir =
    Arg.(value & opt string "figures" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v (Cmd.info "render" ~doc) Term.(const do_render $ verbose $ seed $ dir)

(* --- replay --- *)

let parse_word all to_string tokens =
  List.map
    (fun token ->
      match Array.to_list all |> List.find_opt (fun s -> to_string s = token) with
      | Some s -> s
      | None ->
          or_die
            (Error
               (Printf.sprintf "unknown symbol %S (known: %s)" token
                  (String.concat ", "
                     (Array.to_list (Array.map to_string all))))))
    tokens

let do_replay () protocol model_path word =
  let tokens =
    String.split_on_char ' ' word |> List.filter (fun t -> t <> "")
  in
  if tokens = [] then or_die (Error "empty word; pass --word \"SYM SYM ...\"");
  match protocol with
  | `Tcp ->
      let model = or_die (Persist.load_tcp ~path:model_path) in
      let module A = Prognosis_tcp.Tcp_alphabet in
      let input = parse_word A.all A.to_string tokens in
      List.iter2
        (fun i o ->
          Format.printf "%-28s -> %s@." (A.to_string i) (A.output_to_string o))
        input (Mealy.run model input)
  | `Quic ->
      let model = or_die (Persist.load_quic ~path:model_path) in
      let module A = Prognosis_quic.Quic_alphabet in
      let input = parse_word A.extended A.to_string tokens in
      List.iter2
        (fun i o ->
          Format.printf "%-42s -> %s@." (A.to_string i) (A.output_to_string o))
        input (Mealy.run model input)
  | `Dtls ->
      let model = or_die (Persist.load_dtls ~path:model_path) in
      let module A = Prognosis_dtls.Dtls_alphabet in
      let input = parse_word A.all A.to_string tokens in
      List.iter2
        (fun i o ->
          Format.printf "%-24s -> %s@." (A.to_string i) (A.output_to_string o))
        input (Mealy.run model input)

let replay_cmd =
  let doc =
    "Replay an abstract input word through a previously saved model (no live \
     implementation needed)."
  in
  let model_path =
    Arg.(required & opt (some string) None
         & info [ "model" ] ~docv:"FILE" ~doc:"Model file from `learn --save`.")
  in
  let word =
    Arg.(required & opt (some string) None
         & info [ "word" ] ~docv:"SYMS" ~doc:"Space-separated abstract symbols.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(const do_replay $ verbose $ protocol $ model_path $ word)

let main =
  let doc = "closed-box learning and analysis of protocol implementations" in
  Cmd.group
    (Cmd.info "prognosis" ~version:"1.0.0" ~doc)
    [
      learn_cmd; compare_cmd; nondet_cmd; synthesize_cmd; check_cmd; difftest_cmd;
      render_cmd; replay_cmd;
    ]

let () = exit (Cmd.eval main)
