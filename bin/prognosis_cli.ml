(* The Prognosis command-line interface: learn models of the bundled
   protocol implementations, compare them, run the nondeterminism
   check, synthesize register machines and check temporal properties —
   the same analyses the paper's evaluation performs (§6). *)

open Cmdliner
module Mealy = Prognosis_automata.Mealy
module Learn = Prognosis_learner.Learn
open Prognosis

let profile_of_name = Prognosis_service.Subject.profile_of_name

(* --- common options --- *)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let verbose =
  let doc = "Log learning progress to stderr." in
  Term.(const setup_logs $ Arg.(value & flag & info [ "verbose"; "v" ] ~doc))

let seed =
  let doc = "Seed for every pseudo-random choice (fully reproducible runs)." in
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"N" ~doc)

let algorithm =
  let doc = "Learning algorithm: $(b,ttt) or $(b,lstar)." in
  let algo_conv = Arg.enum [ ("ttt", Learn.Ttt_tree); ("lstar", Learn.L_star) ] in
  Arg.(value & opt algo_conv Learn.Ttt_tree & info [ "algorithm" ] ~docv:"ALGO" ~doc)

let protocol =
  let doc = "Protocol to analyze: $(b,tcp), $(b,quic) or $(b,dtls)." in
  Arg.(value
       & opt (enum [ ("tcp", `Tcp); ("quic", `Quic); ("dtls", `Dtls) ]) `Tcp
       & info [ "protocol" ] ~docv:"PROTO" ~doc)

let profile_arg =
  let doc = "QUIC server profile (quiche-like, google-like, mvfst-like, strict-retry, ncid-buggy)." in
  Arg.(value & opt string "quiche-like" & info [ "profile" ] ~docv:"NAME" ~doc)

let dot_out =
  let doc = "Write a Graphviz rendering of the learned model to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1

(* --- learn (and resume) --- *)

let or_die_load r = or_die (Result.map_error Persist.load_error_to_string r)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Ok
        (Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> really_input_string ic (in_channel_length ic)))

let algo_name = function Learn.Ttt_tree -> "ttt" | Learn.L_star -> "lstar"
let algo_of_name = function "lstar" -> Learn.L_star | _ -> Learn.Ttt_tree

let exec_of_flags ~workers ~batch ~parallel ~replicas =
  (* Any exec-related flag routes membership queries through the
     query-execution engine; plain invocations keep the historical
     sequential path. *)
  if workers > 1 || batch || parallel || replicas > 1 then
    Some
      {
        Prognosis_exec.Engine.default with
        Prognosis_exec.Engine.workers;
        batch;
        parallel;
        replicas;
      }
  else None

(* The checkpoint directory carries a manifest describing the run it
   belongs to, so `prognosis resume` needs nothing but the directory:
   the protocol, profile, seed and exec flags all come back from it. *)

type manifest = {
  m_protocol : [ `Tcp | `Quic | `Dtls ];
  m_profile : string;
  m_seed : int64;
  m_algorithm : Learn.algorithm;
  m_workers : int;
  m_batch : bool;
  m_parallel : bool;
  m_replicas : int;
  m_every : int;
}

let manifest_path dir = Filename.concat dir "manifest.json"

let write_manifest ~dir m =
  let module J = Prognosis_obs.Jsonx in
  let proto =
    match m.m_protocol with `Tcp -> "tcp" | `Quic -> "quic" | `Dtls -> "dtls"
  in
  let json =
    J.Obj
      [
        ("schema", J.String "prognosis.checkpoint-manifest/1");
        ("protocol", J.String proto);
        ("profile", J.String m.m_profile);
        ("seed", J.String (Int64.to_string m.m_seed));
        ("algorithm", J.String (algo_name m.m_algorithm));
        ("workers", J.Int m.m_workers);
        ("batch", J.Bool m.m_batch);
        ("parallel", J.Bool m.m_parallel);
        ("replicas", J.Int m.m_replicas);
        ("every", J.Int m.m_every);
      ]
  in
  mkdir_p dir;
  let path = manifest_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let read_manifest dir =
  let module J = Prognosis_obs.Jsonx in
  let path = manifest_path dir in
  match read_file path with
  | Error msg -> Error ("no checkpoint manifest: " ^ msg)
  | Ok text -> (
      match J.of_string_opt text with
      | None -> Error (path ^ ": malformed manifest")
      | Some j -> (
          let str k = Option.bind (J.member k j) J.to_string_opt in
          let num k = Option.bind (J.member k j) J.to_int_opt in
          let flag k = match J.member k j with Some (J.Bool b) -> b | _ -> false in
          let protocol =
            match str "protocol" with
            | Some "tcp" -> Ok `Tcp
            | Some "quic" -> Ok `Quic
            | Some "dtls" -> Ok `Dtls
            | Some p -> Error (path ^ ": unknown protocol " ^ p)
            | None -> Error (path ^ ": missing protocol")
          in
          match (protocol, Option.bind (str "seed") Int64.of_string_opt) with
          | Error e, _ -> Error e
          | Ok _, None -> Error (path ^ ": missing or malformed seed")
          | Ok m_protocol, Some m_seed ->
              Ok
                {
                  m_protocol;
                  m_profile = Option.value ~default:"quiche-like" (str "profile");
                  m_seed;
                  m_algorithm =
                    algo_of_name (Option.value ~default:"ttt" (str "algorithm"));
                  m_workers = Option.value ~default:1 (num "workers");
                  m_batch = flag "batch";
                  m_parallel = flag "parallel";
                  m_replicas = Option.value ~default:1 (num "replicas");
                  m_every = Option.value ~default:500 (num "every");
                }))

let run_learn ~protocol ~profile_name ~seed ~algorithm ~exec ~checkpoint
    ~dot_out ~save_out ~text_out ~trace_out ~metrics_out ~flight_out
    ~openmetrics_out =
  (* Telemetry: zero the process-wide registry so the metrics snapshot
     describes exactly this run, and tee spans into a JSONL file and/or
     a flight-recorder ring when asked (docs/OBSERVABILITY.md documents
     the formats). *)
  Prognosis_obs.Metrics.reset Prognosis_obs.Metrics.default;
  let tracing = trace_out <> None || flight_out <> None in
  (match (trace_out, flight_out) with
  | None, None -> ()
  | trace_out, flight_out ->
      let file_sink =
        Option.map
          (fun path ->
            try Prognosis_obs.Trace.Sink.jsonl_file path
            with Sys_error msg ->
              or_die (Error ("cannot open trace file: " ^ msg)))
          trace_out
      in
      let ring_sink =
        Option.map
          (fun path ->
            (* the ring dumps at every process exit — normal, exit 3 on
               budget exhaustion, or SIGTERM/SIGINT — so a killed run
               still leaves its last events behind *)
            let ring = Prognosis_obs.Ring.create () in
            Prognosis_obs.Ring.install_flight ~path ring;
            Prognosis_obs.Ring.sink ring)
          flight_out
      in
      let sink =
        match (file_sink, ring_sink) with
        | Some f, Some r -> Prognosis_obs.Trace.Sink.tee f r
        | Some f, None -> f
        | None, Some r -> r
        | None, None -> assert false
      in
      Prognosis_obs.Trace.set_sink sink);
  let report, dot, save, save_text =
    Fun.protect
      ~finally:(fun () -> if tracing then Prognosis_obs.Trace.unset_sink ())
      (fun () ->
        try
          match protocol with
          | `Tcp ->
              let module A = Prognosis_tcp.Tcp_alphabet in
              let r = Tcp_study.learn ~seed ~algorithm ?exec ?checkpoint () in
              ( r.Tcp_study.report,
                Tcp_study.model_dot r.Tcp_study.model,
                (fun path ->
                  Persist.save ~path Persist.Tcp_model r.Tcp_study.model),
                fun path ->
                  Persist.save_text ~path Persist.Tcp_model
                    ~input_to_string:A.to_string
                    ~output_to_string:A.output_to_string r.Tcp_study.model )
          | `Quic ->
              let module A = Prognosis_quic.Quic_alphabet in
              let profile = or_die (profile_of_name profile_name) in
              let r =
                Quic_study.learn ~seed ~algorithm ?exec ?checkpoint ~profile ()
              in
              ( r.Quic_study.report,
                Quic_study.model_dot r.Quic_study.model,
                (fun path ->
                  Persist.save ~path Persist.Quic_model r.Quic_study.model),
                fun path ->
                  Persist.save_text ~path Persist.Quic_model
                    ~input_to_string:A.to_string
                    ~output_to_string:A.output_to_string r.Quic_study.model )
          | `Dtls ->
              let module A = Prognosis_dtls.Dtls_alphabet in
              let r = Dtls_study.learn ~seed ~algorithm ?exec ?checkpoint () in
              ( r.Dtls_study.report,
                Dtls_study.model_dot r.Dtls_study.model,
                (fun path ->
                  Persist.save ~path Persist.Dtls_model r.Dtls_study.model),
                fun path ->
                  Persist.save_text ~path Persist.Dtls_model
                    ~input_to_string:A.to_string
                    ~output_to_string:A.output_to_string r.Dtls_study.model )
        with
        | Invalid_argument msg
          when String.length msg >= 5 && String.sub msg 0 5 = "Cache" ->
            or_die
              (Error
                 ("the implementation answered the same query differently \
                   across runs — learning pauses, as in the paper's \
                   nondeterminism check (§5). Investigate with `prognosis \
                   nondet`. Detail: " ^ msg))
        | Prognosis_sul.Nondet.Nondeterministic_sul msg ->
            or_die
              (Error
                 ("nondeterministic implementation: " ^ msg
                ^ ". Investigate with `prognosis nondet`.")))
  in
  Format.printf "%a@." Report.pp report;
  Format.printf "traces of length <= 10 over this alphabet: %d@."
    (Report.trace_count report ~max_len:10);
  (match report.Report.exec with
  | None -> ()
  | Some e ->
      let n k =
        match Prognosis_obs.Jsonx.member k e with
        | Some v -> Option.value ~default:0 (Prognosis_obs.Jsonx.to_int_opt v)
        | None -> 0
      in
      Format.printf
        "exec: %d workers, %d runs (%d resumed), %d resets / %d steps (saved \
         %d resets / %d steps vs no-reuse sequential)@."
        (n "workers") (n "runs") (n "resumed_runs") (n "resets") (n "steps")
        (n "saved_resets") (n "saved_steps");
      if n "quarantines" > 0 then
        Format.printf "exec: %d worker quarantine(s), %d disagreement(s)@."
          (n "quarantines") (n "disagreements"));
  (match trace_out with
  | None -> ()
  | Some path -> Format.printf "trace written to %s@." path);
  (match flight_out with
  | None -> ()
  | Some path -> Format.printf "flight recorder armed (dumps to %s)@." path);
  (match metrics_out with
  | None -> ()
  | Some path ->
      (try
         Prognosis_obs.Atomic_file.write ~path
           (Report.to_json_string ~metrics:Prognosis_obs.Metrics.default report
           ^ "\n")
       with Sys_error msg ->
         or_die (Error ("cannot write metrics file: " ^ msg)));
      Format.printf "metrics written to %s@." path);
  (match openmetrics_out with
  | None -> ()
  | Some path ->
      (try Prognosis_obs.Openmetrics.write_file Prognosis_obs.Metrics.default path
       with Sys_error msg ->
         or_die (Error ("cannot write openmetrics file: " ^ msg)));
      Format.printf "openmetrics written to %s@." path);
  (match dot_out with
  | None -> ()
  | Some path ->
      Prognosis_analysis.Visualize.write_file ~path dot;
      Format.printf "model written to %s@." path);
  (match save_out with
  | None -> ()
  | Some path ->
      save path;
      Format.printf "model saved to %s (reload with `prognosis replay`)@." path);
  match text_out with
  | None -> ()
  | Some path ->
      save_text path;
      Format.printf "canonical model written to %s@." path

let do_learn () protocol profile_name seed algorithm workers batch parallel
    replicas dot_out save_out text_out trace_out metrics_out flight_out
    openmetrics_out checkpoint_dir checkpoint_every query_budget resume =
  let exec = exec_of_flags ~workers ~batch ~parallel ~replicas in
  if Option.is_some query_budget && Option.is_none checkpoint_dir then
    or_die (Error "--query-budget needs --checkpoint DIR");
  if resume && Option.is_none checkpoint_dir then
    or_die (Error "--resume needs --checkpoint DIR");
  let checkpoint =
    Option.map
      (fun dir ->
        Prognosis_learner.Checkpoint.spec ~every:checkpoint_every
          ?budget:query_budget ~resume ~dir ())
      checkpoint_dir
  in
  Option.iter
    (fun dir ->
      write_manifest ~dir
        {
          m_protocol = protocol;
          m_profile = profile_name;
          m_seed = seed;
          m_algorithm = algorithm;
          m_workers = workers;
          m_batch = batch;
          m_parallel = parallel;
          m_replicas = replicas;
          m_every = checkpoint_every;
        })
    checkpoint_dir;
  match
    run_learn ~protocol ~profile_name ~seed ~algorithm ~exec ~checkpoint
      ~dot_out ~save_out ~text_out ~trace_out ~metrics_out ~flight_out
      ~openmetrics_out
  with
  | () -> ()
  | exception Prognosis_learner.Checkpoint.Budget_exhausted { queries; path } ->
      Format.eprintf "interrupted: query budget reached after %d SUL queries@."
        queries;
      Format.eprintf "checkpoint saved to %s@." path;
      Format.eprintf "resume with: prognosis resume --checkpoint %s@."
        (Option.value ~default:(Filename.dirname path) checkpoint_dir);
      exit 3

let save_out =
  let doc = "Persist the learned model to $(docv) for later replay." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let text_out =
  let doc =
    "Write the canonical $(b,prognosis.model/1) text serialization of the \
     learned model to $(docv) (portable, diffable; the format the golden \
     regression gate compares)."
  in
  Arg.(value & opt (some string) None & info [ "save-text" ] ~docv:"FILE" ~doc)

let checkpoint_dir_arg =
  let doc =
    "Snapshot the run's query cache into $(docv) so a crashed or aborted run \
     can be resumed (see `prognosis resume`)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let checkpoint_every_arg =
  let doc = "SUL queries between periodic checkpoint snapshots." in
  Arg.(value & opt int 500 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let query_budget_arg =
  let doc =
    "Abort the run (exit 3) after $(docv) cumulative SUL queries, snapshotting \
     first — a controlled crash for testing resume. Needs --checkpoint."
  in
  Arg.(value & opt (some int) None & info [ "query-budget" ] ~docv:"N" ~doc)

let resume_flag =
  let doc = "Pre-warm the query cache from the checkpoint before learning." in
  Arg.(value & flag & info [ "resume" ] ~doc)

let trace_out =
  let doc =
    "Write a JSONL span trace of the run (learner rounds, membership \
     queries, network fault events) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Write the machine-readable report with a metrics snapshot (query-latency \
     histogram quantiles, cache hit rate, fault counters) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let flight_out =
  let doc =
    "Arm the flight recorder: keep the most recent trace events in a bounded \
     in-memory ring and dump them to $(docv) when the process exits — \
     normally, on a --query-budget abort, or on SIGTERM/SIGINT — so a \
     crashed or killed run keeps its last moments. Enables tracing (like \
     --trace, --parallel batches fall back to sequential)."
  in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)

let openmetrics_out =
  let doc =
    "Export the end-of-run metrics snapshot in OpenMetrics / Prometheus text \
     format to $(docv) (per-worker and per-study labelled series included)."
  in
  Arg.(value & opt (some string) None & info [ "openmetrics" ] ~docv:"FILE" ~doc)

let workers_arg =
  let doc =
    "Size of the query-execution worker pool: $(docv) independent SUL \
     instances answer membership queries (with per-worker resume across \
     shared prefixes). 1 keeps the sequential oracle unless another exec \
     flag is given."
  in
  Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)

let batch_arg =
  let doc =
    "Let equivalence oracles submit whole query batches to the engine, \
     which dedups them and answers prefix-subsumed words from a single \
     longer run."
  in
  Arg.(value & flag & info [ "batch" ] ~doc)

let parallel_arg =
  let doc =
    "Execute batched runs in parallel, one domain per worker (in-process \
     substrates only; ignored while --trace is active)."
  in
  Arg.(value & flag & info [ "parallel" ] ~doc)

let replicas_arg =
  let doc =
    "Cross-validate every SUL run on $(docv) distinct workers, majority \
     vote on disagreement, quarantining workers that keep losing votes."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"R" ~doc)

let learn_cmd =
  let doc = "Learn a Mealy-machine model of a protocol implementation." in
  Cmd.v
    (Cmd.info "learn" ~doc)
    Term.(
      const do_learn $ verbose $ protocol $ profile_arg $ seed $ algorithm
      $ workers_arg $ batch_arg $ parallel_arg $ replicas_arg $ dot_out
      $ save_out $ text_out $ trace_out $ metrics_out $ flight_out
      $ openmetrics_out $ checkpoint_dir_arg $ checkpoint_every_arg
      $ query_budget_arg $ resume_flag)

(* --- resume --- *)

let do_resume () dir query_budget dot_out save_out text_out trace_out
    metrics_out flight_out openmetrics_out =
  let m = or_die (read_manifest dir) in
  let exec =
    exec_of_flags ~workers:m.m_workers ~batch:m.m_batch ~parallel:m.m_parallel
      ~replicas:m.m_replicas
  in
  let checkpoint =
    Some
      (Prognosis_learner.Checkpoint.spec ~every:m.m_every ?budget:query_budget
         ~resume:true ~dir ())
  in
  match
    run_learn ~protocol:m.m_protocol ~profile_name:m.m_profile ~seed:m.m_seed
      ~algorithm:m.m_algorithm ~exec ~checkpoint ~dot_out ~save_out ~text_out
      ~trace_out ~metrics_out ~flight_out ~openmetrics_out
  with
  | () -> ()
  | exception Prognosis_learner.Checkpoint.Budget_exhausted { queries; path } ->
      Format.eprintf "interrupted: query budget reached after %d SUL queries@."
        queries;
      Format.eprintf "checkpoint saved to %s@." path;
      Format.eprintf "resume with: prognosis resume --checkpoint %s@." dir;
      exit 3

let resume_cmd =
  let doc =
    "Resume an interrupted learning run from its checkpoint directory. The \
     protocol, profile, seed and exec flags are read back from the \
     directory's manifest; the query cache is pre-warmed from the last \
     snapshot, so every pre-crash query is answered without touching the \
     implementation."
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:"Checkpoint directory from `learn --checkpoint`.")
  in
  Cmd.v
    (Cmd.info "resume" ~doc)
    Term.(
      const do_resume $ verbose $ dir $ query_budget_arg $ dot_out $ save_out
      $ text_out $ trace_out $ metrics_out $ flight_out $ openmetrics_out)

(* --- compare --- *)

let do_compare () profile_a profile_b seed dot_out =
  let pa = or_die (profile_of_name profile_a) in
  let pb = or_die (profile_of_name profile_b) in
  let summary = Quic_study.compare_profiles ~seed pa pb in
  Format.printf "%a@."
    (Prognosis_analysis.Model_diff.pp_summary
       ~input_pp:Quic_study.Alphabet.pp
       ~output_pp:Quic_study.Alphabet.pp_output)
    summary;
  match dot_out with
  | None -> ()
  | Some path ->
      let a = Quic_study.learn ~seed ~profile:pa () in
      let b = Quic_study.learn ~seed:(Int64.add seed 31L) ~profile:pb () in
      let dot =
        Prognosis_analysis.Visualize.diff_dot
          ~input_pp:Quic_study.Alphabet.pp
          ~output_pp:Quic_study.Alphabet.pp_output a.Quic_study.model
          b.Quic_study.model
      in
      Prognosis_analysis.Visualize.write_file ~path dot;
      Format.printf "diff written to %s@." path

let compare_cmd =
  let doc = "Learn two QUIC profiles and compare their models." in
  let profile_b =
    Arg.(value & opt string "strict-retry"
         & info [ "against" ] ~docv:"NAME" ~doc:"Second profile.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(const do_compare $ verbose $ profile_arg $ profile_b $ seed $ dot_out)

(* --- nondet --- *)

let do_nondet () profile_name seed runs =
  let profile = or_die (profile_of_name profile_name) in
  let rate = Quic_study.close_reset_rate ~seed ~runs profile in
  Format.printf
    "profile %s: %.1f%% of post-close probes answered with a Stateless Reset \
     (%d runs)@."
    profile_name (100.0 *. rate) runs;
  if rate > 0.01 && rate < 0.99 then
    Format.printf
      "NONDETERMINISTIC reset behaviour: inconsistent RESET policy with no \
       back-off (the paper's Issue 2, a DoS vector).@."
  else Format.printf "consistent reset policy.@."

let nondet_cmd =
  let doc = "Measure post-close Stateless Reset behaviour (Issue 2)." in
  let runs =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Probe count.")
  in
  Cmd.v (Cmd.info "nondet" ~doc) Term.(const do_nondet $ verbose $ profile_arg $ seed $ runs)

(* --- synthesize --- *)

let do_synthesize () protocol profile_name seed =
  match protocol with
  | `Dtls ->
      or_die (Error "register synthesis is available for tcp and quic targets")
  | `Tcp -> begin
      let r = Tcp_study.learn ~seed () in
      let words =
        Prognosis_tcp.Tcp_alphabet.
          [ [ Syn; Ack; Ack_psh; Ack_psh ]; [ Syn; Ack_psh; Fin_ack ]; [ Syn; Ack; Fin_ack; Ack ] ]
      in
      match Tcp_study.synthesize r words with
      | Error e -> or_die (Error e)
      | Ok machine ->
          print_string
            (Prognosis_synthesis.Ext_mealy.to_dot
               ~input_pp:(fun fmt s ->
                 Format.pp_print_string fmt (Prognosis_tcp.Tcp_alphabet.to_string s))
               ~output_pp:(fun fmt o ->
                 Format.pp_print_string fmt
                   (Prognosis_tcp.Tcp_alphabet.output_to_string o))
               ~names_in:Tcp_study.input_field_names
               ~names_out:Tcp_study.output_field_names machine)
    end
  | `Quic -> begin
      let profile = or_die (profile_of_name profile_name) in
      let r = Quic_study.learn ~seed ~profile () in
      let words =
        Quic_study.Alphabet.
          [
            [ Initial_crypto; Initial_crypto; Handshake_ack_crypto; Short_ack_stream ];
            [
              Initial_crypto;
              Initial_crypto;
              Handshake_ack_crypto;
              Short_ack_stream;
              Short_ack_flow;
            ];
          ]
      in
      match Quic_study.synthesize_sdb r words with
      | Error e -> or_die (Error e)
      | Ok machine -> (
          match Quic_study.sdb_verdict machine with
          | `Constant c ->
              Format.printf
                "STREAM_DATA_BLOCKED Maximum Stream Data is the CONSTANT %d — \
                 the paper's Issue 4 when 0.@."
                c
          | `Symbolic ->
              Format.printf
                "STREAM_DATA_BLOCKED Maximum Stream Data tracks the blocked \
                 offset (compliant).@."
          | `Unobserved ->
              Format.printf "no STREAM_DATA_BLOCKED frames observed.@.")
    end

let synthesize_cmd =
  let doc = "Synthesize a register-extended model from Oracle-Table traces." in
  Cmd.v
    (Cmd.info "synthesize" ~doc)
    Term.(const do_synthesize $ verbose $ protocol $ profile_arg $ seed)

(* --- check --- *)

let do_check () profile_name seed =
  let profile = or_die (profile_of_name profile_name) in
  let r = Quic_study.learn ~seed ~profile () in
  let module Safety = Prognosis_analysis.Safety in
  (* Model-level property: once the server answered with
     CONNECTION_CLOSE, it never sends application data again. *)
  let has_close (out : Quic_study.Alphabet.output) =
    List.exists
      (fun (a : Quic_study.Alphabet.apacket) ->
        List.mem Prognosis_quic.Frame.K_connection_close a.Quic_study.Alphabet.frames)
      out
  in
  let has_stream (out : Quic_study.Alphabet.output) =
    List.exists
      (fun (a : Quic_study.Alphabet.apacket) ->
        List.mem Prognosis_quic.Frame.K_stream a.Quic_study.Alphabet.frames)
      out
  in
  let prop =
    Safety.after_always "no stream data after CONNECTION_CLOSE"
      ~trigger:(fun (_, o) -> has_close o)
      ~then_:(fun (_, o) -> not (has_stream o))
  in
  (match Safety.check prop r.Quic_study.model with
  | None -> Format.printf "[ok]   %s@." (Safety.name prop)
  | Some word ->
      Format.printf "[FAIL] %s; witness: %s@." (Safety.name prop)
        (String.concat " " (List.map Quic_study.Alphabet.to_string word)));
  (* Concrete-trace properties. *)
  let words =
    Quic_study.Alphabet.
      [ [ Initial_crypto; Initial_crypto; Handshake_ack_crypto; Short_ack_stream ] ]
  in
  let pns = Quic_study.packet_number_sequences r words in
  List.iter
    (fun seq ->
      match Safety.strictly_increasing seq with
      | Safety.Holds -> Format.printf "[ok]   packet numbers always increasing@."
      | Safety.Violated _ as v ->
          Format.printf "[FAIL] packet numbers: %a@." Safety.pp_verdict v)
    pns;
  let ncids =
    Prognosis_quic.Quic_client.ncid_sequence_numbers r.Quic_study.client
  in
  if ncids <> [] then
    match Safety.increases_by ~stride:1 ncids with
    | Safety.Holds ->
        Format.printf "[ok]   connection-id sequence numbers increase by 1@."
    | Safety.Violated _ as v ->
        Format.printf "[FAIL] connection-id sequence numbers: %a@."
          Safety.pp_verdict v

let check_cmd =
  let doc = "Check temporal and numeric properties of a QUIC profile." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const do_check $ verbose $ profile_arg $ seed)

(* --- difftest --- *)

let do_difftest () profile_a profile_b seed =
  let pa = or_die (profile_of_name profile_a) in
  let pb = or_die (profile_of_name profile_b) in
  let model_a = (Quic_study.learn ~seed ~profile:pa ()).Quic_study.model in
  let sul_b =
    Prognosis_quic.Quic_adapter.sul ~profile:pb ~seed:(Int64.add seed 31L) ()
  in
  let module Diff_test = Prognosis_analysis.Diff_test in
  Format.printf
    "model of %s drives %d conformance tests against a live %s instance@."
    profile_a
    (Diff_test.suite_size model_a)
    profile_b;
  match Diff_test.model_guided ~max_mismatches:5 ~model:model_a sul_b with
  | [] -> Format.printf "no behavioural differences found.@."
  | mismatches ->
      Format.printf "%d mismatching test cases (showing replayable witnesses):@."
        (List.length mismatches);
      List.iter
        (fun m ->
          Format.printf "  on: %s@."
            (String.concat " "
               (List.map Quic_study.Alphabet.to_string m.Diff_test.word));
          Format.printf "    %-12s: %s@." profile_a
            (String.concat " "
               (List.map Quic_study.Alphabet.output_to_string m.Diff_test.outputs_a));
          Format.printf "    %-12s: %s@." profile_b
            (String.concat " "
               (List.map Quic_study.Alphabet.output_to_string m.Diff_test.outputs_b)))
        mismatches

let difftest_cmd =
  let doc =
    "Model-guided differential testing: a learned model of one QUIC profile \
     generates a conformance suite executed against another (paper §7)."
  in
  let profile_b =
    Arg.(value & opt string "strict-retry"
         & info [ "against" ] ~docv:"NAME" ~doc:"Implementation under test.")
  in
  Cmd.v
    (Cmd.info "difftest" ~doc)
    Term.(const do_difftest $ verbose $ profile_arg $ profile_b $ seed)

(* --- render --- *)

let do_render () seed dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name dot =
    let path = Filename.concat dir name in
    Prognosis_analysis.Visualize.write_file ~path dot;
    Format.printf "%s@." path
  in
  write "tcp_model.dot" (Tcp_study.model_dot (Tcp_study.learn ~seed ()).Tcp_study.model);
  List.iter
    (fun profile ->
      let r = Quic_study.learn ~seed ~profile () in
      write
        (Printf.sprintf "quic_%s.dot"
           (String.map
              (fun c -> if c = '-' then '_' else c)
              profile.Prognosis_quic.Quic_profile.name))
        (Quic_study.model_dot r.Quic_study.model))
    Prognosis_quic.Quic_profile.
      [ quiche_like; google_like; strict_retry ];
  write "dtls_model.dot" (Dtls_study.model_dot (Dtls_study.learn ~seed ()).Dtls_study.model)

let render_cmd =
  let doc = "Render every learned model to Graphviz files (paper App. A figures)." in
  let dir =
    Arg.(value & opt string "figures" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v (Cmd.info "render" ~doc) Term.(const do_render $ verbose $ seed $ dir)

(* --- replay --- *)

let parse_word all to_string tokens =
  List.map
    (fun token ->
      match Array.to_list all |> List.find_opt (fun s -> to_string s = token) with
      | Some s -> s
      | None ->
          or_die
            (Error
               (Printf.sprintf "unknown symbol %S (known: %s)" token
                  (String.concat ", "
                     (Array.to_list (Array.map to_string all))))))
    tokens

let do_replay () protocol model_path word =
  let tokens =
    String.split_on_char ' ' word |> List.filter (fun t -> t <> "")
  in
  if tokens = [] then or_die (Error "empty word; pass --word \"SYM SYM ...\"");
  match protocol with
  | `Tcp ->
      let model = or_die_load (Persist.load_tcp ~path:model_path) in
      let module A = Prognosis_tcp.Tcp_alphabet in
      let input = parse_word A.all A.to_string tokens in
      List.iter2
        (fun i o ->
          Format.printf "%-28s -> %s@." (A.to_string i) (A.output_to_string o))
        input (Mealy.run model input)
  | `Quic ->
      let model = or_die_load (Persist.load_quic ~path:model_path) in
      let module A = Prognosis_quic.Quic_alphabet in
      let input = parse_word A.extended A.to_string tokens in
      List.iter2
        (fun i o ->
          Format.printf "%-42s -> %s@." (A.to_string i) (A.output_to_string o))
        input (Mealy.run model input)
  | `Dtls ->
      let model = or_die_load (Persist.load_dtls ~path:model_path) in
      let module A = Prognosis_dtls.Dtls_alphabet in
      let input = parse_word A.all A.to_string tokens in
      List.iter2
        (fun i o ->
          Format.printf "%-24s -> %s@." (A.to_string i) (A.output_to_string o))
        input (Mealy.run model input)

let replay_cmd =
  let doc =
    "Replay an abstract input word through a previously saved model (no live \
     implementation needed)."
  in
  let model_path =
    Arg.(required & opt (some string) None
         & info [ "model" ] ~docv:"FILE" ~doc:"Model file from `learn --save`.")
  in
  let word =
    Arg.(required & opt (some string) None
         & info [ "word" ] ~docv:"SYMS" ~doc:"Space-separated abstract symbols.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(const do_replay $ verbose $ protocol $ model_path $ word)

(* --- ci: the golden-model regression gate --- *)

(* Each target learns one study model and renders it to the string
   alphabet, so the gate below works uniformly on (string, string)
   machines whatever the protocol. *)
let ci_targets seed =
  [
    ( "tcp",
      Persist.Tcp_model,
      "tcp.model",
      fun () ->
        let module A = Prognosis_tcp.Tcp_alphabet in
        Persist.to_string_model ~input_to_string:A.to_string
          ~output_to_string:A.output_to_string
          (Tcp_study.learn ~seed ()).Tcp_study.model );
    ( "quic:quiche-like",
      Persist.Quic_model,
      "quic-quiche-like.model",
      fun () ->
        let module A = Prognosis_quic.Quic_alphabet in
        Persist.to_string_model ~input_to_string:A.to_string
          ~output_to_string:A.output_to_string
          (Quic_study.learn ~seed
             ~profile:Prognosis_quic.Quic_profile.quiche_like ())
            .Quic_study.model );
    ( "dtls",
      Persist.Dtls_model,
      "dtls.model",
      fun () ->
        let module A = Prognosis_dtls.Dtls_alphabet in
        Persist.to_string_model ~input_to_string:A.to_string
          ~output_to_string:A.output_to_string
          (Dtls_study.learn ~seed ()).Dtls_study.model );
  ]

let do_ci () golden_dir seed update summary_out =
  let summary = Buffer.create 256 in
  let sline fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string summary s;
        Buffer.add_char summary '\n')
      fmt
  in
  sline "### prognosis golden-model gate (seed %Ld)" seed;
  let drift = ref false in
  List.iter
    (fun (name, kind, file, learn) ->
      let path = Filename.concat golden_dir file in
      let model = learn () in
      let text =
        Persist.text_of_model ~kind ~input_to_string:Fun.id
          ~output_to_string:Fun.id model
      in
      if update then begin
        mkdir_p golden_dir;
        Persist.save_text ~path kind ~input_to_string:Fun.id
          ~output_to_string:Fun.id model;
        Format.printf "[golden] %-18s -> %s@." name path;
        sline "- `%s`: golden refreshed at `%s`" name path
      end
      else
        match read_file path with
        | Error msg ->
            drift := true;
            Format.printf
              "[FAIL] %-18s missing golden: %s (generate with `prognosis ci \
               --update-golden`)@."
              name msg;
            sline "- `%s`: **missing golden** (%s)" name msg
        | Ok golden_text ->
            if String.equal text golden_text then begin
              Format.printf "[ok]   %-18s matches %s@." name path;
              sline "- `%s`: matches golden" name
            end
            else begin
              drift := true;
              Format.printf "[FAIL] %-18s drifted from %s@." name path;
              sline "- `%s`: **drifted** from `%s`" name path;
              match Persist.parse_text ~path kind golden_text with
              | Error e ->
                  let msg = Persist.load_error_to_string e in
                  Format.printf "       golden unreadable: %s@." msg;
                  sline "  - golden unreadable: %s" msg
              | Ok golden_m -> (
                  let module D = Prognosis_analysis.Model_diff in
                  let canon = Mealy.canonicalize (Mealy.minimize model) in
                  match D.first_difference canon golden_m with
                  | exception Invalid_argument _ ->
                      Format.printf
                        "       input alphabet changed — refresh the golden \
                         deliberately@.";
                      sline "  - input alphabet changed"
                  | None ->
                      Format.printf
                        "       models are equivalent; the serialization \
                         itself drifted (format change?)@.";
                      sline "  - equivalent models, serialization drift"
                  | Some w ->
                      let word = String.concat " " w.D.word in
                      Format.printf "       distinguishing word: %s@." word;
                      Format.printf "         learned: %s@."
                        (String.concat " " w.D.outputs_a);
                      Format.printf "         golden : %s@."
                        (String.concat " " w.D.outputs_b);
                      sline "  - distinguishing word: `%s`" word;
                      sline "    - learned: `%s`"
                        (String.concat " " w.D.outputs_a);
                      sline "    - golden: `%s`"
                        (String.concat " " w.D.outputs_b))
            end)
    (ci_targets seed);
  (match summary_out with
  | None -> ()
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
      Buffer.output_buffer oc summary;
      close_out oc);
  if update then Format.printf "goldens updated under %s@." golden_dir
  else if !drift then begin
    Format.printf "golden gate: DRIFT@.";
    exit 1
  end
  else Format.printf "golden gate: ok@."

let ci_cmd =
  let doc =
    "The golden-model regression gate: learn the TCP, QUIC and DTLS study \
     models, canonicalize them ($(b,prognosis.model/1)) and byte-compare \
     against the checked-in goldens. Exits non-zero on drift, printing the \
     shortest distinguishing input word with both models' outputs."
  in
  let golden_dir =
    Arg.(
      value
      & opt string "examples/golden"
      & info [ "golden" ] ~docv:"DIR" ~doc:"Directory holding golden models.")
  in
  let update =
    Arg.(
      value & flag
      & info [ "update-golden" ]
          ~doc:"Regenerate the goldens from the current code instead of gating.")
  in
  let summary_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Append a Markdown summary of the gate to $(docv) (pass \
             \\$GITHUB_STEP_SUMMARY in CI).")
  in
  Cmd.v
    (Cmd.info "ci" ~doc)
    Term.(const do_ci $ verbose $ golden_dir $ seed $ update $ summary_out)

(* --- trace: analyze a recorded span trace --- *)

let read_jsonl path =
  let module J = Prognosis_obs.Jsonx in
  match read_file path with
  | Error msg -> Error msg
  | Ok text ->
      let lines =
        String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
      in
      let bad = ref 0 in
      let records =
        List.filter_map
          (fun l ->
            match J.of_string_opt l with
            | Some j -> Some j
            | None ->
                incr bad;
                None)
          lines
      in
      Ok (records, !bad)

let do_trace () file top slowest depth =
  let module J = Prognosis_obs.Jsonx in
  let module T = Prognosis_obs.Span_tree in
  let records, bad = or_die (read_jsonl file) in
  (match records with
  | first :: _
    when J.member "type" first = Some (J.String "meta")
         && J.member "schema" first
            = Some (J.String Prognosis_obs.Trace.schema) ->
      let flight =
        match J.member "flight" first with Some (J.Bool true) -> true | _ -> false
      in
      Format.printf "trace: %s (%s%d records)@." Prognosis_obs.Trace.schema
        (if flight then "flight dump, " else "")
        (List.length records)
  | _ ->
      Format.printf
        "warning: no %s meta header — treating input as a bare record stream@."
        Prognosis_obs.Trace.schema);
  if bad > 0 then Format.printf "warning: %d unparseable line(s) skipped@." bad;
  let roots = T.of_records records in
  if roots = [] then or_die (Error "no span or event records in this trace");
  Format.printf "@.== span tree ==@.%s" (T.render_tree ~max_depth:depth roots);
  let widest_root =
    List.fold_left
      (fun best r -> if r.T.dur_ns > best.T.dur_ns then r else best)
      (List.hd roots) (List.tl roots)
  in
  Format.printf "@.== critical path ==@.";
  List.iter
    (fun n -> Format.printf "  %s  %s@." n.T.name (T.pp_ns n.T.dur_ns))
    (T.critical_path widest_root);
  Format.printf "@.== slowest %s spans ==@." slowest;
  (match T.top_slowest ~name:slowest ~k:top roots with
  | [] -> Format.printf "  (none)@."
  | hits ->
      List.iteri
        (fun i n ->
          let len =
            match List.assoc_opt "len" n.T.attrs with
            | Some (J.Int l) -> Printf.sprintf "  len=%d" l
            | _ -> ""
          in
          Format.printf "  %d. %s%s  (id %d)@." (i + 1) (T.pp_ns n.T.dur_ns)
            len n.T.id)
        hits);
  Format.printf "@.== phase breakdown ==@.";
  match T.phase_breakdown roots with
  | [] -> Format.printf "  (no phase annotations)@."
  | phases ->
      let total = List.fold_left (fun acc (_, ns) -> acc + ns) 0 phases in
      List.iter
        (fun (p, ns) ->
          Format.printf "  %-12s %10s  %3.0f%%@." p (T.pp_ns ns)
            (100.0 *. float_of_int ns /. float_of_int (max 1 total)))
        phases

let trace_cmd =
  let doc =
    "Analyze a recorded JSONL span trace (from `learn --trace` or a flight \
     dump): aggregated span tree, critical path, top-k slowest spans and \
     per-phase time breakdown."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Trace file (JSONL).")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K" ~doc:"How many slowest spans to list.")
  in
  let slowest =
    Arg.(
      value & opt string "oracle.mq"
      & info [ "slowest" ] ~docv:"NAME"
          ~doc:
            "Span name ranked in the slowest-spans section (default: \
             membership queries).")
  in
  let depth =
    Arg.(
      value & opt int 4
      & info [ "depth" ] ~docv:"D" ~doc:"Maximum span-tree depth printed.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(const do_trace $ verbose $ file $ top $ slowest $ depth)

(* --- report diff: compare two machine-readable reports --- *)

let do_report_diff () file_a file_b threshold_pct show_all counters_only =
  let module J = Prognosis_obs.Jsonx in
  let module D = Prognosis_obs.Report_diff in
  let load path =
    match read_file path with
    | Error msg -> or_die (Error msg)
    | Ok text -> (
        match J.of_string_opt text with
        | Some j -> j
        | None -> or_die (Error (path ^ ": not valid JSON")))
  in
  let a = load file_a and b = load file_b in
  let deltas = D.diff a b in
  let fmt_v = function
    | None -> "-"
    | Some v ->
        if Float.is_integer v && Float.abs v < 1e15 then
          Printf.sprintf "%.0f" v
        else Printf.sprintf "%.4g" v
  in
  if counters_only then begin
    (* zero-threshold, bidirectional gate on the deterministic effort
       counters: any change at all fails, improvements included *)
    let watched = List.filter (fun d -> D.counter_watch d.D.path) deltas in
    match D.drift deltas with
    | [] ->
        Format.printf "counter gate: ok (%d deterministic counters identical)@."
          (List.length watched)
    | drifted ->
        Format.printf "counter gate: %d deterministic counter(s) drifted@."
          (List.length drifted);
        List.iter
          (fun d ->
            Format.printf "  DRIFT %s: %s -> %s@." d.D.path (fmt_v d.D.a)
              (fmt_v d.D.b))
          drifted;
        exit 1
  end
  else begin
    let shown =
      if show_all then deltas else List.filter D.changed deltas
    in
    if shown = [] then Format.printf "no differences@."
    else
      List.iter
        (fun d ->
          let pct =
            match (d.D.a, d.D.b) with
            | Some a, Some b when a <> 0.0 && a <> b ->
                Printf.sprintf "  (%+.1f%%)" (100.0 *. (b -. a) /. a)
            | _ -> ""
          in
          Format.printf "%s: %s -> %s%s@." d.D.path (fmt_v d.D.a) (fmt_v d.D.b)
            pct)
        shown;
    let threshold = threshold_pct /. 100.0 in
    match D.regressions ~threshold deltas with
    | [] ->
        Format.printf "regression gate: ok (threshold %.0f%%)@." threshold_pct
    | regs ->
        Format.printf "regression gate: %d metric(s) regressed beyond %.0f%%@."
          (List.length regs) threshold_pct;
        List.iter
          (fun d ->
            Format.printf "  REGRESSED %s: %s -> %s@." d.D.path (fmt_v d.D.a)
              (fmt_v d.D.b))
          regs;
        exit 1
  end

let report_diff_cmd =
  let doc =
    "Diff two machine-readable reports ($(b,prognosis.report/1) or \
     $(b,prognosis.bench/*) snapshots) as flat metric maps and gate on \
     regressions: exits 1 when a watched metric (benchmark timings, \
     membership/reset/step effort) grew beyond the threshold."
  in
  let file_a =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline report (JSON).")
  in
  let file_b =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CANDIDATE" ~doc:"Candidate report (JSON).")
  in
  let threshold =
    Arg.(
      value & opt float 10.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"Allowed growth of a watched metric, in percent.")
  in
  let show_all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Print unchanged metrics too, not just deltas.")
  in
  let counters_only =
    Arg.(
      value & flag
      & info [ "counters-only" ]
          ~doc:
            "Gate only the deterministic learning-effort counters \
             (membership queries/symbols, test words, \
             queries-per-identification) at zero threshold, in both \
             directions: exits 1 on any drift. Timings are ignored.")
  in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(
      const do_report_diff $ verbose $ file_a $ file_b $ threshold $ show_all
      $ counters_only)

let report_cmd =
  let doc = "Operations on machine-readable run reports." in
  Cmd.group (Cmd.info "report" ~doc) [ report_diff_cmd ]

(* --- fingerprint: model library + open-world identification --- *)

module Library = Prognosis_fingerprint.Library
module Splitter = Prognosis_fingerprint.Splitter
module Identify = Prognosis_fingerprint.Identify

(* An identifiable subject — a live endpoint the CLI can both probe
   (engine worker factory) and, on a Novel verdict, learn in full —
   now lives in [lib/service] so the fleet scheduler can use it too. *)
module Subject = Prognosis_service.Subject
module Service = Prognosis_service.Service

let subject_of_name = Subject.of_name

let library_dir_pos =
  let doc = "Library directory (holds *.model files plus library.json)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let do_library_build () dir subjects seed algorithm workers batch parallel
    replicas =
  mkdir_p dir;
  let exec = exec_of_flags ~workers ~batch ~parallel ~replicas in
  List.iter
    (fun name ->
      let s = or_die (subject_of_name name) in
      Format.printf "learning %s...@." s.Subject.name;
      let model, report = s.Subject.learn ~seed ~algorithm ~exec in
      let entry = Library.entry_of_model ~name:s.Subject.name ~kind:s.Subject.kind model in
      Prognosis_obs.Atomic_file.write
        ~path:(Filename.concat dir entry.Library.file)
        entry.Library.text;
      Format.printf "  %d states, %d membership queries -> %s@."
        report.Report.states report.Report.membership_queries
        entry.Library.file)
    subjects;
  let lib, notes = or_die (Library.build ~dir) in
  List.iter (fun n -> Format.printf "note: %s@." n) notes;
  Format.printf "library %s: %d entr%s@." dir
    (List.length lib.Library.entries)
    (if List.length lib.Library.entries = 1 then "y" else "ies")

let do_library_list () dir =
  let lib = or_die (Library.load ~dir) in
  List.iter
    (fun (kind, entries) ->
      Format.printf "%s:@." (Persist.kind_to_string kind);
      List.iter
        (fun (e : Library.entry) ->
          Format.printf "  %-24s %3d states  %3d transitions  %s@."
            e.Library.name (Mealy.size e.Library.model)
            (Mealy.transitions e.Library.model) e.Library.file)
        entries)
    (Library.group_by_kind lib);
  Format.printf "%d entr%s@."
    (List.length lib.Library.entries)
    (if List.length lib.Library.entries = 1 then "y" else "ies")

let do_library_inspect () dir =
  let lib = or_die (Library.load ~dir) in
  let forest = or_die (Splitter.of_library lib) in
  List.iter
    (fun (kind, tree) ->
      let s = Splitter.stats tree in
      Format.printf
        "%s: %d entr%s, tree depth %d, %d separating word(s), longest %d \
         symbol(s)@."
        (Persist.kind_to_string kind) s.Splitter.leaves
        (if s.Splitter.leaves = 1 then "y" else "ies")
        s.Splitter.depth s.Splitter.internal s.Splitter.max_word_len;
      Format.printf "@[<v 2>  %a@]@." Splitter.pp tree)
    forest

let library_build_cmd =
  let doc =
    "Scan DIR for prognosis.model/1 files (optionally learning some subjects \
     first), drop behavioural duplicates, and write the \
     prognosis.library/1 manifest."
  in
  let learn_subjects =
    let doc =
      "Learn $(docv) and save its canonical model into the library before \
       scanning. Repeatable. Subjects: tcp, tcp:persistent, \
       tcp:no-challenge, dtls, dtls:no-cookie, dtls:lax-ccs, quic:PROFILE."
    in
    Arg.(value & opt_all string [] & info [ "learn" ] ~docv:"SUBJECT" ~doc)
  in
  Cmd.v
    (Cmd.info "build" ~doc)
    Term.(
      const do_library_build $ verbose $ library_dir_pos $ learn_subjects
      $ seed $ algorithm $ workers_arg $ batch_arg $ parallel_arg
      $ replicas_arg)

let library_list_cmd =
  let doc = "List the entries of a model library, grouped by kind." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const do_library_list $ verbose $ library_dir_pos)

let library_inspect_cmd =
  let doc =
    "Show the adaptive classification tree compiled from a library: each \
     level asks one separating word and branches on the endpoint's output \
     word."
  in
  Cmd.v
    (Cmd.info "inspect" ~doc)
    Term.(const do_library_inspect $ verbose $ library_dir_pos)

let library_cmd =
  let doc = "Manage fingerprint model libraries (prognosis.library/1)." in
  Cmd.group
    (Cmd.info "library" ~doc)
    [ library_build_cmd; library_list_cmd; library_inspect_cmd ]

let fresh_entry_name lib base =
  if Library.find lib base = None then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s-%d" base i in
      if Library.find lib candidate = None then candidate else go (i + 1)
    in
    go 2

let do_identify () dir subject_name name_override seed algorithm workers batch
    parallel replicas no_extend metrics_out trace_out =
  ignore batch;
  let s = or_die (subject_of_name subject_name) in
  let lib = or_die (Library.load ~dir) in
  let forest = or_die (Splitter.of_library lib) in
  let tree =
    Option.value ~default:(Splitter.Leaf None) (List.assoc_opt s.Subject.kind forest)
  in
  Prognosis_obs.Metrics.reset Prognosis_obs.Metrics.default;
  let tracing = trace_out <> None in
  Option.iter
    (fun path ->
      try Prognosis_obs.Trace.set_sink (Prognosis_obs.Trace.Sink.jsonl_file path)
      with Sys_error msg -> or_die (Error ("cannot open trace file: " ^ msg)))
    trace_out;
  (* Always drive the endpoint through the query-execution engine:
     identification gets the cache, batched confirmation suites and
     (with --replicas) voting for free. *)
  let config =
    {
      Prognosis_exec.Engine.default with
      Prognosis_exec.Engine.workers;
      batch = true;
      parallel;
      replicas;
    }
  in
  let engine =
    Prognosis_exec.Engine.create ~config ~factory:(s.Subject.factory ~seed ~workers) ()
  in
  let mq = Prognosis_exec.Engine.membership engine in
  let result =
    Fun.protect
      ~finally:(fun () -> if tracing then Prognosis_obs.Trace.unset_sink ())
      (fun () ->
        try Identify.run ~mq tree
        with Prognosis_sul.Nondet.Nondeterministic_sul msg ->
          or_die
            (Error
               ("nondeterministic endpoint: " ^ msg
              ^ ". Investigate with `prognosis nondet`.")))
  in
  Format.printf "@[<v>%a@]@." Identify.pp result;
  (match result.Identify.outcome with
  | Identify.Known entry ->
      Format.printf "endpoint identified as %s@." entry.Library.name
  | Identify.Novel _ when no_extend ->
      Format.printf
        "novel endpoint — library unchanged (drop --no-extend to learn and \
         add it)@."
  | Identify.Novel _ -> (
      Format.printf "novel endpoint: learning a full model...@.";
      let exec = exec_of_flags ~workers ~batch:true ~parallel ~replicas in
      let model, report = s.Subject.learn ~seed ~algorithm ~exec in
      Format.printf "learned %d states in %d membership queries@."
        report.Report.states report.Report.membership_queries;
      let name =
        match name_override with
        | Some n -> n
        | None -> fresh_entry_name lib s.Subject.name
      in
      match or_die (Library.add lib ~name ~kind:s.Subject.kind model) with
      | Library.Added lib' ->
          Format.printf "library extended: %s (%d entries)@." name
            (List.length lib'.Library.entries)
      | Library.Duplicate e ->
          Format.printf
            "learned model is behaviourally identical to existing entry %s — \
             library unchanged@."
            e.Library.name));
  match metrics_out with
  | None -> ()
  | Some path ->
      let hits, misses = Prognosis_exec.Engine.cache_stats engine in
      let states, transitions =
        match result.Identify.outcome with
        | Identify.Known e ->
            (Mealy.size e.Library.model, Mealy.transitions e.Library.model)
        | Identify.Novel _ -> (0, 0)
      in
      let alphabet =
        match List.filter (fun (e : Library.entry) -> e.Library.kind = s.Subject.kind) lib.Library.entries with
        | e :: _ -> Mealy.alphabet_size e.Library.model
        | [] -> 0
      in
      let report =
        Report.
          {
            subject = subject_name;
            algorithm = "identify";
            states;
            transitions;
            membership_queries = mq.Prognosis_learner.Oracle.stats.membership_queries;
            membership_symbols = mq.Prognosis_learner.Oracle.stats.membership_symbols;
            cache_hits = hits;
            cache_misses = misses;
            equivalence_rounds = 0;
            test_words = 0;
            alphabet;
            exec = Some (Prognosis_exec.Engine.stats_json engine);
            identification = Some (Identify.to_json result);
            service = None;
          }
      in
      (try
         Prognosis_obs.Atomic_file.write ~path
           (Report.to_json_string ~metrics:Prognosis_obs.Metrics.default report
           ^ "\n")
       with Sys_error msg -> or_die (Error ("cannot write metrics file: " ^ msg)));
      Format.printf "metrics written to %s@." path

let identify_cmd =
  let doc =
    "Identify a live endpoint against a model library: walk the adaptive \
     classification tree (a few separating words), confirm the candidate \
     with its state cover crossed with its characterizing set, and fall \
     back to full learning plus library extension when the endpoint is \
     novel — open-world fingerprinting at a fraction of full-learning \
     query cost."
  in
  let library_arg =
    let doc = "Model library directory (see `prognosis library build`)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "library" ] ~docv:"DIR" ~doc)
  in
  let subject_arg =
    let doc =
      "The endpoint to identify: tcp, tcp:persistent, tcp:no-challenge, \
       dtls, dtls:no-cookie, dtls:lax-ccs or quic:PROFILE."
    in
    Arg.(
      required & opt (some string) None & info [ "subject" ] ~docv:"SUBJECT" ~doc)
  in
  let name_arg =
    let doc =
      "Name for the new library entry when the endpoint turns out novel \
       (default: the subject name, suffixed if taken)."
    in
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc)
  in
  let no_extend =
    let doc = "On a novel endpoint, skip full learning and library extension." in
    Arg.(value & flag & info [ "no-extend" ] ~doc)
  in
  Cmd.v
    (Cmd.info "identify" ~doc)
    Term.(
      const do_identify $ verbose $ library_arg $ subject_arg $ name_arg $ seed
      $ algorithm $ workers_arg $ batch_arg $ parallel_arg $ replicas_arg
      $ no_extend $ metrics_out $ trace_out)

(* --- serve: domain-parallel fleet sessions --- *)

let do_serve () jobs_file domains shards workers parallel replicas library_dir
    metrics_out =
  Prognosis_obs.Metrics.reset Prognosis_obs.Metrics.default;
  let jobs = or_die (Result.bind (read_file jobs_file) Service.jobs_of_string) in
  let library =
    Option.map (fun dir -> or_die (Library.load ~dir)) library_dir
  in
  let config =
    { Service.default_config with Prognosis_exec.Engine.workers; parallel; replicas }
  in
  let summary =
    match Service.run ~domains ~shards ~config ?library ~jobs () with
    | Ok s -> s
    | Error e -> or_die (Error e)
    | exception Prognosis_sul.Nondet.Nondeterministic_sul msg ->
        or_die
          (Error
             ("nondeterministic endpoint: " ^ msg
            ^ ". Investigate with `prognosis nondet`."))
  in
  Format.printf "@[<v>%a@]@." Service.pp summary;
  match metrics_out with
  | None -> ()
  | Some path ->
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 summary.Service.sessions in
      let report =
        Report.
          {
            subject = "fleet";
            algorithm = "serve";
            states = 0;
            transitions = 0;
            membership_queries = sum (fun s -> s.Service.membership_queries);
            membership_symbols = sum (fun s -> s.Service.membership_symbols);
            cache_hits = Service.shared_hits summary;
            cache_misses =
              List.fold_left
                (fun acc (c : Service.shared_cache) -> acc + c.Service.misses)
                0 summary.Service.shared;
            equivalence_rounds = 0;
            test_words = sum (fun s -> s.Service.test_words);
            alphabet = 0;
            exec = None;
            identification = None;
            service = Some (Service.to_json summary);
          }
      in
      (try
         Prognosis_obs.Atomic_file.write ~path
           (Report.to_json_string ~metrics:Prognosis_obs.Metrics.default report
           ^ "\n")
       with Sys_error msg -> or_die (Error ("cannot write metrics file: " ^ msg)));
      Format.printf "metrics written to %s@." path

let serve_cmd =
  let doc =
    "Run a fleet of learning and identification sessions on an OCaml domain \
     pool: every session owns its own query-execution engine, sessions \
     probing the same endpoint configuration share one sharded membership \
     cache, and identify sessions walk one resident classification tree. \
     Results merge deterministically in job order."
  in
  let jobs_arg =
    let doc =
      "Job list (prognosis.jobs/1): {\"schema\": \"prognosis.jobs/1\", \
       \"jobs\": [{\"op\": \"learn\"|\"identify\", \"subject\": SUBJECT, \
       \"seed\": N, \"algorithm\": \"ttt\"|\"lstar\"}, ...]}."
    in
    Arg.(required & opt (some string) None & info [ "jobs" ] ~docv:"FILE" ~doc)
  in
  let domains_arg =
    let doc =
      "Number of OCaml domains running sessions (clamped to the job count; 1 \
       keeps the fleet sequential and its per-session counters \
       deterministic)."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc = "Shard count of each shared membership cache." in
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"K" ~doc)
  in
  let library_arg =
    let doc =
      "Model library directory, required when any job identifies (see \
       `prognosis library build`)."
    in
    Arg.(value & opt (some string) None & info [ "library" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const do_serve $ verbose $ jobs_arg $ domains_arg $ shards_arg
      $ workers_arg $ parallel_arg $ replicas_arg $ library_arg $ metrics_out)

let main =
  let doc = "closed-box learning and analysis of protocol implementations" in
  Cmd.group
    (Cmd.info "prognosis" ~version:"1.0.0" ~doc)
    [
      learn_cmd; resume_cmd; ci_cmd; compare_cmd; nondet_cmd; synthesize_cmd;
      check_cmd; difftest_cmd; identify_cmd; library_cmd; serve_cmd;
      render_cmd; replay_cmd; trace_cmd; report_cmd;
    ]

let () = exit (Cmd.eval main)
