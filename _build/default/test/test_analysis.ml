module Mealy = Prognosis_automata.Mealy
open Prognosis_analysis

let m1 =
  Mealy.make ~size:2 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 0; 1 |] |]
    ~lambda:[| [| "x"; "y" |]; [| "z"; "y" |] |]

(* m2 differs from m1 only in state 1 on input 'b'. *)
let m2 =
  Mealy.make ~size:2 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 0; 1 |] |]
    ~lambda:[| [| "x"; "y" |]; [| "z"; "DIFF" |] |]

(* --- model diff --- *)

let diff_equivalent () =
  Alcotest.(check bool) "same" true (Model_diff.equivalent m1 m1);
  Alcotest.(check bool) "different" false (Model_diff.equivalent m1 m2)

let diff_first_difference () =
  match Model_diff.first_difference m1 m2 with
  | None -> Alcotest.fail "expected difference"
  | Some w ->
      Alcotest.(check (list char)) "shortest word" [ 'a'; 'b' ] w.Model_diff.word;
      Alcotest.(check bool) "outputs differ" true
        (w.Model_diff.outputs_a <> w.Model_diff.outputs_b)

let diff_witnesses_genuine () =
  let ws = Model_diff.differences ~max:10 m1 m2 in
  Alcotest.(check bool) "found some" true (List.length ws >= 1);
  List.iter
    (fun w ->
      Alcotest.(check bool) "genuine" true
        (Mealy.run m1 w.Model_diff.word <> Mealy.run m2 w.Model_diff.word))
    ws

let diff_summary () =
  let s = Model_diff.summarize m1 m2 in
  Alcotest.(check bool) "not equivalent" false s.Model_diff.equivalent_;
  Alcotest.(check int) "states" 2 s.Model_diff.states_a;
  let text =
    Fmt.str "%a"
      (Model_diff.pp_summary ~input_pp:Fmt.char ~output_pp:Fmt.string)
      s
  in
  Alcotest.(check bool) "mentions witnesses" true (String.length text > 40)

let diff_summary_equal () =
  let s = Model_diff.summarize m1 m1 in
  Alcotest.(check bool) "equivalent" true s.Model_diff.equivalent_;
  Alcotest.(check int) "no witnesses" 0 (List.length s.Model_diff.witnesses)

(* --- safety properties --- *)

let never_diff = Safety.never "no DIFF output" (fun (_, o) -> o = "DIFF")

let safety_holds () =
  Alcotest.(check (option (list char))) "m1 satisfies" None
    (Safety.check never_diff m1)

let safety_violation () =
  match Safety.check never_diff m2 with
  | None -> Alcotest.fail "m2 must violate"
  | Some word ->
      (* Shortest violation is a then b. *)
      Alcotest.(check (list char)) "witness" [ 'a'; 'b' ] word;
      Alcotest.(check bool) "replayable" true
        (List.exists (fun o -> o = "DIFF") (Mealy.run m2 word))

let safety_after_always () =
  (* After outputting z, never output y again: m1 violates via a a b. *)
  let p =
    Safety.after_always "no y after z"
      ~trigger:(fun (_, o) -> o = "z")
      ~then_:(fun (_, o) -> o <> "y")
  in
  match Safety.check p m1 with
  | None -> Alcotest.fail "expected violation"
  | Some word ->
      let outputs = Mealy.run m1 word in
      Alcotest.(check bool) "z precedes y" true
        (let rec after_z = function
           | "z" :: rest -> List.mem "y" rest
           | _ :: rest -> after_z rest
           | [] -> false
         in
         after_z outputs)

let bounded_response () =
  (* After input 'a', output "z" must occur within 2 steps. *)
  let p =
    Safety.respond_within "z within 2 of a"
      ~trigger:(fun (i, _) -> i = 'a')
      ~response:(fun (_, o) -> o = "z")
      ~within:2
  in
  (* Trace check: trigger then response in time. *)
  Alcotest.(check (option int)) "satisfied" None
    (Safety.check_trace p [ ('a', "x"); ('b', "z"); ('b', "y") ]);
  Alcotest.(check (option int)) "just in time" None
    (Safety.check_trace p [ ('a', "x"); ('b', "y"); ('b', "z") ]);
  (* The monitor rejects when the last chance (step t+2) passes without
     a response, i.e. at index 2, regardless of the late z at index 3. *)
  Alcotest.(check (option int)) "too late" (Some 2)
    (Safety.check_trace p [ ('a', "x"); ('b', "y"); ('b', "y"); ('b', "z") ]);
  Alcotest.(check (option int)) "immediate" None
    (Safety.check_trace p [ ('a', "z"); ('b', "y"); ('b', "y"); ('b', "y") ])

let bounded_response_on_model () =
  (* m1 toggles; output "z" only on 'a' from state 1. The property
     "after any 'b', a z-output within 1 step" is violated by b·b. *)
  let p =
    Safety.respond_within "z within 1 of b"
      ~trigger:(fun (i, _) -> i = 'b')
      ~response:(fun (_, o) -> o = "z")
      ~within:1
  in
  match Safety.check p m1 with
  | None -> Alcotest.fail "expected violation"
  | Some word -> Alcotest.(check int) "short witness" 2 (List.length word)

let bounded_response_rejects_bad_bound () =
  Alcotest.check_raises "bound" (Invalid_argument "Safety.respond_within: bound must be >= 1")
    (fun () ->
      ignore
        (Safety.respond_within "x" ~trigger:(fun _ -> true)
           ~response:(fun _ -> true) ~within:0))

let safety_conj () =
  let p1 = Safety.never "p1" (fun (_, o) -> o = "DIFF") in
  let p2 = Safety.never "p2" (fun (i, _) -> i = 'q') in
  let both = Safety.conj "both" [ p1; p2 ] in
  Alcotest.(check (option (list char))) "m1 fine" None (Safety.check both m1);
  Alcotest.(check bool) "m2 caught" true (Safety.check both m2 <> None)

let safety_check_trace () =
  let p = Safety.never "no 9" (fun (_, o) -> o = 9) in
  Alcotest.(check (option int)) "ok trace" None
    (Safety.check_trace p [ ('a', 1); ('b', 2) ]);
  Alcotest.(check (option int)) "bad trace" (Some 1)
    (Safety.check_trace p [ ('a', 1); ('b', 9) ])

let numeric_verdicts () =
  Alcotest.(check bool) "increases by 1" true
    (Safety.increases_by ~stride:1 [ 1; 2; 3 ] = Safety.Holds);
  (match Safety.increases_by ~stride:1 [ 1; 3 ] with
  | Safety.Violated { index = 1; _ } -> ()
  | _ -> Alcotest.fail "expected violation at 1");
  Alcotest.(check bool) "strictly increasing" true
    (Safety.strictly_increasing [ 0; 5; 9 ] = Safety.Holds);
  (match Safety.strictly_increasing [ 0; 5; 5 ] with
  | Safety.Violated _ -> ()
  | Safety.Holds -> Alcotest.fail "expected violation");
  Alcotest.(check bool) "bounded" true
    (Safety.bounded_by ~limit:10 [ 1; 10 ] = Safety.Holds);
  match Safety.bounded_by ~limit:10 [ 1; 11 ] with
  | Safety.Violated { index = 1; _ } -> ()
  | _ -> Alcotest.fail "expected bound violation"

(* --- visualisation --- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let diff_dot_highlights () =
  let dot = Visualize.diff_dot ~input_pp:Fmt.char ~output_pp:Fmt.string m1 m2 in
  Alcotest.(check bool) "has red edge" true (contains dot "color=red");
  Alcotest.(check bool) "shows both outputs" true (contains dot "A:y | B:DIFF")

let diff_dot_clean_when_equal () =
  let dot = Visualize.diff_dot ~input_pp:Fmt.char ~output_pp:Fmt.string m1 m1 in
  Alcotest.(check bool) "no red edge" false (contains dot "color=red")

let write_file_works () =
  let path = Filename.temp_file "prognosis" ".dot" in
  Visualize.write_file ~path "digraph g {}";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "written" "digraph g {}" line

(* --- differential testing (paper §7) --- *)

let diff_test_suite_finds_difference () =
  let suite = [ [ 'a' ]; [ 'a'; 'b' ]; [ 'b'; 'b' ] ] in
  let a = Prognosis_sul.Sul.of_mealy m1 and b = Prognosis_sul.Sul.of_mealy m2 in
  let mismatches = Diff_test.run ~suite a b in
  Alcotest.(check int) "one differing word in the suite" 1 (List.length mismatches);
  match mismatches with
  | [ m ] ->
      Alcotest.(check (list char)) "the a·b word" [ 'a'; 'b' ] m.Diff_test.word
  | _ -> assert false

let diff_test_identical_suls_clean () =
  let suite = [ [ 'a' ]; [ 'a'; 'b'; 'a' ] ] in
  let a = Prognosis_sul.Sul.of_mealy m1 and b = Prognosis_sul.Sul.of_mealy m1 in
  Alcotest.(check int) "no mismatches" 0 (List.length (Diff_test.run ~suite a b))

let diff_test_model_guided () =
  (* The model of m1 drives testing of an m2 "implementation": the
     conformance suite must expose the divergence. *)
  let mismatches =
    Diff_test.model_guided ~model:m1 (Prognosis_sul.Sul.of_mealy m2)
  in
  Alcotest.(check bool) "found deviations" true (mismatches <> []);
  List.iter
    (fun m ->
      Alcotest.(check (list string)) "model prediction is m1's behaviour"
        (Prognosis_automata.Mealy.run m1 m.Diff_test.word)
        m.Diff_test.outputs_a;
      Alcotest.(check bool) "genuine" true
        (m.Diff_test.outputs_a <> m.Diff_test.outputs_b))
    mismatches

let diff_test_max_mismatches () =
  (* Constant machines differing everywhere: the cap binds. *)
  let ca =
    Prognosis_automata.Mealy.make ~size:1 ~initial:0 ~inputs:[| 'a'; 'b' |]
      ~delta:[| [| 0; 0 |] |]
      ~lambda:[| [| "x"; "x" |] |]
  in
  let cb =
    Prognosis_automata.Mealy.make ~size:1 ~initial:0 ~inputs:[| 'a'; 'b' |]
      ~delta:[| [| 0; 0 |] |]
      ~lambda:[| [| "y"; "y" |] |]
  in
  let mismatches =
    Diff_test.model_guided ~max_mismatches:3 ~model:ca
      (Prognosis_sul.Sul.of_mealy cb)
  in
  Alcotest.(check int) "capped" 3 (List.length mismatches)

let diff_test_quic_profiles () =
  (* End-to-end: the learned model of the retry-tolerant QUIC server
     drives testing of the strict-retry implementation — the Issue-1
     divergence surfaces without learning the second model. *)
  let module Quic = Prognosis_quic in
  let tolerant =
    Prognosis.Quic_study.learn ~seed:5L ~profile:Quic.Quic_profile.google_like ()
  in
  let strict_sul =
    Quic.Quic_adapter.sul ~profile:Quic.Quic_profile.strict_retry ~seed:6L ()
  in
  let mismatches =
    Diff_test.model_guided ~model:tolerant.Prognosis.Quic_study.model strict_sul
  in
  Alcotest.(check bool) "issue-1 divergence found" true (mismatches <> [])

(* --- stochastic annotation (paper §8 "environment quantities") --- *)

let contains_ haystack needle = contains haystack needle

let stochastic_deterministic_sul () =
  let sul = Prognosis_sul.Sul.of_mealy m1 in
  let st = Stochastic.estimate ~samples_per_transition:5 ~skeleton:m1 ~sul () in
  Alcotest.(check int) "all transitions sampled" 4
    (List.length (Stochastic.transitions st));
  Alcotest.(check int) "no stochastic edges" 0
    (List.length (Stochastic.stochastic_transitions st));
  Alcotest.(check (float 0.001)) "prob 1" 1.0
    (Stochastic.probability st ~state:0 ~input:'a' "x")

let flaky_mealy_sul rng =
  (* Behaves like m1 except state 1 on 'a' outputs "z" 70% / "Z" 30%. *)
  let state = ref 0 in
  Prognosis_sul.Sul.make
    ~reset:(fun () -> state := 0)
    ~step:(fun x ->
      let s', o = Prognosis_automata.Mealy.step m1 !state x in
      state := s';
      if o = "z" && Prognosis_sul.Rng.bool rng 0.3 then "Z" else o)
    ()

let stochastic_quantifies_flake () =
  let rng = Prognosis_sul.Rng.create 17L in
  let sul = flaky_mealy_sul rng in
  let st = Stochastic.estimate ~samples_per_transition:200 ~skeleton:m1 ~sul () in
  (match Stochastic.stochastic_transitions st with
  | [ ts ] ->
      Alcotest.(check char) "the z transition" 'a' ts.Stochastic.input;
      let p_z = Stochastic.probability st ~state:1 ~input:'a' "z" in
      Alcotest.(check bool)
        (Printf.sprintf "p(z)=%.2f near 0.7" p_z)
        true
        (p_z > 0.62 && p_z < 0.78)
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one stochastic transition, got %d"
           (List.length other)));
  let dot =
    Stochastic.to_dot ~input_pp:Fmt.char ~output_pp:Fmt.string st
  in
  Alcotest.(check bool) "stochastic edge highlighted" true
    (contains_ dot "color=red")

let stochastic_rejects_zero_samples () =
  Alcotest.check_raises "samples" (Invalid_argument "Stochastic.estimate: need at least one sample")
    (fun () ->
      ignore
        (Stochastic.estimate ~samples_per_transition:0 ~skeleton:m1
           ~sul:(Prognosis_sul.Sul.of_mealy m1) ()))

let stochastic_issue2_end_to_end () =
  (* Learn the mvfst-like skeleton under a majority oracle, then
     quantify: the post-close probe must be ~82% RESET. *)
  let module Quic = Prognosis_quic in
  let sul = Quic.Quic_adapter.sul ~profile:Quic.Quic_profile.mvfst_like ~seed:71L () in
  (* The modal oracle learns the most-likely behaviour even though
     individual runs disagree: answers are prefix-consistent and
     memoized, so the learner sees a deterministic function. 41 runs
     put the per-query misjudgment probability around 1e-5; the bounded
     random equivalence oracle keeps the total query count low enough
     that no misjudgment is expected over the whole run. *)
  let mq =
    Prognosis_learner.Oracle.of_fun
      (Prognosis_sul.Nondet.modal_oracle ~runs:41 sul)
  in
  let rng = Prognosis_sul.Rng.create 5L in
  let result =
    Prognosis_learner.Learn.run_mq ~max_rounds:30 ~inputs:Quic.Quic_alphabet.all
      ~mq
      ~eq:
        (Prognosis_learner.Eq_oracle.random_words ~rng ~max_tests:150 ~min_len:1
           ~max_len:6)
      ()
  in
  let skeleton = result.Prognosis_learner.Learn.model in
  let st = Stochastic.estimate ~samples_per_transition:120 ~skeleton ~sul () in
  let stochastic = Stochastic.stochastic_transitions st in
  Alcotest.(check bool) "found stochastic transitions" true (stochastic <> []);
  (* Every stochastic transition is a post-close probe answered RESET
     with probability near 0.82. *)
  List.iter
    (fun ts ->
      match ts.Stochastic.outcomes with
      | (top, p) :: _ ->
          Alcotest.(check bool) "top outcome is RESET" true
            (top = [ Quic.Quic_alphabet.abstract_reset ]);
          Alcotest.(check bool)
            (Printf.sprintf "p=%.2f near 0.82" p)
            true (p > 0.72 && p < 0.92)
      | [] -> Alcotest.fail "empty outcomes")
    stochastic

let () =
  Alcotest.run "analysis"
    [
      ( "model-diff",
        [
          Alcotest.test_case "equivalence" `Quick diff_equivalent;
          Alcotest.test_case "first difference" `Quick diff_first_difference;
          Alcotest.test_case "witnesses genuine" `Quick diff_witnesses_genuine;
          Alcotest.test_case "summary" `Quick diff_summary;
          Alcotest.test_case "summary equal" `Quick diff_summary_equal;
        ] );
      ( "safety",
        [
          Alcotest.test_case "holds" `Quick safety_holds;
          Alcotest.test_case "violation" `Quick safety_violation;
          Alcotest.test_case "after-always" `Quick safety_after_always;
          Alcotest.test_case "bounded response" `Quick bounded_response;
          Alcotest.test_case "bounded response on model" `Quick bounded_response_on_model;
          Alcotest.test_case "bounded response bad bound" `Quick bounded_response_rejects_bad_bound;
          Alcotest.test_case "conjunction" `Quick safety_conj;
          Alcotest.test_case "trace check" `Quick safety_check_trace;
          Alcotest.test_case "numeric verdicts" `Quick numeric_verdicts;
        ] );
      ( "visualize",
        [
          Alcotest.test_case "diff highlights" `Quick diff_dot_highlights;
          Alcotest.test_case "clean when equal" `Quick diff_dot_clean_when_equal;
          Alcotest.test_case "write file" `Quick write_file_works;
        ] );
      ( "diff-test",
        [
          Alcotest.test_case "suite" `Quick diff_test_suite_finds_difference;
          Alcotest.test_case "identical clean" `Quick diff_test_identical_suls_clean;
          Alcotest.test_case "model guided" `Quick diff_test_model_guided;
          Alcotest.test_case "mismatch cap" `Quick diff_test_max_mismatches;
          Alcotest.test_case "quic profiles" `Slow diff_test_quic_profiles;
        ] );
      ( "stochastic",
        [
          Alcotest.test_case "deterministic sul" `Quick stochastic_deterministic_sul;
          Alcotest.test_case "quantifies flake" `Quick stochastic_quantifies_flake;
          Alcotest.test_case "rejects zero samples" `Quick stochastic_rejects_zero_samples;
          Alcotest.test_case "issue 2 end-to-end" `Slow stochastic_issue2_end_to_end;
        ] );
    ]
