module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Rng = Prognosis_sul.Rng
module Nondet = Prognosis_sul.Nondet
module Learn = Prognosis_learner.Learn
module Eq_oracle = Prognosis_learner.Eq_oracle
open Prognosis_dtls

(* --- wire codecs --- *)

let handshake_roundtrip () =
  let h =
    {
      Dtls_wire.msg_type = Dtls_wire.Client_hello;
      message_seq = 3;
      body = "CR:abcd;COOKIE:";
    }
  in
  match Dtls_wire.decode_handshake (Dtls_wire.encode_handshake h) with
  | Error e -> Alcotest.fail e
  | Ok h' ->
      Alcotest.(check bool) "type" true (h'.Dtls_wire.msg_type = Dtls_wire.Client_hello);
      Alcotest.(check int) "seq" 3 h'.Dtls_wire.message_seq;
      Alcotest.(check string) "body" "CR:abcd;COOKIE:" h'.Dtls_wire.body

let handshake_rejects_garbage () =
  (match Dtls_wire.decode_handshake "xy" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short message accepted");
  match Dtls_wire.decode_handshake (String.make 12 '\xFF') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown type accepted"

let record_roundtrip_plaintext () =
  let r =
    { Dtls_wire.content = Dtls_wire.Handshake; epoch = 0; seq = 42; payload = "data" }
  in
  match Dtls_wire.decode_record (Dtls_wire.encode_record r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
      Alcotest.(check int) "epoch" 0 r'.Dtls_wire.epoch;
      Alcotest.(check int) "seq" 42 r'.Dtls_wire.seq;
      Alcotest.(check string) "payload" "data" r'.Dtls_wire.payload

let record_roundtrip_protected () =
  let c = Dtls_crypto.create () in
  Dtls_crypto.derive_master c ~client_random:"cr" ~server_random:"sr"
    ~premaster:"pms";
  let seal ~epoch ~seq payload =
    Option.get (Dtls_crypto.seal c Dtls_crypto.Client_write ~epoch ~seq payload)
  in
  let unprotect ~epoch ~seq payload =
    Dtls_crypto.open_ c Dtls_crypto.Client_write ~epoch ~seq payload
  in
  let r =
    { Dtls_wire.content = Dtls_wire.Application_data; epoch = 1; seq = 7; payload = "secret" }
  in
  let wire = Dtls_wire.encode_record ~protect:seal r in
  (* Ciphertext differs from plaintext on the wire. *)
  Alcotest.(check bool) "protected" true
    (String.length wire > 13 + 6
    && String.sub wire 13 6 <> "secret");
  match Dtls_wire.decode_record ~unprotect wire with
  | Error e -> Alcotest.fail e
  | Ok r' -> Alcotest.(check string) "payload" "secret" r'.Dtls_wire.payload

let record_wrong_keys_fail () =
  let c = Dtls_crypto.create () in
  Dtls_crypto.derive_master c ~client_random:"cr" ~server_random:"sr" ~premaster:"pms";
  let other = Dtls_crypto.create () in
  Dtls_crypto.derive_master other ~client_random:"cr" ~server_random:"XX" ~premaster:"pms";
  let seal ~epoch ~seq payload =
    Option.get (Dtls_crypto.seal c Dtls_crypto.Client_write ~epoch ~seq payload)
  in
  let wire =
    Dtls_wire.encode_record ~protect:seal
      { Dtls_wire.content = Dtls_wire.Application_data; epoch = 1; seq = 0; payload = "x" }
  in
  match
    Dtls_wire.decode_record
      ~unprotect:(fun ~epoch ~seq payload ->
        Dtls_crypto.open_ other Dtls_crypto.Client_write ~epoch ~seq payload)
      wire
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong keys must not decode"

let crypto_directions_differ () =
  let c = Dtls_crypto.create () in
  Dtls_crypto.derive_master c ~client_random:"a" ~server_random:"b" ~premaster:"c";
  Alcotest.(check bool) "verify data per direction" true
    (Dtls_crypto.verify_data c Dtls_crypto.Client_write
    <> Dtls_crypto.verify_data c Dtls_crypto.Server_write)

(* --- full handshake through the adapter --- *)

let run_word seed word =
  let sul = Dtls_adapter.sul ~seed () in
  List.map Dtls_alphabet.output_to_string (Sul.query sul word)

let full_handshake () =
  let out =
    run_word 3L
      Dtls_alphabet.
        [
          Client_hello;
          Client_hello;
          Client_key_exchange;
          Change_cipher_spec;
          Finished;
          App_data;
          Alert_close;
        ]
  in
  Alcotest.(check (list string)) "lifecycle"
    [
      "{HELLO_VERIFY_REQUEST}";
      "{SERVER_HELLO,CERTIFICATE,SERVER_HELLO_DONE}";
      "NIL";
      "NIL";
      "{CCS,FINISHED}";
      "{APP_DATA}";
      "{ALERT}";
    ]
    out

let echo_service () =
  let adapter, client = Dtls_adapter.create ~seed:5L () in
  let _ =
    Prognosis_sul.Adapter.query adapter
      Dtls_alphabet.
        [
          Client_hello; Client_hello; Client_key_exchange; Change_cipher_spec;
          Finished; App_data;
        ]
  in
  Alcotest.(check bool) "handshake complete" true (Dtls_client.handshake_complete client);
  Alcotest.(check string) "uppercased echo" "PING" (Dtls_client.echoed client)

let finished_before_keys_is_nil () =
  let out = run_word 7L Dtls_alphabet.[ Finished; App_data ] in
  Alcotest.(check (list string)) "unrealizable" [ "NIL"; "NIL" ] out

let early_ccs_fatal_when_strict () =
  let out = run_word 9L Dtls_alphabet.[ Client_hello; Client_hello; Change_cipher_spec ] in
  Alcotest.(check string) "fatal alert" "{ALERT}" (List.nth out 2)

let early_ccs_ignored_when_lenient () =
  let sul =
    Dtls_adapter.sul
      ~server_config:{ Dtls_server.require_cookie = true; strict_ccs = false }
      ~seed:9L ()
  in
  let out =
    List.map Dtls_alphabet.output_to_string
      (Sul.query sul Dtls_alphabet.[ Client_hello; Client_hello; Change_cipher_spec ])
  in
  Alcotest.(check string) "silently dropped" "NIL" (List.nth out 2)

let no_cookie_config_skips_hvr () =
  let sul =
    Dtls_adapter.sul
      ~server_config:{ Dtls_server.require_cookie = false; strict_ccs = true }
      ~seed:11L ()
  in
  let out =
    List.map Dtls_alphabet.output_to_string (Sul.query sul [ Dtls_alphabet.Client_hello ])
  in
  Alcotest.(check (list string)) "direct flight"
    [ "{SERVER_HELLO,CERTIFICATE,SERVER_HELLO_DONE}" ]
    out

let deterministic () =
  let sul = Dtls_adapter.sul ~seed:13L () in
  let words =
    Dtls_alphabet.
      [
        [ Client_hello; Client_hello; Client_key_exchange; Change_cipher_spec; Finished ];
        [ Client_key_exchange; Client_hello; App_data ];
        [ Client_hello; Alert_close; Client_hello ];
        [ Change_cipher_spec; Finished; Client_hello ];
      ]
  in
  List.iter
    (fun w ->
      match Nondet.query Nondet.default sul w with
      | Nondet.Deterministic _ -> ()
      | Nondet.Nondeterministic _ -> Alcotest.fail "DTLS SUL must be deterministic")
    words

(* --- learning --- *)

let scenarios =
  Dtls_alphabet.
    [
      [ Client_hello; Client_hello; Client_key_exchange; Change_cipher_spec; Finished ];
      [
        Client_hello; Client_hello; Client_key_exchange; Change_cipher_spec;
        Finished; App_data; Alert_close; App_data;
      ];
      [ Client_hello; Client_key_exchange; Change_cipher_spec; Finished; App_data ];
    ]

let learn_dtls ?server_config seed =
  let sul = Dtls_adapter.sul ?server_config ~seed () in
  let rng = Rng.create (Int64.add seed 70L) in
  let eq =
    Eq_oracle.combine
      [
        Eq_oracle.fixed_words scenarios;
        Eq_oracle.w_method ~extra_states:1 ();
        Eq_oracle.random_words ~rng ~max_tests:400 ~min_len:1 ~max_len:10;
      ]
  in
  Learn.run ~inputs:Dtls_alphabet.all ~sul ~eq ()

let learned_model_shape () =
  let r = learn_dtls 17L in
  let m = r.Learn.model in
  Alcotest.(check bool)
    (Printf.sprintf "states %d in [5..14]" (Mealy.size m))
    true
    (Mealy.size m >= 5 && Mealy.size m <= 14);
  (* The model replays the full lifecycle. *)
  let out =
    Mealy.run m
      Dtls_alphabet.
        [ Client_hello; Client_hello; Client_key_exchange; Change_cipher_spec; Finished ]
  in
  Alcotest.(check string) "finish flight" "{CCS,FINISHED}"
    (Dtls_alphabet.output_to_string (List.nth out 4))

let cookie_configs_learn_different_models () =
  let with_cookie = learn_dtls 19L in
  let without =
    learn_dtls ~server_config:{ Dtls_server.require_cookie = false; strict_ccs = true } 23L
  in
  Alcotest.(check bool) "different models" false
    (Prognosis_analysis.Model_diff.equivalent with_cookie.Learn.model
       without.Learn.model);
  Alcotest.(check bool) "cookie model is larger" true
    (Mealy.size with_cookie.Learn.model > Mealy.size without.Learn.model)

let seed_independent_models () =
  let a = learn_dtls 29L and b = learn_dtls 31L in
  Alcotest.(check bool) "equivalent" true
    (Prognosis_analysis.Model_diff.equivalent a.Learn.model b.Learn.model)

let property_no_appdata_before_finished () =
  let r = learn_dtls 37L in
  let prop =
    Prognosis_analysis.Safety.after_always
      "no APP_DATA before the server FINISHED"
      ~trigger:(fun ((_ : Dtls_alphabet.symbol), _) -> true)
      ~then_:(fun (_, _) -> true)
  in
  ignore prop;
  (* Stronger direct check: in the learned model, every transition that
     outputs APP_DATA is preceded by one outputting FINISHED on every
     path from the initial state. Approximate with the monitor: APP_DATA
     output before any FINISHED output violates. *)
  let seen_finished o = List.mem Dtls_alphabet.A_finished o in
  let has_appdata o = List.mem Dtls_alphabet.A_app_data o in
  let monitor =
    Prognosis_automata.Dfa.make ~size:3 ~initial:0
      ~delta:(fun s (_, o) ->
        match s with
        | 0 -> if has_appdata o then 2 else if seen_finished o then 1 else 0
        | s -> s)
      ~accepting:(fun s -> s <> 2)
  in
  let prop = Prognosis_analysis.Safety.of_monitor "appdata only after finished" monitor in
  Alcotest.(check (option (list pass))) "holds" None
    (Prognosis_analysis.Safety.check prop r.Learn.model)

let () =
  Alcotest.run "dtls"
    [
      ( "wire",
        [
          Alcotest.test_case "handshake roundtrip" `Quick handshake_roundtrip;
          Alcotest.test_case "handshake garbage" `Quick handshake_rejects_garbage;
          Alcotest.test_case "record plaintext" `Quick record_roundtrip_plaintext;
          Alcotest.test_case "record protected" `Quick record_roundtrip_protected;
          Alcotest.test_case "wrong keys" `Quick record_wrong_keys_fail;
          Alcotest.test_case "directions differ" `Quick crypto_directions_differ;
        ] );
      ( "connection",
        [
          Alcotest.test_case "full handshake" `Quick full_handshake;
          Alcotest.test_case "echo service" `Quick echo_service;
          Alcotest.test_case "finished before keys" `Quick finished_before_keys_is_nil;
          Alcotest.test_case "early ccs strict" `Quick early_ccs_fatal_when_strict;
          Alcotest.test_case "early ccs lenient" `Quick early_ccs_ignored_when_lenient;
          Alcotest.test_case "no-cookie config" `Quick no_cookie_config_skips_hvr;
          Alcotest.test_case "deterministic" `Quick deterministic;
        ] );
      ( "learning",
        [
          Alcotest.test_case "model shape" `Slow learned_model_shape;
          Alcotest.test_case "cookie configs differ" `Slow cookie_configs_learn_different_models;
          Alcotest.test_case "seed independent" `Slow seed_independent_models;
          Alcotest.test_case "appdata after finished" `Slow property_no_appdata_before_finished;
        ] );
    ]
