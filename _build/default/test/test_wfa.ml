module Wfa = Prognosis_learner.Wfa
module Mealy = Prognosis_automata.Mealy
module Rng = Prognosis_sul.Rng

let check_close msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %g ~ %g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= 1e-6 *. (1.0 +. Float.abs expected))

(* A hand-built WFA: counts occurrences of 'a' in the word.
   dim 2: state vector (1, count). Reading 'a' adds 1 to count. *)
let count_a =
  Wfa.make ~alphabet:[| 'a'; 'b' |]
    ~initial:[| 1.0; 0.0 |]
    ~transitions:
      [|
        [| [| 1.0; 1.0 |]; [| 0.0; 1.0 |] |] (* a *);
        [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] (* b *);
      |]
    ~final:[| 0.0; 1.0 |]

let evaluate_counts () =
  check_close "empty" 0.0 (Wfa.evaluate count_a []);
  check_close "aba" 2.0 (Wfa.evaluate count_a [ 'a'; 'b'; 'a' ]);
  check_close "bbb" 0.0 (Wfa.evaluate count_a [ 'b'; 'b'; 'b' ]);
  check_close "aaaa" 4.0 (Wfa.evaluate count_a [ 'a'; 'a'; 'a'; 'a' ])

let make_validates () =
  Alcotest.check_raises "shape" (Invalid_argument "Wfa.make: transition matrix shape")
    (fun () ->
      ignore
        (Wfa.make ~alphabet:[| 'a' |] ~initial:[| 1.0; 0.0 |]
           ~transitions:[| [| [| 1.0 |] |] |]
           ~final:[| 0.0; 1.0 |]))

let learn_from target ~seed =
  let mq w = Wfa.evaluate target w in
  let rng = Rng.create seed in
  let eq =
    Wfa.random_eq ~rng ~mq ~tolerance:1e-6 ~max_tests:400 ~max_len:8
      [| 'a'; 'b' |]
  in
  Wfa.learn ~alphabet:[| 'a'; 'b' |] ~mq ~eq ()

let agree ~seed a b =
  let rng = Rng.create seed in
  let ok = ref true in
  for _ = 1 to 300 do
    let len = Rng.int rng 10 in
    let w = List.init len (fun _ -> if Rng.bool rng 0.5 then 'a' else 'b') in
    let va = Wfa.evaluate a w and vb = Wfa.evaluate b w in
    if Float.abs (va -. vb) > 1e-5 *. (1.0 +. Float.abs va) then ok := false
  done;
  !ok

let learn_counter () =
  match learn_from count_a ~seed:3L with
  | Error e -> Alcotest.fail e
  | Ok learned ->
      Alcotest.(check bool) "agrees with target" true (agree ~seed:7L learned count_a);
      Alcotest.(check bool)
        (Printf.sprintf "minimal-ish dimension %d <= 2" (Wfa.states learned))
        true
        (Wfa.states learned <= 2)

(* Weighted language: f(w) = 2^{#a(w)} — a genuinely multiplicative
   behaviour (dim 1). *)
let pow2_a =
  Wfa.make ~alphabet:[| 'a'; 'b' |] ~initial:[| 1.0 |]
    ~transitions:[| [| [| 2.0 |] |]; [| [| 1.0 |] |] |]
    ~final:[| 1.0 |]

let learn_multiplicative () =
  match learn_from pow2_a ~seed:11L with
  | Error e -> Alcotest.fail e
  | Ok learned ->
      Alcotest.(check bool) "agrees" true (agree ~seed:13L learned pow2_a);
      Alcotest.(check int) "dimension 1" 1 (Wfa.states learned)

let gen_small_wfa =
  QCheck2.Gen.(
    let entry = map float_of_int (int_range (-2) 2) in
    let* dim = int_range 1 3 in
    let matrix = array_size (return dim) (array_size (return dim) entry) in
    let* transitions = array_size (return 2) matrix in
    let* final = array_size (return dim) entry in
    let initial = Array.init dim (fun i -> if i = 0 then 1.0 else 0.0) in
    return (Wfa.make ~alphabet:[| 'a'; 'b' |] ~initial ~transitions ~final))

let prop_learn_random_wfas =
  QCheck2.Test.make ~count:40 ~name:"hankel learning recovers random WFAs"
    QCheck2.Gen.(pair gen_small_wfa (int_range 0 10000))
    (fun (target, seed) ->
      match learn_from target ~seed:(Int64.of_int seed) with
      | Error _ -> false
      | Ok learned ->
          agree ~seed:(Int64.of_int (seed + 1)) learned target
          && Wfa.states learned <= Wfa.states target)

(* --- the quantitative protocol function (paper §8) --- *)

(* Deterministic 3-state skeleton: 'c' closes (state 2); probes in the
   closed state draw a reset with probability 0.82. *)
let skeleton =
  Mealy.make ~size:3 ~initial:0 ~inputs:[| 'p'; 'c' |]
    ~delta:[| [| 1; 2 |]; [| 1; 2 |]; [| 2; 2 |] |]
    ~lambda:[| [| "ok"; "close" |]; [| "ok"; "close" |]; [| "?"; "?" |] |]

let reset_weight ~state ~input =
  if state = 2 && input = 'p' then 0.82 else 0.0

let expected_resets w = Wfa.expected_count ~skeleton ~weight:reset_weight w

let expected_count_values () =
  check_close "no close" 0.0 (expected_resets [ 'p'; 'p' ]);
  check_close "three probes after close" (3. *. 0.82)
    (expected_resets [ 'c'; 'p'; 'p'; 'p' ]);
  check_close "close twice" 0.82 (expected_resets [ 'c'; 'c'; 'p' ])

let learn_expected_resets () =
  let rng = Rng.create 21L in
  let eq =
    Wfa.random_eq ~rng ~mq:expected_resets ~tolerance:1e-6 ~max_tests:500
      ~max_len:10
      [| 'p'; 'c' |]
  in
  match Wfa.learn ~alphabet:[| 'p'; 'c' |] ~mq:expected_resets ~eq () with
  | Error e -> Alcotest.fail e
  | Ok learned ->
      check_close "predicts 5 probes" (5. *. 0.82)
        (Wfa.evaluate learned [ 'c'; 'p'; 'p'; 'p'; 'p'; 'p' ]);
      check_close "predicts pre-close silence" 0.0
        (Wfa.evaluate learned [ 'p'; 'p'; 'p' ]);
      Alcotest.(check bool)
        (Printf.sprintf "compact model (%d states)" (Wfa.states learned))
        true
        (Wfa.states learned <= 4)

let () =
  Alcotest.run "wfa"
    [
      ( "evaluate",
        [
          Alcotest.test_case "counting WFA" `Quick evaluate_counts;
          Alcotest.test_case "validation" `Quick make_validates;
        ] );
      ( "learning",
        [
          Alcotest.test_case "counter" `Quick learn_counter;
          Alcotest.test_case "multiplicative" `Quick learn_multiplicative;
          QCheck_alcotest.to_alcotest prop_learn_random_wfas;
        ] );
      ( "quantitative",
        [
          Alcotest.test_case "expected-count function" `Quick expected_count_values;
          Alcotest.test_case "learn expected resets" `Quick learn_expected_resets;
        ] );
    ]
