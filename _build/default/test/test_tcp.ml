module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Rng = Prognosis_sul.Rng
module Nondet = Prognosis_sul.Nondet
module Adapter = Prognosis_sul.Adapter
module Oracle_table = Prognosis_sul.Oracle_table
module Learn = Prognosis_learner.Learn
module Eq_oracle = Prognosis_learner.Eq_oracle
open Prognosis_tcp

(* --- wire codec --- *)

let roundtrip () =
  let seg =
    Tcp_wire.make ~payload:"hello" ~src_port:40000 ~dst_port:443 ~seq:123456
      ~ack:654321
      (Tcp_wire.flags_of_string "AP")
  in
  match Tcp_wire.decode (Tcp_wire.encode seg) with
  | Error e -> Alcotest.fail e
  | Ok seg' ->
      Alcotest.(check int) "seq" seg.Tcp_wire.seq seg'.Tcp_wire.seq;
      Alcotest.(check int) "ack" seg.Tcp_wire.ack seg'.Tcp_wire.ack;
      Alcotest.(check string) "payload" "hello" seg'.Tcp_wire.payload;
      Alcotest.(check string) "flags" "AP"
        (Tcp_wire.flags_to_string seg'.Tcp_wire.flags)

let checksum_detects_corruption () =
  let seg =
    Tcp_wire.make ~src_port:1 ~dst_port:2 ~seq:7 ~ack:9
      (Tcp_wire.flags_of_string "S")
  in
  let wire = Bytes.of_string (Tcp_wire.encode seg) in
  Bytes.set wire 5 (Char.chr (Char.code (Bytes.get wire 5) lxor 0x10));
  match Tcp_wire.decode (Bytes.to_string wire) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted segment must not decode"

let short_segment_rejected () =
  match Tcp_wire.decode "tiny" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short data must not decode"

let flags_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s
        (Tcp_wire.flags_to_string (Tcp_wire.flags_of_string s)))
    [ "S"; "SA"; "A"; "AF"; "AR"; "AP"; "R" ]

let json_concrete_alphabet () =
  (* The paper's Example 3.2 concrete-alphabet rendering. *)
  let seg =
    Tcp_wire.make ~window:8192 ~src_port:40965 ~dst_port:44344 ~seq:48108 ~ack:0
      (Tcp_wire.flags_of_string "S")
  in
  let json = Tcp_wire.to_json seg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (let n = String.length needle and h = String.length json in
         let rec loop i =
           i + n <= h && (String.sub json i n = needle || loop (i + 1))
         in
         loop 0))
    [
      "\"isNull\": false";
      "\"sourcePort\": 40965";
      "\"destinationPort\": 44344";
      "\"seqNumber\": 48108";
      "\"ackNumber\": 0";
      "\"dataOffset\": null";
      "\"flags\": \"S\"";
      "\"window\": 8192";
      "\"checksum\": null";
      "\"urgentPointer\": 0";
    ]

let options_roundtrip () =
  let options =
    Tcp_wire.
      [ Mss 1460; Window_scale 7; Sack_permitted; Timestamps { value = 123456; echo = 654321 } ]
  in
  let seg =
    Tcp_wire.make ~options ~payload:"pp" ~src_port:1 ~dst_port:2 ~seq:10 ~ack:20
      (Tcp_wire.flags_of_string "S")
  in
  match Tcp_wire.decode (Tcp_wire.encode seg) with
  | Error e -> Alcotest.fail e
  | Ok seg' ->
      Alcotest.(check int) "all options survive" 4 (List.length seg'.Tcp_wire.options);
      Alcotest.(check (option int)) "mss" (Some 1460) (Tcp_wire.find_mss seg');
      Alcotest.(check string) "payload intact" "pp" seg'.Tcp_wire.payload

let syn_negotiates_mss () =
  let server = Tcp_server.create (Rng.create 5L) in
  let syn =
    Tcp_wire.make
      ~options:[ Tcp_wire.Mss 1200 ]
      ~src_port:40000 ~dst_port:443 ~seq:500 ~ack:0
      (Tcp_wire.flags_of_string "S")
  in
  match Tcp_server.handle server syn with
  | [ synack ] ->
      Alcotest.(check (option int)) "server caps at peer mss" (Some 1200)
        (Tcp_wire.find_mss synack)
  | _ -> Alcotest.fail "expected SYN+ACK"

let seq_add_wraps () =
  Alcotest.(check int) "wrap" 1 (Tcp_wire.seq_add 0xFFFFFFFF 2);
  Alcotest.(check int) "negative" 0xFFFFFFFF (Tcp_wire.seq_add 0 (-1))

(* --- abstract alphabet --- *)

let alphabet_size () =
  Alcotest.(check int) "7 symbols" 7 (Array.length Tcp_alphabet.all)

let abstract_flags () =
  let seg flags payload =
    Tcp_wire.make ~payload ~src_port:1 ~dst_port:2 ~seq:0 ~ack:0
      (Tcp_wire.flags_of_string flags)
  in
  Alcotest.(check bool) "syn" true (Tcp_alphabet.abstract (seg "S" "") = Some Tcp_alphabet.Syn);
  Alcotest.(check bool) "synack" true
    (Tcp_alphabet.abstract (seg "SA" "") = Some Tcp_alphabet.Syn_ack);
  Alcotest.(check bool) "ack+data is AckPsh view" true
    (Tcp_alphabet.abstract (seg "A" "D") = Some Tcp_alphabet.Ack_psh);
  Alcotest.(check bool) "finack" true
    (Tcp_alphabet.abstract (seg "AF" "") = Some Tcp_alphabet.Fin_ack);
  Alcotest.(check bool) "unknown" true (Tcp_alphabet.abstract (seg "SF" "") = None)

(* --- server state machine --- *)

let fresh_server () = Tcp_server.create (Rng.create 42L)

let client_seg ?(payload = "") ~seq ~ack flags =
  Tcp_wire.make ~payload ~src_port:40000 ~dst_port:443 ~seq ~ack
    (Tcp_wire.flags_of_string flags)

let handshake server =
  (* Returns (client_seq, server_seq) after completing the handshake. *)
  let syn = client_seg ~seq:1000 ~ack:0 "S" in
  match Tcp_server.handle server syn with
  | [ synack ] ->
      Alcotest.(check string) "synack flags" "SA"
        (Tcp_wire.flags_to_string synack.Tcp_wire.flags);
      Alcotest.(check int) "acks our syn" 1001 synack.Tcp_wire.ack;
      let server_seq = Tcp_wire.seq_add synack.Tcp_wire.seq 1 in
      let final_ack = client_seg ~seq:1001 ~ack:server_seq "A" in
      Alcotest.(check (list pass)) "silent" [] (Tcp_server.handle server final_ack);
      Alcotest.(check string) "established" "ESTABLISHED"
        (Tcp_server.state_to_string (Tcp_server.state server));
      (1001, server_seq)
  | _ -> Alcotest.fail "expected exactly one SYN+ACK"

let server_handshake () = ignore (handshake (fresh_server ()))

let server_refuses_stray_ack () =
  let server = fresh_server () in
  match Tcp_server.handle server (client_seg ~seq:5 ~ack:77 "A") with
  | [ rst ] ->
      Alcotest.(check string) "rst" "R" (Tcp_wire.flags_to_string rst.Tcp_wire.flags);
      Alcotest.(check int) "rst seq from ack" 77 rst.Tcp_wire.seq
  | _ -> Alcotest.fail "expected RST"

let server_data_acked () =
  let server = fresh_server () in
  let cseq, sseq = handshake server in
  match Tcp_server.handle server (client_seg ~payload:"D" ~seq:cseq ~ack:sseq "AP") with
  | [ ack ] ->
      Alcotest.(check string) "ack" "A" (Tcp_wire.flags_to_string ack.Tcp_wire.flags);
      Alcotest.(check int) "acks data" (cseq + 1) ack.Tcp_wire.ack
  | _ -> Alcotest.fail "expected ACK of data"

let server_full_close () =
  let server = fresh_server () in
  let cseq, sseq = handshake server in
  (* Client FIN. *)
  (match Tcp_server.handle server (client_seg ~seq:cseq ~ack:sseq "AF") with
  | [ ack ] ->
      Alcotest.(check string) "ack of fin" "A"
        (Tcp_wire.flags_to_string ack.Tcp_wire.flags)
  | _ -> Alcotest.fail "expected ACK of FIN");
  Alcotest.(check string) "close-wait" "CLOSE_WAIT"
    (Tcp_server.state_to_string (Tcp_server.state server));
  (* Client ACK prompts the application close: server FIN. *)
  (match Tcp_server.handle server (client_seg ~seq:(cseq + 1) ~ack:sseq "A") with
  | [ fin ] ->
      Alcotest.(check string) "server fin" "AF"
        (Tcp_wire.flags_to_string fin.Tcp_wire.flags);
      (* Final ACK. *)
      let final =
        client_seg ~seq:(cseq + 1) ~ack:(Tcp_wire.seq_add fin.Tcp_wire.seq 1) "A"
      in
      Alcotest.(check (list pass)) "silent close" [] (Tcp_server.handle server final)
  | _ -> Alcotest.fail "expected server FIN");
  Alcotest.(check string) "closed" "CLOSED"
    (Tcp_server.state_to_string (Tcp_server.state server));
  (* One-shot server refuses a new SYN after full close. *)
  match Tcp_server.handle server (client_seg ~seq:9999 ~ack:0 "S") with
  | [ rst ] ->
      Alcotest.(check bool) "refused" true rst.Tcp_wire.flags.Tcp_wire.rst
  | _ -> Alcotest.fail "expected RST after close"

let server_rst_aborts () =
  let server = fresh_server () in
  let cseq, _sseq = handshake server in
  Alcotest.(check (list pass)) "silent abort" []
    (Tcp_server.handle server (client_seg ~seq:cseq ~ack:0 "R"));
  Alcotest.(check string) "closed" "CLOSED"
    (Tcp_server.state_to_string (Tcp_server.state server))

let server_challenge_ack_on_syn () =
  let server = fresh_server () in
  let _cseq, _sseq = handshake server in
  match Tcp_server.handle server (client_seg ~seq:2000 ~ack:0 "S") with
  | [ challenge ] ->
      Alcotest.(check string) "challenge ack" "A"
        (Tcp_wire.flags_to_string challenge.Tcp_wire.flags)
  | _ -> Alcotest.fail "expected challenge ACK"

let server_reset_restores () =
  let server = fresh_server () in
  ignore (handshake server);
  Tcp_server.reset server;
  Alcotest.(check string) "listen again" "LISTEN"
    (Tcp_server.state_to_string (Tcp_server.state server))

let server_drops_bad_checksum () =
  let server = fresh_server () in
  let wire = Bytes.of_string (Tcp_wire.encode (client_seg ~seq:1 ~ack:0 "S")) in
  Bytes.set wire 4 '\xFF';
  Alcotest.(check (list string)) "dropped" []
    (Tcp_server.handle_bytes server (Bytes.to_string wire))

(* --- adapter + determinism --- *)

let make_sul () = Tcp_adapter.sul ~seed:7L ()

let adapter_handshake () =
  let sul = make_sul () in
  let out = Sul.query sul Tcp_alphabet.[ Syn; Ack ] in
  Alcotest.(check (list string)) "3-way handshake"
    [ "SYN+ACK(?,?,0)"; "NIL" ]
    (List.map Tcp_alphabet.output_to_string out)

let adapter_data_exchange () =
  let sul = make_sul () in
  let out = Sul.query sul Tcp_alphabet.[ Syn; Ack; Ack_psh ] in
  Alcotest.(check (list string)) "data is acked"
    [ "SYN+ACK(?,?,0)"; "NIL"; "ACK(?,?,0)" ]
    (List.map Tcp_alphabet.output_to_string out)

let adapter_deterministic () =
  let sul = make_sul () in
  let words =
    Tcp_alphabet.
      [
        [ Syn; Ack; Ack_psh; Fin_ack; Ack; Ack ];
        [ Syn; Syn; Ack; Rst; Syn ];
        [ Ack; Ack_psh; Fin_ack ];
        [ Syn; Fin_ack; Ack_psh; Ack_rst; Syn_ack ];
      ]
  in
  List.iter
    (fun w ->
      match Nondet.query Nondet.default sul w with
      | Nondet.Deterministic _ -> ()
      | Nondet.Nondeterministic _ -> Alcotest.fail "TCP SUL must be deterministic")
    words

let adapter_oracle_table_records () =
  let adapter = Tcp_adapter.create ~seed:7L () in
  let _ = Adapter.query adapter Tcp_alphabet.[ Syn; Ack ] in
  Alcotest.(check int) "one entry" 1
    (Oracle_table.size adapter.Prognosis_sul.Adapter.table);
  match Oracle_table.entries adapter.Prognosis_sul.Adapter.table with
  | [ e ] ->
      Alcotest.(check int) "two steps" 2 (List.length e.Oracle_table.steps);
      Alcotest.(check int) "two concrete inputs" 2
        (List.length (Oracle_table.concrete_inputs e));
      Alcotest.(check int) "one concrete output" 1
        (List.length (Oracle_table.concrete_outputs e))
  | _ -> Alcotest.fail "expected exactly one entry"

(* --- learning the TCP model (paper §6.1) --- *)

let learn_tcp () =
  let sul = make_sul () in
  let rng = Rng.create 3L in
  let eq =
    Eq_oracle.combine
      [
        Eq_oracle.w_method ~extra_states:1 ();
        Eq_oracle.random_words ~rng ~max_tests:500 ~min_len:1 ~max_len:12;
      ]
  in
  Learn.run ~inputs:Tcp_alphabet.all ~sul ~eq ()

let tcp_model_shape () =
  let result = learn_tcp () in
  let m = result.Learn.model in
  Alcotest.(check int) "six states (paper: 6)" 6 (Mealy.size m);
  Alcotest.(check int) "42 transitions (paper: 42)" 42 (Mealy.transitions m)

let tcp_model_handshake_path () =
  let m = (learn_tcp ()).Learn.model in
  let out = Mealy.run m Tcp_alphabet.[ Syn; Ack ] in
  Alcotest.(check (list string)) "model handshake"
    [ "SYN+ACK(?,?,0)"; "NIL" ]
    (List.map Tcp_alphabet.output_to_string out)

let tcp_model_agrees_with_sul () =
  let m = (learn_tcp ()).Learn.model in
  let sul = make_sul () in
  let rng = Rng.create 123L in
  (* Random probing: model and SUL agree on fresh traces. *)
  for _ = 1 to 200 do
    let len = 1 + Rng.int rng 10 in
    let word =
      List.init len (fun _ -> Tcp_alphabet.all.(Rng.int rng 7))
    in
    if Sul.query sul word <> Mealy.run m word then
      Alcotest.fail "model disagrees with SUL"
  done

let tcp_model_appendix_spot_checks () =
  (* Transitions the paper's Appendix A.1 figure shows for the Linux
     stack, checked on our learned model at the abstract level. *)
  let m = (learn_tcp ()).Learn.model in
  let out_after prefix sym =
    let state = Mealy.state_after m prefix in
    Tcp_alphabet.output_to_string (snd (Mealy.step m state sym))
  in
  (* Listener refuses stray segments with RST... *)
  Alcotest.(check string) "LISTEN: SYN+ACK refused" "RST(?,?,0)"
    (out_after [] Tcp_alphabet.Syn_ack);
  Alcotest.(check string) "LISTEN: ACK refused" "RST(?,?,0)"
    (out_after [] Tcp_alphabet.Ack);
  (* ...but stays silent on RSTs. *)
  Alcotest.(check string) "LISTEN: RST silent" "NIL" (out_after [] Tcp_alphabet.Rst);
  (* SYN_RCVD: retransmitted SYN re-answered with SYN+ACK. *)
  Alcotest.(check string) "SYN_RCVD: SYN repeat" "SYN+ACK(?,?,0)"
    (out_after [ Tcp_alphabet.Syn ] Tcp_alphabet.Syn);
  (* ESTABLISHED: in-window SYN gets a challenge ACK (Linux). *)
  Alcotest.(check string) "ESTABLISHED: challenge ack" "ACK(?,?,0)"
    (out_after Tcp_alphabet.[ Syn; Ack ] Tcp_alphabet.Syn);
  (* Full close then anything: refused. *)
  Alcotest.(check string) "CLOSED: SYN refused" "ACK+RST(?,?,0)"
    (out_after Tcp_alphabet.[ Syn; Ack; Fin_ack; Ack; Ack ] Tcp_alphabet.Syn)

let learning_survives_loss () =
  (* With 3% loss, single executions disagree; the §5 repetition check
     (majority answers) restores a deterministic view and learning
     converges to the same model as the reliable channel. *)
  let reliable_model = (learn_tcp ()).Learn.model in
  let lossy =
    Tcp_adapter.sul ~network:(Prognosis_sul.Network.lossy 0.03) ~seed:7L ()
  in
  let mq =
    Prognosis_learner.Oracle.of_fun
      (Prognosis_sul.Nondet.modal_oracle ~runs:15 lossy)
  in
  let result =
    Prognosis_learner.Learn.run_mq ~inputs:Tcp_alphabet.all ~mq
      ~eq:(Prognosis_learner.Eq_oracle.w_method ~extra_states:1 ())
      ()
  in
  Alcotest.(check (option (list pass))) "same model as reliable channel" None
    (Mealy.equivalent result.Learn.model reliable_model)

let lossy_network_is_nondeterministic () =
  (* With 30% loss the SUL stops answering deterministically; the
     nondeterminism check must notice. *)
  let sul =
    Tcp_adapter.sul ~network:(Prognosis_sul.Network.lossy 0.3) ~seed:21L ()
  in
  let word = Tcp_alphabet.[ Syn; Ack; Ack_psh ] in
  match Nondet.query { Nondet.default with max_runs = 40 } sul word with
  | Nondet.Nondeterministic _ -> ()
  | Nondet.Deterministic _ ->
      (* Possible but vanishingly unlikely at this loss rate; treat as
         failure so a silently reliable channel is caught. *)
      Alcotest.fail "expected nondeterminism under 30% loss"

let () =
  Alcotest.run "tcp"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick roundtrip;
          Alcotest.test_case "checksum corruption" `Quick checksum_detects_corruption;
          Alcotest.test_case "short segment" `Quick short_segment_rejected;
          Alcotest.test_case "flags roundtrip" `Quick flags_roundtrip;
          Alcotest.test_case "json concrete alphabet" `Quick json_concrete_alphabet;
          Alcotest.test_case "options roundtrip" `Quick options_roundtrip;
          Alcotest.test_case "mss negotiation" `Quick syn_negotiates_mss;
          Alcotest.test_case "seq wrap" `Quick seq_add_wraps;
        ] );
      ( "alphabet",
        [
          Alcotest.test_case "size" `Quick alphabet_size;
          Alcotest.test_case "abstraction" `Quick abstract_flags;
        ] );
      ( "server",
        [
          Alcotest.test_case "handshake" `Quick server_handshake;
          Alcotest.test_case "stray ack refused" `Quick server_refuses_stray_ack;
          Alcotest.test_case "data acked" `Quick server_data_acked;
          Alcotest.test_case "full close" `Quick server_full_close;
          Alcotest.test_case "rst aborts" `Quick server_rst_aborts;
          Alcotest.test_case "challenge ack" `Quick server_challenge_ack_on_syn;
          Alcotest.test_case "reset" `Quick server_reset_restores;
          Alcotest.test_case "bad checksum dropped" `Quick server_drops_bad_checksum;
        ] );
      ( "adapter",
        [
          Alcotest.test_case "handshake" `Quick adapter_handshake;
          Alcotest.test_case "data exchange" `Quick adapter_data_exchange;
          Alcotest.test_case "deterministic" `Quick adapter_deterministic;
          Alcotest.test_case "oracle table" `Quick adapter_oracle_table_records;
          Alcotest.test_case "lossy nondeterminism" `Quick lossy_network_is_nondeterministic;
        ] );
      ( "learning",
        [
          Alcotest.test_case "model shape" `Slow tcp_model_shape;
          Alcotest.test_case "handshake path" `Slow tcp_model_handshake_path;
          Alcotest.test_case "agrees with sul" `Slow tcp_model_agrees_with_sul;
          Alcotest.test_case "appendix spot checks" `Slow tcp_model_appendix_spot_checks;
          Alcotest.test_case "learning under loss" `Slow learning_survives_loss;
        ] );
    ]
