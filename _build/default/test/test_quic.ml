module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Rng = Prognosis_sul.Rng
module Nondet = Prognosis_sul.Nondet
module Learn = Prognosis_learner.Learn
module Eq_oracle = Prognosis_learner.Eq_oracle
open Prognosis_quic

(* --- varint --- *)

let varint_roundtrip () =
  List.iter
    (fun v ->
      let s = Varint.encode_to_string v in
      let v', off = Varint.decode s 0 in
      Alcotest.(check int) (Printf.sprintf "value %d" v) v v';
      Alcotest.(check int) "consumed all" (String.length s) off)
    [ 0; 1; 63; 64; 16383; 16384; 1073741823; 1073741824; Varint.max_value ]

let varint_lengths () =
  Alcotest.(check int) "1 byte" 1 (Varint.encoded_length 63);
  Alcotest.(check int) "2 bytes" 2 (Varint.encoded_length 64);
  Alcotest.(check int) "4 bytes" 4 (Varint.encoded_length 16384);
  Alcotest.(check int) "8 bytes" 8 (Varint.encoded_length (1 lsl 30))

let varint_rejects () =
  Alcotest.check_raises "negative" (Invalid_argument "Varint: value out of range")
    (fun () -> ignore (Varint.encoded_length (-1)))

(* --- crypto --- *)

let crypto_seal_open () =
  let c = Quic_crypto.create () in
  Quic_crypto.install_initial c ~dcid:"12345678";
  match
    Quic_crypto.seal c Quic_crypto.Initial_level Quic_crypto.Client_to_server
      ~pn:0 ~header:"hdr" "hello quic"
  with
  | None -> Alcotest.fail "seal failed"
  | Some sealed -> (
      Alcotest.(check bool) "ciphertext differs" true
        (String.sub sealed 0 10 <> "hello quic");
      match
        Quic_crypto.open_ c Quic_crypto.Initial_level Quic_crypto.Client_to_server
          ~pn:0 ~header:"hdr" sealed
      with
      | Some plain -> Alcotest.(check string) "roundtrip" "hello quic" plain
      | None -> Alcotest.fail "open failed")

let crypto_detects_tamper () =
  let c = Quic_crypto.create () in
  Quic_crypto.install_initial c ~dcid:"12345678";
  match
    Quic_crypto.seal c Quic_crypto.Initial_level Quic_crypto.Client_to_server
      ~pn:0 ~header:"hdr" "payload"
  with
  | None -> Alcotest.fail "seal failed"
  | Some sealed ->
      let tampered =
        String.mapi (fun i ch -> if i = 0 then Char.chr (Char.code ch lxor 1) else ch) sealed
      in
      Alcotest.(check bool) "tamper rejected" true
        (Quic_crypto.open_ c Quic_crypto.Initial_level Quic_crypto.Client_to_server
           ~pn:0 ~header:"hdr" tampered
        = None)

let crypto_level_isolation () =
  let c = Quic_crypto.create () in
  Quic_crypto.install_initial c ~dcid:"12345678";
  Alcotest.(check bool) "handshake missing" true
    (Quic_crypto.seal c Quic_crypto.Handshake_level Quic_crypto.Client_to_server
       ~pn:0 ~header:"h" "x"
    = None);
  Quic_crypto.install_handshake c ~client_random:"cr" ~server_random:"sr";
  Alcotest.(check bool) "handshake available" true
    (Quic_crypto.has_level c Quic_crypto.Handshake_level);
  Alcotest.(check bool) "application available" true
    (Quic_crypto.has_level c Quic_crypto.Application_level);
  Quic_crypto.drop_level c Quic_crypto.Initial_level;
  Alcotest.(check bool) "initial dropped" false
    (Quic_crypto.has_level c Quic_crypto.Initial_level)

let crypto_direction_isolation () =
  let c = Quic_crypto.create () in
  Quic_crypto.install_initial c ~dcid:"12345678";
  match
    Quic_crypto.seal c Quic_crypto.Initial_level Quic_crypto.Client_to_server
      ~pn:0 ~header:"h" "data"
  with
  | None -> Alcotest.fail "seal failed"
  | Some sealed ->
      Alcotest.(check bool) "wrong direction rejected" true
        (Quic_crypto.open_ c Quic_crypto.Initial_level Quic_crypto.Server_to_client
           ~pn:0 ~header:"h" sealed
        = None)

(* --- frames --- *)

let all_frames =
  Frame.
    [
      Padding 3;
      Ping;
      Ack { largest = 7; delay = 0; first_range = 2 };
      Reset_stream { stream_id = 4; error = 1; final_size = 100 };
      Stop_sending { stream_id = 4; error = 2 };
      Crypto { offset = 10; data = "crypto-data" };
      New_token "token-bytes";
      Stream { id = 0; offset = 5; data = "hello"; fin = true };
      Max_data 4096;
      Max_stream_data { stream_id = 0; max = 2048 };
      Max_streams { bidi = true; max = 10 };
      Data_blocked 4096;
      Stream_data_blocked { stream_id = 0; max = 2048 };
      Streams_blocked { bidi = false; max = 5 };
      New_connection_id
        { seq = 1; retire_prior = 0; cid = "abcdefgh"; reset_token = String.make 16 't' };
      Retire_connection_id 0;
      Path_challenge "12345678";
      Path_response "87654321";
      Connection_close { error = 10; frame_type = 0; reason = "bye"; app = false };
      Handshake_done;
    ]

let frame_roundtrip () =
  let encoded = Frame.encode_all all_frames in
  match Frame.decode_all encoded with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      Alcotest.(check int) "frame count" (List.length all_frames) (List.length decoded);
      List.iter2
        (fun expected actual ->
          Alcotest.(check bool)
            (Fmt.str "frame %a" Frame.pp expected)
            true (expected = actual))
        all_frames decoded

let frame_kinds_cover_all_20 () =
  Alcotest.(check int) "20 kinds" 20 (List.length Frame.all_kinds);
  let kinds = List.sort_uniq compare (List.map Frame.kind all_frames) in
  Alcotest.(check int) "fixture covers all kinds" 20 (List.length kinds)

let frame_bad_input () =
  match Frame.decode_all "\xFF\xFF" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not decode"

let frame_ack_eliciting () =
  Alcotest.(check bool) "ping elicits" true (Frame.is_ack_eliciting Frame.Ping);
  Alcotest.(check bool) "ack does not" false
    (Frame.is_ack_eliciting (Frame.Ack { largest = 0; delay = 0; first_range = 0 }))

(* --- packets --- *)

let fresh_crypto () =
  let c = Quic_crypto.create () in
  Quic_crypto.install_initial c ~dcid:"dcid-123";
  Quic_crypto.install_handshake c ~client_random:"cr" ~server_random:"sr";
  c

let packet_roundtrip ptype =
  let crypto = fresh_crypto () in
  let p =
    Quic_packet.make ptype ~dcid:"dcid-123" ~scid:"scid-456" ~pn:3
      ~frames:[ Frame.Ping; Frame.Crypto { offset = 0; data = "CH" } ]
  in
  let p =
    if ptype = Quic_packet.Short then { p with Quic_packet.dcid = "8bytecid" } else p
  in
  match Quic_packet.encode ~crypto ~sender:Quic_crypto.Client_to_server p with
  | None -> Alcotest.fail "encode failed"
  | Some wire -> (
      match
        Quic_packet.decode ~crypto ~sender:Quic_crypto.Client_to_server
          ~reset_tokens:[] wire
      with
      | Quic_packet.Decoded p' ->
          Alcotest.(check bool) "ptype" true (p'.Quic_packet.ptype = ptype);
          Alcotest.(check int) "pn" 3 p'.Quic_packet.pn;
          Alcotest.(check int) "frames" 2 (List.length p'.Quic_packet.frames)
      | Quic_packet.Reset_detected _ -> Alcotest.fail "not a reset"
      | Quic_packet.Undecodable e -> Alcotest.fail e)

let packet_initial_roundtrip () = packet_roundtrip Quic_packet.Initial
let packet_handshake_roundtrip () = packet_roundtrip Quic_packet.Handshake
let packet_short_roundtrip () = packet_roundtrip Quic_packet.Short

let packet_retry_roundtrip () =
  let crypto = fresh_crypto () in
  let p =
    Quic_packet.make Quic_packet.Retry ~dcid:"dcid-123" ~scid:"scid-456"
      ~token:"retry-token"
  in
  match Quic_packet.encode ~crypto ~sender:Quic_crypto.Server_to_client p with
  | None -> Alcotest.fail "encode failed"
  | Some wire -> (
      match
        Quic_packet.decode ~crypto ~sender:Quic_crypto.Server_to_client
          ~reset_tokens:[] wire
      with
      | Quic_packet.Decoded p' ->
          Alcotest.(check bool) "retry" true (p'.Quic_packet.ptype = Quic_packet.Retry);
          Alcotest.(check string) "token" "retry-token" p'.Quic_packet.token
      | _ -> Alcotest.fail "expected retry")

let packet_wrong_keys_undecodable () =
  let crypto = fresh_crypto () in
  let other = Quic_crypto.create () in
  Quic_crypto.install_initial other ~dcid:"different";
  let p =
    Quic_packet.make Quic_packet.Initial ~dcid:"dcid-123" ~scid:"s" ~pn:0
      ~frames:[ Frame.Ping ]
  in
  match Quic_packet.encode ~crypto ~sender:Quic_crypto.Client_to_server p with
  | None -> Alcotest.fail "encode failed"
  | Some wire -> (
      match
        Quic_packet.decode ~crypto:other ~sender:Quic_crypto.Client_to_server
          ~reset_tokens:[] wire
      with
      | Quic_packet.Undecodable _ -> ()
      | _ -> Alcotest.fail "wrong keys must not decode")

let stateless_reset_detection () =
  let rng = Rng.create 5L in
  let token = Quic_crypto.stateless_reset_token ~dcid:"somecid1" in
  let wire = Quic_packet.encode_stateless_reset ~rand:(Rng.bytes rng) ~token in
  let crypto = fresh_crypto () in
  (match
     Quic_packet.decode ~crypto ~sender:Quic_crypto.Server_to_client
       ~reset_tokens:[ token ] wire
   with
  | Quic_packet.Reset_detected t -> Alcotest.(check string) "token" token t
  | _ -> Alcotest.fail "reset not detected");
  match
    Quic_packet.decode ~crypto ~sender:Quic_crypto.Server_to_client
      ~reset_tokens:[ "wrong-token-0123" ] wire
  with
  | Quic_packet.Reset_detected _ -> Alcotest.fail "wrong token matched"
  | _ -> ()

(* --- server + client integration --- *)

let make_pair ?profile ?client_config seed =
  let rng = Rng.create seed in
  let server = Quic_server.create ?profile (Rng.split rng) in
  let client = Quic_client.create ?config:client_config (Rng.split rng) in
  (server, client)

let run_symbol server client symbol =
  match Quic_client.concretize client symbol with
  | None -> []
  | Some (wire, _) ->
      let responses =
        Quic_server.handle_datagram server ~port:(Quic_client.port client) wire
      in
      List.map (Quic_client.absorb client) responses

let abstract_of absorbed =
  List.filter_map
    (function
      | Quic_client.Packet p ->
          Some (Quic_alphabet.apacket_to_string (Quic_alphabet.abstract_packet p))
      | Quic_client.Reset -> Some "RESET"
      | Quic_client.Junk _ -> None)
    absorbed

let handshake_flow () =
  let server, client = make_pair 11L in
  let r1 = abstract_of (run_symbol server client Quic_alphabet.Initial_crypto) in
  Alcotest.(check (list string)) "server flight"
    [
      "INITIAL(?,?)[ACK,CRYPTO]"; "HANDSHAKE(?,?)[CRYPTO]"; "HANDSHAKE(?,?)[CRYPTO]";
    ]
    r1;
  let r2 =
    abstract_of (run_symbol server client Quic_alphabet.Handshake_ack_crypto)
  in
  Alcotest.(check (list string)) "handshake done"
    [ "HANDSHAKE(?,?)[ACK]"; "SHORT(?,?)[HANDSHAKE_DONE]" ]
    r2;
  Alcotest.(check bool) "client sees completion" true
    (Quic_client.handshake_complete client);
  Alcotest.(check string) "server confirmed" "confirmed" (Quic_server.phase_name server)

let data_exchange_with_flow_control () =
  let server, client = make_pair 13L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  (* Request: server can only send 50 of 80 bytes, then blocks. *)
  let r3 = abstract_of (run_symbol server client Quic_alphabet.Short_ack_stream) in
  Alcotest.(check (list string)) "blocked response"
    [ "SHORT(?,?)[ACK,STREAM,STREAM_DATA_BLOCKED]" ]
    r3;
  Alcotest.(check int) "50 bytes delivered" 50 (Quic_client.received_stream_bytes client);
  Alcotest.(check bool) "no flow violation" false (Quic_client.flow_violation client);
  (* Raise the limits: the remaining 30 bytes flow. *)
  let r4 = abstract_of (run_symbol server client Quic_alphabet.Short_ack_flow) in
  Alcotest.(check (list string)) "drained" [ "SHORT(?,?)[ACK,STREAM]" ] r4;
  Alcotest.(check int) "80 bytes total" 80 (Quic_client.received_stream_bytes client)

let compliant_sdb_carries_offset () =
  let server, client = make_pair 17L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  let _ = run_symbol server client Quic_alphabet.Short_ack_stream in
  Alcotest.(check (list int)) "offset 50" [ 50 ]
    (Quic_client.stream_data_blocked_values client)

let issue4_sdb_constant_zero () =
  let server, client = make_pair ~profile:Quic_profile.google_like 17L in
  (* google-like demands retry first. *)
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  let _ = run_symbol server client Quic_alphabet.Short_ack_stream in
  Alcotest.(check (list int)) "constant zero (Issue 4)" [ 0 ]
    (Quic_client.stream_data_blocked_values client)

let handshake_done_from_client_closes () =
  let server, client = make_pair 19L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let r = abstract_of (run_symbol server client Quic_alphabet.Handshake_ack_hsd) in
  Alcotest.(check (list string)) "violation close"
    [ "HANDSHAKE(?,?)[CONNECTION_CLOSE]" ]
    r;
  Alcotest.(check string) "closing" "closing" (Quic_server.phase_name server);
  Alcotest.(check bool) "client knows" true (Quic_client.connection_closed client)

let reset_after_close_compliant () =
  let server, client = make_pair 23L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_hsd in
  (* Every subsequent packet gets a stateless reset (prob 1.0). *)
  for _ = 1 to 5 do
    let r = abstract_of (run_symbol server client Quic_alphabet.Short_ack_stream) in
    Alcotest.(check (list string)) "reset" [ "RESET" ] r
  done

let retry_roundtrip_establishes () =
  let server, client = make_pair ~profile:Quic_profile.google_like 29L in
  let r1 = abstract_of (run_symbol server client Quic_alphabet.Initial_crypto) in
  Alcotest.(check (list string)) "retry demanded" [ "RETRY(?,?)[]" ] r1;
  (* Token echoed from the same port: handshake proceeds. *)
  let r2 = abstract_of (run_symbol server client Quic_alphabet.Initial_crypto) in
  Alcotest.(check (list string)) "handshake flight after retry"
    [
      "INITIAL(?,?)[ACK,CRYPTO]"; "HANDSHAKE(?,?)[CRYPTO]"; "HANDSHAKE(?,?)[CRYPTO]";
    ]
    r2

let issue3_retry_port_bug_blocks_handshake () =
  let server, client =
    make_pair ~profile:Quic_profile.google_like
      ~client_config:{ Quic_client.retry_port_bug = true; pns_reset_on_retry = true }
      31L
  in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  (* The token comes back from a different port: silently dropped,
     connection establishment impossible (Issue 3). *)
  let r2 = abstract_of (run_symbol server client Quic_alphabet.Initial_crypto) in
  Alcotest.(check (list string)) "validation fails" [] r2;
  let r3 = abstract_of (run_symbol server client Quic_alphabet.Initial_crypto) in
  Alcotest.(check (list string)) "still failing" [] r3

let issue1_strict_profile_aborts_on_pns_reset () =
  let server, client = make_pair ~profile:Quic_profile.strict_retry 37L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let r2 = abstract_of (run_symbol server client Quic_alphabet.Initial_crypto) in
  Alcotest.(check (list string)) "aborted (Issue 1)"
    [ "INITIAL(?,?)[CONNECTION_CLOSE]" ]
    r2

let ncid_sequence_numbers () =
  let server, client = make_pair ~profile:Quic_profile.ncid_buggy 41L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  (* Buggy stride 2: sequence numbers 1, 3 violate the +1 property. *)
  Alcotest.(check (list int)) "stride 2" [ 1; 3 ]
    (Quic_client.ncid_sequence_numbers client)

let ping_gets_acked () =
  let server, client = make_pair 43L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  let r = abstract_of (run_symbol server client Quic_alphabet.Short_ack_ping) in
  Alcotest.(check (list string)) "ack" [ "SHORT(?,?)[ACK]" ] r

let path_challenge_echoed () =
  let server, client = make_pair 47L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  match run_symbol server client Quic_alphabet.Short_ack_path_challenge with
  | [ Quic_client.Packet p ] -> (
      match
        List.find_opt
          (fun f -> Frame.kind f = Frame.K_path_response)
          p.Quic_packet.frames
      with
      | Some (Frame.Path_response data) ->
          Alcotest.(check string) "echoes challenge bytes"
            "\x01\x02\x03\x04\x05\x06\x07\x08" data
      | _ -> Alcotest.fail "expected PATH_RESPONSE")
  | _ -> Alcotest.fail "expected one response packet"

let stop_sending_resets_stream () =
  let server, client = make_pair 53L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  let _ = run_symbol server client Quic_alphabet.Short_ack_stream in
  (* Scenario scripting: refuse the server's response stream. *)
  match
    Quic_client.send_frames client Quic_packet.Short
      [ Frame.Stop_sending { stream_id = 0; error = 7 } ]
  with
  | None -> Alcotest.fail "client should have 1-RTT keys"
  | Some (wire, _) -> (
      let responses =
        Quic_server.handle_datagram server ~port:(Quic_client.port client) wire
      in
      match List.map (Quic_client.absorb client) responses with
      | [ Quic_client.Packet p ] -> (
          match
            List.find_opt
              (fun f -> Frame.kind f = Frame.K_reset_stream)
              p.Quic_packet.frames
          with
          | Some (Frame.Reset_stream { stream_id; error; final_size }) ->
              Alcotest.(check int) "stream id" 0 stream_id;
              Alcotest.(check int) "error echoed" 7 error;
              Alcotest.(check int) "final size = bytes sent" 50 final_size
          | _ -> Alcotest.fail "expected RESET_STREAM")
      | _ -> Alcotest.fail "expected one response packet")

let new_token_issued () =
  let server, client = make_pair ~profile:Quic_profile.token_issuing 59L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let r = abstract_of (run_symbol server client Quic_alphabet.Handshake_ack_crypto) in
  Alcotest.(check (list string)) "token in the done flight"
    [ "HANDSHAKE(?,?)[ACK]"; "SHORT(?,?)[HANDSHAKE_DONE,NEW_TOKEN]" ]
    r

let version_negotiation_on_unknown_version () =
  (* A hand-built Initial with a bogus version triggers VN. *)
  let rng = Rng.create 61L in
  let server = Quic_server.create (Rng.split rng) in
  let crypto = Quic_crypto.create () in
  let dcid = "8bytecid" in
  Quic_crypto.install_initial crypto ~dcid;
  let p =
    Quic_packet.make Quic_packet.Initial ~version:0xbadbad ~dcid ~scid:"8bytesrc"
      ~pn:0
      ~frames:[ Frame.Crypto { offset = 0; data = "CH:deadbeef;md=100;msd=50" } ]
  in
  match Quic_packet.encode ~crypto ~sender:Quic_crypto.Client_to_server p with
  | None -> Alcotest.fail "encode failed"
  | Some wire -> (
      match Quic_server.handle_datagram server ~port:5555 wire with
      | [ response ] -> (
          match
            Quic_packet.decode ~crypto ~sender:Quic_crypto.Server_to_client
              ~reset_tokens:[] response
          with
          | Quic_packet.Decoded vp ->
              Alcotest.(check bool) "version negotiation" true
                (vp.Quic_packet.ptype = Quic_packet.Version_negotiation);
              Alcotest.(check int) "offers draft-29" Quic_packet.draft29
                vp.Quic_packet.version
          | _ -> Alcotest.fail "expected a decodable VN packet")
      | _ -> Alcotest.fail "expected one VN response")

let invalid_retry_token_dropped () =
  let server, client = make_pair ~profile:Quic_profile.google_like 67L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  (* Forge a fresh client (wrong token: it never saw the Retry). *)
  let intruder = Quic_client.create (Rng.create 999L) in
  let r = abstract_of (run_symbol server intruder Quic_alphabet.Initial_crypto) in
  Alcotest.(check (list string)) "dropped silently" [] r

let flow_violation_detected () =
  (* The flow-violator server pushes 80 bytes against a 50-byte limit;
     the reference client's accounting flags it (the §6.2.2 property
     "must not send data beyond the advertised limit"). *)
  let server, client = make_pair ~profile:Quic_profile.flow_violator 79L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  let _ = run_symbol server client Quic_alphabet.Short_ack_stream in
  Alcotest.(check int) "whole body pushed" 80
    (Quic_client.received_stream_bytes client);
  Alcotest.(check bool) "violation flagged" true (Quic_client.flow_violation client);
  (* A compliant server with identical interaction never trips it. *)
  let server', client' = make_pair 79L in
  let _ = run_symbol server' client' Quic_alphabet.Initial_crypto in
  let _ = run_symbol server' client' Quic_alphabet.Handshake_ack_crypto in
  let _ = run_symbol server' client' Quic_alphabet.Short_ack_stream in
  Alcotest.(check bool) "compliant clean" false (Quic_client.flow_violation client')

let key_update_roundtrip () =
  let server, client = make_pair 73L in
  let _ = run_symbol server client Quic_alphabet.Initial_crypto in
  let _ = run_symbol server client Quic_alphabet.Handshake_ack_crypto in
  (* First exchange under key generation 0. *)
  let r1 = abstract_of (run_symbol server client Quic_alphabet.Short_ack_stream) in
  Alcotest.(check bool) "gen-0 data flows" true (r1 <> []);
  (* Client-initiated key update: the next short packet flips the key
     phase bit; the server verifies under the next generation, commits,
     and answers at the new phase — which the client can decode. *)
  Quic_client.initiate_key_update client;
  Alcotest.(check int) "client phase 1" 1 (Quic_client.key_phase client);
  (match Quic_client.send_frames client Quic_packet.Short [ Frame.Ping ] with
  | None -> Alcotest.fail "client must hold 1-RTT keys"
  | Some (wire, _) -> (
      let responses =
        Quic_server.handle_datagram server ~port:(Quic_client.port client) wire
      in
      match List.map (Quic_client.absorb client) responses with
      | [ Quic_client.Packet p ] ->
          Alcotest.(check bool) "acked under new keys" true
            (List.exists (fun f -> Frame.kind f = Frame.K_ack) p.Quic_packet.frames)
      | _ -> Alcotest.fail "expected one decodable response after key update"));
  (* Data continues to flow after the rotation. *)
  let r2 = abstract_of (run_symbol server client Quic_alphabet.Short_ack_flow) in
  Alcotest.(check bool) "gen-1 exchange works" true (r2 <> [])

let migration_with_queued_response () =
  (* Connection migration: the client moves to a new port; the server
     challenges the path; the instrumented client QUEUES its response
     (the paper's Listing-1 mechanism) until the learner asks for the
     PATH_RESPONSE symbol; the server then adopts the new path. *)
  let adapter, client = Prognosis_quic.Quic_adapter.create ~seed:83L () in
  let sul = Prognosis_sul.Adapter.to_sul adapter in
  sul.Prognosis_sul.Sul.reset ();
  let step s = sul.Prognosis_sul.Sul.step s in
  let _ = step Quic_alphabet.Initial_crypto in
  let _ = step Quic_alphabet.Handshake_ack_crypto in
  (* Before migration, the queue is empty and the symbol unrealizable. *)
  Alcotest.(check int) "queue empty" 0 (Quic_client.queued_frames client);
  Alcotest.(check string) "unrealizable" "NIL"
    (Quic_alphabet.output_to_string (step Quic_alphabet.Short_ack_path_response));
  (* Migrate and send data from the new port: the response must carry a
     PATH_CHALLENGE, and the client queues its answer. *)
  Quic_client.migrate client;
  let out = step Quic_alphabet.Short_ack_ping in
  Alcotest.(check bool) "server challenges the new path" true
    (List.exists
       (fun (a : Quic_alphabet.apacket) ->
         List.mem Frame.K_path_challenge a.Quic_alphabet.frames)
       out);
  Alcotest.(check int) "response queued, not sent" 1
    (Quic_client.queued_frames client);
  (* The learner releases the queued response; the server validates. *)
  let out = step Quic_alphabet.Short_ack_path_response in
  Alcotest.(check string) "response acked" "{SHORT(?,?)[ACK]}"
    (Quic_alphabet.output_to_string out);
  Alcotest.(check int) "queue drained" 0 (Quic_client.queued_frames client);
  (* The new path is validated: no further challenges. *)
  let out = step Quic_alphabet.Short_ack_ping in
  Alcotest.(check bool) "no re-challenge" true
    (not
       (List.exists
          (fun (a : Quic_alphabet.apacket) ->
            List.mem Frame.K_path_challenge a.Quic_alphabet.frames)
          out))

(* --- SUL determinism and learning --- *)

let quic_sul ?profile ?client_config seed =
  Quic_adapter.sul ?profile ?client_config ~seed ()

let sul_deterministic_compliant () =
  let sul = quic_sul 43L in
  let words =
    Quic_alphabet.
      [
        [ Initial_crypto; Handshake_ack_crypto; Short_ack_stream; Short_ack_flow ];
        [ Initial_crypto; Initial_ack_hsd; Short_ack_stream ];
        [ Short_ack_stream; Initial_crypto; Handshake_ack_hsd ];
        [ Initial_crypto; Handshake_ack_crypto; Short_ack_hsd; Short_ack_stream ];
      ]
  in
  List.iter
    (fun w ->
      match Nondet.query Nondet.default sul w with
      | Nondet.Deterministic _ -> ()
      | Nondet.Nondeterministic _ ->
          Alcotest.fail "compliant QUIC SUL must be deterministic")
    words

let issue2_mvfst_nondeterministic_resets () =
  let sul = quic_sul ~profile:Quic_profile.mvfst_like 47L in
  (* Close the connection with a client HANDSHAKE_DONE, then probe. *)
  let word =
    Quic_alphabet.[ Initial_crypto; Handshake_ack_hsd; Short_ack_stream ]
  in
  match
    Nondet.query { Nondet.min_runs = 25; max_runs = 200; agreement = 0.99 } sul word
  with
  | Nondet.Nondeterministic obs ->
      let reset_rate =
        Nondet.frequency obs (fun answer ->
            match List.rev answer with
            | last :: _ -> last = [ Quic_alphabet.abstract_reset ]
            | [] -> false)
      in
      Alcotest.(check bool)
        (Printf.sprintf "reset rate %.2f in (0.6, 0.95)" reset_rate)
        true
        (reset_rate > 0.6 && reset_rate < 0.95)
  | Nondet.Deterministic _ ->
      Alcotest.fail "mvfst-like profile must exhibit the Issue-2 nondeterminism"

let learn_profile ?client_config profile seed =
  let sul = quic_sul ~profile ?client_config seed in
  let rng = Rng.create (Int64.add seed 1000L) in
  let eq =
    Eq_oracle.combine
      [
        Eq_oracle.w_method ~extra_states:1 ();
        Eq_oracle.random_words ~rng ~max_tests:300 ~min_len:1 ~max_len:10;
      ]
  in
  Learn.run ~inputs:Quic_alphabet.all ~sul ~eq ()

let learn_quiche_like () =
  let result = learn_profile Quic_profile.quiche_like 53L in
  let m = result.Learn.model in
  Alcotest.(check bool)
    (Printf.sprintf "states %d in [4..16]" (Mealy.size m))
    true
    (Mealy.size m >= 4 && Mealy.size m <= 16);
  (* The learned model replays the handshake. *)
  let out =
    Mealy.run m Quic_alphabet.[ Initial_crypto; Handshake_ack_crypto ]
  in
  match List.map Quic_alphabet.output_to_string out with
  | [ first; second ] ->
      Alcotest.(check bool) "first is server flight" true
        (String.length first > 10);
      Alcotest.(check bool) "second contains HANDSHAKE_DONE" true
        (let rec contains h n i =
           i + String.length n <= String.length h
           && (String.sub h i (String.length n) = n || contains h n (i + 1))
         in
         contains second "HANDSHAKE_DONE" 0)
  | _ -> Alcotest.fail "unexpected output arity"

let issue1_model_size_difference () =
  (* The tolerant-retry and strict-retry servers learn models of
     different sizes: the paper's Issue-1 signal (§6.2.3). *)
  let tolerant = learn_profile Quic_profile.google_like 59L in
  let strict = learn_profile Quic_profile.strict_retry 61L in
  let st = Mealy.size tolerant.Learn.model and ss = Mealy.size strict.Learn.model in
  Alcotest.(check bool)
    (Printf.sprintf "tolerant(%d) > strict(%d)" st ss)
    true (st > ss)

let () =
  Alcotest.run "quic"
    [
      ( "varint",
        [
          Alcotest.test_case "roundtrip" `Quick varint_roundtrip;
          Alcotest.test_case "lengths" `Quick varint_lengths;
          Alcotest.test_case "rejects" `Quick varint_rejects;
        ] );
      ( "crypto",
        [
          Alcotest.test_case "seal/open" `Quick crypto_seal_open;
          Alcotest.test_case "tamper detection" `Quick crypto_detects_tamper;
          Alcotest.test_case "level isolation" `Quick crypto_level_isolation;
          Alcotest.test_case "direction isolation" `Quick crypto_direction_isolation;
        ] );
      ( "frames",
        [
          Alcotest.test_case "roundtrip all 20" `Quick frame_roundtrip;
          Alcotest.test_case "20 kinds" `Quick frame_kinds_cover_all_20;
          Alcotest.test_case "bad input" `Quick frame_bad_input;
          Alcotest.test_case "ack eliciting" `Quick frame_ack_eliciting;
        ] );
      ( "packets",
        [
          Alcotest.test_case "initial" `Quick packet_initial_roundtrip;
          Alcotest.test_case "handshake" `Quick packet_handshake_roundtrip;
          Alcotest.test_case "short" `Quick packet_short_roundtrip;
          Alcotest.test_case "retry" `Quick packet_retry_roundtrip;
          Alcotest.test_case "wrong keys" `Quick packet_wrong_keys_undecodable;
          Alcotest.test_case "stateless reset" `Quick stateless_reset_detection;
        ] );
      ( "connection",
        [
          Alcotest.test_case "handshake flow" `Quick handshake_flow;
          Alcotest.test_case "flow control" `Quick data_exchange_with_flow_control;
          Alcotest.test_case "compliant SDB offset" `Quick compliant_sdb_carries_offset;
          Alcotest.test_case "issue 4: SDB zero" `Quick issue4_sdb_constant_zero;
          Alcotest.test_case "client HSD closes" `Quick handshake_done_from_client_closes;
          Alcotest.test_case "reset after close" `Quick reset_after_close_compliant;
          Alcotest.test_case "retry establishes" `Quick retry_roundtrip_establishes;
          Alcotest.test_case "issue 3: port bug" `Quick issue3_retry_port_bug_blocks_handshake;
          Alcotest.test_case "issue 1: strict abort" `Quick issue1_strict_profile_aborts_on_pns_reset;
          Alcotest.test_case "ncid sequences" `Quick ncid_sequence_numbers;
          Alcotest.test_case "ping acked" `Quick ping_gets_acked;
          Alcotest.test_case "path challenge echoed" `Quick path_challenge_echoed;
          Alcotest.test_case "stop_sending resets" `Quick stop_sending_resets_stream;
          Alcotest.test_case "new token issued" `Quick new_token_issued;
          Alcotest.test_case "version negotiation" `Quick version_negotiation_on_unknown_version;
          Alcotest.test_case "invalid retry token" `Quick invalid_retry_token_dropped;
          Alcotest.test_case "key update" `Quick key_update_roundtrip;
          Alcotest.test_case "flow violation detected" `Quick flow_violation_detected;
          Alcotest.test_case "migration + queue" `Quick migration_with_queued_response;
        ] );
      ( "learning",
        [
          Alcotest.test_case "deterministic" `Quick sul_deterministic_compliant;
          Alcotest.test_case "issue 2: mvfst nondet" `Slow issue2_mvfst_nondeterministic_resets;
          Alcotest.test_case "learn quiche-like" `Slow learn_quiche_like;
          Alcotest.test_case "issue 1: model sizes" `Slow issue1_model_size_difference;
        ] );
    ]
