test/test_wfa.ml: Alcotest Array Float Int64 List Printf Prognosis_automata Prognosis_learner Prognosis_sul QCheck2 QCheck_alcotest
