test/test_quic.mli:
