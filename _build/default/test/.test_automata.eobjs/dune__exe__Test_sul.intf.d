test/test_sul.mli:
