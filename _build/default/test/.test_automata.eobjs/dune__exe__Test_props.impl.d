test/test_props.ml: Alcotest Array Buffer Char List Prognosis_automata Prognosis_dtls Prognosis_learner Prognosis_quic Prognosis_sul Prognosis_tcp QCheck2 QCheck_alcotest String
