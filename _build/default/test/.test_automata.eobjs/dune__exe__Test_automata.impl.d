test/test_automata.ml: Alcotest Array Fmt List Printf Prognosis_automata QCheck2 QCheck_alcotest String
