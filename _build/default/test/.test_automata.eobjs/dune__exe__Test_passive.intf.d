test/test_passive.mli:
