test/test_tcp.ml: Alcotest Array Bytes Char List Prognosis_automata Prognosis_learner Prognosis_sul Prognosis_tcp String Tcp_adapter Tcp_alphabet Tcp_server Tcp_wire
