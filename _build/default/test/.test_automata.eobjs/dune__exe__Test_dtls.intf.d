test/test_dtls.mli:
