test/test_tcp_client.mli:
