test/test_synthesis.ml: Alcotest Array Ext_mealy Fmt List Prognosis_automata Prognosis_learner Prognosis_sul Prognosis_synthesis Prognosis_tcp String Synthesizer Term
