test/test_wfa.mli:
