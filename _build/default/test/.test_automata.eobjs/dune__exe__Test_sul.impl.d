test/test_sul.ml: Alcotest Array Char List Printf Prognosis_automata Prognosis_sul QCheck2 QCheck_alcotest String
