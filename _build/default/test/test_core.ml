(* End-to-end tests of the study pipelines: the same code paths the
   benchmark harness uses to regenerate the paper's results. *)

module Mealy = Prognosis_automata.Mealy
module Term = Prognosis_synthesis.Term
module Ext_mealy = Prognosis_synthesis.Ext_mealy
open Prognosis

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

(* --- report --- *)

let report_roundtrip () =
  let result = Tcp_study.learn ~seed:5L () in
  let r = result.Tcp_study.report in
  Alcotest.(check string) "subject" "tcp" r.Report.subject;
  Alcotest.(check int) "alphabet" 7 r.Report.alphabet;
  Alcotest.(check int) "row width" (List.length Report.header)
    (List.length (Report.to_row r));
  Alcotest.(check int) "paper's trace count" 329_554_456
    (Report.trace_count r ~max_len:10);
  Alcotest.(check bool) "pp is nonempty" true
    (String.length (Fmt.str "%a" Report.pp r) > 20)

(* --- TCP study (E1, E8) --- *)

let tcp_learn_shape () =
  let result = Tcp_study.learn ~seed:5L () in
  Alcotest.(check int) "6 states" 6 result.Tcp_study.report.Report.states;
  Alcotest.(check int) "42 transitions" 42 result.Tcp_study.report.Report.transitions

let tcp_learn_lstar_agrees () =
  let ttt = Tcp_study.learn ~seed:5L () in
  let lstar =
    Tcp_study.learn ~seed:5L ~algorithm:Prognosis_learner.Learn.L_star ()
  in
  Alcotest.(check bool) "same model" true
    (Prognosis_analysis.Model_diff.equivalent ttt.Tcp_study.model
       lstar.Tcp_study.model)

let tcp_synthesis_handshake_invariant () =
  let result = Tcp_study.learn ~seed:5L () in
  let words =
    Prognosis_tcp.Tcp_alphabet.
      [ [ Syn; Ack; Ack_psh; Ack_psh ]; [ Syn; Ack_psh; Fin_ack ]; [ Syn; Ack; Fin_ack; Ack ] ]
  in
  match Tcp_study.synthesize result words with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      match
        Ext_mealy.output_term machine ~state:(Mealy.initial result.Tcp_study.model)
          ~input:Prognosis_tcp.Tcp_alphabet.Syn ~field:1
      with
      | Some (Term.In_field_inc 0) -> ()
      | Some t -> Alcotest.fail (Fmt.str "ack term %a" Term.pp t)
      | None -> Alcotest.fail "no ack term for SYN")

let tcp_dot () =
  let result = Tcp_study.learn ~seed:5L () in
  Alcotest.(check bool) "dot mentions SYN" true
    (contains (Tcp_study.model_dot result.Tcp_study.model) "SYN")

(* --- QUIC study (E2, E4-E7) --- *)

let quic_learn_reports () =
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  let r = result.Quic_study.report in
  Alcotest.(check string) "subject" "quic:quiche-like" r.Report.subject;
  Alcotest.(check bool) "enough states" true (r.Report.states >= 4);
  Alcotest.(check bool) "queries counted" true (r.Report.membership_queries > 0)

let quic_profiles_differ () =
  let s =
    Quic_study.compare_profiles ~seed:5L Quic_study.Profile.google_like
      Quic_study.Profile.strict_retry
  in
  Alcotest.(check bool) "not equivalent" false
    s.Prognosis_analysis.Model_diff.equivalent_;
  Alcotest.(check bool) "tolerant bigger (Issue 1)" true
    (s.Prognosis_analysis.Model_diff.states_a
    > s.Prognosis_analysis.Model_diff.states_b)

let quic_same_profile_equivalent () =
  (* Learning the same profile from different seeds yields equivalent
     models: the abstraction hides all randomness. *)
  let a = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  let b = Quic_study.learn ~seed:77L ~profile:Quic_study.Profile.quiche_like () in
  Alcotest.(check bool) "equivalent" true
    (Prognosis_analysis.Model_diff.equivalent a.Quic_study.model b.Quic_study.model)

let quic_close_reset_rates () =
  let compliant = Quic_study.close_reset_rate ~runs:100 Quic_study.Profile.quiche_like in
  Alcotest.(check (float 0.001)) "compliant rate 1.0" 1.0 compliant;
  let mvfst = Quic_study.close_reset_rate ~runs:300 Quic_study.Profile.mvfst_like in
  Alcotest.(check bool)
    (Printf.sprintf "mvfst rate %.2f near 0.82" mvfst)
    true
    (mvfst > 0.72 && mvfst < 0.92)

(* The doubled Initial_crypto satisfies retry-demanding profiles (the
   second Initial echoes the token) and is a harmless ClientHello
   retransmission for the others. *)
let sdb_words =
  Quic_study.Alphabet.
    [
      [ Initial_crypto; Initial_crypto; Handshake_ack_crypto; Short_ack_stream ];
      [
        Initial_crypto;
        Initial_crypto;
        Handshake_ack_crypto;
        Short_ack_stream;
        Short_ack_flow;
      ];
      [
        Initial_crypto;
        Initial_crypto;
        Handshake_ack_crypto;
        Short_ack_flow;
        Short_ack_stream;
      ];
    ]

let quic_sdb_synthesis_compliant () =
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  match Quic_study.synthesize_sdb result sdb_words with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      match Quic_study.sdb_verdict machine with
      | `Symbolic -> ()
      | `Constant c -> Alcotest.fail (Printf.sprintf "unexpected constant %d" c)
      | `Unobserved -> Alcotest.fail "sdb never observed")

let quic_sdb_synthesis_google () =
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.google_like () in
  match Quic_study.synthesize_sdb result sdb_words with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      match Quic_study.sdb_verdict machine with
      | `Constant 0 -> ()
      | `Constant c -> Alcotest.fail (Printf.sprintf "constant %d, wanted 0" c)
      | `Symbolic -> Alcotest.fail "expected the Issue-4 constant"
      | `Unobserved -> Alcotest.fail "sdb never observed")

let quic_pn_register_synthesized () =
  (* The synthesized extended machine recovers the packet-number
     counter: the pn output field is a register that increments — the
     App. B.1 style of model, for the quantity "packet number". *)
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  match Quic_study.synthesize_sdb result sdb_words with
  | Error e -> Alcotest.fail e
  | Ok machine ->
      (* Field 0 is the packet number: somewhere in the machine there
         must be a register-based pn term and an incrementing update. *)
      let skeleton = machine.Ext_mealy.skeleton in
      let reg_output = ref false and inc_update = ref false in
      for s = 0 to Mealy.size skeleton - 1 do
        for i = 0 to Mealy.alphabet_size skeleton - 1 do
          (match machine.Ext_mealy.outputs.(s).(i).(0) with
          | Some (Term.Reg _ | Term.Reg_inc _) -> reg_output := true
          | Some _ | None -> ());
          match machine.Ext_mealy.updates.(s).(i).(0) with
          | Some (Term.Reg_inc _) -> inc_update := true
          | Some _ | None -> ()
        done
      done;
      Alcotest.(check bool) "pn expressed through a register" true !reg_output;
      Alcotest.(check bool) "register increments" true !inc_update

let quic_packet_numbers_increase () =
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  let seqs = Quic_study.packet_number_sequences result sdb_words in
  Alcotest.(check bool) "some sequences" true
    (List.exists (fun s -> List.length s >= 2) seqs);
  List.iter
    (fun seq ->
      Alcotest.(check bool) "increasing" true
        (Prognosis_analysis.Safety.strictly_increasing seq
        = Prognosis_analysis.Safety.Holds))
    seqs

(* --- model persistence --- *)

let persist_roundtrip () =
  let result = Tcp_study.learn ~seed:5L () in
  let path = Filename.temp_file "prognosis" ".model" in
  Persist.save ~path Persist.Tcp_model result.Tcp_study.model;
  (match Persist.load_tcp ~path with
  | Error e -> Alcotest.fail e
  | Ok model ->
      Alcotest.(check bool) "identical behaviour" true
        (Prognosis_analysis.Model_diff.equivalent model result.Tcp_study.model));
  Sys.remove path

let persist_kind_guard () =
  let result = Tcp_study.learn ~seed:5L () in
  let path = Filename.temp_file "prognosis" ".model" in
  Persist.save ~path Persist.Tcp_model result.Tcp_study.model;
  (match Persist.load_quic ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kind mismatch must be refused");
  Sys.remove path

let persist_rejects_garbage () =
  let path = Filename.temp_file "prognosis" ".model" in
  let oc = open_out path in
  output_string oc "not a model at all";
  close_out oc;
  (match Persist.load_tcp ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must be refused");
  Sys.remove path;
  match Persist.load_tcp ~path:"/nonexistent/nowhere.model" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an error"

let quic_ncid_property () =
  (* The ncid-buggy profile violates "sequence numbers increase by 1". *)
  let learn profile =
    let result = Quic_study.learn ~seed:5L ~profile () in
    let _ =
      Prognosis_sul.Adapter.query result.Quic_study.adapter
        Quic_study.Alphabet.[ Initial_crypto; Handshake_ack_crypto ]
    in
    Prognosis_quic.Quic_client.ncid_sequence_numbers result.Quic_study.client
  in
  let buggy = learn Quic_study.Profile.ncid_buggy in
  Alcotest.(check bool) "buggy violates" true
    (Prognosis_analysis.Safety.increases_by ~stride:1 buggy
    <> Prognosis_analysis.Safety.Holds)

let () =
  Alcotest.run "core"
    [
      ("report", [ Alcotest.test_case "roundtrip" `Quick report_roundtrip ]);
      ( "persist",
        [
          Alcotest.test_case "roundtrip" `Slow persist_roundtrip;
          Alcotest.test_case "kind guard" `Slow persist_kind_guard;
          Alcotest.test_case "garbage" `Quick persist_rejects_garbage;
        ] );
      ( "tcp-study",
        [
          Alcotest.test_case "model shape" `Slow tcp_learn_shape;
          Alcotest.test_case "l* agrees" `Slow tcp_learn_lstar_agrees;
          Alcotest.test_case "synthesis invariant" `Slow tcp_synthesis_handshake_invariant;
          Alcotest.test_case "dot" `Slow tcp_dot;
        ] );
      ( "quic-study",
        [
          Alcotest.test_case "reports" `Slow quic_learn_reports;
          Alcotest.test_case "profiles differ (issue 1)" `Slow quic_profiles_differ;
          Alcotest.test_case "seed independence" `Slow quic_same_profile_equivalent;
          Alcotest.test_case "reset rates (issue 2)" `Slow quic_close_reset_rates;
          Alcotest.test_case "sdb compliant" `Slow quic_sdb_synthesis_compliant;
          Alcotest.test_case "sdb google (issue 4)" `Slow quic_sdb_synthesis_google;
          Alcotest.test_case "packet numbers" `Slow quic_packet_numbers_increase;
          Alcotest.test_case "pn register synthesized" `Slow quic_pn_register_synthesized;
          Alcotest.test_case "ncid property" `Slow quic_ncid_property;
        ] );
    ]
