(* Learning the TCP client role (the [22]-style setup with socket-call
   triggers), exercised at machine, adapter and learning level. *)

module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Rng = Prognosis_sul.Rng
module Nondet = Prognosis_sul.Nondet
module Learn = Prognosis_learner.Learn
module Eq_oracle = Prognosis_learner.Eq_oracle
open Prognosis_tcp
module M = Tcp_client_machine
module Study = Tcp_client_study

(* --- the client machine --- *)

let fresh () = M.create (Rng.create 3L)

let server_seg ?(payload = "") ~seq ~ack flags =
  Tcp_wire.make ~payload ~src_port:443 ~dst_port:40000 ~seq ~ack
    (Tcp_wire.flags_of_string flags)

let connect_and_establish m =
  (* CONNECT emits a SYN; a valid SYN+ACK completes the handshake. *)
  match M.command m M.Connect with
  | [ syn ] ->
      Alcotest.(check string) "syn" "S" (Tcp_wire.flags_to_string syn.Tcp_wire.flags);
      let server_iss = 9000 in
      let synack =
        server_seg ~seq:server_iss ~ack:(Tcp_wire.seq_add syn.Tcp_wire.seq 1) "SA"
      in
      (match M.handle m synack with
      | [ ack ] ->
          Alcotest.(check string) "final ack" "A"
            (Tcp_wire.flags_to_string ack.Tcp_wire.flags);
          Alcotest.(check int) "acks server isn+1" (server_iss + 1) ack.Tcp_wire.ack
      | _ -> Alcotest.fail "expected final ACK");
      Alcotest.(check string) "established" "ESTABLISHED"
        (M.state_to_string (M.state m));
      (Tcp_wire.seq_add syn.Tcp_wire.seq 1, server_iss + 1)
  | _ -> Alcotest.fail "expected exactly one SYN"

let machine_handshake () = ignore (connect_and_establish (fresh ()))

let machine_send_and_close () =
  let m = fresh () in
  let cseq, sseq = connect_and_establish m in
  (match M.command m M.Send with
  | [ data ] ->
      Alcotest.(check string) "push" "AP" (Tcp_wire.flags_to_string data.Tcp_wire.flags);
      Alcotest.(check int) "seq" cseq data.Tcp_wire.seq
  | _ -> Alcotest.fail "expected one data segment");
  (match M.command m M.Close with
  | [ fin ] ->
      Alcotest.(check string) "fin" "AF" (Tcp_wire.flags_to_string fin.Tcp_wire.flags);
      Alcotest.(check string) "fin-wait-1" "FIN_WAIT_1" (M.state_to_string (M.state m));
      (* Server ACKs our FIN, then sends its own. *)
      let _ = M.handle m (server_seg ~seq:sseq ~ack:(fin.Tcp_wire.seq + 1) "A") in
      Alcotest.(check string) "fin-wait-2" "FIN_WAIT_2" (M.state_to_string (M.state m));
      (match M.handle m (server_seg ~seq:sseq ~ack:(fin.Tcp_wire.seq + 1) "AF") with
      | [ ack ] ->
          Alcotest.(check string) "acks server fin" "A"
            (Tcp_wire.flags_to_string ack.Tcp_wire.flags)
      | _ -> Alcotest.fail "expected ACK of server FIN");
      Alcotest.(check string) "time-wait" "TIME_WAIT" (M.state_to_string (M.state m))
  | _ -> Alcotest.fail "expected one FIN segment")

let machine_passive_close () =
  let m = fresh () in
  let cseq, sseq = connect_and_establish m in
  (* Server closes first. *)
  let _ = M.handle m (server_seg ~seq:sseq ~ack:cseq "AF") in
  Alcotest.(check string) "close-wait" "CLOSE_WAIT" (M.state_to_string (M.state m));
  (match M.command m M.Close with
  | [ fin ] ->
      Alcotest.(check string) "our fin" "AF" (Tcp_wire.flags_to_string fin.Tcp_wire.flags);
      let _ = M.handle m (server_seg ~seq:(sseq + 1) ~ack:(fin.Tcp_wire.seq + 1) "A") in
      Alcotest.(check string) "fully closed" "CLOSED_FINAL"
        (M.state_to_string (M.state m))
  | _ -> Alcotest.fail "expected FIN")

let machine_connection_refused () =
  let m = fresh () in
  (match M.command m M.Connect with
  | [ syn ] ->
      let rst = server_seg ~seq:0 ~ack:(syn.Tcp_wire.seq + 1) "R" in
      Alcotest.(check (list pass)) "silent on refusal" [] (M.handle m rst);
      Alcotest.(check string) "refused" "CLOSED_FINAL" (M.state_to_string (M.state m))
  | _ -> Alcotest.fail "expected SYN");
  (* A one-shot client does not reconnect. *)
  Alcotest.(check (list pass)) "no reconnect" [] (M.command m M.Connect)

let machine_commands_before_connect () =
  let m = fresh () in
  Alcotest.(check (list pass)) "send ignored" [] (M.command m M.Send);
  Alcotest.(check (list pass)) "close ignored" [] (M.command m M.Close);
  Alcotest.(check string) "still closed" "CLOSED" (M.state_to_string (M.state m))

(* --- the adapter --- *)

let run_word seed word =
  let sul = Study.sul ~seed () in
  List.map Study.output_to_string (Sul.query sul word)

let adapter_lifecycle () =
  let out =
    run_word 5L
      Study.[ Cmd_connect; In_syn_ack; Cmd_send; In_ack; Cmd_close; In_fin_ack ]
  in
  Alcotest.(check (list string)) "lifecycle"
    [
      "SYN(?,?,0)";
      "ACK(?,?,0)";
      "ACK+PSH(?,?,1)";
      "NIL";
      "FIN+ACK(?,?,0)";
      (* FIN+ACK from the server both acks our FIN and closes: we ack. *)
      "ACK(?,?,0)";
    ]
    out

let adapter_refusal () =
  let out = run_word 7L Study.[ Cmd_connect; In_rst; Cmd_connect ] in
  Alcotest.(check (list string)) "refused, no reconnect"
    [ "SYN(?,?,0)"; "NIL"; "NIL" ]
    out

let adapter_deterministic () =
  let sul = Study.sul ~seed:9L () in
  let words =
    Study.
      [
        [ Cmd_connect; In_syn_ack; Cmd_send; Cmd_close; In_ack; In_fin_ack ];
        [ In_syn_ack; Cmd_connect; In_ack_psh ];
        [ Cmd_connect; In_rst; Cmd_send ];
        [ Cmd_close; Cmd_send; Cmd_connect; In_fin_ack ];
      ]
  in
  List.iter
    (fun w ->
      match Nondet.query Nondet.default sul w with
      | Nondet.Deterministic _ -> ()
      | Nondet.Nondeterministic _ -> Alcotest.fail "client SUL must be deterministic")
    words

(* --- learning the client role --- *)

let scenarios =
  Study.
    [
      [ Cmd_connect; In_syn_ack; Cmd_send; In_ack; Cmd_close; In_ack; In_fin_ack ];
      [ Cmd_connect; In_syn_ack; In_fin_ack; Cmd_close; In_ack ];
      [ Cmd_connect; In_syn_ack; Cmd_close; In_fin_ack ];
      [ Cmd_connect; In_rst; Cmd_connect ];
    ]

let learn_client seed =
  let sul = Study.sul ~seed () in
  let rng = Rng.create (Int64.add seed 70L) in
  let eq =
    Eq_oracle.combine
      [
        Eq_oracle.fixed_words scenarios;
        Eq_oracle.w_method ~extra_states:1 ();
        Eq_oracle.random_words ~rng ~max_tests:400 ~min_len:1 ~max_len:10;
      ]
  in
  Learn.run ~inputs:Study.all ~sul ~eq ()

let learned_client_shape () =
  let r = learn_client 11L in
  let m = r.Learn.model in
  Alcotest.(check bool)
    (Printf.sprintf "states %d in [7..12]" (Mealy.size m))
    true
    (Mealy.size m >= 7 && Mealy.size m <= 12);
  (* The model replays the full active-close lifecycle. *)
  let out =
    Mealy.run m Study.[ Cmd_connect; In_syn_ack; Cmd_close; In_ack; In_fin_ack ]
  in
  Alcotest.(check (list string)) "active close path"
    [ "SYN(?,?,0)"; "ACK(?,?,0)"; "FIN+ACK(?,?,0)"; "NIL"; "ACK(?,?,0)" ]
    (List.map Study.output_to_string out)

let learned_client_seed_independent () =
  let a = learn_client 13L and b = learn_client 17L in
  Alcotest.(check bool) "equivalent" true
    (Prognosis_analysis.Model_diff.equivalent a.Learn.model b.Learn.model)

let client_property_syn_first () =
  (* Safety: the client never emits data before a SYN was emitted. *)
  let r = learn_client 19L in
  let emits sym (o : Study.output) = List.mem sym o in
  let monitor =
    Prognosis_automata.Dfa.make ~size:3 ~initial:0
      ~delta:(fun s ((_ : Study.symbol), o) ->
        match s with
        | 0 ->
            if emits Tcp_alphabet.Ack_psh o then 2
            else if emits Tcp_alphabet.Syn o then 1
            else 0
        | s -> s)
      ~accepting:(fun s -> s <> 2)
  in
  let prop = Prognosis_analysis.Safety.of_monitor "no data before SYN" monitor in
  Alcotest.(check (option (list pass))) "holds" None
    (Prognosis_analysis.Safety.check prop r.Learn.model)

(* --- property-based: the machine never crashes and keeps invariants --- *)

let gen_event =
  QCheck2.Gen.(
    oneof
      [
        map (fun c -> `Cmd c) (oneofl [ M.Connect; M.Send; M.Close ]);
        map
          (fun (flags, seq, ack) -> `Seg (flags, seq, ack))
          (triple (oneofl [ "SA"; "A"; "AP"; "AF"; "R" ]) (int_range 0 100000)
             (int_range 0 100000));
      ])

let prop_machine_total =
  QCheck2.Test.make ~count:200 ~name:"client machine is total and seq-monotone"
    QCheck2.Gen.(pair (int_range 0 10000) (list_size (int_range 1 20) gen_event))
    (fun (seed, events) ->
      let m = M.create (Rng.create (Int64.of_int seed)) in
      let last_emitted_seq = ref (-1) in
      List.for_all
        (fun event ->
          let emitted =
            match event with
            | `Cmd c -> M.command m c
            | `Seg (flags, seq, ack) ->
                M.handle m
                  (Tcp_wire.make ~src_port:443 ~dst_port:40000 ~seq ~ack
                     (Tcp_wire.flags_of_string flags))
          in
          (* Non-RST data-bearing segments never move sequence numbers
             backwards. *)
          List.for_all
            (fun (seg : Tcp_wire.segment) ->
              if seg.Tcp_wire.flags.Tcp_wire.rst then true
              else if
                String.length seg.Tcp_wire.payload > 0
                || seg.Tcp_wire.flags.Tcp_wire.syn
                || seg.Tcp_wire.flags.Tcp_wire.fin
              then begin
                let ok = !last_emitted_seq <= seg.Tcp_wire.seq in
                last_emitted_seq := seg.Tcp_wire.seq;
                ok
              end
              else true)
            emitted)
        events)

let prop_machine_closed_final_is_sink =
  QCheck2.Test.make ~count:100 ~name:"CLOSED_FINAL absorbs every command"
    QCheck2.Gen.(list_size (int_range 0 10) gen_event)
    (fun events ->
      let m = M.create (Rng.create 5L) in
      (* Reach CLOSED_FINAL via refusal. *)
      let _ = M.command m M.Connect in
      let _ =
        M.handle m
          (Tcp_wire.make ~src_port:443 ~dst_port:40000 ~seq:0 ~ack:0
             (Tcp_wire.flags_of_string "R"))
      in
      M.state m = M.Closed_final
      && List.for_all
           (fun event ->
             let quiet =
               match event with
               | `Cmd c -> M.command m c = []
               | `Seg (flags, seq, ack) ->
                   (* Stray segments may be refused with a RST, but the
                      state must not move. *)
                   ignore
                     (M.handle m
                        (Tcp_wire.make ~src_port:443 ~dst_port:40000 ~seq ~ack
                           (Tcp_wire.flags_of_string flags)));
                   true
             in
             quiet && M.state m = M.Closed_final)
           events)

let () =
  Alcotest.run "tcp-client"
    [
      ( "machine",
        [
          Alcotest.test_case "handshake" `Quick machine_handshake;
          Alcotest.test_case "send and close" `Quick machine_send_and_close;
          Alcotest.test_case "passive close" `Quick machine_passive_close;
          Alcotest.test_case "connection refused" `Quick machine_connection_refused;
          Alcotest.test_case "commands before connect" `Quick machine_commands_before_connect;
        ] );
      ( "adapter",
        [
          Alcotest.test_case "lifecycle" `Quick adapter_lifecycle;
          Alcotest.test_case "refusal" `Quick adapter_refusal;
          Alcotest.test_case "deterministic" `Quick adapter_deterministic;
        ] );
      ( "learning",
        [
          Alcotest.test_case "model shape" `Slow learned_client_shape;
          Alcotest.test_case "seed independent" `Slow learned_client_seed_independent;
          Alcotest.test_case "syn-first property" `Slow client_property_syn_first;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_machine_total; prop_machine_closed_final_is_sink ] );
    ]
