(* Property-based tests over the wire codecs, the crypto simulation and
   the learning pipeline: the invariants that must hold for arbitrary
   data, not just the fixtures. *)

module Mealy = Prognosis_automata.Mealy
module Testing = Prognosis_automata.Testing
module Rng = Prognosis_sul.Rng
module Sul = Prognosis_sul.Sul
module Oracle = Prognosis_learner.Oracle
module Lstar = Prognosis_learner.Lstar
module Ttt = Prognosis_learner.Ttt
module Eq_oracle = Prognosis_learner.Eq_oracle
module Tcp_wire = Prognosis_tcp.Tcp_wire
module Varint = Prognosis_quic.Varint
module Frame = Prognosis_quic.Frame
module Quic_packet = Prognosis_quic.Quic_packet
module Quic_crypto = Prognosis_quic.Quic_crypto

let gen = QCheck2.Gen.int_range

(* --- varint --- *)

let gen_varint_value =
  QCheck2.Gen.oneof
    [
      gen 0 63;
      gen 64 16383;
      gen 16384 1073741823;
      QCheck2.Gen.map (fun v -> abs v mod Varint.max_value) QCheck2.Gen.int;
    ]

let prop_varint_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"varint roundtrip" gen_varint_value (fun v ->
      let s = Varint.encode_to_string v in
      let v', off = Varint.decode s 0 in
      v = v' && off = String.length s)

let prop_varint_sequence =
  QCheck2.Test.make ~count:300 ~name:"varint sequences decode in order"
    QCheck2.Gen.(list_size (gen 1 20) gen_varint_value)
    (fun values ->
      let buf = Buffer.create 64 in
      List.iter (Varint.encode buf) values;
      let s = Buffer.contents buf in
      let rec decode_all off acc =
        if off >= String.length s then List.rev acc
        else
          let v, off' = Varint.decode s off in
          decode_all off' (v :: acc)
      in
      decode_all 0 [] = values)

let prop_varint_length_monotone =
  QCheck2.Test.make ~count:500 ~name:"varint length is monotone"
    QCheck2.Gen.(pair gen_varint_value gen_varint_value)
    (fun (a, b) ->
      let small = min a b and large = max a b in
      Varint.encoded_length small <= Varint.encoded_length large)

(* --- TCP wire --- *)

let gen_flags =
  QCheck2.Gen.oneofl
    (List.map Tcp_wire.flags_of_string [ "S"; "SA"; "A"; "AP"; "AF"; "R"; "AR"; "" ])

let gen_options =
  QCheck2.Gen.(
    list_size (gen 0 3)
      (oneof
         [
           map (fun v -> Tcp_wire.Mss v) (gen 0 65535);
           map (fun v -> Tcp_wire.Window_scale v) (gen 0 14);
           return Tcp_wire.Sack_permitted;
           map
             (fun (v, e) -> Tcp_wire.Timestamps { value = v; echo = e })
             (pair (gen 0 1000000) (gen 0 1000000));
         ]))

let gen_segment =
  QCheck2.Gen.(
    let* src_port = gen 0 65535 in
    let* dst_port = gen 0 65535 in
    let* seq = gen 0 0xFFFFFFFF in
    let* ack = gen 0 0xFFFFFFFF in
    let* flags = gen_flags in
    let* options = gen_options in
    let* payload = string_size ~gen:printable (gen 0 40) in
    return (Tcp_wire.make ~options ~payload ~src_port ~dst_port ~seq ~ack flags))

let prop_tcp_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"tcp segment roundtrip" gen_segment (fun seg ->
      match Tcp_wire.decode (Tcp_wire.encode seg) with
      | Error _ -> false
      | Ok seg' ->
          seg'.Tcp_wire.seq = seg.Tcp_wire.seq
          && seg'.Tcp_wire.ack = seg.Tcp_wire.ack
          && seg'.Tcp_wire.src_port = seg.Tcp_wire.src_port
          && seg'.Tcp_wire.dst_port = seg.Tcp_wire.dst_port
          && seg'.Tcp_wire.payload = seg.Tcp_wire.payload
          && seg'.Tcp_wire.options = seg.Tcp_wire.options
          && Tcp_wire.flags_to_string seg'.Tcp_wire.flags
             = Tcp_wire.flags_to_string seg.Tcp_wire.flags)

let prop_tcp_bitflip_detected =
  QCheck2.Test.make ~count:500 ~name:"tcp checksum detects any single-bit flip"
    QCheck2.Gen.(triple gen_segment (gen 0 1000) (gen 0 7))
    (fun (seg, pos, bit) ->
      let wire = Tcp_wire.encode seg in
      let pos = pos mod String.length wire in
      let flipped =
        String.mapi
          (fun i c -> if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
          wire
      in
      match Tcp_wire.decode flipped with Error _ -> true | Ok _ -> false)

(* --- QUIC frames --- *)

let gen_token = QCheck2.Gen.(string_size ~gen:printable (gen 0 20))

let gen_frame =
  (* Excludes PADDING: adjacent padding runs coalesce by design, so
     exact list roundtrip holds only without it (covered separately). *)
  QCheck2.Gen.(
    oneof
      [
        return Frame.Ping;
        map
          (fun (largest, delay, range) -> Frame.Ack { largest; delay; first_range = range })
          (triple (gen 0 10000) (gen 0 100) (gen 0 50));
        map
          (fun (id, err, size) ->
            Frame.Reset_stream { stream_id = id; error = err; final_size = size })
          (triple (gen 0 100) (gen 0 30) (gen 0 100000));
        map
          (fun (id, err) -> Frame.Stop_sending { stream_id = id; error = err })
          (pair (gen 0 100) (gen 0 30));
        map
          (fun (off, data) -> Frame.Crypto { offset = off; data })
          (pair (gen 0 1000) gen_token);
        map (fun t -> Frame.New_token t) gen_token;
        map
          (fun (id, off, data, fin) -> Frame.Stream { id; offset = off; data; fin })
          (quad (gen 0 60) (gen 0 1000) gen_token bool);
        map (fun v -> Frame.Max_data v) (gen 0 1000000);
        map
          (fun (id, m) -> Frame.Max_stream_data { stream_id = id; max = m })
          (pair (gen 0 100) (gen 0 1000000));
        map
          (fun (bidi, m) -> Frame.Max_streams { bidi; max = m })
          (pair bool (gen 0 1000));
        map (fun v -> Frame.Data_blocked v) (gen 0 100000);
        map
          (fun (id, m) -> Frame.Stream_data_blocked { stream_id = id; max = m })
          (pair (gen 0 100) (gen 0 100000));
        map
          (fun (bidi, m) -> Frame.Streams_blocked { bidi; max = m })
          (pair bool (gen 0 1000));
        map
          (fun (seq, cid) ->
            Frame.New_connection_id
              { seq; retire_prior = 0; cid; reset_token = String.make 16 'T' })
          (pair (gen 0 50) (string_size ~gen:printable (return 8)));
        map (fun seq -> Frame.Retire_connection_id seq) (gen 0 50);
        map (fun s -> Frame.Path_challenge s) (string_size ~gen:printable (return 8));
        map (fun s -> Frame.Path_response s) (string_size ~gen:printable (return 8));
        map
          (fun (err, reason, app) ->
            Frame.Connection_close { error = err; frame_type = 0; reason; app })
          (triple (gen 0 30) gen_token bool);
        return Frame.Handshake_done;
      ])

let prop_frames_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"frame lists roundtrip"
    QCheck2.Gen.(list_size (gen 0 10) gen_frame)
    (fun frames ->
      match Frame.decode_all (Frame.encode_all frames) with
      | Ok decoded -> decoded = frames
      | Error _ -> false)

let prop_padding_coalesces =
  QCheck2.Test.make ~count:200 ~name:"padding coalesces to one frame"
    (gen 1 30)
    (fun n ->
      match Frame.decode_all (Frame.encode_all [ Frame.Padding n ]) with
      | Ok [ Frame.Padding n' ] -> n' = max n 1
      | Ok _ | Error _ -> false)

(* --- QUIC packets --- *)

let fresh_crypto () =
  let c = Quic_crypto.create () in
  Quic_crypto.install_initial c ~dcid:"testcid0";
  Quic_crypto.install_handshake c ~client_random:"cr" ~server_random:"sr";
  c

let prop_packet_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"quic packets roundtrip under protection"
    QCheck2.Gen.(
      triple
        (oneofl [ Quic_packet.Initial; Quic_packet.Handshake; Quic_packet.Short ])
        (gen 0 100000)
        (list_size (gen 0 6) gen_frame))
    (fun (ptype, pn, frames) ->
      let crypto = fresh_crypto () in
      let dcid = "8bytecid" in
      let p = Quic_packet.make ptype ~dcid ~scid:"scid" ~pn ~frames in
      match Quic_packet.encode ~crypto ~sender:Quic_crypto.Client_to_server p with
      | None -> false
      | Some wire -> (
          match
            Quic_packet.decode ~crypto ~sender:Quic_crypto.Client_to_server
              ~reset_tokens:[] wire
          with
          | Quic_packet.Decoded p' ->
              p'.Quic_packet.ptype = ptype
              && p'.Quic_packet.pn = pn
              && p'.Quic_packet.frames = frames
          | Quic_packet.Reset_detected _ | Quic_packet.Undecodable _ -> false))

let prop_packet_bitflip_rejected =
  QCheck2.Test.make ~count:300 ~name:"quic packet protection detects tampering"
    QCheck2.Gen.(pair (gen 0 1000) (gen 0 7))
    (fun (pos, bit) ->
      let crypto = fresh_crypto () in
      let p =
        Quic_packet.make Quic_packet.Initial ~dcid:"8bytecid" ~scid:"scid" ~pn:3
          ~frames:[ Frame.Ping; Frame.Handshake_done ]
      in
      match Quic_packet.encode ~crypto ~sender:Quic_crypto.Client_to_server p with
      | None -> false
      | Some wire -> (
          let pos = pos mod String.length wire in
          let flipped =
            String.mapi
              (fun i c ->
                if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
              wire
          in
          if flipped = wire then true
          else
            match
              Quic_packet.decode ~crypto ~sender:Quic_crypto.Client_to_server
                ~reset_tokens:[] flipped
            with
            | Quic_packet.Decoded p' ->
                (* A header flip may still parse; the payload must not
                   silently change. *)
                p'.Quic_packet.frames = p.Quic_packet.frames
            | Quic_packet.Reset_detected _ | Quic_packet.Undecodable _ -> true))

(* --- crypto --- *)

let prop_crypto_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"seal/open roundtrip"
    QCheck2.Gen.(pair (string_size ~gen:printable (gen 0 100)) (gen 0 100000))
    (fun (plaintext, pn) ->
      let c = fresh_crypto () in
      match
        Quic_crypto.seal c Quic_crypto.Application_level
          Quic_crypto.Server_to_client ~pn ~header:"hd" plaintext
      with
      | None -> false
      | Some sealed ->
          Quic_crypto.open_ c Quic_crypto.Application_level
            Quic_crypto.Server_to_client ~pn ~header:"hd" sealed
          = Some plaintext)

let prop_crypto_pn_binding =
  QCheck2.Test.make ~count:200 ~name:"packet number is bound by the AEAD"
    QCheck2.Gen.(pair (gen 0 1000) (gen 0 1000))
    (fun (pn1, pn2) ->
      pn1 = pn2
      ||
      let c = fresh_crypto () in
      match
        Quic_crypto.seal c Quic_crypto.Initial_level Quic_crypto.Client_to_server
          ~pn:pn1 ~header:"h" "data"
      with
      | None -> false
      | Some sealed ->
          Quic_crypto.open_ c Quic_crypto.Initial_level
            Quic_crypto.Client_to_server ~pn:pn2 ~header:"h" sealed
          = None)

(* --- DTLS records --- *)

module Dtls_wire = Prognosis_dtls.Dtls_wire

let gen_dtls_handshake =
  QCheck2.Gen.(
    let* msg_type =
      oneofl
        Dtls_wire.
          [
            Client_hello; Server_hello; Hello_verify_request; Certificate;
            Server_hello_done; Client_key_exchange; Finished;
          ]
    in
    let* message_seq = gen 0 1000 in
    let* body = string_size ~gen:printable (gen 0 50) in
    return { Dtls_wire.msg_type; message_seq; body })

let prop_dtls_handshake_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"dtls handshake messages roundtrip"
    gen_dtls_handshake
    (fun h ->
      match Dtls_wire.decode_handshake (Dtls_wire.encode_handshake h) with
      | Ok h' -> h' = h
      | Error _ -> false)

let prop_dtls_record_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"dtls records roundtrip"
    QCheck2.Gen.(
      quad
        (oneofl
           Dtls_wire.[ Change_cipher_spec; Alert; Handshake; Application_data ])
        (gen 0 1) (gen 0 100000)
        (string_size ~gen:printable (gen 0 60)))
    (fun (content, epoch, seq, payload) ->
      let r = { Dtls_wire.content; epoch; seq; payload } in
      (* Plaintext roundtrip (no protection callbacks). *)
      match Dtls_wire.decode_record (Dtls_wire.encode_record r) with
      | Ok r' -> r' = r
      | Error _ -> false)

(* --- IPv4/UDP encapsulation --- *)

module Inet = Prognosis_sul.Inet

let prop_inet_udp_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"ipv4/udp wrap-unwrap roundtrip"
    QCheck2.Gen.(
      quad (gen 0 0xFFFF) (gen 1 65535) (gen 1 65535)
        (string_size ~gen:printable (gen 0 80)))
    (fun (addr_salt, src_port, dst_port, payload) ->
      let src = 0x0A000000 lor addr_salt and dst = 0x0B000000 lor addr_salt in
      match
        Inet.unwrap_udp (Inet.wrap_udp ~src ~dst ~src_port ~dst_port payload)
      with
      | Ok (port, payload') -> port = src_port && payload' = payload
      | Error _ -> false)

let prop_inet_bitflip_detected =
  QCheck2.Test.make ~count:300 ~name:"ipv4/udp single-bit flips are detected"
    QCheck2.Gen.(triple (gen 0 1000) (gen 0 7) (string_size ~gen:printable (gen 1 40)))
    (fun (pos, bit, payload) ->
      let wire = Inet.wrap_udp ~src:1 ~dst:2 ~src_port:3 ~dst_port:4 payload in
      let pos = pos mod String.length wire in
      let flipped =
        String.mapi
          (fun i c -> if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
          wire
      in
      match Inet.unwrap_udp flipped with
      | Error _ -> true
      | Ok (port, payload') ->
          (* The flip may hit padding-free fields we do not check (TTL);
             accept only when the delivered data is untouched. *)
          port = 3 && payload' = payload)

(* --- learning pipeline over random machines, 3-symbol alphabet --- *)

let gen_mealy3 =
  QCheck2.Gen.(
    let* size = gen 1 5 in
    let* delta = array_size (return size) (array_size (return 3) (gen 0 (size - 1))) in
    let* lambda = array_size (return size) (array_size (return 3) (gen 0 2)) in
    return (Mealy.make ~size ~initial:0 ~inputs:[| 'a'; 'b'; 'c' |] ~delta ~lambda))

let prop_learners_agree_3sym =
  QCheck2.Test.make ~count:40 ~name:"learners agree on 3-symbol machines"
    gen_mealy3
    (fun target ->
      let mq () = Oracle.of_sul (Sul.of_mealy target) in
      let eq = Eq_oracle.against target in
      let m1, _ = Lstar.learn ~inputs:(Mealy.inputs target) ~mq:(mq ()) ~eq () in
      let m2, _ = Ttt.learn ~inputs:(Mealy.inputs target) ~mq:(mq ()) ~eq () in
      Mealy.equivalent m1 m2 = None && Mealy.equivalent m1 target = None)

let prop_w_method_kills_output_mutants =
  QCheck2.Test.make ~count:60 ~name:"w-method suites kill single-output mutants"
    QCheck2.Gen.(triple gen_mealy3 (gen 0 100) (gen 0 2))
    (fun (m, spos, i) ->
      let size = Mealy.size m in
      let s = spos mod size in
      (* Mutant: flip one output to a fresh symbol. *)
      let mutant =
        Mealy.of_fun ~size ~initial:(Mealy.initial m) ~inputs:(Mealy.inputs m)
          ~step:(fun q x ->
            let q', o = Mealy.step m q x in
            if q = s && x = (Mealy.inputs m).(i) then (q', 99) else (q', o))
      in
      (* The mutated transition may be unreachable; only demand a kill
         when the machines genuinely differ. *)
      match Mealy.equivalent m mutant with
      | None -> true
      | Some _ ->
          (* The W-method guarantee covers implementations with at most
             |spec| + extra states; the (unminimized) mutant may have up
             to |m| states while the minimized spec has fewer. *)
          let spec = Mealy.minimize m in
          let extra_states = Mealy.size m - Mealy.size spec in
          let suite = Testing.w_method ~extra_states spec in
          List.exists (fun w -> Mealy.run m w <> Mealy.run mutant w) suite)

let prop_minimize_fixpoint =
  QCheck2.Test.make ~count:100 ~name:"minimize is a fixpoint" gen_mealy3 (fun m ->
      let m1 = Mealy.minimize m in
      let m2 = Mealy.minimize m1 in
      Mealy.size m1 = Mealy.size m2 && Mealy.equivalent m1 m2 = None)

let () =
  Alcotest.run "properties"
    [
      ( "varint",
        List.map QCheck_alcotest.to_alcotest
          [ prop_varint_roundtrip; prop_varint_sequence; prop_varint_length_monotone ] );
      ( "tcp-wire",
        List.map QCheck_alcotest.to_alcotest
          [ prop_tcp_roundtrip; prop_tcp_bitflip_detected ] );
      ( "quic-frames",
        List.map QCheck_alcotest.to_alcotest
          [ prop_frames_roundtrip; prop_padding_coalesces ] );
      ( "quic-packets",
        List.map QCheck_alcotest.to_alcotest
          [ prop_packet_roundtrip; prop_packet_bitflip_rejected ] );
      ( "crypto",
        List.map QCheck_alcotest.to_alcotest
          [ prop_crypto_roundtrip; prop_crypto_pn_binding ] );
      ( "dtls-wire",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dtls_handshake_roundtrip; prop_dtls_record_roundtrip ] );
      ( "inet",
        List.map QCheck_alcotest.to_alcotest
          [ prop_inet_udp_roundtrip; prop_inet_bitflip_detected ] );
      ( "learning",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_learners_agree_3sym;
            prop_w_method_kills_output_mutants;
            prop_minimize_fixpoint;
          ] );
    ]
