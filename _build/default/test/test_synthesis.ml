module Mealy = Prognosis_automata.Mealy
module Rng = Prognosis_sul.Rng
module Adapter = Prognosis_sul.Adapter
module Oracle_table = Prognosis_sul.Oracle_table
open Prognosis_synthesis

(* --- term evaluation --- *)

let term_eval () =
  let regs = [| 5; 10 |] and fields_in = [| 100; 200 |] in
  let fields_out = [| Some 7; None |] in
  let eval t = Term.eval ~regs ~fields_in ~fields_out t in
  Alcotest.(check (option int)) "reg" (Some 5) (eval (Term.Reg 0));
  Alcotest.(check (option int)) "reg+1" (Some 11) (eval (Term.Reg_inc 1));
  Alcotest.(check (option int)) "in" (Some 200) (eval (Term.In_field 1));
  Alcotest.(check (option int)) "in+1" (Some 101) (eval (Term.In_field_inc 0));
  Alcotest.(check (option int)) "out" (Some 7) (eval (Term.Out_field 0));
  Alcotest.(check (option int)) "out+1" (Some 8) (eval (Term.Out_field_inc 0));
  Alcotest.(check (option int)) "out unknown" None (eval (Term.Out_field 1));
  Alcotest.(check (option int)) "const" (Some 42) (eval (Term.Const 42))

let term_candidates () =
  let u = Term.update_candidates ~nregs:1 ~in_arity:2 ~out_arity:1 ~consts:[ 0 ] in
  (* r0, r0+1, in0, in0+1, in1, in1+1, out0, out0+1, 0 *)
  Alcotest.(check int) "update candidates" 9 (List.length u);
  let o = Term.output_candidates ~nregs:1 ~in_arity:2 ~consts:[ 0; 3 ] in
  Alcotest.(check int) "output candidates" 8 (List.length o)

let term_constant () =
  Alcotest.(check bool) "const" true (Term.is_constant (Term.Const 0));
  Alcotest.(check bool) "reg" false (Term.is_constant (Term.Reg 0))

(* --- the paper's Figure 4 example ---

   Skeleton: s0 --ACK/NIL--> s1 --SYN/ACK--> s2 (all other transitions
   self-loop for totality). Input fields (sn, an); output fields
   (sn, an). The paper's witness traces pin the update u1 = r+1 and the
   ACK output's an = r+1 (our grammar expresses the same machine via a
   register that tracks an input field). *)

let fig4_skeleton =
  Mealy.make ~size:3 ~initial:0 ~inputs:[| "ACK"; "SYN" |]
    ~delta:[| [| 1; 0 |]; [| 1; 2 |]; [| 2; 2 |] |]
    ~lambda:[| [| "NIL"; "NIL" |]; [| "NIL"; "ACK" |]; [| "NIL"; "NIL" |] |]

let step sym_in fields_in sym_out fields_out =
  { Ext_mealy.sym_in; fields_in; sym_out; fields_out }

(* Trace 1 from the paper: [(ACK(0,3)/NIL), (SYN(2,5)/ACK(4,5))].
   The response ACK's sn=4 = input sn 2 incremented twice is not in the
   grammar, but ack=5 = an of the input; we constrain an and leave
   sn=4 to a register captured from the trace, as the paper does by
   choosing among its fixed term list. *)
let fig4_trace1 =
  [
    step "ACK" [| 0; 3 |] "NIL" [| None; None |];
    step "SYN" [| 2; 5 |] "ACK" [| None; Some 5 |];
  ]

let fig4_trace2 =
  [
    step "ACK" [| 10; 7 |] "NIL" [| None; None |];
    step "SYN" [| 4; 9 |] "ACK" [| None; Some 9 |];
  ]

let fig4_synthesis () =
  let cfg = Synthesizer.default_config ~nregs:1 ~in_arity:2 ~out_arity:2 in
  match
    Synthesizer.solve cfg ~skeleton:fig4_skeleton
      ~traces:[ fig4_trace1; fig4_trace2 ] ()
  with
  | Error e -> Alcotest.fail e
  | Ok machine ->
      Alcotest.(check bool) "explains trace 1" true
        (Ext_mealy.check machine fig4_trace1);
      Alcotest.(check bool) "explains trace 2" true
        (Ext_mealy.check machine fig4_trace2);
      (* The an-output of the ACK transition must be input-derived. *)
      (match Ext_mealy.output_term machine ~state:1 ~input:"SYN" ~field:1 with
      | Some term ->
          Alcotest.(check bool) "an term is not constant" true
            (not (Term.is_constant term))
      | None -> Alcotest.fail "an term missing")

let fig4_register_update () =
  (* Force a register solution: the output field equals the FIRST
     input's an, observed only at the second step — expressible solely
     through a register captured at step one. *)
  let trace1 =
    [
      step "ACK" [| 0; 3 |] "NIL" [| None; None |];
      step "SYN" [| 2; 5 |] "ACK" [| Some 3; None |];
    ]
  in
  let trace2 =
    [
      step "ACK" [| 1; 8 |] "NIL" [| None; None |];
      step "SYN" [| 2; 5 |] "ACK" [| Some 8; None |];
    ]
  in
  let cfg = Synthesizer.default_config ~nregs:1 ~in_arity:2 ~out_arity:2 in
  match Synthesizer.solve cfg ~skeleton:fig4_skeleton ~traces:[ trace1; trace2 ] () with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      match Ext_mealy.output_term machine ~state:1 ~input:"SYN" ~field:0 with
      | Some (Term.Reg 0) -> (
          match Ext_mealy.update_term machine ~state:0 ~input:"ACK" ~reg:0 with
          | Some (Term.In_field 1) -> ()
          | Some other ->
              Alcotest.fail
                (Fmt.str "unexpected update term %a (wanted in[1])" Term.pp other)
          | None -> Alcotest.fail "update term missing")
      | Some other ->
          Alcotest.fail (Fmt.str "unexpected output term %a (wanted r0)" Term.pp other)
      | None -> Alcotest.fail "output term missing")

let unsatisfiable_reports_error () =
  (* Observed outputs 1 and 2 for identical instances: no term fits. *)
  let t1 = [ step "ACK" [| 0; 0 |] "NIL" [| Some 1; None |] ] in
  let t2 = [ step "ACK" [| 0; 0 |] "NIL" [| Some 2; None |] ] in
  let cfg = Synthesizer.default_config ~nregs:1 ~in_arity:2 ~out_arity:2 in
  match Synthesizer.solve cfg ~skeleton:fig4_skeleton ~traces:[ t1; t2 ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unsatisfiability"

let negative_examples_respected () =
  let positive = [ step "ACK" [| 7; 0 |] "NIL" [| Some 7; None |] ] in
  (* Negative: same transition with output 0 — kills the Const 0 and
     an-based solutions, leaving sn. *)
  let negative = [ step "ACK" [| 0; 5 |] "NIL" [| Some 5; None |] ] in
  let cfg = Synthesizer.default_config ~nregs:0 ~in_arity:2 ~out_arity:2 in
  match
    Synthesizer.solve cfg ~skeleton:fig4_skeleton ~traces:[ positive ]
      ~negatives:[ negative ] ()
  with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      Alcotest.(check bool) "rejects the negative" false
        (Ext_mealy.check machine negative);
      match Ext_mealy.output_term machine ~state:0 ~input:"ACK" ~field:0 with
      | Some (Term.In_field 0) -> ()
      | Some other -> Alcotest.fail (Fmt.str "got %a, wanted in[0]" Term.pp other)
      | None -> Alcotest.fail "term missing")

let skeleton_mismatch_fails () =
  (* Trace disagrees with the skeleton's abstract output. *)
  let bad = [ step "ACK" [| 0; 0 |] "ACK" [| None; None |] ] in
  let cfg = Synthesizer.default_config ~nregs:0 ~in_arity:2 ~out_arity:2 in
  match Synthesizer.solve cfg ~skeleton:fig4_skeleton ~traces:[ bad ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "skeleton-inconsistent trace must fail"

let ext_machine_predict () =
  let cfg = Synthesizer.default_config ~nregs:1 ~in_arity:2 ~out_arity:2 in
  match
    Synthesizer.solve cfg ~skeleton:fig4_skeleton
      ~traces:[ fig4_trace1; fig4_trace2 ] ()
  with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      match Ext_mealy.predict machine fig4_trace1 with
      | Error e -> Alcotest.fail e
      | Ok predictions ->
          Alcotest.(check int) "one prediction per step" 2 (List.length predictions);
          let last = List.nth predictions 1 in
          Alcotest.(check (option int)) "an predicted" (Some 5) last.(1))

let refine_converges () =
  (* The SUL echoes its input's first field; sampling draws random
     instances. *)
  let rng = Rng.create 77L in
  let sample () =
    let v = Rng.int rng 1000 in
    [ step "ACK" [| v; 0 |] "NIL" [| Some v; None |] ]
  in
  let cfg = Synthesizer.default_config ~nregs:0 ~in_arity:2 ~out_arity:2 in
  (* Seed with a misleading trace where sn = an = const-looking 3. *)
  let seed_trace = [ step "ACK" [| 3; 3 |] "NIL" [| Some 3; None |] ] in
  match
    Synthesizer.refine cfg ~skeleton:fig4_skeleton ~sample ~rounds:10
      ~traces:[ seed_trace ]
  with
  | Error e -> Alcotest.fail e
  | Ok (machine, witnesses) -> (
      Alcotest.(check bool) "gained witnesses" true (List.length witnesses >= 1);
      match Ext_mealy.output_term machine ~state:0 ~input:"ACK" ~field:0 with
      | Some (Term.In_field 0) -> ()
      | Some other -> Alcotest.fail (Fmt.str "got %a, wanted in[0]" Term.pp other)
      | None -> Alcotest.fail "term missing")

let dot_rendering () =
  let cfg = Synthesizer.default_config ~nregs:1 ~in_arity:2 ~out_arity:2 in
  match Synthesizer.solve cfg ~skeleton:fig4_skeleton ~traces:[ fig4_trace1 ] () with
  | Error e -> Alcotest.fail e
  | Ok machine ->
      let dot =
        Ext_mealy.to_dot ~input_pp:Fmt.string ~output_pp:Fmt.string
          ~names_in:[| "sn"; "an" |] ~names_out:[| "sn"; "an" |] machine
      in
      Alcotest.(check bool) "digraph" true (String.length dot > 50);
      Alcotest.(check bool) "mentions register" true
        (let rec contains h n i =
           i + String.length n <= String.length h
           && (String.sub h i (String.length n) = n || contains h n (i + 1))
         in
         contains dot "r0" 0)

(* --- end-to-end: synthesize registers from the TCP Oracle Table (E8) --- *)

module Tcp = Prognosis_tcp

let tcp_fields_in (seg : Tcp.Tcp_wire.segment) =
  [| seg.Tcp.Tcp_wire.seq; seg.Tcp.Tcp_wire.ack; String.length seg.Tcp.Tcp_wire.payload |]

(* The server's own initial sequence number is random and inexpressible
   (the paper leaves such parameters as '?'); we constrain only the
   acknowledgement number of responses. *)
let tcp_fields_out (seg : Tcp.Tcp_wire.segment) =
  [| None; (if seg.Tcp.Tcp_wire.flags.Tcp.Tcp_wire.ack then Some seg.Tcp.Tcp_wire.ack else None) |]

let tcp_oracle_traces adapter words =
  List.map
    (fun word ->
      let _ = Adapter.query adapter word in
      match Oracle_table.find adapter.Adapter.table word with
      | None -> Alcotest.fail "oracle table entry missing"
      | Some entry ->
          List.map2
            (fun (sym, out) (oracle_step : _ Oracle_table.step) ->
              let fields_in =
                match oracle_step.Oracle_table.sent with
                | [ seg ] -> tcp_fields_in seg
                | _ -> Alcotest.fail "expected one sent segment per step"
              in
              let fields_out =
                match oracle_step.Oracle_table.received with
                | [] -> [| None; None |]
                | seg :: _ -> tcp_fields_out seg
              in
              { Ext_mealy.sym_in = sym; fields_in; sym_out = out; fields_out })
            (List.combine entry.Oracle_table.abstract_inputs
               entry.Oracle_table.abstract_outputs)
            entry.Oracle_table.steps)
    words

let tcp_synthesis_end_to_end () =
  let adapter = Tcp.Tcp_adapter.create ~seed:97L () in
  let words =
    Tcp.Tcp_alphabet.
      [
        [ Syn; Ack; Ack_psh; Ack_psh ];
        [ Syn; Ack_psh; Fin_ack ];
        [ Syn; Ack; Fin_ack; Ack ];
      ]
  in
  let traces = tcp_oracle_traces adapter words in
  (* Learn the skeleton over the same SUL. *)
  let sul = Tcp.Tcp_adapter.sul ~seed:97L () in
  let eq = Prognosis_learner.Eq_oracle.w_method ~extra_states:1 () in
  let result =
    Prognosis_learner.Learn.run ~inputs:Tcp.Tcp_alphabet.all ~sul ~eq ()
  in
  let skeleton = result.Prognosis_learner.Learn.model in
  let cfg =
    { (Synthesizer.default_config ~nregs:1 ~in_arity:3 ~out_arity:2) with
      consts = [ 0 ] }
  in
  match Synthesizer.solve cfg ~skeleton ~traces () with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      List.iter
        (fun trace ->
          Alcotest.(check bool) "explains oracle trace" true
            (Ext_mealy.check machine trace))
        traces;
      (* The SYN+ACK's acknowledgement number must track the client's
         sequence number + 1 — the 3-way handshake invariant. *)
      match
        Ext_mealy.output_term machine ~state:(Mealy.initial skeleton)
          ~input:Tcp.Tcp_alphabet.Syn ~field:1
      with
      | Some (Term.In_field_inc 0) -> ()
      | Some other ->
          Alcotest.fail (Fmt.str "ack term %a (wanted sn+1)" Term.pp other)
      | None -> Alcotest.fail "ack term missing")

let () =
  Alcotest.run "synthesis"
    [
      ( "terms",
        [
          Alcotest.test_case "eval" `Quick term_eval;
          Alcotest.test_case "candidates" `Quick term_candidates;
          Alcotest.test_case "constants" `Quick term_constant;
        ] );
      ( "solver",
        [
          Alcotest.test_case "figure 4" `Quick fig4_synthesis;
          Alcotest.test_case "register capture" `Quick fig4_register_update;
          Alcotest.test_case "unsat" `Quick unsatisfiable_reports_error;
          Alcotest.test_case "negatives" `Quick negative_examples_respected;
          Alcotest.test_case "skeleton mismatch" `Quick skeleton_mismatch_fails;
          Alcotest.test_case "predict" `Quick ext_machine_predict;
          Alcotest.test_case "refine" `Quick refine_converges;
          Alcotest.test_case "dot" `Quick dot_rendering;
        ] );
      ( "tcp",
        [ Alcotest.test_case "oracle-table synthesis" `Slow tcp_synthesis_end_to_end ] );
    ]
