module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Rng = Prognosis_sul.Rng
module Oracle = Prognosis_learner.Oracle
module Cache = Prognosis_learner.Cache
module Passive = Prognosis_learner.Passive
module Learn = Prognosis_learner.Learn
module Eq_oracle = Prognosis_learner.Eq_oracle

let counter3 =
  Mealy.make ~size:3 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 2; 0 |]; [| 0; 0 |] |]
    ~lambda:[| [| "0"; "r" |]; [| "1"; "r" |]; [| "2"; "r" |] |]

let sample_of words = Passive.sample_of_words (Sul.of_mealy counter3) words

(* --- PTA --- *)

let pta_replays_sample () =
  let sample = sample_of [ [ 'a'; 'a' ]; [ 'a'; 'b'; 'a' ]; [ 'b' ] ] in
  let m = Passive.pta ~inputs:[| 'a'; 'b' |] ~default:"?" sample in
  Alcotest.(check bool) "consistent" true (Passive.consistent m sample)

let pta_inconsistent_sample_rejected () =
  let sample = [ ([ 'a' ], [ "x" ]); ([ 'a'; 'b' ], [ "y"; "z" ]) ] in
  Alcotest.check_raises "conflict"
    (Invalid_argument "Passive: inconsistent sample (nondeterministic outputs)")
    (fun () -> ignore (Passive.pta ~inputs:[| 'a'; 'b' |] ~default:"?" sample))

let pta_length_mismatch_rejected () =
  Alcotest.check_raises "length"
    (Invalid_argument "Passive: input/output length mismatch")
    (fun () ->
      ignore (Passive.pta ~inputs:[| 'a' |] ~default:"?" [ ([ 'a' ], []) ]))

let pta_unknown_symbol_rejected () =
  Alcotest.check_raises "alphabet"
    (Invalid_argument "Passive: symbol outside the alphabet")
    (fun () ->
      ignore (Passive.pta ~inputs:[| 'a' |] ~default:"?" [ ([ 'z' ], [ "x" ]) ]))

let pta_grows_with_sample () =
  let small = Passive.pta ~inputs:[| 'a'; 'b' |] ~default:"?" (sample_of [ [ 'a' ] ]) in
  let large =
    Passive.pta ~inputs:[| 'a'; 'b' |] ~default:"?"
      (sample_of [ [ 'a'; 'a'; 'a'; 'b'; 'a' ] ])
  in
  Alcotest.(check bool) "more states" true (Mealy.size large > Mealy.size small)

(* --- RPNI --- *)

let rpni_consistent () =
  let rng = Rng.create 5L in
  let sample =
    Passive.random_sample ~rng ~inputs:[| 'a'; 'b' |] ~words:60 ~max_len:8
      (Sul.of_mealy counter3)
  in
  let m = Passive.rpni ~inputs:[| 'a'; 'b' |] ~default:"?" sample in
  Alcotest.(check bool) "consistent with sample" true (Passive.consistent m sample)

let rpni_generalizes () =
  (* With a rich enough sample, RPNI recovers the 3-state machine
     exactly. *)
  let rng = Rng.create 11L in
  let sample =
    Passive.random_sample ~rng ~inputs:[| 'a'; 'b' |] ~words:150 ~max_len:10
      (Sul.of_mealy counter3)
  in
  let m = Passive.rpni ~inputs:[| 'a'; 'b' |] ~default:"?" sample in
  Alcotest.(check int) "3 states" 3 (Mealy.size m);
  Alcotest.(check (option (list char))) "equivalent to target" None
    (Mealy.equivalent m counter3)

let rpni_compresses_pta () =
  let rng = Rng.create 13L in
  let sample =
    Passive.random_sample ~rng ~inputs:[| 'a'; 'b' |] ~words:80 ~max_len:8
      (Sul.of_mealy counter3)
  in
  let tree = Passive.pta ~inputs:[| 'a'; 'b' |] ~default:"?" sample in
  let merged = Passive.rpni ~inputs:[| 'a'; 'b' |] ~default:"?" sample in
  Alcotest.(check bool)
    (Printf.sprintf "rpni(%d) << pta(%d)" (Mealy.size merged) (Mealy.size tree))
    true
    (Mealy.size merged * 4 < Mealy.size tree)

let prop_rpni_always_consistent =
  let gen_mealy =
    QCheck2.Gen.(
      let* size = int_range 1 4 in
      let* delta =
        array_size (return size) (array_size (return 2) (int_range 0 (size - 1)))
      in
      let* lambda = array_size (return size) (array_size (return 2) (int_range 0 2)) in
      return (Mealy.make ~size ~initial:0 ~inputs:[| 'a'; 'b' |] ~delta ~lambda))
  in
  QCheck2.Test.make ~count:60 ~name:"rpni output is always sample-consistent"
    QCheck2.Gen.(pair gen_mealy (int_range 0 1000))
    (fun (target, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let sample =
        Passive.random_sample ~rng ~inputs:[| 'a'; 'b' |] ~words:30 ~max_len:6
          (Sul.of_mealy target)
      in
      let m = Passive.rpni ~inputs:[| 'a'; 'b' |] ~default:(-1) sample in
      Passive.consistent m sample)

(* --- passive/active hybrid (paper §8) --- *)

let hybrid_saves_queries () =
  let sul = Prognosis_tcp.Tcp_adapter.sul ~seed:31L () in
  let inputs = Prognosis_tcp.Tcp_alphabet.all in
  (* "Logs": 400 random interactions recorded beforehand. *)
  let rng = Rng.create 17L in
  let logs = Passive.random_sample ~rng ~inputs ~words:400 ~max_len:8 sul in
  let learn ~preload =
    let raw = Oracle.of_sul (Prognosis_tcp.Tcp_adapter.sul ~seed:31L ()) in
    let cache = Cache.create () in
    if preload then Passive.preload cache logs;
    let mq = Cache.wrap cache raw in
    let model, _ =
      Prognosis_learner.Ttt.learn ~inputs ~mq
        ~eq:(Eq_oracle.w_method ~extra_states:1 ())
        ()
    in
    (model, raw.Oracle.stats.Oracle.membership_queries)
  in
  let cold_model, cold_queries = learn ~preload:false in
  let warm_model, warm_queries = learn ~preload:true in
  Alcotest.(check (option (list pass))) "same model" None
    (Mealy.equivalent cold_model warm_model);
  Alcotest.(check bool)
    (Printf.sprintf "warm(%d) < cold(%d)" warm_queries cold_queries)
    true (warm_queries < cold_queries)

let () =
  Alcotest.run "passive"
    [
      ( "pta",
        [
          Alcotest.test_case "replays sample" `Quick pta_replays_sample;
          Alcotest.test_case "inconsistent rejected" `Quick pta_inconsistent_sample_rejected;
          Alcotest.test_case "length mismatch" `Quick pta_length_mismatch_rejected;
          Alcotest.test_case "unknown symbol" `Quick pta_unknown_symbol_rejected;
          Alcotest.test_case "grows" `Quick pta_grows_with_sample;
        ] );
      ( "rpni",
        [
          Alcotest.test_case "consistent" `Quick rpni_consistent;
          Alcotest.test_case "generalizes" `Quick rpni_generalizes;
          Alcotest.test_case "compresses" `Quick rpni_compresses_pta;
          QCheck_alcotest.to_alcotest prop_rpni_always_consistent;
        ] );
      ( "hybrid",
        [ Alcotest.test_case "preloaded logs save queries" `Slow hybrid_saves_queries ] );
    ]
