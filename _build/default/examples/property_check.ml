(* Property checking across QUIC profiles (the paper's §5 and §6.2.2,
   plus the Issue-4 synthesis of §6.2.6).

   Three kinds of checks:
   1. temporal safety on the learned model (model-checking by product
      construction — decidable for Mealy machines),
   2. numeric properties on concrete observations ("packet numbers are
      always increasing", "NEW_CONNECTION_ID sequence numbers increase
      by 1", "no data beyond the advertised flow-control limit"),
   3. the synthesized extended machine over the STREAM_DATA_BLOCKED
      Maximum Stream Data field, which exposes Google QUIC's constant-0
      placeholder (Issue 4).

   Run with: dune exec examples/property_check.exe *)

module Safety = Prognosis_analysis.Safety
module Profile = Prognosis_quic.Quic_profile
module Frame = Prognosis_quic.Frame
open Prognosis

let words =
  Quic_study.Alphabet.
    [
      [ Initial_crypto; Initial_crypto; Handshake_ack_crypto; Short_ack_stream ];
      [
        Initial_crypto;
        Initial_crypto;
        Handshake_ack_crypto;
        Short_ack_stream;
        Short_ack_flow;
      ];
    ]

let has_frame kind (out : Quic_study.Alphabet.output) =
  List.exists
    (fun (a : Quic_study.Alphabet.apacket) ->
      List.mem kind a.Quic_study.Alphabet.frames)
    out

let examine profile =
  Format.printf "=== %s ===@." profile.Profile.name;
  let r = Quic_study.learn ~seed:11L ~profile () in

  (* 1. temporal safety on the learned model *)
  let silent_after_close =
    Safety.after_always "after CONNECTION_CLOSE, no stream data"
      ~trigger:(fun (_, o) -> has_frame Frame.K_connection_close o)
      ~then_:(fun (_, o) -> not (has_frame Frame.K_stream o))
  in
  let hsd_at_most_once =
    Safety.after_always "HANDSHAKE_DONE is sent at most once"
      ~trigger:(fun (_, o) -> has_frame Frame.K_handshake_done o)
      ~then_:(fun (_, o) -> not (has_frame Frame.K_handshake_done o))
  in
  List.iter
    (fun prop ->
      match Safety.check prop r.Quic_study.model with
      | None -> Format.printf "[ok]   %s@." (Safety.name prop)
      | Some word ->
          Format.printf "[FAIL] %s@.       witness: %s@." (Safety.name prop)
            (String.concat " " (List.map Quic_study.Alphabet.to_string word)))
    [ silent_after_close; hsd_at_most_once ];

  (* 2. numeric trace properties *)
  List.iter
    (fun pns ->
      if List.length pns >= 2 then
        Format.printf "[%s]   packet numbers %s: %a@."
          (match Safety.strictly_increasing pns with
          | Safety.Holds -> "ok"
          | Safety.Violated _ -> "FAIL")
          (String.concat "," (List.map string_of_int pns))
          Safety.pp_verdict
          (Safety.strictly_increasing pns))
    (Quic_study.packet_number_sequences r words);
  let client = r.Quic_study.client in
  let ncids = Prognosis_quic.Quic_client.ncid_sequence_numbers client in
  if ncids <> [] then
    Format.printf "[%s]   NEW_CONNECTION_ID seqs %s must increase by 1: %a@."
      (match Safety.increases_by ~stride:1 ncids with
      | Safety.Holds -> "ok"
      | Safety.Violated _ -> "FAIL")
      (String.concat "," (List.map string_of_int ncids))
      Safety.pp_verdict
      (Safety.increases_by ~stride:1 ncids);
  Format.printf "[%s]   no data beyond the advertised stream limit@."
    (if Prognosis_quic.Quic_client.flow_violation client then "FAIL" else "ok");

  (* 3. the Issue-4 synthesized machine *)
  (match Quic_study.synthesize_sdb r words with
  | Error e -> Format.printf "[??]   sdb synthesis failed: %s@." e
  | Ok machine -> (
      match Quic_study.sdb_verdict machine with
      | `Constant c ->
          Format.printf
            "[FAIL] STREAM_DATA_BLOCKED Maximum Stream Data is the constant %d \
             (Issue 4: a forgotten placeholder)@."
            c
      | `Symbolic ->
          Format.printf
            "[ok]   STREAM_DATA_BLOCKED Maximum Stream Data tracks the blocked \
             offset@."
      | `Unobserved -> Format.printf "[--]   no STREAM_DATA_BLOCKED observed@."));
  Format.printf "@."

let () =
  List.iter examine
    [ Profile.quiche_like; Profile.google_like; Profile.ncid_buggy ]
