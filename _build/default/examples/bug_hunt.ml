(* Bug hunting with the nondeterminism check (the paper's §6.2.4,
   Issue 2).

   The learner demands deterministic answers, so every query is
   executed repeatedly. A compliant server answers packets on a closed
   connection either always or never with a Stateless Reset. The
   mvfst-like profile answers with probability 0.82 — the exact
   inconsistency Prognosis caught in Facebook's mvfst. Because those
   resets have no back-off, a client can farm reset packets from the
   server for free: a denial-of-service vector.

   Run with: dune exec examples/bug_hunt.exe *)

module Nondet = Prognosis_sul.Nondet
module Alphabet = Prognosis_quic.Quic_alphabet
module Profile = Prognosis_quic.Quic_profile

(* Close the connection by sending the server-only HANDSHAKE_DONE
   frame, then keep probing the corpse. *)
let probe_word = Alphabet.[ Initial_crypto; Handshake_ack_hsd; Short_ack_stream ]

let examine profile =
  Format.printf "--- %s ---@." profile.Profile.name;
  let sul = Prognosis_quic.Quic_adapter.sul ~profile ~seed:2024L () in
  let config = { Nondet.min_runs = 20; max_runs = 120; agreement = 0.99 } in
  (match Nondet.query config sul probe_word with
  | Nondet.Deterministic answer ->
      Format.printf "deterministic; post-close answer: %s@."
        (match List.rev answer with
        | last :: _ -> Alphabet.output_to_string last
        | [] -> "?")
  | Nondet.Nondeterministic observations ->
      Format.printf "NONDETERMINISM DETECTED — %d distinct answers:@."
        (List.length observations);
      List.iter
        (fun o ->
          Format.printf "  %3d× ... %s@." o.Nondet.count
            (match List.rev o.Nondet.answer with
            | last :: _ -> Alphabet.output_to_string last
            | [] -> "?"))
        observations;
      let rate =
        Nondet.frequency observations (fun answer ->
            match List.rev answer with
            | last :: _ -> last = [ Alphabet.abstract_reset ]
            | [] -> false)
      in
      Format.printf
        "reset rate %.0f%% (paper: 82%%). The server burns a Stateless Reset \
         for most probes with no back-off: an attacker can replay one cheap \
         packet to generate server load — a DoS vector.@."
        (100.0 *. rate));
  Format.printf "@."

(* Going beyond the boolean verdict (the paper's §8 "environment
   quantities" direction): learn the modal skeleton of the stochastic
   implementation and annotate every transition with its empirical
   output distribution. *)
let quantify profile =
  Format.printf "--- stochastic model of %s ---@." profile.Profile.name;
  let sul = Prognosis_quic.Quic_adapter.sul ~profile ~seed:4242L () in
  let mq =
    Prognosis_learner.Oracle.of_fun
      (Prognosis_sul.Nondet.modal_oracle ~runs:41 sul)
  in
  let rng = Prognosis_sul.Rng.create 5L in
  let result =
    Prognosis_learner.Learn.run_mq ~max_rounds:30 ~inputs:Alphabet.all ~mq
      ~eq:
        (Prognosis_learner.Eq_oracle.random_words ~rng ~max_tests:150 ~min_len:1
           ~max_len:6)
      ()
  in
  let skeleton = result.Prognosis_learner.Learn.model in
  let st =
    Prognosis_analysis.Stochastic.estimate ~samples_per_transition:100 ~skeleton
      ~sul ()
  in
  let stochastic = Prognosis_analysis.Stochastic.stochastic_transitions st in
  Format.printf "%d of %d transitions are stochastic:@."
    (List.length stochastic)
    (List.length (Prognosis_analysis.Stochastic.transitions st));
  List.iter
    (fun ts ->
      Format.printf "  s%d on %s:@." ts.Prognosis_analysis.Stochastic.source
        (Alphabet.to_string ts.Prognosis_analysis.Stochastic.input);
      List.iter
        (fun (o, p) ->
          Format.printf "    %.2f %s@." p (Alphabet.output_to_string o))
        ts.Prognosis_analysis.Stochastic.outcomes)
    stochastic;
  (* Render it: stochastic edges come out red with probabilities. *)
  Prognosis_analysis.Visualize.write_file ~path:"mvfst_stochastic.dot"
    (Prognosis_analysis.Stochastic.to_dot ~input_pp:Alphabet.pp
       ~output_pp:Alphabet.pp_output st);
  Format.printf "probability-annotated model written to mvfst_stochastic.dot@."

let () =
  Format.printf
    "Probing post-close behaviour with %s then repeated stream packets@.@."
    (String.concat " + " (List.map Alphabet.to_string probe_word));
  List.iter examine [ Profile.quiche_like; Profile.mvfst_like ];
  quantify Profile.mvfst_like
