(* Quickstart: learn a model of the bundled TCP server — the paper's
   §6.1 case study — in a dozen lines.

   Run with: dune exec examples/quickstart.exe *)

module Mealy = Prognosis_automata.Mealy
module Alphabet = Prognosis_tcp.Tcp_alphabet
open Prognosis

let () =
  (* Learn: TTT algorithm, W-method + random-word equivalence oracle,
     everything seeded and reproducible. *)
  let result = Tcp_study.learn ~seed:42L () in
  Format.printf "learned: %a@.@." Report.pp result.Tcp_study.report;

  (* Replay the 3-way handshake through the learned model. *)
  let handshake = Alphabet.[ Syn; Ack ] in
  let outputs = Mealy.run result.Tcp_study.model handshake in
  Format.printf "3-way handshake in the model:@.";
  List.iter2
    (fun i o ->
      Format.printf "  %-18s -> %s@." (Alphabet.to_string i)
        (Alphabet.output_to_string o))
    handshake outputs;

  (* And a full connection lifecycle: handshake, data, close. *)
  let lifecycle = Alphabet.[ Syn; Ack; Ack_psh; Fin_ack; Ack; Ack ] in
  Format.printf "@.full lifecycle:@.";
  List.iter2
    (fun i o ->
      Format.printf "  %-18s -> %s@." (Alphabet.to_string i)
        (Alphabet.output_to_string o))
    lifecycle
    (Mealy.run result.Tcp_study.model lifecycle);

  (* The model is a plain Mealy machine: render it for humans. *)
  let path = "tcp_model.dot" in
  Prognosis_analysis.Visualize.write_file ~path
    (Tcp_study.model_dot result.Tcp_study.model);
  Format.printf "@.Graphviz rendering written to %s@." path
