(* Register synthesis over the TCP Oracle Table (the paper's §4.3 and
   Figure 3(c)): enrich the learned abstract handshake model with
   sequence/acknowledgement-number behaviour mined from the concrete
   traces cached during learning.

   The synthesized terms recover the classic invariants:
   - the SYN+ACK acknowledges seq+1 of the client's SYN,
   - data ACKs track the received payload length,
   without anyone writing TCP arithmetic by hand — the constraint
   solver picks the terms that explain the witness traces.

   Run with: dune exec examples/tcp_synthesis.exe *)

module Mealy = Prognosis_automata.Mealy
module Ext_mealy = Prognosis_synthesis.Ext_mealy
module Term = Prognosis_synthesis.Term
module Alphabet = Prognosis_tcp.Tcp_alphabet
open Prognosis

let () =
  let result = Tcp_study.learn ~seed:7L () in
  Format.printf "abstract skeleton: %a@.@." Report.pp result.Tcp_study.report;

  let words =
    Alphabet.
      [
        [ Syn; Ack; Ack_psh; Ack_psh ];
        [ Syn; Ack_psh; Fin_ack ];
        [ Syn; Ack; Fin_ack; Ack ];
        [ Syn; Ack; Ack_psh; Fin_ack; Ack; Ack ];
      ]
  in
  match Tcp_study.synthesize result words with
  | Error e -> failwith e
  | Ok machine ->
      let term_str = function
        | None -> "?"
        | Some t ->
            Term.to_string ~names_in:Tcp_study.input_field_names
              ~names_out:Tcp_study.output_field_names t
      in
      Format.printf "synthesized output terms (state, input -> seq, ack):@.";
      let m = result.Tcp_study.model in
      for s = 0 to Mealy.size m - 1 do
        Array.iter
          (fun sym ->
            let seq_t = Ext_mealy.output_term machine ~state:s ~input:sym ~field:0 in
            let ack_t = Ext_mealy.output_term machine ~state:s ~input:sym ~field:1 in
            if seq_t <> None || ack_t <> None then
              Format.printf "  s%d, %-18s -> seq=%s ack=%s@." s
                (Alphabet.to_string sym) (term_str seq_t) (term_str ack_t))
          (Mealy.inputs m)
      done;
      Format.printf
        "@.reading: on a SYN in the initial state the server acknowledges \
         seq+1 — the Figure 3(c) register pattern, recovered automatically.@.";
      Prognosis_analysis.Visualize.write_file ~path:"tcp_extended.dot"
        (Ext_mealy.to_dot
           ~input_pp:(fun fmt s -> Format.pp_print_string fmt (Alphabet.to_string s))
           ~output_pp:(fun fmt o ->
             Format.pp_print_string fmt (Alphabet.output_to_string o))
           ~names_in:Tcp_study.input_field_names
           ~names_out:Tcp_study.output_field_names machine);
      Format.printf "extended machine written to tcp_extended.dot@."
