examples/quic_compare.ml: Format List Prognosis Prognosis_analysis Prognosis_quic Quic_study Report String
