examples/property_check.ml: Format List Prognosis Prognosis_analysis Prognosis_quic Quic_study String
