examples/property_check.mli:
