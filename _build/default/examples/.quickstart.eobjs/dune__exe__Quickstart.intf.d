examples/quickstart.mli:
