examples/bug_hunt.ml: Format List Prognosis_analysis Prognosis_learner Prognosis_quic Prognosis_sul String
