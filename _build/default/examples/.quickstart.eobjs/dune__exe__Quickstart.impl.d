examples/quickstart.ml: Format List Prognosis Prognosis_analysis Prognosis_automata Prognosis_tcp Report Tcp_study
