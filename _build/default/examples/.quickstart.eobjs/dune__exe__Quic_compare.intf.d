examples/quic_compare.mli:
