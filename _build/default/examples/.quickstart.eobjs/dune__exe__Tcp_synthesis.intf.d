examples/tcp_synthesis.mli:
