examples/dtls_walkthrough.mli:
