(* A third protocol through the same engine: MiniDTLS.

   The paper's first contribution is modularity — "different protocols
   and protocol implementations can easily be swapped without changes
   to the learning engine". This example learns a model of the
   MiniDTLS server (cookie exchange, handshake, epoch switch, echo
   service) using exactly the learner, oracles and analyses the TCP and
   QUIC studies use, then shows how a server configuration choice (is
   the stateless-cookie round-trip required?) is immediately visible as
   a different learned model, just like QUIC's Retry in Issue 1.

   Run with: dune exec examples/dtls_walkthrough.exe *)

module Mealy = Prognosis_automata.Mealy
module Alphabet = Prognosis_dtls.Dtls_alphabet
open Prognosis

let print_run model word =
  List.iter2
    (fun i o ->
      Format.printf "  %-24s -> %s@." (Alphabet.to_string i)
        (Alphabet.output_to_string o))
    word (Mealy.run model word)

let () =
  let with_cookie = Dtls_study.learn ~seed:2026L () in
  Format.printf "cookie-validating server: %a@.@." Report.pp
    with_cookie.Dtls_study.report;

  Format.printf "full lifecycle in the learned model:@.";
  print_run with_cookie.Dtls_study.model
    Alphabet.
      [
        Client_hello;
        Client_hello;
        Client_key_exchange;
        Change_cipher_spec;
        Finished;
        App_data;
        Alert_close;
      ];

  (* Skipping the cookie round-trip: the server just repeats the
     HELLO_VERIFY_REQUEST — address validation, DTLS's Retry. *)
  Format.printf "@.skipping the cookie (handshake cannot progress):@.";
  print_run with_cookie.Dtls_study.model
    Alphabet.[ Client_hello; Client_key_exchange; Finished ];

  (* A no-cookie server learns a different, smaller model. *)
  let no_cookie =
    Dtls_study.learn ~seed:2027L
      ~server_config:
        { Prognosis_dtls.Dtls_server.require_cookie = false; strict_ccs = true }
      ()
  in
  Format.printf "@.no-cookie server: %a@." Report.pp no_cookie.Dtls_study.report;
  let summary =
    Prognosis_analysis.Model_diff.summarize ~max_witnesses:1
      with_cookie.Dtls_study.model no_cookie.Dtls_study.model
  in
  (match summary.Prognosis_analysis.Model_diff.witnesses with
  | w :: _ ->
      Format.printf "first divergence on %s:@."
        (String.concat " "
           (List.map Alphabet.to_string w.Prognosis_analysis.Model_diff.word));
      Format.printf "  cookie    : %s@."
        (String.concat " "
           (List.map Alphabet.output_to_string
              w.Prognosis_analysis.Model_diff.outputs_a));
      Format.printf "  no cookie : %s@."
        (String.concat " "
           (List.map Alphabet.output_to_string
              w.Prognosis_analysis.Model_diff.outputs_b))
  | [] -> Format.printf "models unexpectedly equivalent@.");

  Prognosis_analysis.Visualize.write_file ~path:"dtls_model.dot"
    (Dtls_study.model_dot with_cookie.Dtls_study.model);
  Format.printf "@.model written to dtls_model.dot@."
