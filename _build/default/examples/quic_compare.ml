(* Cross-implementation comparison (the paper's §6.2.3 and §6.2.5):
   learn models of two QUIC server behaviours and diff them.

   The tolerant-retry and strict-retry profiles encode the two sides of
   the RFC ambiguity behind the paper's Issue 1 — what a server does
   when the client resets its packet-number spaces after a Retry. The
   learned models have different sizes, and the shortest distinguishing
   traces show exactly where the behaviours fork; the paper reported
   this divergence to the IETF QUIC working group, which clarified the
   specification.

   The second half reproduces Issue 3: with the QUIC-Tracker retry-port
   bug enabled in the reference client, connection establishment after
   a Retry becomes impossible — visible as yet another model change.

   Run with: dune exec examples/quic_compare.exe *)

module Model_diff = Prognosis_analysis.Model_diff
module Profile = Prognosis_quic.Quic_profile
open Prognosis

let pp_witness w =
  Format.printf "  input   : %s@."
    (String.concat " " (List.map Quic_study.Alphabet.to_string w.Model_diff.word));
  Format.printf "  model A : %s@."
    (String.concat " "
       (List.map Quic_study.Alphabet.output_to_string w.Model_diff.outputs_a));
  Format.printf "  model B : %s@.@."
    (String.concat " "
       (List.map Quic_study.Alphabet.output_to_string w.Model_diff.outputs_b))

let () =
  (* --- Issue 1: divergent post-Retry packet-number-space handling --- *)
  Format.printf "=== Issue 1: RFC imprecision around Retry ===@.@.";
  let tolerant = Quic_study.learn ~seed:1L ~profile:Profile.google_like () in
  let strict = Quic_study.learn ~seed:2L ~profile:Profile.strict_retry () in
  Format.printf "tolerant : %a@." Report.pp tolerant.Quic_study.report;
  Format.printf "strict   : %a@.@." Report.pp strict.Quic_study.report;
  let summary =
    Model_diff.summarize ~max_witnesses:3 tolerant.Quic_study.model
      strict.Quic_study.model
  in
  Format.printf
    "model sizes differ (%d vs %d states) — the signal that led the paper to \
     the RFC ambiguity. Shortest distinguishing traces:@.@."
    summary.Model_diff.states_a summary.Model_diff.states_b;
  List.iter pp_witness summary.Model_diff.witnesses;

  (* --- Issue 3: the reference client's retry-port bug --- *)
  Format.printf "=== Issue 3: inconsistent port on Retry (QUIC-Tracker bug) ===@.@.";
  let healthy = Quic_study.learn ~seed:3L ~profile:Profile.google_like () in
  let buggy =
    Quic_study.learn ~seed:4L ~profile:Profile.google_like
      ~client_config:
        { Prognosis_quic.Quic_client.retry_port_bug = true; pns_reset_on_retry = true }
      ()
  in
  let summary =
    Model_diff.summarize ~max_witnesses:2 healthy.Quic_study.model
      buggy.Quic_study.model
  in
  Format.printf
    "with the port bug, the model collapses to %d states (healthy: %d): after \
     a RETRY the handshake can never complete, because the token is echoed \
     from a fresh random port and address validation fails.@.@."
    summary.Model_diff.states_b summary.Model_diff.states_a;
  List.iter pp_witness summary.Model_diff.witnesses;
  let dot =
    Prognosis_analysis.Visualize.diff_dot ~input_pp:Quic_study.Alphabet.pp
      ~output_pp:Quic_study.Alphabet.pp_output healthy.Quic_study.model
      buggy.Quic_study.model
  in
  Prognosis_analysis.Visualize.write_file ~path:"quic_retry_diff.dot" dot;
  Format.printf "product-machine diff written to quic_retry_diff.dot@."
