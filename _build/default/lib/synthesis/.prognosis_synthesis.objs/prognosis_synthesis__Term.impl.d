lib/synthesis/term.ml: Array Format List Option Printf
