lib/synthesis/synthesizer.mli: Ext_mealy Prognosis_automata
