lib/synthesis/ext_mealy.mli: Format Prognosis_automata Term
