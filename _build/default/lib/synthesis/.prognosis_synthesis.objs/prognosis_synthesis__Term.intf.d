lib/synthesis/term.mli: Format
