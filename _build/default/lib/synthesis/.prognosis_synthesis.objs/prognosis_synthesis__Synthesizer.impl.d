lib/synthesis/synthesizer.ml: Array Ext_mealy List Option Printf Prognosis_automata Term
