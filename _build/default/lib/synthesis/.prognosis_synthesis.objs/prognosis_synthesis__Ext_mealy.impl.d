lib/synthesis/ext_mealy.ml: Array Buffer Format List Option Printf Prognosis_automata String Term
