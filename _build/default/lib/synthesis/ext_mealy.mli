(** Extended Mealy machines: the abstract skeleton learned by the
    learning module, enriched with registers, numeric input/output
    fields, per-transition register updates and output terms
    (paper §4.3, Figure 4).

    A transition of the extended machine is
    [p --I(i⃗) / O(o⃗(x⃗))--> q] with register update [x⃗ := u⃗(x⃗, i⃗, ...)].
    Slots never exercised by any witness trace remain unknown and are
    rendered as "?". *)

type slot = Update of int | Output of int

type ('i, 'o) t = {
  skeleton : ('i, 'o) Prognosis_automata.Mealy.t;
  nregs : int;
  in_arity : int;
  out_arity : int;
  init_regs : int array;
  updates : Term.t option array array array;  (** [state].[input].[register] *)
  outputs : Term.t option array array array;  (** [state].[input].[field] *)
}

val create :
  skeleton:('i, 'o) Prognosis_automata.Mealy.t ->
  nregs:int ->
  in_arity:int ->
  out_arity:int ->
  ?init_regs:int array ->
  unit ->
  ('i, 'o) t
(** All slots unknown. *)

type ('i, 'o) step = {
  sym_in : 'i;
  fields_in : int array;
  sym_out : 'o;
  fields_out : int option array;
      (** observed numeric fields of the response; [None] marks fields
          that are unobservable or deliberately unconstrained (e.g. a
          server-chosen random initial sequence number) *)
}

type ('i, 'o) trace = ('i, 'o) step list

val check : ('i, 'o) t -> ('i, 'o) trace -> bool
(** Is the machine consistent with a concrete trace? Output terms are
    evaluated against the observed fields; registers whose value is
    unknown (because an update captured an unobserved field) do not
    refute. The abstract skeleton must also reproduce the abstract
    outputs. *)

val first_inconsistency : ('i, 'o) t -> ('i, 'o) trace -> int option
(** Index of the first step where {!check} fails, if any. *)

val predict :
  ('i, 'o) t -> ('i, 'o) trace -> (int option array list, string) result
(** Predicted output-field vectors along a trace (observed output
    fields still feed register updates, mirroring how the machine is
    used to explain witness traces). *)

val output_term : ('i, 'o) t -> state:int -> input:'i -> field:int -> Term.t option
val update_term : ('i, 'o) t -> state:int -> input:'i -> reg:int -> Term.t option

val constant_output_fields : ('i, 'o) t -> input:'i -> field:int -> int list
(** All constants [c] such that every known output term for [field] on
    transitions reading [input] is [Const c] — the Issue-4 detector:
    a field that "always has the value 0" shows up as [[0]]. *)

val to_dot :
  ?name:string ->
  input_pp:(Format.formatter -> 'i -> unit) ->
  output_pp:(Format.formatter -> 'o -> unit) ->
  names_in:string array ->
  names_out:string array ->
  ('i, 'o) t ->
  string
