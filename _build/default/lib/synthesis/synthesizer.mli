(** Constraint-based synthesis of extended Mealy machines
    (paper §4.3).

    The paper encodes the choice of per-transition terms as integer
    choice variables and hands the implications to Z3. Z3 is not
    available in this environment, so the same finite-choice problem is
    decided exactly by a backtracking search over the candidate term
    lists, walking the witness traces and propagating register values:
    an output constraint [eval(term) = observed] prunes candidates
    immediately, update choices are branched at first use with the
    identity update tried first, and the search backtracks on
    conflict. Because every unknown ranges over a small finite list,
    this is a decision procedure for the same constraint system.

    The CEGIS-style {!refine} loop reproduces the paper's refinement:
    synthesized machines are validated by random testing against the
    SUL, and counterexample traces are added to the witness set until
    testing finds no more inconsistencies. *)

type config = {
  nregs : int;
  in_arity : int;
  out_arity : int;
  init_regs : int array;
  consts : int list;  (** constant candidates, e.g. [0; 1] *)
  max_nodes : int;  (** search budget; [Error] when exhausted *)
}

val default_config : nregs:int -> in_arity:int -> out_arity:int -> config
(** Constants [0; 1], zero-initialized registers, 2M-node budget. *)

val solve :
  config ->
  skeleton:('i, 'o) Prognosis_automata.Mealy.t ->
  traces:('i, 'o) Ext_mealy.trace list ->
  ?negatives:('i, 'o) Ext_mealy.trace list ->
  unit ->
  (('i, 'o) Ext_mealy.t, string) result
(** Finds term assignments making the extended machine consistent with
    every positive trace and inconsistent with every negative one.
    Slots not exercised by any trace remain unknown. *)

val refine :
  config ->
  skeleton:('i, 'o) Prognosis_automata.Mealy.t ->
  sample:(unit -> ('i, 'o) Ext_mealy.trace) ->
  rounds:int ->
  traces:('i, 'o) Ext_mealy.trace list ->
  (('i, 'o) Ext_mealy.t * ('i, 'o) Ext_mealy.trace list, string) result
(** Solve, then alternate random-testing ([sample] must produce a fresh
    concrete trace from the SUL) with re-solving on counterexamples,
    for at most [rounds] rounds. Returns the machine and the final
    witness set. *)
