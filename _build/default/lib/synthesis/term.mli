(** The term grammar for extended Mealy machines (paper §4.3).

    The paper instantiates each unknown with one of a finite list of
    terms over registers, input fields and previous values — e.g.
    [r, r+1, pr, pr+1, pi, pi+1, sn, an] — and asks an SMT solver to
    pick indices. Here the grammar is explicit:

    {ul
    {- [Reg k] / [Reg_inc k] — register k (before the update), plain
       or incremented;}
    {- [In_field f] / [In_field_inc f] — the f-th numeric field of the
       current input packet;}
    {- [Out_field f] / [Out_field_inc f] — the f-th numeric field of
       the current response packet (update terms only: this is how a
       register captures a server-chosen value such as its random
       initial sequence number);}
    {- [Const c] — a constant.}} *)

type t =
  | Reg of int
  | Reg_inc of int
  | In_field of int
  | In_field_inc of int
  | Out_field of int
  | Out_field_inc of int
  | Const of int

val to_string : names_in:string array -> names_out:string array -> t -> string
(** Render with field names, e.g. "sn+1", "r0", "out.seq". *)

val pp : Format.formatter -> t -> unit

val is_constant : t -> bool

val eval :
  regs:int array ->
  fields_in:int array ->
  fields_out:int option array ->
  t ->
  int option
(** Evaluate; [None] when the term references an unobserved output
    field. *)

val update_candidates : nregs:int -> in_arity:int -> out_arity:int -> consts:int list -> t list
(** The register-update candidate list. *)

val output_candidates : nregs:int -> in_arity:int -> consts:int list -> t list
(** The output-term candidate list (output fields cannot reference the
    response being produced). *)
