module Mealy = Prognosis_automata.Mealy

type config = {
  nregs : int;
  in_arity : int;
  out_arity : int;
  init_regs : int array;
  consts : int list;
  max_nodes : int;
}

let default_config ~nregs ~in_arity ~out_arity =
  {
    nregs;
    in_arity;
    out_arity;
    init_regs = Array.make nregs 0;
    consts = [ 0; 1 ];
    max_nodes = 2_000_000;
  }

exception Budget_exhausted

(* Evaluate a term under possibly-unknown register values. *)
let eval_term ~regs ~fields_in ~fields_out term =
  match term with
  | Term.Reg k -> regs.(k)
  | Term.Reg_inc k -> Option.map (fun v -> v + 1) regs.(k)
  | Term.In_field f -> Some fields_in.(f)
  | Term.In_field_inc f -> Some (fields_in.(f) + 1)
  | Term.Out_field f -> fields_out.(f)
  | Term.Out_field_inc f -> Option.map (fun v -> v + 1) fields_out.(f)
  | Term.Const c -> Some c

let solve cfg ~skeleton ~traces ?(negatives = []) () =
  let ext =
    Ext_mealy.create ~skeleton ~nregs:cfg.nregs ~in_arity:cfg.in_arity
      ~out_arity:cfg.out_arity ~init_regs:cfg.init_regs ()
  in
  let update_cands =
    Term.update_candidates ~nregs:cfg.nregs ~in_arity:cfg.in_arity
      ~out_arity:cfg.out_arity ~consts:cfg.consts
  in
  (* Identity first: an unconstrained register keeps its value, which
     keeps the search shallow. *)
  let update_cands_for k =
    Term.Reg k :: List.filter (fun t -> t <> Term.Reg k) update_cands
  in
  let output_cands =
    Term.output_candidates ~nregs:cfg.nregs ~in_arity:cfg.in_arity
      ~consts:cfg.consts
  in
  let nodes = ref 0 in
  let no_out = Array.make cfg.out_arity None in
  let tick () =
    incr nodes;
    if !nodes > cfg.max_nodes then raise Budget_exhausted
  in
  (* The machine under construction doubles as the assignment store:
     [ext.outputs]/[ext.updates] slots are set during search and
     cleared on backtrack. *)
  let rec all_traces = function
    | [] ->
        List.for_all (fun neg -> not (Ext_mealy.check ext neg)) negatives
    | trace :: rest ->
        let regs = Array.map (fun v -> Some v) cfg.init_regs in
        steps (Mealy.initial skeleton) regs trace rest
  and steps state regs trace rest =
    match trace with
    | [] -> all_traces rest
    | step :: more ->
        tick ();
        let i = Mealy.input_index skeleton step.Ext_mealy.sym_in in
        let state', osym = Mealy.step_idx skeleton state i in
        if osym <> step.Ext_mealy.sym_out then
          (* The trace contradicts the abstract skeleton itself: no
             term assignment can fix that. *)
          false
        else outputs_from 0 state i regs step state' more rest
  and outputs_from f state i regs step state' more rest =
    if f = cfg.out_arity then updates_from 0 state i regs step state' more rest
    else begin
      match step.Ext_mealy.fields_out.(f) with
      | None -> outputs_from (f + 1) state i regs step state' more rest
      | Some observed -> (
          let fields_in = step.Ext_mealy.fields_in in
          match ext.Ext_mealy.outputs.(state).(i).(f) with
          | Some term -> (
              match eval_term ~regs ~fields_in ~fields_out:no_out term with
              | Some predicted when predicted <> observed -> false
              | Some _ | None ->
                  outputs_from (f + 1) state i regs step state' more rest)
          | None ->
              (* Branch over candidates consistent with this instance;
                 exact matches first, then unknown-register reads. *)
              let viable =
                List.filter
                  (fun cand ->
                    match eval_term ~regs ~fields_in ~fields_out:no_out cand with
                    | Some v -> v = observed
                    | None -> true)
                  output_cands
              in
              let exact, lenient =
                List.partition
                  (fun cand ->
                    eval_term ~regs ~fields_in ~fields_out:no_out cand <> None)
                  viable
              in
              (* Prefer the simplest explanation: constants, then input
                 fields, then registers — so a field that is genuinely
                 constant is reported as such rather than as a register
                 that happens never to change. *)
              let rank = function
                | Term.Const _ -> 0
                | Term.In_field _ | Term.In_field_inc _ -> 1
                | Term.Reg _ | Term.Reg_inc _ -> 2
                | Term.Out_field _ | Term.Out_field_inc _ -> 3
              in
              let exact =
                List.stable_sort (fun a b -> compare (rank a) (rank b)) exact
              in
              List.exists
                (fun cand ->
                  ext.Ext_mealy.outputs.(state).(i).(f) <- Some cand;
                  if outputs_from (f + 1) state i regs step state' more rest then
                    true
                  else begin
                    ext.Ext_mealy.outputs.(state).(i).(f) <- None;
                    false
                  end)
                (exact @ lenient))
    end
  and updates_from k state i regs step state' more rest =
    if k = cfg.nregs then begin
      let next_regs =
        Array.init cfg.nregs (fun r ->
            match ext.Ext_mealy.updates.(state).(i).(r) with
            | None -> regs.(r)
            | Some term ->
                eval_term ~regs ~fields_in:step.Ext_mealy.fields_in
                  ~fields_out:step.Ext_mealy.fields_out term)
      in
      steps state' next_regs more rest
    end
    else begin
      match ext.Ext_mealy.updates.(state).(i).(k) with
      | Some _ -> updates_from (k + 1) state i regs step state' more rest
      | None ->
          List.exists
            (fun cand ->
              ext.Ext_mealy.updates.(state).(i).(k) <- Some cand;
              if updates_from (k + 1) state i regs step state' more rest then true
              else begin
                ext.Ext_mealy.updates.(state).(i).(k) <- None;
                false
              end)
            (update_cands_for k)
    end
  in
  match all_traces traces with
  | true -> Ok ext
  | false -> Error "no consistent term assignment exists for the given candidates"
  | exception Budget_exhausted ->
      Error
        (Printf.sprintf "search budget of %d nodes exhausted" cfg.max_nodes)

let refine cfg ~skeleton ~sample ~rounds ~traces =
  let rec loop round traces =
    match solve cfg ~skeleton ~traces () with
    | Error e -> Error e
    | Ok machine ->
        if round >= rounds then Ok (machine, traces)
        else begin
          (* Random equivalence testing: draw fresh witness traces and
             look for one the synthesized machine cannot explain. *)
          let rec probe k =
            if k = 0 then None
            else
              let candidate = sample () in
              if Ext_mealy.check machine candidate then probe (k - 1)
              else Some candidate
          in
          match probe 20 with
          | None -> Ok (machine, traces)
          | Some counterexample -> loop (round + 1) (counterexample :: traces)
        end
  in
  loop 0 traces
