module Mealy = Prognosis_automata.Mealy

type slot = Update of int | Output of int

type ('i, 'o) t = {
  skeleton : ('i, 'o) Mealy.t;
  nregs : int;
  in_arity : int;
  out_arity : int;
  init_regs : int array;
  updates : Term.t option array array array;
  outputs : Term.t option array array array;
}

let create ~skeleton ~nregs ~in_arity ~out_arity ?init_regs () =
  let init_regs =
    match init_regs with Some r -> r | None -> Array.make nregs 0
  in
  if Array.length init_regs <> nregs then
    invalid_arg "Ext_mealy.create: init_regs arity mismatch";
  let n = Mealy.alphabet_size skeleton in
  let size = Mealy.size skeleton in
  {
    skeleton;
    nregs;
    in_arity;
    out_arity;
    init_regs;
    updates = Array.init size (fun _ -> Array.init n (fun _ -> Array.make nregs None));
    outputs =
      Array.init size (fun _ -> Array.init n (fun _ -> Array.make out_arity None));
  }

type ('i, 'o) step = {
  sym_in : 'i;
  fields_in : int array;
  sym_out : 'o;
  fields_out : int option array;
}

type ('i, 'o) trace = ('i, 'o) step list

(* Evaluate a term under possibly-unknown registers: None register
   values poison the result. *)
let eval_opt ~regs ~fields_in ~fields_out term =
  match term with
  | Term.Reg k -> regs.(k)
  | Term.Reg_inc k -> Option.map (fun v -> v + 1) regs.(k)
  | other ->
      Term.eval
        ~regs:(Array.map (function Some v -> v | None -> 0) regs)
        ~fields_in ~fields_out other
      |> fun r -> (
        (* Only Reg/Reg_inc read registers, so the dummy 0s above are
           never observable here. *)
        match other with
        | Term.Reg _ | Term.Reg_inc _ -> assert false
        | _ -> r)

(* Walk a trace, calling [on_step state input_idx regs step] before
   applying the step; returns the first step index where on_step
   returns false. *)
let walk t trace ~on_step =
  let regs = Array.map (fun v -> Some v) t.init_regs in
  let rec loop idx state regs = function
    | [] -> None
    | step :: rest ->
        let i = Mealy.input_index t.skeleton step.sym_in in
        if not (on_step state i regs step) then Some idx
        else begin
          let state', _ = Mealy.step_idx t.skeleton state i in
          let regs' =
            Array.init t.nregs (fun k ->
                match t.updates.(state).(i).(k) with
                | None -> regs.(k) (* unknown update: register keeps its value *)
                | Some term ->
                    eval_opt ~regs ~fields_in:step.fields_in
                      ~fields_out:step.fields_out term)
          in
          loop (idx + 1) state' regs' rest
        end
  in
  loop 0 (Mealy.initial t.skeleton) regs trace

let step_consistent t state i regs step =
  (* The abstract skeleton must agree... *)
  let _, predicted_sym = Mealy.step_idx t.skeleton state i in
  predicted_sym = step.sym_out
  && begin
       (* ...and every known output term must match every observed field. *)
       let ok = ref true in
       for f = 0 to t.out_arity - 1 do
         match (t.outputs.(state).(i).(f), step.fields_out.(f)) with
         | Some term, Some observed -> (
             match
               eval_opt ~regs ~fields_in:step.fields_in
                 ~fields_out:(Array.make t.out_arity None)
                 term
             with
             | Some predicted when predicted <> observed -> ok := false
             | Some _ | None -> ())
         | Some _, None | None, _ -> ()
       done;
       !ok
     end

let first_inconsistency t trace = walk t trace ~on_step:(step_consistent t)

let check t trace = first_inconsistency t trace = None

let predict t trace =
  let acc = ref [] in
  let on_step state i regs step =
    let prediction =
      Array.init t.out_arity (fun f ->
          match t.outputs.(state).(i).(f) with
          | None -> None
          | Some term ->
              eval_opt ~regs ~fields_in:step.fields_in
                ~fields_out:(Array.make t.out_arity None)
                term)
    in
    acc := prediction :: !acc;
    true
  in
  match walk t trace ~on_step with
  | None -> Ok (List.rev !acc)
  | Some idx -> Error (Printf.sprintf "walk stopped at step %d" idx)

let output_term t ~state ~input ~field =
  t.outputs.(state).(Mealy.input_index t.skeleton input).(field)

let update_term t ~state ~input ~reg =
  t.updates.(state).(Mealy.input_index t.skeleton input).(reg)

let constant_output_fields t ~input ~field =
  let i = Mealy.input_index t.skeleton input in
  let consts = ref [] in
  let all_const = ref true in
  let any = ref false in
  for s = 0 to Mealy.size t.skeleton - 1 do
    match t.outputs.(s).(i).(field) with
    | Some (Term.Const c) ->
        any := true;
        if not (List.mem c !consts) then consts := c :: !consts
    | Some _ -> all_const := false
    | None -> ()
  done;
  if !any && !all_const then List.sort compare !consts else []

let to_dot ?(name = "ext_mealy") ~input_pp ~output_pp ~names_in ~names_out t =
  let m = t.skeleton in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "digraph %s {@\n  rankdir=LR;@\n  node [shape=circle];@\n" name;
  Format.fprintf fmt "  __start [shape=none,label=\"\"];@\n  __start -> s%d;@\n"
    (Mealy.initial m);
  let term_str = function
    | None -> "?"
    | Some term -> Term.to_string ~names_in ~names_out term
  in
  for s = 0 to Mealy.size m - 1 do
    for i = 0 to Mealy.alphabet_size m - 1 do
      let s', o = Mealy.step_idx m s i in
      let out_terms =
        String.concat ","
          (List.init t.out_arity (fun f -> term_str t.outputs.(s).(i).(f)))
      in
      let upd_terms =
        String.concat "; "
          (List.init t.nregs (fun k ->
               Printf.sprintf "r%d:=%s" k (term_str t.updates.(s).(i).(k))))
      in
      let label =
        Format.asprintf "%a / %a (%s)\\n%s" input_pp (Mealy.inputs m).(i) output_pp
          o out_terms upd_terms
      in
      Format.fprintf fmt "  s%d -> s%d [label=\"%s\"];@\n" s s'
        (String.concat "\\\"" (String.split_on_char '"' label))
    done
  done;
  Format.fprintf fmt "}@.";
  Buffer.contents buf
