type t =
  | Reg of int
  | Reg_inc of int
  | In_field of int
  | In_field_inc of int
  | Out_field of int
  | Out_field_inc of int
  | Const of int

let to_string ~names_in ~names_out = function
  | Reg k -> Printf.sprintf "r%d" k
  | Reg_inc k -> Printf.sprintf "r%d+1" k
  | In_field f -> names_in.(f)
  | In_field_inc f -> names_in.(f) ^ "+1"
  | Out_field f -> "out." ^ names_out.(f)
  | Out_field_inc f -> "out." ^ names_out.(f) ^ "+1"
  | Const c -> string_of_int c

let pp fmt t =
  let s =
    match t with
    | Reg k -> Printf.sprintf "r%d" k
    | Reg_inc k -> Printf.sprintf "r%d+1" k
    | In_field f -> Printf.sprintf "in[%d]" f
    | In_field_inc f -> Printf.sprintf "in[%d]+1" f
    | Out_field f -> Printf.sprintf "out[%d]" f
    | Out_field_inc f -> Printf.sprintf "out[%d]+1" f
    | Const c -> string_of_int c
  in
  Format.pp_print_string fmt s

let is_constant = function
  | Const _ -> true
  | Reg _ | Reg_inc _ | In_field _ | In_field_inc _ | Out_field _ | Out_field_inc _
    ->
      false

let eval ~regs ~fields_in ~fields_out term =
  match term with
  | Reg k -> Some regs.(k)
  | Reg_inc k -> Some (regs.(k) + 1)
  | In_field f -> Some fields_in.(f)
  | In_field_inc f -> Some (fields_in.(f) + 1)
  | Out_field f -> fields_out.(f)
  | Out_field_inc f -> Option.map (fun v -> v + 1) fields_out.(f)
  | Const c -> Some c

let update_candidates ~nregs ~in_arity ~out_arity ~consts =
  List.concat
    [
      List.concat (List.init nregs (fun k -> [ Reg k; Reg_inc k ]));
      List.concat (List.init in_arity (fun f -> [ In_field f; In_field_inc f ]));
      List.concat (List.init out_arity (fun f -> [ Out_field f; Out_field_inc f ]));
      List.map (fun c -> Const c) consts;
    ]

let output_candidates ~nregs ~in_arity ~consts =
  List.concat
    [
      List.concat (List.init nregs (fun k -> [ Reg k; Reg_inc k ]));
      List.concat (List.init in_arity (fun f -> [ In_field f; In_field_inc f ]));
      List.map (fun c -> Const c) consts;
    ]
