type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

let no_flags =
  { syn = false; ack = false; fin = false; rst = false; psh = false; urg = false }

let flags_to_string f =
  let b = Buffer.create 6 in
  if f.syn then Buffer.add_char b 'S';
  if f.ack then Buffer.add_char b 'A';
  if f.fin then Buffer.add_char b 'F';
  if f.rst then Buffer.add_char b 'R';
  if f.psh then Buffer.add_char b 'P';
  if f.urg then Buffer.add_char b 'U';
  Buffer.contents b

let flags_of_string s =
  String.fold_left
    (fun f c ->
      match c with
      | 'S' -> { f with syn = true }
      | 'A' -> { f with ack = true }
      | 'F' -> { f with fin = true }
      | 'R' -> { f with rst = true }
      | 'P' -> { f with psh = true }
      | 'U' -> { f with urg = true }
      | _ -> invalid_arg "Tcp_wire.flags_of_string: unknown flag character")
    no_flags s

type option_ =
  | Mss of int
  | Window_scale of int
  | Sack_permitted
  | Timestamps of { value : int; echo : int }

let option_to_string = function
  | Mss v -> Printf.sprintf "MSS(%d)" v
  | Window_scale v -> Printf.sprintf "WS(%d)" v
  | Sack_permitted -> "SACK_OK"
  | Timestamps { value; echo } -> Printf.sprintf "TS(%d,%d)" value echo

type segment = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : flags;
  window : int;
  urgent : int;
  options : option_ list;
  payload : string;
}

let mask32 = 0xFFFFFFFF
let seq_add a b = (a + b) land mask32

let make ?(window = 65535) ?(urgent = 0) ?(options = []) ?(payload = "")
    ~src_port ~dst_port ~seq ~ack flags =
  {
    src_port;
    dst_port;
    seq = seq land mask32;
    ack = ack land mask32;
    flags;
    window;
    urgent;
    options;
    payload;
  }

let find_mss seg =
  List.fold_left
    (fun acc opt -> match opt with Mss v -> Some v | _ -> acc)
    None seg.options

let pp fmt s =
  Format.fprintf fmt "TCP{%d->%d %s seq=%d ack=%d len=%d}" s.src_port s.dst_port
    (flags_to_string s.flags) s.seq s.ack (String.length s.payload)

let to_json s =
  String.concat "\n"
    [
      "{ \"isNull\": false,";
      Printf.sprintf "  \"sourcePort\": %d," s.src_port;
      Printf.sprintf "  \"destinationPort\": %d," s.dst_port;
      Printf.sprintf "  \"seqNumber\": %d," s.seq;
      Printf.sprintf "  \"ackNumber\": %d," s.ack;
      "  \"dataOffset\": null,";
      "  \"reserved\": 0,";
      Printf.sprintf "  \"flags\": %S," (flags_to_string s.flags);
      Printf.sprintf "  \"window\": %d," s.window;
      "  \"checksum\": null,";
      Printf.sprintf "  \"urgentPointer\": %d }" s.urgent;
    ]

(* RFC 1071 internet checksum: ones-complement sum of 16-bit words. *)
let checksum data =
  let len = String.length data in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + (Char.code data.[!i] lsl 8) + Char.code data.[!i + 1];
    i := !i + 2
  done;
  if !i < len then sum := !sum + (Char.code data.[!i] lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let header_len = 20

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let set_u32 b off v =
  set_u16 b off ((v lsr 16) land 0xFFFF);
  set_u16 b (off + 2) (v land 0xFFFF)

let get_u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
let get_u32 s off = (get_u16 s off lsl 16) lor get_u16 s (off + 2)

let flag_bits f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor if f.urg then 0x20 else 0

let flags_of_bits bits =
  {
    fin = bits land 0x01 <> 0;
    syn = bits land 0x02 <> 0;
    rst = bits land 0x04 <> 0;
    psh = bits land 0x08 <> 0;
    ack = bits land 0x10 <> 0;
    urg = bits land 0x20 <> 0;
  }

let encode_options options =
  let buf = Buffer.create 16 in
  List.iter
    (fun opt ->
      match opt with
      | Mss v ->
          Buffer.add_char buf '\x02';
          Buffer.add_char buf '\x04';
          Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
          Buffer.add_char buf (Char.chr (v land 0xFF))
      | Window_scale v ->
          Buffer.add_char buf '\x03';
          Buffer.add_char buf '\x03';
          Buffer.add_char buf (Char.chr (v land 0xFF))
      | Sack_permitted ->
          Buffer.add_char buf '\x04';
          Buffer.add_char buf '\x02'
      | Timestamps { value; echo } ->
          Buffer.add_char buf '\x08';
          Buffer.add_char buf '\x0A';
          let add32 v =
            Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
            Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
            Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
            Buffer.add_char buf (Char.chr (v land 0xFF))
          in
          add32 value;
          add32 echo)
    options;
  (* Pad with NOPs to a 32-bit boundary. *)
  while Buffer.length buf mod 4 <> 0 do
    Buffer.add_char buf '\x01'
  done;
  Buffer.contents buf

let decode_options region =
  let len = String.length region in
  let rec loop off acc =
    if off >= len then Ok (List.rev acc)
    else
      match Char.code region.[off] with
      | 0 -> Ok (List.rev acc) (* end of options *)
      | 1 -> loop (off + 1) acc (* NOP *)
      | kind ->
          if off + 1 >= len then Error "truncated option"
          else begin
            let olen = Char.code region.[off + 1] in
            if olen < 2 || off + olen > len then Error "bad option length"
            else begin
              let next = off + olen in
              match (kind, olen) with
              | 2, 4 ->
                  let v = (Char.code region.[off + 2] lsl 8) lor Char.code region.[off + 3] in
                  loop next (Mss v :: acc)
              | 3, 3 -> loop next (Window_scale (Char.code region.[off + 2]) :: acc)
              | 4, 2 -> loop next (Sack_permitted :: acc)
              | 8, 10 ->
                  let g32 o =
                    (Char.code region.[o] lsl 24)
                    lor (Char.code region.[o + 1] lsl 16)
                    lor (Char.code region.[o + 2] lsl 8)
                    lor Char.code region.[o + 3]
                  in
                  loop next
                    (Timestamps { value = g32 (off + 2); echo = g32 (off + 6) } :: acc)
              | _ -> loop next acc (* unknown option: skipped *)
            end
          end
  in
  loop 0 []

let encode s =
  let options = encode_options s.options in
  let offset_words = 5 + (String.length options / 4) in
  if offset_words > 15 then invalid_arg "Tcp_wire.encode: options too long";
  let total = header_len + String.length options + String.length s.payload in
  let b = Bytes.make total '\000' in
  set_u16 b 0 s.src_port;
  set_u16 b 2 s.dst_port;
  set_u32 b 4 s.seq;
  set_u32 b 8 s.ack;
  Bytes.set b 12 (Char.chr (offset_words lsl 4));
  Bytes.set b 13 (Char.chr (flag_bits s.flags));
  set_u16 b 14 s.window;
  (* checksum at 16 starts as zero *)
  set_u16 b 18 s.urgent;
  Bytes.blit_string options 0 b header_len (String.length options);
  Bytes.blit_string s.payload 0 b
    (header_len + String.length options)
    (String.length s.payload);
  let sum = checksum (Bytes.to_string b) in
  set_u16 b 16 sum;
  Bytes.to_string b

let decode data =
  if String.length data < header_len then Error "segment too short"
  else begin
    let offset = Char.code data.[12] lsr 4 in
    if offset < 5 then Error "bad data offset"
    else if String.length data < offset * 4 then Error "truncated header"
    else begin
      let received_sum = get_u16 data 16 in
      let zeroed = Bytes.of_string data in
      set_u16 zeroed 16 0;
      if checksum (Bytes.to_string zeroed) <> received_sum then
        Error "bad checksum"
      else begin
        let options_region = String.sub data header_len ((offset * 4) - header_len) in
        match decode_options options_region with
        | Error e -> Error e
        | Ok options ->
            Ok
              {
                src_port = get_u16 data 0;
                dst_port = get_u16 data 2;
                seq = get_u32 data 4;
                ack = get_u32 data 8;
                flags = flags_of_bits (Char.code data.[13]);
                window = get_u16 data 14;
                urgent = get_u16 data 18;
                options;
                payload =
                  String.sub data (offset * 4) (String.length data - (offset * 4));
              }
      end
    end
  end
