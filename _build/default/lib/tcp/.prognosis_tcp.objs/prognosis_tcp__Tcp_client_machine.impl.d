lib/tcp/tcp_client_machine.ml: List Prognosis_sul String Tcp_wire
