lib/tcp/tcp_client_study.ml: Format List Prognosis_sul String Tcp_alphabet Tcp_client_machine Tcp_wire
