lib/tcp/tcp_adapter.ml: List Prognosis_sul Tcp_alphabet Tcp_client Tcp_server Tcp_wire
