lib/tcp/tcp_server.mli: Prognosis_sul Tcp_wire
