lib/tcp/tcp_wire.mli: Format
