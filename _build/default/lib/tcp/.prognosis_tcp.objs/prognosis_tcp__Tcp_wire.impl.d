lib/tcp/tcp_wire.ml: Buffer Bytes Char Format List Printf String
