lib/tcp/tcp_client_study.mli: Format Prognosis_sul Tcp_alphabet Tcp_wire
