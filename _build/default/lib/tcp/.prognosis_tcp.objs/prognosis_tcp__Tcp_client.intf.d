lib/tcp/tcp_client.mli: Prognosis_sul Tcp_alphabet Tcp_wire
