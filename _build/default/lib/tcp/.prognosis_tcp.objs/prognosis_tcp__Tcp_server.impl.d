lib/tcp/tcp_server.ml: List Prognosis_sul String Tcp_wire
