lib/tcp/tcp_alphabet.mli: Format Tcp_wire
