lib/tcp/tcp_client.ml: Prognosis_sul String Tcp_alphabet Tcp_wire
