lib/tcp/tcp_alphabet.ml: Format List String Tcp_wire
