lib/tcp/tcp_client_machine.mli: Prognosis_sul Tcp_wire
