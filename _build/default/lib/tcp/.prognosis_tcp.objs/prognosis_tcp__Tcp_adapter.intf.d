lib/tcp/tcp_adapter.mli: Prognosis_sul Tcp_alphabet Tcp_server Tcp_wire
