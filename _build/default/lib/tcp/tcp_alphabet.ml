type symbol = Syn | Syn_ack | Ack | Ack_psh | Fin_ack | Rst | Ack_rst

let all = [| Syn; Syn_ack; Ack; Ack_psh; Fin_ack; Rst; Ack_rst |]

let to_string = function
  | Syn -> "SYN(?,?,0)"
  | Syn_ack -> "SYN+ACK(?,?,0)"
  | Ack -> "ACK(?,?,0)"
  | Ack_psh -> "ACK+PSH(?,?,1)"
  | Fin_ack -> "FIN+ACK(?,?,0)"
  | Rst -> "RST(?,?,0)"
  | Ack_rst -> "ACK+RST(?,?,0)"

let pp fmt s = Format.pp_print_string fmt (to_string s)
let payload_length = function Ack_psh -> 1 | Syn | Syn_ack | Ack | Fin_ack | Rst | Ack_rst -> 0

let flags s =
  let open Tcp_wire in
  match s with
  | Syn -> { no_flags with syn = true }
  | Syn_ack -> { no_flags with syn = true; ack = true }
  | Ack -> { no_flags with ack = true }
  | Ack_psh -> { no_flags with ack = true; psh = true }
  | Fin_ack -> { no_flags with fin = true; ack = true }
  | Rst -> { no_flags with rst = true }
  | Ack_rst -> { no_flags with ack = true; rst = true }

type output = symbol list

let output_to_string = function
  | [] -> "NIL"
  | symbols -> String.concat "," (List.map to_string symbols)

let pp_output fmt o = Format.pp_print_string fmt (output_to_string o)

let abstract (seg : Tcp_wire.segment) =
  let f = seg.Tcp_wire.flags in
  match Tcp_wire.flags_to_string f with
  | "S" -> Some Syn
  | "SA" -> Some Syn_ack
  | "A" when seg.Tcp_wire.payload = "" -> Some Ack
  | "A" | "AP" -> Some Ack_psh
  | "AF" -> Some Fin_ack
  | "R" -> Some Rst
  | "AR" -> Some Ack_rst
  | _ -> None
