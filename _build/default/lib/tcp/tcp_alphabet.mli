(** The abstract TCP alphabet used in the paper's §6.1 case study: the
    seven flag combinations, with sequence and acknowledgement numbers
    left unspecified and the payload length fixed per symbol
    (ACK+PSH carries one byte, everything else none). *)

type symbol =
  | Syn  (** SYN(?,?,0) *)
  | Syn_ack  (** SYN+ACK(?,?,0) *)
  | Ack  (** ACK(?,?,0) *)
  | Ack_psh  (** ACK+PSH(?,?,1) *)
  | Fin_ack  (** FIN+ACK(?,?,0) *)
  | Rst  (** RST(?,?,0) *)
  | Ack_rst  (** ACK+RST(?,?,0) *)

val all : symbol array
val to_string : symbol -> string
val pp : Format.formatter -> symbol -> unit

val payload_length : symbol -> int
(** Payload the concretization must attach (1 for ACK+PSH, else 0). *)

val flags : symbol -> Tcp_wire.flags

type output = symbol list
(** Abstract response: the flag views of the reply segments, [[]] when
    the implementation stays silent (NIL). *)

val output_to_string : output -> string
val pp_output : Format.formatter -> output -> unit

val abstract : Tcp_wire.segment -> symbol option
(** α on a single segment: [None] when the flag combination is outside
    the abstract alphabet. *)
