(** A TCP server implementation: the System Under Learning of the
    paper's §6.1 case study (standing in for the Ubuntu 20.04 stack).

    The server hosts a passive listener on a single port and serves one
    connection per learning query. It is driven entirely through the
    wire format — the adapter sends encoded segments and receives
    encoded segments back, honouring the closed-box assumption. The
    state machine implements the RFC 793 lifecycle with Linux-style
    behaviours (challenge ACKs for in-window SYNs, RSTs to stray
    segments on the listener, one-shot listener teardown after a
    completed close). *)

type state =
  | Listen
  | Syn_rcvd
  | Established
  | Close_wait
  | Last_ack
  | Closed

val state_to_string : state -> string

type config = {
  port : int;
  one_shot : bool;
      (** when true, a fully closed connection also closes the listener,
          so late segments are refused — this distinguishes the final
          CLOSED state from LISTEN in the learned model *)
  challenge_acks : bool;
      (** respond to in-connection SYNs with a challenge ACK (Linux)
          rather than ignoring them *)
}

val default_config : config

type t

val create : ?config:config -> Prognosis_sul.Rng.t -> t
(** The RNG seeds the initial sequence numbers chosen on each reset. *)

val reset : t -> unit
(** Return the server to a fresh listener with a new ISN
    (instrumentation property 3 of §3.2). *)

val state : t -> state
val config : t -> config

val handle : t -> Tcp_wire.segment -> Tcp_wire.segment list
(** Process one decoded segment, returning response segments. *)

val handle_bytes : t -> string -> string list
(** Wire-level entry point: decodes (dropping malformed or
    checksum-failing datagrams), processes, encodes responses. *)
