(** A TCP *client* implementation, learnable as a System Under
    Learning: the role-reversed counterpart of {!Tcp_server}.

    The prior work the paper builds on (Fiterău-Broștean et al. [22])
    learns TCP state machines driven by both socket calls and wire
    input; this machine exposes the same two faces:

    {ul
    {- an application interface — {!Connect}, {!Send}, {!Close} — the
       instrumented triggers of [22];}
    {- the wire — server segments delivered through
       {!handle_bytes}.}}

    The lifecycle covers active open (CLOSED → SYN_SENT →
    ESTABLISHED), data transfer, both close directions (FIN_WAIT_1/2 →
    TIME_WAIT and CLOSE_WAIT → LAST_ACK) and RST teardown. Like the
    one-shot server, a fully closed client does not reconnect, keeping
    the final state observable. *)

type state =
  | Closed  (** before any [Connect] *)
  | Syn_sent
  | Established
  | Close_wait
  | Last_ack
  | Fin_wait_1
  | Fin_wait_2
  | Time_wait
  | Closed_final  (** connection over; no new connection *)

val state_to_string : state -> string

type command = Connect | Send | Close

type t

val create : ?src_port:int -> ?dst_port:int -> Prognosis_sul.Rng.t -> t
val reset : t -> unit
val state : t -> state

val command : t -> command -> Tcp_wire.segment list
(** Deliver an application command; returns the segments the client
    emits in response. *)

val handle : t -> Tcp_wire.segment -> Tcp_wire.segment list
val handle_bytes : t -> string -> string list
