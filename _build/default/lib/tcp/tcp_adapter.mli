(** The complete TCP System Under Learning: reference client +
    simulated network + target server, packaged as an Adapter the
    learning module can drive (paper Figure 2).

    One abstract step concretizes the symbol through the reference
    client, encodes it to the wire, transmits it over the (possibly
    faulty) channel, lets the server process the bytes, delivers the
    responses back through the channel, absorbs them into the client
    state and abstracts them for the learner. Every exchange is
    recorded in the Oracle Table for later synthesis. *)

type concrete = Tcp_wire.segment

val create :
  ?server_config:Tcp_server.config ->
  ?network:Prognosis_sul.Network.config ->
  seed:int64 ->
  unit ->
  (Tcp_alphabet.symbol, Tcp_alphabet.output, concrete, concrete) Prognosis_sul.Adapter.t

val sul :
  ?server_config:Tcp_server.config ->
  ?network:Prognosis_sul.Network.config ->
  seed:int64 ->
  unit ->
  (Tcp_alphabet.symbol, Tcp_alphabet.output) Prognosis_sul.Sul.t
(** Learner-facing view (the Oracle Table of the underlying adapter is
    not exposed; use {!create} when synthesis needs it). *)
