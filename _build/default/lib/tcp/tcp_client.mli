(** The instrumented reference TCP client: the concretization oracle
    behind the Adapter's (α, γ) pair (paper §3.2).

    The client carries real protocol state — initial sequence number,
    send/receive positions, connection phase — so that each abstract
    symbol requested by the learner can be turned into a concrete
    segment that is valid in the current connection state, exactly as
    the paper's instrumented reference implementation does. It never
    sends packets on its own (instrumentation property 1): it only
    reacts to explicit [concretize] requests and passively [absorb]s
    responses to keep its state synchronized. *)

type t

val create : ?src_port:int -> ?dst_port:int -> Prognosis_sul.Rng.t -> t
val reset : t -> unit

val concretize : t -> Tcp_alphabet.symbol -> Tcp_wire.segment
(** γ: build the concrete segment realizing an abstract symbol under
    the current connection state, updating the state (sequence-space
    consumption) as a real client would. *)

val absorb : t -> Tcp_wire.segment -> unit
(** Update client state from a response segment (SYN+ACK establishes,
    FIN consumes a sequence number, RST tears down). *)

val established : t -> bool
val snd_nxt : t -> int
val rcv_nxt : t -> int
