(** TCP segments: the protocol's native and concrete alphabets
    (paper §3.1, Examples 3.1–3.2).

    The native alphabet is the binary wire format: a real 20-byte TCP
    header (RFC 793 layout, ones-complement checksum) followed by the
    payload. The concrete alphabet is the structured {!segment} record,
    mirroring the JSON representation shown in the paper. *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

val no_flags : flags
val flags_to_string : flags -> string
(** Canonical order, e.g. "SA" for SYN+ACK, "FA" for FIN+ACK. *)

val flags_of_string : string -> flags
(** Inverse of {!flags_to_string}; unknown characters raise
    [Invalid_argument]. *)

(** TCP header options (RFC 793 §3.1, RFC 7323). Options ride in the
    variable part of the header; the data offset grows accordingly and
    the checksum covers them. *)
type option_ =
  | Mss of int  (** maximum segment size (kind 2) *)
  | Window_scale of int  (** shift count (kind 3) *)
  | Sack_permitted  (** kind 4 *)
  | Timestamps of { value : int; echo : int }  (** kind 8 *)

val option_to_string : option_ -> string

type segment = {
  src_port : int;
  dst_port : int;
  seq : int;  (** sequence number, modulo 2^32 *)
  ack : int;  (** acknowledgement number, modulo 2^32 *)
  flags : flags;
  window : int;
  urgent : int;
  options : option_ list;
  payload : string;
}

val make :
  ?window:int ->
  ?urgent:int ->
  ?options:option_ list ->
  ?payload:string ->
  src_port:int ->
  dst_port:int ->
  seq:int ->
  ack:int ->
  flags ->
  segment

val find_mss : segment -> int option

val pp : Format.formatter -> segment -> unit

val seq_add : int -> int -> int
(** Sequence-number addition modulo 2^32. *)

val checksum : string -> int
(** Internet ones-complement checksum of a byte string. *)

val encode : segment -> string
(** Binary wire form: 20-byte header + payload, checksum filled in. *)

val decode : string -> (segment, string) result
(** Parses and verifies the checksum. *)

val to_json : segment -> string
(** The concrete-alphabet representation of the paper's Example 3.2: a
    JSON object with the fields [isNull], [sourcePort],
    [destinationPort], [seqNumber], [ackNumber], [dataOffset],
    [reserved], [flags], [window], [checksum], [urgentPointer].
    [dataOffset] and [checksum] are [null] before encoding fixes them,
    exactly as in the paper's listing. *)
