module Rng = Prognosis_sul.Rng
open Tcp_wire

type state = Listen | Syn_rcvd | Established | Close_wait | Last_ack | Closed

let state_to_string = function
  | Listen -> "LISTEN"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Closed -> "CLOSED"

type config = { port : int; one_shot : bool; challenge_acks : bool }

let default_config = { port = 443; one_shot = true; challenge_acks = true }

type t = {
  cfg : config;
  rng : Rng.t;
  mutable state : state;
  mutable iss : int;  (** our initial send sequence *)
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
  mutable peer_port : int;
}

let reset t =
  t.state <- Listen;
  t.iss <- Rng.int t.rng 0x40000000;
  t.snd_nxt <- t.iss;
  t.rcv_nxt <- 0;
  t.peer_port <- 0

let create ?(config = default_config) rng =
  let t =
    { cfg = config; rng; state = Listen; iss = 0; snd_nxt = 0; rcv_nxt = 0; peer_port = 0 }
  in
  reset t;
  t

let state t = t.state
let config t = t.cfg

let reply t (peer : segment) ?(payload = "") ~seq ~ack flags =
  make ~payload ~src_port:t.cfg.port ~dst_port:peer.src_port ~seq ~ack flags

(* RST in response to a segment that does not belong to any
   connection: RFC 793 resets carry the offending segment's ACK number
   as their sequence when the segment had ACK set, and ACK the
   segment's end otherwise. *)
let refuse t (seg : segment) =
  if seg.flags.rst then []
  else if seg.flags.ack then
    [ reply t seg ~seq:seg.ack ~ack:0 { no_flags with rst = true } ]
  else
    let seg_len =
      String.length seg.payload + (if seg.flags.syn then 1 else 0)
      + if seg.flags.fin then 1 else 0
    in
    [
      reply t seg ~seq:0 ~ack:(seq_add seg.seq seg_len)
        { no_flags with rst = true; ack = true };
    ]

let challenge t seg =
  [ reply t seg ~seq:t.snd_nxt ~ack:t.rcv_nxt { no_flags with ack = true } ]

let fin_ack_flags = { no_flags with fin = true; ack = true }
let syn_ack_flags = { no_flags with syn = true; ack = true }

(* Is this segment acceptable for the current connection? The
   simulated link never reorders, so we insist on exact sequence
   match. *)
let in_window t (seg : segment) = seg.seq = t.rcv_nxt
let ack_current t (seg : segment) = seg.flags.ack && seg.ack = t.snd_nxt

let handle_listen t (seg : segment) =
  if seg.flags.rst then []
  else if seg.flags.syn && not seg.flags.ack then begin
    (* Passive open; the SYN+ACK advertises our MSS (capped by the
       peer's, when offered). *)
    t.peer_port <- seg.src_port;
    t.rcv_nxt <- seq_add seg.seq 1;
    t.snd_nxt <- t.iss;
    t.state <- Syn_rcvd;
    let mss = match find_mss seg with Some peer -> min peer 1400 | None -> 1400 in
    let response =
      make ~options:[ Mss mss ] ~src_port:t.cfg.port ~dst_port:seg.src_port
        ~seq:t.snd_nxt ~ack:t.rcv_nxt syn_ack_flags
    in
    t.snd_nxt <- seq_add t.snd_nxt 1;
    [ response ]
  end
  else refuse t seg

let handle_syn_rcvd t (seg : segment) =
  if seg.flags.rst then begin
    (* Connection aborted; the pending connection is discarded. *)
    t.state <- if t.cfg.one_shot then Closed else Listen;
    []
  end
  else if seg.flags.syn && seg.flags.ack then begin
    (* SYN+ACK in SYN_RCVD is not meaningful: abort with RST. *)
    t.state <- if t.cfg.one_shot then Closed else Listen;
    [ reply t seg ~seq:seg.ack ~ack:0 { no_flags with rst = true } ]
  end
  else if seg.flags.syn then
    (* SYN retransmission: resend our SYN+ACK. *)
    [ reply t seg ~seq:t.iss ~ack:t.rcv_nxt syn_ack_flags ]
  else if not (ack_current t seg && in_window t seg) then
    (* Bad ACK completes nothing; challenge it. *)
    challenge t seg
  else if seg.flags.fin then begin
    (* ACK of our SYN and an immediate FIN: handshake completes and the
       peer half-closes in one step. *)
    t.rcv_nxt <- seq_add t.rcv_nxt 1;
    t.state <- Close_wait;
    challenge t seg
  end
  else if String.length seg.payload > 0 then begin
    t.rcv_nxt <- seq_add t.rcv_nxt (String.length seg.payload);
    t.state <- Established;
    challenge t seg
  end
  else begin
    t.state <- Established;
    []
  end

let handle_established t (seg : segment) =
  if seg.flags.rst then begin
    t.state <- if t.cfg.one_shot then Closed else Listen;
    []
  end
  else if seg.flags.syn then
    if t.cfg.challenge_acks then challenge t seg
    else []
  else if not (ack_current t seg && in_window t seg) then challenge t seg
  else if seg.flags.fin then begin
    t.rcv_nxt <- seq_add t.rcv_nxt (String.length seg.payload + 1);
    t.state <- Close_wait;
    challenge t seg
  end
  else if String.length seg.payload > 0 then begin
    t.rcv_nxt <- seq_add t.rcv_nxt (String.length seg.payload);
    challenge t seg
  end
  else []

let handle_close_wait t (seg : segment) =
  if seg.flags.rst then begin
    t.state <- if t.cfg.one_shot then Closed else Listen;
    []
  end
  else if seg.flags.syn then
    if t.cfg.challenge_acks then challenge t seg else []
  else if not (ack_current t seg && in_window t seg) then challenge t seg
  else if String.length seg.payload > 0 then begin
    (* Data after the peer's FIN: protocol violation, abort. *)
    t.state <- if t.cfg.one_shot then Closed else Listen;
    [ reply t seg ~seq:t.snd_nxt ~ack:0 { no_flags with rst = true } ]
  end
  else if seg.flags.fin then
    (* FIN retransmission: our ACK was lost; re-acknowledge. *)
    challenge t seg
  else begin
    (* The application closes: emit our FIN. *)
    let response = reply t seg ~seq:t.snd_nxt ~ack:t.rcv_nxt fin_ack_flags in
    t.snd_nxt <- seq_add t.snd_nxt 1;
    t.state <- Last_ack;
    [ response ]
  end

let handle_last_ack t (seg : segment) =
  if seg.flags.rst then begin
    t.state <- if t.cfg.one_shot then Closed else Listen;
    []
  end
  else if seg.flags.syn then
    (* Our FIN is outstanding; retransmit it. *)
    [ reply t seg ~seq:(seq_add t.snd_nxt (-1)) ~ack:t.rcv_nxt fin_ack_flags ]
  else if ack_current t seg && in_window t seg then
    if String.length seg.payload > 0 then begin
      t.state <- if t.cfg.one_shot then Closed else Listen;
      [ reply t seg ~seq:t.snd_nxt ~ack:0 { no_flags with rst = true } ]
    end
    else begin
      (* Final ACK of our FIN: fully closed. *)
      t.state <- if t.cfg.one_shot then Closed else Listen;
      []
    end
  else
    [ reply t seg ~seq:(seq_add t.snd_nxt (-1)) ~ack:t.rcv_nxt fin_ack_flags ]

let handle t (seg : segment) =
  if seg.dst_port <> t.cfg.port then refuse t seg
  else
    match t.state with
    | Listen -> handle_listen t seg
    | Syn_rcvd -> handle_syn_rcvd t seg
    | Established -> handle_established t seg
    | Close_wait -> handle_close_wait t seg
    | Last_ack -> handle_last_ack t seg
    | Closed -> refuse t seg

let handle_bytes t data =
  match decode data with
  | Error _ -> []
  | Ok seg -> List.map encode (handle t seg)
