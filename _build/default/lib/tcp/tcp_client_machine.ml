module Rng = Prognosis_sul.Rng
open Tcp_wire

type state =
  | Closed
  | Syn_sent
  | Established
  | Close_wait
  | Last_ack
  | Fin_wait_1
  | Fin_wait_2
  | Time_wait
  | Closed_final

let state_to_string = function
  | Closed -> "CLOSED"
  | Syn_sent -> "SYN_SENT"
  | Established -> "ESTABLISHED"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Time_wait -> "TIME_WAIT"
  | Closed_final -> "CLOSED_FINAL"

type command = Connect | Send | Close

type t = {
  rng : Rng.t;
  src_port : int;
  dst_port : int;
  mutable state : state;
  mutable iss : int;
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
}

let reset t =
  t.state <- Closed;
  t.iss <- Rng.int t.rng 0x40000000;
  t.snd_nxt <- t.iss;
  t.rcv_nxt <- 0

let create ?(src_port = 40000) ?(dst_port = 443) rng =
  let t = { rng; src_port; dst_port; state = Closed; iss = 0; snd_nxt = 0; rcv_nxt = 0 } in
  reset t;
  t

let state t = t.state

let emit t ?(payload = "") ~seq ~ack flags =
  make ~payload ~src_port:t.src_port ~dst_port:t.dst_port ~seq ~ack flags

let syn_flags = { no_flags with syn = true }
let ack_flags = { no_flags with ack = true }
let fin_ack_flags = { no_flags with fin = true; ack = true }
let psh_flags = { no_flags with ack = true; psh = true }

let command t cmd =
  match (t.state, cmd) with
  | Closed, Connect ->
      t.state <- Syn_sent;
      t.snd_nxt <- seq_add t.iss 1;
      [ emit t ~seq:t.iss ~ack:0 ~payload:"" syn_flags ]
  | Syn_sent, Connect ->
      (* Retransmit the SYN. *)
      [ emit t ~seq:t.iss ~ack:0 syn_flags ]
  | Established, Send ->
      let seg = emit t ~payload:"D" ~seq:t.snd_nxt ~ack:t.rcv_nxt psh_flags in
      t.snd_nxt <- seq_add t.snd_nxt 1;
      [ seg ]
  | Established, Close ->
      let seg = emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt fin_ack_flags in
      t.snd_nxt <- seq_add t.snd_nxt 1;
      t.state <- Fin_wait_1;
      [ seg ]
  | Close_wait, Close ->
      let seg = emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt fin_ack_flags in
      t.snd_nxt <- seq_add t.snd_nxt 1;
      t.state <- Last_ack;
      [ seg ]
  | Syn_sent, Close ->
      (* Abandon the attempt silently. *)
      t.state <- Closed_final;
      []
  | (Established | Close_wait | Last_ack | Fin_wait_1 | Fin_wait_2 | Time_wait
    | Closed_final), Connect
  | (Closed | Syn_sent | Close_wait | Last_ack | Fin_wait_1 | Fin_wait_2
    | Time_wait | Closed_final), Send
  | (Closed | Last_ack | Fin_wait_1 | Fin_wait_2 | Time_wait | Closed_final), Close
    ->
      []

(* RST for a segment arriving with no matching connection. *)
let refuse t (seg : segment) =
  if seg.flags.rst then []
  else if seg.flags.ack then
    [ emit t ~seq:seg.ack ~ack:0 { no_flags with rst = true } ]
  else
    let seg_len =
      String.length seg.payload + (if seg.flags.syn then 1 else 0)
      + if seg.flags.fin then 1 else 0
    in
    [
      emit t ~seq:0 ~ack:(seq_add seg.seq seg_len)
        { no_flags with rst = true; ack = true };
    ]

let acceptable t (seg : segment) = seg.seq = t.rcv_nxt
let acks_current t (seg : segment) = seg.flags.ack && seg.ack = t.snd_nxt

let handle t (seg : segment) =
  if seg.dst_port <> t.src_port then refuse t seg
  else
    match t.state with
    | Closed | Closed_final -> refuse t seg
    | Syn_sent ->
        if seg.flags.rst then begin
          (* Connection refused. *)
          t.state <- Closed_final;
          []
        end
        else if seg.flags.syn && seg.flags.ack && acks_current t seg then begin
          t.rcv_nxt <- seq_add seg.seq 1;
          t.state <- Established;
          [ emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt ack_flags ]
        end
        else if seg.flags.ack then
          (* Half-open ACK without SYN: reset it (RFC 793). *)
          [ emit t ~seq:seg.ack ~ack:0 { no_flags with rst = true } ]
        else []
    | Established ->
        if seg.flags.rst then begin
          t.state <- Closed_final;
          []
        end
        else if not (acceptable t seg) then
          (* Out-of-window: duplicate ACK. *)
          [ emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt ack_flags ]
        else if seg.flags.fin then begin
          t.rcv_nxt <- seq_add t.rcv_nxt (String.length seg.payload + 1);
          t.state <- Close_wait;
          [ emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt ack_flags ]
        end
        else if String.length seg.payload > 0 then begin
          t.rcv_nxt <- seq_add t.rcv_nxt (String.length seg.payload);
          [ emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt ack_flags ]
        end
        else []
    | Close_wait ->
        if seg.flags.rst then begin
          t.state <- Closed_final;
          []
        end
        else if seg.flags.fin && acceptable t seg = false then
          [ emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt ack_flags ]
        else []
    | Last_ack ->
        if seg.flags.rst then begin
          t.state <- Closed_final;
          []
        end
        else if acks_current t seg then begin
          t.state <- Closed_final;
          []
        end
        else []
    | Fin_wait_1 ->
        if seg.flags.rst then begin
          t.state <- Closed_final;
          []
        end
        else if seg.flags.fin && acceptable t seg then begin
          (* Their FIN (with or without the ACK of ours). *)
          t.rcv_nxt <- seq_add t.rcv_nxt (String.length seg.payload + 1);
          t.state <- (if acks_current t seg then Time_wait else Time_wait);
          [ emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt ack_flags ]
        end
        else if acks_current t seg then begin
          t.state <- Fin_wait_2;
          []
        end
        else []
    | Fin_wait_2 ->
        if seg.flags.rst then begin
          t.state <- Closed_final;
          []
        end
        else if seg.flags.fin && acceptable t seg then begin
          t.rcv_nxt <- seq_add t.rcv_nxt (String.length seg.payload + 1);
          t.state <- Time_wait;
          [ emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt ack_flags ]
        end
        else []
    | Time_wait ->
        if seg.flags.rst then begin
          t.state <- Closed_final;
          []
        end
        else if seg.flags.fin then
          (* FIN retransmission: re-acknowledge. *)
          [ emit t ~seq:t.snd_nxt ~ack:t.rcv_nxt ack_flags ]
        else []

let handle_bytes t data =
  match decode data with
  | Error _ -> []
  | Ok seg -> List.map encode (handle t seg)
