module Rng = Prognosis_sul.Rng
open Tcp_wire

type t = {
  rng : Rng.t;
  src_port : int;
  dst_port : int;
  mutable iss : int;
  mutable snd_nxt_ : int;
  mutable rcv_nxt_ : int;
  mutable established_ : bool;
  mutable fin_sent : bool;
}

let reset t =
  t.iss <- Rng.int t.rng 0x40000000;
  t.snd_nxt_ <- t.iss;
  t.rcv_nxt_ <- 0;
  t.established_ <- false;
  t.fin_sent <- false

let create ?(src_port = 40000) ?(dst_port = 443) rng =
  let t =
    {
      rng;
      src_port;
      dst_port;
      iss = 0;
      snd_nxt_ = 0;
      rcv_nxt_ = 0;
      established_ = false;
      fin_sent = false;
    }
  in
  reset t;
  t

let established t = t.established_
let snd_nxt t = t.snd_nxt_
let rcv_nxt t = t.rcv_nxt_

let build t ?(payload = "") ~seq ~ack flags =
  make ~payload ~src_port:t.src_port ~dst_port:t.dst_port ~seq ~ack flags

let concretize t symbol =
  let flags = Tcp_alphabet.flags symbol in
  match symbol with
  | Tcp_alphabet.Syn ->
      if t.established_ then
        (* Mid-connection SYN probe: does not consume sequence space. *)
        build t ~seq:t.snd_nxt_ ~ack:0 flags
      else begin
        (* (Re)transmission of our opening SYN, offering MSS and
           SACK support. *)
        t.snd_nxt_ <- seq_add t.iss 1;
        make
          ~options:[ Mss 1460; Sack_permitted ]
          ~src_port:t.src_port ~dst_port:t.dst_port ~seq:t.iss ~ack:0 flags
      end
  | Tcp_alphabet.Syn_ack ->
      if t.established_ then build t ~seq:t.snd_nxt_ ~ack:t.rcv_nxt_ flags
      else build t ~seq:t.iss ~ack:0 flags
  | Tcp_alphabet.Ack ->
      if t.established_ then build t ~seq:t.snd_nxt_ ~ack:t.rcv_nxt_ flags
      else build t ~seq:t.iss ~ack:0 flags
  | Tcp_alphabet.Ack_psh ->
      let payload = "D" in
      if t.established_ && not t.fin_sent then begin
        let seg = build t ~payload ~seq:t.snd_nxt_ ~ack:t.rcv_nxt_ flags in
        t.snd_nxt_ <- seq_add t.snd_nxt_ (String.length payload);
        seg
      end
      else if t.established_ then
        (* Data after our FIN: invalid, sent as-is without consuming. *)
        build t ~payload ~seq:t.snd_nxt_ ~ack:t.rcv_nxt_ flags
      else build t ~payload ~seq:t.iss ~ack:0 flags
  | Tcp_alphabet.Fin_ack ->
      if t.established_ && not t.fin_sent then begin
        let seg = build t ~seq:t.snd_nxt_ ~ack:t.rcv_nxt_ flags in
        t.snd_nxt_ <- seq_add t.snd_nxt_ 1;
        t.fin_sent <- true;
        seg
      end
      else if t.established_ then
        (* FIN retransmission uses the original sequence number. *)
        build t ~seq:(seq_add t.snd_nxt_ (-1)) ~ack:t.rcv_nxt_ flags
      else build t ~seq:t.iss ~ack:0 flags
  | Tcp_alphabet.Rst ->
      let seq = if t.established_ then t.snd_nxt_ else t.iss in
      t.established_ <- false;
      build t ~seq ~ack:0 flags
  | Tcp_alphabet.Ack_rst ->
      let seq = if t.established_ then t.snd_nxt_ else t.iss in
      let ack = if t.established_ then t.rcv_nxt_ else 0 in
      t.established_ <- false;
      build t ~seq ~ack flags

let absorb t (seg : segment) =
  if seg.flags.rst then t.established_ <- false
  else if seg.flags.syn && seg.flags.ack then begin
    t.established_ <- true;
    t.rcv_nxt_ <- seq_add seg.seq 1;
    if t.snd_nxt_ = t.iss then t.snd_nxt_ <- seq_add t.iss 1
  end
  else if seg.flags.fin then
    t.rcv_nxt_ <- seq_add seg.seq (String.length seg.payload + 1)
  else if String.length seg.payload > 0 then
    t.rcv_nxt_ <- seq_add seg.seq (String.length seg.payload)
