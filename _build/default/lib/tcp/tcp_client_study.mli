(** Learning the TCP *client* role: alphabet, reference server peer and
    adapter.

    The client SUL ({!Tcp_client_machine}) is driven by two kinds of
    abstract inputs, mirroring the setup of Fiterău-Broștean et al.
    [22] (socket calls + wire input):

    {ul
    {- application commands — CONNECT, SEND, CLOSE — delivered through
       the instrumented API;}
    {- server segments — SYN+ACK, ACK, ACK+PSH, FIN+ACK, RST —
       concretized by a reference *server* endpoint that tracks the
       connection state, exactly as the reference client does for
       server learning.}}

    Outputs are the abstract flag views of whatever segments the client
    emits. *)

type symbol =
  | Cmd_connect  (** CONNECT socket call *)
  | Cmd_send  (** SEND(1 byte) *)
  | Cmd_close  (** CLOSE *)
  | In_syn_ack  (** SYN+ACK(?,?,0) from the server *)
  | In_ack  (** ACK(?,?,0) *)
  | In_ack_psh  (** ACK+PSH(?,?,1) *)
  | In_fin_ack  (** FIN+ACK(?,?,0) *)
  | In_rst  (** RST(?,?,0) *)

val all : symbol array
val to_string : symbol -> string
val pp : Format.formatter -> symbol -> unit

type output = Tcp_alphabet.symbol list

val pp_output : Format.formatter -> output -> unit
val output_to_string : output -> string

val adapter :
  ?network:Prognosis_sul.Network.config ->
  seed:int64 ->
  unit ->
  (symbol, output, Tcp_wire.segment, Tcp_wire.segment) Prognosis_sul.Adapter.t
(** Concrete inputs recorded in the Oracle Table are the segments the
    reference peer sent; concrete outputs the segments the client
    emitted. Command steps record no sent segment. *)

val sul :
  ?network:Prognosis_sul.Network.config ->
  seed:int64 ->
  unit ->
  (symbol, output) Prognosis_sul.Sul.t
