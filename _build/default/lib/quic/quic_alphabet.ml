type symbol =
  | Initial_crypto
  | Initial_ack_hsd
  | Handshake_ack_crypto
  | Handshake_ack_hsd
  | Short_ack_flow
  | Short_ack_stream
  | Short_ack_hsd
  | Short_ack_ping
  | Short_ack_path_challenge
  | Short_ack_path_response

let all =
  [|
    Initial_crypto;
    Initial_ack_hsd;
    Handshake_ack_crypto;
    Handshake_ack_hsd;
    Short_ack_flow;
    Short_ack_stream;
    Short_ack_hsd;
  |]

let extended =
  Array.append all
    [| Short_ack_ping; Short_ack_path_challenge; Short_ack_path_response |]

let to_string = function
  | Initial_crypto -> "INITIAL(?,?)[CRYPTO]"
  | Initial_ack_hsd -> "INITIAL(?,?)[ACK,HANDSHAKE_DONE]"
  | Handshake_ack_crypto -> "HANDSHAKE(?,?)[ACK,CRYPTO]"
  | Handshake_ack_hsd -> "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]"
  | Short_ack_flow -> "SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]"
  | Short_ack_stream -> "SHORT(?,?)[ACK,STREAM]"
  | Short_ack_hsd -> "SHORT(?,?)[ACK,HANDSHAKE_DONE]"
  | Short_ack_ping -> "SHORT(?,?)[ACK,PING]"
  | Short_ack_path_challenge -> "SHORT(?,?)[ACK,PATH_CHALLENGE]"
  | Short_ack_path_response -> "SHORT(?,?)[ACK,PATH_RESPONSE]"

let pp fmt s = Format.pp_print_string fmt (to_string s)

type apacket = { ptype : Quic_packet.ptype; frames : Frame.kind list }
type output = apacket list

let apacket_to_string a =
  Printf.sprintf "%s(?,?)[%s]"
    (Quic_packet.ptype_to_string a.ptype)
    (String.concat "," (List.map Frame.kind_to_string a.frames))

let output_to_string = function
  | [] -> "NIL"
  | packets -> "{" ^ String.concat ", " (List.map apacket_to_string packets) ^ "}"

let pp_output fmt o = Format.pp_print_string fmt (output_to_string o)

let abstract_packet (p : Quic_packet.t) =
  let frames =
    List.filter_map
      (fun f ->
        match Frame.kind f with Frame.K_padding -> None | k -> Some k)
      p.Quic_packet.frames
  in
  { ptype = p.Quic_packet.ptype; frames }

let abstract_reset = { ptype = Quic_packet.Stateless_reset; frames = [] }
