let max_value = (1 lsl 62) - 1

let encoded_length v =
  if v < 0 || v > max_value then invalid_arg "Varint: value out of range"
  else if v < 1 lsl 6 then 1
  else if v < 1 lsl 14 then 2
  else if v < 1 lsl 30 then 4
  else 8

let encode buf v =
  match encoded_length v with
  | 1 -> Buffer.add_char buf (Char.chr v)
  | 2 ->
      Buffer.add_char buf (Char.chr (0x40 lor (v lsr 8)));
      Buffer.add_char buf (Char.chr (v land 0xFF))
  | 4 ->
      Buffer.add_char buf (Char.chr (0x80 lor (v lsr 24)));
      Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
      Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr (v land 0xFF))
  | _ ->
      Buffer.add_char buf (Char.chr (0xC0 lor ((v lsr 56) land 0x3F)));
      for shift = 6 downto 0 do
        Buffer.add_char buf (Char.chr ((v lsr (shift * 8)) land 0xFF))
      done

let encode_to_string v =
  let buf = Buffer.create 8 in
  encode buf v;
  Buffer.contents buf

let decode s off =
  if off >= String.length s then invalid_arg "Varint.decode: out of bounds";
  let first = Char.code s.[off] in
  let len = 1 lsl (first lsr 6) in
  if off + len > String.length s then invalid_arg "Varint.decode: truncated";
  let v = ref (first land 0x3F) in
  for i = 1 to len - 1 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  (!v, off + len)
