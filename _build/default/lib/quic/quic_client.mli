(** The instrumented reference QUIC client (the QUIC-Tracker analogue
    of the paper, §3.2 and §6.2.2).

    This client owns all the protocol machinery the concretization
    function γ needs — connection ids, the key schedule, per-space
    packet numbers, retry tokens, flow-control accounting — and exposes
    the instrumentation the paper adds to the reference implementation:
    it only ever sends packets when the learner requests a matching
    abstract symbol, it abstracts responses, and it can be fully reset.
    When the current state cannot realize a symbol (e.g. a 1-RTT packet
    before any keys exist), [concretize] reports it, and the Adapter
    answers NIL — matching the behaviour of instrumented QUIC-Tracker,
    which simply cannot emit such a packet.

    Two deliberate defects are reproducible via the config:
    {ul
    {- [retry_port_bug] (Issue 3, §6.2.5): the post-Retry Initial is
       sent from a fresh random UDP port, so address validation fails;}
    {- [pns_reset_on_retry] (Issue 1, §6.2.3): the client restarts its
       Initial packet-number space at 0 after a Retry — the behaviour
       whose handling the RFC left ambiguous.}} *)

type config = { retry_port_bug : bool; pns_reset_on_retry : bool }

val default_config : config
(** No port bug; packet-number spaces reset on retry. *)

type t

val create : ?config:config -> Prognosis_sul.Rng.t -> t
val reset : t -> unit
val port : t -> int
(** Current UDP source port. *)

val concretize : t -> Quic_alphabet.symbol -> (string * Quic_packet.t) option
(** γ: build (wire bytes, decoded form) for an abstract symbol under
    the current connection state; [None] when the state cannot realize
    the symbol (required keys not yet available). *)

val migrate : t -> unit
(** Connection migration: move to a fresh UDP source port. A conforming
    server validates the new path with PATH_CHALLENGE; the instrumented
    client queues its PATH_RESPONSE (property 1) until the learner
    requests [Short_ack_path_response]. *)

val queued_frames : t -> int
(** Reactive frames currently held in the Listing-1 queue. *)

val initiate_key_update : t -> unit
(** Rotate the client's 1-RTT keys (RFC 9001 §6); the next short-header
    packet carries the flipped key-phase bit and a conforming server
    follows. No-op before application keys exist. *)

val key_phase : t -> int
(** Number of key updates this client's schedule has seen. *)

val send_frames :
  t -> Quic_packet.ptype -> Frame.t list -> (string * Quic_packet.t) option
(** Scenario-scripting hook (QUIC-Tracker style): build a packet of the
    given type carrying arbitrary frames under the current connection
    state — packet number, keys and connection ids are filled in by the
    client. [None] when the required keys are unavailable. *)

type absorbed =
  | Packet of Quic_packet.t
  | Reset
  | Junk of string

val absorb : t -> string -> absorbed
(** Decode a server datagram, update client state (key installation,
    retry tokens, flow-control and property bookkeeping) and classify
    it. *)

(** {2 State inspection for analyses and property checks} *)

val handshake_complete : t -> bool
val connection_closed : t -> bool
val ncid_sequence_numbers : t -> int list
(** NEW_CONNECTION_ID sequence numbers observed, in arrival order. *)

val stream_data_blocked_values : t -> int list
(** Maximum Stream Data field of each observed STREAM_DATA_BLOCKED
    frame, in arrival order (Issue 4's synthesis target). *)

val received_stream_bytes : t -> int
val announced_max_stream_data : t -> int
val flow_violation : t -> bool
(** True when the server sent stream data beyond the limit the client
    had announced. *)
