type t =
  | Padding of int
  | Ping
  | Ack of { largest : int; delay : int; first_range : int }
  | Reset_stream of { stream_id : int; error : int; final_size : int }
  | Stop_sending of { stream_id : int; error : int }
  | Crypto of { offset : int; data : string }
  | New_token of string
  | Stream of { id : int; offset : int; data : string; fin : bool }
  | Max_data of int
  | Max_stream_data of { stream_id : int; max : int }
  | Max_streams of { bidi : bool; max : int }
  | Data_blocked of int
  | Stream_data_blocked of { stream_id : int; max : int }
  | Streams_blocked of { bidi : bool; max : int }
  | New_connection_id of {
      seq : int;
      retire_prior : int;
      cid : string;
      reset_token : string;
    }
  | Retire_connection_id of int
  | Path_challenge of string
  | Path_response of string
  | Connection_close of { error : int; frame_type : int; reason : string; app : bool }
  | Handshake_done

type kind =
  | K_padding
  | K_ping
  | K_ack
  | K_reset_stream
  | K_stop_sending
  | K_crypto
  | K_new_token
  | K_stream
  | K_max_data
  | K_max_stream_data
  | K_max_streams
  | K_data_blocked
  | K_stream_data_blocked
  | K_streams_blocked
  | K_new_connection_id
  | K_retire_connection_id
  | K_path_challenge
  | K_path_response
  | K_connection_close
  | K_handshake_done

let kind = function
  | Padding _ -> K_padding
  | Ping -> K_ping
  | Ack _ -> K_ack
  | Reset_stream _ -> K_reset_stream
  | Stop_sending _ -> K_stop_sending
  | Crypto _ -> K_crypto
  | New_token _ -> K_new_token
  | Stream _ -> K_stream
  | Max_data _ -> K_max_data
  | Max_stream_data _ -> K_max_stream_data
  | Max_streams _ -> K_max_streams
  | Data_blocked _ -> K_data_blocked
  | Stream_data_blocked _ -> K_stream_data_blocked
  | Streams_blocked _ -> K_streams_blocked
  | New_connection_id _ -> K_new_connection_id
  | Retire_connection_id _ -> K_retire_connection_id
  | Path_challenge _ -> K_path_challenge
  | Path_response _ -> K_path_response
  | Connection_close _ -> K_connection_close
  | Handshake_done -> K_handshake_done

let kind_to_string = function
  | K_padding -> "PADDING"
  | K_ping -> "PING"
  | K_ack -> "ACK"
  | K_reset_stream -> "RESET_STREAM"
  | K_stop_sending -> "STOP_SENDING"
  | K_crypto -> "CRYPTO"
  | K_new_token -> "NEW_TOKEN"
  | K_stream -> "STREAM"
  | K_max_data -> "MAX_DATA"
  | K_max_stream_data -> "MAX_STREAM_DATA"
  | K_max_streams -> "MAX_STREAMS"
  | K_data_blocked -> "DATA_BLOCKED"
  | K_stream_data_blocked -> "STREAM_DATA_BLOCKED"
  | K_streams_blocked -> "STREAMS_BLOCKED"
  | K_new_connection_id -> "NEW_CONNECTION_ID"
  | K_retire_connection_id -> "RETIRE_CONNECTION_ID"
  | K_path_challenge -> "PATH_CHALLENGE"
  | K_path_response -> "PATH_RESPONSE"
  | K_connection_close -> "CONNECTION_CLOSE"
  | K_handshake_done -> "HANDSHAKE_DONE"

let all_kinds =
  [
    K_padding;
    K_ping;
    K_ack;
    K_reset_stream;
    K_stop_sending;
    K_crypto;
    K_new_token;
    K_stream;
    K_max_data;
    K_max_stream_data;
    K_max_streams;
    K_data_blocked;
    K_stream_data_blocked;
    K_streams_blocked;
    K_new_connection_id;
    K_retire_connection_id;
    K_path_challenge;
    K_path_response;
    K_connection_close;
    K_handshake_done;
  ]

let pp fmt f =
  match f with
  | Padding n -> Format.fprintf fmt "PADDING(%d)" n
  | Ping -> Format.fprintf fmt "PING"
  | Ack { largest; _ } -> Format.fprintf fmt "ACK(largest=%d)" largest
  | Reset_stream { stream_id; _ } -> Format.fprintf fmt "RESET_STREAM(%d)" stream_id
  | Stop_sending { stream_id; _ } -> Format.fprintf fmt "STOP_SENDING(%d)" stream_id
  | Crypto { offset; data } ->
      Format.fprintf fmt "CRYPTO(off=%d,len=%d)" offset (String.length data)
  | New_token _ -> Format.fprintf fmt "NEW_TOKEN"
  | Stream { id; offset; data; fin } ->
      Format.fprintf fmt "STREAM(%d,off=%d,len=%d%s)" id offset (String.length data)
        (if fin then ",fin" else "")
  | Max_data v -> Format.fprintf fmt "MAX_DATA(%d)" v
  | Max_stream_data { stream_id; max } ->
      Format.fprintf fmt "MAX_STREAM_DATA(%d,%d)" stream_id max
  | Max_streams { max; _ } -> Format.fprintf fmt "MAX_STREAMS(%d)" max
  | Data_blocked v -> Format.fprintf fmt "DATA_BLOCKED(%d)" v
  | Stream_data_blocked { stream_id; max } ->
      Format.fprintf fmt "STREAM_DATA_BLOCKED(%d,%d)" stream_id max
  | Streams_blocked { max; _ } -> Format.fprintf fmt "STREAMS_BLOCKED(%d)" max
  | New_connection_id { seq; _ } -> Format.fprintf fmt "NEW_CONNECTION_ID(seq=%d)" seq
  | Retire_connection_id seq -> Format.fprintf fmt "RETIRE_CONNECTION_ID(%d)" seq
  | Path_challenge _ -> Format.fprintf fmt "PATH_CHALLENGE"
  | Path_response _ -> Format.fprintf fmt "PATH_RESPONSE"
  | Connection_close { error; _ } -> Format.fprintf fmt "CONNECTION_CLOSE(%d)" error
  | Handshake_done -> Format.fprintf fmt "HANDSHAKE_DONE"

let is_ack_eliciting f =
  match kind f with
  | K_ack | K_padding | K_connection_close -> false
  | _ -> true

let add_varint = Varint.encode

let add_bytes buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let encode buf f =
  match f with
  | Padding n ->
      for _ = 1 to max n 1 do
        Buffer.add_char buf '\x00'
      done
  | Ping -> add_varint buf 0x01
  | Ack { largest; delay; first_range } ->
      add_varint buf 0x02;
      add_varint buf largest;
      add_varint buf delay;
      add_varint buf 0 (* range count *);
      add_varint buf first_range
  | Reset_stream { stream_id; error; final_size } ->
      add_varint buf 0x04;
      add_varint buf stream_id;
      add_varint buf error;
      add_varint buf final_size
  | Stop_sending { stream_id; error } ->
      add_varint buf 0x05;
      add_varint buf stream_id;
      add_varint buf error
  | Crypto { offset; data } ->
      add_varint buf 0x06;
      add_varint buf offset;
      add_bytes buf data
  | New_token token ->
      add_varint buf 0x07;
      add_bytes buf token
  | Stream { id; offset; data; fin } ->
      (* 0x08 base; OFF=0x04, LEN=0x02, FIN=0x01 — always explicit. *)
      add_varint buf (0x08 lor 0x04 lor 0x02 lor if fin then 0x01 else 0);
      add_varint buf id;
      add_varint buf offset;
      add_bytes buf data
  | Max_data v ->
      add_varint buf 0x10;
      add_varint buf v
  | Max_stream_data { stream_id; max } ->
      add_varint buf 0x11;
      add_varint buf stream_id;
      add_varint buf max
  | Max_streams { bidi; max } ->
      add_varint buf (if bidi then 0x12 else 0x13);
      add_varint buf max
  | Data_blocked v ->
      add_varint buf 0x14;
      add_varint buf v
  | Stream_data_blocked { stream_id; max } ->
      add_varint buf 0x15;
      add_varint buf stream_id;
      add_varint buf max
  | Streams_blocked { bidi; max } ->
      add_varint buf (if bidi then 0x16 else 0x17);
      add_varint buf max
  | New_connection_id { seq; retire_prior; cid; reset_token } ->
      add_varint buf 0x18;
      add_varint buf seq;
      add_varint buf retire_prior;
      Buffer.add_char buf (Char.chr (String.length cid));
      Buffer.add_string buf cid;
      Buffer.add_string buf reset_token (* fixed 16 bytes *)
  | Retire_connection_id seq ->
      add_varint buf 0x19;
      add_varint buf seq
  | Path_challenge data ->
      add_varint buf 0x1A;
      Buffer.add_string buf data (* fixed 8 bytes *)
  | Path_response data ->
      add_varint buf 0x1B;
      Buffer.add_string buf data
  | Connection_close { error; frame_type; reason; app } ->
      add_varint buf (if app then 0x1D else 0x1C);
      add_varint buf error;
      if not app then add_varint buf frame_type;
      add_bytes buf reason
  | Handshake_done -> add_varint buf 0x1E

let encode_all frames =
  let buf = Buffer.create 256 in
  List.iter (encode buf) frames;
  Buffer.contents buf

exception Malformed of string

let decode_all payload =
  let len = String.length payload in
  let read_varint off = Varint.decode payload off in
  let read_fixed off n =
    if off + n > len then raise (Malformed "truncated fixed field")
    else (String.sub payload off n, off + n)
  in
  let read_bytes off =
    let n, off = read_varint off in
    read_fixed off n
  in
  let rec loop off acc =
    if off >= len then List.rev acc
    else begin
      let ft, off' = read_varint off in
      match ft with
      | 0x00 ->
          (* Coalesce a run of padding. *)
          let stop = ref off' in
          while !stop < len && payload.[!stop] = '\x00' do
            incr stop
          done;
          loop !stop (Padding (!stop - off) :: acc)
      | 0x01 -> loop off' (Ping :: acc)
      | 0x02 | 0x03 ->
          let largest, off' = read_varint off' in
          let delay, off' = read_varint off' in
          let count, off' = read_varint off' in
          if count <> 0 then raise (Malformed "multi-range ACK unsupported");
          let first_range, off' = read_varint off' in
          loop off' (Ack { largest; delay; first_range } :: acc)
      | 0x04 ->
          let stream_id, off' = read_varint off' in
          let error, off' = read_varint off' in
          let final_size, off' = read_varint off' in
          loop off' (Reset_stream { stream_id; error; final_size } :: acc)
      | 0x05 ->
          let stream_id, off' = read_varint off' in
          let error, off' = read_varint off' in
          loop off' (Stop_sending { stream_id; error } :: acc)
      | 0x06 ->
          let offset, off' = read_varint off' in
          let data, off' = read_bytes off' in
          loop off' (Crypto { offset; data } :: acc)
      | 0x07 ->
          let token, off' = read_bytes off' in
          loop off' (New_token token :: acc)
      | ft when ft >= 0x08 && ft <= 0x0F ->
          let fin = ft land 0x01 <> 0 in
          let has_off = ft land 0x04 <> 0 in
          let has_len = ft land 0x02 <> 0 in
          let id, off' = read_varint off' in
          let offset, off' = if has_off then read_varint off' else (0, off') in
          let data, off' =
            if has_len then read_bytes off'
            else read_fixed off' (len - off')
          in
          loop off' (Stream { id; offset; data; fin } :: acc)
      | 0x10 ->
          let v, off' = read_varint off' in
          loop off' (Max_data v :: acc)
      | 0x11 ->
          let stream_id, off' = read_varint off' in
          let max, off' = read_varint off' in
          loop off' (Max_stream_data { stream_id; max } :: acc)
      | 0x12 | 0x13 ->
          let max, off' = read_varint off' in
          loop off' (Max_streams { bidi = ft = 0x12; max } :: acc)
      | 0x14 ->
          let v, off' = read_varint off' in
          loop off' (Data_blocked v :: acc)
      | 0x15 ->
          let stream_id, off' = read_varint off' in
          let max, off' = read_varint off' in
          loop off' (Stream_data_blocked { stream_id; max } :: acc)
      | 0x16 | 0x17 ->
          let max, off' = read_varint off' in
          loop off' (Streams_blocked { bidi = ft = 0x16; max } :: acc)
      | 0x18 ->
          let seq, off' = read_varint off' in
          let retire_prior, off' = read_varint off' in
          if off' >= len then raise (Malformed "truncated NCID");
          let cid_len = Char.code payload.[off'] in
          let cid, off' = read_fixed (off' + 1) cid_len in
          let reset_token, off' = read_fixed off' 16 in
          loop off' (New_connection_id { seq; retire_prior; cid; reset_token } :: acc)
      | 0x19 ->
          let seq, off' = read_varint off' in
          loop off' (Retire_connection_id seq :: acc)
      | 0x1A ->
          let data, off' = read_fixed off' 8 in
          loop off' (Path_challenge data :: acc)
      | 0x1B ->
          let data, off' = read_fixed off' 8 in
          loop off' (Path_response data :: acc)
      | 0x1C | 0x1D ->
          let app = ft = 0x1D in
          let error, off' = read_varint off' in
          let frame_type, off' = if app then (0, off') else read_varint off' in
          let reason, off' = read_bytes off' in
          loop off' (Connection_close { error; frame_type; reason; app } :: acc)
      | 0x1E -> loop off' (Handshake_done :: acc)
      | ft -> raise (Malformed (Printf.sprintf "unknown frame type 0x%x" ft))
    end
  in
  match loop 0 [] with
  | frames -> Ok frames
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg
