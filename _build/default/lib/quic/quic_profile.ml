type retry_mode =
  | No_retry
  | Retry_tolerant_pns_reset
  | Retry_abort_on_pns_reset

type t = {
  name : string;
  retry : retry_mode;
  reset_after_close_prob : float;
  stream_data_blocked_zero : bool;
  send_new_connection_id : bool;
  send_new_token : bool;
  ncid_seq_stride : int;
  ignore_flow_control : bool;
  initial_max_data : int;
  initial_max_stream_data : int;
  response_body : string;
}

let base =
  {
    name = "base";
    retry = No_retry;
    reset_after_close_prob = 1.0;
    stream_data_blocked_zero = false;
    send_new_connection_id = false;
    send_new_token = false;
    ncid_seq_stride = 1;
    ignore_flow_control = false;
    initial_max_data = 1 lsl 20;
    initial_max_stream_data = 1 lsl 18;
    response_body = String.concat "" (List.init 8 (fun _ -> "0123456789"));
  }

let quiche_like = { base with name = "quiche-like" }

let google_like =
  {
    base with
    name = "google-like";
    retry = Retry_tolerant_pns_reset;
    stream_data_blocked_zero = true;
  }

let mvfst_like = { base with name = "mvfst-like"; reset_after_close_prob = 0.82 }
let strict_retry = { base with name = "strict-retry"; retry = Retry_abort_on_pns_reset }

let ncid_buggy =
  {
    base with
    name = "ncid-buggy";
    send_new_connection_id = true;
    ncid_seq_stride = 2;
  }

let token_issuing = { base with name = "token-issuing"; send_new_token = true }

let flow_violator = { base with name = "flow-violator"; ignore_flow_control = true }

let all =
  [
    quiche_like; google_like; mvfst_like; strict_retry; ncid_buggy; token_issuing;
    flow_violator;
  ]
let find name = List.find_opt (fun p -> p.name = name) all
