(** The simulated QUIC server: the System Under Learning for the
    paper's §6.2 case studies.

    One engine implements the full observable lifecycle — address
    validation (Retry), the cryptographic handshake over CRYPTO frames,
    HANDSHAKE_DONE signalling, stream data with connection- and
    stream-level flow control, protocol-violation handling
    (CONNECTION_CLOSE) and post-close Stateless Resets — parameterized
    by a {!Quic_profile.t} that injects the vendor-specific behaviours
    the paper reports. The server is driven exclusively through encoded
    datagrams ({!handle_datagram}), preserving the closed-box
    assumption; the source port accompanies each datagram because
    Retry-based address validation depends on it (Issue 3). *)

type t

val create : ?profile:Quic_profile.t -> Prognosis_sul.Rng.t -> t
(** Default profile: {!Quic_profile.val-quiche_like}. The RNG persists
    across resets (it is the server's entropy source, used for
    connection ids, handshake randoms and the Issue-2 probabilistic
    resets). *)

val reset : t -> unit
(** Discard the current connection and await a fresh one. *)

val profile : t -> Quic_profile.t

val phase_name : t -> string
(** Current lifecycle phase, for tests and diagnostics. *)

val scid : t -> string
(** The server's current connection id (empty before any packet). *)

val handle_datagram : t -> port:int -> string -> string list
(** Process one datagram arriving from the given UDP source port and
    return response datagrams. *)
