type level = Initial_level | Handshake_level | Application_level

let level_to_string = function
  | Initial_level -> "initial"
  | Handshake_level -> "handshake"
  | Application_level -> "application"

type direction = Client_to_server | Server_to_client

(* FNV-1a 64-bit, then one splitmix64 finalization round for diffusion. *)
let hash64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001B3L)
    s;
  let z = add !h 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bytes_of_int64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))

let derive secret label = bytes_of_int64 (hash64 (secret ^ "/" ^ label))

type secrets = { c2s : string; s2c : string }

type t = {
  mutable initial : secrets option;
  mutable handshake : secrets option;
  mutable application : secrets option;
  mutable app_phase : int;
}

let create () =
  { initial = None; handshake = None; application = None; app_phase = 0 }

let make_secrets base =
  { c2s = derive base "client"; s2c = derive base "server" }

let install_initial t ~dcid =
  t.initial <- Some (make_secrets (derive ("initial:" ^ dcid) "base"))

let install_handshake t ~client_random ~server_random =
  let base = derive ("hs:" ^ client_random ^ ":" ^ server_random) "base" in
  t.handshake <- Some (make_secrets base);
  t.application <- Some (make_secrets (derive base "app"))

let slot t = function
  | Initial_level -> t.initial
  | Handshake_level -> t.handshake
  | Application_level -> t.application

let drop_level t = function
  | Initial_level -> t.initial <- None
  | Handshake_level -> t.handshake <- None
  | Application_level -> t.application <- None

let has_level t level = slot t level <> None

let update_application t =
  match t.application with
  | None -> ()
  | Some secrets ->
      t.application <-
        Some { c2s = derive secrets.c2s "ku"; s2c = derive secrets.s2c "ku" };
      t.app_phase <- t.app_phase + 1

let application_phase t = t.app_phase

let key_for secrets = function
  | Client_to_server -> secrets.c2s
  | Server_to_client -> secrets.s2c

let tag_length = 8

(* Keystream: splitmix64 seeded from (key, packet number). *)
let keystream key pn len =
  let state = ref (hash64 (Printf.sprintf "%s#%d" key pn)) in
  String.init len (fun i ->
      if i mod 8 = 0 then begin
        let open Int64 in
        let s = add !state 0x9E3779B97F4A7C15L in
        let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
        state := logxor z (shift_right_logical z 31)
      end;
      let shift = 8 * (i mod 8) in
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical !state shift) 0xFFL)))

let xor_with data stream =
  String.mapi (fun i c -> Char.chr (Char.code c lxor Char.code stream.[i])) data

let auth_tag key ~pn ~header data =
  bytes_of_int64 (hash64 (Printf.sprintf "%s|%d|%s|%s" key pn header data))

let seal t level direction ~pn ~header plaintext =
  match slot t level with
  | None -> None
  | Some secrets ->
      let key = key_for secrets direction in
      let ciphertext = xor_with plaintext (keystream key pn (String.length plaintext)) in
      Some (ciphertext ^ auth_tag key ~pn ~header plaintext)

let open_ t level direction ~pn ~header sealed =
  match slot t level with
  | None -> None
  | Some secrets ->
      let n = String.length sealed in
      if n < tag_length then None
      else begin
        let key = key_for secrets direction in
        let ciphertext = String.sub sealed 0 (n - tag_length) in
        let tag = String.sub sealed (n - tag_length) tag_length in
        let plaintext =
          xor_with ciphertext (keystream key pn (String.length ciphertext))
        in
        if auth_tag key ~pn ~header plaintext = tag then Some plaintext else None
      end

let open_updated_application t direction ~pn ~header sealed =
  match t.application with
  | None -> None
  | Some secrets ->
      let next =
        { initial = None;
          handshake = None;
          application =
            Some { c2s = derive secrets.c2s "ku"; s2c = derive secrets.s2c "ku" };
          app_phase = t.app_phase + 1;
        }
      in
      open_ next Application_level direction ~pn ~header sealed

let stateless_reset_token ~dcid =
  derive ("srt:" ^ dcid) "token" ^ derive ("srt2:" ^ dcid) "token"
