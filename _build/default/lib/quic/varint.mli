(** QUIC variable-length integers (RFC 9000 §16).

    The two most significant bits of the first byte give the encoding
    length (1, 2, 4 or 8 bytes); the remainder carries the value in
    network byte order. Values up to 2^62 - 1 are representable. *)

val max_value : int
(** 2^62 - 1. *)

val encoded_length : int -> int
(** Bytes needed: 1, 2, 4 or 8.
    @raise Invalid_argument for negative values or values above
    {!max_value}. *)

val encode : Buffer.t -> int -> unit
val encode_to_string : int -> string

val decode : string -> int -> int * int
(** [decode s off] is [(value, next_offset)].
    @raise Invalid_argument when the string is too short. *)
