(** Behaviour profiles for the simulated QUIC server.

    The paper analyzes several vendor implementations of the same
    specification; the observable differences it reports — divergent
    post-Retry packet-number-space handling (Issue 1, §6.2.3),
    probabilistic stateless resets after connection closure (Issue 2,
    §6.2.4), the constant-zero Maximum Stream Data field (Issue 4,
    §6.2.6) — are encoded here as configuration of one server engine.
    Profile names are indicative of which published finding each quirk
    reproduces; they are not the vendors' code. *)

type retry_mode =
  | No_retry  (** accept the first Initial directly *)
  | Retry_tolerant_pns_reset
      (** demand address validation; accept a client that restarts its
          Initial packet-number space at 0 after Retry *)
  | Retry_abort_on_pns_reset
      (** demand address validation; abort the connection when the
          post-Retry Initial reuses packet number 0 (the RFC-ambiguity
          side the spec fix [5] later legitimized as "MAY abort") *)

type t = {
  name : string;
  retry : retry_mode;
  reset_after_close_prob : float;
      (** probability that a packet arriving on a closed connection is
          answered with a Stateless Reset: 1.0 and 0.0 are both
          RFC-compliant (consistent) choices; mvfst's 0.82 is the
          Issue-2 bug *)
  stream_data_blocked_zero : bool;
      (** emit STREAM_DATA_BLOCKED with Maximum Stream Data = 0 instead
          of the blocked offset (Issue 4) *)
  send_new_connection_id : bool;
      (** issue NEW_CONNECTION_ID frames after the handshake *)
  send_new_token : bool;
      (** issue a NEW_TOKEN frame after the handshake, letting future
          connections skip address validation *)
  ncid_seq_stride : int;
      (** increment between consecutive NEW_CONNECTION_ID sequence
          numbers; the spec mandates 1 — used by the property-checking
          example *)
  ignore_flow_control : bool;
      (** send stream data without honouring the client's advertised
          limits *)
  initial_max_data : int;  (** server's transport parameter *)
  initial_max_stream_data : int;
  response_body : string;  (** application payload served on stream 0 *)
}

val quiche_like : t
(** No retry, consistent stateless resets: the baseline compliant
    server (larger model: retry states unreachable). *)

val google_like : t
(** Retry with tolerant PNS handling, but STREAM_DATA_BLOCKED carries
    the constant 0 (Issue 4). *)

val mvfst_like : t
(** No retry; resets after close fire with probability 0.82 and no
    back-off (Issue 2, the DoS-capable nondeterminism). *)

val strict_retry : t
(** Retry with abort-on-PNS-reset: the other side of the Issue-1 RFC
    ambiguity, producing a structurally smaller model. *)

val ncid_buggy : t
(** A compliant server except NEW_CONNECTION_ID sequence numbers skip
    (stride 2), violating the "must increase by 1" property from
    §6.2.2. *)

val token_issuing : t
(** A compliant server that also issues NEW_TOKEN frames once the
    handshake completes. *)

val flow_violator : t
(** A server that ignores the client's MAX_STREAM_DATA limit and pushes
    the whole response at once — violating §6.2.2's "an endpoint must
    not send data on a stream at or beyond the final size / beyond the
    advertised limit" property, which the reference client's
    flow-control accounting detects. *)

val all : t list
val find : string -> t option
