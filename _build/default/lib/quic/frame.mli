(** The 20 QUIC frame types (RFC 9000 §19, draft-29 numbering) with
    their wire encodings. Frames are the unit of signalling in QUIC;
    packets merely transport them (paper §6.2.1). *)

type t =
  | Padding of int  (** run length of 0x00 bytes *)
  | Ping
  | Ack of { largest : int; delay : int; first_range : int }
      (** single-range ACK (the simulated link never reorders) *)
  | Reset_stream of { stream_id : int; error : int; final_size : int }
  | Stop_sending of { stream_id : int; error : int }
  | Crypto of { offset : int; data : string }
  | New_token of string
  | Stream of { id : int; offset : int; data : string; fin : bool }
  | Max_data of int
  | Max_stream_data of { stream_id : int; max : int }
  | Max_streams of { bidi : bool; max : int }
  | Data_blocked of int
  | Stream_data_blocked of { stream_id : int; max : int }
  | Streams_blocked of { bidi : bool; max : int }
  | New_connection_id of {
      seq : int;
      retire_prior : int;
      cid : string;
      reset_token : string;
    }
  | Retire_connection_id of int
  | Path_challenge of string  (** 8 bytes *)
  | Path_response of string  (** 8 bytes *)
  | Connection_close of { error : int; frame_type : int; reason : string; app : bool }
  | Handshake_done

(** Frame classification used by abstract alphabets: one constructor
    per RFC frame type, parameters erased. *)
type kind =
  | K_padding
  | K_ping
  | K_ack
  | K_reset_stream
  | K_stop_sending
  | K_crypto
  | K_new_token
  | K_stream
  | K_max_data
  | K_max_stream_data
  | K_max_streams
  | K_data_blocked
  | K_stream_data_blocked
  | K_streams_blocked
  | K_new_connection_id
  | K_retire_connection_id
  | K_path_challenge
  | K_path_response
  | K_connection_close
  | K_handshake_done

val kind : t -> kind
val kind_to_string : kind -> string
val all_kinds : kind list
(** All 20 kinds. *)

val pp : Format.formatter -> t -> unit

val is_ack_eliciting : t -> bool
(** Every frame except ACK, PADDING and CONNECTION_CLOSE elicits an
    acknowledgement (RFC 9002). *)

val encode : Buffer.t -> t -> unit
val encode_all : t list -> string

val decode_all : string -> (t list, string) result
(** Parses a packet payload into frames; adjacent PADDING bytes are
    coalesced into one [Padding] frame. *)
