(** The abstract QUIC alphabet of the paper's §6.2.2: seven input
    symbols covering connection establishment, handshake completion,
    data transfer and flow control, plus the abstract view of server
    responses (packet type + frame kinds, parameters erased). *)

type symbol =
  | Initial_crypto  (** INITIAL(?,?)[CRYPTO] — ClientHello *)
  | Initial_ack_hsd  (** INITIAL(?,?)[ACK,HANDSHAKE_DONE] *)
  | Handshake_ack_crypto  (** HANDSHAKE(?,?)[ACK,CRYPTO] — Finished *)
  | Handshake_ack_hsd  (** HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE] *)
  | Short_ack_flow  (** SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA] *)
  | Short_ack_stream  (** SHORT(?,?)[ACK,STREAM] — request *)
  | Short_ack_hsd  (** SHORT(?,?)[ACK,HANDSHAKE_DONE] *)
  | Short_ack_ping  (** SHORT(?,?)[ACK,PING] — extended alphabet only *)
  | Short_ack_path_challenge
      (** SHORT(?,?)[ACK,PATH_CHALLENGE] — extended alphabet only *)
  | Short_ack_path_response
      (** SHORT(?,?)[ACK,PATH_RESPONSE] — extended alphabet only. Served
          from the reference client's reactive queue (the paper's
          Listing-1 mechanism): a server-initiated PATH_CHALLENGE during
          connection migration makes the client *queue* its response
          instead of sending it unrequested (instrumentation property 1);
          the learner releases it by asking for this symbol. *)

val all : symbol array
(** The paper's seven symbols (§6.2.2). *)

val extended : symbol array
(** [all] plus PING and PATH_CHALLENGE probes: used by the
    alphabet-size ablation. The paper notes that richer alphabets grow
    learning cost quickly (an alphabet of all packet/frame combinations
    would exceed 30,000 symbols); this nine-symbol alphabet quantifies
    the trend. *)

val to_string : symbol -> string
val pp : Format.formatter -> symbol -> unit

type apacket = { ptype : Quic_packet.ptype; frames : Frame.kind list }
(** Abstract view of one packet. *)

type output = apacket list
(** Abstract response: [[]] is NIL (server silent). *)

val apacket_to_string : apacket -> string
val output_to_string : output -> string
val pp_output : Format.formatter -> output -> unit

val abstract_packet : Quic_packet.t -> apacket
(** α on a decoded packet: keep the packet type and the kinds of its
    frames, dropping PADDING. *)

val abstract_reset : apacket
(** The abstract view of a detected Stateless Reset. *)
