(** The complete QUIC System Under Learning: instrumented reference
    client + simulated network + profiled server, packaged as an
    Adapter (paper Figure 2, §6.2.2).

    Each abstract step runs γ through the reference client; when the
    client state cannot realize the requested symbol, nothing is sent
    and the answer is NIL — the closed-box analogue of QUIC-Tracker
    failing to build a packet it has no keys for. Every concrete packet
    exchanged is recorded in the Oracle Table. *)

type concrete = Quic_packet.t

val create :
  ?profile:Quic_profile.t ->
  ?client_config:Quic_client.config ->
  ?network:Prognosis_sul.Network.config ->
  seed:int64 ->
  unit ->
  (Quic_alphabet.symbol, Quic_alphabet.output, concrete, concrete)
  Prognosis_sul.Adapter.t
  * Quic_client.t
(** The client handle is returned alongside so analyses can inspect
    its property bookkeeping (flow-control violations, NCID sequence
    numbers, ...). *)

val sul :
  ?profile:Quic_profile.t ->
  ?client_config:Quic_client.config ->
  ?network:Prognosis_sul.Network.config ->
  seed:int64 ->
  unit ->
  (Quic_alphabet.symbol, Quic_alphabet.output) Prognosis_sul.Sul.t
