(** Simulated QUIC packet protection.

    The paper's central argument for reference-implementation-based
    concretization is that QUIC's key schedule makes hand-writing a
    mapper intractable: packets are encrypted with keys derived from
    handshake secrets, so the Adapter must run real protocol logic.
    This module reproduces that structure — per-level secrets (initial
    keys derived from the client's destination connection id, handshake
    and application keys derived from randoms exchanged in CRYPTO
    frames), per-direction keys, an authenticated stream cipher — using
    a non-cryptographic PRF (iterated splitmix64). The *shape* is
    faithful: a receiver without the right per-level secret cannot
    decode a packet, and tampered ciphertext fails authentication.
    This is NOT real cryptography and offers no confidentiality. *)

type level = Initial_level | Handshake_level | Application_level

val level_to_string : level -> string

type direction = Client_to_server | Server_to_client

type t
(** A mutable key schedule tracking which secrets are available. *)

val create : unit -> t

val install_initial : t -> dcid:string -> unit
(** Derive initial secrets from the client's first destination
    connection id (both endpoints can compute these, as in RFC 9001). *)

val install_handshake : t -> client_random:string -> server_random:string -> unit
(** Derive handshake secrets once ClientHello/ServerHello randoms have
    been exchanged; application secrets are derived at the same time
    (one-round-trip handshake). *)

val drop_level : t -> level -> unit
(** Discard keys for a level (e.g. initial keys after handshake). *)

val update_application : t -> unit
(** Key update (RFC 9001 §6): replace the application secrets with the
    next generation (derived from the current ones) and flip the key
    phase. Both endpoints performing the same number of updates stay in
    sync. No-op when application keys are not installed. *)

val application_phase : t -> int
(** Number of key updates performed (the key-phase bit is its parity). *)

val has_level : t -> level -> bool

val tag_length : int

val seal :
  t -> level -> direction -> pn:int -> header:string -> string -> string option
(** [seal t level dir ~pn ~header plaintext] encrypts and authenticates
    (binding header and packet number), or [None] when the level's keys
    are not installed. *)

val open_ :
  t -> level -> direction -> pn:int -> header:string -> string -> string option
(** Decrypt and verify; [None] on missing keys or authentication
    failure. *)

val open_updated_application :
  t -> direction -> pn:int -> header:string -> string -> string option
(** Verify a 1-RTT payload against the *next* key generation without
    committing the update (the receiver side of a peer-initiated key
    update: commit with {!update_application} on success). *)

val stateless_reset_token : dcid:string -> string
(** The 16-byte stateless reset token associated with a connection id
    (derivable by both endpoints in this simulation). *)

val hash64 : string -> int64
(** The underlying (non-cryptographic) 64-bit hash, exposed for tests. *)
