lib/quic/quic_adapter.mli: Prognosis_sul Quic_alphabet Quic_client Quic_packet Quic_profile
