lib/quic/quic_client.mli: Frame Prognosis_sul Quic_alphabet Quic_packet
