lib/quic/frame.mli: Buffer Format
