lib/quic/varint.ml: Buffer Char String
