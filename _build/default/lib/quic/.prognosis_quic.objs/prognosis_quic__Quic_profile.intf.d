lib/quic/quic_profile.mli:
