lib/quic/quic_alphabet.mli: Format Frame Quic_packet
