lib/quic/frame.ml: Buffer Char Format List Printf String Varint
