lib/quic/quic_alphabet.ml: Array Format Frame List Printf Quic_packet String
