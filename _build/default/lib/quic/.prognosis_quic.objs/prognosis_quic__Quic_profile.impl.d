lib/quic/quic_profile.ml: List String
