lib/quic/quic_client.ml: Char Frame List Printf Prognosis_sul Quic_alphabet Quic_crypto Quic_packet String
