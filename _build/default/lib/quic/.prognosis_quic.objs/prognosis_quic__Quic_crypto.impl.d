lib/quic/quic_crypto.ml: Char Int64 Printf String
