lib/quic/quic_server.mli: Prognosis_sul Quic_profile
