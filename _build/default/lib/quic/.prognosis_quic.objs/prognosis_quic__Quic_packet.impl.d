lib/quic/quic_packet.ml: Buffer Char Format Frame Int64 List Printf Quic_crypto String Varint
