lib/quic/quic_packet.mli: Format Frame Quic_crypto
