lib/quic/quic_crypto.mli:
