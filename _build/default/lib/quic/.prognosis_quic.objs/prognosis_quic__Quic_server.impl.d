lib/quic/quic_server.ml: Char Frame Hashtbl List Printf Prognosis_sul Quic_crypto Quic_packet Quic_profile Stdlib String
