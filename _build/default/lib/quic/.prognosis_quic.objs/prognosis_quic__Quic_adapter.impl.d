lib/quic/quic_adapter.ml: List Prognosis_sul Quic_alphabet Quic_client Quic_packet Quic_server
