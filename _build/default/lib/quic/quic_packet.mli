(** QUIC packets: the 7 packet types (paper §6.2.1) and their wire
    codec, including packet protection via {!Quic_crypto}.

    Long-header packets (Initial, 0-RTT, Handshake, Retry, Version
    Negotiation) follow the RFC 9000 invariants layout; short-header
    (1-RTT) packets use a fixed 8-byte connection id. Stateless Reset
    is wire-compatible with a short-header packet and is recognized by
    its trailing 16-byte token, exactly as in the RFC — a receiver that
    fails to decrypt checks the token. *)

type ptype =
  | Initial
  | Zero_rtt
  | Handshake
  | Retry
  | Version_negotiation
  | Short
  | Stateless_reset

val ptype_to_string : ptype -> string
val all_ptypes : ptype list

val cid_length : int
(** Fixed connection-id length (8). *)

val draft29 : int
(** The wire version number used by default (0xff00001d). *)

type t = {
  ptype : ptype;
  version : int;
  dcid : string;
  scid : string;
  token : string;  (** Initial (possibly empty) and Retry *)
  pn : int;  (** packet number; -1 for Retry/VN/Stateless Reset *)
  frames : Frame.t list;  (** decrypted payload *)
}

val pp : Format.formatter -> t -> unit

val make :
  ?version:int ->
  ?scid:string ->
  ?token:string ->
  ?pn:int ->
  ?frames:Frame.t list ->
  ptype ->
  dcid:string ->
  t

val level : ptype -> Quic_crypto.level option
(** Encryption level of a packet type; [None] for the unprotected
    types (Retry, Version Negotiation, Stateless Reset). *)

val encode :
  crypto:Quic_crypto.t -> sender:Quic_crypto.direction -> t -> string option
(** Serialize and protect. [None] when the required encryption level
    has no keys installed (the sender cannot build this packet yet). *)

val encode_stateless_reset : rand:(int -> string) -> token:string -> string
(** A stateless reset datagram: unpredictable bits followed by the
    16-byte token ([rand n] must supply [n] random bytes). *)

val retry_integrity_tag : dcid:string -> scid:string -> token:string -> string

type decode_result =
  | Decoded of t
  | Reset_detected of string  (** matching stateless-reset token *)
  | Undecodable of string  (** reason *)

val decode :
  crypto:Quic_crypto.t ->
  sender:Quic_crypto.direction ->
  reset_tokens:string list ->
  string ->
  decode_result
(** Parse and decrypt one datagram. A short-header datagram that fails
    authentication is checked against [reset_tokens] to detect a
    stateless reset. *)
