module Rng = Prognosis_sul.Rng
module Mealy = Prognosis_automata.Mealy

type 'a t = {
  alphabet : 'a array;
  dim : int;
  initial : float array;
  transitions : float array array array;
  final : float array;
}

let make ~alphabet ~initial ~transitions ~final =
  let dim = Array.length initial in
  if Array.length final <> dim then invalid_arg "Wfa.make: final vector arity";
  if Array.length transitions <> Array.length alphabet then
    invalid_arg "Wfa.make: one transition matrix per symbol";
  Array.iter
    (fun m ->
      if Array.length m <> dim || Array.exists (fun r -> Array.length r <> dim) m
      then invalid_arg "Wfa.make: transition matrix shape")
    transitions;
  { alphabet; dim; initial; transitions; final }

let states w = w.dim

let index_of alphabet x =
  let n = Array.length alphabet in
  let rec loop i =
    if i >= n then invalid_arg "Wfa: symbol outside the alphabet"
    else if alphabet.(i) = x then i
    else loop (i + 1)
  in
  loop 0

let vec_mat v m dim =
  Array.init dim (fun j ->
      let acc = ref 0.0 in
      for i = 0 to dim - 1 do
        acc := !acc +. (v.(i) *. m.(i).(j))
      done;
      !acc)

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let evaluate w word =
  let v =
    List.fold_left
      (fun v x -> vec_mat v w.transitions.(index_of w.alphabet x) w.dim)
      (Array.copy w.initial) word
  in
  dot v w.final

type 'a equivalence = 'a t -> 'a list option

let random_eq ~rng ~mq ~tolerance ~max_tests ~max_len alphabet hypothesis =
  let n = Array.length alphabet in
  let rec loop k =
    if k = 0 then None
    else begin
      let len = Rng.int rng (max_len + 1) in
      let word = List.init len (fun _ -> alphabet.(Rng.int rng n)) in
      let target = mq word in
      let predicted = evaluate hypothesis word in
      let scale = 1.0 +. Float.abs target in
      if Float.abs (target -. predicted) > tolerance *. scale then Some word
      else loop (k - 1)
    end
  in
  loop max_tests

(* --- linear algebra: expressing a vector in the span of a row set --- *)

(* Echelonized basis with coefficient tracking: each element is
   (reduced_row, coeffs, pivot_column) where reduced_row =
   Σ coeffs_i · original_rows_i and reduced_row.(pivot) is its leading
   entry. *)
type basis = {
  mutable rows : (float array * float array * int) list; (* reverse order *)
  n_original : int;
}

let reduce_against basis (row, coeffs) tol =
  let row = Array.copy row and coeffs = Array.copy coeffs in
  List.iter
    (fun (brow, bcoeffs, pivot) ->
      let factor = row.(pivot) /. brow.(pivot) in
      if Float.abs factor > 0.0 then begin
        Array.iteri (fun j v -> row.(j) <- row.(j) -. (factor *. v)) brow;
        Array.iteri
          (fun j v -> coeffs.(j) <- coeffs.(j) -. (factor *. v))
          bcoeffs
      end)
    (List.rev basis.rows);
  let scale =
    Array.fold_left (fun acc v -> Stdlib.max acc (Float.abs v)) 1.0 row
  in
  ignore scale;
  let pivot = ref (-1) in
  let best = ref tol in
  Array.iteri
    (fun j v ->
      if Float.abs v > !best then begin
        best := Float.abs v;
        pivot := j
      end)
    row;
  (row, coeffs, !pivot)

(* Attempt to express [row] in the current span. For pure membership
   queries [self] is the zero vector and [Ok coeffs] gives the
   combination over the original rows; when inserting the i-th original
   row itself, [self] must be the i-th unit vector so the stored
   coefficient vector correctly expresses the reduced row in terms of
   the original rows. *)
let express ?self basis row tol =
  let coeffs =
    match self with
    | Some c -> Array.copy c
    | None -> Array.make basis.n_original 0.0
  in
  let reduced, out_coeffs, pivot = reduce_against basis (row, coeffs) tol in
  if pivot < 0 then
    (* 0 = row + (out_coeffs - self)·rows, i.e. row = -(out_coeffs)·rows
       when self = 0. *)
    Ok (Array.map (fun c -> -.c) out_coeffs)
  else Error (reduced, out_coeffs, pivot)

(* --- the Hankel learner --- *)

let learn ?(tolerance = 1e-6) ?(max_rounds = 100) ~alphabet ~mq ~eq () =
  let n_sym = Array.length alphabet in
  if n_sym = 0 then invalid_arg "Wfa.learn: empty alphabet";
  (* Suffix list (grows); prefix list with their Hankel rows. *)
  let suffixes = ref [ [] ] in
  let prefixes = ref [ [] ] in
  let memo = Hashtbl.create 256 in
  let f w =
    match Hashtbl.find_opt memo w with
    | Some v -> v
    | None ->
        let v = mq w in
        Hashtbl.add memo w v;
        v
  in
  let row_of p = Array.of_list (List.map (fun s -> f (p @ s)) !suffixes) in
  (* Keep only prefixes with independent rows (ε always first). *)
  let rebuild_independent () =
    let kept = ref [] in
    let basis = { rows = []; n_original = List.length !prefixes } in
    List.iteri
      (fun _i p ->
        let row = row_of p in
        match express basis row tolerance with
        | Ok _ -> ()
        | Error entry ->
            basis.rows <- entry :: basis.rows;
            kept := p :: !kept)
      !prefixes;
    prefixes := List.rev !kept
  in
  let close () =
    let changed = ref true in
    while !changed do
      changed := false;
      let basis = { rows = []; n_original = List.length !prefixes } in
      List.iter
        (fun p ->
          match express basis (row_of p) tolerance with
          | Ok _ -> () (* cannot happen for independent prefixes *)
          | Error entry -> basis.rows <- entry :: basis.rows)
        !prefixes;
      let additions = ref [] in
      List.iter
        (fun p ->
          Array.iter
            (fun sym ->
              let candidate = p @ [ sym ] in
              if
                (not (List.mem candidate !prefixes))
                && not (List.mem candidate !additions)
              then begin
                match express basis (row_of candidate) tolerance with
                | Ok _ -> ()
                | Error entry ->
                    basis.rows <- entry :: basis.rows;
                    additions := candidate :: !additions
              end)
            alphabet)
        !prefixes;
      if !additions <> [] then begin
        prefixes := !prefixes @ List.rev !additions;
        changed := true
      end
    done
  in
  let build_hypothesis () =
    let ps = Array.of_list !prefixes in
    let dim = Array.length ps in
    let basis = { rows = []; n_original = dim } in
    Array.iteri
      (fun i p ->
        let self = Array.init dim (fun j -> if j = i then 1.0 else 0.0) in
        match express ~self basis (row_of p) tolerance with
        | Ok _ -> ()
        | Error entry -> basis.rows <- entry :: basis.rows)
      ps;
    let coeffs_of row =
      match express basis row tolerance with
      | Ok c -> Some c
      | Error _ -> None
    in
    let transitions =
      Array.init n_sym (fun si ->
          Array.init dim (fun i ->
              match coeffs_of (row_of (ps.(i) @ [ alphabet.(si) ])) with
              | Some c -> c
              | None -> Array.make dim nan))
    in
    if
      Array.exists
        (fun m -> Array.exists (fun r -> Array.exists Float.is_nan r) m)
        transitions
    then None
    else begin
      let initial = Array.init dim (fun i -> if ps.(i) = [] then 1.0 else 0.0) in
      let final = Array.map (fun p -> f p) ps in
      Some (make ~alphabet ~initial ~transitions ~final)
    end
  in
  let rec loop round =
    if round > max_rounds then Error "Wfa.learn: max_rounds exceeded"
    else begin
      rebuild_independent ();
      close ();
      match build_hypothesis () with
      | None -> Error "Wfa.learn: closing failed (numerical degeneracy?)"
      | Some hypothesis -> (
          match eq hypothesis with
          | None -> Ok hypothesis
          | Some cex ->
              let before = (List.length !prefixes, List.length !suffixes) in
              (* All suffixes of the counterexample join the column set;
                 all prefixes become row candidates. *)
              let rec suffixes_of = function
                | [] -> [ [] ]
                | _ :: rest as w -> w :: suffixes_of rest
              in
              List.iter
                (fun s -> if not (List.mem s !suffixes) then suffixes := !suffixes @ [ s ])
                (suffixes_of cex);
              let rec prefixes_of acc = function
                | [] -> [ List.rev acc ]
                | x :: rest -> List.rev acc :: prefixes_of (x :: acc) rest
              in
              List.iter
                (fun p -> if not (List.mem p !prefixes) then prefixes := !prefixes @ [ p ])
                (prefixes_of [] cex);
              rebuild_independent ();
              close ();
              let after = (List.length !prefixes, List.length !suffixes) in
              if after = before then
                Error "Wfa.learn: counterexample produced no progress"
              else loop (round + 1))
    end
  in
  loop 1

let expected_count ~skeleton ~weight word =
  let rec walk state acc = function
    | [] -> acc
    | x :: rest ->
        let state', _ = Mealy.step skeleton state x in
        walk state' (acc +. weight ~state ~input:x) rest
  in
  walk (Mealy.initial skeleton) 0.0 word
