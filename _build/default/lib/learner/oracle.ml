type stats = {
  mutable membership_queries : int;
  mutable membership_symbols : int;
  mutable equivalence_queries : int;
  mutable test_words : int;
}

let fresh_stats () =
  {
    membership_queries = 0;
    membership_symbols = 0;
    equivalence_queries = 0;
    test_words = 0;
  }

type ('i, 'o) membership = { ask : 'i list -> 'o list; stats : stats }

let of_fun ?stats f =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let ask word =
    stats.membership_queries <- stats.membership_queries + 1;
    stats.membership_symbols <- stats.membership_symbols + List.length word;
    f word
  in
  { ask; stats }

let of_sul ?stats sul = of_fun ?stats (Prognosis_sul.Sul.query sul)

let of_sul_checked ?stats ?(config = Prognosis_sul.Nondet.default) ~pp sul =
  of_fun ?stats (Prognosis_sul.Nondet.deterministic_query config ~pp sul)

type ('i, 'o) equivalence =
  ('i, 'o) membership -> ('i, 'o) Prognosis_automata.Mealy.t -> 'i list option
