lib/learner/wfa.ml: Array Float Hashtbl List Prognosis_automata Prognosis_sul Stdlib
