lib/learner/eq_oracle.ml: Array List Oracle Prognosis_automata Prognosis_sul
