lib/learner/eq_oracle.mli: Oracle Prognosis_automata Prognosis_sul
