lib/learner/passive.ml: Array Cache List Prognosis_automata Prognosis_sul Queue
