lib/learner/passive.mli: Cache Prognosis_automata Prognosis_sul
