lib/learner/lstar.ml: Array Hashtbl List Oracle Prognosis_automata
