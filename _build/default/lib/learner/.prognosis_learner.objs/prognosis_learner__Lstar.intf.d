lib/learner/lstar.mli: Oracle Prognosis_automata
