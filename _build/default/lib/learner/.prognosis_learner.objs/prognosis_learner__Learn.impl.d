lib/learner/learn.ml: Cache Logs Lstar Oracle Prognosis_automata Prognosis_sul Ttt
