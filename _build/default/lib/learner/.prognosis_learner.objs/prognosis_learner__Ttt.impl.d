lib/learner/ttt.ml: Array Hashtbl List Oracle Prognosis_automata Queue
