lib/learner/learn.mli: Oracle Prognosis_automata Prognosis_sul
