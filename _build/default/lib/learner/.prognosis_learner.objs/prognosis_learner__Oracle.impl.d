lib/learner/oracle.ml: List Prognosis_automata Prognosis_sul
