lib/learner/wfa.mli: Prognosis_automata Prognosis_sul
