lib/learner/cache.mli: Oracle
