lib/learner/oracle.mli: Prognosis_automata Prognosis_sul
