lib/learner/ttt.mli: Oracle Prognosis_automata
