lib/learner/cache.ml: Hashtbl List Oracle
