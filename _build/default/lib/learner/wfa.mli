(** Learning weighted finite automata (multiplicity automata) over the
    reals.

    The paper's future-work section (§8) singles out quantitative
    models — "congestion, latency, or memory usage properties" — as the
    most impactful direction, pointing at active learning of weighted
    automata [Balle & Mohri 2015; van Heerdt et al. 2020]. This module
    implements the classical Hankel-matrix algorithm [Beimel et al.
    2000]: rows are prefixes whose Hankel rows are kept linearly
    independent, columns are suffixes, transition matrices are obtained
    by solving linear systems, and counterexamples contribute their
    suffixes until the hypothesis stabilizes. Arithmetic is floating
    point with a configurable rank tolerance.

    A WFA computes f(w) = α · M_{w₁} ⋯ M_{wₙ} · β. Expected values of
    protocol quantities over deterministic skeletons with per-transition
    probabilities (e.g. the expected number of Stateless Resets the
    mvfst server emits along an input word — Issue 2, quantified) are
    of exactly this form; see the tests and the quantitative example. *)

type 'a t = {
  alphabet : 'a array;
  dim : int;
  initial : float array;  (** α, length [dim] *)
  transitions : float array array array;  (** per alphabet index: dim×dim *)
  final : float array;  (** β *)
}

val make :
  alphabet:'a array ->
  initial:float array ->
  transitions:float array array array ->
  final:float array ->
  'a t
(** Validates dimensions. *)

val evaluate : 'a t -> 'a list -> float

val states : 'a t -> int

type 'a equivalence = 'a t -> 'a list option
(** A counterexample word on which the hypothesis value differs from
    the target function, or [None]. *)

val random_eq :
  rng:Prognosis_sul.Rng.t ->
  mq:('a list -> float) ->
  tolerance:float ->
  max_tests:int ->
  max_len:int ->
  'a array ->
  'a equivalence
(** Random-word equivalence testing against the target function. *)

val learn :
  ?tolerance:float ->
  ?max_rounds:int ->
  alphabet:'a array ->
  mq:('a list -> float) ->
  eq:'a equivalence ->
  unit ->
  ('a t, string) result
(** Active learning of the target function. [tolerance] (default 1e-6)
    governs the linear-independence tests; [mq] must be numerically
    consistent (exact or low-noise). Returns [Error] when [max_rounds]
    (default 100) is exhausted or numerics degenerate. *)

val expected_count :
  skeleton:('i, 'o) Prognosis_automata.Mealy.t ->
  weight:(state:int -> input:'i -> float) ->
  'i list ->
  float
(** The expected-value function ∑ steps weight(state, input) along the
    deterministic path of [skeleton] — the quantitative protocol
    functions the module is demonstrated on (e.g. [weight] = Stateless
    Reset probability of each transition). Such functions are always
    WFA-representable with dim = states + 1. *)
