let src = Logs.Src.create "prognosis.learn" ~doc:"Learning driver"

module Log = (val Logs.src_log src : Logs.LOG)

type algorithm = L_star | Ttt_tree

type ('i, 'o) result = {
  model : ('i, 'o) Prognosis_automata.Mealy.t;
  rounds : int;
  stats : Oracle.stats;
  cache_hits : int;
  cache_misses : int;
}

let dispatch algorithm ?max_rounds ~inputs ~mq ~eq () =
  match algorithm with
  | L_star -> Lstar.learn ?max_rounds ~inputs ~mq ~eq ()
  | Ttt_tree -> Ttt.learn ?max_rounds ~inputs ~mq ~eq ()

let log_result name (model : ('i, 'o) Prognosis_automata.Mealy.t) rounds
    (stats : Oracle.stats) =
  Log.info (fun m ->
      m "%s: %d states, %d transitions, %d membership queries, %d rounds" name
        (Prognosis_automata.Mealy.size model)
        (Prognosis_automata.Mealy.transitions model)
        stats.Oracle.membership_queries rounds)

let run_mq ?(algorithm = Ttt_tree) ?max_rounds ~inputs ~mq ~eq () =
  let model, rounds = dispatch algorithm ?max_rounds ~inputs ~mq ~eq () in
  log_result "run_mq" model rounds mq.Oracle.stats;
  { model; rounds; stats = mq.Oracle.stats; cache_hits = 0; cache_misses = 0 }

let run ?(algorithm = Ttt_tree) ?max_rounds ?(cache = true) ~inputs ~sul ~eq () =
  let raw = Oracle.of_sul sul in
  if cache then begin
    let c = Cache.create () in
    let mq = Cache.wrap c raw in
    let model, rounds = dispatch algorithm ?max_rounds ~inputs ~mq ~eq () in
    log_result sul.Prognosis_sul.Sul.description model rounds raw.Oracle.stats;
    {
      model;
      rounds;
      stats = raw.Oracle.stats;
      cache_hits = Cache.hits c;
      cache_misses = Cache.misses c;
    }
  end
  else begin
    let model, rounds = dispatch algorithm ?max_rounds ~inputs ~mq:raw ~eq () in
    { model; rounds; stats = raw.Oracle.stats; cache_hits = 0; cache_misses = 0 }
  end
