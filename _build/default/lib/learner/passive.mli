(** Passive model learning from logged traces.

    The paper's future-work section (§8) proposes speeding up active
    learning with passive learning over logs, "to avoid resorting to so
    many expensive queries". This module provides the two standard
    pieces:

    {ul
    {- a prefix-tree acceptor ({!pta}) and an RPNI-style state-merging
       learner ({!rpni}) adapted to Mealy machines: states are merged in
       breadth-first order whenever their observed outputs are
       compatible, folding the remainder of the tree deterministically;}
    {- cache preloading ({!preload}): logged traces are inserted into
       the active learner's membership cache, so queries already
       answered by the logs never reach the implementation — the
       passive/active hybrid measured by the benchmark ablations.}}

    Passive learning alone gives no correctness guarantee (the sample
    may under-approximate the behaviour); the hybrid keeps the active
    learner's guarantees while spending fewer live queries. *)

type ('i, 'o) sample = ('i list * 'o list) list
(** Observed queries: input word paired with the output word of equal
    length. *)

val sample_of_words :
  ('i, 'o) Prognosis_sul.Sul.t -> 'i list list -> ('i, 'o) sample
(** Execute words against a SUL to build a sample (a stand-in for
    reading logs). *)

val random_sample :
  rng:Prognosis_sul.Rng.t ->
  inputs:'i array ->
  words:int ->
  max_len:int ->
  ('i, 'o) Prognosis_sul.Sul.t ->
  ('i, 'o) sample

val pta :
  inputs:'i array -> default:'o -> ('i, 'o) sample -> ('i, 'o) Prognosis_automata.Mealy.t
(** The prefix-tree machine of the sample, completed into a total
    machine: unobserved transitions self-loop with the [default]
    output.
    @raise Invalid_argument on inconsistent samples (same input word,
    different outputs). *)

val rpni :
  inputs:'i array -> default:'o -> ('i, 'o) sample -> ('i, 'o) Prognosis_automata.Mealy.t
(** State-merged generalization of {!pta}: merges are attempted in
    canonical (breadth-first) order and kept when no observed output
    conflicts. The result is always consistent with the sample. *)

val consistent :
  ('i, 'o) Prognosis_automata.Mealy.t -> ('i, 'o) sample -> bool
(** Does the machine reproduce every trace of the sample? *)

val preload : ('i, 'o) Cache.t -> ('i, 'o) sample -> unit
(** Insert logged traces into a membership cache (the hybrid of §8). *)
