module Mealy = Prognosis_automata.Mealy

type ('i, 'o) sample = ('i list * 'o list) list

let sample_of_words sul words =
  List.map (fun w -> (w, Prognosis_sul.Sul.query sul w)) words

let random_sample ~rng ~inputs ~words ~max_len sul =
  let word () =
    let len = 1 + Prognosis_sul.Rng.int rng max_len in
    List.init len (fun _ -> inputs.(Prognosis_sul.Rng.int rng (Array.length inputs)))
  in
  sample_of_words sul (List.init words (fun _ -> word ()))

(* Partial Mealy machines under construction: -1 marks an absent
   transition, [None] an unobserved output. *)
type 'o partial = {
  mutable size : int;
  mutable delta : int array array; (* [state].[input] *)
  mutable lambda : 'o option array array;
}

let grow p n_inputs =
  let s = p.size in
  if s >= Array.length p.delta then begin
    let cap = max 16 (2 * Array.length p.delta) in
    let delta = Array.init cap (fun i -> if i < s then p.delta.(i) else Array.make n_inputs (-1)) in
    let lambda =
      Array.init cap (fun i -> if i < s then p.lambda.(i) else Array.make n_inputs None)
    in
    p.delta <- delta;
    p.lambda <- lambda
  end;
  p.size <- s + 1;
  s

let build_pta ~inputs sample =
  let n = Array.length inputs in
  let index x =
    let rec loop i =
      if i >= n then invalid_arg "Passive: symbol outside the alphabet"
      else if inputs.(i) = x then i
      else loop (i + 1)
    in
    loop 0
  in
  let p = { size = 0; delta = [||]; lambda = [||] } in
  ignore (grow p n);
  List.iter
    (fun (word, outputs) ->
      if List.length word <> List.length outputs then
        invalid_arg "Passive: input/output length mismatch";
      let state = ref 0 in
      List.iter2
        (fun x o ->
          let i = index x in
          (match p.lambda.(!state).(i) with
          | Some o' when o' <> o ->
              invalid_arg "Passive: inconsistent sample (nondeterministic outputs)"
          | Some _ -> ()
          | None -> p.lambda.(!state).(i) <- Some o);
          let succ = p.delta.(!state).(i) in
          if succ >= 0 then state := succ
          else begin
            let fresh = grow p n in
            p.delta.(!state).(i) <- fresh;
            state := fresh
          end)
        word outputs)
    sample;
  p

let totalize ~inputs ~default p =
  let n = Array.length inputs in
  let delta =
    Array.init p.size (fun s ->
        Array.init n (fun i -> if p.delta.(s).(i) >= 0 then p.delta.(s).(i) else s))
  in
  let lambda =
    Array.init p.size (fun s ->
        Array.init n (fun i ->
            match p.lambda.(s).(i) with Some o -> o | None -> default))
  in
  Mealy.make ~size:p.size ~initial:0 ~inputs ~delta ~lambda

let pta ~inputs ~default sample =
  Mealy.trim (totalize ~inputs ~default (build_pta ~inputs sample))

(* RPNI merging. The merge of [b] into [r] redirects b's parent edge to
   r and folds b's subtree into r, failing on any output conflict. The
   attempt works on a scratch copy; success commits it. *)
exception Conflict

let copy_partial p =
  {
    size = p.size;
    delta = Array.map Array.copy p.delta;
    lambda = Array.map Array.copy p.lambda;
  }

let rec fold p n r b =
  if r <> b then
    for i = 0 to n - 1 do
      (match (p.lambda.(r).(i), p.lambda.(b).(i)) with
      | Some a, Some c -> if a <> c then raise Conflict
      | None, (Some _ as o) -> p.lambda.(r).(i) <- o
      | (Some _ | None), None -> ());
      let sr = p.delta.(r).(i) and sb = p.delta.(b).(i) in
      if sb >= 0 then
        if sr >= 0 then fold p n sr sb else p.delta.(r).(i) <- sb
    done

let try_merge p n parent_edges r b =
  let scratch = copy_partial p in
  (* Redirect every edge into b (in a tree there is exactly one). *)
  List.iter
    (fun (s, i) -> scratch.delta.(s).(i) <- r)
    parent_edges;
  match fold scratch n r b with
  | () -> Some scratch
  | exception Conflict -> None

let rpni ~inputs ~default sample =
  let n = Array.length inputs in
  let p = ref (build_pta ~inputs sample) in
  (* Reachability changes as merges happen; recompute the frontier each
     round. States are processed in their PTA (breadth-ish) order. *)
  let parents_of target =
    let acc = ref [] in
    for s = 0 to !p.size - 1 do
      for i = 0 to n - 1 do
        if !p.delta.(s).(i) = target then acc := (s, i) :: !acc
      done
    done;
    !acc
  in
  let reachable () =
    let seen = Array.make !p.size false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    let order = ref [] in
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      order := s :: !order;
      for i = 0 to n - 1 do
        let t = !p.delta.(s).(i) in
        if t >= 0 && not seen.(t) then begin
          seen.(t) <- true;
          Queue.add t queue
        end
      done
    done;
    List.rev !order
  in
  let red = ref [ 0 ] in
  let continue = ref true in
  while !continue do
    let order = reachable () in
    let blue =
      List.filter
        (fun s ->
          (not (List.mem s !red))
          && List.exists
               (fun r -> Array.exists (fun t -> t = s) !p.delta.(r))
               !red)
        order
    in
    match blue with
    | [] -> continue := false
    | b :: _ -> (
        let parents = parents_of b in
        let rec attempt = function
          | [] -> None
          | r :: rest -> (
              match try_merge !p n parents r b with
              | Some merged -> Some merged
              | None -> attempt rest)
        in
        match attempt !red with
        | Some merged -> p := merged
        | None -> red := !red @ [ b ])
  done;
  Mealy.minimize (totalize ~inputs ~default !p)

let consistent machine sample =
  List.for_all (fun (word, outputs) -> Mealy.run machine word = outputs) sample

let preload cache sample =
  List.iter (fun (word, outputs) -> Cache.insert cache word outputs) sample
