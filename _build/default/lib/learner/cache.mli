(** Prefix-tree membership-query cache.

    Learner algorithms ask many overlapping queries; because the SUL is
    reset before each query, the answer to any prefix of a cached word
    is also known. The cache stores full observed words in a trie and
    answers any query that is a prefix of a previously executed one
    without touching the SUL. *)

type ('i, 'o) t

val create : unit -> ('i, 'o) t

val insert : ('i, 'o) t -> 'i list -> 'o list -> unit
(** Records an executed query and its answer. Conflicting outputs for
    an already-cached prefix raise [Invalid_argument] — that situation
    means the SUL answered nondeterministically. *)

val lookup : ('i, 'o) t -> 'i list -> 'o list option

val size : ('i, 'o) t -> int
(** Number of trie nodes (an upper bound on distinct cached symbols). *)

val hits : ('i, 'o) t -> int
val misses : ('i, 'o) t -> int

val wrap : ('i, 'o) t -> ('i, 'o) Oracle.membership -> ('i, 'o) Oracle.membership
(** Caching view of a membership oracle: only cache misses reach the
    underlying oracle (and are counted in its statistics). *)
