module Mealy = Prognosis_automata.Mealy

type ('i, 'o) transition_stats = {
  source : int;
  input : 'i;
  outcomes : ('o * float) list;
  samples : int;
}

type ('i, 'o) t = {
  skeleton_ : ('i, 'o) Mealy.t;
  stats : ('i, 'o) transition_stats array array; (* [state].[input] *)
}

let estimate ?(samples_per_transition = 30) ~skeleton ~sul () =
  if samples_per_transition < 1 then
    invalid_arg "Stochastic.estimate: need at least one sample";
  let access = Mealy.access_words skeleton in
  let reachable = Mealy.reachable skeleton in
  let inputs = Mealy.inputs skeleton in
  let sample state i =
    let word = access.(state) @ [ inputs.(i) ] in
    let tally = Hashtbl.create 4 in
    for _ = 1 to samples_per_transition do
      let answer = Prognosis_sul.Sul.query sul word in
      match List.rev answer with
      | last :: _ ->
          let n = try Hashtbl.find tally last with Not_found -> 0 in
          Hashtbl.replace tally last (n + 1)
      | [] -> ()
    done;
    let outcomes =
      Hashtbl.fold
        (fun o n acc ->
          (o, float_of_int n /. float_of_int samples_per_transition) :: acc)
        tally []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    { source = state; input = inputs.(i); outcomes; samples = samples_per_transition }
  in
  let stats =
    Array.init (Mealy.size skeleton) (fun s ->
        Array.init (Array.length inputs) (fun i ->
            if reachable.(s) then sample s i
            else
              { source = s; input = inputs.(i); outcomes = []; samples = 0 }))
  in
  { skeleton_ = skeleton; stats }

let skeleton t = t.skeleton_

let transitions t =
  Array.to_list t.stats |> List.concat_map Array.to_list
  |> List.filter (fun ts -> ts.samples > 0)

let stochastic_transitions t =
  List.filter (fun ts -> List.length ts.outcomes > 1) (transitions t)

let probability t ~state ~input o =
  let i = Mealy.input_index t.skeleton_ input in
  match List.assoc_opt o t.stats.(state).(i).outcomes with
  | Some p -> p
  | None -> 0.0

let to_dot ?(name = "stochastic") ~input_pp ~output_pp t =
  let m = t.skeleton_ in
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "digraph %s {@\n  rankdir=LR;@\n  node [shape=circle];@\n" name;
  Format.fprintf fmt "  __start [shape=none,label=\"\"];@\n  __start -> s%d;@\n"
    (Mealy.initial m);
  let escape label = String.concat "\\\"" (String.split_on_char '"' label) in
  for s = 0 to Mealy.size m - 1 do
    for i = 0 to Mealy.alphabet_size m - 1 do
      let ts = t.stats.(s).(i) in
      if ts.samples > 0 then begin
        let s', _ = Mealy.step_idx m s i in
        let outcome_str =
          String.concat "\\n"
            (List.map
               (fun (o, p) -> Format.asprintf "%a (%.2f)" output_pp o p)
               ts.outcomes)
        in
        let label =
          Format.asprintf "%a /\\n%s" input_pp (Mealy.inputs m).(i) outcome_str
        in
        let attrs =
          if List.length ts.outcomes > 1 then ",color=red,fontcolor=red" else ""
        in
        Format.fprintf fmt "  s%d -> s%d [label=\"%s\"%s];@\n" s s' (escape label)
          attrs
      end
    done
  done;
  Format.fprintf fmt "}@.";
  Buffer.contents buf
