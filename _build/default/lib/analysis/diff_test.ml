module Mealy = Prognosis_automata.Mealy
module Testing = Prognosis_automata.Testing
module Sul = Prognosis_sul.Sul

type ('i, 'o) mismatch = {
  word : 'i list;
  outputs_a : 'o list;
  outputs_b : 'o list;
}

let collect ?(max_mismatches = 10) ~suite ~run_a ~run_b () =
  let rec loop acc count = function
    | [] -> List.rev acc
    | _ when count >= max_mismatches -> List.rev acc
    | word :: rest ->
        let outputs_a = run_a word and outputs_b = run_b word in
        if outputs_a <> outputs_b then
          loop ({ word; outputs_a; outputs_b } :: acc) (count + 1) rest
        else loop acc count rest
  in
  loop [] 0 suite

let run ?max_mismatches ~suite a b =
  collect ?max_mismatches ~suite ~run_a:(Sul.query a) ~run_b:(Sul.query b) ()

let model_guided ?(extra_states = 1) ?max_mismatches ~model sul =
  let suite = Testing.w_method ~extra_states model in
  collect ?max_mismatches ~suite ~run_a:(Mealy.run model) ~run_b:(Sul.query sul) ()

let suite_size ?(extra_states = 1) model =
  List.length (Testing.w_method ~extra_states model)
