lib/analysis/stochastic.mli: Format Prognosis_automata Prognosis_sul
