lib/analysis/visualize.ml: Array Buffer Format Fun Hashtbl Printf Prognosis_automata Queue String
