lib/analysis/model_diff.ml: Array Format Hashtbl List Option Prognosis_automata Queue
