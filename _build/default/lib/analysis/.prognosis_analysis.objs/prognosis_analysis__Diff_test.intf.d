lib/analysis/diff_test.mli: Prognosis_automata Prognosis_sul
