lib/analysis/stochastic.ml: Array Buffer Format Hashtbl List Prognosis_automata Prognosis_sul String
