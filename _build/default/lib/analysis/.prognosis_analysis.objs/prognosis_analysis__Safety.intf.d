lib/analysis/safety.mli: Format Prognosis_automata
