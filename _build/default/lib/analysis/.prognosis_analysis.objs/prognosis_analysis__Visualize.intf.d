lib/analysis/visualize.mli: Format Prognosis_automata
