lib/analysis/diff_test.ml: List Prognosis_automata Prognosis_sul
