lib/analysis/safety.ml: Array Format Hashtbl List Printf Prognosis_automata Queue
