lib/analysis/model_diff.mli: Format Prognosis_automata
