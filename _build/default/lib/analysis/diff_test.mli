(** Model-guided differential testing (paper §7).

    The paper positions Prognosis as a complement to differential
    testing [McKeeman 1998]: a learned model and the Adapter generate
    high-quality test cases that trigger complex behaviours — hard to
    reach in a closed-box setting with random inputs. This module runs
    the two directions:

    {ul
    {- {!run}: execute an explicit suite against two live SULs and
       collect the words where their answers differ;}
    {- {!model_guided}: derive a conformance suite (W-method) from the
       learned model of implementation A and execute it against
       implementation B — B's deviations from A's behaviour surface as
       replayable mismatches without ever learning a model of B.}} *)

type ('i, 'o) mismatch = {
  word : 'i list;
  outputs_a : 'o list;
  outputs_b : 'o list;
}

val run :
  ?max_mismatches:int ->
  suite:'i list list ->
  ('i, 'o) Prognosis_sul.Sul.t ->
  ('i, 'o) Prognosis_sul.Sul.t ->
  ('i, 'o) mismatch list
(** Execute every word on both SULs (default: collect at most 10
    mismatches). *)

val model_guided :
  ?extra_states:int ->
  ?max_mismatches:int ->
  model:('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) Prognosis_sul.Sul.t ->
  ('i, 'o) mismatch list
(** W-method suite from [model] (treated as implementation A's
    behaviour), executed against the given SUL (implementation B);
    [outputs_a] are the model's predictions. *)

val suite_size : ?extra_states:int -> ('i, 'o) Prognosis_automata.Mealy.t -> int
(** Number of test words {!model_guided} would run. *)
