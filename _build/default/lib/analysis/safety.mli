(** Temporal safety properties over learned models (paper §5).

    A property is a monitor automaton reading the model's (input,
    output) transition labels; checking "the traces of the model are a
    subset of those allowed by the property" reduces to finding a
    reachable rejecting state of the model × monitor product — decidable
    and fast for Mealy machines, exactly as the paper notes. Violating
    input words are returned as replayable counterexamples. *)

type ('i, 'o) t

val name : ('i, 'o) t -> string

val of_monitor : string -> ('i * 'o) Prognosis_automata.Dfa.t -> ('i, 'o) t

val never : string -> (('i * 'o) -> bool) -> ('i, 'o) t
(** The bad event never occurs on any transition. *)

val always : string -> (('i * 'o) -> bool) -> ('i, 'o) t
(** Every transition satisfies the predicate. *)

val after_always :
  string ->
  trigger:(('i * 'o) -> bool) ->
  then_:(('i * 'o) -> bool) ->
  ('i, 'o) t
(** Once a trigger transition has occurred, every later transition must
    satisfy [then_] ("after CONNECTION_CLOSE, the server stays
    silent"). *)

val respond_within :
  string ->
  trigger:(('i * 'o) -> bool) ->
  response:(('i * 'o) -> bool) ->
  within:int ->
  ('i, 'o) t
(** Bounded response — the decidable safety approximation of the
    liveness properties the paper mentions (§5): after a trigger
    transition, a response transition must occur within [within] steps.
    A transition may be both trigger and response (immediate
    satisfaction). *)

val conj : string -> ('i, 'o) t list -> ('i, 'o) t

val check :
  ('i, 'o) t -> ('i, 'o) Prognosis_automata.Mealy.t -> 'i list option
(** [None] when every trace of the model satisfies the property;
    otherwise a shortest violating input word. *)

val check_trace : ('i, 'o) t -> ('i * 'o) list -> int option
(** Position of the first violation in a concrete trace, if any (used
    for the randomized checking of extended machines, where the
    model-checking problem is undecidable — paper §5). *)

(** {2 Numeric trace properties}

    Properties about concrete quantities (paper §6.2.2's examples:
    "the sequence number on each newly-issued connection id must
    increase by 1", "packet numbers are always increasing", "an
    endpoint must not send data beyond the advertised limit") checked
    on observed value sequences. *)

type verdict = Holds | Violated of { index : int; reason : string }

val pp_verdict : Format.formatter -> verdict -> unit
val increases_by : stride:int -> int list -> verdict
val strictly_increasing : int list -> verdict
val bounded_by : limit:int -> int list -> verdict
