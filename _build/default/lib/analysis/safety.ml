module Mealy = Prognosis_automata.Mealy
module Dfa = Prognosis_automata.Dfa

type ('i, 'o) t = { name : string; monitor : ('i * 'o) Dfa.t }

let name t = t.name
let of_monitor name monitor = { name; monitor }

let never name bad =
  of_monitor name
    (Dfa.make ~size:2 ~initial:0
       ~delta:(fun s x -> if s = 1 || bad x then 1 else 0)
       ~accepting:(fun s -> s = 0))

let always name good = never name (fun x -> not (good x))

let after_always name ~trigger ~then_ =
  (* 0 = waiting for trigger, 1 = triggered, 2 = violated. *)
  of_monitor name
    (Dfa.make ~size:3 ~initial:0
       ~delta:(fun s x ->
         match s with
         | 0 -> if trigger x then 1 else 0
         | 1 -> if then_ x then 1 else 2
         | _ -> 2)
       ~accepting:(fun s -> s <> 2))

let respond_within name ~trigger ~response ~within =
  if within < 1 then invalid_arg "Safety.respond_within: bound must be >= 1";
  (* 0 = idle; 1..within = steps elapsed since the pending trigger;
     within+1 = violated. *)
  of_monitor name
    (Dfa.make ~size:(within + 2) ~initial:0
       ~delta:(fun s x ->
         if s = within + 1 then s
         else if s = 0 then if trigger x && not (response x) then 1 else 0
         else if response x then if trigger x then 1 else 0
         else if s = within then within + 1
         else s + 1)
       ~accepting:(fun s -> s <> within + 1))

let conj name props =
  match props with
  | [] -> always name (fun _ -> true)
  | first :: rest ->
      of_monitor name
        (List.fold_left (fun acc p -> Dfa.product acc p.monitor) first.monitor rest)

(* BFS over model × monitor; a reachable rejecting monitor state gives
   the shortest violating word. *)
let check t model =
  let n = Mealy.alphabet_size model in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let start = (Mealy.initial model, Dfa.initial t.monitor) in
  Hashtbl.add seen start ();
  Queue.add (fst start, snd start, []) queue;
  let result = ref None in
  if not (Dfa.accepting t.monitor (Dfa.initial t.monitor)) then result := Some [];
  (try
     while not (Queue.is_empty queue) do
       let sm, sd, path = Queue.pop queue in
       for i = 0 to n - 1 do
         let sym = (Mealy.inputs model).(i) in
         let sm', o = Mealy.step_idx model sm i in
         let sd' = Dfa.step t.monitor sd (sym, o) in
         if not (Dfa.accepting t.monitor sd') then begin
           result := Some (List.rev (sym :: path));
           raise Exit
         end;
         if not (Hashtbl.mem seen (sm', sd')) then begin
           Hashtbl.add seen (sm', sd') ();
           Queue.add (sm', sd', sym :: path) queue
         end
       done
     done
   with Exit -> ());
  !result

let check_trace t trace = Dfa.first_violation t.monitor trace

type verdict = Holds | Violated of { index : int; reason : string }

let pp_verdict fmt = function
  | Holds -> Format.pp_print_string fmt "holds"
  | Violated { index; reason } ->
      Format.fprintf fmt "violated at index %d: %s" index reason

let check_pairs f values =
  let rec loop idx = function
    | a :: (b :: _ as rest) -> (
        match f a b with
        | None -> loop (idx + 1) rest
        | Some reason -> Violated { index = idx + 1; reason })
    | [ _ ] | [] -> Holds
  in
  loop 0 values

let increases_by ~stride values =
  check_pairs
    (fun a b ->
      if b = a + stride then None
      else Some (Printf.sprintf "%d follows %d (expected %d)" b a (a + stride)))
    values

let strictly_increasing values =
  check_pairs
    (fun a b ->
      if b > a then None else Some (Printf.sprintf "%d does not exceed %d" b a))
    values

let bounded_by ~limit values =
  let rec loop idx = function
    | [] -> Holds
    | v :: rest ->
        if v <= limit then loop (idx + 1) rest
        else Violated { index = idx; reason = Printf.sprintf "%d exceeds limit %d" v limit }
  in
  loop 0 values
