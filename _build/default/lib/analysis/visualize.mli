(** Model visualisation (paper §5): Graphviz renderings of learned
    models and of the differences between two models, used to explain
    anomalies to developers. *)

val model_dot :
  ?name:string ->
  input_pp:(Format.formatter -> 'i -> unit) ->
  output_pp:(Format.formatter -> 'o -> unit) ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  string

val diff_dot :
  ?name:string ->
  input_pp:(Format.formatter -> 'i -> unit) ->
  output_pp:(Format.formatter -> 'o -> unit) ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  string
(** Renders the product of two models; edges where the outputs disagree
    are highlighted in red with both outputs on the label. *)

val write_file : path:string -> string -> unit
