(** Stochastic output annotation of learned models.

    The paper's future-work section (§8) asks for models of
    "environment quantities" — probabilities, latencies — beyond what
    deterministic Mealy machines express. This module provides the
    first step the Issue-2 analysis already hints at: given a learned
    skeleton and continued closed-box access to the SUL, estimate an
    empirical distribution of abstract outputs for each transition by
    repeated sampling. Deterministic transitions collapse to a single
    outcome with probability 1; a transition like mvfst's post-close
    probe surfaces as {RESET ↦ 0.82, NIL ↦ 0.18}.

    Skeletons are learned with the nondeterminism check set to accept
    majority answers, so the deterministic model exists even when some
    transitions are stochastic; this pass then quantifies exactly the
    transitions where the check saw disagreement. *)

type ('i, 'o) transition_stats = {
  source : int;
  input : 'i;
  outcomes : ('o * float) list;  (** probabilities, most likely first *)
  samples : int;
}

type ('i, 'o) t

val estimate :
  ?samples_per_transition:int ->
  skeleton:('i, 'o) Prognosis_automata.Mealy.t ->
  sul:('i, 'o) Prognosis_sul.Sul.t ->
  unit ->
  ('i, 'o) t
(** Samples every reachable transition [samples_per_transition] times
    (default 30): for each state, the state's access word is replayed
    and one more symbol appended; the final output is tallied.
    Transition sampling costs |states|·|Σ|·samples queries. *)

val skeleton : ('i, 'o) t -> ('i, 'o) Prognosis_automata.Mealy.t
val transitions : ('i, 'o) t -> ('i, 'o) transition_stats list

val stochastic_transitions : ('i, 'o) t -> ('i, 'o) transition_stats list
(** Only the transitions with more than one observed outcome — the
    quantified nondeterminism report. *)

val probability : ('i, 'o) t -> state:int -> input:'i -> 'o -> float
(** Estimated probability of a particular output on a transition
    (0 when never observed). *)

val to_dot :
  ?name:string ->
  input_pp:(Format.formatter -> 'i -> unit) ->
  output_pp:(Format.formatter -> 'o -> unit) ->
  ('i, 'o) t ->
  string
(** Rendering with probability-annotated edges; stochastic edges are
    highlighted. *)
