type ('i, 'o) t = {
  reset : unit -> unit;
  step : 'i -> 'o;
  description : string;
}

let make ?(description = "sul") ~reset ~step () = { reset; step; description }

let query sul word =
  sul.reset ();
  List.map sul.step word

let of_mealy m =
  let state = ref (Prognosis_automata.Mealy.initial m) in
  {
    reset = (fun () -> state := Prognosis_automata.Mealy.initial m);
    step =
      (fun x ->
        let s', o = Prognosis_automata.Mealy.step m !state x in
        state := s';
        o);
    description = "mealy";
  }

let counting sul =
  let resets = ref 0 and steps = ref 0 in
  let wrapped =
    {
      sul with
      reset =
        (fun () ->
          incr resets;
          sul.reset ());
      step =
        (fun x ->
          incr steps;
          sul.step x);
    }
  in
  (wrapped, fun () -> (!resets, !steps))
