type ('ci, 'co) step = { sent : 'ci list; received : 'co list }

type ('ai, 'ao, 'ci, 'co) entry = {
  abstract_inputs : 'ai list;
  abstract_outputs : 'ao list;
  steps : ('ci, 'co) step list;
}

let concrete_inputs entry = List.concat_map (fun s -> s.sent) entry.steps
let concrete_outputs entry = List.concat_map (fun s -> s.received) entry.steps

type ('ai, 'ao, 'ci, 'co) t = {
  table : ('ai list, ('ai, 'ao, 'ci, 'co) entry) Hashtbl.t;
  mutable order : 'ai list list; (* insertion order, newest first *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let add t ~abstract_inputs ~abstract_outputs ~steps =
  let entry = { abstract_inputs; abstract_outputs; steps } in
  if not (Hashtbl.mem t.table abstract_inputs) then
    t.order <- abstract_inputs :: t.order;
  Hashtbl.replace t.table abstract_inputs entry

let find t key = Hashtbl.find_opt t.table key

let entries t = List.rev_map (fun key -> Hashtbl.find t.table key) t.order

let size t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  t.order <- []

let longest t =
  Hashtbl.fold (fun key _ acc -> max acc (List.length key)) t.table 0
