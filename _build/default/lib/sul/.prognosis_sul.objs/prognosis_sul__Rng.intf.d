lib/sul/rng.mli:
