lib/sul/oracle_table.ml: Hashtbl List
