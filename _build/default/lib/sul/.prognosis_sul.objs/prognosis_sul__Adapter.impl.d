lib/sul/adapter.ml: List Oracle_table Sul
