lib/sul/inet.mli:
