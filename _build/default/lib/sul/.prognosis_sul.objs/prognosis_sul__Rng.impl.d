lib/sul/rng.ml: Char Int64 String
