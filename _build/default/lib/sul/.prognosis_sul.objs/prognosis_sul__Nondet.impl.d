lib/sul/nondet.ml: Hashtbl List Printf Sul
