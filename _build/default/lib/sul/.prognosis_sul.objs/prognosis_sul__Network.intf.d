lib/sul/network.mli: Rng
