lib/sul/network.ml: Bytes Char Rng String
