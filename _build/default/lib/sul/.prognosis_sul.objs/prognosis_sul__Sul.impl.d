lib/sul/sul.ml: List Prognosis_automata
