lib/sul/inet.ml: Bytes Char String
