lib/sul/adapter.mli: Oracle_table Sul
