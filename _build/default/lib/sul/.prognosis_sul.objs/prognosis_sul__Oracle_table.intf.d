lib/sul/oracle_table.mli:
