lib/sul/sul.mli: Prognosis_automata
