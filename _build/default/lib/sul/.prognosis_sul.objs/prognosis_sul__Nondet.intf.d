lib/sul/nondet.mli: Sul
