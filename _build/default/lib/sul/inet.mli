(** IPv4 and UDP codecs: the outermost layers of the native alphabet
    (paper Example 3.1 — "binary representations of packets that will
    be sent over the wire").

    The protocol adapters encapsulate every exchange the way a real
    stack would: TCP segments ride directly in IPv4 (protocol 6), QUIC
    and DTLS datagrams ride in UDP (protocol 17) inside IPv4. Headers
    carry real ones-complement checksums (including the UDP
    pseudo-header), so corruption injected by the simulated network is
    caught at the same layer it would be in practice. *)

module Ipv4 : sig
  type t = {
    src : int;  (** 32-bit address *)
    dst : int;
    ttl : int;
    protocol : int;  (** 6 = TCP, 17 = UDP *)
    payload : string;
  }

  val tcp_protocol : int
  val udp_protocol : int

  val encode : t -> string
  (** 20-byte header (no options) + payload; header checksum filled. *)

  val decode : string -> (t, string) result
end

module Udp : sig
  type t = { src_port : int; dst_port : int; payload : string }

  val encode : src_ip:int -> dst_ip:int -> t -> string
  (** 8-byte header + payload; checksum over the RFC 768 pseudo-header. *)

  val decode : src_ip:int -> dst_ip:int -> string -> (t, string) result
end

val wrap_tcp : src:int -> dst:int -> string -> string
(** A TCP segment inside IPv4. *)

val unwrap_tcp : string -> (string, string) result

val wrap_udp : src:int -> dst:int -> src_port:int -> dst_port:int -> string -> string
(** A datagram inside UDP inside IPv4. *)

val unwrap_udp : string -> (int * string, string) result
(** Returns (source port, payload): the source port feeds QUIC's
    address validation. *)
