type ('ai, 'ao, 'ci, 'co) t = {
  reset : unit -> unit;
  step : 'ai -> 'ao * 'ci list * 'co list;
  table : ('ai, 'ao, 'ci, 'co) Oracle_table.t;
  description : string;
}

let create ?(description = "adapter") ~reset ~step () =
  { reset; step; table = Oracle_table.create (); description }

let record t ~ai ~ao ~steps =
  if ai <> [] then
    Oracle_table.add t.table ~abstract_inputs:(List.rev ai)
      ~abstract_outputs:(List.rev ao) ~steps:(List.rev steps)

let query t word =
  t.reset ();
  let ai = ref [] and ao = ref [] and steps = ref [] in
  let outputs =
    List.map
      (fun a ->
        let o, sent, received = t.step a in
        ai := a :: !ai;
        ao := o :: !ao;
        steps := { Oracle_table.sent; received } :: !steps;
        o)
      word
  in
  record t ~ai:!ai ~ao:!ao ~steps:!steps;
  outputs

let to_sul t =
  (* Buffers for the query currently in flight; a reset flushes the
     previous query into the Oracle Table. *)
  let ai = ref [] and ao = ref [] and steps = ref [] in
  let flush () =
    record t ~ai:!ai ~ao:!ao ~steps:!steps;
    ai := [];
    ao := [];
    steps := []
  in
  Sul.make ~description:t.description
    ~reset:(fun () ->
      flush ();
      t.reset ())
    ~step:(fun a ->
      let o, sent, received = t.step a in
      ai := a :: !ai;
      ao := o :: !ao;
      steps := { Oracle_table.sent; received } :: !steps;
      o)
    ()
