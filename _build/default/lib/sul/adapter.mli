(** The protocol Adapter (paper §3.2).

    An Adapter owns the translation pair (α, γ): it concretizes
    abstract learner symbols into real packets via a reference
    implementation, transmits them to the target Implementation,
    abstracts the responses, and records every exchange in the Oracle
    Table. The five instrumentation properties of §3.2 are enforced by
    the protocol-specific constructors (see [Prognosis_tcp.Tcp_adapter]
    and [Prognosis_quic.Quic_adapter]); this module captures what they
    share. *)

type ('ai, 'ao, 'ci, 'co) t = {
  reset : unit -> unit;
      (** property (3): return reference and target to their initial state *)
  step : 'ai -> 'ao * 'ci list * 'co list;
      (** one abstract step; also reports the concrete packets sent to and
          received from the Implementation during the step *)
  table : ('ai, 'ao, 'ci, 'co) Oracle_table.t;
      (** property (4): the historic Oracle Table *)
  description : string;
}

val create :
  ?description:string ->
  reset:(unit -> unit) ->
  step:('ai -> 'ao * 'ci list * 'co list) ->
  unit ->
  ('ai, 'ao, 'ci, 'co) t

val query : ('ai, 'ao, 'ci, 'co) t -> 'ai list -> 'ao list
(** Resets, runs a whole abstract input word and records the resulting
    abstract/concrete trace pair in the Oracle Table. *)

val to_sul : ('ai, 'ao, 'ci, 'co) t -> ('ai, 'ao) Sul.t
(** View for the learner. Concrete packets stay hidden, but each query
    (delimited by resets) is still recorded in the Oracle Table when it
    completes, so synthesis can mine it later. *)
