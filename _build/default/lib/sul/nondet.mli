(** The nondeterminism check (paper §5, §6.2.4).

    Active learning expects the SUL to answer every query
    deterministically. Environmental effects (loss, latency) can
    nevertheless perturb single runs, so each query is executed a
    minimum number of times; disagreement triggers additional runs
    until either one answer reaches the required agreement fraction or
    the run budget is exhausted, in which case the query is reported as
    genuinely nondeterministic — itself a powerful analysis: this is
    how the paper found the mvfst connection-closure bug. *)

type config = {
  min_runs : int;  (** runs always performed (≥ 1) *)
  max_runs : int;  (** hard budget once disagreement is seen *)
  agreement : float;  (** fraction of runs that must agree, e.g. 0.9 *)
}

val default : config
(** 3 minimum runs, 50 maximum, 0.95 agreement. *)

type 'o observation = { answer : 'o list; count : int }

type 'o verdict =
  | Deterministic of 'o list
  | Nondeterministic of 'o observation list
      (** distinct answers, most frequent first *)

val query : config -> ('i, 'o) Sul.t -> 'i list -> 'o verdict

val distribution : runs:int -> ('i, 'o) Sul.t -> 'i list -> 'o observation list
(** Unconditionally runs the query [runs] times and reports the answer
    distribution (used to measure, e.g., the fraction of RESET
    responses after connection closure). *)

val frequency : 'o observation list -> ('o list -> bool) -> float
(** Fraction of runs whose answer satisfies the predicate. *)

exception Nondeterministic_sul of string
(** Raised by {!deterministic_query} when no answer reaches the
    agreement threshold. The payload describes the query. *)

val deterministic_query :
  config -> pp:('i list -> string) -> ('i, 'o) Sul.t -> 'i list -> 'o list
(** Majority answer under [config].
    @raise Nondeterministic_sul when the check fails. *)

val plurality_query : runs:int -> ('i, 'o) Sul.t -> 'i list -> 'o list
(** The most frequent answer across [runs] executions, with no
    agreement requirement. Whole-answer plurality is not
    prefix-consistent across separate calls; learners should use
    {!modal_oracle} instead. *)

val modal_oracle : runs:int -> ('i, 'o) Sul.t -> 'i list -> 'o list
(** A memoized, prefix-consistent query function approximating the
    SUL's *modal* Mealy machine: the answer for a word extends the
    (previously computed) answer of its longest proper prefix by the
    plurality of the final output over [runs] fresh executions. This
    lets the standard deterministic learners run against a genuinely
    stochastic implementation, learning its most-likely behaviour; the
    stochastic annotation pass then quantifies the per-transition
    distributions — a building block for the paper's §8 "environment
    quantities" direction. *)
