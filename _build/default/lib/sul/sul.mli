(** The System-Under-Learning interface.

    A SUL is anything that can be reset to an initial state and stepped
    one abstract input symbol at a time, producing one abstract output
    symbol. Learners interact with implementations only through this
    interface — the closed-box assumption of the paper. *)

type ('i, 'o) t = {
  reset : unit -> unit;
  step : 'i -> 'o;
  description : string;
}

val make :
  ?description:string -> reset:(unit -> unit) -> step:('i -> 'o) -> unit -> ('i, 'o) t

val query : ('i, 'o) t -> 'i list -> 'o list
(** Reset, then feed the whole input word, collecting outputs. *)

val of_mealy : ('i, 'o) Prognosis_automata.Mealy.t -> ('i, 'o) t
(** Wraps a known machine as a SUL (useful for testing learners). *)

val counting : ('i, 'o) t -> ('i, 'o) t * (unit -> int * int)
(** [counting sul] is a wrapper and a function returning
    [(resets, steps)] performed so far. *)
