type config = { loss : float; duplicate : float; corrupt : float }

let reliable = { loss = 0.0; duplicate = 0.0; corrupt = 0.0 }
let lossy p = { reliable with loss = p }

type t = {
  mutable cfg : config;
  rng : Rng.t;
  mutable transmitted : int;
  mutable dropped : int;
}

let create ?(config = reliable) rng =
  { cfg = config; rng; transmitted = 0; dropped = 0 }

let config t = t.cfg
let set_config t cfg = t.cfg <- cfg

let corrupt_byte rng payload =
  if String.length payload = 0 then payload
  else begin
    let pos = Rng.int rng (String.length payload) in
    let bit = Rng.int rng 8 in
    let b = Bytes.of_string payload in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let transmit t payload =
  t.transmitted <- t.transmitted + 1;
  if Rng.bool t.rng t.cfg.loss then begin
    t.dropped <- t.dropped + 1;
    []
  end
  else begin
    let payload =
      if Rng.bool t.rng t.cfg.corrupt then corrupt_byte t.rng payload else payload
    in
    if Rng.bool t.rng t.cfg.duplicate then [ payload; payload ] else [ payload ]
  end

let transmitted t = t.transmitted
let dropped t = t.dropped
