(** The Oracle Table: the cache of abstract↔concrete trace pairs
    accumulated while the Adapter answers learner queries (paper §3.2,
    property 4).

    Each entry records one complete query: the abstract input word the
    learner sent, the abstract output word it got back, and — aligned
    per step — the concrete packets the Adapter actually exchanged with
    the Implementation. The synthesis module (paper §4.3) mines these
    entries to recover register behaviours (sequence numbers,
    flow-control offsets, ...) that the abstract model hides. *)

type ('ci, 'co) step = { sent : 'ci list; received : 'co list }

type ('ai, 'ao, 'ci, 'co) entry = {
  abstract_inputs : 'ai list;
  abstract_outputs : 'ao list;
  steps : ('ci, 'co) step list;  (** same length as the abstract words *)
}

val concrete_inputs : ('ai, 'ao, 'ci, 'co) entry -> 'ci list
(** All packets sent across the query, in order. *)

val concrete_outputs : ('ai, 'ao, 'ci, 'co) entry -> 'co list

type ('ai, 'ao, 'ci, 'co) t

val create : unit -> ('ai, 'ao, 'ci, 'co) t

val add :
  ('ai, 'ao, 'ci, 'co) t ->
  abstract_inputs:'ai list ->
  abstract_outputs:'ao list ->
  steps:('ci, 'co) step list ->
  unit
(** Records one query; duplicate abstract input words overwrite the
    previous entry (the latest concrete witness is kept). *)

val find : ('ai, 'ao, 'ci, 'co) t -> 'ai list -> ('ai, 'ao, 'ci, 'co) entry option
val entries : ('ai, 'ao, 'ci, 'co) t -> ('ai, 'ao, 'ci, 'co) entry list
val size : ('ai, 'ao, 'ci, 'co) t -> int
val clear : ('ai, 'ao, 'ci, 'co) t -> unit

val longest : ('ai, 'ao, 'ci, 'co) t -> int
(** Length of the longest recorded abstract input word. *)
