let state_cover m =
  let words = Mealy.access_words m in
  let seen = Mealy.reachable m in
  let acc = ref [] in
  for s = Mealy.size m - 1 downto 0 do
    if seen.(s) then acc := words.(s) :: !acc
  done;
  !acc

let transition_cover m =
  let words = Mealy.access_words m in
  let seen = Mealy.reachable m in
  let inputs = Mealy.inputs m in
  let acc = ref [] in
  for s = Mealy.size m - 1 downto 0 do
    if seen.(s) then
      for i = Array.length inputs - 1 downto 0 do
        acc := (words.(s) @ [ inputs.(i) ]) :: !acc
      done
  done;
  !acc

let middle_words alphabet k =
  let symbols = Array.to_list alphabet in
  let rec extend words len acc =
    if len = 0 then acc
    else
      let longer =
        List.concat_map (fun w -> List.map (fun x -> x :: w) symbols) words
      in
      extend longer (len - 1) (acc @ List.map List.rev longer)
  in
  [] :: extend [ [] ] k []

let dedup words =
  let tbl = Hashtbl.create 64 in
  List.filter
    (fun w ->
      if Hashtbl.mem tbl w then false
      else begin
        Hashtbl.add tbl w ();
        true
      end)
    words

let w_method ?(extra_states = 0) m =
  let p = transition_cover m in
  let mid = middle_words (Mealy.inputs m) extra_states in
  let w = Mealy.characterizing_set m in
  let suite =
    List.concat_map
      (fun prefix ->
        List.concat_map
          (fun middle -> List.map (fun suffix -> prefix @ middle @ suffix) w)
          mid)
      p
  in
  dedup suite

(* Per-state identification set: words from the characterizing set that
   distinguish this state from some other state. *)
let identification_sets m =
  let w = Mealy.characterizing_set m in
  Array.init (Mealy.size m) (fun s ->
      List.filter
        (fun word ->
          let out_s = Mealy.run_from m s word in
          let differs = ref false in
          for t = 0 to Mealy.size m - 1 do
            if t <> s && Mealy.run_from m t word <> out_s then differs := true
          done;
          !differs)
        w)

let wp_method ?(extra_states = 0) m =
  let ids = identification_sets m in
  let w = Mealy.characterizing_set m in
  let mid = middle_words (Mealy.inputs m) extra_states in
  (* Phase 1: state cover × middles × W. *)
  let phase1 =
    List.concat_map
      (fun prefix ->
        List.concat_map
          (fun middle -> List.map (fun suffix -> prefix @ middle @ suffix) w)
          mid)
      (state_cover m)
  in
  (* Phase 2: remaining transition-cover words × middles × W_{target}. *)
  let sc = state_cover m in
  let phase2 =
    List.concat_map
      (fun prefix ->
        if List.mem prefix sc then []
        else
          List.concat_map
            (fun middle ->
              let target = Mealy.state_after m (prefix @ middle) in
              let id = ids.(target) in
              let id = if id = [] then [ [] ] else id in
              List.map (fun suffix -> prefix @ middle @ suffix) id)
            mid)
      (transition_cover m)
  in
  dedup (phase1 @ phase2)

let suite_size suite = List.length suite
let suite_symbols suite = List.fold_left (fun n w -> n + List.length w) 0 suite
