(** Deterministic automata with functional transitions, used as safety
    monitors over Mealy-machine traces.

    A monitor reads symbols (typically input/output pairs of a Mealy
    machine) and moves between integer states; non-accepting states
    represent property violations. Transition functions are arbitrary
    OCaml functions, so monitors can match on symbol structure without
    enumerating an alphabet. *)

type 'a t

val make :
  size:int ->
  initial:int ->
  delta:(int -> 'a -> int) ->
  accepting:(int -> bool) ->
  'a t

val size : 'a t -> int
val initial : 'a t -> int
val step : 'a t -> int -> 'a -> int
val accepting : 'a t -> int -> bool

val accepts : 'a t -> 'a list -> bool
(** True when every prefix of the word stays in accepting states
    (safety acceptance). *)

val first_violation : 'a t -> 'a list -> int option
(** Index (0-based) of the first symbol whose consumption leaves the
    accepting region, if any. *)

val complement : 'a t -> 'a t

val product : 'a t -> 'a t -> 'a t
(** Conjunction of two safety monitors: accepting iff both are. *)
