lib/automata/dfa.mli:
