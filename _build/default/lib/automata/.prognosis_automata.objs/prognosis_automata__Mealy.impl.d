lib/automata/mealy.ml: Array Buffer Format Hashtbl List Queue String
