lib/automata/dfa.ml:
