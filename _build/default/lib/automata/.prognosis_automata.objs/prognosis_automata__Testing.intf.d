lib/automata/testing.mli: Mealy
