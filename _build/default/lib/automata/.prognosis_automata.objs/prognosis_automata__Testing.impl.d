lib/automata/testing.ml: Array Hashtbl List Mealy
