type 'a t = {
  size : int;
  initial : int;
  delta : int -> 'a -> int;
  accepting : int -> bool;
}

let make ~size ~initial ~delta ~accepting =
  if size <= 0 then invalid_arg "Dfa.make: size must be positive";
  if initial < 0 || initial >= size then invalid_arg "Dfa.make: bad initial state";
  { size; initial; delta; accepting }

let size d = d.size
let initial d = d.initial
let step d s x = d.delta s x
let accepting d s = d.accepting s

let first_violation d word =
  let rec loop s idx = function
    | [] -> None
    | x :: rest ->
        let s' = d.delta s x in
        if not (d.accepting s') then Some idx else loop s' (idx + 1) rest
  in
  if not (d.accepting d.initial) then Some (-1) else loop d.initial 0 word

let accepts d word = first_violation d word = None

let complement d = { d with accepting = (fun s -> not (d.accepting s)) }

let product a b =
  (* Pair states are encoded as sa * b.size + sb. *)
  make
    ~size:(a.size * b.size)
    ~initial:((a.initial * b.size) + b.initial)
    ~delta:(fun s x ->
      let sa = s / b.size and sb = s mod b.size in
      (a.delta sa x * b.size) + b.delta sb x)
    ~accepting:(fun s -> a.accepting (s / b.size) && b.accepting (s mod b.size))
