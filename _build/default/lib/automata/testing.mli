(** Model-based test-suite generation from Mealy machines.

    Implements the classical W-method and Wp-method [Chow 1978;
    Fujiwara et al. 1991] used both as heuristic equivalence oracles
    during learning and to quantify the trace reduction reported in the
    paper (§6.2.2): exhaustive exploration needs Σ_{k≤10} |Σ|^k traces,
    while a conformance suite derived from the learned model needs only
    on the order of a thousand. *)

val state_cover : ('i, 'o) Mealy.t -> 'i list list
(** One access word per reachable state (the empty word for the initial
    state). *)

val transition_cover : ('i, 'o) Mealy.t -> 'i list list
(** Access words for every transition of every reachable state. *)

val middle_words : 'i array -> int -> 'i list list
(** [middle_words alphabet k] is all words of length ≤ [k] (including
    the empty word) over the alphabet. *)

val w_method : ?extra_states:int -> ('i, 'o) Mealy.t -> 'i list list
(** The W-method suite [P · Σ^{≤e} · W] where [P] is the transition
    cover, [e = extra_states] (default 0) and [W] the characterizing
    set. Words are deduplicated; prefixes of retained words are not
    removed. *)

val wp_method : ?extra_states:int -> ('i, 'o) Mealy.t -> 'i list list
(** The Wp-method suite: like the W-method but phase two uses
    state-local identification sets, producing smaller suites. *)

val suite_size : 'i list list -> int
val suite_symbols : 'i list list -> int
(** Total number of input symbols across a suite. *)
