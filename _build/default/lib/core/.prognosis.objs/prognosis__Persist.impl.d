lib/core/persist.ml: Array Fun Marshal Printf Prognosis_automata Sys
