lib/core/report.ml: Format Prognosis_automata Prognosis_learner
