lib/core/dtls_study.mli: Prognosis_automata Prognosis_dtls Prognosis_learner Prognosis_sul Report
