lib/core/persist.mli: Prognosis_automata Prognosis_dtls Prognosis_quic Prognosis_tcp
