lib/core/quic_study.ml: Array Format Int64 List Option Prognosis_analysis Prognosis_automata Prognosis_learner Prognosis_quic Prognosis_sul Prognosis_synthesis Report String
