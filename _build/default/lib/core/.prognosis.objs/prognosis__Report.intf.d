lib/core/report.mli: Format Prognosis_learner
