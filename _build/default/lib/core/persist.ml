module Mealy = Prognosis_automata.Mealy

type kind = Tcp_model | Quic_model | Dtls_model | Tcp_client_model

let kind_to_string = function
  | Tcp_model -> "tcp"
  | Quic_model -> "quic"
  | Dtls_model -> "dtls"
  | Tcp_client_model -> "tcp-client"

let magic = "prognosis-model/1"

(* The payload is the raw Mealy record; private rows are reconstructed
   through Mealy.make on load so invariants are revalidated. *)
type ('i, 'o) payload = {
  size : int;
  initial : int;
  inputs : 'i array;
  delta : int array array;
  lambda : 'o array array;
}

let save ~path kind model =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_char oc '\n';
      output_string oc (kind_to_string kind);
      output_char oc '\n';
      output_string oc Sys.ocaml_version;
      output_char oc '\n';
      let payload =
        {
          size = Mealy.size model;
          initial = Mealy.initial model;
          inputs = Mealy.inputs model;
          delta =
            Array.init (Mealy.size model) (fun s ->
                Array.init (Mealy.alphabet_size model) (fun i ->
                    fst (Mealy.step_idx model s i)));
          lambda =
            Array.init (Mealy.size model) (fun s ->
                Array.init (Mealy.alphabet_size model) (fun i ->
                    snd (Mealy.step_idx model s i)));
        }
      in
      Marshal.to_channel oc payload [])

let load ~path kind =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let read_line_opt () = try Some (input_line ic) with End_of_file -> None in
          match (read_line_opt (), read_line_opt (), read_line_opt ()) with
          | Some m, _, _ when m <> magic ->
              Error (path ^ ": not a prognosis model file")
          | _, Some k, _ when k <> kind_to_string kind ->
              Error
                (Printf.sprintf "%s holds a %s model, expected %s" path k
                   (kind_to_string kind))
          | _, _, Some v when v <> Sys.ocaml_version ->
              Error
                (Printf.sprintf
                   "%s was written by OCaml %s; this binary runs %s (re-learn \
                    and re-save)"
                   path v Sys.ocaml_version)
          | Some _, Some _, Some _ -> (
              match (Marshal.from_channel ic : ('i, 'o) payload) with
              | exception _ -> Error (path ^ ": corrupt payload")
              | p ->
                  (try
                     Ok
                       (Mealy.make ~size:p.size ~initial:p.initial
                          ~inputs:p.inputs ~delta:p.delta ~lambda:p.lambda)
                   with Invalid_argument msg ->
                     Error (path ^ ": invalid machine: " ^ msg)))
          | _ -> Error (path ^ ": truncated header"))

let load_tcp ~path = load ~path Tcp_model
let load_quic ~path = load ~path Quic_model
let load_dtls ~path = load ~path Dtls_model
