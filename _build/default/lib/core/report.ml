module Mealy = Prognosis_automata.Mealy
module Learn = Prognosis_learner.Learn
module Oracle = Prognosis_learner.Oracle

type t = {
  subject : string;
  algorithm : string;
  states : int;
  transitions : int;
  membership_queries : int;
  membership_symbols : int;
  cache_hits : int;
  equivalence_rounds : int;
  test_words : int;
  alphabet : int;
}

let of_learn_result ~subject ~algorithm (r : ('i, 'o) Learn.result) =
  {
    subject;
    algorithm;
    states = Mealy.size r.Learn.model;
    transitions = Mealy.transitions r.Learn.model;
    membership_queries = r.Learn.stats.Oracle.membership_queries;
    membership_symbols = r.Learn.stats.Oracle.membership_symbols;
    cache_hits = r.Learn.cache_hits;
    equivalence_rounds = r.Learn.rounds;
    test_words = r.Learn.stats.Oracle.test_words;
    alphabet = Mealy.alphabet_size r.Learn.model;
  }

let trace_count t ~max_len = Mealy.count_words ~alphabet:t.alphabet ~max_len

let pp fmt t =
  Format.fprintf fmt
    "%s (%s): %d states, %d transitions, %d membership queries (%d symbols, %d \
     cache hits), %d equivalence rounds, %d test words"
    t.subject t.algorithm t.states t.transitions t.membership_queries
    t.membership_symbols t.cache_hits t.equivalence_rounds t.test_words

let header =
  [
    "subject";
    "algorithm";
    "states";
    "transitions";
    "mem queries";
    "symbols";
    "cache hits";
    "eq rounds";
    "test words";
  ]

let to_row t =
  [
    t.subject;
    t.algorithm;
    string_of_int t.states;
    string_of_int t.transitions;
    string_of_int t.membership_queries;
    string_of_int t.membership_symbols;
    string_of_int t.cache_hits;
    string_of_int t.equivalence_rounds;
    string_of_int t.test_words;
  ]
