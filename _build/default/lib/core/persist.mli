(** Persisting learned models.

    Learning a production-scale implementation is the expensive step
    (the paper's QUIC runs took tens of thousands of queries); analyses
    are cheap. Saving learned models lets `compare`, `check`, `replay`
    and `difftest` style workflows reuse them across invocations.

    Models are stored with OCaml's [Marshal] under a magic header that
    records the payload kind, so a file saved for one protocol cannot
    be silently loaded as another. The format is a local cache format:
    it is not portable across OCaml versions or architectures (the
    header stores enough to fail loudly instead of corrupting). *)

type kind = Tcp_model | Quic_model | Dtls_model | Tcp_client_model

val kind_to_string : kind -> string

val save :
  path:string -> kind -> ('i, 'o) Prognosis_automata.Mealy.t -> unit

val load :
  path:string -> kind -> (('i, 'o) Prognosis_automata.Mealy.t, string) result
(** Fails with a readable message on a missing file, foreign file, kind
    mismatch or OCaml-version mismatch. The ['i]/['o] types must match
    what was saved — the [kind] tag is the guard, so only load through
    the typed wrappers below in application code. *)

val load_tcp :
  path:string ->
  ( (Prognosis_tcp.Tcp_alphabet.symbol, Prognosis_tcp.Tcp_alphabet.output)
    Prognosis_automata.Mealy.t,
    string )
  result

val load_quic :
  path:string ->
  ( (Prognosis_quic.Quic_alphabet.symbol, Prognosis_quic.Quic_alphabet.output)
    Prognosis_automata.Mealy.t,
    string )
  result

val load_dtls :
  path:string ->
  ( (Prognosis_dtls.Dtls_alphabet.symbol, Prognosis_dtls.Dtls_alphabet.output)
    Prognosis_automata.Mealy.t,
    string )
  result
