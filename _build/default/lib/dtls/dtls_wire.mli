(** MiniDTLS record and handshake-message codecs.

    A third protocol substrate demonstrating the framework's
    reusability claim (the paper's intro motivates with SSH/TLS/DTLS,
    and its related work [21] applies model learning to DTLS). The
    record layout follows RFC 6347: content type, version, epoch,
    48-bit sequence number, length; handshake messages carry the DTLS
    message-sequence/fragmentation header (fragments are always whole
    here). Epoch-1 records are protected by {!Dtls_crypto}. *)

type content_type =
  | Change_cipher_spec
  | Alert
  | Handshake
  | Application_data

val content_type_to_string : content_type -> string

type handshake_type =
  | Client_hello
  | Server_hello
  | Hello_verify_request
  | Certificate
  | Server_hello_done
  | Client_key_exchange
  | Finished

val handshake_type_to_string : handshake_type -> string

type handshake = {
  msg_type : handshake_type;
  message_seq : int;
  body : string;
}

val encode_handshake : handshake -> string
val decode_handshake : string -> (handshake, string) result

type record_ = {
  content : content_type;
  epoch : int;
  seq : int;  (** 48-bit record sequence number *)
  payload : string;  (** plaintext payload (protection is applied at
                         encode time for epoch >= 1) *)
}

val pp_record : Format.formatter -> record_ -> unit

val encode_record : ?protect:(epoch:int -> seq:int -> string -> string) -> record_ -> string
(** [protect] seals the payload (applied when [epoch >= 1]). *)

val decode_record :
  ?unprotect:(epoch:int -> seq:int -> string -> string option) ->
  string ->
  (record_, string) result
(** [unprotect] opens the payload of epoch >= 1 records; returning
    [None] makes decoding fail (wrong keys / tampering). *)
