type symbol =
  | Client_hello
  | Client_key_exchange
  | Change_cipher_spec
  | Finished
  | App_data
  | Alert_close

let all =
  [| Client_hello; Client_key_exchange; Change_cipher_spec; Finished; App_data; Alert_close |]

let to_string = function
  | Client_hello -> "CLIENT_HELLO(?)"
  | Client_key_exchange -> "CLIENT_KEY_EXCHANGE(?)"
  | Change_cipher_spec -> "CHANGE_CIPHER_SPEC"
  | Finished -> "FINISHED(?)"
  | App_data -> "APP_DATA(?)"
  | Alert_close -> "ALERT(close_notify)"

let pp fmt s = Format.pp_print_string fmt (to_string s)

type arecord =
  | A_hello_verify_request
  | A_server_hello
  | A_certificate
  | A_server_hello_done
  | A_change_cipher_spec
  | A_finished
  | A_app_data
  | A_alert

let arecord_to_string = function
  | A_hello_verify_request -> "HELLO_VERIFY_REQUEST"
  | A_server_hello -> "SERVER_HELLO"
  | A_certificate -> "CERTIFICATE"
  | A_server_hello_done -> "SERVER_HELLO_DONE"
  | A_change_cipher_spec -> "CCS"
  | A_finished -> "FINISHED"
  | A_app_data -> "APP_DATA"
  | A_alert -> "ALERT"

type output = arecord list

let output_to_string = function
  | [] -> "NIL"
  | records -> "{" ^ String.concat "," (List.map arecord_to_string records) ^ "}"

let pp_output fmt o = Format.pp_print_string fmt (output_to_string o)

let abstract (r : Dtls_wire.record_) =
  match r.Dtls_wire.content with
  | Dtls_wire.Change_cipher_spec -> Some A_change_cipher_spec
  | Dtls_wire.Alert -> Some A_alert
  | Dtls_wire.Application_data -> Some A_app_data
  | Dtls_wire.Handshake -> (
      match Dtls_wire.decode_handshake r.Dtls_wire.payload with
      | Error _ -> None
      | Ok h -> (
          match h.Dtls_wire.msg_type with
          | Dtls_wire.Hello_verify_request -> Some A_hello_verify_request
          | Dtls_wire.Server_hello -> Some A_server_hello
          | Dtls_wire.Certificate -> Some A_certificate
          | Dtls_wire.Server_hello_done -> Some A_server_hello_done
          | Dtls_wire.Finished -> Some A_finished
          | Dtls_wire.Client_hello | Dtls_wire.Client_key_exchange -> None))
