(** The instrumented MiniDTLS reference client: γ for the six abstract
    symbols under live handshake state (randoms, cookie, premaster,
    key schedule, epochs, sequence numbers), with the same
    instrumentation discipline as the TCP/QUIC reference clients. *)

type t

val create : Prognosis_sul.Rng.t -> t
val reset : t -> unit

val concretize : t -> Dtls_alphabet.symbol -> (string * Dtls_wire.record_) option
(** [None] when the symbol cannot be realized yet (FINISHED or APP_DATA
    before keys / the epoch switch). *)

val absorb : t -> string -> Dtls_wire.record_ option
(** Decode a server record (decrypting epoch-1 records), update state
    (cookie, server random, epoch switch, closure) and return it;
    [None] for undecodable data. *)

val handshake_complete : t -> bool
val closed : t -> bool
val echoed : t -> string
(** Application data received from the server, concatenated. *)
