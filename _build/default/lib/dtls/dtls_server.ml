module Rng = Prognosis_sul.Rng
module W = Dtls_wire
module C = Dtls_crypto

type config = { require_cookie : bool; strict_ccs : bool }

let default_config = { require_cookie = true; strict_ccs = true }

type phase =
  | Waiting_hello
  | Waiting_verified_hello
  | Waiting_key_exchange
  | Waiting_ccs
  | Waiting_finished
  | Established
  | Closed

let phase_to_string = function
  | Waiting_hello -> "waiting-hello"
  | Waiting_verified_hello -> "waiting-verified-hello"
  | Waiting_key_exchange -> "waiting-key-exchange"
  | Waiting_ccs -> "waiting-ccs"
  | Waiting_finished -> "waiting-finished"
  | Established -> "established"
  | Closed -> "closed"

type t = {
  cfg : config;
  rng : Rng.t;
  mutable crypto : C.t;
  mutable phase : phase;
  mutable cookie : string;
  mutable client_random : string;
  mutable server_random : string;
  mutable read_epoch : int;
  mutable write_epoch : int;
  mutable write_seq : int; (* per current write epoch *)
  mutable message_seq : int;
}

let reset t =
  t.crypto <- C.create ();
  t.phase <- Waiting_hello;
  t.cookie <- "";
  t.client_random <- "";
  t.server_random <- "";
  t.read_epoch <- 0;
  t.write_epoch <- 0;
  t.write_seq <- 0;
  t.message_seq <- 0

let create ?(config = default_config) rng =
  let t =
    {
      cfg = config;
      rng;
      crypto = C.create ();
      phase = Waiting_hello;
      cookie = "";
      client_random = "";
      server_random = "";
      read_epoch = 0;
      write_epoch = 0;
      write_seq = 0;
      message_seq = 0;
    }
  in
  reset t;
  t

let phase_name t = phase_to_string t.phase

let to_hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let protect t ~epoch ~seq payload =
  match C.seal t.crypto C.Server_write ~epoch ~seq payload with
  | Some sealed -> sealed
  | None -> payload (* epoch-1 sends never happen before keys exist *)

let emit t content payload =
  let seq = t.write_seq in
  t.write_seq <- seq + 1;
  W.encode_record
    ~protect:(fun ~epoch ~seq payload -> protect t ~epoch ~seq payload)
    { W.content; epoch = t.write_epoch; seq; payload }

let emit_handshake t msg_type body =
  let message_seq = t.message_seq in
  t.message_seq <- message_seq + 1;
  emit t W.Handshake (W.encode_handshake { W.msg_type; message_seq; body })

let fatal_alert t description =
  t.phase <- Closed;
  [ emit t W.Alert (Printf.sprintf "\x02%c" (Char.chr description)) ]

(* ClientHello body: "CR:<random>;COOKIE:<cookie>". *)
let parse_client_hello body =
  match String.split_on_char ';' body with
  | [ cr; cookie ]
    when String.length cr > 3
         && String.sub cr 0 3 = "CR:"
         && String.length cookie >= 7
         && String.sub cookie 0 7 = "COOKIE:" ->
      Some
        ( String.sub cr 3 (String.length cr - 3),
          String.sub cookie 7 (String.length cookie - 7) )
  | _ -> None

let server_flight t =
  t.server_random <- to_hex (Rng.bytes t.rng 8);
  t.phase <- Waiting_key_exchange;
  [
    emit_handshake t W.Server_hello ("SR:" ^ t.server_random);
    emit_handshake t W.Certificate "CERT:minidtls-self-signed";
    emit_handshake t W.Server_hello_done "";
  ]

let handle_client_hello t body =
  match parse_client_hello body with
  | None -> []
  | Some (client_random, cookie) -> (
      t.client_random <- client_random;
      match t.phase with
      | Waiting_hello when t.cfg.require_cookie ->
          t.cookie <- to_hex (Rng.bytes t.rng 8);
          t.phase <- Waiting_verified_hello;
          [ emit_handshake t W.Hello_verify_request t.cookie ]
      | Waiting_hello -> server_flight t
      | Waiting_verified_hello ->
          if cookie = t.cookie then server_flight t
          else [ emit_handshake t W.Hello_verify_request t.cookie ]
      | Waiting_key_exchange | Waiting_ccs | Waiting_finished ->
          (* Retransmitted hello: repeat the flight with fresh message
             sequence numbers but the same server random. *)
          [
            emit_handshake t W.Server_hello ("SR:" ^ t.server_random);
            emit_handshake t W.Certificate "CERT:minidtls-self-signed";
            emit_handshake t W.Server_hello_done "";
          ]
      | Established | Closed -> [])

let handle_key_exchange t body =
  match t.phase with
  | Waiting_key_exchange
    when String.length body > 4 && String.sub body 0 4 = "PMS:" ->
      let premaster = String.sub body 4 (String.length body - 4) in
      C.derive_master t.crypto ~client_random:t.client_random
        ~server_random:t.server_random ~premaster;
      t.phase <- Waiting_ccs;
      []
  | _ -> []

let handle_finished t body =
  match t.phase with
  | Waiting_finished ->
      if body = C.verify_data t.crypto C.Client_write then begin
        t.phase <- Established;
        let ccs = emit t W.Change_cipher_spec "\x01" in
        t.write_epoch <- 1;
        t.write_seq <- 0;
        let fin =
          emit_handshake t W.Finished (C.verify_data t.crypto C.Server_write)
        in
        [ ccs; fin ]
      end
      else fatal_alert t 51 (* decrypt_error *)
  | _ -> []

let handle_record t (r : W.record_) =
  match r.W.content with
  | W.Handshake -> (
      match W.decode_handshake r.W.payload with
      | Error _ -> []
      | Ok h -> (
          match h.W.msg_type with
          | W.Client_hello -> handle_client_hello t h.W.body
          | W.Client_key_exchange -> handle_key_exchange t h.W.body
          | W.Finished -> handle_finished t h.W.body
          | W.Server_hello | W.Hello_verify_request | W.Certificate
          | W.Server_hello_done ->
              (* Server-only messages from the client: ignored. *)
              []))
  | W.Change_cipher_spec -> (
      match t.phase with
      | Waiting_ccs ->
          t.read_epoch <- 1;
          t.phase <- Waiting_finished;
          []
      | Waiting_hello | Waiting_verified_hello | Waiting_key_exchange ->
          if t.cfg.strict_ccs then fatal_alert t 10 (* unexpected_message *)
          else []
      | Waiting_finished | Established | Closed -> [])
  | W.Application_data -> (
      match t.phase with
      | Established ->
          (* Echo service: the response is the uppercased request. *)
          [ emit t W.Application_data (String.uppercase_ascii r.W.payload) ]
      | _ -> [])
  | W.Alert -> (
      match t.phase with
      | Closed -> []
      | _ ->
          t.phase <- Closed;
          [ emit t W.Alert "\x01\x00" (* warning, close_notify *) ])

let handle_datagram t data =
  let unprotect ~epoch ~seq payload =
    C.open_ t.crypto C.Client_write ~epoch ~seq payload
  in
  match W.decode_record ~unprotect data with
  | Error _ -> []
  | Ok r ->
      (* Records must arrive in the current read epoch. *)
      if r.W.epoch <> t.read_epoch && r.W.epoch <> t.read_epoch + 1 then []
      else if r.W.epoch > t.read_epoch && r.W.content <> W.Change_cipher_spec
              && t.phase <> Waiting_finished && t.phase <> Established
      then []
      else handle_record t r
