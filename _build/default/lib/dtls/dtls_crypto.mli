(** Simulated MiniDTLS record protection.

    Same design as the QUIC simulation: a non-cryptographic PRF drives
    an authenticated stream cipher, keyed by a master secret derived
    from the handshake randoms and the client's premaster secret. The
    shape is faithful (no keys → no decryption; tampering fails
    authentication); the arithmetic is NOT real cryptography. *)

type t

val create : unit -> t

val derive_master :
  t -> client_random:string -> server_random:string -> premaster:string -> unit
(** Install epoch-1 keys from the handshake inputs. *)

val ready : t -> bool

type direction = Client_write | Server_write

val tag_length : int

val seal : t -> direction -> epoch:int -> seq:int -> string -> string option
val open_ : t -> direction -> epoch:int -> seq:int -> string -> string option

val verify_data : t -> direction -> string
(** The Finished message body each side must present (a MAC over the
    master secret, distinct per direction). Empty string when keys are
    not installed. *)
