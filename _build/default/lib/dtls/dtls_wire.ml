type content_type =
  | Change_cipher_spec
  | Alert
  | Handshake
  | Application_data

let content_type_to_string = function
  | Change_cipher_spec -> "CCS"
  | Alert -> "ALERT"
  | Handshake -> "HANDSHAKE"
  | Application_data -> "APPDATA"

let content_type_byte = function
  | Change_cipher_spec -> 20
  | Alert -> 21
  | Handshake -> 22
  | Application_data -> 23

let content_type_of_byte = function
  | 20 -> Some Change_cipher_spec
  | 21 -> Some Alert
  | 22 -> Some Handshake
  | 23 -> Some Application_data
  | _ -> None

type handshake_type =
  | Client_hello
  | Server_hello
  | Hello_verify_request
  | Certificate
  | Server_hello_done
  | Client_key_exchange
  | Finished

let handshake_type_to_string = function
  | Client_hello -> "CLIENT_HELLO"
  | Server_hello -> "SERVER_HELLO"
  | Hello_verify_request -> "HELLO_VERIFY_REQUEST"
  | Certificate -> "CERTIFICATE"
  | Server_hello_done -> "SERVER_HELLO_DONE"
  | Client_key_exchange -> "CLIENT_KEY_EXCHANGE"
  | Finished -> "FINISHED"

let handshake_type_byte = function
  | Client_hello -> 1
  | Server_hello -> 2
  | Hello_verify_request -> 3
  | Certificate -> 11
  | Server_hello_done -> 14
  | Client_key_exchange -> 16
  | Finished -> 20

let handshake_type_of_byte = function
  | 1 -> Some Client_hello
  | 2 -> Some Server_hello
  | 3 -> Some Hello_verify_request
  | 11 -> Some Certificate
  | 14 -> Some Server_hello_done
  | 16 -> Some Client_key_exchange
  | 20 -> Some Finished
  | _ -> None

type handshake = {
  msg_type : handshake_type;
  message_seq : int;
  body : string;
}

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u24 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  add_u16 buf (v land 0xFFFF)

let add_u48 buf v =
  add_u16 buf ((v lsr 32) land 0xFFFF);
  add_u16 buf ((v lsr 16) land 0xFFFF);
  add_u16 buf (v land 0xFFFF)

let get_u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
let get_u24 s off = (Char.code s.[off] lsl 16) lor get_u16 s (off + 1)
let get_u48 s off = (get_u16 s off lsl 32) lor (get_u16 s (off + 2) lsl 16) lor get_u16 s (off + 4)

(* DTLS handshake header: type(1) length(3) message_seq(2)
   fragment_offset(3) fragment_length(3); fragments are whole. *)
let encode_handshake h =
  let buf = Buffer.create (12 + String.length h.body) in
  Buffer.add_char buf (Char.chr (handshake_type_byte h.msg_type));
  add_u24 buf (String.length h.body);
  add_u16 buf h.message_seq;
  add_u24 buf 0;
  add_u24 buf (String.length h.body);
  Buffer.add_string buf h.body;
  Buffer.contents buf

let decode_handshake s =
  if String.length s < 12 then Error "handshake message too short"
  else begin
    match handshake_type_of_byte (Char.code s.[0]) with
    | None -> Error "unknown handshake type"
    | Some msg_type ->
        let length = get_u24 s 1 in
        let message_seq = get_u16 s 4 in
        let frag_offset = get_u24 s 6 in
        let frag_length = get_u24 s 9 in
        if frag_offset <> 0 || frag_length <> length then
          Error "fragmented handshake messages unsupported"
        else if String.length s < 12 + length then Error "truncated handshake body"
        else Ok { msg_type; message_seq; body = String.sub s 12 length }
  end

type record_ = {
  content : content_type;
  epoch : int;
  seq : int;
  payload : string;
}

let pp_record fmt r =
  Format.fprintf fmt "%s(epoch=%d,seq=%d,len=%d)"
    (content_type_to_string r.content)
    r.epoch r.seq
    (String.length r.payload)

let dtls_version = 0xFEFD (* DTLS 1.2 *)

(* Record header: type(1) version(2) epoch(2) seq(6) length(2). *)
let encode_record ?protect r =
  let payload =
    match protect with
    | Some seal when r.epoch >= 1 -> seal ~epoch:r.epoch ~seq:r.seq r.payload
    | Some _ | None -> r.payload
  in
  let buf = Buffer.create (13 + String.length payload) in
  Buffer.add_char buf (Char.chr (content_type_byte r.content));
  add_u16 buf dtls_version;
  add_u16 buf r.epoch;
  add_u48 buf r.seq;
  add_u16 buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode_record ?unprotect s =
  if String.length s < 13 then Error "record too short"
  else begin
    match content_type_of_byte (Char.code s.[0]) with
    | None -> Error "unknown content type"
    | Some content ->
        if get_u16 s 1 <> dtls_version then Error "unsupported version"
        else begin
          let epoch = get_u16 s 3 in
          let seq = get_u48 s 5 in
          let length = get_u16 s 11 in
          if String.length s < 13 + length then Error "truncated record"
          else begin
            let payload = String.sub s 13 length in
            let payload =
              match unprotect with
              | Some open_ when epoch >= 1 -> open_ ~epoch ~seq payload
              | Some _ | None -> Some payload
            in
            match payload with
            | Some payload -> Ok { content; epoch; seq; payload }
            | None -> Error "record protection failure"
          end
        end
  end
