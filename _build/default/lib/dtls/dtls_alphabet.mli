(** The abstract MiniDTLS alphabet: six client symbols covering the
    cookie exchange, the handshake, the epoch switch, application data
    and closure — the same granularity the paper's TCP/QUIC alphabets
    use (message kinds, parameters erased). *)

type symbol =
  | Client_hello  (** CLIENT_HELLO(?) — cookie filled from state *)
  | Client_key_exchange  (** CLIENT_KEY_EXCHANGE(?) *)
  | Change_cipher_spec  (** CHANGE_CIPHER_SPEC *)
  | Finished  (** FINISHED(?) — requires negotiated keys *)
  | App_data  (** APPLICATION_DATA(?) — requires epoch 1 *)
  | Alert_close  (** ALERT(close_notify) *)

val all : symbol array
val to_string : symbol -> string
val pp : Format.formatter -> symbol -> unit

(** Abstract view of one server record. *)
type arecord =
  | A_hello_verify_request
  | A_server_hello
  | A_certificate
  | A_server_hello_done
  | A_change_cipher_spec
  | A_finished
  | A_app_data
  | A_alert

val arecord_to_string : arecord -> string

type output = arecord list

val output_to_string : output -> string
val pp_output : Format.formatter -> output -> unit

val abstract : Dtls_wire.record_ -> arecord option
(** α on a decoded record; [None] for record contents outside the
    abstraction (never produced by the server). *)
