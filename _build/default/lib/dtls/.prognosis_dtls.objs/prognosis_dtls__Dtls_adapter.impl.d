lib/dtls/dtls_adapter.ml: Dtls_alphabet Dtls_client Dtls_server Dtls_wire List Prognosis_sul
