lib/dtls/dtls_crypto.ml: Char Int64 Option Printf String
