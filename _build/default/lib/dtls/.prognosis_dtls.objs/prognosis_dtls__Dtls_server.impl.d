lib/dtls/dtls_server.ml: Char Dtls_crypto Dtls_wire List Printf Prognosis_sul String
