lib/dtls/dtls_client.ml: Char Dtls_alphabet Dtls_crypto Dtls_wire List Printf Prognosis_sul String
