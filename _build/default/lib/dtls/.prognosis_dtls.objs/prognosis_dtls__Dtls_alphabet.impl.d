lib/dtls/dtls_alphabet.ml: Dtls_wire Format List String
