lib/dtls/dtls_client.mli: Dtls_alphabet Dtls_wire Prognosis_sul
