lib/dtls/dtls_alphabet.mli: Dtls_wire Format
