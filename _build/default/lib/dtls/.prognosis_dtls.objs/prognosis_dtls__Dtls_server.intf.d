lib/dtls/dtls_server.mli: Prognosis_sul
