lib/dtls/dtls_crypto.mli:
