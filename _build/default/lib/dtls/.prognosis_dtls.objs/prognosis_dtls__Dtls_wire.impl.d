lib/dtls/dtls_wire.ml: Buffer Char Format String
