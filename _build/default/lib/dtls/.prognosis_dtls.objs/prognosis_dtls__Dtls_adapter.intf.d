lib/dtls/dtls_adapter.mli: Dtls_alphabet Dtls_client Dtls_server Dtls_wire Prognosis_sul
