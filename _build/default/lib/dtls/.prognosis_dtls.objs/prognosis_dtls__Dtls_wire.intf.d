lib/dtls/dtls_wire.mli: Format
