(** The MiniDTLS server: a cookie-validating datagram-TLS-style
    handshake endpoint serving as a third System Under Learning.

    Lifecycle: ClientHello → (HelloVerifyRequest with a stateless
    cookie, when enabled) → ClientHello+cookie → ServerHello +
    Certificate + ServerHelloDone → ClientKeyExchange →
    ChangeCipherSpec → Finished (verified) → CCS + Finished →
    established echo service → close_notify alerts. Out-of-order
    messages are dropped or answered with a fatal alert, giving the
    learner observable structure. *)

type config = {
  require_cookie : bool;
      (** demand the HelloVerifyRequest round-trip (DTLS's DoS
          protection, the analogue of QUIC's Retry) *)
  strict_ccs : bool;
      (** answer a ChangeCipherSpec arriving before the key exchange
          with a fatal alert instead of silently dropping it *)
}

val default_config : config

type t

val create : ?config:config -> Prognosis_sul.Rng.t -> t
val reset : t -> unit
val phase_name : t -> string

val handle_datagram : t -> string -> string list
(** One record in, response records out (wire level). *)
