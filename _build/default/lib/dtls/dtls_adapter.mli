(** The MiniDTLS System Under Learning: reference client + simulated
    network + server, as an Adapter — the third protocol wired through
    the identical framework machinery, demonstrating the paper's
    modularity claim (swapping protocols without touching the learning
    engine). *)

type concrete = Dtls_wire.record_

val create :
  ?server_config:Dtls_server.config ->
  ?network:Prognosis_sul.Network.config ->
  seed:int64 ->
  unit ->
  (Dtls_alphabet.symbol, Dtls_alphabet.output, concrete, concrete)
  Prognosis_sul.Adapter.t
  * Dtls_client.t

val sul :
  ?server_config:Dtls_server.config ->
  ?network:Prognosis_sul.Network.config ->
  seed:int64 ->
  unit ->
  (Dtls_alphabet.symbol, Dtls_alphabet.output) Prognosis_sul.Sul.t
