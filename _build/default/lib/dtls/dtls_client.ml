module Rng = Prognosis_sul.Rng
module W = Dtls_wire
module C = Dtls_crypto

type t = {
  rng : Rng.t;
  mutable crypto : C.t;
  mutable client_random : string;
  mutable premaster : string;
  mutable cookie : string;
  mutable server_random : string;
  mutable write_epoch : int;
  mutable write_seq : int;
  mutable read_epoch : int;
  mutable message_seq : int;
  mutable server_finished : bool;
  mutable closed_ : bool;
  mutable echoed_ : string;
}

let to_hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let reset t =
  t.crypto <- C.create ();
  t.client_random <- to_hex (Rng.bytes t.rng 8);
  t.premaster <- to_hex (Rng.bytes t.rng 8);
  t.cookie <- "";
  t.server_random <- "";
  t.write_epoch <- 0;
  t.write_seq <- 0;
  t.read_epoch <- 0;
  t.message_seq <- 0;
  t.server_finished <- false;
  t.closed_ <- false;
  t.echoed_ <- ""

let create rng =
  let t =
    {
      rng;
      crypto = C.create ();
      client_random = "";
      premaster = "";
      cookie = "";
      server_random = "";
      write_epoch = 0;
      write_seq = 0;
      read_epoch = 0;
      message_seq = 0;
      server_finished = false;
      closed_ = false;
      echoed_ = "";
    }
  in
  reset t;
  t

let handshake_complete t = t.server_finished
let closed t = t.closed_
let echoed t = t.echoed_

let emit t content payload =
  let seq = t.write_seq in
  t.write_seq <- seq + 1;
  let record = { W.content; epoch = t.write_epoch; seq; payload } in
  let wire =
    W.encode_record
      ~protect:(fun ~epoch ~seq payload ->
        match C.seal t.crypto C.Client_write ~epoch ~seq payload with
        | Some sealed -> sealed
        | None -> payload)
      record
  in
  Some (wire, record)

let emit_handshake t msg_type body =
  let message_seq = t.message_seq in
  t.message_seq <- message_seq + 1;
  emit t W.Handshake (W.encode_handshake { W.msg_type; message_seq; body })

let concretize t symbol =
  match symbol with
  | Dtls_alphabet.Client_hello ->
      emit_handshake t W.Client_hello
        (Printf.sprintf "CR:%s;COOKIE:%s" t.client_random t.cookie)
  | Dtls_alphabet.Client_key_exchange ->
      (* Key derivation happens at send time with whatever server
         random is known — the reference implementation's state rules. *)
      C.derive_master t.crypto ~client_random:t.client_random
        ~server_random:t.server_random ~premaster:t.premaster;
      emit_handshake t W.Client_key_exchange ("PMS:" ^ t.premaster)
  | Dtls_alphabet.Change_cipher_spec ->
      let result = emit t W.Change_cipher_spec "\x01" in
      t.write_epoch <- 1;
      t.write_seq <- 0;
      result
  | Dtls_alphabet.Finished ->
      if (not (C.ready t.crypto)) || t.write_epoch < 1 then None
      else emit_handshake t W.Finished (C.verify_data t.crypto C.Client_write)
  | Dtls_alphabet.App_data ->
      if (not (C.ready t.crypto)) || t.write_epoch < 1 then None
      else emit t W.Application_data "ping"
  | Dtls_alphabet.Alert_close -> emit t W.Alert "\x01\x00"

let absorb t data =
  let unprotect ~epoch ~seq payload =
    C.open_ t.crypto C.Server_write ~epoch ~seq payload
  in
  match W.decode_record ~unprotect data with
  | Error _ -> None
  | Ok r ->
      (match r.W.content with
      | W.Handshake -> (
          match W.decode_handshake r.W.payload with
          | Error _ -> ()
          | Ok h -> (
              match h.W.msg_type with
              | W.Hello_verify_request -> t.cookie <- h.W.body
              | W.Server_hello ->
                  if String.length h.W.body > 3 && String.sub h.W.body 0 3 = "SR:"
                  then
                    t.server_random <-
                      String.sub h.W.body 3 (String.length h.W.body - 3)
              | W.Finished -> t.server_finished <- true
              | W.Certificate | W.Server_hello_done | W.Client_hello
              | W.Client_key_exchange ->
                  ()))
      | W.Change_cipher_spec -> t.read_epoch <- 1
      | W.Application_data -> t.echoed_ <- t.echoed_ ^ r.W.payload
      | W.Alert -> t.closed_ <- true);
      Some r
