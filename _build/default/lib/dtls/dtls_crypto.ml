(* FNV-1a + splitmix finalization, independent of the QUIC module to
   keep the substrates self-contained. *)
let hash64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001B3L)
    s;
  let z = add !h 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  logxor z (shift_right_logical z 31)

let bytes_of_int64 v =
  String.init 8 (fun i ->
      Char.chr
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))

type direction = Client_write | Server_write

type t = { mutable master : string option }

let create () = { master = None }

let derive_master t ~client_random ~server_random ~premaster =
  t.master <-
    Some
      (bytes_of_int64
         (hash64 (Printf.sprintf "master|%s|%s|%s" client_random server_random premaster)))

let ready t = t.master <> None

let dir_label = function Client_write -> "client" | Server_write -> "server"

let key t direction =
  Option.map
    (fun master -> bytes_of_int64 (hash64 (master ^ "|" ^ dir_label direction)))
    t.master

let tag_length = 8

let keystream key ~epoch ~seq len =
  let state = ref (hash64 (Printf.sprintf "%s#%d#%d" key epoch seq)) in
  String.init len (fun i ->
      if i mod 8 = 0 then begin
        let open Int64 in
        let s = add !state 0x9E3779B97F4A7C15L in
        let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
        state := logxor z (shift_right_logical z 31)
      end;
      Char.chr
        (Int64.to_int
           (Int64.logand (Int64.shift_right_logical !state (8 * (i mod 8))) 0xFFL)))

let xor_with data stream =
  String.mapi (fun i c -> Char.chr (Char.code c lxor Char.code stream.[i])) data

let tag key ~epoch ~seq plaintext =
  bytes_of_int64 (hash64 (Printf.sprintf "%s|%d|%d|%s" key epoch seq plaintext))

let seal t direction ~epoch ~seq plaintext =
  Option.map
    (fun key ->
      xor_with plaintext (keystream key ~epoch ~seq (String.length plaintext))
      ^ tag key ~epoch ~seq plaintext)
    (key t direction)

let open_ t direction ~epoch ~seq sealed =
  match key t direction with
  | None -> None
  | Some key ->
      let n = String.length sealed in
      if n < tag_length then None
      else begin
        let ciphertext = String.sub sealed 0 (n - tag_length) in
        let received = String.sub sealed (n - tag_length) tag_length in
        let plaintext =
          xor_with ciphertext (keystream key ~epoch ~seq (String.length ciphertext))
        in
        if tag key ~epoch ~seq plaintext = received then Some plaintext else None
      end

let verify_data t direction =
  match t.master with
  | None -> ""
  | Some master ->
      bytes_of_int64 (hash64 (Printf.sprintf "finished|%s|%s" master (dir_label direction)))
