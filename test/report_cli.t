The report-diff regression gate. A report diffed against itself is
clean and exits 0:

  $ ../bin/prognosis_cli.exe learn --protocol tcp --metrics-out m.json > /dev/null
  $ ../bin/prognosis_cli.exe report diff m.json m.json
  no differences
  regression gate: ok (threshold 10%)

An injected 30% growth in a watched learning-effort metric trips the
default 10% gate (exit 1), while neutral metrics (states) and list
reordering do not:

  $ cat > base.json <<'EOF'
  > {"reports":[
  >    {"subject":"quic","algorithm":"lstar","membership_queries":400,"states":4},
  >    {"subject":"tcp","algorithm":"ttt","membership_queries":1000,"states":6}],
  >  "benchmarks_ns_per_run":{"E1_learn":1000.0}}
  > EOF
  $ cat > cand.json <<'EOF'
  > {"reports":[
  >    {"subject":"tcp","algorithm":"ttt","membership_queries":1300,"states":7},
  >    {"subject":"quic","algorithm":"lstar","membership_queries":400,"states":4}],
  >  "benchmarks_ns_per_run":{"E1_learn":900.0}}
  > EOF

  $ ../bin/prognosis_cli.exe report diff base.json cand.json
  benchmarks_ns_per_run.E1_learn: 1000 -> 900  (-10.0%)
  reports.tcp:ttt.membership_queries: 1000 -> 1300  (+30.0%)
  reports.tcp:ttt.states: 6 -> 7  (+16.7%)
  regression gate: 1 metric(s) regressed beyond 10%
    REGRESSED reports.tcp:ttt.membership_queries: 1000 -> 1300
  [1]

A looser threshold lets the same candidate pass:

  $ ../bin/prognosis_cli.exe report diff base.json cand.json --threshold 50
  benchmarks_ns_per_run.E1_learn: 1000 -> 900  (-10.0%)
  reports.tcp:ttt.membership_queries: 1000 -> 1300  (+30.0%)
  reports.tcp:ttt.states: 6 -> 7  (+16.7%)
  regression gate: ok (threshold 50%)

--all also lists the unchanged paths:

  $ ../bin/prognosis_cli.exe report diff base.json cand.json --threshold 50 --all | head -3
  benchmarks_ns_per_run.E1_learn: 1000 -> 900  (-10.0%)
  reports.quic:lstar.membership_queries: 400 -> 400
  reports.quic:lstar.states: 4 -> 4

--counters-only is the zero-threshold CI gate over the deterministic
effort counters: it ignores timings and the metrics registry snapshot,
but fails on any counter change — improvements included — because a
changed query stream means the run is no longer reproducing the
baseline behaviour. Against itself it passes:

  $ ../bin/prognosis_cli.exe report diff base.json cand.json --counters-only
  counter gate: 1 deterministic counter(s) drifted
    DRIFT reports.tcp:ttt.membership_queries: 1000 -> 1300
  [1]

  $ cat > cand2.json <<'EOF2'
  > {"reports":[
  >    {"subject":"tcp","algorithm":"ttt","membership_queries":990,"states":6},
  >    {"subject":"quic","algorithm":"lstar","membership_queries":400,"states":4}],
  >  "benchmarks_ns_per_run":{"E1_learn":450.0},
  >  "metrics":{"counters":{"exec.batch":99}}}
  > EOF2

A 2x benchmark speedup, a new metrics-registry counter and a reordered
report list are all fine; the 1% counter *improvement* is not:

  $ ../bin/prognosis_cli.exe report diff base.json cand2.json --counters-only
  counter gate: 1 deterministic counter(s) drifted
    DRIFT reports.tcp:ttt.membership_queries: 1000 -> 990
  [1]

  $ ../bin/prognosis_cli.exe report diff base.json base.json --counters-only
  counter gate: ok (2 deterministic counters identical)
