Fleet learning via the CLI. `serve` takes a prognosis.jobs/1 file —
a list of learn / identify jobs over any mix of subjects — and runs
the sessions on a domain pool, sharing one sharded membership cache
per endpoint and one resident classification tree across identify
jobs. Build the library from the committed goldens first:

  $ mkdir lib
  $ cp ../examples/golden/*.model lib/
  $ ../bin/prognosis_cli.exe library build lib
  library lib: 3 entries

  $ cat > jobs.json <<'EOF'
  > {"schema": "prognosis.jobs/1", "jobs": [
  >   {"op": "identify", "subject": "tcp"},
  >   {"op": "identify", "subject": "quic:quiche-like"},
  >   {"op": "identify", "subject": "tcp", "seed": 2},
  >   {"op": "learn", "subject": "dtls", "seed": 7}
  > ]}
  > EOF

At --domains 1 the counters are deterministic (job order decides who
warms each cache); the wall-clock figures are not, so strip them. The
second tcp session is answered entirely from the cache the first one
warmed — 0 membership queries:

  $ ../bin/prognosis_cli.exe serve --jobs jobs.json --library lib --domains 1 --metrics-out report.json \
  >   | sed -e 's/, [0-9.]*s$//' -e 's/ in [0-9.]*s ([0-9.]* sessions\/s)//'
  #0 identify tcp (seed 1): known: tcp, 12 queries
  #1 identify quic:quiche-like (seed 1): known: quic-quiche-like, 32 queries
  #2 identify tcp (seed 2): known: tcp, 0 queries
  #3 learn dtls (seed 7): learned 7 states, 1600 queries
  4 session(s) on 1 domain(s), 2718 shared cache hit(s)
  metrics written to report.json

The report embeds the service block under the standard report schema:

  $ grep -o '"schema":"prognosis.report/1"' report.json
  "schema":"prognosis.report/1"
  $ grep -o '"schema":"prognosis.service/1"' report.json
  "schema":"prognosis.service/1"

Session results are invariant under the domain count — only the
wall-clock and who-warmed-the-cache counters move:

  $ ../bin/prognosis_cli.exe serve --jobs jobs.json --library lib --domains 4 \
  >   | sed -e 's/, [0-9]* queries, [0-9.]*s$/<counters>/' -e 's/ on [0-9] domain(s).*/ on N domain(s)/'
  #0 identify tcp (seed 1): known: tcp<counters>
  #1 identify quic:quiche-like (seed 1): known: quic-quiche-like<counters>
  #2 identify tcp (seed 2): known: tcp<counters>
  #3 learn dtls (seed 7): learned 7 states<counters>
  4 session(s) on N domain(s)

Identify jobs without a library are rejected up front:

  $ ../bin/prognosis_cli.exe serve --jobs jobs.json
  error: identify jobs require a model library
  [1]

  $ cat > bad.json <<'EOF'
  > {"schema": "prognosis.jobs/1", "jobs": [{"op": "frob", "subject": "tcp"}]}
  > EOF
  $ ../bin/prognosis_cli.exe serve --jobs bad.json
  error: job 0: unknown op "frob"
  [1]
