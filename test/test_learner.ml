module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Rng = Prognosis_sul.Rng
module Oracle = Prognosis_learner.Oracle
module Cache = Prognosis_learner.Cache
module Lstar = Prognosis_learner.Lstar
module Ttt = Prognosis_learner.Ttt
module Eq_oracle = Prognosis_learner.Eq_oracle
module Learn = Prognosis_learner.Learn

(* --- fixtures --- *)

let counter3 =
  Mealy.make ~size:3 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 2; 0 |]; [| 0; 0 |] |]
    ~lambda:[| [| "0"; "r" |]; [| "1"; "r" |]; [| "2"; "r" |] |]

(* A 5-state machine with a "lock" pattern: the word a·b·a unlocks. *)
let lock =
  Mealy.make ~size:5 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 1; 2 |]; [| 3; 0 |]; [| 4; 4 |]; [| 4; 4 |] |]
    ~lambda:
      [|
        [| "step"; "no" |];
        [| "step"; "step" |];
        [| "open"; "no" |];
        [| "in"; "in" |];
        [| "in"; "in" |];
      |]

let mq_for m = Oracle.of_sul (Sul.of_mealy m)
let perfect m : ('a, 'b) Oracle.equivalence = Eq_oracle.against m

let learn_and_check name algorithm target =
  let mq = mq_for target in
  let learned, _rounds =
    match algorithm with
    | `Lstar -> Lstar.learn ~inputs:(Mealy.inputs target) ~mq ~eq:(perfect target) ()
    | `Ttt -> Ttt.learn ~inputs:(Mealy.inputs target) ~mq ~eq:(perfect target) ()
  in
  Alcotest.(check (option (list char)))
    (name ^ ": equivalent") None
    (Mealy.equivalent learned target);
  Alcotest.(check int)
    (name ^ ": minimal")
    (Mealy.size (Mealy.minimize target))
    (Mealy.size learned)

let lstar_counter () = learn_and_check "lstar counter3" `Lstar counter3
let lstar_lock () = learn_and_check "lstar lock" `Lstar lock
let ttt_counter () = learn_and_check "ttt counter3" `Ttt counter3
let ttt_lock () = learn_and_check "ttt lock" `Ttt lock

let single_state () =
  (* Constant machine: 1 state regardless of input. *)
  let m =
    Mealy.make ~size:1 ~initial:0 ~inputs:[| 'a'; 'b' |] ~delta:[| [| 0; 0 |] |]
      ~lambda:[| [| "x"; "y" |] |]
  in
  learn_and_check "lstar single" `Lstar m;
  learn_and_check "ttt single" `Ttt m

(* --- cache --- *)

let cache_prefix_answers () =
  let c = Cache.create () in
  Cache.insert c [ 'a'; 'b'; 'c' ] [ 1; 2; 3 ];
  Alcotest.(check (option (list int))) "full" (Some [ 1; 2; 3 ])
    (Cache.lookup c [ 'a'; 'b'; 'c' ]);
  Alcotest.(check (option (list int))) "prefix" (Some [ 1; 2 ])
    (Cache.lookup c [ 'a'; 'b' ]);
  Alcotest.(check (option (list int))) "empty" (Some []) (Cache.lookup c []);
  Alcotest.(check (option (list int))) "miss" None (Cache.lookup c [ 'a'; 'z' ])

let cache_longest_prefix () =
  let c = Cache.create () in
  Cache.insert c [ 'a'; 'b'; 'c' ] [ 1; 2; 3 ];
  Alcotest.(check (option (pair (list char) (list int))))
    "partial" (Some ([ 'a'; 'b'; 'c' ], [ 1; 2; 3 ]))
    (Cache.lookup_longest_prefix c [ 'a'; 'b'; 'c'; 'd'; 'e' ]);
  Alcotest.(check (option (pair (list char) (list int))))
    "diverging suffix" (Some ([ 'a' ], [ 1 ]))
    (Cache.lookup_longest_prefix c [ 'a'; 'z' ]);
  Alcotest.(check (option (pair (list char) (list int))))
    "exact word" (Some ([ 'a'; 'b'; 'c' ], [ 1; 2; 3 ]))
    (Cache.lookup_longest_prefix c [ 'a'; 'b'; 'c' ]);
  Alcotest.(check (option (pair (list char) (list int))))
    "cold" None (Cache.lookup_longest_prefix c [ 'z' ]);
  Alcotest.(check (option (pair (list char) (list int))))
    "empty word" None (Cache.lookup_longest_prefix c [])

(* A miss extending a cached word replays in full, and the fresh
   prefix outputs must agree with the cached ones — otherwise the SUL
   is nondeterministic and the wrap says so. *)
let wrap_checks_prefix_replay () =
  let asked = ref [] in
  let mq =
    Oracle.of_fun (fun w ->
        asked := w :: !asked;
        List.mapi (fun i _ -> i) w)
  in
  let c = Cache.create () in
  let cached = Cache.wrap c mq in
  Alcotest.(check (list int)) "first" [ 0; 1 ] (cached.Oracle.ask [ 'a'; 'b' ]);
  Alcotest.(check (list int)) "extension" [ 0; 1; 2 ]
    (cached.Oracle.ask [ 'a'; 'b'; 'c' ]);
  Alcotest.(check (list (list char))) "both reached the oracle"
    [ [ 'a'; 'b'; 'c' ]; [ 'a'; 'b' ] ] !asked;
  (* A lying oracle whose fresh replay contradicts the cached prefix is
     caught. *)
  let lying = Oracle.of_fun (fun w -> List.map (fun _ -> 99) w) in
  let c2 = Cache.create () in
  Cache.insert c2 [ 'a' ] [ 1 ];
  let cached2 = Cache.wrap c2 lying in
  Alcotest.check_raises "prefix conflict"
    (Invalid_argument "Cache.insert: conflicting outputs (nondeterministic SUL?)")
    (fun () -> ignore (cached2.Oracle.ask [ 'a'; 'b' ]))

let cache_detects_conflict () =
  let c = Cache.create () in
  Cache.insert c [ 'a' ] [ 1 ];
  Alcotest.check_raises "conflict"
    (Invalid_argument "Cache.insert: conflicting outputs (nondeterministic SUL?)")
    (fun () -> Cache.insert c [ 'a'; 'b' ] [ 2; 2 ])

let cache_saves_queries () =
  let mq = mq_for counter3 in
  let c = Cache.create () in
  let cached = Cache.wrap c mq in
  let _ = cached.Oracle.ask [ 'a'; 'a'; 'a' ] in
  let _ = cached.Oracle.ask [ 'a'; 'a' ] in
  let _ = cached.Oracle.ask [ 'a'; 'a'; 'a' ] in
  Alcotest.(check int) "one real query" 1 mq.Oracle.stats.membership_queries;
  Alcotest.(check int) "two hits" 2 (Cache.hits c)

let cached_learning_equivalent () =
  (* Learning through a cache must give the same model. *)
  let result =
    Learn.run ~algorithm:Learn.Ttt_tree ~inputs:(Mealy.inputs lock)
      ~sul:(Sul.of_mealy lock) ~eq:(perfect lock) ()
  in
  Alcotest.(check (option (list char))) "same model" None
    (Mealy.equivalent result.Learn.model lock)

(* --- oracle stats --- *)

let stats_counted () =
  let mq = mq_for counter3 in
  let _ = mq.Oracle.ask [ 'a'; 'b' ] in
  let _ = mq.Oracle.ask [ 'a' ] in
  Alcotest.(check int) "queries" 2 mq.Oracle.stats.membership_queries;
  Alcotest.(check int) "symbols" 3 mq.Oracle.stats.membership_symbols

(* --- equivalence oracles --- *)

let mutant_of m =
  (* Flip one output in the last state. *)
  let size = Mealy.size m in
  Mealy.of_fun ~size ~initial:(Mealy.initial m) ~inputs:(Mealy.inputs m)
    ~step:(fun s x ->
      let s', o = Mealy.step m s x in
      if s = size - 1 then (s', o ^ "!") else (s', o))

let random_words_find_difference () =
  let rng = Rng.create 7L in
  let mutant = mutant_of lock in
  let mq = mq_for lock in
  let eq = Eq_oracle.random_words ~rng ~max_tests:2000 ~min_len:1 ~max_len:10 in
  match eq mq mutant with
  | None -> Alcotest.fail "random words should find the mutant"
  | Some w ->
      Alcotest.(check bool) "genuine" true (Mealy.run lock w <> Mealy.run mutant w)

let w_method_finds_difference () =
  let mutant = mutant_of lock in
  let mq = mq_for lock in
  match Eq_oracle.w_method ~extra_states:1 () mq mutant with
  | None -> Alcotest.fail "w-method should find the mutant"
  | Some _ -> ()

let random_walk_terminates () =
  let rng = Rng.create 11L in
  let mq = mq_for lock in
  (* Hypothesis equals the SUL: oracle must return None. *)
  Alcotest.(check (option (list char))) "no cex" None
    (Eq_oracle.random_walk ~rng ~max_tests:200 ~stop_prob:0.2 mq lock)

let exhaustive_finds_difference () =
  let mutant = mutant_of counter3 in
  let mq = mq_for counter3 in
  match Eq_oracle.exhaustive ~max_len:5 mq mutant with
  | None -> Alcotest.fail "exhaustive should find the mutant"
  | Some _ -> ()

let combine_order () =
  let mq = mq_for counter3 in
  let never _ _ = None in
  let always _ _ = Some [ 'a' ] in
  Alcotest.(check (option (list char))) "first hit wins" (Some [ 'a' ])
    (Eq_oracle.combine [ never; always ] mq counter3)

let shrink_shortens () =
  let mutant = mutant_of counter3 in
  let mq = mq_for counter3 in
  (* Long counterexample with redundant prefix symbols. *)
  let cex = [ 'b'; 'a'; 'a'; 'a' ] in
  Alcotest.(check bool) "valid input" true
    (Mealy.run counter3 cex <> Mealy.run mutant cex);
  let small = Eq_oracle.shrink mq mutant cex in
  Alcotest.(check bool) "still distinguishes" true
    (Mealy.run counter3 small <> Mealy.run mutant small);
  Alcotest.(check bool) "not longer" true (List.length small <= List.length cex)

(* --- full driver --- *)

let driver_reports_stats () =
  let result =
    Learn.run ~inputs:(Mealy.inputs lock) ~sul:(Sul.of_mealy lock)
      ~eq:(perfect lock) ()
  in
  Alcotest.(check bool) "queries counted" true
    (result.Learn.stats.membership_queries > 0);
  Alcotest.(check bool) "rounds >= 1" true (result.Learn.rounds >= 1)

let driver_random_eq () =
  let rng = Rng.create 99L in
  let eq = Eq_oracle.random_words ~rng ~max_tests:3000 ~min_len:1 ~max_len:12 in
  let result =
    Learn.run ~inputs:(Mealy.inputs lock) ~sul:(Sul.of_mealy lock) ~eq ()
  in
  Alcotest.(check (option (list char))) "learned lock" None
    (Mealy.equivalent result.Learn.model lock)

let max_rounds_enforced () =
  (* A useless equivalence oracle that always returns a fresh, valid
     counterexample keeps the loop running; max_rounds must stop it. *)
  let target = lock in
  let mq = mq_for target in
  let eq _mq h = Mealy.equivalent target h in
  (* With a perfect oracle learning converges quickly, so force a tiny
     budget to exercise the failure path on a machine needing >1 round. *)
  match Lstar.learn ~max_rounds:1 ~inputs:(Mealy.inputs target) ~mq ~eq () with
  | exception Failure _ -> ()
  | _model, rounds -> Alcotest.(check bool) "within budget" true (rounds <= 1)

let ttt_refine_rejects_stale () =
  let t = Ttt.create ~inputs:(Mealy.inputs counter3) (mq_for counter3) in
  let _ = Ttt.hypothesis t in
  (* A word on which SUL and hypothesis agree is a stale counterexample. *)
  match Mealy.equivalent (Ttt.hypothesis t) counter3 with
  | None ->
      Alcotest.(check bool) "stale rejected" false (Ttt.refine t [ 'a' ])
  | Some cex ->
      Alcotest.(check bool) "genuine accepted" true (Ttt.refine t cex)

let fixed_words_oracle () =
  let mutant = mutant_of lock in
  let mq = mq_for lock in
  (* The scenario word reaches the mutated last state. *)
  let scenario = [ 'a'; 'b'; 'a'; 'a'; 'a' ] in
  Alcotest.(check bool) "scenario distinguishes" true
    (Mealy.run lock scenario <> Mealy.run mutant scenario);
  (match Eq_oracle.fixed_words [ scenario ] mq mutant with
  | Some w -> Alcotest.(check (list char)) "returns the scenario" scenario w
  | None -> Alcotest.fail "scenario oracle must find the difference");
  Alcotest.(check (option (list char))) "irrelevant scenarios find nothing" None
    (Eq_oracle.fixed_words [ [ 'b' ]; [] ] mq mutant)

let run_mq_driver () =
  let mq = mq_for counter3 in
  let result =
    Learn.run_mq ~inputs:(Mealy.inputs counter3) ~mq ~eq:(perfect counter3) ()
  in
  Alcotest.(check int) "model size" 3 (Mealy.size result.Learn.model);
  Alcotest.(check int) "no cache stats" 0 result.Learn.cache_hits

let lstar_table_dimensions () =
  let t = Lstar.create ~inputs:(Mealy.inputs counter3) (mq_for counter3) in
  let _ = Lstar.hypothesis t in
  Alcotest.(check bool) "rows >= states" true (Lstar.rows t >= 3);
  Alcotest.(check bool) "columns >= alphabet" true (Lstar.columns t >= 2)

(* --- property-based: learners recover random machines --- *)

let gen_mealy =
  QCheck2.Gen.(
    let* size = int_range 1 6 in
    let* delta =
      array_size (return size) (array_size (return 2) (int_range 0 (size - 1)))
    in
    let* lambda = array_size (return size) (array_size (return 2) (int_range 0 2)) in
    return (Mealy.make ~size ~initial:0 ~inputs:[| 'a'; 'b' |] ~delta ~lambda))

let prop_learner name learner =
  QCheck2.Test.make ~count:60 ~name gen_mealy (fun target ->
      let mq = mq_for target in
      let learned, _ = learner ~inputs:(Mealy.inputs target) ~mq ~eq:(perfect target) () in
      Mealy.equivalent learned target = None
      && Mealy.size learned = Mealy.size (Mealy.minimize target))

let prop_lstar =
  prop_learner "l* recovers random machines"
    (Lstar.learn ?max_rounds:None ?on_round:None)

let prop_ttt =
  prop_learner "ttt recovers random machines"
    (Ttt.learn ?max_rounds:None ?on_round:None)

let prop_agreement =
  QCheck2.Test.make ~count:40 ~name:"l* and ttt agree" gen_mealy (fun target ->
      let m1, _ =
        Lstar.learn ~inputs:(Mealy.inputs target) ~mq:(mq_for target)
          ~eq:(perfect target) ()
      in
      let m2, _ =
        Ttt.learn ~inputs:(Mealy.inputs target) ~mq:(mq_for target)
          ~eq:(perfect target) ()
      in
      Mealy.equivalent m1 m2 = None)

let () =
  Alcotest.run "learner"
    [
      ( "lstar",
        [
          Alcotest.test_case "counter3" `Quick lstar_counter;
          Alcotest.test_case "lock" `Quick lstar_lock;
        ] );
      ( "ttt",
        [
          Alcotest.test_case "counter3" `Quick ttt_counter;
          Alcotest.test_case "lock" `Quick ttt_lock;
          Alcotest.test_case "single state" `Quick single_state;
        ] );
      ( "cache",
        [
          Alcotest.test_case "prefix answers" `Quick cache_prefix_answers;
          Alcotest.test_case "longest prefix" `Quick cache_longest_prefix;
          Alcotest.test_case "prefix replay check" `Quick
            wrap_checks_prefix_replay;
          Alcotest.test_case "conflict detection" `Quick cache_detects_conflict;
          Alcotest.test_case "saves queries" `Quick cache_saves_queries;
          Alcotest.test_case "cached learning" `Quick cached_learning_equivalent;
        ] );
      ("oracle", [ Alcotest.test_case "stats" `Quick stats_counted ]);
      ( "eq-oracle",
        [
          Alcotest.test_case "random words" `Quick random_words_find_difference;
          Alcotest.test_case "w-method" `Quick w_method_finds_difference;
          Alcotest.test_case "random walk none" `Quick random_walk_terminates;
          Alcotest.test_case "exhaustive" `Quick exhaustive_finds_difference;
          Alcotest.test_case "combine" `Quick combine_order;
          Alcotest.test_case "shrink" `Quick shrink_shortens;
        ] );
      ( "driver",
        [
          Alcotest.test_case "stats reported" `Quick driver_reports_stats;
          Alcotest.test_case "random eq oracle" `Quick driver_random_eq;
          Alcotest.test_case "max rounds" `Quick max_rounds_enforced;
          Alcotest.test_case "stale counterexample" `Quick ttt_refine_rejects_stale;
          Alcotest.test_case "fixed words oracle" `Quick fixed_words_oracle;
          Alcotest.test_case "run_mq" `Quick run_mq_driver;
          Alcotest.test_case "l* table dimensions" `Quick lstar_table_dimensions;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_lstar; prop_ttt; prop_agreement ] );
    ]
