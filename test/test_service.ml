(* Fleet-scheduler invariants behind the @service alias: session
   results are byte-identical to solo runs of the same jobs and
   invariant under the domain count, results merge in job order, the
   shared cache actually saves queries across a fleet, and the jobs
   file / service report schemas round-trip. The core-count-guarded
   throughput check asserts the >= 2x speedup the scheduler exists
   for, and skips on boxes without enough cores to show it. *)

module Service = Prognosis_service.Service
module Subject = Prognosis_service.Subject
module Library = Prognosis_fingerprint.Library
module Identify = Prognosis_fingerprint.Identify
module Jsonx = Prognosis_obs.Jsonx
module Metrics = Prognosis_obs.Metrics
module Learn = Prognosis_learner.Learn

let subject name =
  match Subject.of_name name with
  | Ok s -> s
  | Error e -> Alcotest.failf "subject %s: %s" name e

(* In-memory library of three known endpoints, learned through the
   typed studies (same canonical bytes as `prognosis library add`). *)
let library =
  lazy
    (let entry name =
       let s = subject name in
       let model, _report =
         s.Subject.learn ~seed:1L ~algorithm:Learn.Ttt_tree ~exec:None
       in
       Library.entry_of_model ~name ~kind:s.Subject.kind model
     in
     {
       Library.dir = "(in-memory)";
       entries =
         [ entry "tcp"; entry "tcp:no-challenge"; entry "quic:quiche-like" ];
     })

(* A mixed 8-job fleet: learn + identify, tcp/dtls/quic, with
   deliberate endpoint repeats so sessions share warmed caches. *)
let mixed_jobs () =
  [
    Service.job ~seed:1L Service.Learn (subject "tcp");
    Service.job ~seed:2L Service.Identify (subject "tcp");
    Service.job ~seed:3L Service.Learn (subject "quic:quiche-like");
    Service.job ~seed:4L Service.Identify (subject "tcp:no-challenge");
    Service.job ~seed:5L Service.Identify (subject "quic:quiche-like");
    Service.job ~seed:1L Service.Learn (subject "tcp");
    Service.job ~seed:6L Service.Identify (subject "tcp");
    Service.job ~seed:7L Service.Learn (subject "dtls");
  ]

let run_fleet ?(domains = 1) jobs =
  match
    Service.run ~domains ~library:(Lazy.force library) ~jobs ()
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "Service.run: %s" e

(* The byte-identity currency: what a session concluded, independent
   of how many queries the shared cache absorbed along the way. *)
let outcome_key = function
  | Service.Learned { canonical; _ } -> "learned:" ^ canonical
  | Service.Identified r -> (
      match r.Identify.outcome with
      | Identify.Known e -> "known:" ^ e.Library.name
      | Identify.Novel _ -> "novel")

let fleet_matches_solo () =
  let jobs = mixed_jobs () in
  let fleet = run_fleet jobs in
  List.iteri
    (fun i job ->
      let solo = run_fleet [ job ] in
      let fleet_s = List.nth fleet.Service.sessions i in
      let solo_s = List.hd solo.Service.sessions in
      Alcotest.(check string)
        (Printf.sprintf "job %d result == solo run" i)
        (outcome_key solo_s.Service.outcome)
        (outcome_key fleet_s.Service.outcome))
    jobs

let fleet_domains_invariant () =
  let jobs = mixed_jobs () in
  let one = run_fleet ~domains:1 jobs in
  let four = run_fleet ~domains:4 jobs in
  Alcotest.(check int) "same session count"
    (List.length one.Service.sessions)
    (List.length four.Service.sessions);
  List.iter2
    (fun (a : Service.session) (b : Service.session) ->
      Alcotest.(check int) "same index" a.Service.index b.Service.index;
      Alcotest.(check string) "same endpoint" a.Service.endpoint
        b.Service.endpoint;
      Alcotest.(check string)
        (Printf.sprintf "session %d result invariant under domains"
           a.Service.index)
        (outcome_key a.Service.outcome)
        (outcome_key b.Service.outcome))
    one.Service.sessions four.Service.sessions

let merge_order () =
  let jobs = mixed_jobs () in
  let fleet = run_fleet jobs in
  List.iteri
    (fun i (s : Service.session) ->
      Alcotest.(check int) "index is job position" i s.Service.index;
      let job = List.nth jobs i in
      Alcotest.(check string) "endpoint is the job's subject"
        job.Service.subject.Subject.name s.Service.endpoint)
    fleet.Service.sessions

let shared_cache_saves_queries () =
  let jobs = mixed_jobs () in
  let fleet = run_fleet jobs in
  let cold =
    List.fold_left
      (fun acc job ->
        acc + Service.total_membership_queries (run_fleet [ job ]))
      0 jobs
  in
  let warm = Service.total_membership_queries fleet in
  Alcotest.(check bool) "shared cache was hit" true
    (Service.shared_hits fleet > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fleet asks fewer SUL queries than cold (%d < %d)" warm
       cold)
    true (warm < cold);
  (* One shared cache per distinct endpoint, first-appearance order. *)
  Alcotest.(check (list string))
    "shared caches keyed by endpoint"
    [ "tcp"; "quic:quiche-like"; "tcp:no-challenge"; "dtls" ]
    (List.map (fun c -> c.Service.cache_endpoint) fleet.Service.shared)

let jobs_roundtrip () =
  let text =
    {|{"schema": "prognosis.jobs/1", "jobs": [
        {"op": "learn", "subject": "tcp", "seed": 7},
        {"op": "identify", "subject": "quic:quiche-like"},
        {"op": "learn", "subject": "dtls", "seed": "9", "algorithm": "lstar"}]}|}
  in
  match Service.jobs_of_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok jobs ->
      Alcotest.(check int) "three jobs" 3 (List.length jobs);
      let j0 = List.nth jobs 0 and j1 = List.nth jobs 1 in
      let j2 = List.nth jobs 2 in
      Alcotest.(check bool) "op learn" true (j0.Service.op = Service.Learn);
      Alcotest.(check string) "subject" "tcp" j0.Service.subject.Subject.name;
      Alcotest.(check int64) "int seed" 7L j0.Service.seed;
      Alcotest.(check int64) "default seed" 1L j1.Service.seed;
      Alcotest.(check bool) "default algorithm" true
        (j1.Service.algorithm = Learn.Ttt_tree);
      Alcotest.(check int64) "string seed" 9L j2.Service.seed;
      Alcotest.(check bool) "lstar" true (j2.Service.algorithm = Learn.L_star)

let jobs_rejects_garbage () =
  let bad text =
    match Service.jobs_of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" text
  in
  bad {|{"schema": "prognosis.jobs/0", "jobs": []}|};
  bad {|{"schema": "prognosis.jobs/1", "jobs": [{"op": "learn"}]}|};
  bad
    {|{"schema": "prognosis.jobs/1", "jobs": [{"op": "frob", "subject": "tcp"}]}|};
  bad
    {|{"schema": "prognosis.jobs/1", "jobs": [{"op": "learn", "subject": "nope"}]}|};
  bad {|not json|}

let identify_requires_library () =
  match
    Service.run ~jobs:[ Service.job Service.Identify (subject "tcp") ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "identify without a library must be an Error"

let service_json_schema () =
  let fleet = run_fleet (mixed_jobs ()) in
  match Service.to_json fleet with
  | Jsonx.Obj fields ->
      Alcotest.(check bool) "schema field" true
        (List.assoc_opt "schema" fields = Some (Jsonx.String Service.schema));
      Alcotest.(check string) "schema value" "prognosis.service/1"
        Service.schema;
      (match List.assoc_opt "sessions" fields with
      | Some (Jsonx.List sessions) ->
          Alcotest.(check int) "one entry per job" 8 (List.length sessions)
      | _ -> Alcotest.fail "sessions must be a list");
      (match List.assoc_opt "shared_caches" fields with
      | Some (Jsonx.List caches) ->
          Alcotest.(check int) "one cache per endpoint" 4 (List.length caches)
      | _ -> Alcotest.fail "shared_caches must be a list")
  | _ -> Alcotest.fail "service block must be an object"

(* The point of the scheduler: >= 2x throughput at 4 domains. Needs
   real cores to show it, so skip (loudly) on smaller boxes — the
   result-identity checks above still run everywhere. *)
let throughput_scales () =
  if Domain.recommended_domain_count () < 4 then
    Printf.printf
      "SKIP throughput: %d recommended domains (< 4); identity checks still \
       cover correctness\n"
      (Domain.recommended_domain_count ())
  else begin
    let jobs =
      List.concat_map
        (fun seed ->
          [
            Service.job ~seed Service.Learn (subject "tcp");
            Service.job ~seed Service.Learn (subject "tcp:no-challenge");
            Service.job ~seed Service.Learn (subject "dtls");
            Service.job ~seed Service.Learn (subject "quic:quiche-like");
          ])
        [ 21L; 22L ]
    in
    let one = run_fleet ~domains:1 jobs in
    let four = run_fleet ~domains:4 jobs in
    Alcotest.(check bool)
      (Printf.sprintf "4 domains >= 2x throughput (%.1f vs %.1f sessions/s)"
         four.Service.sessions_per_sec one.Service.sessions_per_sec)
      true
      (four.Service.sessions_per_sec >= 2.0 *. one.Service.sessions_per_sec)
  end

let () =
  Metrics.reset Metrics.default;
  Alcotest.run "service"
    [
      ( "fleet",
        [
          Alcotest.test_case "fleet == solo, per job" `Slow fleet_matches_solo;
          Alcotest.test_case "results invariant under domains" `Slow
            fleet_domains_invariant;
          Alcotest.test_case "merged in job order" `Quick merge_order;
          Alcotest.test_case "shared cache saves queries" `Slow
            shared_cache_saves_queries;
          Alcotest.test_case "throughput scales with domains" `Slow
            throughput_scales;
        ] );
      ( "schema",
        [
          Alcotest.test_case "jobs file round-trip" `Quick jobs_roundtrip;
          Alcotest.test_case "jobs file rejects garbage" `Quick
            jobs_rejects_garbage;
          Alcotest.test_case "identify requires a library" `Quick
            identify_requires_library;
          Alcotest.test_case "service block schema" `Quick service_json_schema;
        ] );
    ]
