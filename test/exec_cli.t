Learn a TCP model through the query-execution engine (a pool of four
workers, batched suites) and check the CLI surface: the human-readable
exec summary line, and the schema-versioned exec section plus engine
metrics in the machine-readable report.

  $ ../bin/prognosis_cli.exe learn --protocol tcp --workers 4 --batch --metrics-out m.json | grep -o 'exec: [0-9]* workers'
  exec: 4 workers

The report carries the exec stats block:

  $ grep -c '"schema":"prognosis.exec/1"' m.json
  1
  $ grep -l '"planned_words"' m.json
  m.json
  $ grep -l '"saved_resets"' m.json
  m.json
  $ grep -l '"worker_runs"' m.json
  m.json

The engine's metrics are registered alongside the learner's:

  $ grep -l '"exec.batches"' m.json
  m.json
  $ grep -l '"exec.batch_words"' m.json
  m.json
  $ grep -l '"exec.runs"' m.json
  m.json
  $ grep -l '"exec.worker_utilization"' m.json
  m.json

A plain sequential invocation advertises no exec section:

  $ ../bin/prognosis_cli.exe learn --protocol tcp --metrics-out seq.json > /dev/null
  $ grep -c '"prognosis.exec/1"' seq.json
  0
  [1]
