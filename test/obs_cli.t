Learn a TCP model with tracing and metrics enabled, then validate the
artifacts: the trace must be non-empty, well-formed JSONL in the span
schema, and the metrics file must carry the report schema with the
query-latency histogram and cache counters.

  $ ../bin/prognosis_cli.exe learn --protocol tcp --trace t.jsonl --metrics-out m.json > /dev/null

  $ ./jsonl_check.exe t.jsonl | sed 's/[0-9][0-9]*/N/'
  ok: N records

The root learning span and the hot-path spans are present:

  $ grep -c '"name":"learn"' t.jsonl
  1
  $ grep -l '"name":"oracle.mq"' t.jsonl
  t.jsonl
  $ grep -l '"name":"learner.round"' t.jsonl
  t.jsonl

The metrics file is a single machine-readable report:

  $ grep -c '"schema":"prognosis.report/1"' m.json
  1
  $ grep -l '"oracle.mq_latency_ns"' m.json
  m.json
  $ grep -l '"p99"' m.json
  m.json
  $ grep -l '"cache.hits"' m.json
  m.json

Per-worker labelled metrics appear in both the JSON report and the
OpenMetrics exposition for a pooled run:

  $ ../bin/prognosis_cli.exe learn --protocol tcp --workers 4 \
  >   --metrics-out mw.json --openmetrics mw.prom > /dev/null

  $ grep -o 'exec.worker.runs{worker=\\"3\\"}' mw.json
  exec.worker.runs{worker=\"3\"}

  $ grep -c '^prognosis_exec_worker_runs{worker=' mw.prom
  4

  $ tail -1 mw.prom
  # EOF
