(* End-to-end tests of the study pipelines: the same code paths the
   benchmark harness uses to regenerate the paper's results. *)

module Mealy = Prognosis_automata.Mealy
module Term = Prognosis_synthesis.Term
module Ext_mealy = Prognosis_synthesis.Ext_mealy
open Prognosis

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

(* --- report --- *)

let report_roundtrip () =
  let result = Tcp_study.learn ~seed:5L () in
  let r = result.Tcp_study.report in
  Alcotest.(check string) "subject" "tcp" r.Report.subject;
  Alcotest.(check int) "alphabet" 7 r.Report.alphabet;
  Alcotest.(check int) "row width" (List.length Report.header)
    (List.length (Report.to_row r));
  Alcotest.(check int) "paper's trace count" 329_554_456
    (Report.trace_count r ~max_len:10);
  Alcotest.(check bool) "pp is nonempty" true
    (String.length (Fmt.str "%a" Report.pp r) > 20)

(* --- TCP study (E1, E8) --- *)

let tcp_learn_shape () =
  let result = Tcp_study.learn ~seed:5L () in
  Alcotest.(check int) "6 states" 6 result.Tcp_study.report.Report.states;
  Alcotest.(check int) "42 transitions" 42 result.Tcp_study.report.Report.transitions

let tcp_learn_lstar_agrees () =
  let ttt = Tcp_study.learn ~seed:5L () in
  let lstar =
    Tcp_study.learn ~seed:5L ~algorithm:Prognosis_learner.Learn.L_star ()
  in
  Alcotest.(check bool) "same model" true
    (Prognosis_analysis.Model_diff.equivalent ttt.Tcp_study.model
       lstar.Tcp_study.model)

let tcp_synthesis_handshake_invariant () =
  let result = Tcp_study.learn ~seed:5L () in
  let words =
    Prognosis_tcp.Tcp_alphabet.
      [ [ Syn; Ack; Ack_psh; Ack_psh ]; [ Syn; Ack_psh; Fin_ack ]; [ Syn; Ack; Fin_ack; Ack ] ]
  in
  match Tcp_study.synthesize result words with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      match
        Ext_mealy.output_term machine ~state:(Mealy.initial result.Tcp_study.model)
          ~input:Prognosis_tcp.Tcp_alphabet.Syn ~field:1
      with
      | Some (Term.In_field_inc 0) -> ()
      | Some t -> Alcotest.fail (Fmt.str "ack term %a" Term.pp t)
      | None -> Alcotest.fail "no ack term for SYN")

let tcp_dot () =
  let result = Tcp_study.learn ~seed:5L () in
  Alcotest.(check bool) "dot mentions SYN" true
    (contains (Tcp_study.model_dot result.Tcp_study.model) "SYN")

(* --- QUIC study (E2, E4-E7) --- *)

let quic_learn_reports () =
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  let r = result.Quic_study.report in
  Alcotest.(check string) "subject" "quic:quiche-like" r.Report.subject;
  Alcotest.(check bool) "enough states" true (r.Report.states >= 4);
  Alcotest.(check bool) "queries counted" true (r.Report.membership_queries > 0)

let quic_profiles_differ () =
  let s =
    Quic_study.compare_profiles ~seed:5L Quic_study.Profile.google_like
      Quic_study.Profile.strict_retry
  in
  Alcotest.(check bool) "not equivalent" false
    s.Prognosis_analysis.Model_diff.equivalent_;
  Alcotest.(check bool) "tolerant bigger (Issue 1)" true
    (s.Prognosis_analysis.Model_diff.states_a
    > s.Prognosis_analysis.Model_diff.states_b)

let quic_same_profile_equivalent () =
  (* Learning the same profile from different seeds yields equivalent
     models: the abstraction hides all randomness. *)
  let a = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  let b = Quic_study.learn ~seed:77L ~profile:Quic_study.Profile.quiche_like () in
  Alcotest.(check bool) "equivalent" true
    (Prognosis_analysis.Model_diff.equivalent a.Quic_study.model b.Quic_study.model)

let quic_close_reset_rates () =
  let compliant = Quic_study.close_reset_rate ~runs:100 Quic_study.Profile.quiche_like in
  Alcotest.(check (float 0.001)) "compliant rate 1.0" 1.0 compliant;
  let mvfst = Quic_study.close_reset_rate ~runs:300 Quic_study.Profile.mvfst_like in
  Alcotest.(check bool)
    (Printf.sprintf "mvfst rate %.2f near 0.82" mvfst)
    true
    (mvfst > 0.72 && mvfst < 0.92)

(* The doubled Initial_crypto satisfies retry-demanding profiles (the
   second Initial echoes the token) and is a harmless ClientHello
   retransmission for the others. *)
let sdb_words =
  Quic_study.Alphabet.
    [
      [ Initial_crypto; Initial_crypto; Handshake_ack_crypto; Short_ack_stream ];
      [
        Initial_crypto;
        Initial_crypto;
        Handshake_ack_crypto;
        Short_ack_stream;
        Short_ack_flow;
      ];
      [
        Initial_crypto;
        Initial_crypto;
        Handshake_ack_crypto;
        Short_ack_flow;
        Short_ack_stream;
      ];
    ]

let quic_sdb_synthesis_compliant () =
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  match Quic_study.synthesize_sdb result sdb_words with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      match Quic_study.sdb_verdict machine with
      | `Symbolic -> ()
      | `Constant c -> Alcotest.fail (Printf.sprintf "unexpected constant %d" c)
      | `Unobserved -> Alcotest.fail "sdb never observed")

let quic_sdb_synthesis_google () =
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.google_like () in
  match Quic_study.synthesize_sdb result sdb_words with
  | Error e -> Alcotest.fail e
  | Ok machine -> (
      match Quic_study.sdb_verdict machine with
      | `Constant 0 -> ()
      | `Constant c -> Alcotest.fail (Printf.sprintf "constant %d, wanted 0" c)
      | `Symbolic -> Alcotest.fail "expected the Issue-4 constant"
      | `Unobserved -> Alcotest.fail "sdb never observed")

let quic_pn_register_synthesized () =
  (* The synthesized extended machine recovers the packet-number
     counter: the pn output field is a register that increments — the
     App. B.1 style of model, for the quantity "packet number". *)
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  match Quic_study.synthesize_sdb result sdb_words with
  | Error e -> Alcotest.fail e
  | Ok machine ->
      (* Field 0 is the packet number: somewhere in the machine there
         must be a register-based pn term and an incrementing update. *)
      let skeleton = machine.Ext_mealy.skeleton in
      let reg_output = ref false and inc_update = ref false in
      for s = 0 to Mealy.size skeleton - 1 do
        for i = 0 to Mealy.alphabet_size skeleton - 1 do
          (match machine.Ext_mealy.outputs.(s).(i).(0) with
          | Some (Term.Reg _ | Term.Reg_inc _) -> reg_output := true
          | Some _ | None -> ());
          match machine.Ext_mealy.updates.(s).(i).(0) with
          | Some (Term.Reg_inc _) -> inc_update := true
          | Some _ | None -> ()
        done
      done;
      Alcotest.(check bool) "pn expressed through a register" true !reg_output;
      Alcotest.(check bool) "register increments" true !inc_update

let quic_packet_numbers_increase () =
  let result = Quic_study.learn ~seed:5L ~profile:Quic_study.Profile.quiche_like () in
  let seqs = Quic_study.packet_number_sequences result sdb_words in
  Alcotest.(check bool) "some sequences" true
    (List.exists (fun s -> List.length s >= 2) seqs);
  List.iter
    (fun seq ->
      Alcotest.(check bool) "increasing" true
        (Prognosis_analysis.Safety.strictly_increasing seq
        = Prognosis_analysis.Safety.Holds))
    seqs

(* --- model persistence --- *)

let persist_roundtrip () =
  let result = Tcp_study.learn ~seed:5L () in
  let path = Filename.temp_file "prognosis" ".model" in
  Persist.save ~path Persist.Tcp_model result.Tcp_study.model;
  (match Persist.load_tcp ~path with
  | Error e -> Alcotest.fail (Persist.load_error_to_string e)
  | Ok model ->
      Alcotest.(check bool) "identical behaviour" true
        (Prognosis_analysis.Model_diff.equivalent model result.Tcp_study.model));
  Sys.remove path

let persist_kind_guard () =
  let result = Tcp_study.learn ~seed:5L () in
  let path = Filename.temp_file "prognosis" ".model" in
  Persist.save ~path Persist.Tcp_model result.Tcp_study.model;
  (match Persist.load_quic ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kind mismatch must be refused");
  Sys.remove path

let persist_rejects_garbage () =
  let path = Filename.temp_file "prognosis" ".model" in
  let oc = open_out path in
  output_string oc "not a model at all";
  close_out oc;
  (match Persist.load_tcp ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must be refused");
  Sys.remove path;
  match Persist.load_tcp ~path:"/nonexistent/nowhere.model" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an error"

(* Every load failure is a distinct variant a caller can branch on —
   not a pre-formatted string. *)
let persist_error_cases () =
  let path = Filename.temp_file "prognosis" ".model" in
  let write text =
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc
  in
  let expect what = function
    | Error e ->
        Alcotest.fail
          (Printf.sprintf "expected %s, got: %s" what
             (Persist.load_error_to_string e))
    | Ok _ -> Alcotest.fail (Printf.sprintf "expected %s, got a model" what)
  in
  write "something else\nentirely\n1.0\n";
  (match Persist.load_tcp ~path with
  | Error (Persist.Foreign_magic { found = "something else"; _ }) -> ()
  | r -> expect "Foreign_magic" r);
  write "prognosis-model/1\nquic\n0.00.0\n";
  (match Persist.load_tcp ~path with
  | Error (Persist.Kind_mismatch { found = "quic"; expected = "tcp"; _ }) -> ()
  | r -> expect "Kind_mismatch" r);
  write ("prognosis-model/1\ntcp\n0.00.0\n");
  (match Persist.load_tcp ~path with
  | Error (Persist.Version_mismatch { found = "0.00.0"; _ }) -> ()
  | r -> expect "Version_mismatch" r);
  write ("prognosis-model/1\ntcp\n" ^ Sys.ocaml_version ^ "\ngarbage payload");
  (match Persist.load_tcp ~path with
  | Error (Persist.Corrupt _) -> ()
  | r -> expect "Corrupt" r);
  write "prognosis-model/1\n";
  (match Persist.load_tcp ~path with
  | Error (Persist.Corrupt { detail = "truncated header"; _ }) -> ()
  | r -> expect "Corrupt (truncated header)" r);
  Sys.remove path;
  match Persist.load_tcp ~path with
  | Error (Persist.Missing_file _) -> ()
  | r -> expect "Missing_file" r

(* --- the canonical text format --- *)

module Tcp_alpha = Prognosis_tcp.Tcp_alphabet

let tcp_text model =
  Persist.text_of_model ~kind:Persist.Tcp_model
    ~input_to_string:Tcp_alpha.to_string
    ~output_to_string:Tcp_alpha.output_to_string model

let persist_text_roundtrip () =
  let r = Tcp_study.learn ~seed:5L () in
  let text = tcp_text r.Tcp_study.model in
  match Persist.parse_text ~path:"(mem)" Persist.Tcp_model text with
  | Error e -> Alcotest.fail (Persist.load_error_to_string e)
  | Ok m ->
      Alcotest.(check string)
        "byte-exact round trip" text
        (Persist.text_of_model ~kind:Persist.Tcp_model ~input_to_string:Fun.id
           ~output_to_string:Fun.id m);
      let strm =
        Persist.to_string_model ~input_to_string:Tcp_alpha.to_string
          ~output_to_string:Tcp_alpha.output_to_string r.Tcp_study.model
      in
      Alcotest.(check bool)
        "parsed model is the learned model" true
        (Prognosis_analysis.Model_diff.equivalent strm m)

let persist_text_canonical_across_runs () =
  (* Two independent runs — different seed, different algorithm — of
     the same implementation serialize byte-identically: the property
     the golden regression gate relies on. *)
  let a = Tcp_study.learn ~seed:5L () in
  let b =
    Tcp_study.learn ~seed:9L ~algorithm:Prognosis_learner.Learn.L_star ()
  in
  Alcotest.(check string)
    "canonical bytes" (tcp_text a.Tcp_study.model) (tcp_text b.Tcp_study.model)

let persist_text_errors () =
  let p = "(mem)" in
  let parse text = Persist.parse_text ~path:p Persist.Tcp_model text in
  (match parse "prognosis.model/2\nkind tcp\n" with
  | Error (Persist.Version_mismatch { found = "prognosis.model/2"; _ }) -> ()
  | _ -> Alcotest.fail "future format version must be a Version_mismatch");
  (match parse "digraph {}\n" with
  | Error (Persist.Foreign_magic _) -> ()
  | _ -> Alcotest.fail "foreign text must be a Foreign_magic");
  (match parse "prognosis.model/1\nkind quic\n" with
  | Error (Persist.Kind_mismatch { found = "quic"; expected = "tcp"; _ }) -> ()
  | _ -> Alcotest.fail "kind mismatch must be refused");
  (match parse "prognosis.model/1\nkind tcp\nstates x\n" with
  | Error (Persist.Corrupt _) -> ()
  | _ -> Alcotest.fail "malformed counts must be Corrupt");
  match Persist.load_text ~path:"/nonexistent/nowhere.model" Persist.Tcp_model with
  | Error (Persist.Missing_file _) -> ()
  | _ -> Alcotest.fail "missing file must be a Missing_file"

(* --- checkpoint / resume --- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let checkpoint_resume_identical () =
  let module C = Prognosis_learner.Checkpoint in
  let dir = Filename.temp_file "prognosis" ".ckpt" in
  Sys.remove dir;
  let budget = 150 in
  (* Interrupt a TCP study at the query budget — the controlled crash. *)
  (match
     Tcp_study.learn ~seed:5L
       ~checkpoint:(C.spec ~every:50 ~budget ~dir ())
       ()
   with
  | _ -> Alcotest.fail "expected Budget_exhausted"
  | exception C.Budget_exhausted { queries; path } ->
      Alcotest.(check int) "aborted at the budget" budget queries;
      Alcotest.(check bool) "snapshot written" true (Sys.file_exists path));
  (* Resume: the canonical model must be byte-identical to an
     uninterrupted run's, and every pre-crash SUL query must now be a
     cache hit. *)
  let resumed =
    Tcp_study.learn ~seed:5L ~checkpoint:(C.spec ~resume:true ~dir ()) ()
  in
  let full = Tcp_study.learn ~seed:5L () in
  Alcotest.(check string)
    "byte-identical canonical model"
    (tcp_text full.Tcp_study.model)
    (tcp_text resumed.Tcp_study.model);
  Alcotest.(check bool)
    "pre-crash queries answered from the warmed cache" true
    (resumed.Tcp_study.report.Report.cache_hits >= budget);
  Alcotest.(check bool)
    "resumed run touches the SUL strictly less" true
    (resumed.Tcp_study.report.Report.membership_queries
    < full.Tcp_study.report.Report.membership_queries);
  rm_rf dir

let checkpoint_kind_guard () =
  let module C = Prognosis_learner.Checkpoint in
  let dir = Filename.temp_file "prognosis" ".ckpt" in
  Sys.remove dir;
  (match
     Tcp_study.learn ~seed:5L
       ~checkpoint:(C.spec ~every:50 ~budget:100 ~dir ())
       ()
   with
  | _ -> Alcotest.fail "expected Budget_exhausted"
  | exception C.Budget_exhausted _ -> ());
  (* A DTLS resume must refuse the TCP snapshot's kind. *)
  (match C.load ~path:(Filename.concat dir "tcp.ckpt") ~kind:"dtls" with
  | Error (C.Kind_mismatch { found = "tcp"; expected = "dtls"; _ }) -> ()
  | Error e -> Alcotest.fail (C.error_to_string e)
  | Ok (_ : (unit, unit) C.snapshot) ->
      Alcotest.fail "kind mismatch must be refused");
  rm_rf dir

let quic_ncid_property () =
  (* The ncid-buggy profile violates "sequence numbers increase by 1". *)
  let learn profile =
    let result = Quic_study.learn ~seed:5L ~profile () in
    let _ =
      Prognosis_sul.Adapter.query result.Quic_study.adapter
        Quic_study.Alphabet.[ Initial_crypto; Handshake_ack_crypto ]
    in
    Prognosis_quic.Quic_client.ncid_sequence_numbers result.Quic_study.client
  in
  let buggy = learn Quic_study.Profile.ncid_buggy in
  Alcotest.(check bool) "buggy violates" true
    (Prognosis_analysis.Safety.increases_by ~stride:1 buggy
    <> Prognosis_analysis.Safety.Holds)

let () =
  Alcotest.run "core"
    [
      ("report", [ Alcotest.test_case "roundtrip" `Quick report_roundtrip ]);
      ( "persist",
        [
          Alcotest.test_case "roundtrip" `Slow persist_roundtrip;
          Alcotest.test_case "kind guard" `Slow persist_kind_guard;
          Alcotest.test_case "garbage" `Quick persist_rejects_garbage;
          Alcotest.test_case "structured errors" `Quick persist_error_cases;
          Alcotest.test_case "text roundtrip" `Slow persist_text_roundtrip;
          Alcotest.test_case "text canonical across runs" `Slow
            persist_text_canonical_across_runs;
          Alcotest.test_case "text errors" `Quick persist_text_errors;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume identical" `Slow checkpoint_resume_identical;
          Alcotest.test_case "kind guard" `Slow checkpoint_kind_guard;
        ] );
      ( "tcp-study",
        [
          Alcotest.test_case "model shape" `Slow tcp_learn_shape;
          Alcotest.test_case "l* agrees" `Slow tcp_learn_lstar_agrees;
          Alcotest.test_case "synthesis invariant" `Slow tcp_synthesis_handshake_invariant;
          Alcotest.test_case "dot" `Slow tcp_dot;
        ] );
      ( "quic-study",
        [
          Alcotest.test_case "reports" `Slow quic_learn_reports;
          Alcotest.test_case "profiles differ (issue 1)" `Slow quic_profiles_differ;
          Alcotest.test_case "seed independence" `Slow quic_same_profile_equivalent;
          Alcotest.test_case "reset rates (issue 2)" `Slow quic_close_reset_rates;
          Alcotest.test_case "sdb compliant" `Slow quic_sdb_synthesis_compliant;
          Alcotest.test_case "sdb google (issue 4)" `Slow quic_sdb_synthesis_google;
          Alcotest.test_case "packet numbers" `Slow quic_packet_numbers_increase;
          Alcotest.test_case "pn register synthesized" `Slow quic_pn_register_synthesized;
          Alcotest.test_case "ncid property" `Slow quic_ncid_property;
        ] );
    ]
