module Mealy = Prognosis_automata.Mealy
module Dfa = Prognosis_automata.Dfa
module Testing = Prognosis_automata.Testing

(* A tiny two-state toggle machine: input 'a' flips state and reports
   the state it left; input 'b' stays put. *)
let toggle =
  Mealy.make ~size:2 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 0; 1 |] |]
    ~lambda:[| [| "s0"; "stay" |]; [| "s1"; "stay" |] |]

(* Three-state counter modulo 3 on 'a'; 'b' resets to 0. *)
let counter3 =
  Mealy.make ~size:3 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 2; 0 |]; [| 0; 0 |] |]
    ~lambda:[| [| "0"; "r" |]; [| "1"; "r" |]; [| "2"; "r" |] |]

(* counter3 with a redundant duplicated state (state 3 behaves like 1). *)
let counter3_redundant =
  Mealy.make ~size:4 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 3; 0 |]; [| 2; 0 |]; [| 0; 0 |]; [| 2; 0 |] |]
    ~lambda:[| [| "0"; "r" |]; [| "1"; "r" |]; [| "2"; "r" |]; [| "1"; "r" |] |]

let run_outputs () =
  Alcotest.(check (list string))
    "toggle run" [ "s0"; "s1"; "stay"; "s0" ]
    (Mealy.run toggle [ 'a'; 'a'; 'b'; 'a' ])

let run_empty () =
  Alcotest.(check (list string)) "empty word" [] (Mealy.run toggle [])

let state_after () =
  Alcotest.(check int) "after aa" 2 (Mealy.state_after counter3 [ 'a'; 'a' ]);
  Alcotest.(check int) "after aab" 0 (Mealy.state_after counter3 [ 'a'; 'a'; 'b' ])

let make_validates () =
  Alcotest.check_raises "bad successor" (Invalid_argument "Mealy.make: successor out of range")
    (fun () ->
      ignore
        (Mealy.make ~size:1 ~initial:0 ~inputs:[| 'a' |] ~delta:[| [| 5 |] |]
           ~lambda:[| [| "x" |] |]));
  Alcotest.check_raises "bad initial" (Invalid_argument "Mealy.make: bad initial state")
    (fun () ->
      ignore
        (Mealy.make ~size:1 ~initial:3 ~inputs:[| 'a' |] ~delta:[| [| 0 |] |]
           ~lambda:[| [| "x" |] |]))

let minimize_removes_redundancy () =
  let m = Mealy.minimize counter3_redundant in
  Alcotest.(check int) "minimal size" 3 (Mealy.size m);
  Alcotest.(check (option (list char)))
    "behaviour preserved" None
    (Mealy.equivalent m counter3)

let minimize_idempotent () =
  let m = Mealy.minimize counter3 in
  Alcotest.(check int) "already minimal" 3 (Mealy.size m)

(* counter3 with states relabelled by the permutation 0->2, 1->0,
   2->1 (initial becomes 2): same behaviour, different numbering. *)
let counter3_permuted =
  Mealy.make ~size:3 ~initial:2 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 2 |]; [| 2; 2 |]; [| 0; 2 |] |]
    ~lambda:[| [| "1"; "r" |]; [| "2"; "r" |]; [| "0"; "r" |] |]

let structurally_equal a b =
  Mealy.size a = Mealy.size b
  && Mealy.initial a = Mealy.initial b
  && Mealy.inputs a = Mealy.inputs b
  &&
  let same = ref true in
  for s = 0 to Mealy.size a - 1 do
    for i = 0 to Mealy.alphabet_size a - 1 do
      if Mealy.step_idx a s i <> Mealy.step_idx b s i then same := false
    done
  done;
  !same

let canonicalize_permutation_invariant () =
  let c = Mealy.canonicalize counter3_permuted in
  Alcotest.(check int) "initial renumbered to 0" 0 (Mealy.initial c);
  Alcotest.(check (option (list char)))
    "behaviour preserved" None
    (Mealy.equivalent c counter3_permuted);
  Alcotest.(check bool)
    "same normal form as the unpermuted machine" true
    (structurally_equal c (Mealy.canonicalize counter3))

let canonicalize_idempotent () =
  let c = Mealy.canonicalize counter3_permuted in
  Alcotest.(check bool) "fixed point" true (structurally_equal c (Mealy.canonicalize c))

let canonicalize_drops_unreachable () =
  let m =
    Mealy.make ~size:3 ~initial:0 ~inputs:[| 'a' |]
      ~delta:[| [| 1 |]; [| 0 |]; [| 2 |] |]
      ~lambda:[| [| "x" |]; [| "y" |]; [| "z" |] |]
  in
  Alcotest.(check int) "unreachable dropped" 2 (Mealy.size (Mealy.canonicalize m))

let trim_unreachable () =
  (* State 2 unreachable. *)
  let m =
    Mealy.make ~size:3 ~initial:0 ~inputs:[| 'a' |]
      ~delta:[| [| 1 |]; [| 0 |]; [| 2 |] |]
      ~lambda:[| [| "x" |]; [| "y" |]; [| "z" |] |]
  in
  Alcotest.(check int) "trimmed" 2 (Mealy.size (Mealy.trim m))

let equivalent_detects_difference () =
  match Mealy.equivalent toggle counter3 with
  | None -> Alcotest.fail "expected a counterexample"
  | Some w ->
      Alcotest.(check bool)
        "counterexample is genuine" true
        (Mealy.run toggle w <> Mealy.run counter3 w)

let equivalent_shortest () =
  (* toggle vs counter3 first differ on the very first 'a'. *)
  match Mealy.equivalent toggle counter3 with
  | Some w -> Alcotest.(check int) "shortest cex" 1 (List.length w)
  | None -> Alcotest.fail "expected a counterexample"

let equivalent_same () =
  Alcotest.(check (option (list char))) "self equivalent" None
    (Mealy.equivalent counter3 counter3)

let equivalent_alphabet_mismatch () =
  let other =
    Mealy.make ~size:1 ~initial:0 ~inputs:[| 'z' |] ~delta:[| [| 0 |] |]
      ~lambda:[| [| "x" |] |]
  in
  Alcotest.check_raises "alphabet mismatch"
    (Invalid_argument "Mealy.equivalent: machines have different alphabets")
    (fun () -> ignore (Mealy.equivalent toggle other))

let access_words_reach () =
  let words = Mealy.access_words counter3 in
  Array.iteri
    (fun s w ->
      Alcotest.(check int) (Printf.sprintf "access to %d" s) s
        (Mealy.state_after counter3 w))
    words

let characterizing_set_separates () =
  let w = Mealy.characterizing_set counter3 in
  for p = 0 to 2 do
    for q = p + 1 to 2 do
      Alcotest.(check bool)
        (Printf.sprintf "separates %d %d" p q)
        true
        (List.exists (fun word -> Mealy.run_from counter3 p word <> Mealy.run_from counter3 q word) w)
    done
  done

let count_words_formula () =
  Alcotest.(check int) "2^1+2^2" 6 (Mealy.count_words ~alphabet:2 ~max_len:2);
  (* The paper's 329,554,456 traces: alphabet 7, length <= 10. *)
  Alcotest.(check int) "paper trace count" 329_554_456
    (Mealy.count_words ~alphabet:7 ~max_len:10)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let dot_output () =
  let dot = Mealy.to_dot ~input_pp:Fmt.char ~output_pp:Fmt.string toggle in
  Alcotest.(check bool) "mentions initial" true (contains dot "__start -> s0");
  Alcotest.(check bool) "has edge label" true (contains dot "a / s0")

let map_outputs_works () =
  let m = Mealy.map_outputs String.length toggle in
  Alcotest.(check (list int)) "mapped" [ 2; 2 ] (Mealy.run m [ 'a'; 'a' ])

(* --- DFA monitors --- *)

(* Safety monitor: symbol 1 must never appear after symbol 2. *)
let monitor =
  Dfa.make ~size:3 ~initial:0
    ~delta:(fun s x ->
      match (s, x) with
      | 0, 2 -> 1
      | 1, 1 -> 2
      | 2, _ -> 2
      | s, _ -> s)
    ~accepting:(fun s -> s <> 2)

let dfa_accepts () =
  Alcotest.(check bool) "ok word" true (Dfa.accepts monitor [ 1; 1; 2; 3 ]);
  Alcotest.(check bool) "bad word" false (Dfa.accepts monitor [ 2; 1 ])

let dfa_first_violation () =
  Alcotest.(check (option int)) "position" (Some 3)
    (Dfa.first_violation monitor [ 1; 2; 3; 1 ]);
  Alcotest.(check (option int)) "no violation" None
    (Dfa.first_violation monitor [ 1; 2; 3 ])

let dfa_complement () =
  let c = Dfa.complement monitor in
  Alcotest.(check bool) "flipped" true (Dfa.accepts c [ 2; 1 ] = false)

let dfa_product () =
  (* Second monitor: never read 9. *)
  let no_nine =
    Dfa.make ~size:2 ~initial:0
      ~delta:(fun s x -> if x = 9 then 1 else s)
      ~accepting:(fun s -> s = 0)
  in
  let both = Dfa.product monitor no_nine in
  Alcotest.(check bool) "ok" true (Dfa.accepts both [ 1; 2 ]);
  Alcotest.(check bool) "violates left" false (Dfa.accepts both [ 2; 1 ]);
  Alcotest.(check bool) "violates right" false (Dfa.accepts both [ 9 ])

(* --- test-suite generation --- *)

let transition_cover_size () =
  let cover = Testing.transition_cover counter3 in
  Alcotest.(check int) "3 states x 2 inputs" 6 (List.length cover)

let state_cover_reaches_all () =
  let cover = Testing.state_cover counter3 in
  Alcotest.(check int) "3 words" 3 (List.length cover);
  let states = List.sort_uniq compare (List.map (Mealy.state_after counter3) cover) in
  Alcotest.(check (list int)) "all states" [ 0; 1; 2 ] states

let middle_words_counts () =
  Alcotest.(check int) "len<=0" 1 (List.length (Testing.middle_words [| 'a'; 'b' |] 0));
  Alcotest.(check int) "len<=2" 7 (List.length (Testing.middle_words [| 'a'; 'b' |] 2))

let w_method_catches_mutant () =
  (* Mutate one output of counter3 and check the suite detects it. *)
  let mutant =
    Mealy.make ~size:3 ~initial:0 ~inputs:[| 'a'; 'b' |]
      ~delta:[| [| 1; 0 |]; [| 2; 0 |]; [| 0; 0 |] |]
      ~lambda:[| [| "0"; "r" |]; [| "1"; "r" |]; [| "2"; "X" |] |]
  in
  let suite = Testing.w_method counter3 in
  Alcotest.(check bool) "suite kills mutant" true
    (List.exists (fun w -> Mealy.run counter3 w <> Mealy.run mutant w) suite)

let wp_method_kills_mutant () =
  let mutant =
    Mealy.make ~size:3 ~initial:0 ~inputs:[| 'a'; 'b' |]
      ~delta:[| [| 1; 0 |]; [| 2; 0 |]; [| 0; 0 |] |]
      ~lambda:[| [| "0"; "r" |]; [| "1"; "r" |]; [| "2"; "X" |] |]
  in
  let suite = Testing.wp_method ~extra_states:1 counter3 in
  Alcotest.(check bool) "suite kills mutant" true
    (List.exists (fun w -> Mealy.run counter3 w <> Mealy.run mutant w) suite);
  Alcotest.(check int) "no duplicates" (List.length suite)
    (List.length (List.sort_uniq compare suite))

let suite_counts () =
  let suite = [ [ 'a' ]; [ 'a'; 'b' ] ] in
  Alcotest.(check int) "size" 2 (Testing.suite_size suite);
  Alcotest.(check int) "symbols" 3 (Testing.suite_symbols suite)

(* --- property-based --- *)

let gen_mealy =
  (* Random machines over a 2-symbol alphabet with <= 5 states and
     outputs in 0..2. *)
  QCheck2.Gen.(
    let* size = int_range 1 5 in
    let* delta =
      array_size (return size) (array_size (return 2) (int_range 0 (size - 1)))
    in
    let* lambda = array_size (return size) (array_size (return 2) (int_range 0 2)) in
    return (Mealy.make ~size ~initial:0 ~inputs:[| 'a'; 'b' |] ~delta ~lambda))

let gen_word = QCheck2.Gen.(list_size (int_range 0 12) (oneofl [ 'a'; 'b' ]))

let prop_minimize_preserves =
  QCheck2.Test.make ~count:200 ~name:"minimize preserves behaviour"
    QCheck2.Gen.(pair gen_mealy gen_word)
    (fun (m, w) -> Mealy.run m w = Mealy.run (Mealy.minimize m) w)

let prop_minimize_minimal =
  QCheck2.Test.make ~count:100 ~name:"minimized machines have pairwise-distinct states"
    gen_mealy
    (fun m ->
      let m = Mealy.minimize m in
      let ok = ref true in
      for p = 0 to Mealy.size m - 1 do
        for q = p + 1 to Mealy.size m - 1 do
          if Mealy.distinguishing_word m p q = None then ok := false
        done
      done;
      !ok)

let prop_canonicalize_preserves =
  QCheck2.Test.make ~count:200 ~name:"canonicalize preserves behaviour"
    QCheck2.Gen.(pair gen_mealy gen_word)
    (fun (m, w) -> Mealy.run m w = Mealy.run (Mealy.canonicalize m) w)

let prop_equivalent_reflexive =
  QCheck2.Test.make ~count:100 ~name:"equivalence is reflexive" gen_mealy
    (fun m -> Mealy.equivalent m m = None)

let prop_equivalent_cex_valid =
  QCheck2.Test.make ~count:200 ~name:"equivalence counterexamples are genuine"
    QCheck2.Gen.(pair gen_mealy gen_mealy)
    (fun (a, b) ->
      match Mealy.equivalent a b with
      | None -> true
      | Some w -> Mealy.run a w <> Mealy.run b w)

let prop_w_method_sound =
  QCheck2.Test.make ~count:100 ~name:"w-method suite words run without error"
    gen_mealy
    (fun m ->
      let suite = Testing.w_method m in
      List.for_all (fun w -> List.length (Mealy.run m w) = List.length w) suite)

let () =
  Alcotest.run "automata"
    [
      ( "mealy",
        [
          Alcotest.test_case "run outputs" `Quick run_outputs;
          Alcotest.test_case "run empty" `Quick run_empty;
          Alcotest.test_case "state_after" `Quick state_after;
          Alcotest.test_case "make validates" `Quick make_validates;
          Alcotest.test_case "minimize removes redundancy" `Quick minimize_removes_redundancy;
          Alcotest.test_case "minimize idempotent" `Quick minimize_idempotent;
          Alcotest.test_case "trim unreachable" `Quick trim_unreachable;
          Alcotest.test_case "canonicalize permutation-invariant" `Quick
            canonicalize_permutation_invariant;
          Alcotest.test_case "canonicalize idempotent" `Quick canonicalize_idempotent;
          Alcotest.test_case "canonicalize drops unreachable" `Quick
            canonicalize_drops_unreachable;
          Alcotest.test_case "equivalent detects difference" `Quick equivalent_detects_difference;
          Alcotest.test_case "equivalent shortest" `Quick equivalent_shortest;
          Alcotest.test_case "equivalent same" `Quick equivalent_same;
          Alcotest.test_case "alphabet mismatch" `Quick equivalent_alphabet_mismatch;
          Alcotest.test_case "access words reach" `Quick access_words_reach;
          Alcotest.test_case "characterizing set separates" `Quick characterizing_set_separates;
          Alcotest.test_case "count_words" `Quick count_words_formula;
          Alcotest.test_case "dot output" `Quick dot_output;
          Alcotest.test_case "map_outputs" `Quick map_outputs_works;
        ] );
      ( "dfa",
        [
          Alcotest.test_case "accepts" `Quick dfa_accepts;
          Alcotest.test_case "first violation" `Quick dfa_first_violation;
          Alcotest.test_case "complement" `Quick dfa_complement;
          Alcotest.test_case "product" `Quick dfa_product;
        ] );
      ( "testing",
        [
          Alcotest.test_case "transition cover size" `Quick transition_cover_size;
          Alcotest.test_case "state cover reaches all" `Quick state_cover_reaches_all;
          Alcotest.test_case "middle words counts" `Quick middle_words_counts;
          Alcotest.test_case "w-method kills mutant" `Quick w_method_catches_mutant;
          Alcotest.test_case "wp kills mutant" `Quick wp_method_kills_mutant;
          Alcotest.test_case "suite counts" `Quick suite_counts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_minimize_preserves;
            prop_minimize_minimal;
            prop_canonicalize_preserves;
            prop_equivalent_reflexive;
            prop_equivalent_cex_valid;
            prop_w_method_sound;
          ] );
    ]
