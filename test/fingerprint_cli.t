Open-world fingerprinting via the CLI. A model library is a directory
of canonical prognosis.model/1 files plus a prognosis.library/1
manifest; `library build` scans it (the committed goldens here) and
writes the manifest:

  $ mkdir lib
  $ cp ../examples/golden/*.model lib/
  $ ../bin/prognosis_cli.exe library build lib
  library lib: 3 entries
  $ grep -o '"schema":"prognosis.library/1"' lib/library.json
  "schema":"prognosis.library/1"

  $ ../bin/prognosis_cli.exe library list lib
  tcp:
    tcp                        6 states   42 transitions  tcp.model
  quic:
    quic-quiche-like           8 states   56 transitions  quic-quiche-like.model
  dtls:
    dtls                       7 states   42 transitions  dtls.model
  3 entries

Identifying a known endpoint walks the classification tree and
confirms the candidate with its state cover x characterizing set — a
few dozen words instead of the ~1000 membership queries full learning
costs:

  $ ../bin/prognosis_cli.exe identify --library lib --subject tcp --no-extend
  known: tcp
  queries: 12 words, 32 symbols (0 walk + 12 confirm)
  endpoint identified as tcp

A fault-injected variant (a DTLS server that skips the cookie
round-trip) diverges from every library entry. The open-world path
learns it in full and extends the library:

  $ ../bin/prognosis_cli.exe identify --library lib --subject dtls:no-cookie
  novel (diverged during confirm)
    word:   CLIENT_HELLO(?)
    output: {SERVER_HELLO,CERTIFICATE,SERVER_HELLO_DONE}
    known:  {HELLO_VERIFY_REQUEST}
  queries: 34 words, 118 symbols (0 walk + 34 confirm)
  novel endpoint: learning a full model...
  learned 6 states in 1335 membership queries
  library extended: dtls:no-cookie (4 entries)

The second encounter is cheap — the rebuilt tree separates the two
DTLS behaviours on a one-symbol word:

  $ ../bin/prognosis_cli.exe identify --library lib --subject dtls:no-cookie --no-extend
  known: dtls:no-cookie
  queries: 29 words, 88 symbols (1 walk + 29 confirm)
  endpoint identified as dtls:no-cookie

  $ ../bin/prognosis_cli.exe library inspect lib
  tcp: 1 entry, tree depth 0, 0 separating word(s), longest 0 symbol(s)
    tcp
  quic: 1 entry, tree depth 0, 0 separating word(s), longest 0 symbol(s)
    quic-quiche-like
  dtls: 2 entries, tree depth 1, 1 separating word(s), longest 1 symbol(s)
    ask: CLIENT_HELLO(?)
    -> {HELLO_VERIFY_REQUEST}:
      dtls
    -> {SERVER_HELLO,CERTIFICATE,SERVER_HELLO_DONE}:
      dtls:no-cookie

The report written by --metrics-out carries the identification block
(schema prognosis.identification/1) inside a prognosis.report/1
document:

  $ ../bin/prognosis_cli.exe identify --library lib --subject tcp --no-extend --metrics-out id.json > /dev/null
  $ grep -o '"identification":{"schema":"prognosis.identification/1","outcome":"known","entry":"tcp"' id.json
  "identification":{"schema":"prognosis.identification/1","outcome":"known","entry":"tcp"
