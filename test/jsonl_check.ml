(* Validates a JSONL trace file: the first line must be the versioned
   prognosis.trace/1 meta header, and every line must be a JSON object
   carrying the meta/span/event schema ("type", "name", and the timing
   fields for its kind). Prints a one-line summary so cram output is
   stable, exits 1 on the first violation. *)

module Jsonx = Prognosis_obs.Jsonx

let fail line msg =
  Printf.eprintf "line %d: %s\n" line msg;
  exit 1

let require_int line json name =
  match Jsonx.member name json |> Option.map Jsonx.to_int_opt |> Option.join with
  | Some _ -> ()
  | None -> fail line (Printf.sprintf "missing integer field %S" name)

let check_line n line =
  match Jsonx.of_string_opt line with
  | None -> fail n "not valid JSON"
  | Some json -> (
      let str name =
        Jsonx.member name json |> Option.map Jsonx.to_string_opt |> Option.join
      in
      match str "type" with
      | Some "meta" -> (
          match str "schema" with
          | Some s when s = Prognosis_obs.Trace.schema -> ()
          | Some s -> fail n (Printf.sprintf "unknown trace schema %S" s)
          | None -> fail n "meta record missing \"schema\"")
      | Some (("span" | "event") as t) -> (
          (match str "name" with
          | Some _ -> ()
          | None -> fail n "missing \"name\"");
          if n = 1 then
            fail 1 "first record is not the prognosis.trace/1 meta header";
          match t with
          | "span" ->
              List.iter (require_int n json)
                [ "id"; "start_ns"; "end_ns"; "dur_ns" ]
          | _ -> List.iter (require_int n json) [ "id"; "t_ns" ])
      | Some t -> fail n (Printf.sprintf "unknown record type %S" t)
      | None -> fail n "missing \"type\"")

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: jsonl_check TRACE.jsonl";
        exit 2
  in
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr n;
       check_line !n line
     done
   with End_of_file -> close_in ic);
  if !n = 0 then fail 0 "empty trace";
  Printf.printf "ok: %d records\n" !n
