(* Tests for the telemetry layer: histogram buckets and quantiles,
   span nesting/ordering, JSONL sink round-trips, and the
   instrumentation contracts the learner relies on (membership-query
   counts = cache misses, TCP learn runs emit the expected spans). *)

module Jsonx = Prognosis_obs.Jsonx
module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace
module Clock = Prognosis_obs.Clock
module Labels = Prognosis_obs.Labels
module Ring = Prognosis_obs.Ring
module Openmetrics = Prognosis_obs.Openmetrics
module Span_tree = Prognosis_obs.Span_tree
module Report_diff = Prognosis_obs.Report_diff
module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Nondet = Prognosis_sul.Nondet
module Oracle = Prognosis_learner.Oracle
module Cache = Prognosis_learner.Cache
module Learn = Prognosis_learner.Learn
open Prognosis

(* A deterministic clock: each call advances 1000 ns. *)
let install_tick_clock () =
  let t = ref 0L in
  Clock.set_source (fun () ->
      t := Int64.add !t 1000L;
      !t)

let is_meta r = Jsonx.member "type" r = Some (Jsonx.String "meta")

(* span/event records only — the versioned meta header every stream
   opens with is dropped (meta_header_emitted tests it explicitly) *)
let with_memory_trace f =
  let sink, records = Trace.Sink.memory () in
  Trace.set_sink sink;
  Fun.protect ~finally:Trace.unset_sink (fun () ->
      let v = f () in
      (v, List.filter (fun r -> not (is_meta r)) (records ())))

(* --- jsonx --- *)

let jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("s", Jsonx.String "a\"b\\c\nd\ttab\x01e");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 1.5);
        ("whole", Jsonx.Float 3.0);
        ("b", Jsonx.Bool true);
        ("n", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Obj []; Jsonx.List [] ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (Jsonx.of_string (Jsonx.to_string v) = v);
  Alcotest.(check bool) "ws tolerated" true
    (Jsonx.of_string " { \"a\" : [ 1 , 2 ] } "
    = Jsonx.Obj [ ("a", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 2 ]) ]);
  Alcotest.(check bool) "garbage rejected" true
    (Jsonx.of_string_opt "{\"a\":}" = None);
  Alcotest.(check bool) "trailing rejected" true (Jsonx.of_string_opt "1 2" = None)

(* --- metrics --- *)

let histogram_buckets () =
  (* bucket 0 is (0,1]; bucket i is (10^((i-1)/5), 10^(i/5)] *)
  Alcotest.(check int) "0.5 -> 0" 0 (Metrics.bucket_index 0.5);
  Alcotest.(check int) "1.0 -> 0" 0 (Metrics.bucket_index 1.0);
  Alcotest.(check int) "1.1 -> 1" 1 (Metrics.bucket_index 1.1);
  Alcotest.(check int) "10 -> 5" 5 (Metrics.bucket_index 10.0);
  Alcotest.(check int) "11 -> 6" 6 (Metrics.bucket_index 11.0);
  Alcotest.(check int) "1e6 -> 30" 30 (Metrics.bucket_index 1e6);
  Alcotest.(check int) "huge clamps" (Metrics.bucket_index 1e300)
    (Metrics.bucket_index 1e200);
  Alcotest.(check (float 1e-9) "upper of 5 is 10" 10.0 (Metrics.bucket_upper 5))

let histogram_quantiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "q" in
  (* 100 observations: 1..100 *)
  for v = 1 to 100 do
    Metrics.observe h (float_of_int v)
  done;
  (* p50: rank 50; buckets up to 10^(i/5); the bucket holding the 50th
     smallest value (50) has upper bound 10^(9/5) ~ 63.1 *)
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.1f in [50, 63.2]" p50)
    true
    (p50 >= 50.0 && p50 <= 63.2);
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 %.1f in [99, 100]" p99)
    true
    (p99 >= 99.0 && p99 <= 100.0);
  Alcotest.(check (float 1e-9) "p0 is min" 1.0 (Metrics.quantile h 0.0));
  Alcotest.(check (float 1e-9) "mean" 50.5 (Metrics.mean h));
  (* quantiles never exceed the observed max *)
  Alcotest.(check bool) "p100 <= max" true (Metrics.quantile h 1.0 <= 100.0);
  let empty = Metrics.histogram r "empty" in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Metrics.quantile empty 0.5))

let metrics_registry () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  let g = Metrics.gauge r "g" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  Metrics.set g 2.5;
  Alcotest.(check int) "counter" 5 !c;
  (* get-or-create returns the same ref *)
  Metrics.inc (Metrics.counter r "c");
  Alcotest.(check int) "shared ref" 6 !c;
  (match Metrics.counter r "g" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must be refused");
  let json = Metrics.to_json r in
  Alcotest.(check bool) "counter in json" true
    (Jsonx.member "counters" json
    |> Option.map (Jsonx.member "c")
    |> Option.join = Some (Jsonx.Int 6));
  (* reset zeroes in place: old refs stay valid *)
  Metrics.reset r;
  Alcotest.(check int) "reset" 0 !c;
  Metrics.inc c;
  Alcotest.(check int) "ref alive after reset" 1 !c

(* --- trace --- *)

let field name j =
  match Jsonx.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("missing field " ^ name)

let str name j =
  match Jsonx.to_string_opt (field name j) with
  | Some s -> s
  | None -> Alcotest.fail (name ^ " not a string")

let num name j =
  match Jsonx.to_int_opt (field name j) with
  | Some n -> n
  | None -> Alcotest.fail (name ^ " not an int")

let span_nesting_and_ordering () =
  install_tick_clock ();
  let (), records =
    with_memory_trace (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "first" (fun () -> Trace.event "ping");
            Trace.with_span ~attrs:[ ("k", Jsonx.Int 7) ] "second" ignore))
  in
  Clock.use_wall_clock ();
  (* close order: first's ping is an event (emitted immediately), then
     first closes, then second, then outer *)
  let names = List.map (str "name") records in
  Alcotest.(check (list string)) "emission order"
    [ "ping"; "first"; "second"; "outer" ] names;
  let by_name n = List.find (fun r -> str "name" r = n) records in
  let outer = by_name "outer" in
  let first = by_name "first" in
  let second = by_name "second" in
  let ping = by_name "ping" in
  Alcotest.(check bool) "outer is root" true (field "parent" outer = Jsonx.Null);
  Alcotest.(check int) "first nested in outer" (num "id" outer) (num "parent" first);
  Alcotest.(check int) "second nested in outer" (num "id" outer) (num "parent" second);
  Alcotest.(check int) "ping nested in first" (num "id" first) (num "parent" ping);
  (* ids are allocated in creation order *)
  Alcotest.(check bool) "creation order" true
    (num "id" outer < num "id" first
    && num "id" first < num "id" ping
    && num "id" ping < num "id" second);
  (* timing: monotonic tick clock => strictly positive, nested durations *)
  Alcotest.(check bool) "outer spans children" true
    (num "start_ns" outer < num "start_ns" first
    && num "end_ns" first <= num "end_ns" outer);
  Alcotest.(check bool) "durations positive" true
    (num "dur_ns" outer > 0 && num "dur_ns" first > 0);
  Alcotest.(check bool) "attr kept" true
    (Jsonx.member "attrs" second
    |> Option.map (Jsonx.member "k")
    |> Option.join = Some (Jsonx.Int 7))

let span_error_attr () =
  let (), records =
    with_memory_trace (fun () ->
        try Trace.with_span "boom" (fun () -> failwith "kaput")
        with Failure _ -> ())
  in
  match records with
  | [ r ] ->
      Alcotest.(check string) "span name" "boom" (str "name" r);
      let err =
        Jsonx.member "attrs" r |> Option.map (Jsonx.member "error") |> Option.join
      in
      Alcotest.(check bool) "error recorded" true
        (match err with Some (Jsonx.String s) -> s <> "" | _ -> false)
  | _ -> Alcotest.fail "expected exactly one record"

let jsonl_sink_roundtrip () =
  let path = Filename.temp_file "prognosis_trace" ".jsonl" in
  Trace.set_sink (Trace.Sink.jsonl_file path);
  Trace.with_span ~attrs:[ ("proto", Jsonx.String "tcp") ] "a" (fun () ->
      Trace.event ~attrs:[ ("bytes", Jsonx.Int 40) ] "net.loss");
  Trace.unset_sink ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "meta + two records" 3 (List.length lines);
  let parsed = List.map Jsonx.of_string lines in
  Alcotest.(check (list string)) "types" [ "meta"; "event"; "span" ]
    (List.map (str "type") parsed);
  Alcotest.(check string) "stream is versioned" "prognosis.trace/1"
    (str "schema" (List.hd parsed));
  Alcotest.(check (list string)) "names" [ "net.loss"; "a" ]
    (List.map (str "name") (List.tl parsed));
  Alcotest.(check bool) "attr roundtrip" true
    (Jsonx.member "attrs" (List.nth parsed 1)
    |> Option.map (Jsonx.member "bytes")
    |> Option.join = Some (Jsonx.Int 40))

let meta_header_emitted () =
  let sink, records = Trace.Sink.memory () in
  Trace.set_sink sink;
  Trace.unset_sink ();
  match records () with
  | [ m ] ->
      Alcotest.(check string) "type" "meta" (str "type" m);
      Alcotest.(check string) "schema" "prognosis.trace/1" (str "schema" m);
      Alcotest.(check string) "clock" "monotonic_ns" (str "clock" m)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 meta record, got %d" (List.length l))

(* With no sink installed, instrumentation must stay one branch per
   call site: in particular the clock is never read. The counting
   source makes that observable. *)
let no_sink_fast_path () =
  Trace.unset_sink ();
  let calls = ref 0 in
  Clock.set_source (fun () ->
      incr calls;
      Int64.of_int (!calls * 1000));
  let baseline = !calls in
  Trace.with_span "s" (fun () ->
      Trace.event "e";
      Trace.add_attr "k" (Jsonx.Int 1));
  Alcotest.(check int) "no clock reads without a sink" baseline !calls;
  let sink, _ = Trace.Sink.memory () in
  Trace.set_sink sink;
  Trace.with_span "s" (fun () -> Trace.event "e");
  Trace.unset_sink ();
  Alcotest.(check bool) "clock read once a sink is installed" true
    (!calls > baseline);
  Clock.use_wall_clock ()

(* --- labels --- *)

let labels_roundtrip () =
  let enc = Labels.encode "exec.worker.runs" [ ("worker", "3") ] in
  Alcotest.(check string) "encoded" "exec.worker.runs{worker=\"3\"}" enc;
  Alcotest.(check bool) "split inverse" true
    (Labels.split enc = ("exec.worker.runs", [ ("worker", "3") ]));
  Alcotest.(check string) "keys sorted"
    (Labels.encode "m" [ ("a", "1"); ("b", "2") ])
    (Labels.encode "m" [ ("b", "2"); ("a", "1") ]);
  let tricky = "a\\b\"c\nd" in
  let enc = Labels.encode "m" [ ("k", tricky) ] in
  Alcotest.(check bool) "escape roundtrip" true
    (Labels.split enc = ("m", [ ("k", tricky) ]));
  Alcotest.(check string) "no labels" "plain" (Labels.encode "plain" []);
  Alcotest.(check bool) "plain splits" true (Labels.split "plain" = ("plain", []));
  match Labels.split "m{k=}" with
  | exception Labels.Malformed _ -> ()
  | _ -> Alcotest.fail "malformed label block must raise"

let labelled_metrics () =
  let r = Metrics.create () in
  let c0 = Metrics.counter_l r "exec.worker.runs" [ ("worker", "0") ] in
  let c1 = Metrics.counter_l r "exec.worker.runs" [ ("worker", "1") ] in
  Metrics.inc ~by:3 c0;
  Metrics.inc c1;
  (* same name + labels -> same ref *)
  Metrics.inc (Metrics.counter_l r "exec.worker.runs" [ ("worker", "0") ]);
  Alcotest.(check int) "shared labelled ref" 4 !c0;
  let counters = field "counters" (Metrics.to_json r) in
  Alcotest.(check bool) "labelled counter in json" true
    (Jsonx.member "exec.worker.runs{worker=\"0\"}" counters = Some (Jsonx.Int 4));
  match Metrics.snapshot r with
  | [ (n0, Metrics.V_counter 4); (n1, Metrics.V_counter 1) ] ->
      Alcotest.(check string) "first" "exec.worker.runs{worker=\"0\"}" n0;
      Alcotest.(check string) "second" "exec.worker.runs{worker=\"1\"}" n1
  | _ -> Alcotest.fail "unexpected snapshot shape"

(* --- openmetrics --- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let count_substring ~sub s =
  let n = String.length sub in
  let rec go i acc =
    if i + n > String.length s then acc
    else if String.sub s i n = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let openmetrics_rendering () =
  let r = Metrics.create () in
  Metrics.inc ~by:5 (Metrics.counter_l r "exec.worker.runs" [ ("worker", "0") ]);
  Metrics.inc ~by:7 (Metrics.counter_l r "exec.worker.runs" [ ("worker", "1") ]);
  Metrics.set (Metrics.gauge r "exec.workers") 2.0;
  let h = Metrics.histogram r "oracle.mq_latency_ns" in
  Metrics.observe h 5.0;
  Metrics.observe h 500.0;
  let text = Openmetrics.render r in
  Alcotest.(check string) "name mangling" "prognosis_exec_worker_runs"
    (Openmetrics.metric_name "exec.worker.runs");
  Alcotest.(check int) "one TYPE line per family" 1
    (count_substring ~sub:"# TYPE prognosis_exec_worker_runs counter" text);
  Alcotest.(check bool) "labelled counter sample" true
    (contains ~sub:"prognosis_exec_worker_runs_total{worker=\"0\"} 5" text);
  Alcotest.(check bool) "second label set" true
    (contains ~sub:"prognosis_exec_worker_runs_total{worker=\"1\"} 7" text);
  Alcotest.(check bool) "gauge sample" true
    (contains ~sub:"prognosis_exec_workers 2" text);
  Alcotest.(check bool) "histogram type" true
    (contains ~sub:"# TYPE prognosis_oracle_mq_latency_ns histogram" text);
  Alcotest.(check bool) "inf bucket cumulative" true
    (contains ~sub:"prognosis_oracle_mq_latency_ns_bucket{le=\"+Inf\"} 2" text);
  Alcotest.(check bool) "histogram sum" true
    (contains ~sub:"prognosis_oracle_mq_latency_ns_sum 505" text);
  Alcotest.(check bool) "histogram count" true
    (contains ~sub:"prognosis_oracle_mq_latency_ns_count 2" text);
  let n = String.length text in
  Alcotest.(check string) "EOF terminator" "# EOF\n"
    (String.sub text (n - 6) 6)

(* --- flight recorder ring --- *)

let mk_event name =
  Jsonx.Obj [ ("type", Jsonx.String "event"); ("name", Jsonx.String name) ]

let ring_bounds () =
  let ring = Ring.create ~capacity:4 () in
  let sink = Ring.sink ring in
  for i = 1 to 10 do
    sink.Trace.emit (mk_event (string_of_int i))
  done;
  Alcotest.(check int) "capacity" 4 (Ring.capacity ring);
  Alcotest.(check int) "dropped" 6 (Ring.dropped ring);
  Alcotest.(check (list string)) "last four, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (str "name") (Ring.records ring));
  (* stream meta headers are not buffered *)
  sink.Trace.emit (Trace.meta_record ());
  Alcotest.(check int) "meta not buffered" 4 (List.length (Ring.records ring))

let ring_dump_is_parseable () =
  install_tick_clock ();
  let ring = Ring.create ~capacity:8 () in
  Trace.set_sink (Ring.sink ring);
  for _ = 1 to 20 do
    Trace.with_span "learner.round" ignore
  done;
  Trace.unset_sink ();
  Clock.use_wall_clock ();
  let path = Filename.temp_file "prognosis_flight" ".jsonl" in
  Ring.dump ring ~path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let parsed = List.rev_map Jsonx.of_string !lines in
  (match parsed with
  | meta :: rest ->
      Alcotest.(check string) "flight meta schema" "prognosis.trace/1"
        (str "schema" meta);
      Alcotest.(check bool) "flight flag" true
        (Jsonx.member "flight" meta = Some (Jsonx.Bool true));
      Alcotest.(check int) "capacity recorded" 8 (num "capacity" meta);
      Alcotest.(check int) "dropped recorded" 12 (num "dropped" meta);
      Alcotest.(check int) "ring bound respected" 8 (List.length rest);
      List.iter
        (fun r ->
          Alcotest.(check string) "span kept" "learner.round" (str "name" r))
        rest
  | [] -> Alcotest.fail "empty flight dump");
  (* dumping is atomic: no .tmp litter *)
  Alcotest.(check bool) "no temp litter" false (Sys.file_exists (path ^ ".tmp"))

(* --- span tree --- *)

let span_tree_analysis () =
  install_tick_clock ();
  let (), records =
    with_memory_trace (fun () ->
        Trace.with_span "learn" (fun () ->
            Trace.with_span
              ~attrs:[ ("phase", Jsonx.String "learning") ]
              "learner.round"
              (fun () ->
                Trace.with_span ~attrs:[ ("len", Jsonx.Int 3) ] "oracle.mq"
                  ignore;
                Trace.with_span ~attrs:[ ("len", Jsonx.Int 5) ] "oracle.mq"
                  (fun () -> Trace.event "ping");
                Trace.with_span
                  ~attrs:[ ("phase", Jsonx.String "eq-oracle") ]
                  "learner.eq_query" ignore)))
  in
  Clock.use_wall_clock ();
  let module T = Span_tree in
  match T.of_records records with
  | [ root ] ->
      Alcotest.(check string) "root" "learn" root.T.name;
      Alcotest.(check int) "five spans" 5 (List.length (T.spans [ root ]));
      (* critical path descends through the round *)
      let path_names = List.map (fun n -> n.T.name) (T.critical_path root) in
      Alcotest.(check bool) "path starts learn -> learner.round" true
        (match path_names with
        | "learn" :: "learner.round" :: _ -> true
        | _ -> false);
      (* the mq containing the event ran longer (one extra clock read) *)
      (match T.top_slowest ~name:"oracle.mq" ~k:1 [ root ] with
      | [ slow ] ->
          Alcotest.(check bool) "slowest mq is the len=5 one" true
            (List.assoc_opt "len" slow.T.attrs = Some (Jsonx.Int 5))
      | _ -> Alcotest.fail "expected one slowest span");
      (* phases: eq-oracle time must not double-count inside learning *)
      let phases = T.phase_breakdown [ root ] in
      let get p = Option.value ~default:(-1) (List.assoc_opt p phases) in
      Alcotest.(check bool) "both phases present" true
        (get "learning" > 0 && get "eq-oracle" > 0);
      let round =
        List.find (fun n -> n.T.name = "learner.round") (T.spans [ root ])
      in
      Alcotest.(check int) "learning excludes eq-oracle"
        (round.T.dur_ns - get "eq-oracle")
        (get "learning");
      (* aggregated rendering collapses the two mq spans *)
      let rendered = T.render_tree [ root ] in
      Alcotest.(check bool) "mq aggregated" true
        (contains ~sub:"oracle.mq  x2" rendered)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length l))

let span_tree_orphans_become_roots () =
  (* a crashed run: children written, parent span never closed *)
  let records =
    [
      Jsonx.Obj
        [
          ("type", Jsonx.String "span");
          ("name", Jsonx.String "oracle.mq");
          ("id", Jsonx.Int 2);
          ("parent", Jsonx.Int 1);
          ("start_ns", Jsonx.Int 0);
          ("end_ns", Jsonx.Int 10);
          ("dur_ns", Jsonx.Int 10);
          ("attrs", Jsonx.Null);
        ];
    ]
  in
  match Span_tree.of_records records with
  | [ r ] -> Alcotest.(check string) "orphan is a root" "oracle.mq" r.Span_tree.name
  | _ -> Alcotest.fail "expected the orphan as root"

(* --- report diff --- *)

let report_diff_gate () =
  let a =
    Jsonx.of_string
      {|{"reports":[{"subject":"tcp","algorithm":"ttt","membership_queries":100,"states":6}],"benchmarks_ns_per_run":{"E1_learn":1000.0},"exec":{"baseline_resets":50}}|}
  in
  let b =
    Jsonx.of_string
      {|{"reports":[{"subject":"tcp","algorithm":"ttt","membership_queries":120,"states":6}],"benchmarks_ns_per_run":{"E1_learn":1200.0},"exec":{"baseline_resets":500}}|}
  in
  let module D = Report_diff in
  Alcotest.(check bool) "subject keying" true
    (List.mem_assoc "reports.tcp:ttt.membership_queries" (D.flatten a));
  let deltas = D.diff a b in
  let changed = List.filter D.changed deltas in
  Alcotest.(check int) "three changed paths" 3 (List.length changed);
  (* default 10% gate catches the 20% growths, ignores baseline echoes *)
  let regs = D.regressions deltas in
  Alcotest.(check (list string)) "regressed paths"
    [ "benchmarks_ns_per_run.E1_learn"; "reports.tcp:ttt.membership_queries" ]
    (List.map (fun d -> d.D.path) regs);
  (* a looser threshold passes *)
  Alcotest.(check int) "25% threshold passes" 0
    (List.length (D.regressions ~threshold:0.25 deltas));
  (* identical reports: no deltas, no regressions *)
  let self = D.diff a a in
  Alcotest.(check int) "self-diff unchanged" 0
    (List.length (List.filter D.changed self));
  Alcotest.(check int) "self-diff gate" 0 (List.length (D.regressions self));
  (* improvement is not a regression *)
  Alcotest.(check int) "improvement ok" 0
    (List.length (D.regressions (D.diff b a) |> List.filter (fun d -> d.D.path <> "exec.baseline_resets")));
  Alcotest.(check bool) "watch excludes states" false (D.default_watch "reports.tcp:ttt.states");
  Alcotest.(check bool) "watch excludes baseline" false
    (D.default_watch "exec.baseline_resets")

(* --- jsonx properties --- *)

let gen_jsonx =
  let open QCheck2.Gen in
  (* dyadic floats round-trip exactly through %.17g *)
  let leaf =
    oneof
      [
        return Jsonx.Null;
        map (fun b -> Jsonx.Bool b) bool;
        map (fun n -> Jsonx.Int n) int;
        map (fun i -> Jsonx.Float (float_of_int i /. 16.0)) int;
        map (fun s -> Jsonx.String s) (string_size ~gen:printable (int_bound 10));
      ]
  in
  let key = string_size ~gen:printable (int_bound 6) in
  sized
  @@ fix (fun self n ->
         if n = 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Jsonx.List l) (list_size (int_bound 4) (self (n / 2)));
               map
                 (fun l -> Jsonx.Obj l)
                 (list_size (int_bound 4) (pair key (self (n / 2))));
             ])

let prop_jsonx_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"jsonx roundtrip" ~print:Jsonx.to_string
    gen_jsonx (fun v -> Jsonx.of_string (Jsonx.to_string v) = v)

let jsonx_rejects_deep_nesting () =
  let deep = String.make 2000 '[' ^ String.make 2000 ']' in
  Alcotest.(check bool) "2000 levels rejected" true
    (Jsonx.of_string_opt deep = None);
  let shallow = String.make 100 '[' ^ String.make 100 ']' in
  Alcotest.(check bool) "100 levels accepted" true
    (Jsonx.of_string_opt shallow <> None)

let jsonx_escape_edges () =
  let s = "\x00\x01\x1f \" \\ / \n\r\t\b\x0c" in
  Alcotest.(check bool) "control chars roundtrip" true
    (Jsonx.of_string (Jsonx.to_string (Jsonx.String s)) = Jsonx.String s);
  Alcotest.(check bool) "unicode escape decodes to UTF-8" true
    (Jsonx.of_string "\"\\u00e9\"" = Jsonx.String "\xc3\xa9");
  Alcotest.(check bool) "bad escape rejected" true
    (Jsonx.of_string_opt "\"\\x\"" = None);
  Alcotest.(check bool) "truncated unicode rejected" true
    (Jsonx.of_string_opt "\"\\u00" = None);
  Alcotest.(check bool) "unterminated rejected" true
    (Jsonx.of_string_opt "\"abc" = None)

(* --- instrumentation contracts --- *)

let tcp_learn_emits_expected_spans () =
  let (), records =
    with_memory_trace (fun () -> ignore (Tcp_study.learn ~seed:5L ()))
  in
  let names = List.sort_uniq compare (List.map (str "name") records) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("span " ^ expected) true (List.mem expected names))
    [ "learn"; "learner.round"; "learner.hypothesis"; "learner.eq_query";
      "learner.refine"; "oracle.mq" ];
  (* the learn span is the root and closes last *)
  let last = List.nth records (List.length records - 1) in
  Alcotest.(check string) "root closes last" "learn" (str "name" last);
  Alcotest.(check bool) "root has no parent" true (field "parent" last = Jsonx.Null);
  (* every oracle.mq span has a positive length attribute *)
  List.iter
    (fun r ->
      if str "name" r = "oracle.mq" then
        match
          Jsonx.member "attrs" r |> Option.map (Jsonx.member "len") |> Option.join
        with
        | Some (Jsonx.Int n) -> Alcotest.(check bool) "len > 0" true (n > 0)
        | _ -> Alcotest.fail "oracle.mq without len attr")
    records

let lossy_learning_emits_fault_events () =
  let (), records =
    with_memory_trace (fun () ->
        let sul =
          Prognosis_tcp.Tcp_adapter.sul
            ~network:(Prognosis_sul.Network.lossy 0.3) ~seed:7L ()
        in
        (* raw queries suffice; learning to completion is not the point *)
        for _ = 1 to 50 do
          ignore (Sul.query sul Prognosis_tcp.Tcp_alphabet.[ Syn; Ack; Fin_ack ])
        done)
  in
  let losses = List.filter (fun r -> str "name" r = "net.loss") records in
  Alcotest.(check bool) "some loss events" true (List.length losses > 0);
  List.iter
    (fun r ->
      Alcotest.(check string) "loss is an event" "event" (str "type" r);
      let attr k =
        Jsonx.member "attrs" r |> Option.map (Jsonx.member k) |> Option.join
      in
      (match attr "bytes" with
      | Some (Jsonx.Int n) -> Alcotest.(check bool) "bytes > 0" true (n > 0)
      | _ -> Alcotest.fail "loss without byte count");
      Alcotest.(check bool) "seed recorded" true
        (attr "seed" = Some (Jsonx.Int 7)))
    losses

(* Satellite: membership_queries must count only queries that reached
   the SUL, also when the oracle is wrapped by both the nondeterminism
   check and the cache. *)
let no_double_count_with_cache_and_nondet () =
  let machine =
    (* a 2-state toggle machine as deterministic SUL *)
    Mealy.make ~size:2 ~initial:0 ~inputs:[| 'a'; 'b' |]
      ~delta:[| [| 1; 0 |]; [| 0; 1 |] |]
      ~lambda:[| [| 'x'; 'y' |]; [| 'z'; 'y' |] |]
  in
  let sul, counts = Sul.counting (Sul.of_mealy machine) in
  let min_runs = 3 in
  let checked =
    Oracle.of_sul_checked
      ~config:{ Nondet.default with Nondet.min_runs }
      ~pp:(fun w -> String.init (List.length w) (List.nth w))
      sul
  in
  let cache = Cache.create () in
  let mq = Cache.wrap cache checked in
  let result =
    Learn.run_mq ~inputs:[| 'a'; 'b' |] ~mq
      ~eq:(Prognosis_learner.Eq_oracle.w_method ~extra_states:1 ())
      ()
  in
  Alcotest.(check int) "learned the toggle" 2 (Mealy.size result.Learn.model);
  let stats = result.Learn.stats in
  Alcotest.(check bool) "some queries" true (stats.Oracle.membership_queries > 0);
  Alcotest.(check int) "only SUL-reaching queries counted"
    (Cache.misses cache) stats.Oracle.membership_queries;
  (* the nondeterminism check ran each SUL-reaching query exactly
     min_runs times (deterministic SUL => no retries) *)
  let resets, _steps = counts () in
  Alcotest.(check int) "SUL executions = min_runs * misses"
    (min_runs * Cache.misses cache)
    resets

let learn_run_asserts_cache_consistency () =
  (* Learn.run's assert must hold on a full study pipeline. *)
  let r = Tcp_study.learn ~seed:11L () in
  Alcotest.(check int) "report: queries = misses"
    r.Tcp_study.report.Report.cache_misses
    r.Tcp_study.report.Report.membership_queries;
  Alcotest.(check bool) "hit rate in (0,1)" true
    (let rate = Report.cache_hit_rate r.Tcp_study.report in
     rate > 0.0 && rate < 1.0)

let report_json_folds_metrics () =
  Metrics.reset Metrics.default;
  let r = Tcp_study.learn ~seed:5L () in
  let json = Report.to_json ~metrics:Metrics.default r.Tcp_study.report in
  let reparsed = Jsonx.of_string (Jsonx.to_string json) in
  Alcotest.(check string) "schema" "prognosis.report/1" (str "schema" reparsed);
  Alcotest.(check int) "states" r.Tcp_study.report.Report.states
    (num "states" reparsed);
  let metrics = field "metrics" reparsed in
  let latency =
    Jsonx.member "histograms" metrics
    |> Option.map (Jsonx.member "oracle.mq_latency_ns")
    |> Option.join
  in
  (match latency with
  | Some h ->
      (match Jsonx.member "p99" h with
      | Some (Jsonx.Float p99) ->
          Alcotest.(check bool) "p99 > 0" true (p99 > 0.0)
      | _ -> Alcotest.fail "no p99 quantile")
  | None -> Alcotest.fail "no mq latency histogram");
  match
    Jsonx.member "counters" metrics
    |> Option.map (Jsonx.member "cache.hits")
    |> Option.join
  with
  | Some (Jsonx.Int hits) ->
      Alcotest.(check int) "cache.hits counter matches report"
        r.Tcp_study.report.Report.cache_hits hits
  | _ -> Alcotest.fail "no cache.hits counter"

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick jsonx_roundtrip;
          QCheck_alcotest.to_alcotest prop_jsonx_roundtrip;
          Alcotest.test_case "deep nesting rejected" `Quick
            jsonx_rejects_deep_nesting;
          Alcotest.test_case "escape edges" `Quick jsonx_escape_edges;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "buckets" `Quick histogram_buckets;
          Alcotest.test_case "quantiles" `Quick histogram_quantiles;
          Alcotest.test_case "registry" `Quick metrics_registry;
          Alcotest.test_case "labels roundtrip" `Quick labels_roundtrip;
          Alcotest.test_case "labelled metrics" `Quick labelled_metrics;
          Alcotest.test_case "openmetrics" `Quick openmetrics_rendering;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and ordering" `Quick span_nesting_and_ordering;
          Alcotest.test_case "error attr" `Quick span_error_attr;
          Alcotest.test_case "jsonl roundtrip" `Quick jsonl_sink_roundtrip;
          Alcotest.test_case "meta header" `Quick meta_header_emitted;
          Alcotest.test_case "no-sink fast path" `Quick no_sink_fast_path;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring bounds" `Quick ring_bounds;
          Alcotest.test_case "dump parseable" `Quick ring_dump_is_parseable;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "span tree" `Quick span_tree_analysis;
          Alcotest.test_case "orphan roots" `Quick span_tree_orphans_become_roots;
          Alcotest.test_case "report diff gate" `Quick report_diff_gate;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "tcp learn spans" `Slow tcp_learn_emits_expected_spans;
          Alcotest.test_case "fault events" `Quick lossy_learning_emits_fault_events;
          Alcotest.test_case "no double count" `Quick
            no_double_count_with_cache_and_nondet;
          Alcotest.test_case "cache consistency" `Slow
            learn_run_asserts_cache_consistency;
          Alcotest.test_case "report json" `Slow report_json_folds_metrics;
        ] );
    ]
