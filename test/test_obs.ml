(* Tests for the telemetry layer: histogram buckets and quantiles,
   span nesting/ordering, JSONL sink round-trips, and the
   instrumentation contracts the learner relies on (membership-query
   counts = cache misses, TCP learn runs emit the expected spans). *)

module Jsonx = Prognosis_obs.Jsonx
module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace
module Clock = Prognosis_obs.Clock
module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Nondet = Prognosis_sul.Nondet
module Oracle = Prognosis_learner.Oracle
module Cache = Prognosis_learner.Cache
module Learn = Prognosis_learner.Learn
open Prognosis

(* A deterministic clock: each call advances 1000 ns. *)
let install_tick_clock () =
  let t = ref 0L in
  Clock.set_source (fun () ->
      t := Int64.add !t 1000L;
      !t)

let with_memory_trace f =
  let sink, records = Trace.Sink.memory () in
  Trace.set_sink sink;
  Fun.protect ~finally:Trace.unset_sink (fun () ->
      let v = f () in
      (v, records ()))

(* --- jsonx --- *)

let jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("s", Jsonx.String "a\"b\\c\nd\ttab\x01e");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 1.5);
        ("whole", Jsonx.Float 3.0);
        ("b", Jsonx.Bool true);
        ("n", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Obj []; Jsonx.List [] ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (Jsonx.of_string (Jsonx.to_string v) = v);
  Alcotest.(check bool) "ws tolerated" true
    (Jsonx.of_string " { \"a\" : [ 1 , 2 ] } "
    = Jsonx.Obj [ ("a", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 2 ]) ]);
  Alcotest.(check bool) "garbage rejected" true
    (Jsonx.of_string_opt "{\"a\":}" = None);
  Alcotest.(check bool) "trailing rejected" true (Jsonx.of_string_opt "1 2" = None)

(* --- metrics --- *)

let histogram_buckets () =
  (* bucket 0 is (0,1]; bucket i is (10^((i-1)/5), 10^(i/5)] *)
  Alcotest.(check int) "0.5 -> 0" 0 (Metrics.bucket_index 0.5);
  Alcotest.(check int) "1.0 -> 0" 0 (Metrics.bucket_index 1.0);
  Alcotest.(check int) "1.1 -> 1" 1 (Metrics.bucket_index 1.1);
  Alcotest.(check int) "10 -> 5" 5 (Metrics.bucket_index 10.0);
  Alcotest.(check int) "11 -> 6" 6 (Metrics.bucket_index 11.0);
  Alcotest.(check int) "1e6 -> 30" 30 (Metrics.bucket_index 1e6);
  Alcotest.(check int) "huge clamps" (Metrics.bucket_index 1e300)
    (Metrics.bucket_index 1e200);
  Alcotest.(check (float 1e-9) "upper of 5 is 10" 10.0 (Metrics.bucket_upper 5))

let histogram_quantiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "q" in
  (* 100 observations: 1..100 *)
  for v = 1 to 100 do
    Metrics.observe h (float_of_int v)
  done;
  (* p50: rank 50; buckets up to 10^(i/5); the bucket holding the 50th
     smallest value (50) has upper bound 10^(9/5) ~ 63.1 *)
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.1f in [50, 63.2]" p50)
    true
    (p50 >= 50.0 && p50 <= 63.2);
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 %.1f in [99, 100]" p99)
    true
    (p99 >= 99.0 && p99 <= 100.0);
  Alcotest.(check (float 1e-9) "p0 is min" 1.0 (Metrics.quantile h 0.0));
  Alcotest.(check (float 1e-9) "mean" 50.5 (Metrics.mean h));
  (* quantiles never exceed the observed max *)
  Alcotest.(check bool) "p100 <= max" true (Metrics.quantile h 1.0 <= 100.0);
  let empty = Metrics.histogram r "empty" in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Metrics.quantile empty 0.5))

let metrics_registry () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  let g = Metrics.gauge r "g" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  Metrics.set g 2.5;
  Alcotest.(check int) "counter" 5 !c;
  (* get-or-create returns the same ref *)
  Metrics.inc (Metrics.counter r "c");
  Alcotest.(check int) "shared ref" 6 !c;
  (match Metrics.counter r "g" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must be refused");
  let json = Metrics.to_json r in
  Alcotest.(check bool) "counter in json" true
    (Jsonx.member "counters" json
    |> Option.map (Jsonx.member "c")
    |> Option.join = Some (Jsonx.Int 6));
  (* reset zeroes in place: old refs stay valid *)
  Metrics.reset r;
  Alcotest.(check int) "reset" 0 !c;
  Metrics.inc c;
  Alcotest.(check int) "ref alive after reset" 1 !c

(* --- trace --- *)

let field name j =
  match Jsonx.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("missing field " ^ name)

let str name j =
  match Jsonx.to_string_opt (field name j) with
  | Some s -> s
  | None -> Alcotest.fail (name ^ " not a string")

let num name j =
  match Jsonx.to_int_opt (field name j) with
  | Some n -> n
  | None -> Alcotest.fail (name ^ " not an int")

let span_nesting_and_ordering () =
  install_tick_clock ();
  let (), records =
    with_memory_trace (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "first" (fun () -> Trace.event "ping");
            Trace.with_span ~attrs:[ ("k", Jsonx.Int 7) ] "second" ignore))
  in
  Clock.use_wall_clock ();
  (* close order: first's ping is an event (emitted immediately), then
     first closes, then second, then outer *)
  let names = List.map (str "name") records in
  Alcotest.(check (list string)) "emission order"
    [ "ping"; "first"; "second"; "outer" ] names;
  let by_name n = List.find (fun r -> str "name" r = n) records in
  let outer = by_name "outer" in
  let first = by_name "first" in
  let second = by_name "second" in
  let ping = by_name "ping" in
  Alcotest.(check bool) "outer is root" true (field "parent" outer = Jsonx.Null);
  Alcotest.(check int) "first nested in outer" (num "id" outer) (num "parent" first);
  Alcotest.(check int) "second nested in outer" (num "id" outer) (num "parent" second);
  Alcotest.(check int) "ping nested in first" (num "id" first) (num "parent" ping);
  (* ids are allocated in creation order *)
  Alcotest.(check bool) "creation order" true
    (num "id" outer < num "id" first
    && num "id" first < num "id" ping
    && num "id" ping < num "id" second);
  (* timing: monotonic tick clock => strictly positive, nested durations *)
  Alcotest.(check bool) "outer spans children" true
    (num "start_ns" outer < num "start_ns" first
    && num "end_ns" first <= num "end_ns" outer);
  Alcotest.(check bool) "durations positive" true
    (num "dur_ns" outer > 0 && num "dur_ns" first > 0);
  Alcotest.(check bool) "attr kept" true
    (Jsonx.member "attrs" second
    |> Option.map (Jsonx.member "k")
    |> Option.join = Some (Jsonx.Int 7))

let span_error_attr () =
  let (), records =
    with_memory_trace (fun () ->
        try Trace.with_span "boom" (fun () -> failwith "kaput")
        with Failure _ -> ())
  in
  match records with
  | [ r ] ->
      Alcotest.(check string) "span name" "boom" (str "name" r);
      let err =
        Jsonx.member "attrs" r |> Option.map (Jsonx.member "error") |> Option.join
      in
      Alcotest.(check bool) "error recorded" true
        (match err with Some (Jsonx.String s) -> s <> "" | _ -> false)
  | _ -> Alcotest.fail "expected exactly one record"

let jsonl_sink_roundtrip () =
  let path = Filename.temp_file "prognosis_trace" ".jsonl" in
  Trace.set_sink (Trace.Sink.jsonl_file path);
  Trace.with_span ~attrs:[ ("proto", Jsonx.String "tcp") ] "a" (fun () ->
      Trace.event ~attrs:[ ("bytes", Jsonx.Int 40) ] "net.loss");
  Trace.unset_sink ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "two records" 2 (List.length lines);
  let parsed = List.map Jsonx.of_string lines in
  Alcotest.(check (list string)) "names" [ "net.loss"; "a" ]
    (List.map (str "name") parsed);
  Alcotest.(check (list string)) "types" [ "event"; "span" ]
    (List.map (str "type") parsed);
  Alcotest.(check bool) "attr roundtrip" true
    (Jsonx.member "attrs" (List.nth parsed 0)
    |> Option.map (Jsonx.member "bytes")
    |> Option.join = Some (Jsonx.Int 40))

(* --- instrumentation contracts --- *)

let tcp_learn_emits_expected_spans () =
  let (), records =
    with_memory_trace (fun () -> ignore (Tcp_study.learn ~seed:5L ()))
  in
  let names = List.sort_uniq compare (List.map (str "name") records) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("span " ^ expected) true (List.mem expected names))
    [ "learn"; "learner.round"; "learner.hypothesis"; "learner.eq_query";
      "learner.refine"; "oracle.mq" ];
  (* the learn span is the root and closes last *)
  let last = List.nth records (List.length records - 1) in
  Alcotest.(check string) "root closes last" "learn" (str "name" last);
  Alcotest.(check bool) "root has no parent" true (field "parent" last = Jsonx.Null);
  (* every oracle.mq span has a positive length attribute *)
  List.iter
    (fun r ->
      if str "name" r = "oracle.mq" then
        match
          Jsonx.member "attrs" r |> Option.map (Jsonx.member "len") |> Option.join
        with
        | Some (Jsonx.Int n) -> Alcotest.(check bool) "len > 0" true (n > 0)
        | _ -> Alcotest.fail "oracle.mq without len attr")
    records

let lossy_learning_emits_fault_events () =
  let (), records =
    with_memory_trace (fun () ->
        let sul =
          Prognosis_tcp.Tcp_adapter.sul
            ~network:(Prognosis_sul.Network.lossy 0.3) ~seed:7L ()
        in
        (* raw queries suffice; learning to completion is not the point *)
        for _ = 1 to 50 do
          ignore (Sul.query sul Prognosis_tcp.Tcp_alphabet.[ Syn; Ack; Fin_ack ])
        done)
  in
  let losses = List.filter (fun r -> str "name" r = "net.loss") records in
  Alcotest.(check bool) "some loss events" true (List.length losses > 0);
  List.iter
    (fun r ->
      Alcotest.(check string) "loss is an event" "event" (str "type" r);
      let attr k =
        Jsonx.member "attrs" r |> Option.map (Jsonx.member k) |> Option.join
      in
      (match attr "bytes" with
      | Some (Jsonx.Int n) -> Alcotest.(check bool) "bytes > 0" true (n > 0)
      | _ -> Alcotest.fail "loss without byte count");
      Alcotest.(check bool) "seed recorded" true
        (attr "seed" = Some (Jsonx.Int 7)))
    losses

(* Satellite: membership_queries must count only queries that reached
   the SUL, also when the oracle is wrapped by both the nondeterminism
   check and the cache. *)
let no_double_count_with_cache_and_nondet () =
  let machine =
    (* a 2-state toggle machine as deterministic SUL *)
    Mealy.make ~size:2 ~initial:0 ~inputs:[| 'a'; 'b' |]
      ~delta:[| [| 1; 0 |]; [| 0; 1 |] |]
      ~lambda:[| [| 'x'; 'y' |]; [| 'z'; 'y' |] |]
  in
  let sul, counts = Sul.counting (Sul.of_mealy machine) in
  let min_runs = 3 in
  let checked =
    Oracle.of_sul_checked
      ~config:{ Nondet.default with Nondet.min_runs }
      ~pp:(fun w -> String.init (List.length w) (List.nth w))
      sul
  in
  let cache = Cache.create () in
  let mq = Cache.wrap cache checked in
  let result =
    Learn.run_mq ~inputs:[| 'a'; 'b' |] ~mq
      ~eq:(Prognosis_learner.Eq_oracle.w_method ~extra_states:1 ())
      ()
  in
  Alcotest.(check int) "learned the toggle" 2 (Mealy.size result.Learn.model);
  let stats = result.Learn.stats in
  Alcotest.(check bool) "some queries" true (stats.Oracle.membership_queries > 0);
  Alcotest.(check int) "only SUL-reaching queries counted"
    (Cache.misses cache) stats.Oracle.membership_queries;
  (* the nondeterminism check ran each SUL-reaching query exactly
     min_runs times (deterministic SUL => no retries) *)
  let resets, _steps = counts () in
  Alcotest.(check int) "SUL executions = min_runs * misses"
    (min_runs * Cache.misses cache)
    resets

let learn_run_asserts_cache_consistency () =
  (* Learn.run's assert must hold on a full study pipeline. *)
  let r = Tcp_study.learn ~seed:11L () in
  Alcotest.(check int) "report: queries = misses"
    r.Tcp_study.report.Report.cache_misses
    r.Tcp_study.report.Report.membership_queries;
  Alcotest.(check bool) "hit rate in (0,1)" true
    (let rate = Report.cache_hit_rate r.Tcp_study.report in
     rate > 0.0 && rate < 1.0)

let report_json_folds_metrics () =
  Metrics.reset Metrics.default;
  let r = Tcp_study.learn ~seed:5L () in
  let json = Report.to_json ~metrics:Metrics.default r.Tcp_study.report in
  let reparsed = Jsonx.of_string (Jsonx.to_string json) in
  Alcotest.(check string) "schema" "prognosis.report/1" (str "schema" reparsed);
  Alcotest.(check int) "states" r.Tcp_study.report.Report.states
    (num "states" reparsed);
  let metrics = field "metrics" reparsed in
  let latency =
    Jsonx.member "histograms" metrics
    |> Option.map (Jsonx.member "oracle.mq_latency_ns")
    |> Option.join
  in
  (match latency with
  | Some h ->
      (match Jsonx.member "p99" h with
      | Some (Jsonx.Float p99) ->
          Alcotest.(check bool) "p99 > 0" true (p99 > 0.0)
      | _ -> Alcotest.fail "no p99 quantile")
  | None -> Alcotest.fail "no mq latency histogram");
  match
    Jsonx.member "counters" metrics
    |> Option.map (Jsonx.member "cache.hits")
    |> Option.join
  with
  | Some (Jsonx.Int hits) ->
      Alcotest.(check int) "cache.hits counter matches report"
        r.Tcp_study.report.Report.cache_hits hits
  | _ -> Alcotest.fail "no cache.hits counter"

let () =
  Alcotest.run "obs"
    [
      ("jsonx", [ Alcotest.test_case "roundtrip" `Quick jsonx_roundtrip ]);
      ( "metrics",
        [
          Alcotest.test_case "buckets" `Quick histogram_buckets;
          Alcotest.test_case "quantiles" `Quick histogram_quantiles;
          Alcotest.test_case "registry" `Quick metrics_registry;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and ordering" `Quick span_nesting_and_ordering;
          Alcotest.test_case "error attr" `Quick span_error_attr;
          Alcotest.test_case "jsonl roundtrip" `Quick jsonl_sink_roundtrip;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "tcp learn spans" `Slow tcp_learn_emits_expected_spans;
          Alcotest.test_case "fault events" `Quick lossy_learning_emits_fault_events;
          Alcotest.test_case "no double count" `Quick
            no_double_count_with_cache_and_nondet;
          Alcotest.test_case "cache consistency" `Slow
            learn_run_asserts_cache_consistency;
          Alcotest.test_case "report json" `Slow report_json_folds_metrics;
        ] );
    ]
