(* Tests for the query-execution engine (lib/exec): batch planning,
   pooled execution with prefix resume, replica voting / quarantine,
   and observational equivalence against a direct sequential oracle. *)

module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Rng = Prognosis_sul.Rng
module Nondet = Prognosis_sul.Nondet
module Oracle = Prognosis_learner.Oracle
module Eq_oracle = Prognosis_learner.Eq_oracle
module Learn = Prognosis_learner.Learn
module Plan = Prognosis_exec.Plan
module Engine = Prognosis_exec.Engine
module Jsonx = Prognosis_obs.Jsonx
open Prognosis

(* --- fixtures --- *)

let counter3 =
  Mealy.make ~size:3 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 2; 0 |]; [| 0; 0 |] |]
    ~lambda:[| [| "0"; "r" |]; [| "1"; "r" |]; [| "2"; "r" |] |]

let lock =
  Mealy.make ~size:5 ~initial:0 ~inputs:[| 'a'; 'b' |]
    ~delta:[| [| 1; 0 |]; [| 1; 2 |]; [| 3; 0 |]; [| 4; 4 |]; [| 4; 4 |] |]
    ~lambda:
      [|
        [| "step"; "no" |];
        [| "step"; "step" |];
        [| "open"; "no" |];
        [| "in"; "in" |];
        [| "in"; "in" |];
      |]

let random_word rng inputs max_len =
  let len = Rng.int rng (max_len + 1) in
  List.init len (fun _ -> inputs.(Rng.int rng (Array.length inputs)))

(* --- planner --- *)

let plan_dedup_and_subsume () =
  let p =
    Plan.build [ [ 'a'; 'b' ]; [ 'a' ]; [ 'a'; 'b' ]; [ 'c' ] ]
  in
  Alcotest.(check (list (list char))) "maximal runs"
    [ [ 'a'; 'b' ]; [ 'c' ] ] p.Plan.runs;
  Alcotest.(check int) "words" 4 p.Plan.words;
  Alcotest.(check int) "dupes" 1 p.Plan.dupes;
  Alcotest.(check int) "subsumed" 1 p.Plan.subsumed;
  (* Arrival order: ab executes (1 reset, 2 steps), a is a prefix of
     it, the duplicate ab is too, c executes (1 reset, 1 step). *)
  Alcotest.(check int) "baseline resets" 2 p.Plan.baseline_resets;
  Alcotest.(check int) "baseline steps" 3 p.Plan.baseline_steps

let plan_orders_for_sharing () =
  let p = Plan.build [ [ 'b' ]; [ 'a'; 'a' ]; [ 'a' ]; [ 'a'; 'b' ] ] in
  (* Lexicographic order keeps words sharing a prefix adjacent and
     drops [a] (prefix of its successor). *)
  Alcotest.(check (list (list char))) "sorted maximal"
    [ [ 'a'; 'a' ]; [ 'a'; 'b' ]; [ 'b' ] ] p.Plan.runs

let plan_empty () =
  let p = Plan.build [] in
  Alcotest.(check (list (list char))) "no runs" [] p.Plan.runs;
  Alcotest.(check int) "no words" 0 p.Plan.words

let plan_all_duplicates () =
  let p = Plan.build [ [ 'x' ]; [ 'x' ]; [ 'x' ] ] in
  Alcotest.(check (list (list char))) "one run" [ [ 'x' ] ] p.Plan.runs;
  Alcotest.(check int) "dupes" 2 p.Plan.dupes;
  Alcotest.(check int) "one baseline reset" 1 p.Plan.baseline_resets

(* --- pooled execution --- *)

let engine_for ?(config = Engine.default) m =
  Engine.create ~config ~factory:(fun _ -> Sul.of_mealy m) ()

let resume_skips_reset () =
  let e = engine_for counter3 in
  let mq = Engine.membership e in
  Alcotest.(check (list string)) "first" [ "0" ] (mq.Oracle.ask [ 'a' ]);
  Alcotest.(check (list string)) "extension" [ "0"; "1" ]
    (mq.Oracle.ask [ 'a'; 'a' ]);
  let s = Engine.stats e in
  Alcotest.(check int) "one resumed run" 1 s.Engine.resumed;
  (* The second run skipped its reset and replayed only the suffix. *)
  Alcotest.(check int) "one reset" 1 s.Engine.resets;
  Alcotest.(check int) "two steps" 2 s.Engine.steps

let baseline_counts_cache_hits () =
  let e = engine_for counter3 in
  let mq = Engine.membership e in
  ignore (mq.Oracle.ask [ 'a'; 'b' ]);
  ignore (mq.Oracle.ask [ 'a' ]);
  (* cache hit: no run *)
  let s = Engine.stats e in
  Alcotest.(check int) "baseline resets" 2 s.Engine.baseline_resets;
  Alcotest.(check int) "baseline steps" 3 s.Engine.baseline_steps;
  Alcotest.(check int) "actual resets" 1 s.Engine.resets;
  Alcotest.(check int) "saved a reset" 1 (Engine.saved_resets e);
  Alcotest.(check int) "saved a step" 1 (Engine.saved_steps e)

(* Pooled, batched execution answers exactly like a direct sequential
   oracle over one SUL instance — on single asks and on batches, for
   one worker and for four. *)
let observational_equivalence () =
  let reference = Sul.of_mealy lock in
  List.iter
    (fun workers ->
      let config = { Engine.default with Engine.workers } in
      let e = engine_for ~config lock in
      let mq = Engine.membership e in
      let rng = Rng.create 11L in
      for _ = 1 to 500 do
        let w = random_word rng (Mealy.inputs lock) 8 in
        Alcotest.(check (list string))
          (Printf.sprintf "ask, %d workers" workers)
          (Sul.query reference w) (mq.Oracle.ask w)
      done;
      let batch = Option.get mq.Oracle.ask_batch in
      for _ = 1 to 10 do
        let words =
          List.init 50 (fun _ -> random_word rng (Mealy.inputs lock) 8)
        in
        List.iter2
          (fun w a ->
            Alcotest.(check (list string))
              (Printf.sprintf "batch, %d workers" workers)
              (Sul.query reference w) a)
          words (batch words)
      done)
    [ 1; 4 ]

let parallel_equivalence () =
  let reference = Sul.of_mealy lock in
  let config = { Engine.default with Engine.workers = 4; parallel = true } in
  let e = engine_for ~config lock in
  let mq = Engine.membership e in
  let batch = Option.get mq.Oracle.ask_batch in
  let rng = Rng.create 23L in
  for _ = 1 to 5 do
    let words =
      List.init 100 (fun _ -> random_word rng (Mealy.inputs lock) 8)
    in
    List.iter2
      (fun w a ->
        Alcotest.(check (list string)) "parallel batch"
          (Sul.query reference w) a)
      words (batch words)
  done;
  Alcotest.(check bool) "all workers ran" true
    (Array.for_all (fun r -> r > 0) (Engine.worker_runs e))

(* Pooled learning produces the same minimal model as direct learning,
   for both algorithms. *)
let pooled_learning_equivalent () =
  List.iter
    (fun algorithm ->
      let config = { Engine.default with Engine.workers = 4 } in
      let e = engine_for ~config lock in
      let rng = Rng.create 5L in
      let eq =
        Eq_oracle.combine
          [
            Eq_oracle.w_method ~extra_states:1 ();
            Eq_oracle.random_words ~rng ~max_tests:200 ~min_len:1 ~max_len:8;
          ]
      in
      let r =
        Learn.run_mq ~algorithm ~inputs:(Mealy.inputs lock)
          ~cache_stats:(fun () -> Engine.cache_stats e)
          ~mq:(Engine.membership e) ~eq ()
      in
      Alcotest.(check (option (list char))) "equivalent" None
        (Mealy.equivalent r.Learn.model lock);
      Alcotest.(check int) "minimal"
        (Mealy.size (Mealy.minimize lock))
        (Mealy.size r.Learn.model))
    [ Learn.L_star; Learn.Ttt_tree ]

(* --- robustness: replicas, voting, quarantine --- *)

(* A worker that always answers "LIE" is outvoted by the three honest
   workers, struck, and quarantined — and learning still converges to
   the correct model. *)
let adversarial_worker_quarantined () =
  let liar () =
    let honest = Sul.of_mealy lock in
    Sul.make ~description:"liar" ~reset:honest.Sul.reset
      ~step:(fun x ->
        ignore (honest.Sul.step x);
        "LIE")
      ()
  in
  let config =
    { Engine.default with Engine.workers = 4; replicas = 2; max_strikes = 2 }
  in
  let e =
    Engine.create ~config
      ~factory:(fun i -> if i = 2 then liar () else Sul.of_mealy lock)
      ()
  in
  let rng = Rng.create 17L in
  let eq =
    Eq_oracle.combine
      [
        Eq_oracle.w_method ~extra_states:1 ();
        Eq_oracle.random_words ~rng ~max_tests:200 ~min_len:1 ~max_len:8;
      ]
  in
  let r =
    Learn.run_mq ~inputs:(Mealy.inputs lock)
      ~cache_stats:(fun () -> Engine.cache_stats e)
      ~mq:(Engine.membership e) ~eq ()
  in
  Alcotest.(check (option (list char))) "correct model despite liar" None
    (Mealy.equivalent r.Learn.model lock);
  let s = Engine.stats e in
  Alcotest.(check bool) "saw disagreements" true (s.Engine.disagreements > 0);
  Alcotest.(check bool) "quarantined the liar" true (s.Engine.quarantines >= 1)

(* Two workers that answer differently can produce no majority: the
   pool as a whole is nondeterministic and says so. *)
let no_majority_raises () =
  let config = { Engine.default with Engine.workers = 2; replicas = 2 } in
  let e =
    Engine.create ~config
      ~factory:(fun i ->
        Sul.make ~reset:(fun () -> ()) ~step:(fun _ -> string_of_int i) ())
      ()
  in
  let mq = Engine.membership e in
  match mq.Oracle.ask [ 'a' ] with
  | _ -> Alcotest.fail "expected Nondeterministic_sul"
  | exception Nondet.Nondeterministic_sul _ -> ()

(* Replicated answers that agree do not disturb the result. *)
let replicas_agreeing () =
  let config = { Engine.default with Engine.workers = 3; replicas = 2 } in
  let e = engine_for ~config counter3 in
  let mq = Engine.membership e in
  Alcotest.(check (list string)) "answer" [ "0"; "1"; "2" ]
    (mq.Oracle.ask [ 'a'; 'a'; 'a' ]);
  let s = Engine.stats e in
  Alcotest.(check int) "extra replica run" 1 s.Engine.vote_runs;
  Alcotest.(check int) "no disagreement" 0 s.Engine.disagreements

let invalid_configs () =
  let factory _ = Sul.of_mealy counter3 in
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Engine.create: workers must be >= 1") (fun () ->
      ignore
        (Engine.create ~config:{ Engine.default with Engine.workers = 0 }
           ~factory ()));
  Alcotest.check_raises "replicas <= workers"
    (Invalid_argument "Engine.create: replicas cannot exceed workers")
    (fun () ->
      ignore
        (Engine.create
           ~config:{ Engine.default with Engine.workers = 2; replicas = 3 }
           ~factory ()))

(* --- checkpointable pool state --- *)

let freeze_thaw_roundtrip () =
  let config = { Engine.default with Engine.workers = 3 } in
  let e = engine_for ~config counter3 in
  let mq = Engine.membership e in
  ignore (mq.Oracle.ask [ 'a' ]);
  ignore (mq.Oracle.ask [ 'b' ]);
  ignore (mq.Oracle.ask [ 'a'; 'a' ]);
  let blob = Engine.freeze e in
  let e' = engine_for ~config counter3 in
  Engine.thaw e' blob;
  Alcotest.(check (array int))
    "worker runs restored" (Engine.worker_runs e) (Engine.worker_runs e');
  Alcotest.(check (list int))
    "quarantines restored" (Engine.quarantined e) (Engine.quarantined e')

let thaw_guards () =
  let e = engine_for ~config:{ Engine.default with Engine.workers = 3 } counter3 in
  let blob = Engine.freeze e in
  let smaller =
    engine_for ~config:{ Engine.default with Engine.workers = 2 } counter3
  in
  Alcotest.check_raises "pool size guard"
    (Invalid_argument
       "Engine.thaw: pool size changed (checkpointed 3 workers, pool has 2)")
    (fun () -> Engine.thaw smaller blob);
  Alcotest.check_raises "foreign blob"
    (Invalid_argument "Engine.thaw: unreadable state blob") (fun () ->
      Engine.thaw smaller "gibberish")

let external_cache_short_circuits () =
  (* A pre-warmed cache (a checkpoint session's) answers without
     touching the pool — the mechanism behind crash-free resume. *)
  let cache = Prognosis_learner.Cache.create () in
  Prognosis_learner.Cache.insert cache [ 'a'; 'a' ] [ "0"; "1" ];
  let e =
    Engine.create ~cache ~factory:(fun _ -> Sul.of_mealy counter3) ()
  in
  let mq = Engine.membership e in
  Alcotest.(check (list string)) "cached answer" [ "0"; "1" ]
    (mq.Oracle.ask [ 'a'; 'a' ]);
  Alcotest.(check int) "no pool run" 0 (Engine.stats e).Engine.runs;
  Alcotest.(check (list string)) "uncached answer" [ "0"; "r" ]
    (mq.Oracle.ask [ 'a'; 'b' ]);
  Alcotest.(check int) "one pool run" 1 (Engine.stats e).Engine.runs

(* --- end-to-end: the TCP study through the pool --- *)

let exec_field e k =
  match Jsonx.member k e with
  | Some v -> Option.value ~default:0 (Jsonx.to_int_opt v)
  | None -> Alcotest.failf "exec stats missing %S" k

(* The acceptance bar of the exec subsystem: pooled + batched learning
   of the TCP model matches the sequential oracle's model exactly and
   cuts resets+steps by at least 25%% against the no-reuse sequential
   oracle (every query executed directly, one reset per query). *)
let tcp_study_savings () =
  let direct = Tcp_study.learn () in
  let pooled =
    Tcp_study.learn
      ~exec:{ Engine.default with Engine.workers = 4; batch = true }
      ()
  in
  (match
     Mealy.equivalent direct.Tcp_study.model pooled.Tcp_study.model
   with
  | None -> ()
  | Some w ->
      Alcotest.failf "models differ on a %d-symbol word" (List.length w));
  let e =
    match pooled.Tcp_study.report.Report.exec with
    | Some e -> e
    | None -> Alcotest.fail "pooled report has no exec section"
  in
  let actual = exec_field e "resets" + exec_field e "steps" in
  let baseline =
    exec_field e "baseline_resets" + exec_field e "baseline_steps"
  in
  Alcotest.(check bool)
    (Printf.sprintf "saved >= 25%% (actual %d vs baseline %d)" actual baseline)
    true
    (4 * actual <= 3 * baseline)

let quic_study_pooled () =
  let profile = Prognosis_quic.Quic_profile.quiche_like in
  let direct = Quic_study.learn ~profile () in
  let pooled =
    Quic_study.learn
      ~exec:{ Engine.default with Engine.workers = 4; batch = true }
      ~profile ()
  in
  (match
     Mealy.equivalent direct.Quic_study.model pooled.Quic_study.model
   with
  | None -> ()
  | Some w ->
      Alcotest.failf "models differ on a %d-symbol word" (List.length w));
  let e = Option.get pooled.Quic_study.report.Report.exec in
  let actual = exec_field e "resets" + exec_field e "steps" in
  let baseline =
    exec_field e "baseline_resets" + exec_field e "baseline_steps"
  in
  Alcotest.(check bool)
    (Printf.sprintf "saved >= 25%% (actual %d vs baseline %d)" actual baseline)
    true
    (4 * actual <= 3 * baseline)

let () =
  Alcotest.run "exec"
    [
      ( "plan",
        [
          Alcotest.test_case "dedup and subsume" `Quick plan_dedup_and_subsume;
          Alcotest.test_case "prefix-sharing order" `Quick
            plan_orders_for_sharing;
          Alcotest.test_case "empty batch" `Quick plan_empty;
          Alcotest.test_case "all duplicates" `Quick plan_all_duplicates;
        ] );
      ( "pool",
        [
          Alcotest.test_case "resume skips reset" `Quick resume_skips_reset;
          Alcotest.test_case "baseline counts hits" `Quick
            baseline_counts_cache_hits;
          Alcotest.test_case "observational equivalence" `Quick
            observational_equivalence;
          Alcotest.test_case "parallel equivalence" `Quick parallel_equivalence;
          Alcotest.test_case "pooled learning" `Quick pooled_learning_equivalent;
          Alcotest.test_case "invalid configs" `Quick invalid_configs;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "adversarial worker" `Quick
            adversarial_worker_quarantined;
          Alcotest.test_case "no majority" `Quick no_majority_raises;
          Alcotest.test_case "agreeing replicas" `Quick replicas_agreeing;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "freeze/thaw roundtrip" `Quick freeze_thaw_roundtrip;
          Alcotest.test_case "thaw guards" `Quick thaw_guards;
          Alcotest.test_case "external cache" `Quick external_cache_short_circuits;
        ] );
      ( "studies",
        [
          Alcotest.test_case "tcp savings >= 25%" `Slow tcp_study_savings;
          Alcotest.test_case "quic pooled" `Slow quic_study_pooled;
        ] );
    ]
