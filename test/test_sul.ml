module Rng = Prognosis_sul.Rng
module Network = Prognosis_sul.Network
module Sul = Prognosis_sul.Sul
module Nondet = Prognosis_sul.Nondet
module Adapter = Prognosis_sul.Adapter
module Oracle_table = Prognosis_sul.Oracle_table
module Mealy = Prognosis_automata.Mealy

(* --- rng --- *)

let rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 42L and b = Rng.create 43L in
  Alcotest.(check bool) "different streams" false (Rng.next64 a = Rng.next64 b)

let rng_copy_independent () =
  let a = Rng.create 7L in
  ignore (Rng.next64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next64 a) (Rng.next64 b)

let rng_split_independent () =
  let a = Rng.create 7L in
  let child = Rng.split a in
  (* Parent advanced; child produces a different stream. *)
  Alcotest.(check bool) "diverged" false (Rng.next64 a = Rng.next64 child)

let rng_split_reproducible () =
  (* Splitting is a pure function of the parent's state: the same seed
     yields the same child streams, run after run. *)
  let streams seed =
    let parent = Rng.create seed in
    Array.to_list (Rng.split_n parent 4)
    |> List.map (fun r -> List.init 5 (fun _ -> Rng.next64 r))
  in
  Alcotest.(check (list (list int64)))
    "same seed, same streams" (streams 42L) (streams 42L)

let rng_split_n_pairwise_different () =
  let parent = Rng.create 9L in
  let children = Rng.split_n parent 8 in
  let firsts = Array.map (fun r -> List.init 4 (fun _ -> Rng.next64 r)) children in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j && a = b then
            Alcotest.failf "children %d and %d share a stream" i j)
        firsts)
    firsts

let rng_int_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done

let rng_int_rejects_nonpositive () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 1L) 0))

let rng_float_range () =
  let rng = Rng.create 5L in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let rng_bool_rate () =
  let rng = Rng.create 11L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bool rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.3" rate)
    true
    (rate > 0.28 && rate < 0.32)

let rng_bytes_length () =
  let rng = Rng.create 13L in
  Alcotest.(check int) "length" 32 (String.length (Rng.bytes rng 32));
  Alcotest.(check int) "empty" 0 (String.length (Rng.bytes rng 0))

let prop_rng_int_covers =
  QCheck2.Test.make ~count:50 ~name:"rng int eventually covers small ranges"
    QCheck2.Gen.(int_range 2 8)
    (fun n ->
      let rng = Rng.create 99L in
      let seen = Array.make n false in
      for _ = 1 to 1000 do
        seen.(Rng.int rng n) <- true
      done;
      Array.for_all (fun b -> b) seen)

(* --- network --- *)

let network_reliable_passthrough () =
  let ch = Network.create (Rng.create 1L) in
  Alcotest.(check (list string)) "delivered" [ "payload" ]
    (Network.transmit ch "payload");
  Alcotest.(check int) "counted" 1 (Network.transmitted ch);
  Alcotest.(check int) "no drops" 0 (Network.dropped ch)

let network_loss_rate () =
  let ch = Network.create ~config:(Network.lossy 0.25) (Rng.create 2L) in
  for _ = 1 to 4000 do
    ignore (Network.transmit ch "x")
  done;
  let rate = float_of_int (Network.dropped ch) /. 4000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "loss rate %.3f near 0.25" rate)
    true
    (rate > 0.22 && rate < 0.28)

let network_duplication () =
  let ch =
    Network.create
      ~config:{ Network.reliable with Network.duplicate = 1.0 }
      (Rng.create 3L)
  in
  Alcotest.(check (list string)) "duplicated" [ "x"; "x" ] (Network.transmit ch "x")

let network_corruption_changes_payload () =
  let ch =
    Network.create
      ~config:{ Network.reliable with Network.corrupt = 1.0 }
      (Rng.create 4L)
  in
  match Network.transmit ch "hello" with
  | [ delivered ] ->
      Alcotest.(check bool) "changed" false (delivered = "hello");
      Alcotest.(check int) "same length" 5 (String.length delivered)
  | _ -> Alcotest.fail "expected one delivery"

let network_corruption_empty_payload () =
  let ch =
    Network.create
      ~config:{ Network.reliable with Network.corrupt = 1.0 }
      (Rng.create 5L)
  in
  Alcotest.(check (list string)) "empty survives" [ "" ] (Network.transmit ch "")

let network_reconfigure () =
  let ch = Network.create (Rng.create 6L) in
  Network.set_config ch (Network.lossy 1.0);
  Alcotest.(check (list string)) "all lost" [] (Network.transmit ch "x")

(* --- inet (IPv4/UDP encapsulation) --- *)

module Inet = Prognosis_sul.Inet

let ipv4_roundtrip () =
  let t =
    { Inet.Ipv4.src = 0x0A000001; dst = 0x0A000002; ttl = 64;
      protocol = Inet.Ipv4.tcp_protocol; payload = "segment-bytes" }
  in
  match Inet.Ipv4.decode (Inet.Ipv4.encode t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check int) "src" t.Inet.Ipv4.src t'.Inet.Ipv4.src;
      Alcotest.(check int) "dst" t.Inet.Ipv4.dst t'.Inet.Ipv4.dst;
      Alcotest.(check int) "protocol" 6 t'.Inet.Ipv4.protocol;
      Alcotest.(check string) "payload" "segment-bytes" t'.Inet.Ipv4.payload

let ipv4_checksum_detects () =
  let wire =
    Inet.Ipv4.encode
      { Inet.Ipv4.src = 1; dst = 2; ttl = 64; protocol = 6; payload = "x" }
  in
  let flipped =
    String.mapi (fun i c -> if i = 13 then Char.chr (Char.code c lxor 1) else c) wire
  in
  match Inet.Ipv4.decode flipped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted IPv4 header must be rejected"

let udp_roundtrip () =
  let src_ip = 0x0A000001 and dst_ip = 0x0A000002 in
  let wire =
    Inet.Udp.encode ~src_ip ~dst_ip
      { Inet.Udp.src_port = 50123; dst_port = 443; payload = "quic" }
  in
  match Inet.Udp.decode ~src_ip ~dst_ip wire with
  | Error e -> Alcotest.fail e
  | Ok u ->
      Alcotest.(check int) "src port" 50123 u.Inet.Udp.src_port;
      Alcotest.(check string) "payload" "quic" u.Inet.Udp.payload

let udp_pseudo_header_binds_addresses () =
  (* The same datagram fails verification under different addresses:
     the pseudo-header is covered. *)
  let wire =
    Inet.Udp.encode ~src_ip:1 ~dst_ip:2
      { Inet.Udp.src_port = 1; dst_port = 2; payload = "d" }
  in
  match Inet.Udp.decode ~src_ip:9 ~dst_ip:2 wire with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pseudo-header mismatch must be rejected"

let wrap_unwrap_udp () =
  let wire = Inet.wrap_udp ~src:7 ~dst:8 ~src_port:5555 ~dst_port:443 "payload" in
  (match Inet.unwrap_udp wire with
  | Ok (port, payload) ->
      Alcotest.(check int) "source port surfaces" 5555 port;
      Alcotest.(check string) "payload" "payload" payload
  | Error e -> Alcotest.fail e);
  (* A TCP-wrapped datagram is not UDP. *)
  match Inet.unwrap_udp (Inet.wrap_tcp ~src:7 ~dst:8 "seg") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "protocol mismatch must be rejected"

(* --- oracle table --- *)

let table_add_find () =
  let t = Oracle_table.create () in
  Oracle_table.add t ~abstract_inputs:[ 'a' ] ~abstract_outputs:[ 1 ]
    ~steps:[ { Oracle_table.sent = [ "p1" ]; received = [ "r1"; "r2" ] } ];
  (match Oracle_table.find t [ 'a' ] with
  | None -> Alcotest.fail "missing"
  | Some e ->
      Alcotest.(check (list string)) "inputs" [ "p1" ] (Oracle_table.concrete_inputs e);
      Alcotest.(check (list string)) "outputs" [ "r1"; "r2" ]
        (Oracle_table.concrete_outputs e));
  Alcotest.(check int) "size" 1 (Oracle_table.size t)

let table_overwrite_keeps_latest () =
  let t = Oracle_table.create () in
  let add word payload =
    Oracle_table.add t ~abstract_inputs:word ~abstract_outputs:[ 0 ]
      ~steps:[ { Oracle_table.sent = [ payload ]; received = [] } ]
  in
  add [ 'a' ] "old";
  add [ 'a' ] "new";
  Alcotest.(check int) "one entry" 1 (Oracle_table.size t);
  match Oracle_table.find t [ 'a' ] with
  | Some e ->
      Alcotest.(check (list string)) "latest wins" [ "new" ]
        (Oracle_table.concrete_inputs e)
  | None -> Alcotest.fail "missing"

let table_entries_in_order () =
  let t = Oracle_table.create () in
  List.iter
    (fun w ->
      Oracle_table.add t ~abstract_inputs:[ w ] ~abstract_outputs:[ 0 ] ~steps:[])
    [ 'a'; 'b'; 'c' ];
  Alcotest.(check (list char)) "insertion order" [ 'a'; 'b'; 'c' ]
    (List.map
       (fun e -> List.hd e.Oracle_table.abstract_inputs)
       (Oracle_table.entries t))

let table_longest_and_clear () =
  let t = Oracle_table.create () in
  Oracle_table.add t ~abstract_inputs:[ 1; 2; 3 ] ~abstract_outputs:[ 0; 0; 0 ]
    ~steps:[];
  Oracle_table.add t ~abstract_inputs:[ 1 ] ~abstract_outputs:[ 0 ] ~steps:[];
  Alcotest.(check int) "longest" 3 (Oracle_table.longest t);
  Oracle_table.clear t;
  Alcotest.(check int) "cleared" 0 (Oracle_table.size t)

(* --- sul --- *)

let sul_counting () =
  let m =
    Mealy.make ~size:1 ~initial:0 ~inputs:[| 'a' |] ~delta:[| [| 0 |] |]
      ~lambda:[| [| "x" |] |]
  in
  let sul, counts = Sul.counting (Sul.of_mealy m) in
  let _ = Sul.query sul [ 'a'; 'a' ] in
  let _ = Sul.query sul [ 'a' ] in
  let resets, steps = counts () in
  Alcotest.(check int) "resets" 2 resets;
  Alcotest.(check int) "steps" 3 steps

(* --- nondet --- *)

let flaky_sul rng p good bad =
  (* Answers [good] normally, [bad] with probability p, per query. *)
  let current = ref good in
  Sul.make
    ~reset:(fun () -> current := if Rng.bool rng p then bad else good)
    ~step:(fun () -> !current)
    ()

let nondet_deterministic_fastpath () =
  let sul = flaky_sul (Rng.create 1L) 0.0 "ok" "bad" in
  match Nondet.query Nondet.default sul [ (); () ] with
  | Nondet.Deterministic answer ->
      Alcotest.(check (list string)) "answer" [ "ok"; "ok" ] answer
  | Nondet.Nondeterministic _ -> Alcotest.fail "expected deterministic"

let nondet_detects () =
  let sul = flaky_sul (Rng.create 2L) 0.5 "ok" "bad" in
  match
    Nondet.query { Nondet.min_runs = 10; max_runs = 60; agreement = 0.95 } sul [ () ]
  with
  | Nondet.Nondeterministic obs ->
      Alcotest.(check int) "two variants" 2 (List.length obs);
      let total = List.fold_left (fun n o -> n + o.Nondet.count) 0 obs in
      Alcotest.(check int) "all runs counted" 60 total
  | Nondet.Deterministic _ -> Alcotest.fail "expected nondeterminism"

let nondet_majority_tolerance () =
  (* 2% flake under a 0.9 agreement threshold: accepted as deterministic. *)
  let sul = flaky_sul (Rng.create 3L) 0.02 "ok" "bad" in
  match
    Nondet.query { Nondet.min_runs = 5; max_runs = 200; agreement = 0.9 } sul [ () ]
  with
  | Nondet.Deterministic answer ->
      Alcotest.(check (list string)) "majority answer" [ "ok" ] answer
  | Nondet.Nondeterministic _ -> Alcotest.fail "2% flake should pass 0.9 agreement"

let nondet_distribution_counts () =
  let sul = flaky_sul (Rng.create 4L) 0.3 "ok" "bad" in
  let obs = Nondet.distribution ~runs:1000 sul [ () ] in
  let rate = Nondet.frequency obs (fun a -> a = [ "bad" ]) in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.3" rate)
    true
    (rate > 0.26 && rate < 0.34)

let nondet_raises () =
  let sul = flaky_sul (Rng.create 5L) 0.5 "ok" "bad" in
  match
    Nondet.deterministic_query
      { Nondet.min_runs = 10; max_runs = 40; agreement = 0.99 }
      ~pp:(fun _ -> "q") sul [ () ]
  with
  | exception Nondet.Nondeterministic_sul _ -> ()
  | _ -> Alcotest.fail "expected Nondeterministic_sul"

let plurality_picks_modal () =
  let sul = flaky_sul (Rng.create 6L) 0.2 "ok" "bad" in
  Alcotest.(check (list string)) "modal answer" [ "ok" ]
    (Nondet.plurality_query ~runs:101 sul [ () ])

let modal_oracle_prefix_consistent () =
  let rng = Rng.create 7L in
  (* Each step independently flaky: the raw SUL answers differ between
     runs, but the modal oracle must answer consistently on prefixes. *)
  let sul =
    Sul.make
      ~reset:(fun () -> ())
      ~step:(fun () -> if Rng.bool rng 0.3 then "B" else "A")
      ()
  in
  let oracle = Nondet.modal_oracle ~runs:51 sul in
  let a3 = oracle [ (); (); () ] in
  let a2 = oracle [ (); () ] in
  let a1 = oracle [ () ] in
  Alcotest.(check (list string)) "len-2 is a prefix of len-3" a2
    (List.filteri (fun i _ -> i < 2) a3);
  Alcotest.(check (list string)) "len-1 is a prefix of len-2" a1
    (List.filteri (fun i _ -> i < 1) a2);
  Alcotest.(check (list string)) "all modal" [ "A"; "A"; "A" ] a3

let modal_oracle_memoizes () =
  let calls = ref 0 in
  let sul =
    Sul.make
      ~reset:(fun () -> incr calls)
      ~step:(fun () -> "x")
      ()
  in
  let oracle = Nondet.modal_oracle ~runs:5 sul in
  let _ = oracle [ (); () ] in
  let after_first = !calls in
  let _ = oracle [ (); () ] in
  Alcotest.(check int) "no extra SUL resets on repeat" after_first !calls

(* --- adapter --- *)

let echo_adapter () =
  (* Abstract symbol n; concrete packet = string of n; output = n+1. *)
  Adapter.create
    ~reset:(fun () -> ())
    ~step:(fun n -> (n + 1, [ string_of_int n ], [ string_of_int (n + 1) ]))
    ()

let adapter_query_records () =
  let a = echo_adapter () in
  Alcotest.(check (list int)) "outputs" [ 2; 3 ] (Adapter.query a [ 1; 2 ]);
  match Oracle_table.find a.Adapter.table [ 1; 2 ] with
  | None -> Alcotest.fail "not recorded"
  | Some e ->
      Alcotest.(check (list int)) "abstract outputs" [ 2; 3 ]
        e.Oracle_table.abstract_outputs;
      Alcotest.(check (list string)) "concrete in" [ "1"; "2" ]
        (Oracle_table.concrete_inputs e)

let adapter_to_sul_flushes_on_reset () =
  let a = echo_adapter () in
  let sul = Adapter.to_sul a in
  let _ = Sul.query sul [ 5 ] in
  (* The entry is flushed by the *next* reset. *)
  let _ = Sul.query sul [ 7; 8 ] in
  Alcotest.(check bool) "first query recorded" true
    (Oracle_table.find a.Adapter.table [ 5 ] <> None)

let () =
  Alcotest.run "sul"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick rng_copy_independent;
          Alcotest.test_case "split" `Quick rng_split_independent;
          Alcotest.test_case "split reproducible" `Quick rng_split_reproducible;
          Alcotest.test_case "split_n pairwise different" `Quick
            rng_split_n_pairwise_different;
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "int rejects" `Quick rng_int_rejects_nonpositive;
          Alcotest.test_case "float range" `Quick rng_float_range;
          Alcotest.test_case "bool rate" `Quick rng_bool_rate;
          Alcotest.test_case "bytes" `Quick rng_bytes_length;
          QCheck_alcotest.to_alcotest prop_rng_int_covers;
        ] );
      ( "network",
        [
          Alcotest.test_case "reliable" `Quick network_reliable_passthrough;
          Alcotest.test_case "loss rate" `Quick network_loss_rate;
          Alcotest.test_case "duplication" `Quick network_duplication;
          Alcotest.test_case "corruption" `Quick network_corruption_changes_payload;
          Alcotest.test_case "corrupt empty" `Quick network_corruption_empty_payload;
          Alcotest.test_case "reconfigure" `Quick network_reconfigure;
        ] );
      ( "inet",
        [
          Alcotest.test_case "ipv4 roundtrip" `Quick ipv4_roundtrip;
          Alcotest.test_case "ipv4 checksum" `Quick ipv4_checksum_detects;
          Alcotest.test_case "udp roundtrip" `Quick udp_roundtrip;
          Alcotest.test_case "udp pseudo-header" `Quick udp_pseudo_header_binds_addresses;
          Alcotest.test_case "wrap/unwrap" `Quick wrap_unwrap_udp;
        ] );
      ( "oracle-table",
        [
          Alcotest.test_case "add/find" `Quick table_add_find;
          Alcotest.test_case "overwrite" `Quick table_overwrite_keeps_latest;
          Alcotest.test_case "order" `Quick table_entries_in_order;
          Alcotest.test_case "longest/clear" `Quick table_longest_and_clear;
        ] );
      ("sul", [ Alcotest.test_case "counting" `Quick sul_counting ]);
      ( "nondet",
        [
          Alcotest.test_case "deterministic fast path" `Quick nondet_deterministic_fastpath;
          Alcotest.test_case "detects" `Quick nondet_detects;
          Alcotest.test_case "majority tolerance" `Quick nondet_majority_tolerance;
          Alcotest.test_case "distribution" `Quick nondet_distribution_counts;
          Alcotest.test_case "raises" `Quick nondet_raises;
          Alcotest.test_case "plurality" `Quick plurality_picks_modal;
          Alcotest.test_case "modal prefix consistency" `Quick modal_oracle_prefix_consistent;
          Alcotest.test_case "modal memoizes" `Quick modal_oracle_memoizes;
        ] );
      ( "adapter",
        [
          Alcotest.test_case "query records" `Quick adapter_query_records;
          Alcotest.test_case "to_sul flushes" `Quick adapter_to_sul_flushes_on_reset;
        ] );
    ]
