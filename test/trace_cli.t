Learn a TCP model with tracing enabled, then explain the run with the
trace analyzer: aggregated span tree, critical path, slowest
membership queries and per-phase breakdown. Durations, counts and ids
are timing-dependent, so normalize them; the structure is not.

  $ ../bin/prognosis_cli.exe learn --protocol tcp --trace t.jsonl > /dev/null

  $ ../bin/prognosis_cli.exe trace t.jsonl --depth 3 --top 2 \
  >   | sed -E -e 's/ *[0-9]+\.?[0-9]*(ns|us|ms|s)\b/ DUR/g' \
  >            -e 's/x[0-9]+/xN/g' \
  >            -e 's/\(id [0-9]+\)/(id I)/g' \
  >            -e 's/len=[0-9]+/len=L/g' \
  >            -e 's/ *[0-9]+%/ P/g' \
  >            -e 's/[0-9]+ records/R records/'
  trace: prognosis.trace/1 (R records)
  
  == span tree ==
  learn  xN DUR
    learner.round  xN DUR
      learner.hypothesis  xN DUR
        oracle.mq  xN DUR
      learner.eq_query  xN DUR
        oracle.mq  xN DUR
        eq.counterexample  xN  (event)
    learner.refine  xN DUR
  
  == critical path ==
    learn DUR
    learner.round DUR
    learner.eq_query DUR
    oracle.mq DUR
  
  == slowest oracle.mq spans ==
    1. DUR  len=L  (id I)
    2. DUR  len=L  (id I)
  
  == phase breakdown ==
    eq-oracle DUR P
    learning DUR P

The flight recorder keeps the last records of a run that dies early.
Exhaust the query budget (exit 3 without finishing): the at_exit dump
must still leave a validating trace whose header records the ring
state, within the ring bound.

  $ ../bin/prognosis_cli.exe learn --protocol tcp --flight f.jsonl \
  >   --checkpoint ckpt --query-budget 50 > /dev/null 2> /dev/null
  [3]

  $ ./jsonl_check.exe f.jsonl | sed 's/[0-9][0-9]*/N/'
  ok: N records

  $ head -1 f.jsonl | grep -o '"flight":true'
  "flight":true

  $ awk 'END { print (NR <= 513) ? "within ring bound" : "ring overflow: " NR }' f.jsonl
  within ring bound

The analyzer reads a flight dump like any other trace, flagging it:

  $ ../bin/prognosis_cli.exe trace f.jsonl | head -1 | sed 's/[0-9][0-9]* records/R records/'
  trace: prognosis.trace/1 (flight dump, R records)
