(* Tests for the open-world fingerprinting service (lib/fingerprint):
   the model library, the adaptive classification trees, the identify
   engine's Known/Novel verdicts, and the satellite guarantees they
   lean on — shortest deterministic distinguishing words, line-numbered
   parse errors, idempotent canonicalization. *)

module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Oracle = Prognosis_learner.Oracle
module Model_diff = Prognosis_analysis.Model_diff
module Library = Prognosis_fingerprint.Library
module Splitter = Prognosis_fingerprint.Splitter
module Identify = Prognosis_fingerprint.Identify
open Prognosis

(* --- fixtures: small string-typed machines over {x, y} --- *)

let make ~lambda delta =
  Mealy.make ~size:(Array.length delta) ~initial:0 ~inputs:[| "x"; "y" |]
    ~delta ~lambda

(* x walks 0 -> 1 -> 2 -> 3 (absorbing); y loops home. *)
let chain_delta = [| [| 1; 0 |]; [| 2; 0 |]; [| 3; 0 |]; [| 3; 3 |] |]

let m_base =
  make chain_delta
    ~lambda:[| [| "a"; "n" |]; [| "a"; "n" |]; [| "a"; "n" |]; [| "b"; "n" |] |]

(* differs from m_base only on y in the depth-3 state *)
let m_deep =
  make chain_delta
    ~lambda:[| [| "a"; "n" |]; [| "a"; "n" |]; [| "a"; "n" |]; [| "b"; "m" |] |]

(* differs from m_base immediately, on y in the initial state *)
let m_shallow =
  make chain_delta
    ~lambda:[| [| "a"; "q" |]; [| "a"; "n" |]; [| "a"; "n" |]; [| "b"; "n" |] |]

let mq_of model = Oracle.of_sul (Sul.of_mealy model)

let outcome_name = function
  | Identify.Known e -> "known:" ^ e.Library.name
  | Identify.Novel e -> "novel:" ^ e.Identify.stage

(* --- Model_diff: shortest distinguishing words --- *)

let diff_shortest () =
  (match Model_diff.shortest_difference m_base m_deep with
  | Some w ->
      Alcotest.(check (list string))
        "depth-3 difference needs 4 symbols"
        [ "x"; "x"; "x"; "y" ] w.Model_diff.word;
      Alcotest.(check (list string))
        "outputs_a are m_base's" [ "a"; "a"; "a"; "n" ] w.Model_diff.outputs_a;
      Alcotest.(check (list string))
        "outputs_b are m_deep's" [ "a"; "a"; "a"; "m" ] w.Model_diff.outputs_b
  | None -> Alcotest.fail "expected a difference");
  match Model_diff.shortest_difference m_base m_shallow with
  | Some w ->
      Alcotest.(check (list string))
        "immediate difference is one symbol" [ "y" ] w.Model_diff.word
  | None -> Alcotest.fail "expected a difference"

let diff_deterministic () =
  let w () =
    match Model_diff.shortest_difference m_base m_deep with
    | Some w -> w.Model_diff.word
    | None -> Alcotest.fail "expected a difference"
  in
  Alcotest.(check (list string)) "same word on every run" (w ()) (w ());
  match Model_diff.shortest_difference m_deep m_base with
  | Some rev ->
      Alcotest.(check (list string))
        "argument order does not change the word" (w ()) rev.Model_diff.word
  | None -> Alcotest.fail "expected a difference"

let diff_equivalent () =
  Alcotest.(check bool) "self-diff is empty" true
    (Model_diff.shortest_difference m_base m_base = None);
  Alcotest.(check bool) "equivalent agrees" true
    (Model_diff.equivalent m_base m_base)

(* --- Persist: line-numbered corruption, kind round-trip --- *)

let persist_line_numbers () =
  let text =
    Persist.text_of_model ~kind:Persist.Tcp_model ~input_to_string:Fun.id
      ~output_to_string:Fun.id m_base
  in
  let lines = String.split_on_char '\n' text in
  let corrupt_at n replacement =
    String.concat "\n"
      (List.mapi (fun i l -> if i = n - 1 then replacement else l) lines)
  in
  let check_detail name n corrupted =
    match Persist.parse_text ~path:"t.model" Persist.Tcp_model corrupted with
    | Error (Persist.Corrupt { detail; _ }) ->
        let prefix = Printf.sprintf "line %d:" n in
        Alcotest.(check bool)
          (name ^ " names " ^ prefix)
          true
          (String.length detail >= String.length prefix
          && String.sub detail 0 (String.length prefix) = prefix)
    | Ok _ -> Alcotest.fail (name ^ ": expected a parse error")
    | Error e -> Alcotest.fail (name ^ ": " ^ Persist.load_error_to_string e)
  in
  check_detail "bad states header" 3 (corrupt_at 3 "states many");
  check_detail "bad transition" 12 (corrupt_at 12 "0 nonsense");
  (* truncation points one past the last line *)
  let total = List.length (String.split_on_char '\n' (String.trim text)) in
  match
    Persist.parse_text ~path:"t.model" Persist.Tcp_model
      (String.concat "\n"
         (List.filteri
            (fun i _ -> i < total - 1)
            (String.split_on_char '\n' (String.trim text))))
  with
  | Error (Persist.Corrupt { detail; _ }) ->
      let prefix = Printf.sprintf "line %d:" (total + 1) in
      ignore prefix;
      Alcotest.(check bool) "truncation carries a line number" true
        (String.length detail > 5 && String.sub detail 0 5 = "line ")
  | Ok _ -> Alcotest.fail "expected truncation error"
  | Error e -> Alcotest.fail (Persist.load_error_to_string e)

let kind_round_trip () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "kind_of_string inverts kind_to_string" true
        (Persist.kind_of_string (Persist.kind_to_string k) = Some k))
    Persist.all_kinds;
  Alcotest.(check bool) "unknown kind rejected" true
    (Persist.kind_of_string "smtp" = None)

(* --- Mealy.canonicalize: idempotence (QCheck2) --- *)

let gen_mealy =
  let open QCheck2.Gen in
  let* size = int_range 1 6 in
  let* nin = int_range 1 3 in
  let inputs = Array.init nin (fun i -> Printf.sprintf "i%d" i) in
  let row g = array_size (return nin) g in
  let* delta = array_size (return size) (row (int_range 0 (size - 1))) in
  let* lam = array_size (return size) (row (int_range 0 1)) in
  let lambda = Array.map (Array.map (fun j -> [| "o0"; "o1" |].(j))) lam in
  return (Mealy.make ~size ~initial:0 ~inputs ~delta ~lambda)

let canonicalize_idempotent =
  QCheck2.Test.make ~count:300 ~name:"canonicalize is idempotent" gen_mealy
    (fun m ->
      let c = Mealy.canonicalize m in
      Mealy.canonicalize c = c)

let canonical_form_idempotent =
  QCheck2.Test.make ~count:300
    ~name:"canonicalize o minimize is a fixed point" gen_mealy (fun m ->
      let c = Mealy.canonicalize (Mealy.minimize m) in
      Mealy.canonicalize (Mealy.minimize c) = c)

(* --- Splitter: construction, determinism, insertion --- *)

let entries () =
  List.map
    (fun (name, m) ->
      Library.entry_of_model ~name ~kind:Persist.Tcp_model m)
    [ ("base", m_base); ("deep", m_deep); ("shallow", m_shallow) ]

let build_exn es =
  match Splitter.build es with
  | Ok t -> t
  | Error msg -> Alcotest.fail msg

let splitter_classifies_members () =
  let es = entries () in
  let tree = build_exn es in
  List.iter
    (fun (e : Library.entry) ->
      let r = Identify.run ~mq:(mq_of e.Library.model) tree in
      Alcotest.(check string)
        (e.Library.name ^ " classified as itself")
        ("known:" ^ e.Library.name)
        (outcome_name r.Identify.outcome))
    es;
  let s = Splitter.stats tree in
  Alcotest.(check int) "three leaves" 3 s.Splitter.leaves;
  Alcotest.(check bool) "at least one separating word" true
    (s.Splitter.internal >= 1)

let splitter_deterministic () =
  let t1 = build_exn (entries ()) and t2 = build_exn (entries ()) in
  Alcotest.(check bool) "same entries compile to the same tree" true (t1 = t2)

let splitter_insert () =
  let es = entries () in
  let tree = build_exn es in
  (* an equivalent model is reported as a duplicate, not inserted *)
  (match
     Splitter.insert tree
       (Library.entry_of_model ~name:"base-copy" ~kind:Persist.Tcp_model m_base)
   with
  | Ok (Splitter.Duplicate e) ->
      Alcotest.(check string) "duplicate of base" "base" e.Library.name
  | Ok (Splitter.Inserted _) -> Alcotest.fail "equivalent model inserted"
  | Error msg -> Alcotest.fail msg);
  (* a genuinely new behaviour lands and becomes identifiable *)
  let fresh =
    make chain_delta
      ~lambda:
        [| [| "a"; "n" |]; [| "a"; "z" |]; [| "a"; "n" |]; [| "b"; "n" |] |]
  in
  match
    Splitter.insert tree
      (Library.entry_of_model ~name:"fresh" ~kind:Persist.Tcp_model fresh)
  with
  | Ok (Splitter.Inserted tree') ->
      let r = Identify.run ~mq:(mq_of fresh) tree' in
      Alcotest.(check string) "fresh entry identifiable" "known:fresh"
        (outcome_name r.Identify.outcome);
      List.iter
        (fun (e : Library.entry) ->
          let r = Identify.run ~mq:(mq_of e.Library.model) tree' in
          Alcotest.(check string)
            (e.Library.name ^ " still classified after insert")
            ("known:" ^ e.Library.name)
            (outcome_name r.Identify.outcome))
        es
  | Ok (Splitter.Duplicate _) -> Alcotest.fail "fresh behaviour deduplicated"
  | Error msg -> Alcotest.fail msg

(* --- Splitter: rebalancing a tree degraded by incremental inserts --- *)

let depth_gauge = Prognosis_obs.Metrics.gauge Prognosis_obs.Metrics.default
    "splitter.depth"

(* Unary-counter family: model [n] answers "hit" on the x that leaves
   state [n] and "go" everywhere else. Each next model diverges one
   step deeper than the last, so inserting them in order hangs every
   new leaf off the previous one — the worst case for tree depth. *)
let counter_model n =
  Mealy.of_fun ~size:(n + 2) ~initial:0 ~inputs:[| "x"; "y" |]
    ~step:(fun s i ->
      match i with
      | "x" when s <= n -> (s + 1, if s = n then "hit" else "go")
      | "x" -> (s, "go")
      | _ -> (s, "idle"))

let counter_entry n =
  Library.entry_of_model
    ~name:(Printf.sprintf "c%02d" n)
    ~kind:Persist.Tcp_model (counter_model n)

let insert_all tree es =
  List.fold_left
    (fun tree e ->
      match Splitter.insert tree e with
      | Ok (Splitter.Inserted t) -> t
      | Ok (Splitter.Duplicate d) ->
          Alcotest.failf "%s deduplicated against %s" e.Library.name
            d.Library.name
      | Error msg -> Alcotest.fail msg)
    tree es

let splitter_rebuild_if_skewed () =
  let n = 50 in
  let es = List.init n counter_entry in
  let degraded = insert_all (build_exn [ List.hd es ]) (List.tl es) in
  let d0 = (Splitter.stats degraded).Splitter.depth in
  (* 2 x log2 50 ~ 11.3: a 50-leaf chain is far past the threshold *)
  Alcotest.(check bool) "incremental inserts degraded the tree" true
    (float_of_int d0 > 2.0 *. (log (float_of_int n) /. log 2.0));
  match Splitter.rebuild_if_skewed degraded with
  | Error msg -> Alcotest.fail msg
  | Ok (rebuilt, flagged) ->
      Alcotest.(check bool) "skew detected" true flagged;
      let fresh = build_exn (Splitter.entries degraded) in
      Alcotest.(check int) "depth matches a from-scratch build"
        (Splitter.stats fresh).Splitter.depth
        (Splitter.stats rebuilt).Splitter.depth;
      Alcotest.(check int) "no entry lost" n
        (List.length (Splitter.entries rebuilt));
      Alcotest.(check (float 0.0)) "splitter.depth gauge tracks the rebuild"
        (float_of_int (Splitter.stats rebuilt).Splitter.depth)
        !depth_gauge;
      List.iter
        (fun (e : Library.entry) ->
          let r = Identify.run ~mq:(mq_of e.Library.model) rebuilt in
          Alcotest.(check string)
            (e.Library.name ^ " still classified after rebuild")
            ("known:" ^ e.Library.name)
            (outcome_name r.Identify.outcome))
        [ List.nth es 0; List.nth es 24; List.nth es 49 ]

let splitter_rebuild_leaves_balanced_alone () =
  (* Eight models answering pairwise-distinct outputs on the first x:
     every insert widens the root node instead of deepening it. *)
  let wide n =
    Library.entry_of_model
      ~name:(Printf.sprintf "w%d" n)
      ~kind:Persist.Tcp_model
      (Mealy.of_fun ~size:1 ~initial:0 ~inputs:[| "x"; "y" |]
         ~step:(fun s i ->
           (s, if i = "x" then Printf.sprintf "o%d" n else "idle")))
  in
  let es = List.init 8 wide in
  let tree = insert_all (build_exn [ List.hd es ]) (List.tl es) in
  match Splitter.rebuild_if_skewed tree with
  | Error msg -> Alcotest.fail msg
  | Ok (tree', flagged) ->
      Alcotest.(check bool) "balanced tree not flagged" false flagged;
      Alcotest.(check bool) "returned unchanged" true (tree' = tree);
      Alcotest.(check (float 0.0)) "gauge still set"
        (float_of_int (Splitter.stats tree).Splitter.depth)
        !depth_gauge

(* --- Identify: golden models are Known, a mutant is Novel --- *)

(* `dune runtest` runs from _build/default/test; `dune exec` from the
   project root — resolve the committed goldens from either. *)
let golden_path file =
  let candidates =
    [
      Filename.concat "../examples/golden" file;
      Filename.concat "examples/golden" file;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let goldens =
  [
    ("tcp", Persist.Tcp_model, golden_path "tcp.model");
    ("quic", Persist.Quic_model, golden_path "quic-quiche-like.model");
    ("dtls", Persist.Dtls_model, golden_path "dtls.model");
  ]

let load_golden (name, kind, path) =
  match Persist.load_text ~path kind with
  | Ok m -> Library.entry_of_model ~name ~kind m
  | Error e -> Alcotest.fail (Persist.load_error_to_string e)

let identify_goldens () =
  List.iter
    (fun g ->
      let entry = load_golden g in
      let tree = build_exn [ entry ] in
      let r = Identify.run ~mq:(mq_of entry.Library.model) tree in
      Alcotest.(check string)
        (entry.Library.name ^ " golden is Known")
        ("known:" ^ entry.Library.name)
        (outcome_name r.Identify.outcome);
      Alcotest.(check bool) "confirmation asked at least one word" true
        (r.Identify.confirm_words > 0))
    goldens

let identify_mutant_then_extend () =
  let tcp = load_golden (List.hd goldens) in
  let tree = build_exn [ tcp ] in
  (* a fault-injected variant: one output symbol silenced everywhere *)
  let mutated =
    Mealy.map_outputs
      (fun o -> if o = "ACK(?,?,0)" then "NIL" else o)
      tcp.Library.model
  in
  Alcotest.(check bool) "mutation changed behaviour" false
    (Model_diff.equivalent tcp.Library.model mutated);
  let r = Identify.run ~mq:(mq_of mutated) tree in
  (match r.Identify.outcome with
  | Identify.Novel e ->
      (* the evidence word replays the divergence on both machines *)
      Alcotest.(check (list string))
        "evidence actual matches the mutant" e.Identify.actual
        (Mealy.run mutated e.Identify.word)
  | Identify.Known _ -> Alcotest.fail "mutant misidentified as known");
  let entry =
    Library.entry_of_model ~name:"tcp-mutant" ~kind:Persist.Tcp_model mutated
  in
  match Splitter.insert tree entry with
  | Ok (Splitter.Inserted tree') ->
      let r2 = Identify.run ~mq:(mq_of mutated) tree' in
      Alcotest.(check string) "mutant Known after extension" "known:tcp-mutant"
        (outcome_name r2.Identify.outcome)
  | Ok (Splitter.Duplicate _) -> Alcotest.fail "mutant deduplicated"
  | Error msg -> Alcotest.fail msg

(* --- Library: on-disk round trip --- *)

let with_dir name f =
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path
  in
  if Sys.file_exists name then rm name;
  Sys.mkdir name 0o755;
  Fun.protect ~finally:(fun () -> rm name) (fun () -> f name)

let save m name dir =
  Persist.save_text
    ~path:(Filename.concat dir (name ^ ".model"))
    Persist.Tcp_model ~input_to_string:Fun.id ~output_to_string:Fun.id m

let library_round_trip () =
  with_dir "fplib_roundtrip" @@ fun dir ->
  save m_base "base" dir;
  save m_deep "deep" dir;
  save m_base "base-again" dir;
  let lib, notes =
    match Library.build ~dir with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "duplicate dropped" 2 (List.length lib.Library.entries);
  Alcotest.(check int) "duplicate noted" 1 (List.length notes);
  Alcotest.(check bool) "manifest written" true
    (Sys.file_exists (Filename.concat dir Library.manifest_file));
  let reloaded =
    match Library.load ~dir with
    | Ok l -> l
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "reload preserves entries" 2
    (List.length reloaded.Library.entries);
  List.iter
    (fun (e : Library.entry) ->
      match Library.find reloaded e.Library.name with
      | Some e' ->
          Alcotest.(check bool)
            (e.Library.name ^ " text identical") true
            (String.equal e.Library.text e'.Library.text)
      | None -> Alcotest.fail ("missing " ^ e.Library.name))
    lib.Library.entries;
  (* extension: a new behaviour is Added, an equivalent one Duplicate *)
  (match Library.add reloaded ~name:"shallow" ~kind:Persist.Tcp_model m_shallow with
  | Ok (Library.Added lib') ->
      Alcotest.(check int) "add extends" 3 (List.length lib'.Library.entries);
      (match Library.add lib' ~name:"shallow-copy" ~kind:Persist.Tcp_model m_shallow with
      | Ok (Library.Duplicate e) ->
          Alcotest.(check string) "equivalent detected" "shallow" e.Library.name
      | _ -> Alcotest.fail "expected Duplicate")
  | _ -> Alcotest.fail "expected Added");
  ()

let library_corrupt_file_pinpointed () =
  with_dir "fplib_corrupt" @@ fun dir ->
  save m_base "base" dir;
  let path = Filename.concat dir "broken.model" in
  let oc = open_out path in
  output_string oc "prognosis.model/1\nkind tcp\nstates nope\n";
  close_out oc;
  match Library.build ~dir with
  | Error msg ->
      let contains sub =
        let n = String.length sub and h = String.length msg in
        let rec go i = i + n <= h && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error names the file" true (contains "broken.model");
      Alcotest.(check bool) "error names the line" true (contains "line 3")
  | Ok _ -> Alcotest.fail "corrupt model accepted"

let () =
  Alcotest.run "fingerprint"
    [
      ( "model_diff",
        [
          Alcotest.test_case "shortest word" `Quick diff_shortest;
          Alcotest.test_case "deterministic" `Quick diff_deterministic;
          Alcotest.test_case "equivalence" `Quick diff_equivalent;
        ] );
      ( "persist",
        [
          Alcotest.test_case "line-numbered errors" `Quick persist_line_numbers;
          Alcotest.test_case "kind round trip" `Quick kind_round_trip;
        ] );
      ( "canonicalize",
        List.map QCheck_alcotest.to_alcotest
          [ canonicalize_idempotent; canonical_form_idempotent ] );
      ( "splitter",
        [
          Alcotest.test_case "classifies members" `Quick
            splitter_classifies_members;
          Alcotest.test_case "deterministic" `Quick splitter_deterministic;
          Alcotest.test_case "insert" `Quick splitter_insert;
          Alcotest.test_case "rebuild when skewed" `Quick
            splitter_rebuild_if_skewed;
          Alcotest.test_case "balanced left alone" `Quick
            splitter_rebuild_leaves_balanced_alone;
        ] );
      ( "identify",
        [
          Alcotest.test_case "goldens are Known" `Quick identify_goldens;
          Alcotest.test_case "mutant is Novel then extends" `Quick
            identify_mutant_then_extend;
        ] );
      ( "library",
        [
          Alcotest.test_case "round trip" `Quick library_round_trip;
          Alcotest.test_case "corrupt file pinpointed" `Quick
            library_corrupt_file_pinpointed;
        ] );
    ]
