Crash-tolerant learning runs. Interrupt a TCP study at a query budget
(the controlled crash): the run snapshots its cache, exits 3 and prints
a resume hint.

  $ ../bin/prognosis_cli.exe learn --protocol tcp --checkpoint ck --checkpoint-every 50 --query-budget 120
  interrupted: query budget reached after 120 SUL queries
  checkpoint saved to ck/tcp.ckpt
  resume with: prognosis resume --checkpoint ck
  [3]

The checkpoint directory holds the snapshot plus a manifest describing
the interrupted run, so `resume` needs nothing but the directory:

  $ ls ck
  manifest.json
  tcp.ckpt
  $ grep -o '"protocol":"tcp"' ck/manifest.json
  "protocol":"tcp"

Resuming completes the run. The 120 pre-crash queries are answered from
the warmed cache (the hit count covers them) and the SUL sees strictly
fewer queries than an uninterrupted run's 1000:

  $ ../bin/prognosis_cli.exe resume --checkpoint ck --save-text resumed.model > resumed.txt
  $ head -1 resumed.txt
  tcp (TTT): 6 states, 42 transitions, 880 membership queries (5513 symbols, 691 cache hits / 880 misses), 4 equivalence rounds, 1177 test words

An uninterrupted run serializes to byte-identical canonical text:

  $ ../bin/prognosis_cli.exe learn --protocol tcp --save-text fresh.model > fresh.txt
  $ head -1 fresh.txt
  tcp (TTT): 6 states, 42 transitions, 1000 membership queries (5889 symbols, 571 cache hits / 1000 misses), 4 equivalence rounds, 1177 test words
  $ cmp resumed.model fresh.model && echo identical
  identical

The golden-model regression gate. First generate the goldens:

  $ ../bin/prognosis_cli.exe ci --golden golden --update-golden
  [golden] tcp                -> golden/tcp.model
  [golden] quic:quiche-like   -> golden/quic-quiche-like.model
  [golden] dtls               -> golden/dtls.model
  goldens updated under golden

Gating against them passes and can append a Markdown summary (CI passes
$GITHUB_STEP_SUMMARY here):

  $ ../bin/prognosis_cli.exe ci --golden golden --summary sum.md
  [ok]   tcp                matches golden/tcp.model
  [ok]   quic:quiche-like   matches golden/quic-quiche-like.model
  [ok]   dtls               matches golden/dtls.model
  golden gate: ok
  $ grep -c 'matches golden' sum.md
  3

Perturb one golden transition: the gate fails with the shortest
distinguishing input word and both models' outputs on it.

  $ sed -i 's/^t 0 0 [0-9]* \([0-9]*\)$/t 0 0 0 \1/' golden/tcp.model
  $ ../bin/prognosis_cli.exe ci --golden golden
  [FAIL] tcp                drifted from golden/tcp.model
         distinguishing word: SYN(?,?,0) ACK(?,?,0)
           learned: SYN+ACK(?,?,0) NIL
           golden : SYN+ACK(?,?,0) RST(?,?,0)
  [ok]   quic:quiche-like   matches golden/quic-quiche-like.model
  [ok]   dtls               matches golden/dtls.model
  golden gate: DRIFT
  [1]

A missing golden is drift too, with a refresh hint:

  $ rm golden/dtls.model
  $ ../bin/prognosis_cli.exe ci --golden golden | tail -2 | head -1
  [FAIL] dtls               missing golden: golden/dtls.model: No such file or directory (generate with `prognosis ci --update-golden`)
