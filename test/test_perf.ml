(* The compiled-hot-path invariants behind the CI perf gate: packed
   stepping agrees with the functional reference on arbitrary machines,
   the compacted trie cache round-trips through the checkpoint format
   byte-identically, and the sharded equivalence oracle produces the
   same model as a sequential run. These run under the @perf alias,
   next to the counter gate in CI. *)

module Mealy = Prognosis_automata.Mealy
module Cache = Prognosis_learner.Cache
module Metrics = Prognosis_obs.Metrics
module Engine = Prognosis_exec.Engine
module Quic_alphabet = Prognosis_quic.Quic_alphabet
module Quic_profile = Prognosis_quic.Quic_profile
open Prognosis

(* --- packed stepping == functional stepping --- *)

let gen_machine_and_words =
  let open QCheck2.Gen in
  int_range 1 8 >>= fun size ->
  int_range 1 4 >>= fun k ->
  let state = int_range 0 (size - 1) in
  array_size (return size) (array_size (return k) state) >>= fun delta ->
  array_size (return size) (array_size (return k) (int_range 0 5))
  >>= fun lambda ->
  state >>= fun initial ->
  list_size (int_range 1 20) (list_size (int_range 0 15) (int_range 0 (k - 1)))
  >>= fun words ->
  let m =
    Mealy.make ~size ~initial ~inputs:(Array.init k Fun.id) ~delta ~lambda
  in
  return (m, words)

let prop_packed_equals_reference =
  QCheck2.Test.make ~count:300 ~name:"packed stepping == functional reference"
    gen_machine_and_words (fun (m, words) ->
      List.for_all
        (fun w ->
          Mealy.run m w = Mealy.run_reference m w
          && Mealy.state_after m w
             = List.fold_left (fun s i -> fst (Mealy.step m s i)) (Mealy.initial m) w)
        words)

let prop_packed_run_from =
  QCheck2.Test.make ~count:200 ~name:"packed run_from == reference from any state"
    gen_machine_and_words (fun (m, words) ->
      List.for_all
        (fun w ->
          let s = Mealy.state_after m w in
          List.for_all
            (fun w' -> Mealy.run_from m s w' = Mealy.run_reference_from m s w')
            words)
        words)

(* --- compacted trie preserves the checkpoint dump format --- *)

(* Words answered by a fixed machine so the query set is
   prefix-consistent, as real membership answers are. *)
let consistent_queries seed =
  let rng = Prognosis_sul.Rng.create seed in
  let m =
    Mealy.of_fun ~size:5 ~initial:0 ~inputs:[| 0; 1; 2 |] ~step:(fun s i ->
        ((s + i + 1) mod 5, (s * 3) + i))
  in
  List.init 60 (fun _ ->
      let len = 1 + Prognosis_sul.Rng.int rng 8 in
      let w = List.init len (fun _ -> Prognosis_sul.Rng.int rng 3) in
      (w, Mealy.run m w))

let trie_dump_restore_roundtrip () =
  let qs = consistent_queries 11L in
  let c1 = Cache.create () in
  List.iter (fun (w, o) -> Cache.insert c1 w o) qs;
  let d1 = Cache.dump c1 in
  let c2 = Cache.create () in
  Cache.restore c2 d1;
  Alcotest.(check bool) "dump . restore . dump is the identity" true
    (Cache.dump c2 = d1);
  Alcotest.(check int) "same entry count" (Cache.size c1) (Cache.size c2);
  Alcotest.(check bool) "trie is compacted" true (Cache.compacted_nodes c2 > 0)

let trie_restores_old_format_order () =
  let qs = consistent_queries 12L in
  (* a checkpoint written by the pre-trie cache carries entries in
     arbitrary (hash-table) order: interleave halves to simulate it *)
  let c1 = Cache.create () in
  List.iter (fun (w, o) -> Cache.insert c1 w o) qs;
  let d = Cache.dump c1 in
  let rec interleave = function
    | [], ys -> ys
    | xs, [] -> xs
    | x :: xs, y :: ys -> x :: y :: interleave (xs, ys)
  in
  let half = List.length d / 2 in
  let scrambled =
    interleave (List.filteri (fun i _ -> i >= half) d,
                List.rev (List.filteri (fun i _ -> i < half) d))
  in
  let c2 = Cache.create () in
  Cache.restore c2 scrambled;
  List.iter
    (fun (w, o) ->
      match Cache.lookup c2 w with
      | Some o' -> Alcotest.(check bool) "restored answer" true (o = o')
      | None -> Alcotest.fail "entry lost restoring an out-of-order dump")
    qs;
  Alcotest.(check bool) "canonical dump independent of input order" true
    (Cache.dump c2 = d)

(* --- sharded cache == one trie, under any shard count --- *)

(* Random prefix-consistent word sets (answered by a fixed machine,
   like [consistent_queries]) dumped from a [Cache.Sharded] must be
   byte-identical to the unsharded canonical dump — that is what lets
   a fleet checkpoint interchange with a solo one. *)
let gen_word_set =
  let open QCheck2.Gen in
  let m =
    Mealy.of_fun ~size:6 ~initial:0 ~inputs:[| 0; 1; 2; 3 |] ~step:(fun s i ->
        ((s + (2 * i) + 1) mod 6, (s * 5) + i))
  in
  list_size (int_range 0 80)
    (list_size (int_range 0 10) (int_range 0 3))
  >>= fun words -> return (List.map (fun w -> (w, Mealy.run m w)) words)

let prop_sharded_dump_canonical =
  QCheck2.Test.make ~count:60
    ~name:"Sharded.dump == unsharded dump for K in {1,4,8}"
    gen_word_set (fun qs ->
      let flat = Cache.create () in
      List.iter (fun (w, o) -> Cache.insert flat w o) qs;
      let reference = Cache.dump flat in
      List.for_all
        (fun k ->
          let sharded = Cache.Sharded.create ~shards:k () in
          List.iter (fun (w, o) -> Cache.Sharded.insert sharded w o) qs;
          Cache.Sharded.dump sharded = reference
          && Cache.Sharded.size sharded = Cache.size flat
          && List.for_all
               (fun (w, o) -> Cache.Sharded.lookup sharded w = Some o)
               qs)
        [ 1; 4; 8 ])

(* Four domains hammering the same sharded cache: two inserting
   disjoint prefix-consistent sets, two doing optimistic lookups the
   whole time. Every lookup that returns must return the machine's
   answer (the seqlock may retry but never tears), and the final dump
   equals a sequential insert of everything. *)
let sharded_stress_four_domains () =
  let m =
    Mealy.of_fun ~size:7 ~initial:0 ~inputs:[| 0; 1; 2; 3; 4 |]
      ~step:(fun s i -> ((s + i + 2) mod 7, (s * 7) + (2 * i)))
  in
  let answers w = Mealy.run m w in
  let words_of seed n =
    let rng = Prognosis_sul.Rng.create seed in
    List.init n (fun _ ->
        let len = 1 + Prognosis_sul.Rng.int rng 9 in
        List.init len (fun _ -> Prognosis_sul.Rng.int rng 5))
  in
  let batch_a = words_of 31L 400 and batch_b = words_of 32L 400 in
  let cache = Cache.Sharded.create ~shards:8 () in
  let torn = Atomic.make 0 and looked = Atomic.make 0 in
  let inserter batch () =
    List.iter (fun w -> Cache.Sharded.insert cache w (answers w)) batch
  in
  let prober batch () =
    for _ = 1 to 30 do
      List.iter
        (fun w ->
          match Cache.Sharded.lookup cache w with
          | Some o ->
              Atomic.incr looked;
              if o <> answers w then Atomic.incr torn
          | None -> ())
        batch
    done
  in
  let ds =
    List.map Domain.spawn
      [ inserter batch_a; prober batch_b; inserter batch_b; prober batch_a ]
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lookup ever tore" 0 (Atomic.get torn);
  Alcotest.(check bool) "probers saw published entries" true
    (Atomic.get looked > 0);
  let sequential = Cache.create () in
  List.iter
    (fun w -> Cache.insert sequential w (answers w))
    (batch_a @ batch_b);
  Alcotest.(check bool) "dump == sequential insert of both batches" true
    (Cache.Sharded.dump cache = Cache.dump sequential)

(* --- sharded equivalence testing is deterministic --- *)

let canonical_text r =
  Persist.text_of_model ~kind:Persist.Quic_model
    ~input_to_string:Quic_alphabet.to_string
    ~output_to_string:Quic_alphabet.output_to_string r.Quic_study.model

let parallel_eq_identical () =
  let profile = Quic_profile.quiche_like in
  let sequential = Quic_study.learn ~seed:5L ~profile () in
  let shards = Metrics.counter Metrics.default "eq.shards" in
  let before = !shards in
  let config =
    { Engine.default with Engine.workers = 4; parallel = true; batch = true }
  in
  let parallel = Quic_study.learn ~seed:5L ~exec:config ~profile () in
  Alcotest.(check string) "byte-identical canonical model"
    (canonical_text sequential) (canonical_text parallel);
  Alcotest.(check bool) "suite was sharded" true (!shards > before);
  Alcotest.(check int) "same state count"
    sequential.Quic_study.report.Report.states
    parallel.Quic_study.report.Report.states

let () =
  Alcotest.run "perf"
    [
      ( "packed",
        [
          QCheck_alcotest.to_alcotest prop_packed_equals_reference;
          QCheck_alcotest.to_alcotest prop_packed_run_from;
        ] );
      ( "trie",
        [
          Alcotest.test_case "dump/restore round-trip" `Quick
            trie_dump_restore_roundtrip;
          Alcotest.test_case "old-format order" `Quick
            trie_restores_old_format_order;
        ] );
      ( "sharded",
        [
          QCheck_alcotest.to_alcotest prop_sharded_dump_canonical;
          Alcotest.test_case "4-domain stress" `Slow
            sharded_stress_four_domains;
        ] );
      ( "parallel-eq",
        [
          Alcotest.test_case "byte-identical model" `Slow parallel_eq_identical;
        ] );
    ]
