(** A minimal JSON representation used by the telemetry layer: the
    trace sinks, the metrics snapshots and the machine-readable
    reports all serialize through this module, so the repo needs no
    external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (suitable for JSONL). *)

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON value; raises {!Parse_error} on malformed input,
    trailing garbage, or nesting deeper than 512 levels (a recursion
    guard — the parser descends once per level). *)

val of_string_opt : string -> t option

val member : string -> t -> t option
(** [member k (Obj ...)] looks up field [k]; [None] on non-objects. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
val to_string_opt : t -> string option
