(* Atomic whole-file writes: temp file in the target directory, then
   rename. This is the discipline the checkpoint subsystem already
   follows; every other report/trace/snapshot writer goes through here
   so a crash mid-write never leaves a truncated artifact where a
   complete one is expected. *)

let write ~path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc contents)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_lines ~path lines =
  let buf = Buffer.create 4096 in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    lines;
  write ~path (Buffer.contents buf)
