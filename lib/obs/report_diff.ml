(* Diff two machine-readable reports (prognosis.report/1, or the
   prognosis.bench/* snapshots) as flat metric maps.

   Each JSON document is flattened into dotted numeric paths
   ([results.tcp:ttt.membership_queries],
   [benchmarks_ns_per_run.E1_learn_tcp_ttt]); list elements are keyed
   by their "subject" (plus "algorithm") fields when present, so two
   reports with re-ordered result lists still align, and by index
   otherwise. The diff is the union of paths with the value on each
   side; a regression gate then flags watched paths whose value grew
   beyond a threshold. *)

type delta = { path : string; a : float option; b : float option }

let element_key j i =
  let str k = Option.bind (Jsonx.member k j) Jsonx.to_string_opt in
  match str "subject" with
  | Some s -> (
      match str "algorithm" with Some a -> s ^ ":" ^ a | None -> s)
  | None -> string_of_int i

let flatten json =
  let out = ref [] in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec go prefix j =
    match j with
    | Jsonx.Int n -> out := (prefix, float_of_int n) :: !out
    | Jsonx.Float f -> out := (prefix, f) :: !out
    | Jsonx.Obj fields -> List.iter (fun (k, v) -> go (join prefix k) v) fields
    | Jsonx.List items ->
        List.iteri (fun i item -> go (join prefix (element_key item i)) item) items
    | Jsonx.Null | Jsonx.Bool _ | Jsonx.String _ -> ()
  in
  go "" json;
  List.rev !out

let diff a b =
  let fa = flatten a and fb = flatten b in
  let paths = Hashtbl.create 64 in
  let note side (path, v) =
    let cur =
      Option.value ~default:(None, None) (Hashtbl.find_opt paths path)
    in
    Hashtbl.replace paths path
      (match side with `A -> (Some v, snd cur) | `B -> (fst cur, Some v))
  in
  List.iter (note `A) fa;
  List.iter (note `B) fb;
  Hashtbl.fold (fun path (a, b) acc -> { path; a; b } :: acc) paths []
  |> List.sort (fun x y -> compare x.path y.path)

let changed d =
  match (d.a, d.b) with
  | Some a, Some b -> a <> b
  | None, None -> false
  | _ -> true

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let last_segment path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

(* Paths where "bigger means worse": benchmark timings, and the query
   /reset/step effort counters of a learning run. Baseline echoes and
   saved-count bookkeeping inside a report are excluded — a resumed
   run legitimately carries larger cumulative baselines.
   [sessions_per_sec] is a throughput, so its direction is inverted
   (see {!inverted}); it belongs here, in the advisory wall-clock
   gate, and is deliberately absent from {!counter_watch} — it is
   scheduling- and hardware-dependent, never deterministic. *)
let default_watch path =
  (not (contains ~sub:"baseline" path))
  && (not (contains ~sub:"saved" path))
  && (contains ~sub:"benchmarks_ns_per_run" path
     ||
     match last_segment path with
     | "membership_queries" | "membership_symbols" | "resets" | "steps"
     | "test_words" | "queries_per_identification" | "sessions_per_sec" ->
         true
     | _ -> false)

(* Throughput paths: "smaller means worse", so the regression test
   flips direction for them. *)
let inverted path = last_segment path = "sessions_per_sec"

(* The deterministic effort counters: identical-seed runs reproduce
   these byte-for-byte, so CI gates them at threshold zero and in both
   directions (an unexplained improvement is as suspicious as a
   regression — it means the query stream changed). The global metrics
   registry snapshot is excluded: its counters absorb bechamel's
   machine-dependent iteration counts and are not deterministic. *)
let counter_watch path =
  (not
     (String.length path >= 8
     && String.sub path 0 8 = "metrics."
     || path = "metrics"))
  && (not (contains ~sub:"baseline" path))
  && (not (contains ~sub:"saved" path))
  &&
  match last_segment path with
  | "membership_queries" | "membership_symbols" | "test_words"
  | "queries_per_identification" ->
      true
  | _ -> false

let drift ?(watch = counter_watch) deltas =
  List.filter (fun d -> watch d.path && changed d) deltas

let regressions ?(threshold = 0.10) ?(watch = default_watch) deltas =
  List.filter
    (fun d ->
      watch d.path
      &&
      match (d.a, d.b) with
      | Some a, Some b ->
          if inverted d.path then b *. (1.0 +. threshold) < a -. 1e-9
          else b > a *. (1.0 +. threshold) +. 1e-9
      | _ -> false)
    deltas
