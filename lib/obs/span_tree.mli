(** Span-tree reconstruction and analysis over trace records.

    Feed it the parsed JSONL records of a trace stream (meta records
    and malformed lines are skipped); it rebuilds the span/event tree
    from the [id]/[parent] fields and answers the questions the
    [prognosis trace] subcommand asks: where did the wall clock go
    (critical path), which membership queries were slowest, and how
    does time split across phases. *)

type kind = Span | Event

type node = {
  id : int;
  name : string;
  kind : kind;
  start_ns : int;  (** for events, their [t_ns] *)
  dur_ns : int;  (** for events, [0] *)
  attrs : (string * Jsonx.t) list;
  mutable children : node list;  (** sorted by id (creation order) *)
}

val of_records : Jsonx.t list -> node list
(** Build the forest. A node whose parent id never appears in the
    stream (the run died before the parent closed) becomes a root.
    Roots sorted by id. *)

val spans : node list -> node list
(** Every span node in the forest, pre-order. *)

val critical_path : node -> node list
(** Root-to-leaf chain following the longest-duration child span at
    each step. *)

val top_slowest : ?name:string -> k:int -> node list -> node list
(** The [k] longest spans (optionally only those named [name]),
    descending by duration. *)

val phase_breakdown : node list -> (string * int) list
(** Exclusive nanoseconds per ["phase"] attribute value, descending.
    A phased span contributes its duration minus the time covered by
    phased descendants, so nesting never double counts. *)

(** {2 Rendering} *)

type agg = {
  a_name : string;
  a_kind : kind;
  a_count : int;
  a_total_ns : int;
  a_children : agg list;
}

val aggregate : node list -> agg list
(** Collapse sibling nodes sharing a name into one aggregate (count +
    summed duration), recursively; first-appearance order. *)

val pp_ns : int -> string
(** Human duration: [850ns], [12.3us], [4.0ms], [1.234s]. *)

val render_tree : ?max_depth:int -> node list -> string
(** Aggregated tree, two-space indented, one line per aggregate. *)
