(** Atomic whole-file writes (temp file + rename), the same discipline
    the checkpoint snapshots follow. A reader never observes a
    partially written file: it sees either the previous content or the
    new one. *)

val write : path:string -> string -> unit
(** [write ~path contents] writes [contents] to [path ^ ".tmp"] and
    renames it over [path]. The temp file is removed on failure. *)

val write_lines : path:string -> string list -> unit
(** [write_lines ~path lines] atomically writes [lines], each
    terminated by a newline. *)
