(* OpenMetrics / Prometheus text exposition for the metrics registry.

   Registry names ([exec.worker.runs{worker="3"}]) map onto the
   exposition grammar: the base name is mangled into
   [prognosis_exec_worker_runs] (non-alphanumerics become
   underscores), labels are recovered with [Labels.split], counters
   gain the conventional [_total] suffix, and histograms expand into
   cumulative [_bucket{le=...}] samples plus [_sum]/[_count]. The
   output ends with the [# EOF] terminator the OpenMetrics spec
   requires. *)

let metric_name name =
  let buf = Buffer.create (String.length name + 10) in
  Buffer.add_string buf "prognosis_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

(* Sample values and [le] bounds. Shortest reasonable decimal: [%.12g]
   round-trips every value the registry produces (counts, nanosecond
   sums, log-scale bucket bounds). *)
let number_repr f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let add_labels buf labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Labels.escape_value buf v;
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let add_sample buf name labels value =
  Buffer.add_string buf name;
  add_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (number_repr value);
  Buffer.add_char buf '\n'

let type_line buf family kind =
  Buffer.add_string buf "# TYPE ";
  Buffer.add_string buf family;
  Buffer.add_char buf ' ';
  Buffer.add_string buf kind;
  Buffer.add_char buf '\n'

let kind_of = function
  | Metrics.V_counter _ -> "counter"
  | Metrics.V_gauge _ -> "gauge"
  | Metrics.V_hist _ -> "histogram"

let render registry =
  let buf = Buffer.create 1024 in
  let entries =
    List.map
      (fun (encoded, view) ->
        let base, labels = Labels.split encoded in
        (metric_name base, labels, view))
      (Metrics.snapshot registry)
  in
  (* snapshot is sorted by encoded name, so label sets of one family
     are consecutive; emit one # TYPE line per family. *)
  let last_family = ref "" in
  List.iter
    (fun (family, labels, view) ->
      if family <> !last_family then begin
        last_family := family;
        type_line buf family (kind_of view)
      end;
      match view with
      | Metrics.V_counter n ->
          add_sample buf (family ^ "_total") labels (float_of_int n)
      | Metrics.V_gauge v -> add_sample buf family labels v
      | Metrics.V_hist h ->
          let cum = ref 0 in
          List.iter
            (fun (upper, count) ->
              cum := !cum + count;
              add_sample buf (family ^ "_bucket")
                (labels @ [ ("le", number_repr upper) ])
                (float_of_int !cum))
            h.Metrics.v_buckets;
          add_sample buf (family ^ "_bucket")
            (labels @ [ ("le", "+Inf") ])
            (float_of_int h.Metrics.v_count);
          add_sample buf (family ^ "_sum") labels h.Metrics.v_sum;
          add_sample buf (family ^ "_count") labels
            (float_of_int h.Metrics.v_count))
    entries;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write_file registry path = Atomic_file.write ~path (render registry)
