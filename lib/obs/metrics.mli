(** Metrics registry: counters, gauges and log-scale latency
    histograms, snapshotted to JSON.

    Instrumentation sites obtain a metric once (get-or-create by name)
    and then update it through a bare ref, so the hot-path cost is a
    single write. {!reset} zeroes metrics in place, keeping previously
    obtained handles valid.

    Registration, {!reset} and the snapshot walks are serialized by a
    per-registry mutex, so fleet sessions running on worker domains may
    register metrics concurrently. Updates through the returned refs
    remain unsynchronized single writes: concurrent sessions can lose
    increments to each other, which is acceptable for these advisory
    process-wide totals (the deterministic counters CI gates on are the
    per-run oracle statistics, not this registry). *)

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry all built-in instrumentation reports to. *)

val counter : t -> string -> int ref
val gauge : t -> string -> float ref

val counter_l : t -> string -> Labels.t -> int ref
(** Labelled counter: registered under [Labels.encode name labels]
    ([name{k="v",...}]), so distinct label sets are distinct metrics
    while the hot-path cost stays one memory write. *)

val gauge_l : t -> string -> Labels.t -> float ref

val inc : ?by:int -> int ref -> unit
val set : float ref -> float -> unit

(** {2 Histograms} *)

type histogram

val histogram : t -> string -> histogram
val histogram_l : t -> string -> Labels.t -> histogram

val observe : histogram -> float -> unit
val observe_ns : histogram -> int64 -> unit

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1]: upper bound of the bucket holding
    the rank-[q] observation, clamped to the observed maximum; [nan]
    when empty. Buckets are log-scale, 5 per decade, so the estimate
    overshoots by at most a factor of 10^(1/5) ~ 1.58. *)

val mean : histogram -> float

val bucket_index : float -> int
(** Bucket for a value: 0 covers (0, 1]; bucket [i >= 1] covers
    (10^((i-1)/5), 10^(i/5)]. Exposed for tests. *)

val bucket_upper : int -> float
(** Upper bound of a bucket. Exposed for tests. *)

(** {2 Snapshots} *)

val reset : t -> unit
(** Zero every metric in place. *)

val to_json : t -> Jsonx.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count,sum,min,max,mean,p50,p90,p99}}}] with names sorted. *)

val to_json_string : t -> string

val write_file : t -> string -> unit
(** Atomically write {!to_json_string} (plus newline) to a file
    (temp-file + rename, the checkpoint discipline). *)

(** {2 Exporter view}

    A structural snapshot for renderers that need more than JSON — the
    OpenMetrics exporter reads histogram buckets through it. Names are
    registry names, labels still encoded ({!Labels.split} recovers
    them). *)

type hist_view = {
  v_count : int;
  v_sum : float;
  v_buckets : (float * int) list;
      (** (bucket upper bound, per-bucket count), non-empty buckets
          only, ascending *)
}

type view = V_counter of int | V_gauge of float | V_hist of hist_view

val snapshot : t -> (string * view) list
(** Every metric, name-sorted. *)
