(** Diff machine-readable reports ([prognosis.report/1],
    [prognosis.bench/*]) as flat metric maps, with a regression gate.

    Documents flatten into dotted numeric paths; list elements align
    by their ["subject"] (plus ["algorithm"]) fields when present so
    re-ordered result lists still compare, by index otherwise.
    Non-numeric leaves are ignored. *)

type delta = {
  path : string;
  a : float option;  (** value in the first (baseline) report *)
  b : float option;  (** value in the second (candidate) report *)
}

val flatten : Jsonx.t -> (string * float) list
(** Numeric leaves as (dotted path, value), document order. *)

val diff : Jsonx.t -> Jsonx.t -> delta list
(** Union of both documents' paths, sorted by path. *)

val changed : delta -> bool
(** The two sides differ (including one-sided paths). *)

val default_watch : string -> bool
(** The paths the regression gate watches by default: benchmark
    timings ([benchmarks_ns_per_run]), learning-effort counters
    (membership_queries, membership_symbols, resets, steps,
    test_words), the fingerprint service's per-endpoint
    identification cost (queries_per_identification) and the fleet
    scheduler's throughput (sessions_per_sec, direction inverted —
    see {!inverted}), excluding baseline echoes and saved-count
    bookkeeping. *)

val inverted : string -> bool
(** Throughput paths ([sessions_per_sec]) where smaller means worse;
    {!regressions} flips the comparison direction for them. They are
    wall-clock-dependent, so they live in the advisory gate only —
    {!counter_watch} never matches them. *)

val regressions :
  ?threshold:float -> ?watch:(string -> bool) -> delta list -> delta list
(** Watched paths present on both sides whose value grew by more than
    [threshold] (default 0.10, i.e. 10%) — or, for {!inverted} paths,
    shrank by more than the threshold. *)

val counter_watch : string -> bool
(** The deterministic counters (membership_queries,
    membership_symbols, test_words, queries_per_identification) that
    identical-seed runs must reproduce exactly, excluding baseline
    /saved bookkeeping and the whole [metrics] registry snapshot
    (whose counters absorb bechamel's machine-dependent iteration
    counts). *)

val drift : ?watch:(string -> bool) -> delta list -> delta list
(** Watched paths that changed in either direction, including paths
    present on only one side — the zero-threshold gate for
    deterministic counters (default watch: {!counter_watch}). *)
