(** Flight recorder: a bounded ring of the most recent trace records.

    Install {!sink} (alone, or teed with a file sink via
    {!Trace.Sink.tee}) and call {!install_flight} to guarantee that a
    crashed, killed (SIGTERM/SIGINT) or budget-exhausted run leaves a
    parseable [flight.jsonl] holding its last [capacity] records. The
    dump is atomic (temp-file + rename) and opens with a flight meta
    header: [{"type":"meta","schema":"prognosis.trace/1",...,
    "flight":true,"capacity":N,"dropped":K}]. Stream meta headers
    arriving through the sink are not buffered — the dump re-stamps
    its own. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring holding the last [capacity] (default 512, min 1) records. *)

val sink : t -> Trace.sink
(** A trace sink that appends into the ring, evicting the oldest
    record once full. [flush]/[close] are no-ops: the ring's contents
    only reach disk through {!dump}. *)

val records : t -> Jsonx.t list
(** Buffered records, oldest first. *)

val capacity : t -> int

val dropped : t -> int
(** Records evicted since creation. *)

val dump : t -> path:string -> unit
(** Atomically write the flight meta header plus {!records} to
    [path], one JSON object per line. *)

val install_flight : path:string -> t -> unit
(** Register an [at_exit] dump to [path] (errors suppressed), and
    convert SIGTERM/SIGINT into [exit 143]/[exit 130] so those paths
    dump too. *)
