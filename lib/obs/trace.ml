(* Structured run tracing: nested spans and point events, emitted as
   one JSON object per line to a pluggable sink. Records are written
   when a span closes, so children precede their parents in the file;
   the [id]/[parent] fields (allocated in creation order) recover the
   tree and the original ordering. *)

type sink = {
  emit : Jsonx.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

module Sink = struct
  let make ?(flush = ignore) ?(close = ignore) emit = { emit; flush; close }

  let jsonl_file path =
    let oc = open_out path in
    {
      emit =
        (fun j ->
          output_string oc (Jsonx.to_string j);
          output_char oc '\n');
      flush = (fun () -> Stdlib.flush oc);
      close = (fun () -> close_out oc);
    }

  let memory () =
    let records = ref [] in
    ( { emit = (fun j -> records := j :: !records); flush = ignore; close = ignore },
      fun () -> List.rev !records )

  let tee a b =
    {
      emit =
        (fun j ->
          a.emit j;
          b.emit j);
      flush =
        (fun () ->
          a.flush ();
          b.flush ());
      close =
        (fun () ->
          a.close ();
          b.close ());
    }
end

let schema = "prognosis.trace/1"

let meta_record () =
  Jsonx.Obj
    [
      ("type", Jsonx.String "meta");
      ("schema", Jsonx.String schema);
      ("clock", Jsonx.String "monotonic_ns");
    ]

type span = {
  id : int;
  name : string;
  parent : int option;
  start : int64;
  mutable attrs : (string * Jsonx.t) list;
}

let sink : sink option ref = ref None
let stack : span list ref = ref []
let seq = ref 0

let enabled () = !sink <> None

(* Early exits (a --query-budget abort, an uncaught exception) must
   not truncate a JSONL stream mid-record, so the first set_sink
   registers a process-wide flush. The sink itself is not closed here:
   a normal shutdown path still owns that. *)
let exit_flush_registered = ref false

let set_sink s =
  (match !sink with Some old -> old.flush (); old.close () | None -> ());
  sink := Some s;
  stack := [];
  seq := 0;
  if not !exit_flush_registered then begin
    exit_flush_registered := true;
    at_exit (fun () -> match !sink with Some s -> s.flush () | None -> ())
  end;
  (* every trace stream opens with a versioned meta record *)
  s.emit (meta_record ())

let unset_sink () =
  (match !sink with Some s -> s.flush (); s.close () | None -> ());
  sink := None;
  stack := []

let emit j = match !sink with Some s -> s.emit j | None -> ()

let json_of_attrs attrs =
  match attrs with [] -> Jsonx.Null | l -> Jsonx.Obj (List.rev l)

let parent_field = function None -> Jsonx.Null | Some p -> Jsonx.Int p

let add_attr k v =
  match !stack with sp :: _ -> sp.attrs <- (k, v) :: sp.attrs | [] -> ()

let event ?(attrs = []) name =
  if enabled () then begin
    incr seq;
    let parent = match !stack with [] -> None | sp :: _ -> Some sp.id in
    emit
      (Jsonx.Obj
         [
           ("type", Jsonx.String "event");
           ("name", Jsonx.String name);
           ("id", Jsonx.Int !seq);
           ("parent", parent_field parent);
           ("t_ns", Jsonx.Int (Int64.to_int (Clock.now_ns ())));
           ("attrs", json_of_attrs (List.rev attrs));
         ])
  end

let with_span ?(attrs = []) name f =
  match !sink with
  | None -> f ()
  | Some _ ->
      incr seq;
      let parent = match !stack with [] -> None | sp :: _ -> Some sp.id in
      let sp =
        { id = !seq; name; parent; start = Clock.now_ns (); attrs = List.rev attrs }
      in
      stack := sp :: !stack;
      let finish () =
        let stop = Clock.now_ns () in
        (match !stack with
        | top :: rest when top.id = sp.id -> stack := rest
        | _ -> () (* a nested span leaked past its parent; keep going *));
        emit
          (Jsonx.Obj
             [
               ("type", Jsonx.String "span");
               ("name", Jsonx.String sp.name);
               ("id", Jsonx.Int sp.id);
               ("parent", parent_field sp.parent);
               ("start_ns", Jsonx.Int (Int64.to_int sp.start));
               ("end_ns", Jsonx.Int (Int64.to_int stop));
               ("dur_ns", Jsonx.Int (Int64.to_int (Int64.sub stop sp.start)));
               ("attrs", json_of_attrs sp.attrs);
             ])
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          sp.attrs <- ("error", Jsonx.String (Printexc.to_string e)) :: sp.attrs;
          finish ();
          raise e)

let flush () = match !sink with Some s -> s.flush () | None -> ()
