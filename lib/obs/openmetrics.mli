(** OpenMetrics / Prometheus text exposition of a metrics registry.

    Name mapping: the registry name is mangled (non-alphanumerics to
    underscores) and prefixed, so [exec.worker.runs] becomes
    [prognosis_exec_worker_runs]; labels encoded by {!Labels.encode}
    are recovered and rendered in the exposition syntax. Counters get
    a [_total] suffix; histograms expand into cumulative
    [_bucket{le=...}] samples (non-empty buckets plus [+Inf]) and
    [_sum]/[_count]; each family is preceded by one [# TYPE] line and
    the output ends with [# EOF]. *)

val metric_name : string -> string
(** Mangle a registry base name into an exposition metric name.
    Exposed for tests. *)

val render : Metrics.t -> string

val write_file : Metrics.t -> string -> unit
(** Atomically write {!render} output (temp-file + rename). *)
