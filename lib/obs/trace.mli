(** Structured run tracing: nested, monotonic-clock-timed spans with
    key/value attributes, plus point events, emitted as JSONL to a
    pluggable sink.

    When no sink is installed everything is a no-op, so instrumented
    hot paths cost one branch. A span record is emitted when the span
    closes (children therefore appear before their parents in the
    stream); [id]s are allocated in creation order and each record
    carries its [parent] id, which recovers nesting and ordering.

    Record schema (one JSON object per line):
    - meta (first record of every stream):
      [{"type":"meta","schema":"prognosis.trace/1","clock":"monotonic_ns"}]
    - spans: [{"type":"span","name":..,"id":..,"parent":..|null,
      "start_ns":..,"end_ns":..,"dur_ns":..,"attrs":{..}|null}]
    - events: [{"type":"event","name":..,"id":..,"parent":..|null,
      "t_ns":..,"attrs":{..}|null}] *)

type sink = {
  emit : Jsonx.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

module Sink : sig
  val make :
    ?flush:(unit -> unit) -> ?close:(unit -> unit) -> (Jsonx.t -> unit) -> sink

  val jsonl_file : string -> sink
  (** One compact JSON object per line, appended to [path] (truncated
      on open). *)

  val memory : unit -> sink * (unit -> Jsonx.t list)
  (** In-memory sink for tests; the second component returns the
      records emitted so far, in emission order. *)

  val tee : sink -> sink -> sink
  (** Duplicate every record (and flush/close) to both sinks, in
      order. Used to keep a flight-recorder ring alongside a file
      sink. *)
end

val schema : string
(** ["prognosis.trace/1"] — the stream version stamped into the meta
    record. *)

val meta_record : unit -> Jsonx.t
(** The versioned header record; exposed for sinks (the flight
    recorder) that re-emit their own header on dump. *)

val set_sink : sink -> unit
(** Install the global sink (closing any previous one), reset span
    ids, and emit the {!meta_record} header as the stream's first
    record. The first call also registers an [at_exit] flush so early
    process exits don't truncate the stream mid-record. *)

val unset_sink : unit -> unit
(** Flush, close and remove the global sink. *)

val enabled : unit -> bool

val with_span : ?attrs:(string * Jsonx.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. The span closes when
    [f] returns or raises (an ["error"] attribute records the
    exception). No-op wrapper when tracing is disabled. *)

val add_attr : string -> Jsonx.t -> unit
(** Attach an attribute to the innermost open span, if any. *)

val event : ?attrs:(string * Jsonx.t) list -> string -> unit
(** Emit a point event inside the current span. *)

val flush : unit -> unit
