(* Nanosecond timestamps for spans and latency histograms. The source
   is replaceable so tests can drive time deterministically; the
   default derives from the wall clock but is clamped to be
   non-decreasing, which is the property span arithmetic relies on. *)

let wall_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let source = ref wall_ns
let last = ref 0L

let now_ns () =
  let t = !source () in
  if Int64.compare t !last > 0 then last := t;
  !last

let set_source f =
  source := f;
  last := 0L

let use_wall_clock () = set_source wall_ns
