type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* NaN has no JSON encoding *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    let s = Printf.sprintf "%.17g" f in
    (* keep a mark of floatness: %.17g may print large integral values
       bare ("1e15" -> "1000000000000000"), which would re-parse as Int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing: a recursive-descent reader sufficient for round-tripping
   the sink output and validating trace files --- *)

exception Parse_error of string

(* Recursion guard: the parser descends once per nesting level, so
   adversarially deep input ([[[[...]]]]) would otherwise exhaust the
   stack. 512 levels is far beyond anything the telemetry layer
   emits. *)
let max_depth = 512

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char buf c.src.[c.pos];
            advance c;
            loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> error c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* encode as UTF-8; surrogate pairs are not needed for our
               own output, which only escapes control characters *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c "bad number")

let rec parse_value depth c =
  if depth > max_depth then error c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [ parse_value (depth + 1) c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value (depth + 1) c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value (depth + 1) c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value 0 c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* --- accessors used by tests and report folding --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None
let to_float_opt = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
