(** Monotonic nanosecond clock for the tracer and latency metrics. *)

val now_ns : unit -> int64
(** Current timestamp. Guaranteed non-decreasing across calls even if
    the underlying source steps backwards. *)

val set_source : (unit -> int64) -> unit
(** Replace the time source (tests install a deterministic counter).
    Resets the monotonicity clamp. *)

val use_wall_clock : unit -> unit
(** Restore the default wall-clock-derived source. *)
