(* Flight recorder: a bounded in-memory ring of the most recent trace
   records. Kept alongside (or instead of) a file sink so that a run
   which crashes, is killed, or exhausts its query budget still leaves
   its last moments on disk — the dump is re-stamped with a flight
   meta header and written atomically, so a partially-written
   flight.jsonl is never observed. *)

type t = {
  cap : int;
  buf : Jsonx.t array; (* Jsonx.Null marks an empty slot *)
  mutable next : int; (* next write position *)
  mutable len : int; (* live records, <= cap *)
  mutable dropped : int; (* records evicted since creation *)
}

let default_capacity = 512

let create ?(capacity = default_capacity) () =
  let cap = max 1 capacity in
  { cap; buf = Array.make cap Jsonx.Null; next = 0; len = 0; dropped = 0 }

let capacity t = t.cap
let dropped t = t.dropped

let is_meta j =
  match Jsonx.member "type" j with
  | Some (Jsonx.String "meta") -> true
  | _ -> false

let push t j =
  (* stream meta headers are re-stamped on dump, not buffered *)
  if not (is_meta j) then begin
    if t.len = t.cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
    t.buf.(t.next) <- j;
    t.next <- (t.next + 1) mod t.cap
  end

let records t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    (* oldest record sits [len] slots behind the write position *)
    let idx = (t.next - t.len + i + (2 * t.cap)) mod t.cap in
    out := t.buf.(idx) :: !out
  done;
  !out

let sink t = Trace.Sink.make (push t)

let meta t =
  match Trace.meta_record () with
  | Jsonx.Obj fields ->
      Jsonx.Obj
        (fields
        @ [
            ("flight", Jsonx.Bool true);
            ("capacity", Jsonx.Int t.cap);
            ("dropped", Jsonx.Int t.dropped);
          ])
  | j -> j

let dump t ~path =
  let lines = List.map Jsonx.to_string (meta t :: records t) in
  Atomic_file.write_lines ~path lines

(* Dumping must never raise out of an at_exit or signal context. *)
let dump_quiet t ~path = try dump t ~path with _ -> ()

let install_flight ~path t =
  at_exit (fun () -> dump_quiet t ~path);
  (* Fatal signals bypass at_exit unless converted into an exit: the
     handler calls [Stdlib.exit] (with the conventional 128+signum
     code), which runs the dump registered above. *)
  let handle code = Sys.Signal_handle (fun _ -> Stdlib.exit code) in
  (try Sys.set_signal Sys.sigterm (handle 143) with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint (handle 130) with Invalid_argument _ -> ()
