(* Process-wide metrics registry. Counters and gauges are bare refs so
   hot paths pay one memory write; histograms use fixed log-scale
   buckets (5 per decade) so latency quantiles need no sample storage
   and no external dependency. *)

let buckets_per_decade = 5

(* bucket 0 covers (0, 1]; bucket i (i >= 1) covers
   (10^((i-1)/5), 10^(i/5)]. 76 buckets reach 10^15 ns ~ 11.5 days,
   beyond which observations clamp into the last bucket. *)
let nbuckets = 76

type histogram = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let fresh_histogram () =
  {
    counts = Array.make nbuckets 0;
    count = 0;
    sum = 0.0;
    minv = infinity;
    maxv = neg_infinity;
  }

let bucket_index v =
  if v <= 1.0 then 0
  else
    let i =
      int_of_float (Float.ceil (float_of_int buckets_per_decade *. Float.log10 v))
    in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

let bucket_upper i = 10.0 ** (float_of_int i /. float_of_int buckets_per_decade)

let observe h v =
  let i = bucket_index v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v

let observe_ns h ns = observe h (Int64.to_float ns)

(* Quantile estimate: the upper bound of the first bucket whose
   cumulative count reaches rank(q). Overestimates by at most one
   bucket width (a factor of 10^(1/5) ~ 1.58). *)
let quantile h q =
  if h.count = 0 then nan
  else if q <= 0.0 then h.minv
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < nbuckets do
      cum := !cum + h.counts.(!i);
      incr i
    done;
    (* the loop leaves [i] one past the bucket that reached the rank *)
    let upper = bucket_upper (if !i > 0 then !i - 1 else 0) in
    (* never report beyond the observed extrema *)
    if upper > h.maxv then h.maxv else upper
  end

let mean h = if h.count = 0 then nan else h.sum /. float_of_int h.count

type metric = Counter of int ref | Gauge of float ref | Hist of histogram

(* The registry table is guarded by a mutex: get-or-create and the
   whole-table walks (reset, snapshot) may now run from the fleet
   scheduler's worker domains, and an unsynchronized Hashtbl resize
   under a concurrent probe is memory-unsafe. Only registration locks —
   updates through the returned refs stay bare writes, so concurrent
   sessions may lose increments to each other; the deterministic
   counters CI gates on live in per-run oracle stats, not here. *)
type t = { tbl : (string, metric) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 32; lock = Mutex.create () }
let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " registered with another kind")

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter r) -> r
      | Some _ -> kind_error name
      | None ->
          let r = ref 0 in
          Hashtbl.add t.tbl name (Counter r);
          r)

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Gauge r) -> r
      | Some _ -> kind_error name
      | None ->
          let r = ref 0.0 in
          Hashtbl.add t.tbl name (Gauge r);
          r)

let histogram t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Hist h) -> h
      | Some _ -> kind_error name
      | None ->
          let h = fresh_histogram () in
          Hashtbl.add t.tbl name (Hist h);
          h)

(* Labelled variants: the label set is folded into the registry key
   ([name{k="v",...}], keys sorted) at handle-creation time, so after
   creation a labelled metric is indistinguishable from a plain one —
   one memory write on the hot path. Exporters that need the structure
   back use [Labels.split]. *)

let counter_l t name labels = counter t (Labels.encode name labels)
let gauge_l t name labels = gauge t (Labels.encode name labels)
let histogram_l t name labels = histogram t (Labels.encode name labels)

let inc ?(by = 1) r = r := !r + by
let set g v = g := v

(* Zero every metric in place: refs handed out earlier stay valid, so
   instrumentation sites can cache them across runs. *)
let reset t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter r -> r := 0
          | Gauge r -> r := 0.0
          | Hist h ->
              Array.fill h.counts 0 nbuckets 0;
              h.count <- 0;
              h.sum <- 0.0;
              h.minv <- infinity;
              h.maxv <- neg_infinity)
        t.tbl)

(* Structural snapshot for exporters (the OpenMetrics renderer): every
   metric under its registry name (labels still encoded), histograms
   with their non-empty buckets. *)

type hist_view = {
  v_count : int;
  v_sum : float;
  v_buckets : (float * int) list; (* (upper bound, count), non-empty only *)
}

type view = V_counter of int | V_gauge of float | V_hist of hist_view

let snapshot t =
  locked t @@ fun () ->
  Hashtbl.fold
    (fun name m acc ->
      let view =
        match m with
        | Counter r -> V_counter !r
        | Gauge r -> V_gauge !r
        | Hist h ->
            let buckets = ref [] in
            for i = nbuckets - 1 downto 0 do
              if h.counts.(i) > 0 then
                buckets := (bucket_upper i, h.counts.(i)) :: !buckets
            done;
            V_hist { v_count = h.count; v_sum = h.sum; v_buckets = !buckets }
      in
      (name, view) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram_json h =
  Jsonx.Obj
    [
      ("count", Jsonx.Int h.count);
      ("sum", Jsonx.Float h.sum);
      ("min", if h.count = 0 then Jsonx.Null else Jsonx.Float h.minv);
      ("max", if h.count = 0 then Jsonx.Null else Jsonx.Float h.maxv);
      ("mean", if h.count = 0 then Jsonx.Null else Jsonx.Float (mean h));
      ("p50", if h.count = 0 then Jsonx.Null else Jsonx.Float (quantile h 0.5));
      ("p90", if h.count = 0 then Jsonx.Null else Jsonx.Float (quantile h 0.9));
      ("p99", if h.count = 0 then Jsonx.Null else Jsonx.Float (quantile h 0.99));
    ]

let to_json t =
  let sorted kind =
    locked t (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            match kind name m with Some j -> (name, j) :: acc | None -> acc)
          t.tbl [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let counters =
    sorted (fun _ m -> match m with Counter r -> Some (Jsonx.Int !r) | _ -> None)
  in
  let gauges =
    sorted (fun _ m -> match m with Gauge r -> Some (Jsonx.Float !r) | _ -> None)
  in
  let histograms =
    sorted (fun _ m -> match m with Hist h -> Some (histogram_json h) | _ -> None)
  in
  Jsonx.Obj
    [
      ("counters", Jsonx.Obj counters);
      ("gauges", Jsonx.Obj gauges);
      ("histograms", Jsonx.Obj histograms);
    ]

let to_json_string t = Jsonx.to_string (to_json t)

let write_file t path = Atomic_file.write ~path (to_json_string t ^ "\n")
