(* Reconstruct and analyze the span tree from a trace stream.

   The sink writes span records when they close, so children precede
   parents on disk; ids are allocated in creation order and each
   record names its parent. Two passes rebuild the tree: collect every
   node by id, then link children (a record whose parent never
   appears, e.g. because the run died before the parent closed,
   becomes a root). *)

type kind = Span | Event

type node = {
  id : int;
  name : string;
  kind : kind;
  start_ns : int; (* events: their t_ns *)
  dur_ns : int; (* events: 0 *)
  attrs : (string * Jsonx.t) list;
  mutable children : node list;
}

let int_field k j = Option.bind (Jsonx.member k j) Jsonx.to_int_opt

let attrs_of j =
  match Jsonx.member "attrs" j with Some (Jsonx.Obj fields) -> fields | _ -> []

let node_of_record j =
  let open Jsonx in
  match (member "type" j, member "name" j, member "id" j) with
  | Some (String "span"), Some (String name), Some (Int id) ->
      let start_ns = Option.value ~default:0 (int_field "start_ns" j) in
      let dur_ns = Option.value ~default:0 (int_field "dur_ns" j) in
      Some
        ( { id; name; kind = Span; start_ns; dur_ns; attrs = attrs_of j; children = [] },
          int_field "parent" j )
  | Some (String "event"), Some (String name), Some (Int id) ->
      let t_ns = Option.value ~default:0 (int_field "t_ns" j) in
      Some
        ( {
            id;
            name;
            kind = Event;
            start_ns = t_ns;
            dur_ns = 0;
            attrs = attrs_of j;
            children = [];
          },
          int_field "parent" j )
  | _ -> None (* meta records, malformed lines *)

let of_records records =
  let nodes = Hashtbl.create 64 in
  let parsed =
    List.filter_map
      (fun j ->
        match node_of_record j with
        | Some (n, parent) ->
            Hashtbl.replace nodes n.id n;
            Some (n, parent)
        | None -> None)
      records
  in
  let roots = ref [] in
  List.iter
    (fun (n, parent) ->
      match parent with
      | Some p when Hashtbl.mem nodes p ->
          let pn = Hashtbl.find nodes p in
          pn.children <- n :: pn.children
      | _ -> roots := n :: !roots)
    parsed;
  let by_id = List.sort (fun a b -> compare a.id b.id) in
  Hashtbl.iter (fun _ n -> n.children <- by_id n.children) nodes;
  by_id !roots

let rec iter f n =
  f n;
  List.iter (iter f) n.children

let spans roots =
  let out = ref [] in
  List.iter (iter (fun n -> if n.kind = Span then out := n :: !out)) roots;
  List.rev !out

(* Critical path: from a root, repeatedly descend into the
   longest-duration child span — the chain the run's wall clock
   actually followed. *)
let critical_path root =
  let rec go n acc =
    match List.filter (fun c -> c.kind = Span) n.children with
    | [] -> List.rev (n :: acc)
    | c :: cs ->
        let widest =
          List.fold_left (fun a c -> if c.dur_ns > a.dur_ns then c else a) c cs
        in
        go widest (n :: acc)
  in
  go root []

let top_slowest ?name ~k roots =
  spans roots
  |> List.filter (fun n -> match name with None -> true | Some s -> n.name = s)
  |> List.sort (fun a b -> compare b.dur_ns a.dur_ns)
  |> List.filteri (fun i _ -> i < k)

(* Phase attribution: a span may carry a ("phase", String p)
   attribute (learning rounds, eq-oracle queries, checkpoint saves).
   Each phased span contributes its *exclusive* time — duration minus
   the time covered by phased descendants — so nesting never double
   counts. *)

let phase_of n =
  match List.assoc_opt "phase" n.attrs with
  | Some (Jsonx.String p) -> Some p
  | _ -> None

let rec covered n =
  if phase_of n <> None then n.dur_ns
  else List.fold_left (fun acc c -> acc + covered c) 0 n.children

let phase_breakdown roots =
  let tbl = Hashtbl.create 8 in
  List.iter
    (iter (fun n ->
         match phase_of n with
         | Some p ->
             let inner =
               List.fold_left (fun acc c -> acc + covered c) 0 n.children
             in
             let prev = Option.value ~default:0 (Hashtbl.find_opt tbl p) in
             Hashtbl.replace tbl p (prev + max 0 (n.dur_ns - inner))
         | None -> ()))
    roots;
  Hashtbl.fold (fun p ns acc -> (p, ns) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* --- aggregated rendering --- *)

(* Sibling nodes sharing a name collapse into one line with a count
   and a summed duration, so a 40-round learn renders as one
   [learner.round] line, not forty. *)
type agg = {
  a_name : string;
  a_kind : kind;
  a_count : int;
  a_total_ns : int;
  a_children : agg list;
}

let rec aggregate nodes =
  let order = ref [] in
  let groups : (string * kind, (int * int) ref * node list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun n ->
      let key = (n.name, n.kind) in
      let stats, kids =
        match Hashtbl.find_opt groups key with
        | Some g -> g
        | None ->
            let g = (ref (0, 0), ref []) in
            Hashtbl.add groups key g;
            order := key :: !order;
            g
      in
      let count, total = !stats in
      stats := (count + 1, total + n.dur_ns);
      kids := List.rev_append n.children !kids)
    nodes;
  List.rev_map
    (fun key ->
      let stats, kids = Hashtbl.find groups key in
      let count, total = !stats in
      let name, kind = key in
      {
        a_name = name;
        a_kind = kind;
        a_count = count;
        a_total_ns = total;
        a_children = aggregate (List.rev !kids);
      })
    !order

let pp_ns ns =
  let f = float_of_int ns in
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.1fms" (f /. 1e6)
  else Printf.sprintf "%.3fs" (f /. 1e9)

let render_tree ?(max_depth = max_int) roots =
  let buf = Buffer.create 512 in
  let rec go depth a =
    if depth <= max_depth then begin
      Buffer.add_string buf (String.make (2 * depth) ' ');
      (match a.a_kind with
      | Span ->
          Buffer.add_string buf
            (Printf.sprintf "%s  x%d  %s\n" a.a_name a.a_count
               (pp_ns a.a_total_ns))
      | Event ->
          Buffer.add_string buf
            (Printf.sprintf "%s  x%d  (event)\n" a.a_name a.a_count));
      List.iter (go (depth + 1)) a.a_children
    end
  in
  List.iter (go 0) (aggregate roots);
  Buffer.contents buf
