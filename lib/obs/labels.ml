(* Metric labels: ordered key/value dimensions attached to a metric
   name. The registry stores labelled metrics under an *encoded* name
   — [name{k="v",k2="v2"}] with keys sorted and values escaped — so
   the hot-path cost of a labelled metric is identical to a plain one
   (the encoding happens once, at handle-creation time). [split]
   recovers the base name and label set for exporters that need them
   structurally (the OpenMetrics renderer). *)

type t = (string * string) list

let canonical labels =
  List.stable_sort (fun (a, _) (b, _) -> compare a b) labels

(* Prometheus exposition-format escaping for label values: backslash,
   double quote and newline. *)
let escape_value buf v =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v

let encode name labels =
  match canonical labels with
  | [] -> name
  | labels ->
      let buf = Buffer.create (String.length name + 16) in
      Buffer.add_string buf name;
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          escape_value buf v;
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}';
      Buffer.contents buf

exception Malformed of string

let fail s = raise (Malformed s)

(* Parse the [k="v",...] body of an encoded name. *)
let parse_body s =
  let n = String.length s in
  let pos = ref 0 in
  let labels = ref [] in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let key () =
    let start = !pos in
    while (match peek () with Some ('=' | ',' | '}') | None -> false | _ -> true) do
      incr pos
    done;
    String.sub s start (!pos - start)
  in
  let value () =
    if peek () <> Some '"' then fail "expected opening quote";
    incr pos;
    let buf = Buffer.create 8 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated label value"
      | Some '"' -> incr pos
      | Some '\\' -> (
          incr pos;
          match peek () with
          | Some '\\' -> incr pos; Buffer.add_char buf '\\'; loop ()
          | Some '"' -> incr pos; Buffer.add_char buf '"'; loop ()
          | Some 'n' -> incr pos; Buffer.add_char buf '\n'; loop ()
          | _ -> fail "bad escape in label value")
      | Some c ->
          incr pos;
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let rec fields () =
    let k = key () in
    if k = "" then fail "empty label key";
    if peek () <> Some '=' then fail "expected '='";
    incr pos;
    let v = value () in
    labels := (k, v) :: !labels;
    match peek () with
    | Some ',' ->
        incr pos;
        fields ()
    | None -> ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  if n > 0 then fields ();
  List.rev !labels

let split encoded =
  match String.index_opt encoded '{' with
  | None -> (encoded, [])
  | Some i ->
      let n = String.length encoded in
      if encoded.[n - 1] <> '}' then fail "missing closing brace";
      let name = String.sub encoded 0 i in
      let body = String.sub encoded (i + 1) (n - i - 2) in
      (name, parse_body body)
