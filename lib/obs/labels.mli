(** Metric labels: key/value dimensions ([worker="3"], [study="tcp"])
    attached to a metric name.

    The registry keeps labelled metrics under an encoded name —
    [name{k="v",...}] with keys sorted and values escaped in the
    Prometheus exposition style — so a labelled handle costs exactly
    as much as a plain one after creation. Exporters that need the
    structure back (OpenMetrics) recover it with {!split}. *)

type t = (string * string) list

val canonical : t -> t
(** Stable-sort by key. *)

val escape_value : Buffer.t -> string -> unit
(** Append a label value with backslash, double quote and newline
    escaped (Prometheus exposition style). *)

val encode : string -> t -> string
(** [encode name labels] is [name] when [labels] is empty, otherwise
    [name{k="v",...}] with keys sorted and values escaped (backslash,
    double quote and newline, Prometheus-style). *)

exception Malformed of string

val split : string -> string * t
(** Inverse of {!encode}: recover base name and labels from an encoded
    name. Names without [{] split to [(name, [])]. Raises {!Malformed}
    on an unparseable label block. *)
