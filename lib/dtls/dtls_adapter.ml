module Rng = Prognosis_sul.Rng
module Network = Prognosis_sul.Network
module Adapter = Prognosis_sul.Adapter

type concrete = Dtls_wire.record_

let create ?server_config ?(network = Network.reliable) ~seed () =
  let rng = Rng.create seed in
  let server = Dtls_server.create ?config:server_config (Rng.split rng) in
  let client = Dtls_client.create (Rng.split rng) in
  let channel = Network.create ~config:network ~seed (Rng.split rng) in
  let reset () =
    Dtls_server.reset server;
    Dtls_client.reset client
  in
  let step symbol =
    match Dtls_client.concretize client symbol with
    | None -> ([], [], [])
    | Some (wire, request) ->
        (* DTLS rides in UDP in IPv4, like QUIC. *)
        let client_ip = 0x0A000001 and server_ip = 0x0A000002 in
        let deliveries =
          Network.transmit channel
            (Prognosis_sul.Inet.wrap_udp ~src:client_ip ~dst:server_ip
               ~src_port:50000 ~dst_port:4433 wire)
        in
        let responses =
          List.concat_map
            (fun datagram ->
              match Prognosis_sul.Inet.unwrap_udp datagram with
              | Ok (_, payload) -> Dtls_server.handle_datagram server payload
              | Error _ -> [])
            deliveries
        in
        let received =
          List.concat_map
            (fun payload ->
              Network.transmit channel
                (Prognosis_sul.Inet.wrap_udp ~src:server_ip ~dst:client_ip
                   ~src_port:4433 ~dst_port:50000 payload))
            responses
          |> List.filter_map (fun datagram ->
                 match Prognosis_sul.Inet.unwrap_udp datagram with
                 | Ok (_, payload) -> Dtls_client.absorb client payload
                 | Error _ -> None)
        in
        let output = List.filter_map Dtls_alphabet.abstract received in
        (output, [ request ], received)
  in
  (Adapter.create ~description:"dtls" ~reset ~step (), client)

let sul ?server_config ?network ~seed () =
  Adapter.to_sul (fst (create ?server_config ?network ~seed ()))
