(** Pure batch planner for the query-execution engine.

    Given the words of one batch (already filtered to cache misses by
    the caching layer above the engine), the planner decides which
    words actually need a live SUL run: duplicates collapse, and a word
    that is a prefix of another planned word is answered for free from
    the longer run's per-step outputs. The surviving {e maximal} words
    are ordered to maximize prefix sharing across resets
    (lexicographically, so words sharing a prefix are adjacent and a
    worker can resume instead of restarting). *)

type 'i t = {
  runs : 'i list list;
      (** maximal distinct words, in execution order; executing exactly
          these and caching their per-step outputs answers every word
          of the batch *)
  words : int;  (** words submitted *)
  dupes : int;  (** duplicate occurrences collapsed *)
  subsumed : int;  (** distinct words answered as prefixes of a run *)
  baseline_resets : int;
  baseline_steps : int;
      (** what a sequential cached oracle would have spent executing
          the same batch in arrival order — a plan-level diagnostic;
          the engine's own [saved_*] figures are reported against the
          no-reuse sequential oracle instead *)
}

val build : 'i list list -> 'i t

val is_prefix : 'i list -> 'i list -> bool
(** [is_prefix p w] — is [p] a (non-strict) prefix of [w]? *)
