let rec is_prefix p w =
  match (p, w) with
  | [], _ -> true
  | x :: p', y :: w' -> x = y && is_prefix p' w'
  | _ :: _, [] -> false

type 'i t = {
  runs : 'i list list;
  words : int;
  dupes : int;
  subsumed : int;
  baseline_resets : int;
  baseline_steps : int;
}

(* Polymorphic [compare] on lists is lexicographic, so after sorting a
   word is a strict prefix of some other planned word iff it is a
   prefix of its immediate successor: any word sorting between a
   prefix and its extension must itself share that prefix. *)
let build words_list =
  let words = List.length words_list in
  let sorted = List.sort compare words_list in
  let rec uniq = function
    | [] -> []
    | [ w ] -> [ w ]
    | w :: (w' :: _ as rest) -> if w = w' then uniq rest else w :: uniq rest
  in
  let distinct = uniq sorted in
  let rec maximal = function
    | [] -> []
    | [ w ] -> [ w ]
    | w :: (w' :: _ as rest) ->
        if is_prefix w w' then maximal rest else w :: maximal rest
  in
  let runs = maximal distinct in
  let dupes = words - List.length distinct in
  let subsumed = List.length distinct - List.length runs in
  (* What a sequential cached oracle would have spent on this batch:
     taking the words in arrival order, a word costs nothing once it is
     a prefix of an already-executed word, else one reset plus one step
     per symbol. *)
  let baseline_resets = ref 0 and baseline_steps = ref 0 in
  let executed = ref [] in
  List.iter
    (fun w ->
      if not (List.exists (fun u -> is_prefix w u) !executed) then begin
        incr baseline_resets;
        baseline_steps := !baseline_steps + List.length w;
        executed := w :: !executed
      end)
    words_list;
  {
    runs;
    words;
    dupes;
    subsumed;
    baseline_resets = !baseline_resets;
    baseline_steps = !baseline_steps;
  }
