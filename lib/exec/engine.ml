module Sul = Prognosis_sul.Sul
module Nondet = Prognosis_sul.Nondet
module Cache = Prognosis_learner.Cache
module Oracle = Prognosis_learner.Oracle
module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace
module Jsonx = Prognosis_obs.Jsonx

type config = {
  workers : int;
  batch : bool;
  parallel : bool;
  replicas : int;
  max_strikes : int;
  cooldown : int;
}

let default =
  {
    workers = 1;
    batch = true;
    parallel = false;
    replicas = 1;
    max_strikes = 2;
    cooldown = 256;
  }

type ('i, 'o) worker = {
  id : int;
  sul : ('i, 'o) Sul.t;
  mutable position : 'i list option;
      (* word replayed since the last reset; [None] = state unknown,
         the next run must reset. Invariant: a set position is always a
         cache-inserted word, so its per-step outputs are recoverable. *)
  mutable runs_done : int;
  mutable resets_done : int;
  mutable steps_done : int;
  mutable strikes : int;
  mutable quarantined_until : int; (* engine run-clock value *)
}

type stats = {
  mutable batches : int;
  mutable planned_words : int;
  mutable dedup_hits : int;
  mutable prefix_answers : int;
  mutable runs : int;
  mutable resumed : int;
  mutable resets : int;
  mutable steps : int;
  mutable baseline_resets : int;
  mutable baseline_steps : int;
  mutable disagreements : int;
  mutable vote_runs : int;
  mutable quarantines : int;
}

let fresh_stats () =
  {
    batches = 0;
    planned_words = 0;
    dedup_hits = 0;
    prefix_answers = 0;
    runs = 0;
    resumed = 0;
    resets = 0;
    steps = 0;
    baseline_resets = 0;
    baseline_steps = 0;
    disagreements = 0;
    vote_runs = 0;
    quarantines = 0;
  }

type ('i, 'o) t = {
  config : config;
  workers : ('i, 'o) worker array;
  cache : ('i, 'o) Cache.t;
  stats : stats;
  oracle_stats : Oracle.stats;
  mutable clock : int; (* total runs executed, for quarantine cooldowns *)
  mutable rr : int; (* round-robin cursor for replica selection *)
  labels : (string * string) list;
      (* extra labels (e.g. session=..) prefixed to every per-worker
         labelled metric, so concurrent engines don't share series *)
  (* per-worker labelled gauges (exec.worker.*{worker="i"}), obtained
     once at pool creation and written on the main domain in [flush] *)
  worker_gauges : (float ref * float ref * float ref) array;
}

let m_batches = Metrics.counter Metrics.default "exec.batches"
let h_batch_words = Metrics.histogram Metrics.default "exec.batch_words"
let m_planned = Metrics.counter Metrics.default "exec.planned_words"
let m_dedup = Metrics.counter Metrics.default "exec.dedup_hits"
let m_prefix_answers = Metrics.counter Metrics.default "exec.prefix_answers"
let m_runs = Metrics.counter Metrics.default "exec.runs"
let m_resumed = Metrics.counter Metrics.default "exec.resumed_runs"
let m_resets = Metrics.counter Metrics.default "exec.resets"
let m_steps = Metrics.counter Metrics.default "exec.steps"
let g_saved_resets = Metrics.gauge Metrics.default "exec.saved_resets"
let g_saved_steps = Metrics.gauge Metrics.default "exec.saved_steps"
let m_disagreements = Metrics.counter Metrics.default "exec.disagreements"
let m_vote_runs = Metrics.counter Metrics.default "exec.vote_runs"
let m_quarantines = Metrics.counter Metrics.default "exec.quarantines"
let g_workers = Metrics.gauge Metrics.default "exec.workers"
let g_utilization = Metrics.gauge Metrics.default "exec.worker_utilization"

let worker_label labels id = labels @ [ ("worker", string_of_int id) ]

let worker_strikes labels id =
  Metrics.counter_l Metrics.default "exec.worker.strikes"
    (worker_label labels id)

let worker_quarantines labels id =
  Metrics.counter_l Metrics.default "exec.worker.quarantines"
    (worker_label labels id)

let create ?(config = default) ?(labels = []) ?cache ~factory () =
  if config.workers < 1 then invalid_arg "Engine.create: workers must be >= 1";
  if config.replicas < 1 then
    invalid_arg "Engine.create: replicas must be >= 1";
  if config.replicas > config.workers then
    invalid_arg "Engine.create: replicas cannot exceed workers";
  let workers =
    Array.init config.workers (fun id ->
        {
          id;
          sul = factory id;
          position = None;
          runs_done = 0;
          resets_done = 0;
          steps_done = 0;
          strikes = 0;
          quarantined_until = 0;
        })
  in
  Metrics.set g_workers (float_of_int config.workers);
  let worker_gauges =
    Array.init config.workers (fun id ->
        ( Metrics.gauge_l Metrics.default "exec.worker.runs"
            (worker_label labels id),
          Metrics.gauge_l Metrics.default "exec.worker.resets"
            (worker_label labels id),
          Metrics.gauge_l Metrics.default "exec.worker.steps"
            (worker_label labels id) ))
  in
  {
    config;
    workers;
    cache = (match cache with Some c -> c | None -> Cache.create ());
    stats = fresh_stats ();
    oracle_stats = Oracle.fresh_stats ();
    clock = 0;
    rr = 0;
    labels;
    worker_gauges;
  }

(* --- checkpointable pool state ---

   What survives a crash is the robustness bookkeeping: which workers
   were striking out or quarantined, and where the run/cooldown clock
   stood. Worker resume positions are deliberately dropped — a thawed
   pool's SUL instances start from reset, so a remembered position
   would be a lie. The blob is opaque to callers ({!Checkpoint} stores
   it verbatim). *)

type frozen = {
  f_workers : int;
  f_state : (int * int * int) array; (* runs_done, strikes, quarantined_until *)
  f_clock : int;
  f_rr : int;
}

let freeze t =
  Marshal.to_string
    {
      f_workers = t.config.workers;
      f_state =
        Array.map (fun w -> (w.runs_done, w.strikes, w.quarantined_until)) t.workers;
      f_clock = t.clock;
      f_rr = t.rr;
    }
    []

let thaw t blob =
  match (Marshal.from_string blob 0 : frozen) with
  | exception _ -> invalid_arg "Engine.thaw: unreadable state blob"
  | f ->
      if f.f_workers <> t.config.workers then
        invalid_arg
          (Printf.sprintf
             "Engine.thaw: pool size changed (checkpointed %d workers, pool \
              has %d)"
             f.f_workers t.config.workers);
      Array.iteri
        (fun i w ->
          let runs_done, strikes, quarantined_until = f.f_state.(i) in
          w.runs_done <- runs_done;
          w.strikes <- strikes;
          w.quarantined_until <- quarantined_until;
          w.position <- None)
        t.workers;
      t.clock <- f.f_clock;
      t.rr <- f.f_rr

let active_workers t =
  let l = Array.to_list t.workers in
  match List.filter (fun w -> w.quarantined_until <= t.clock) l with
  | [] -> l (* unreachable: quarantine never empties the pool *)
  | a -> a

let rec drop n l =
  if n = 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r

(* Per-slice accounting, merged into the shared stats on the main
   domain: parallel slices never touch [t.stats] or the metrics
   registry themselves. *)
type acct = {
  mutable a_runs : int;
  mutable a_resumed : int;
  mutable a_resets : int;
  mutable a_steps : int;
}

let fresh_acct () = { a_runs = 0; a_resumed = 0; a_resets = 0; a_steps = 0 }

let step_word acct worker word =
  List.map
    (fun x ->
      acct.a_steps <- acct.a_steps + 1;
      worker.steps_done <- worker.steps_done + 1;
      worker.sul.Sul.step x)
    word

(* Execute [word] on [worker]. With [resume] on, a worker standing at
   the end of a cached strict prefix of [word] skips the reset and
   steps only the suffix — the prefix outputs are replayed from the
   cache. Votes run with [resume] off so replicated answers stay
   independent of cached material. *)
let run_word ~resume cache acct worker word =
  acct.a_runs <- acct.a_runs + 1;
  worker.runs_done <- worker.runs_done + 1;
  let full () =
    worker.position <- None;
    worker.sul.Sul.reset ();
    acct.a_resets <- acct.a_resets + 1;
    worker.resets_done <- worker.resets_done + 1;
    let outs = step_word acct worker word in
    worker.position <- Some word;
    outs
  in
  match worker.position with
  | Some pos
    when resume && pos <> []
         && List.length pos < List.length word
         && Plan.is_prefix pos word -> (
      match Cache.lookup cache pos with
      | Some pos_outs ->
          acct.a_resumed <- acct.a_resumed + 1;
          worker.position <- None;
          let souts = step_word acct worker (drop (List.length pos) word) in
          worker.position <- Some word;
          pos_outs @ souts
      | None -> full ())
  | _ -> full ()

let flush t acct =
  let s = t.stats in
  s.runs <- s.runs + acct.a_runs;
  s.resumed <- s.resumed + acct.a_resumed;
  s.resets <- s.resets + acct.a_resets;
  s.steps <- s.steps + acct.a_steps;
  t.clock <- t.clock + acct.a_runs;
  if acct.a_runs > 0 then Metrics.inc ~by:acct.a_runs m_runs;
  if acct.a_resumed > 0 then Metrics.inc ~by:acct.a_resumed m_resumed;
  if acct.a_resets > 0 then Metrics.inc ~by:acct.a_resets m_resets;
  if acct.a_steps > 0 then Metrics.inc ~by:acct.a_steps m_steps;
  let mx = Array.fold_left (fun m w -> max m w.runs_done) 0 t.workers in
  let mn =
    Array.fold_left (fun m w -> min m w.runs_done) max_int t.workers
  in
  if mx > 0 then Metrics.set g_utilization (float_of_int mn /. float_of_int mx);
  Array.iteri
    (fun i w ->
      let g_runs, g_resets, g_steps = t.worker_gauges.(i) in
      Metrics.set g_runs (float_of_int w.runs_done);
      Metrics.set g_resets (float_of_int w.resets_done);
      Metrics.set g_steps (float_of_int w.steps_done))
    t.workers

(* The engine's savings are reported against the no-reuse sequential
   oracle: every query the learner (or equivalence suite) asks costs
   one reset plus one step per symbol when executed directly. The
   boundary where that cost is counted is [membership] — before the
   cache, so hits, prefix answers, batch dedup and resume all show up
   as savings. *)
let count_baseline t word =
  let s = t.stats in
  s.baseline_resets <- s.baseline_resets + 1;
  s.baseline_steps <- s.baseline_steps + List.length word

let sync_saved t =
  let s = t.stats in
  Metrics.set g_saved_resets (float_of_int (s.baseline_resets - s.resets));
  Metrics.set g_saved_steps (float_of_int (s.baseline_steps - s.steps))

(* Longest usable resume position wins; ties go to the least-used
   worker so utilization stays balanced. *)
let pick_worker t word =
  let score w =
    match w.position with
    | Some p
      when p <> []
           && List.length p < List.length word
           && Plan.is_prefix p word
           && Cache.lookup t.cache p <> None ->
        List.length p
    | _ -> -1
  in
  match active_workers t with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun best w ->
          let sw = score w and sb = score best in
          if sw > sb || (sw = sb && w.runs_done < best.runs_done) then w
          else best)
        first rest

let pick_replicas t n =
  let a = Array.of_list (active_workers t) in
  let k = Array.length a in
  let n = min n k in
  let start = t.rr in
  t.rr <- t.rr + 1;
  List.init n (fun i -> a.((start + i) mod k))

let tally answers =
  let rec add obs a =
    match obs with
    | [] -> [ { Nondet.answer = a; count = 1 } ]
    | o :: rest ->
        if o.Nondet.answer = a then { o with Nondet.count = o.count + 1 } :: rest
        else o :: add rest a
  in
  List.sort
    (fun a b -> compare b.Nondet.count a.Nondet.count)
    (List.fold_left add [] (List.map snd answers))

let strike t worker =
  worker.strikes <- worker.strikes + 1;
  Metrics.inc (worker_strikes t.labels worker.id);
  if
    worker.strikes >= t.config.max_strikes
    && List.length (active_workers t) > 1
  then begin
    worker.quarantined_until <- t.clock + t.config.cooldown;
    worker.strikes <- 0;
    worker.position <- None;
    t.stats.quarantines <- t.stats.quarantines + 1;
    Metrics.inc m_quarantines;
    Metrics.inc (worker_quarantines t.labels worker.id);
    if Trace.enabled () then
      Trace.event
        ~attrs:
          [
            ("worker", Jsonx.Int worker.id);
            ("until_run", Jsonx.Int worker.quarantined_until);
          ]
        "exec.quarantine"
  end

(* Replicated execution: the word runs in full on [replicas] distinct
   workers; agreement returns immediately, disagreement escalates to
   every active worker and takes the strict-majority answer, striking
   the outvoted workers (quarantine after [max_strikes], re-admitted
   after [cooldown] runs). No majority means the pool as a whole
   answers nondeterministically — exactly the situation the paper's §5
   check reports. *)
let vote t acct word =
  let chosen = pick_replicas t t.config.replicas in
  let answers =
    List.map (fun w -> (w, run_word ~resume:false t.cache acct w word)) chosen
  in
  t.stats.vote_runs <- t.stats.vote_runs + List.length answers - 1;
  if List.length answers > 1 then
    Metrics.inc ~by:(List.length answers - 1) m_vote_runs;
  match tally answers with
  | [ only ] -> only.Nondet.answer
  | _ ->
      t.stats.disagreements <- t.stats.disagreements + 1;
      Metrics.inc m_disagreements;
      if Trace.enabled () then
        Trace.event
          ~attrs:[ ("word_len", Jsonx.Int (List.length word)) ]
          "exec.disagreement";
      let chosen_ids = List.map (fun (w, _) -> w.id) answers in
      let rest =
        List.filter
          (fun w -> not (List.mem w.id chosen_ids))
          (active_workers t)
      in
      let more =
        List.map (fun w -> (w, run_word ~resume:false t.cache acct w word)) rest
      in
      t.stats.vote_runs <- t.stats.vote_runs + List.length more;
      if more <> [] then Metrics.inc ~by:(List.length more) m_vote_runs;
      let all = answers @ more in
      let obs = tally all in
      let best = List.hd obs in
      let total = List.length all in
      if 2 * best.Nondet.count > total then begin
        let majority = best.Nondet.answer in
        List.iter (fun (w, a) -> if a <> majority then strike t w) all;
        majority
      end
      else
        raise
          (Nondet.Nondeterministic_sul
             (Printf.sprintf
                "query pool: no majority on a %d-symbol word (%d distinct \
                 answers over %d runs)"
                (List.length word) (List.length obs) total))

let exec_word t word =
  let acct = fresh_acct () in
  let outs =
    if t.config.replicas > 1 then vote t acct word
    else run_word ~resume:true t.cache acct (pick_worker t word) word
  in
  Cache.insert t.cache word outs;
  flush t acct;
  outs

(* One domain per worker; slices only read the cache (resume lookups
   against material from earlier batches) and write their own worker
   record and a local acct, so the parallel phase is race-free. Cache
   inserts, stats and metrics all happen after the join, on the main
   domain. Runs within a batch are pairwise non-prefix (maximality),
   so no slice ever needs an output produced by the current batch. *)
let parallel_exec t acct runs =
  let actives = Array.of_list (active_workers t) in
  let n = Array.length actives in
  let slices = Array.make n [] in
  List.iteri (fun i w -> slices.(i mod n) <- w :: slices.(i mod n)) runs;
  let slices = Array.map List.rev slices in
  let exec_slice k () =
    let local = fresh_acct () in
    let worker = actives.(k) in
    let results =
      List.map
        (fun word -> (word, run_word ~resume:true t.cache local worker word))
        slices.(k)
    in
    (results, local)
  in
  let domains =
    Array.init (n - 1) (fun k -> Domain.spawn (exec_slice (k + 1)))
  in
  let main = try Ok (exec_slice 0 ()) with e -> Error e in
  let joined =
    Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains
  in
  let all = Array.append [| main |] joined in
  Array.iter (function Error e -> raise e | Ok _ -> ()) all;
  Array.iter
    (function
      | Error _ -> ()
      | Ok (results, local) ->
          acct.a_runs <- acct.a_runs + local.a_runs;
          acct.a_resumed <- acct.a_resumed + local.a_resumed;
          acct.a_resets <- acct.a_resets + local.a_resets;
          acct.a_steps <- acct.a_steps + local.a_steps;
          List.iter (fun (w, outs) -> Cache.insert t.cache w outs) results)
    all

let exec_batch t words =
  let plan = Plan.build words in
  let s = t.stats in
  s.batches <- s.batches + 1;
  Metrics.inc m_batches;
  Metrics.observe h_batch_words (float_of_int plan.Plan.words);
  s.planned_words <- s.planned_words + plan.Plan.words;
  Metrics.inc ~by:plan.Plan.words m_planned;
  if plan.Plan.dupes > 0 then begin
    s.dedup_hits <- s.dedup_hits + plan.Plan.dupes;
    Metrics.inc ~by:plan.Plan.dupes m_dedup
  end;
  if plan.Plan.subsumed > 0 then begin
    s.prefix_answers <- s.prefix_answers + plan.Plan.subsumed;
    Metrics.inc ~by:plan.Plan.subsumed m_prefix_answers
  end;
  let acct = fresh_acct () in
  let execute () =
    if t.config.replicas > 1 then
      List.iter
        (fun w ->
          let outs = vote t acct w in
          Cache.insert t.cache w outs)
        plan.Plan.runs
    else if
      t.config.parallel
      && List.length (active_workers t) > 1
      && List.length plan.Plan.runs > 1
      && not (Trace.enabled ())
      (* the trace sink is not safe to share across domains *)
    then parallel_exec t acct plan.Plan.runs
    else
      List.iter
        (fun w ->
          let run () =
            let outs = run_word ~resume:true t.cache acct (pick_worker t w) w in
            Cache.insert t.cache w outs
          in
          if Trace.enabled () then
            Trace.with_span
              ~attrs:[ ("len", Jsonx.Int (List.length w)) ]
              "oracle.mq" run
          else run ())
        plan.Plan.runs
  in
  if Trace.enabled () then
    Trace.with_span
      ~attrs:
        [
          ("words", Jsonx.Int plan.Plan.words);
          ("runs", Jsonx.Int (List.length plan.Plan.runs));
        ]
      "exec.batch" execute
  else execute ();
  flush t acct;
  List.map
    (fun w ->
      match Cache.lookup t.cache w with
      | Some a -> a
      | None -> assert false (* every planned word is covered by a run *))
    words

let membership t =
  let cached =
    Cache.wrap t.cache
      (Oracle.of_fun ~stats:t.oracle_stats
         ?batch:(if t.config.batch then Some (exec_batch t) else None)
         (exec_word t))
  in
  (* Count the no-reuse sequential baseline for every query crossing
     the learner boundary — including the ones the cache answers. *)
  let ask word =
    count_baseline t word;
    let outs = cached.Oracle.ask word in
    sync_saved t;
    outs
  in
  let ask_batch =
    Option.map
      (fun f words ->
        List.iter (count_baseline t) words;
        let outs = f words in
        sync_saved t;
        outs)
      cached.Oracle.ask_batch
  in
  { cached with Oracle.ask; ask_batch }

let config t = t.config
let stats t = t.stats
let oracle_stats t = t.oracle_stats
let cache_stats t = (Cache.hits t.cache, Cache.misses t.cache)
let worker_runs t = Array.map (fun w -> w.runs_done) t.workers
let saved_resets t = t.stats.baseline_resets - t.stats.resets
let saved_steps t = t.stats.baseline_steps - t.stats.steps

let quarantined t =
  Array.to_list t.workers
  |> List.filter (fun w -> w.quarantined_until > t.clock)
  |> List.map (fun w -> w.id)

let stats_json t =
  let s = t.stats in
  let hits, misses = cache_stats t in
  Jsonx.Obj
    [
      ("schema", Jsonx.String "prognosis.exec/1");
      ("workers", Jsonx.Int t.config.workers);
      ("replicas", Jsonx.Int t.config.replicas);
      ("batch", Jsonx.Bool t.config.batch);
      ("parallel", Jsonx.Bool t.config.parallel);
      ("batches", Jsonx.Int s.batches);
      ("planned_words", Jsonx.Int s.planned_words);
      ("dedup_hits", Jsonx.Int s.dedup_hits);
      ("prefix_answers", Jsonx.Int s.prefix_answers);
      ("runs", Jsonx.Int s.runs);
      ("resumed_runs", Jsonx.Int s.resumed);
      ("resets", Jsonx.Int s.resets);
      ("steps", Jsonx.Int s.steps);
      ("baseline_resets", Jsonx.Int s.baseline_resets);
      ("baseline_steps", Jsonx.Int s.baseline_steps);
      ("saved_resets", Jsonx.Int (saved_resets t));
      ("saved_steps", Jsonx.Int (saved_steps t));
      ("cache_hits", Jsonx.Int hits);
      ("cache_misses", Jsonx.Int misses);
      ("disagreements", Jsonx.Int s.disagreements);
      ("vote_runs", Jsonx.Int s.vote_runs);
      ("quarantines", Jsonx.Int s.quarantines);
      ( "worker_runs",
        Jsonx.List
          (Array.to_list
             (Array.map (fun w -> Jsonx.Int w.runs_done) t.workers)) );
      ( "quarantined_workers",
        Jsonx.List (List.map (fun id -> Jsonx.Int id) (quarantined t)) );
    ]
