(** The query-execution engine: a batched, prefix-sharing,
    multi-worker SUL pool.

    Prognosis's cost model is membership queries against a live
    implementation (paper §4.1), and learning time is dominated by
    executing them — every query is a reset plus one step per symbol.
    The engine sits between the learner's oracles and the SUL adapters
    and attacks that cost three ways:

    - {b planning} — a batch of pending queries is deduplicated, words
      that are prefixes of longer planned words are answered for free
      from the longer run's per-step outputs, and the surviving maximal
      words are ordered for prefix locality ({!Plan});
    - {b pooling} — N factory-constructed SUL instances execute the
      planned runs, each worker tracking the word it has replayed since
      its last reset so a run extending that word resumes mid-replay
      (the reset and the shared prefix's steps are skipped — their
      outputs come from the engine's cache). Batches optionally run in
      parallel, one OCaml 5 domain per worker, for pure in-process
      substrates;
    - {b robustness} — with [replicas >= 2] every run executes on that
      many distinct workers; disagreement escalates to the whole active
      pool and takes the strict-majority answer (the per-query retry),
      striking outvoted workers. A worker reaching [max_strikes] is
      quarantined — a circuit breaker — and re-admitted after
      [cooldown] further pool runs. No majority raises
      {!Prognosis_sul.Nondet.Nondeterministic_sul}: a pool that cannot
      agree is the paper's §5 nondeterminism diagnosis.

    The engine fronts everything with the standard
    {!Prognosis_learner.Cache}, so {!membership} is a drop-in
    [Oracle.membership] for {!Prognosis_learner.Learn.run_mq}: cache
    misses are exactly the words that reach the pool. *)

type config = {
  workers : int;  (** pool size (>= 1) *)
  batch : bool;  (** advertise [ask_batch] to suite-driven oracles *)
  parallel : bool;
      (** execute batch runs across domains; forced off while a trace
          sink is installed (the sink is not domain-safe) and ignored
          when [replicas > 1] *)
  replicas : int;  (** full runs per word for cross-validation (>= 1,
                       <= workers) *)
  max_strikes : int;  (** outvoted answers before quarantine *)
  cooldown : int;  (** pool runs a quarantined worker sits out *)
}

val default : config
(** [{ workers = 1; batch = true; parallel = false; replicas = 1;
      max_strikes = 2; cooldown = 256 }] *)

type ('i, 'o) t

val create :
  ?config:config ->
  ?labels:(string * string) list ->
  ?cache:('i, 'o) Prognosis_learner.Cache.t ->
  factory:(int -> ('i, 'o) Prognosis_sul.Sul.t) ->
  unit ->
  ('i, 'o) t
(** [create ~factory ()] builds the pool; [factory i] must return an
    independent SUL instance for worker [i] (give each its own
    {!Prognosis_sul.Rng} stream — see {!Prognosis_sul.Rng.split}).
    [?labels] (default [[]]) is prefixed to every per-worker labelled
    metric ([exec.worker.*]) this engine registers — fleet sessions
    pass [[("session", ..)]] so concurrently live engines keep
    distinct series instead of clobbering each other's gauges.
    [?cache] substitutes an external query cache for the engine's
    fresh one — a checkpoint session's pre-warmed cache
    ({!Prognosis_learner.Checkpoint.cache}) turns a resumed run's
    pre-crash queries into hits that never reach the pool.
    @raise Invalid_argument on a non-positive worker count or
    [replicas] outside [1, workers]. *)

val freeze : ('i, 'o) t -> string
(** Snapshot of the pool's robustness bookkeeping (per-worker run
    counts, strikes, quarantines; run/cooldown clock) as an opaque
    blob for {!Prognosis_learner.Checkpoint.set_exec_state}. Worker
    resume positions are not captured: fresh SUL instances start from
    reset. *)

val thaw : ('i, 'o) t -> string -> unit
(** Restore a {!freeze} blob into a pool of the same size.
    @raise Invalid_argument on a foreign blob or a changed pool size. *)

val membership : ('i, 'o) t -> ('i, 'o) Prognosis_learner.Oracle.membership
(** The engine as a membership oracle. [ask] answers one word;
    [ask_batch] (present when [config.batch]) plans and executes a
    whole batch. Answers are observationally identical to a direct
    sequential oracle over one [factory] instance — batching and
    pooling only change cost. The oracle's [stats] count the words
    that reached the pool (= the engine's cache misses). *)

type stats = {
  mutable batches : int;
  mutable planned_words : int;  (** cache-missing words submitted *)
  mutable dedup_hits : int;  (** duplicate words collapsed in batches *)
  mutable prefix_answers : int;
      (** words answered from a longer planned run *)
  mutable runs : int;  (** live SUL executions *)
  mutable resumed : int;  (** runs that skipped the reset via resume *)
  mutable resets : int;
  mutable steps : int;
  mutable baseline_resets : int;
  mutable baseline_steps : int;
      (** cost of the no-reuse sequential oracle on the same query
          stream: one reset plus one step per symbol for every word
          crossing the {!membership} boundary (cache hits included) *)
  mutable disagreements : int;
  mutable vote_runs : int;  (** replica + escalation runs beyond the
                                first run of each voted word *)
  mutable quarantines : int;
}

val stats : ('i, 'o) t -> stats
val oracle_stats : ('i, 'o) t -> Prognosis_learner.Oracle.stats
val config : ('i, 'o) t -> config

val cache_stats : ('i, 'o) t -> int * int
(** (hits, misses) of the engine's cache — pass to
    {!Prognosis_learner.Learn.run_mq}'s [cache_stats]. *)

val worker_runs : ('i, 'o) t -> int array
(** Per-worker runs executed (utilization). *)

val saved_resets : ('i, 'o) t -> int
val saved_steps : ('i, 'o) t -> int
(** Baseline minus actual, where the baseline is the no-reuse
    sequential oracle (every query executed directly: one reset plus
    one step per symbol). Negative when replication spends more than
    caching and planning save. *)

val quarantined : ('i, 'o) t -> int list
(** Ids of currently quarantined workers. *)

val stats_json : ('i, 'o) t -> Prognosis_obs.Jsonx.t
(** Schema-versioned ["prognosis.exec/1"] object for
    {!Report.to_json}'s [exec] section and the bench snapshot. *)

