module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace

type config = { loss : float; duplicate : float; corrupt : float }

let reliable = { loss = 0.0; duplicate = 0.0; corrupt = 0.0 }
let lossy p = { reliable with loss = p }

type t = {
  mutable cfg : config;
  rng : Rng.t;
  seed : int64 option;
  mutable transmitted : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
}

let m_transmitted = Metrics.counter Metrics.default "net.transmitted"
let m_dropped = Metrics.counter Metrics.default "net.dropped"
let m_duplicated = Metrics.counter Metrics.default "net.duplicated"
let m_corrupted = Metrics.counter Metrics.default "net.corrupted"

let create ?(config = reliable) ?seed rng =
  {
    cfg = config;
    rng;
    seed;
    transmitted = 0;
    dropped = 0;
    duplicated = 0;
    corrupted = 0;
  }

let config t = t.cfg
let set_config t cfg = t.cfg <- cfg

let corrupt_byte rng payload =
  if String.length payload = 0 then payload
  else begin
    let pos = Rng.int rng (String.length payload) in
    let bit = Rng.int rng 8 in
    let b = Bytes.of_string payload in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  end

(* Packet-level fault events: emitted only when the fault fires, so a
   reliable channel adds nothing to the trace. *)
let fault_event t kind payload =
  if Trace.enabled () then
    Trace.event
      ~attrs:
        (("bytes", Prognosis_obs.Jsonx.Int (String.length payload))
        ::
        (match t.seed with
        | Some s -> [ ("seed", Prognosis_obs.Jsonx.Int (Int64.to_int s)) ]
        | None -> []))
      kind

let transmit t payload =
  t.transmitted <- t.transmitted + 1;
  Metrics.inc m_transmitted;
  if t.cfg.loss = 0. && t.cfg.corrupt = 0. && t.cfg.duplicate = 0. then
    (* Fully reliable channel: skip the fault draws. No draw outcome
       can differ from the general path (every probability is zero) and
       the channel rng feeds nothing else, so delivery is identical. *)
    [ payload ]
  else if Rng.bool t.rng t.cfg.loss then begin
    t.dropped <- t.dropped + 1;
    Metrics.inc m_dropped;
    fault_event t "net.loss" payload;
    []
  end
  else begin
    let payload =
      if Rng.bool t.rng t.cfg.corrupt then begin
        t.corrupted <- t.corrupted + 1;
        Metrics.inc m_corrupted;
        fault_event t "net.corrupt" payload;
        corrupt_byte t.rng payload
      end
      else payload
    in
    if Rng.bool t.rng t.cfg.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      Metrics.inc m_duplicated;
      fault_event t "net.duplicate" payload;
      [ payload; payload ]
    end
    else [ payload ]
  end

let transmitted t = t.transmitted
let dropped t = t.dropped
let duplicated t = t.duplicated
let corrupted t = t.corrupted
