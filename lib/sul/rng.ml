type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64: Steele, Lea, Flood (2014). *)
let next64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = create (next64 t)
let split_n t n = Array.init n (fun _ -> split t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod n

let int32 t = Int64.to_int32 (next64 t)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let bytes t n =
  String.init n (fun _ -> Char.chr (Int64.to_int (Int64.logand (next64 t) 0xFFL)))
