(** Deterministic pseudo-random numbers (splitmix64).

    Every source of randomness in the simulated protocol stacks and the
    learning harness draws from one of these generators, so whole
    experiments are reproducible from a single seed. *)

type t

val create : int64 -> t
val copy : t -> t

val split : t -> t
(** Independent child generator; the parent advances. Consumers that
    need several randomness streams (a worker pool, fault injection
    alongside protocol nonces) must split one master generator rather
    than share [t]: split streams are reproducible from the master
    seed and pairwise different. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent child generators, in split order;
    the parent advances [n] times. *)

val next64 : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val int32 : t -> int32
val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val bytes : t -> int -> string
(** [bytes t n] is [n] uniform random bytes. *)
