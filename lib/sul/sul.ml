type ('i, 'o) t = {
  reset : unit -> unit;
  step : 'i -> 'o;
  description : string;
}

let make ?(description = "sul") ~reset ~step () = { reset; step; description }

let query sul word =
  sul.reset ();
  List.map sul.step word

let of_mealy m =
  let state = ref (Prognosis_automata.Mealy.initial m) in
  {
    reset = (fun () -> state := Prognosis_automata.Mealy.initial m);
    step =
      (fun x ->
        let s', o = Prognosis_automata.Mealy.step m !state x in
        state := s';
        o);
    description = "mealy";
  }

let strings ~symbols ~to_string ~output_to_string sul =
  let table = Hashtbl.create 16 in
  Array.iter (fun s -> Hashtbl.replace table (to_string s) s) symbols;
  {
    reset = sul.reset;
    step =
      (fun name ->
        match Hashtbl.find_opt table name with
        | Some sym -> output_to_string (sul.step sym)
        | None ->
            invalid_arg
              (Printf.sprintf "Sul.strings: input %S is not in the %s alphabet"
                 name sul.description));
    description = sul.description;
  }

let counting sul =
  let resets = ref 0 and steps = ref 0 in
  let wrapped =
    {
      sul with
      reset =
        (fun () ->
          incr resets;
          sul.reset ());
      step =
        (fun x ->
          incr steps;
          sul.step x);
    }
  in
  (wrapped, fun () -> (!resets, !steps))
