module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace

type config = { min_runs : int; max_runs : int; agreement : float }

let default = { min_runs = 3; max_runs = 50; agreement = 0.95 }

type 'o observation = { answer : 'o list; count : int }

type 'o verdict =
  | Deterministic of 'o list
  | Nondeterministic of 'o observation list

let tally answers =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let n = try Hashtbl.find tbl a with Not_found -> 0 in
      Hashtbl.replace tbl a (n + 1))
    answers;
  let obs = Hashtbl.fold (fun answer count acc -> { answer; count } :: acc) tbl [] in
  List.sort (fun a b -> compare b.count a.count) obs

let m_checks = Metrics.counter Metrics.default "nondet.checks"
let m_runs = Metrics.counter Metrics.default "nondet.sul_runs"
let m_retries = Metrics.counter Metrics.default "nondet.retries"
let m_nondet = Metrics.counter Metrics.default "nondet.nondeterministic"

let query cfg sul word =
  if cfg.min_runs < 1 then invalid_arg "Nondet.query: min_runs must be >= 1";
  Metrics.inc m_checks;
  let answers = ref [] in
  let run () =
    Metrics.inc m_runs;
    answers := Sul.query sul word :: !answers
  in
  for _ = 1 to cfg.min_runs do
    run ()
  done;
  let all_equal l =
    match l with [] -> true | x :: rest -> List.for_all (( = ) x) rest
  in
  if all_equal !answers then Deterministic (List.hd !answers)
  else begin
    (* Disagreement among the first min_runs executions: retry up to
       the run budget and take a sufficiently dominant plurality. *)
    let retries = cfg.max_runs - List.length !answers in
    if retries > 0 then Metrics.inc ~by:retries m_retries;
    if Trace.enabled () then
      Trace.event
        ~attrs:
          [
            ("word_len", Prognosis_obs.Jsonx.Int (List.length word));
            ("min_runs", Prognosis_obs.Jsonx.Int cfg.min_runs);
            ("extra_runs", Prognosis_obs.Jsonx.Int (max retries 0));
          ]
        "nondet.retry";
    while List.length !answers < cfg.max_runs do
      run ()
    done;
    let obs = tally !answers in
    let total = List.length !answers in
    match obs with
    | best :: _ when float_of_int best.count /. float_of_int total >= cfg.agreement ->
        Deterministic best.answer
    | _ ->
        Metrics.inc m_nondet;
        if Trace.enabled () then
          Trace.event
            ~attrs:
              [
                ("word_len", Prognosis_obs.Jsonx.Int (List.length word));
                ("variants", Prognosis_obs.Jsonx.Int (List.length obs));
                ("runs", Prognosis_obs.Jsonx.Int total);
              ]
            "nondet.verdict_nondeterministic";
        Nondeterministic obs
  end

let distribution ~runs sul word =
  let answers = List.init runs (fun _ -> Sul.query sul word) in
  tally answers

let frequency obs pred =
  let total = List.fold_left (fun n o -> n + o.count) 0 obs in
  let hits =
    List.fold_left (fun n o -> if pred o.answer then n + o.count else n) 0 obs
  in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

exception Nondeterministic_sul of string

let deterministic_query cfg ~pp sul word =
  match query cfg sul word with
  | Deterministic answer -> answer
  | Nondeterministic obs ->
      let variants = List.length obs in
      raise
        (Nondeterministic_sul
           (Printf.sprintf "query %s produced %d distinct answers" (pp word) variants))

let plurality_query ~runs sul word =
  if runs < 1 then invalid_arg "Nondet.plurality_query: runs must be >= 1";
  let answers = List.init runs (fun _ -> Sul.query sul word) in
  match tally answers with
  | best :: _ -> best.answer
  | [] -> assert false

let modal_oracle ~runs sul =
  if runs < 1 then invalid_arg "Nondet.modal_oracle: runs must be >= 1";
  let memo = Hashtbl.create 64 in
  let rec answer word =
    match Hashtbl.find_opt memo word with
    | Some a -> a
    | None ->
        let a =
          match List.rev word with
          | [] -> []
          | _last_sym :: rev_prefix ->
              let prefix_answer = answer (List.rev rev_prefix) in
              (* Plurality of the final output over fresh runs. *)
              let tally = Hashtbl.create 4 in
              for _ = 1 to runs do
                match List.rev (Sul.query sul word) with
                | last :: _ ->
                    let n = try Hashtbl.find tally last with Not_found -> 0 in
                    Hashtbl.replace tally last (n + 1)
                | [] -> ()
              done;
              let best =
                Hashtbl.fold
                  (fun o n acc ->
                    match acc with
                    | Some (_, n') when n' >= n -> acc
                    | _ -> Some (o, n))
                  tally None
              in
              (match best with
              | Some (o, _) -> prefix_answer @ [ o ]
              | None -> invalid_arg "Nondet.modal_oracle: SUL returned no outputs")
        in
        Hashtbl.replace memo word a;
        a
  in
  answer
