(** Simulated datagram channel between the Adapter and an
    Implementation.

    The paper runs over real sockets where latency and loss introduce
    environmental nondeterminism that the nondeterminism check must
    filter out; this channel reproduces those effects deterministically
    from a seed so tests and benches can inject faults on demand. *)

type config = {
  loss : float;  (** probability a datagram is dropped *)
  duplicate : float;  (** probability a datagram is delivered twice *)
  corrupt : float;  (** probability one byte of the payload is flipped *)
}

val reliable : config
(** No loss, no duplication, no corruption. *)

val lossy : float -> config
(** [lossy p]: datagrams dropped with probability [p]. *)

type t

val create : ?config:config -> ?seed:int64 -> Rng.t -> t
(** [seed], when given, is attached to every emitted fault event so a
    trace identifies the reproducing run. *)

val config : t -> config
val set_config : t -> config -> unit

val transmit : t -> string -> string list
(** Deliveries for one datagram: [] when lost, one element normally,
    two when duplicated; payload possibly corrupted. Each fault
    increments a [net.*] counter in {!Prognosis_obs.Metrics.default}
    and, when tracing is on, emits a [net.loss] / [net.duplicate] /
    [net.corrupt] event carrying the payload byte count and seed. *)

val transmitted : t -> int
val dropped : t -> int
val duplicated : t -> int
val corrupted : t -> int
