let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let set_u32 b off v =
  set_u16 b off ((v lsr 16) land 0xFFFF);
  set_u16 b (off + 2) (v land 0xFFFF)

let get_u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
let get_u32 s off = (get_u16 s off lsl 16) lor get_u16 s (off + 2)

(* RFC 1071 ones-complement checksum, split into a raw 16-bit word sum
   and a finalizer. The sum over a concatenation of even-length pieces
   equals the sum of per-piece sums, so callers fold pseudo-header
   fields in as integers instead of materializing the concatenation. *)
let sum_string acc s off len =
  let sum = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum :=
      !sum
      + (Char.code (String.unsafe_get s !i) lsl 8)
      + Char.code (String.unsafe_get s (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (String.unsafe_get s !i) lsl 8);
  !sum

let sum_bytes acc b off len =
  let sum = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum :=
      !sum
      + (Char.code (Bytes.unsafe_get b !i) lsl 8)
      + Char.code (Bytes.unsafe_get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.unsafe_get b !i) lsl 8);
  !sum

let finish sum =
  let sum = ref sum in
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let checksum data = finish (sum_string 0 data 0 (String.length data))

module Ipv4 = struct
  type t = { src : int; dst : int; ttl : int; protocol : int; payload : string }

  let tcp_protocol = 6
  let udp_protocol = 17
  let header_len = 20

  let encode t =
    let total = header_len + String.length t.payload in
    if total > 0xFFFF then invalid_arg "Ipv4.encode: payload too large";
    let b = Bytes.make total '\000' in
    Bytes.set b 0 (Char.chr 0x45) (* version 4, IHL 5 *);
    set_u16 b 2 total;
    Bytes.set b 8 (Char.chr (t.ttl land 0xFF));
    Bytes.set b 9 (Char.chr (t.protocol land 0xFF));
    set_u32 b 12 t.src;
    set_u32 b 16 t.dst;
    Bytes.blit_string t.payload 0 b header_len (String.length t.payload);
    (* checksum field is still zero here, so summing the header in
       place is the sum-with-zeroed-field the RFC asks for *)
    set_u16 b 10 (finish (sum_bytes 0 b 0 header_len));
    Bytes.unsafe_to_string b

  let decode data =
    if String.length data < header_len then Error "ipv4: too short"
    else if Char.code data.[0] <> 0x45 then Error "ipv4: not v4/IHL5"
    else begin
      let total = get_u16 data 2 in
      if total > String.length data then Error "ipv4: truncated"
      else begin
        let received = get_u16 data 10 in
        (* subtracting the stored checksum word from the raw sum is the
           same as summing with the field zeroed (both lie on a 16-bit
           word boundary) *)
        if finish (sum_string 0 data 0 header_len - received) <> received
        then Error "ipv4: bad header checksum"
        else
          Ok
            {
              src = get_u32 data 12;
              dst = get_u32 data 16;
              ttl = Char.code data.[8];
              protocol = Char.code data.[9];
              payload = String.sub data header_len (total - header_len);
            }
      end
    end
end

module Udp = struct
  type t = { src_port : int; dst_port : int; payload : string }

  let header_len = 8

  (* the 12-byte (even-length) pseudo header folded directly into the
     running sum: src ip, dst ip, protocol, UDP length *)
  let pseudo_sum ~src_ip ~dst_ip ~length =
    ((src_ip lsr 16) land 0xFFFF)
    + (src_ip land 0xFFFF)
    + ((dst_ip lsr 16) land 0xFFFF)
    + (dst_ip land 0xFFFF)
    + Ipv4.udp_protocol + length

  let encode ~src_ip ~dst_ip t =
    let total = header_len + String.length t.payload in
    let b = Bytes.make total '\000' in
    set_u16 b 0 t.src_port;
    set_u16 b 2 t.dst_port;
    set_u16 b 4 total;
    Bytes.blit_string t.payload 0 b header_len (String.length t.payload);
    let sum =
      finish (sum_bytes (pseudo_sum ~src_ip ~dst_ip ~length:total) b 0 total)
    in
    set_u16 b 6 (if sum = 0 then 0xFFFF else sum);
    Bytes.unsafe_to_string b

  let decode ~src_ip ~dst_ip data =
    if String.length data < header_len then Error "udp: too short"
    else begin
      let total = get_u16 data 4 in
      if total > String.length data || total < header_len then
        Error "udp: bad length"
      else begin
        let received = get_u16 data 6 in
        let sum =
          finish
            (sum_string (pseudo_sum ~src_ip ~dst_ip ~length:total) data 0 total
            - received)
        in
        let sum = if sum = 0 then 0xFFFF else sum in
        if received <> 0 && sum <> received then Error "udp: bad checksum"
        else
          Ok
            {
              src_port = get_u16 data 0;
              dst_port = get_u16 data 2;
              payload = String.sub data header_len (total - header_len);
            }
      end
    end
end

let wrap_tcp ~src ~dst payload =
  Ipv4.encode
    { Ipv4.src; dst; ttl = 64; protocol = Ipv4.tcp_protocol; payload }

let unwrap_tcp data =
  match Ipv4.decode data with
  | Error e -> Error e
  | Ok ip ->
      if ip.Ipv4.protocol <> Ipv4.tcp_protocol then Error "ipv4: not TCP"
      else Ok ip.Ipv4.payload

let wrap_udp ~src ~dst ~src_port ~dst_port payload =
  let udp = Udp.encode ~src_ip:src ~dst_ip:dst { Udp.src_port; dst_port; payload } in
  Ipv4.encode { Ipv4.src; dst; ttl = 64; protocol = Ipv4.udp_protocol; payload = udp }

let unwrap_udp data =
  match Ipv4.decode data with
  | Error e -> Error e
  | Ok ip ->
      if ip.Ipv4.protocol <> Ipv4.udp_protocol then Error "ipv4: not UDP"
      else begin
        match Udp.decode ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst ip.Ipv4.payload with
        | Error e -> Error e
        | Ok udp -> Ok (udp.Udp.src_port, udp.Udp.payload)
      end
