(** The System-Under-Learning interface.

    A SUL is anything that can be reset to an initial state and stepped
    one abstract input symbol at a time, producing one abstract output
    symbol. Learners interact with implementations only through this
    interface — the closed-box assumption of the paper. *)

type ('i, 'o) t = {
  reset : unit -> unit;
  step : 'i -> 'o;
  description : string;
}

val make :
  ?description:string -> reset:(unit -> unit) -> step:('i -> 'o) -> unit -> ('i, 'o) t

val query : ('i, 'o) t -> 'i list -> 'o list
(** Reset, then feed the whole input word, collecting outputs. *)

val of_mealy : ('i, 'o) Prognosis_automata.Mealy.t -> ('i, 'o) t
(** Wraps a known machine as a SUL (useful for testing learners). *)

val strings :
  symbols:'i array ->
  to_string:('i -> string) ->
  output_to_string:('o -> string) ->
  ('i, 'o) t ->
  (string, string) t
(** View a SUL at the string level: inputs are looked up by their
    printed name (over [symbols]) and outputs rendered through
    [output_to_string]. This is the representation the canonical text
    models use, so fingerprint identification drives live endpoints
    through this wrapper.
    @raise Invalid_argument on an input name outside the alphabet. *)

val counting : ('i, 'o) t -> ('i, 'o) t * (unit -> int * int)
(** [counting sul] is a wrapper and a function returning
    [(resets, steps)] performed so far. *)
