module Metrics = Prognosis_obs.Metrics

(* [packed] is the compiled form of a machine: transitions and outputs
   flattened into int arrays ([(s * alpha) + i] indexing), outputs
   interned into a dense table. Stepping is two array loads — no
   per-step allocation, no polymorphic comparison. The form is memoized
   on the machine record ([t.packed_]) so every hot path that replays
   words over the same machine (equivalence suites, product BFS, test
   generation) pays the O(size × alpha) compilation once. *)
type ('i, 'o) t = {
  size : int;
  initial : int;
  inputs : 'i array;
  delta : int array array;
  lambda : 'o array array;
  mutable packed_ : ('i, 'o) packed option;
}

and ('i, 'o) packed = {
  p_size : int;
  p_initial : int;
  p_alpha : int;
  p_next : int array; (* state transition: p_next.((s * p_alpha) + i) *)
  p_out : int array; (* output id per (state, input) pair *)
  p_outputs : 'o array; (* interned output table, id -> symbol *)
  p_inputs : 'i array;
  p_index : ('i, int) Hashtbl.t; (* input symbol -> alphabet position *)
}

let m_packed_steps = Metrics.counter Metrics.default "packed.steps"
let m_packs = Metrics.counter Metrics.default "packed.machines"

let make ~size ~initial ~inputs ~delta ~lambda =
  let n_inputs = Array.length inputs in
  if size <= 0 then invalid_arg "Mealy.make: size must be positive";
  if initial < 0 || initial >= size then invalid_arg "Mealy.make: bad initial state";
  if n_inputs = 0 then invalid_arg "Mealy.make: empty alphabet";
  if Array.length delta <> size || Array.length lambda <> size then
    invalid_arg "Mealy.make: delta/lambda must have one row per state";
  Array.iter
    (fun row ->
      if Array.length row <> n_inputs then
        invalid_arg "Mealy.make: delta row width mismatch";
      Array.iter
        (fun s ->
          if s < 0 || s >= size then invalid_arg "Mealy.make: successor out of range")
        row)
    delta;
  Array.iter
    (fun row ->
      if Array.length row <> n_inputs then
        invalid_arg "Mealy.make: lambda row width mismatch")
    lambda;
  { size; initial; inputs; delta; lambda; packed_ = None }

let of_fun ~size ~initial ~inputs ~step =
  let n = Array.length inputs in
  let delta = Array.init size (fun _ -> Array.make n 0) in
  let lambda =
    Array.init size (fun s -> Array.init n (fun i -> snd (step s inputs.(i))))
  in
  for s = 0 to size - 1 do
    for i = 0 to n - 1 do
      delta.(s).(i) <- fst (step s inputs.(i))
    done
  done;
  make ~size ~initial ~inputs ~delta ~lambda

let size m = m.size
let initial m = m.initial
let inputs m = m.inputs
let alphabet_size m = Array.length m.inputs
let transitions m = m.size * alphabet_size m

let input_index m x =
  let n = Array.length m.inputs in
  let rec loop i =
    if i >= n then raise Not_found
    else if m.inputs.(i) = x then i
    else loop (i + 1)
  in
  loop 0

let step_idx m s i = (m.delta.(s).(i), m.lambda.(s).(i))
let step m s x = step_idx m s (input_index m x)

(* --- the compiled hot path --- *)

module Packed = struct
  type ('i, 'o) machine = ('i, 'o) t
  type nonrec ('i, 'o) t = ('i, 'o) packed

  let build m =
    let n = Array.length m.inputs in
    let next = Array.make (m.size * n) 0 in
    let out = Array.make (m.size * n) 0 in
    let out_ids = Hashtbl.create 16 in
    let out_list = ref [] in
    let n_outs = ref 0 in
    let intern o =
      match Hashtbl.find_opt out_ids o with
      | Some id -> id
      | None ->
          let id = !n_outs in
          Hashtbl.add out_ids o id;
          out_list := o :: !out_list;
          incr n_outs;
          id
    in
    for s = 0 to m.size - 1 do
      let base = s * n in
      let drow = m.delta.(s) and lrow = m.lambda.(s) in
      for i = 0 to n - 1 do
        next.(base + i) <- drow.(i);
        out.(base + i) <- intern lrow.(i)
      done
    done;
    let outputs = Array.of_list (List.rev !out_list) in
    let index = Hashtbl.create (2 * n) in
    Array.iteri (fun i x -> if not (Hashtbl.mem index x) then Hashtbl.add index x i) m.inputs;
    Metrics.inc m_packs;
    {
      p_size = m.size;
      p_initial = m.initial;
      p_alpha = n;
      p_next = next;
      p_out = out;
      p_outputs = outputs;
      p_inputs = m.inputs;
      p_index = index;
    }

  (* Memoized: repeated packs of the same machine are one field read.
     Not domain-safe — pack before handing a machine to parallel
     consumers (the exec pool packs on the main domain only). *)
  let pack m =
    match m.packed_ with
    | Some p -> p
    | None ->
        let p = build m in
        m.packed_ <- Some p;
        p

  let size p = p.p_size
  let initial p = p.p_initial
  let alphabet_size p = p.p_alpha
  let output_count p = Array.length p.p_outputs
  let next p s i = Array.unsafe_get p.p_next ((s * p.p_alpha) + i)
  let out_id p s i = Array.unsafe_get p.p_out ((s * p.p_alpha) + i)
  let output p id = p.p_outputs.(id)
  let input_index p x = Hashtbl.find_opt p.p_index x

  let run_from p s0 word =
    let s = ref s0 and n = ref 0 in
    let outs =
      List.map
        (fun x ->
          match Hashtbl.find_opt p.p_index x with
          | None -> raise Not_found
          | Some i ->
              let base = (!s * p.p_alpha) + i in
              let o = Array.unsafe_get p.p_out base in
              s := Array.unsafe_get p.p_next base;
              incr n;
              Array.unsafe_get p.p_outputs o)
        word
    in
    Metrics.inc ~by:!n m_packed_steps;
    outs

  let run p word = run_from p p.p_initial word

  let state_after_from p s0 word =
    let s = ref s0 and n = ref 0 in
    List.iter
      (fun x ->
        match Hashtbl.find_opt p.p_index x with
        | None -> raise Not_found
        | Some i ->
            s := Array.unsafe_get p.p_next ((!s * p.p_alpha) + i);
            incr n)
      word;
    Metrics.inc ~by:!n m_packed_steps;
    !s

  let state_after p word = state_after_from p p.p_initial word

  (* Pure id-level stepping over pre-interned words: the form the A9
     ablation and the micro-benchmarks drive. *)
  let run_ids p s0 word_ids =
    let len = Array.length word_ids in
    let out = Array.make len 0 in
    let s = ref s0 in
    for k = 0 to len - 1 do
      let base = (!s * p.p_alpha) + Array.unsafe_get word_ids k in
      Array.unsafe_set out k (Array.unsafe_get p.p_out base);
      s := Array.unsafe_get p.p_next base
    done;
    Metrics.inc ~by:len m_packed_steps;
    out

  let intern_word p word =
    Array.of_list
      (List.map
         (fun x ->
           match Hashtbl.find_opt p.p_index x with
           | Some i -> i
           | None -> raise Not_found)
         word)
end

let pack = Packed.pack

let run_from m s word = Packed.run_from (pack m) s word
let run m word = run_from m m.initial word
let state_after m word = Packed.state_after (pack m) word

(* Functional reference stepping, bypassing the packed form: the
   differential baseline the QCheck observational-equality property and
   the A9 ablation compare {!run} against. *)
let run_reference_from m s0 word =
  let rec loop s acc = function
    | [] -> List.rev acc
    | x :: rest ->
        let s', o = step m s x in
        loop s' (o :: acc) rest
  in
  loop s0 [] word

let run_reference m word = run_reference_from m m.initial word

let reachable m =
  let seen = Array.make m.size false in
  let queue = Queue.create () in
  seen.(m.initial) <- true;
  Queue.add m.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun s' ->
        if not seen.(s') then begin
          seen.(s') <- true;
          Queue.add s' queue
        end)
      m.delta.(s)
  done;
  seen

let trim m =
  let seen = reachable m in
  let remap = Array.make m.size (-1) in
  let count = ref 0 in
  for s = 0 to m.size - 1 do
    if seen.(s) then begin
      remap.(s) <- !count;
      incr count
    end
  done;
  if !count = m.size then m
  else begin
    let n = Array.length m.inputs in
    let delta = Array.init !count (fun _ -> Array.make n 0) in
    let lambda = Array.init !count (fun _ -> Array.make n m.lambda.(m.initial).(0)) in
    for s = 0 to m.size - 1 do
      if seen.(s) then begin
        let s' = remap.(s) in
        for i = 0 to n - 1 do
          delta.(s').(i) <- remap.(m.delta.(s).(i));
          lambda.(s').(i) <- m.lambda.(s).(i)
        done
      end
    done;
    make ~size:!count ~initial:remap.(m.initial) ~inputs:m.inputs ~delta ~lambda
  end

(* Moore-style partition refinement: start from the partition induced by
   output rows, refine by successor-block signatures until stable. *)
let minimize m =
  let m = trim m in
  let n = Array.length m.inputs in
  let block = Array.make m.size 0 in
  (* Initial partition by output row. *)
  let tbl = Hashtbl.create 16 in
  let next = ref 0 in
  for s = 0 to m.size - 1 do
    let key = Array.to_list m.lambda.(s) in
    match Hashtbl.find_opt tbl key with
    | Some b -> block.(s) <- b
    | None ->
        Hashtbl.add tbl key !next;
        block.(s) <- !next;
        incr next
  done;
  let blocks = ref !next in
  let changed = ref true in
  while !changed do
    changed := false;
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    let new_block = Array.make m.size 0 in
    for s = 0 to m.size - 1 do
      let key = (block.(s), List.init n (fun i -> block.(m.delta.(s).(i)))) in
      match Hashtbl.find_opt tbl key with
      | Some b -> new_block.(s) <- b
      | None ->
          Hashtbl.add tbl key !next;
          new_block.(s) <- !next;
          incr next
    done;
    if !next <> !blocks then begin
      changed := true;
      blocks := !next;
      Array.blit new_block 0 block 0 m.size
    end
  done;
  if !blocks = m.size then m
  else begin
    (* One representative per block. *)
    let rep = Array.make !blocks (-1) in
    for s = m.size - 1 downto 0 do
      rep.(block.(s)) <- s
    done;
    let delta = Array.init !blocks (fun b -> Array.init n (fun i -> block.(m.delta.(rep.(b)).(i)))) in
    let lambda = Array.init !blocks (fun b -> Array.copy m.lambda.(rep.(b))) in
    make ~size:!blocks ~initial:block.(m.initial) ~inputs:m.inputs ~delta ~lambda
  end

(* BFS renumbering: states are numbered in the order breadth-first
   search from the initial state discovers them, exploring inputs in
   alphabet order; unreachable states are dropped. Isomorphic machines
   over the same alphabet therefore produce structurally equal
   delta/lambda matrices — the property the canonical textual model
   format relies on for byte-identical serialization. *)
let canonicalize m =
  let n = Array.length m.inputs in
  let order = Array.make m.size (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  order.(m.initial) <- !count;
  incr count;
  Queue.add m.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    for i = 0 to n - 1 do
      let s' = m.delta.(s).(i) in
      if order.(s') < 0 then begin
        order.(s') <- !count;
        incr count;
        Queue.add s' queue
      end
    done
  done;
  let size = !count in
  let rep = Array.make size 0 in
  for s = 0 to m.size - 1 do
    if order.(s) >= 0 then rep.(order.(s)) <- s
  done;
  let delta =
    Array.init size (fun q -> Array.init n (fun i -> order.(m.delta.(rep.(q)).(i))))
  in
  let lambda = Array.init size (fun q -> Array.copy m.lambda.(rep.(q))) in
  make ~size ~initial:0 ~inputs:m.inputs ~delta ~lambda

let same_alphabet a b =
  Array.length a.inputs = Array.length b.inputs
  && Array.for_all2 (fun x y -> x = y) a.inputs b.inputs

(* BFS over the product machine on packed transition tables: product
   states are encoded as [sa * |b| + sb] into a byte-per-state visited
   map and an int queue, so the search allocates nothing per edge. The
   dequeue order (FIFO, inputs in alphabet order) is exactly the order
   the historical Hashtbl-based search used, so the returned word — the
   first separating edge encountered — is unchanged. *)
let product_bfs_packed pa pb =
  let n = pa.p_alpha in
  let nb = pb.p_size in
  let total = pa.p_size * nb in
  let seen = Bytes.make total '\000' in
  let parent = Array.make total (-1) in
  (* parent pointer encodes (predecessor product state, input index) *)
  let queue = Array.make total 0 in
  let head = ref 0 and tail = ref 0 in
  let start = (pa.p_initial * nb) + pb.p_initial in
  Bytes.unsafe_set seen start '\001';
  queue.(!tail) <- start;
  incr tail;
  let result = ref (-1) and result_i = ref (-1) in
  (try
     while !head < !tail do
       let pq = queue.(!head) in
       incr head;
       let sa = pq / nb and sb = pq mod nb in
       let base_a = sa * n and base_b = sb * n in
       for i = 0 to n - 1 do
         if !result < 0 then begin
           let oa = Array.unsafe_get pa.p_outputs (Array.unsafe_get pa.p_out (base_a + i)) in
           let ob = Array.unsafe_get pb.p_outputs (Array.unsafe_get pb.p_out (base_b + i)) in
           if oa <> ob then begin
             result := pq;
             result_i := i;
             raise Exit
           end;
           let pq' =
             (Array.unsafe_get pa.p_next (base_a + i) * nb)
             + Array.unsafe_get pb.p_next (base_b + i)
           in
           if Bytes.unsafe_get seen pq' = '\000' then begin
             Bytes.unsafe_set seen pq' '\001';
             parent.(pq') <- (pq * n) + i;
             queue.(!tail) <- pq';
             incr tail
           end
         end
       done
     done
   with Exit -> ());
  if !result < 0 then None
  else begin
    (* Rebuild the input word along the parent chain. *)
    let rec path acc pq =
      if pq = start && parent.(pq) < 0 then acc
      else
        let enc = parent.(pq) in
        path (pa.p_inputs.(enc mod n) :: acc) (enc / n)
    in
    Some (path [ pa.p_inputs.(!result_i) ] !result)
  end

let equivalent a b =
  if not (same_alphabet a b) then
    invalid_arg "Mealy.equivalent: machines have different alphabets";
  product_bfs_packed (pack a) (pack b)

let access_words m =
  let words = Array.make m.size [] in
  let seen = Array.make m.size false in
  let queue = Queue.create () in
  seen.(m.initial) <- true;
  Queue.add m.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iteri
      (fun i s' ->
        if not seen.(s') then begin
          seen.(s') <- true;
          words.(s') <- words.(s) @ [ m.inputs.(i) ];
          Queue.add s' queue
        end)
      m.delta.(s)
  done;
  words

(* Same packed product BFS, between two states of one machine. *)
let distinguishing_word m p q =
  let pm = pack m in
  let n = pm.p_alpha in
  let nb = pm.p_size in
  let total = nb * nb in
  let seen = Bytes.make total '\000' in
  let parent = Array.make total (-1) in
  let queue = Array.make total 0 in
  let head = ref 0 and tail = ref 0 in
  let start = (p * nb) + q in
  Bytes.unsafe_set seen start '\001';
  queue.(!tail) <- start;
  incr tail;
  let result = ref (-1) and result_i = ref (-1) in
  (try
     while !head < !tail do
       let pq2 = queue.(!head) in
       incr head;
       let sp = pq2 / nb and sq = pq2 mod nb in
       let base_p = sp * n and base_q = sq * n in
       for i = 0 to n - 1 do
         if !result < 0 then begin
           let op = Array.unsafe_get pm.p_out (base_p + i) in
           let oq = Array.unsafe_get pm.p_out (base_q + i) in
           if op <> oq then begin
             result := pq2;
             result_i := i;
             raise Exit
           end;
           let pq' =
             (Array.unsafe_get pm.p_next (base_p + i) * nb)
             + Array.unsafe_get pm.p_next (base_q + i)
           in
           if Bytes.unsafe_get seen pq' = '\000' then begin
             Bytes.unsafe_set seen pq' '\001';
             parent.(pq') <- (pq2 * n) + i;
             queue.(!tail) <- pq';
             incr tail
           end
         end
       done
     done
   with Exit -> ());
  if !result < 0 then None
  else begin
    let rec path acc pq2 =
      if pq2 = start && parent.(pq2) < 0 then acc
      else
        let enc = parent.(pq2) in
        path (pm.p_inputs.(enc mod n) :: acc) (enc / n)
    in
    Some (path [ pm.p_inputs.(!result_i) ] !result)
  end

let characterizing_set m =
  let pm = pack m in
  let words = ref [] in
  (* Words are kept pre-interned alongside so the cover check steps
     packed ids instead of re-hashing symbols per pair. *)
  let interned = ref [] in
  let covered p q =
    List.exists
      (fun ids -> Packed.run_ids pm p ids <> Packed.run_ids pm q ids)
      !interned
  in
  for p = 0 to m.size - 1 do
    for q = p + 1 to m.size - 1 do
      if not (covered p q) then
        match distinguishing_word m p q with
        | Some w ->
            words := w :: !words;
            interned := Packed.intern_word pm w :: !interned
        | None -> ()
    done
  done;
  if !words = [] then [ [] ] else !words

let count_words ~alphabet ~max_len =
  let rec loop k pow acc =
    if k > max_len then acc else loop (k + 1) (pow * alphabet) (acc + (pow * alphabet))
  in
  loop 1 1 0

let to_dot ?(name = "mealy") ~input_pp ~output_pp m =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "digraph %s {@\n  rankdir=LR;@\n  node [shape=circle];@\n" name;
  Format.fprintf fmt "  __start [shape=none,label=\"\"];@\n  __start -> s%d;@\n" m.initial;
  let n = Array.length m.inputs in
  for s = 0 to m.size - 1 do
    (* Group parallel edges by target state. *)
    let by_target = Hashtbl.create 4 in
    for i = 0 to n - 1 do
      let t = m.delta.(s).(i) in
      let label =
        Format.asprintf "%a / %a" input_pp m.inputs.(i) output_pp m.lambda.(s).(i)
      in
      let prev = try Hashtbl.find by_target t with Not_found -> [] in
      Hashtbl.replace by_target t (label :: prev)
    done;
    Hashtbl.iter
      (fun t labels ->
        let label = String.concat "\\n" (List.rev labels) in
        Format.fprintf fmt "  s%d -> s%d [label=\"%s\"];@\n" s t label)
      by_target
  done;
  Format.fprintf fmt "}@.";
  Buffer.contents buf

let map_outputs f m =
  { m with lambda = Array.map (Array.map f) m.lambda; packed_ = None }
