type ('i, 'o) t = {
  size : int;
  initial : int;
  inputs : 'i array;
  delta : int array array;
  lambda : 'o array array;
}

let make ~size ~initial ~inputs ~delta ~lambda =
  let n_inputs = Array.length inputs in
  if size <= 0 then invalid_arg "Mealy.make: size must be positive";
  if initial < 0 || initial >= size then invalid_arg "Mealy.make: bad initial state";
  if n_inputs = 0 then invalid_arg "Mealy.make: empty alphabet";
  if Array.length delta <> size || Array.length lambda <> size then
    invalid_arg "Mealy.make: delta/lambda must have one row per state";
  Array.iter
    (fun row ->
      if Array.length row <> n_inputs then
        invalid_arg "Mealy.make: delta row width mismatch";
      Array.iter
        (fun s ->
          if s < 0 || s >= size then invalid_arg "Mealy.make: successor out of range")
        row)
    delta;
  Array.iter
    (fun row ->
      if Array.length row <> n_inputs then
        invalid_arg "Mealy.make: lambda row width mismatch")
    lambda;
  { size; initial; inputs; delta; lambda }

let of_fun ~size ~initial ~inputs ~step =
  let n = Array.length inputs in
  let delta = Array.init size (fun _ -> Array.make n 0) in
  let lambda =
    Array.init size (fun s -> Array.init n (fun i -> snd (step s inputs.(i))))
  in
  for s = 0 to size - 1 do
    for i = 0 to n - 1 do
      delta.(s).(i) <- fst (step s inputs.(i))
    done
  done;
  make ~size ~initial ~inputs ~delta ~lambda

let size m = m.size
let initial m = m.initial
let inputs m = m.inputs
let alphabet_size m = Array.length m.inputs
let transitions m = m.size * alphabet_size m

let input_index m x =
  let n = Array.length m.inputs in
  let rec loop i =
    if i >= n then raise Not_found
    else if m.inputs.(i) = x then i
    else loop (i + 1)
  in
  loop 0

let step_idx m s i = (m.delta.(s).(i), m.lambda.(s).(i))
let step m s x = step_idx m s (input_index m x)

let run_from m s0 word =
  let rec loop s acc = function
    | [] -> List.rev acc
    | x :: rest ->
        let s', o = step m s x in
        loop s' (o :: acc) rest
  in
  loop s0 [] word

let run m word = run_from m m.initial word

let state_after m word =
  List.fold_left (fun s x -> fst (step m s x)) m.initial word

let reachable m =
  let seen = Array.make m.size false in
  let queue = Queue.create () in
  seen.(m.initial) <- true;
  Queue.add m.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun s' ->
        if not seen.(s') then begin
          seen.(s') <- true;
          Queue.add s' queue
        end)
      m.delta.(s)
  done;
  seen

let trim m =
  let seen = reachable m in
  let remap = Array.make m.size (-1) in
  let count = ref 0 in
  for s = 0 to m.size - 1 do
    if seen.(s) then begin
      remap.(s) <- !count;
      incr count
    end
  done;
  if !count = m.size then m
  else begin
    let n = Array.length m.inputs in
    let delta = Array.init !count (fun _ -> Array.make n 0) in
    let lambda = Array.init !count (fun _ -> Array.make n m.lambda.(m.initial).(0)) in
    for s = 0 to m.size - 1 do
      if seen.(s) then begin
        let s' = remap.(s) in
        for i = 0 to n - 1 do
          delta.(s').(i) <- remap.(m.delta.(s).(i));
          lambda.(s').(i) <- m.lambda.(s).(i)
        done
      end
    done;
    make ~size:!count ~initial:remap.(m.initial) ~inputs:m.inputs ~delta ~lambda
  end

(* Moore-style partition refinement: start from the partition induced by
   output rows, refine by successor-block signatures until stable. *)
let minimize m =
  let m = trim m in
  let n = Array.length m.inputs in
  let block = Array.make m.size 0 in
  (* Initial partition by output row. *)
  let tbl = Hashtbl.create 16 in
  let next = ref 0 in
  for s = 0 to m.size - 1 do
    let key = Array.to_list m.lambda.(s) in
    match Hashtbl.find_opt tbl key with
    | Some b -> block.(s) <- b
    | None ->
        Hashtbl.add tbl key !next;
        block.(s) <- !next;
        incr next
  done;
  let blocks = ref !next in
  let changed = ref true in
  while !changed do
    changed := false;
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    let new_block = Array.make m.size 0 in
    for s = 0 to m.size - 1 do
      let key = (block.(s), List.init n (fun i -> block.(m.delta.(s).(i)))) in
      match Hashtbl.find_opt tbl key with
      | Some b -> new_block.(s) <- b
      | None ->
          Hashtbl.add tbl key !next;
          new_block.(s) <- !next;
          incr next
    done;
    if !next <> !blocks then begin
      changed := true;
      blocks := !next;
      Array.blit new_block 0 block 0 m.size
    end
  done;
  if !blocks = m.size then m
  else begin
    (* One representative per block. *)
    let rep = Array.make !blocks (-1) in
    for s = m.size - 1 downto 0 do
      rep.(block.(s)) <- s
    done;
    let delta = Array.init !blocks (fun b -> Array.init n (fun i -> block.(m.delta.(rep.(b)).(i)))) in
    let lambda = Array.init !blocks (fun b -> Array.copy m.lambda.(rep.(b))) in
    make ~size:!blocks ~initial:block.(m.initial) ~inputs:m.inputs ~delta ~lambda
  end

(* BFS renumbering: states are numbered in the order breadth-first
   search from the initial state discovers them, exploring inputs in
   alphabet order; unreachable states are dropped. Isomorphic machines
   over the same alphabet therefore produce structurally equal
   delta/lambda matrices — the property the canonical textual model
   format relies on for byte-identical serialization. *)
let canonicalize m =
  let n = Array.length m.inputs in
  let order = Array.make m.size (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  order.(m.initial) <- !count;
  incr count;
  Queue.add m.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    for i = 0 to n - 1 do
      let s' = m.delta.(s).(i) in
      if order.(s') < 0 then begin
        order.(s') <- !count;
        incr count;
        Queue.add s' queue
      end
    done
  done;
  let size = !count in
  let rep = Array.make size 0 in
  for s = 0 to m.size - 1 do
    if order.(s) >= 0 then rep.(order.(s)) <- s
  done;
  let delta =
    Array.init size (fun q -> Array.init n (fun i -> order.(m.delta.(rep.(q)).(i))))
  in
  let lambda = Array.init size (fun q -> Array.copy m.lambda.(rep.(q))) in
  make ~size ~initial:0 ~inputs:m.inputs ~delta ~lambda

let same_alphabet a b =
  Array.length a.inputs = Array.length b.inputs
  && Array.for_all2 (fun x y -> x = y) a.inputs b.inputs

(* BFS over the product machine, returning the first input word that
   separates outputs. *)
let equivalent a b =
  if not (same_alphabet a b) then
    invalid_arg "Mealy.equivalent: machines have different alphabets";
  let n = Array.length a.inputs in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.add seen (a.initial, b.initial) ();
  Queue.add (a.initial, b.initial, []) queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let sa, sb, path = Queue.pop queue in
       for i = 0 to n - 1 do
         let sa', oa = step_idx a sa i in
         let sb', ob = step_idx b sb i in
         if oa <> ob then begin
           result := Some (List.rev (a.inputs.(i) :: path));
           raise Exit
         end;
         if not (Hashtbl.mem seen (sa', sb')) then begin
           Hashtbl.add seen (sa', sb') ();
           Queue.add (sa', sb', a.inputs.(i) :: path) queue
         end
       done
     done
   with Exit -> ());
  !result

let access_words m =
  let words = Array.make m.size [] in
  let seen = Array.make m.size false in
  let queue = Queue.create () in
  seen.(m.initial) <- true;
  Queue.add m.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iteri
      (fun i s' ->
        if not seen.(s') then begin
          seen.(s') <- true;
          words.(s') <- words.(s) @ [ m.inputs.(i) ];
          Queue.add s' queue
        end)
      m.delta.(s)
  done;
  words

let distinguishing_word m p q =
  let n = Array.length m.inputs in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.add seen (p, q) ();
  Queue.add (p, q, []) queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let sp, sq, path = Queue.pop queue in
       for i = 0 to n - 1 do
         let sp', op = step_idx m sp i in
         let sq', oq = step_idx m sq i in
         if op <> oq then begin
           result := Some (List.rev (m.inputs.(i) :: path));
           raise Exit
         end;
         if not (Hashtbl.mem seen (sp', sq')) then begin
           Hashtbl.add seen (sp', sq') ();
           Queue.add (sp', sq', m.inputs.(i) :: path) queue
         end
       done
     done
   with Exit -> ());
  !result

let characterizing_set m =
  let words = ref [] in
  let covered p q =
    List.exists
      (fun w -> run_from m p w <> run_from m q w)
      !words
  in
  for p = 0 to m.size - 1 do
    for q = p + 1 to m.size - 1 do
      if not (covered p q) then
        match distinguishing_word m p q with
        | Some w -> words := w :: !words
        | None -> ()
    done
  done;
  if !words = [] then [ [] ] else !words

let count_words ~alphabet ~max_len =
  let rec loop k pow acc =
    if k > max_len then acc else loop (k + 1) (pow * alphabet) (acc + (pow * alphabet))
  in
  loop 1 1 0

let to_dot ?(name = "mealy") ~input_pp ~output_pp m =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "digraph %s {@\n  rankdir=LR;@\n  node [shape=circle];@\n" name;
  Format.fprintf fmt "  __start [shape=none,label=\"\"];@\n  __start -> s%d;@\n" m.initial;
  let n = Array.length m.inputs in
  for s = 0 to m.size - 1 do
    (* Group parallel edges by target state. *)
    let by_target = Hashtbl.create 4 in
    for i = 0 to n - 1 do
      let t = m.delta.(s).(i) in
      let label =
        Format.asprintf "%a / %a" input_pp m.inputs.(i) output_pp m.lambda.(s).(i)
      in
      let prev = try Hashtbl.find by_target t with Not_found -> [] in
      Hashtbl.replace by_target t (label :: prev)
    done;
    Hashtbl.iter
      (fun t labels ->
        let label = String.concat "\\n" (List.rev labels) in
        Format.fprintf fmt "  s%d -> s%d [label=\"%s\"];@\n" s t label)
      by_target
  done;
  Format.fprintf fmt "}@.";
  Buffer.contents buf

let map_outputs f m =
  { m with lambda = Array.map (Array.map f) m.lambda }
