(** Deterministic, complete Mealy machines.

    States are integers [0 .. size-1]; the input alphabet is an explicit
    array of symbols. All machines handled by Prognosis are total: every
    state has a transition for every input symbol.

    Machines carry a lazily-built {e packed} form (see {!Packed}): flat
    int transition/output tables with O(1) array-indexed stepping. The
    word-running entry points ({!run}, {!run_from}, {!state_after}),
    product-BFS comparisons ({!equivalent}, {!distinguishing_word}) and
    {!characterizing_set} all execute on the packed form; it is memoized
    per machine, so the compilation cost is paid once. *)

type ('i, 'o) packed
(** The compiled form of a machine; see {!Packed}. *)

type ('i, 'o) t = private {
  size : int;  (** number of states *)
  initial : int;  (** initial state, in [0, size) *)
  inputs : 'i array;  (** the input alphabet *)
  delta : int array array;  (** [delta.(s).(i)] = successor state *)
  lambda : 'o array array;  (** [lambda.(s).(i)] = output symbol *)
  mutable packed_ : ('i, 'o) packed option;
      (** memoized packed form; managed by {!Packed.pack} *)
}

val make :
  size:int ->
  initial:int ->
  inputs:'i array ->
  delta:int array array ->
  lambda:'o array array ->
  ('i, 'o) t
(** Builds a machine, checking that [delta]/[lambda] are [size]×[inputs]
    matrices and all successors lie in [0, size).
    @raise Invalid_argument on a malformed machine. *)

val of_fun :
  size:int ->
  initial:int ->
  inputs:'i array ->
  step:(int -> 'i -> int * 'o) ->
  ('i, 'o) t
(** Tabulates [step] over all states and inputs. *)

val size : ('i, 'o) t -> int
val initial : ('i, 'o) t -> int
val inputs : ('i, 'o) t -> 'i array
val alphabet_size : ('i, 'o) t -> int

val transitions : ('i, 'o) t -> int
(** Total number of transitions, i.e. [size * alphabet_size]. *)

val input_index : ('i, 'o) t -> 'i -> int
(** Position of a symbol in the input alphabet.
    @raise Not_found if the symbol is not in the alphabet. *)

val step_idx : ('i, 'o) t -> int -> int -> int * 'o
(** [step_idx m s i] follows the transition for the [i]-th alphabet
    symbol from state [s]. *)

val step : ('i, 'o) t -> int -> 'i -> int * 'o

val run : ('i, 'o) t -> 'i list -> 'o list
(** Output word produced from the initial state. Executes on the
    memoized packed form ({!Packed}).
    @raise Not_found if a symbol is not in the alphabet. *)

val run_from : ('i, 'o) t -> int -> 'i list -> 'o list
val state_after : ('i, 'o) t -> 'i list -> int

val run_reference : ('i, 'o) t -> 'i list -> 'o list
(** Functional reference stepping over the unpacked matrices (linear
    alphabet scan per symbol, no interning). Semantically identical to
    {!run}; kept as the differential baseline for the packed-vs-
    functional property test and the A9 bench ablation. *)

val run_reference_from : ('i, 'o) t -> int -> 'i list -> 'o list

(** Packed (compiled) machines: transitions and outputs frozen into
    flat int arrays indexed by [(state * alphabet_size) + input_index],
    with outputs interned into a dense table. Stepping is two array
    loads — no per-step allocation or polymorphic comparison. Build
    cost is O(size × alphabet); {!Packed.pack} memoizes the result on
    the machine record.

    Packing and the memoizing field are not domain-safe: pack on one
    domain before sharing a machine with parallel consumers. A packed
    value itself is immutable and safe to read concurrently. *)
module Packed : sig
  type ('i, 'o) machine = ('i, 'o) t
  type nonrec ('i, 'o) t = ('i, 'o) packed

  val pack : ('i, 'o) machine -> ('i, 'o) t
  (** Compile (memoized — subsequent calls are one field read). *)

  val size : ('i, 'o) t -> int
  val initial : ('i, 'o) t -> int
  val alphabet_size : ('i, 'o) t -> int

  val output_count : ('i, 'o) t -> int
  (** Number of distinct output symbols (size of the intern table). *)

  val next : ('i, 'o) t -> int -> int -> int
  (** [next p s i] is the successor of state [s] on the [i]-th symbol. *)

  val out_id : ('i, 'o) t -> int -> int -> int
  (** [out_id p s i] is the interned output id of that transition. *)

  val output : ('i, 'o) t -> int -> 'o
  (** Resolve an interned output id to its symbol. *)

  val input_index : ('i, 'o) t -> 'i -> int option
  (** Alphabet position of a symbol, or [None] if unknown. *)

  val run : ('i, 'o) t -> 'i list -> 'o list
  val run_from : ('i, 'o) t -> int -> 'i list -> 'o list
  val state_after : ('i, 'o) t -> 'i list -> int
  val state_after_from : ('i, 'o) t -> int -> 'i list -> int

  val intern_word : ('i, 'o) t -> 'i list -> int array
  (** Pre-intern a word into alphabet indices for {!run_ids}.
      @raise Not_found if a symbol is not in the alphabet. *)

  val run_ids : ('i, 'o) t -> int -> int array -> int array
  (** [run_ids p s word_ids] steps a pre-interned word from state [s],
      returning interned output ids — the zero-allocation inner loop
      the hot paths (and the A9 ablation) drive. *)
end

val pack : ('i, 'o) t -> ('i, 'o) packed
(** Alias for {!Packed.pack}. *)

val reachable : ('i, 'o) t -> bool array
(** [reachable m] marks states reachable from the initial state. *)

val trim : ('i, 'o) t -> ('i, 'o) t
(** Restriction to reachable states (initial state preserved). *)

val minimize : ('i, 'o) t -> ('i, 'o) t
(** Canonical minimal machine (Moore-style partition refinement),
    restricted to reachable states. *)

val canonicalize : ('i, 'o) t -> ('i, 'o) t
(** BFS state renumbering: states are renumbered in breadth-first
    discovery order from the initial state (inputs explored in alphabet
    order), unreachable states dropped, so the initial state is 0.
    Isomorphic machines over the same alphabet canonicalize to
    structurally equal machines; compose with {!minimize} to map every
    machine of an equivalence class to one literal representative
    ([canonicalize (minimize m)]) — the normal form behind the
    byte-identical [prognosis.model/1] serialization. *)

val equivalent : ('i, 'o) t -> ('i, 'o) t -> 'i list option
(** [equivalent a b] is [None] when the machines have the same
    input/output behaviour, or [Some w] with [w] a shortest-by-BFS input
    word on which their outputs differ. Both machines must share the
    same input alphabet (compared by structural equality, order
    included). Runs as a product BFS over the packed transition tables;
    the BFS order (FIFO, inputs in alphabet order) is fixed, so the
    witness word is deterministic.
    @raise Invalid_argument if the alphabets differ. *)

val access_words : ('i, 'o) t -> 'i list array
(** BFS access word for each state; unreachable states map to the empty
    word (use {!reachable} to tell them apart from the initial state). *)

val characterizing_set : ('i, 'o) t -> 'i list list
(** A set of input words separating every pair of inequivalent states
    (used by W-method test generation). Never empty for machines with
    more than one state; contains the empty word only as a fallback for
    one-state machines. *)

val distinguishing_word : ('i, 'o) t -> int -> int -> 'i list option
(** Shortest input word on which two states of the same machine produce
    different outputs, if any. *)

val count_words : alphabet:int -> max_len:int -> int
(** Number of nonempty input words of length ≤ [max_len] over an
    alphabet of size [alphabet]: Σ_{k=1..max_len} alphabet^k. *)

val to_dot :
  ?name:string ->
  input_pp:(Format.formatter -> 'i -> unit) ->
  output_pp:(Format.formatter -> 'o -> unit) ->
  ('i, 'o) t ->
  string
(** Graphviz rendering. Transitions with identical endpoints are merged
    into a single multi-line edge label. *)

val map_outputs : ('o -> 'p) -> ('i, 'o) t -> ('i, 'p) t
