module Rng = Prognosis_sul.Rng
module Network = Prognosis_sul.Network
module Adapter = Prognosis_sul.Adapter

type concrete = Quic_packet.t

let create ?profile ?client_config ?(network = Network.reliable) ~seed () =
  let rng = Rng.create seed in
  let server_rng = Rng.split rng in
  let client_rng = Rng.split rng in
  let channel_rng = Rng.split rng in
  let server = Quic_server.create ?profile server_rng in
  let client = Quic_client.create ?config:client_config client_rng in
  let channel = Network.create ~config:network ~seed channel_rng in
  let reset () =
    Quic_server.reset server;
    Quic_client.reset client
  in
  let step symbol =
    match Quic_client.concretize client symbol with
    | None ->
        (* The reference implementation cannot realize this symbol in
           its current state: nothing is sent (answer NIL). *)
        ([], [], [])
    | Some (wire, request) ->
        (* QUIC rides in UDP in IPv4; the server reads the source port
           from the UDP header (address validation, Issue 3). *)
        let client_ip = 0x0A000001 and server_ip = 0x0A000002 in
        let deliveries =
          Network.transmit channel
            (Prognosis_sul.Inet.wrap_udp ~src:client_ip ~dst:server_ip
               ~src_port:(Quic_client.port client) ~dst_port:443 wire)
        in
        let responses =
          List.concat_map
            (fun datagram ->
              match Prognosis_sul.Inet.unwrap_udp datagram with
              | Ok (port, payload) ->
                  Quic_server.handle_datagram server ~port payload
              | Error _ -> [])
            deliveries
        in
        let delivered_back =
          List.concat_map
            (fun payload ->
              Network.transmit channel
                (Prognosis_sul.Inet.wrap_udp ~src:server_ip ~dst:client_ip
                   ~src_port:443
                   ~dst_port:(Quic_client.port client) payload))
            responses
          |> List.filter_map (fun datagram ->
                 match Prognosis_sul.Inet.unwrap_udp datagram with
                 | Ok (_, payload) -> Some payload
                 | Error _ -> None)
        in
        let absorbed = List.map (Quic_client.absorb client) delivered_back in
        let outputs, concrete_out =
          List.fold_left
            (fun (outs, pkts) absorbed ->
              match absorbed with
              | Quic_client.Packet p ->
                  (outs @ [ Quic_alphabet.abstract_packet p ], pkts @ [ p ])
              | Quic_client.Reset ->
                  ( outs @ [ Quic_alphabet.abstract_reset ],
                    pkts @ [ Quic_packet.make Quic_packet.Stateless_reset ~dcid:"" ]
                  )
              | Quic_client.Junk _ -> (outs, pkts))
            ([], []) absorbed
        in
        (outputs, [ request ], concrete_out)
  in
  (Adapter.create ~description:"quic" ~reset ~step (), client)

let sul ?profile ?client_config ?network ~seed () =
  Adapter.to_sul (fst (create ?profile ?client_config ?network ~seed ()))
