type ptype =
  | Initial
  | Zero_rtt
  | Handshake
  | Retry
  | Version_negotiation
  | Short
  | Stateless_reset

let ptype_to_string = function
  | Initial -> "INITIAL"
  | Zero_rtt -> "0RTT"
  | Handshake -> "HANDSHAKE"
  | Retry -> "RETRY"
  | Version_negotiation -> "VERSION_NEGOTIATION"
  | Short -> "SHORT"
  | Stateless_reset -> "STATELESS_RESET"

let all_ptypes =
  [ Initial; Zero_rtt; Handshake; Retry; Version_negotiation; Short; Stateless_reset ]

let cid_length = 8
let draft29 = 0xff00001d

type t = {
  ptype : ptype;
  version : int;
  dcid : string;
  scid : string;
  token : string;
  pn : int;
  frames : Frame.t list;
}

let pp fmt p =
  Format.fprintf fmt "%s(pn=%d)[%a]" (ptype_to_string p.ptype) p.pn
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Frame.pp)
    p.frames

let make ?(version = draft29) ?(scid = "") ?(token = "") ?(pn = -1) ?(frames = [])
    ptype ~dcid =
  { ptype; version; dcid; scid; token; pn; frames }

let level = function
  | Initial -> Some Quic_crypto.Initial_level
  | Handshake -> Some Quic_crypto.Handshake_level
  | Zero_rtt | Short -> Some Quic_crypto.Application_level
  | Retry | Version_negotiation | Stateless_reset -> None

let long_type_bits = function
  | Initial -> 0
  | Zero_rtt -> 1
  | Handshake -> 2
  | Retry -> 3
  | Short | Version_negotiation | Stateless_reset -> invalid_arg "not a long type"

let add_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let add_cid buf cid =
  Buffer.add_char buf (Char.chr (String.length cid));
  Buffer.add_string buf cid

let retry_integrity_tag ~dcid ~scid ~token =
  (* one hash for the whole tag (the per-byte closure used to recompute
     it eight times) *)
  let h =
    Int64.to_int
      (Quic_crypto.hash64 (String.concat "|" [ "retry"; dcid; scid; token ]))
  in
  String.init 8 (fun i -> Char.unsafe_chr ((h lsr (8 * i)) land 0xFF))

let encode ~crypto ~sender p =
  match p.ptype with
  | Version_negotiation ->
      let buf = Buffer.create 64 in
      Buffer.add_char buf '\x80';
      add_u32 buf 0;
      add_cid buf p.dcid;
      add_cid buf p.scid;
      add_u32 buf p.version;
      Some (Buffer.contents buf)
  | Retry ->
      let buf = Buffer.create 64 in
      Buffer.add_char buf (Char.chr (0x80 lor 0x40 lor (long_type_bits Retry lsl 4)));
      add_u32 buf p.version;
      add_cid buf p.dcid;
      add_cid buf p.scid;
      Buffer.add_string buf p.token;
      Buffer.add_string buf (retry_integrity_tag ~dcid:p.dcid ~scid:p.scid ~token:p.token);
      Some (Buffer.contents buf)
  | Stateless_reset -> invalid_arg "use encode_stateless_reset"
  | Initial | Zero_rtt | Handshake ->
      let header = Buffer.create 64 in
      Buffer.add_char header
        (Char.chr (0x80 lor 0x40 lor (long_type_bits p.ptype lsl 4) lor 0x03));
      add_u32 header p.version;
      add_cid header p.dcid;
      add_cid header p.scid;
      if p.ptype = Initial then begin
        Varint.encode header (String.length p.token);
        Buffer.add_string header p.token
      end;
      let payload = Frame.encode_all p.frames in
      Varint.encode header (4 + String.length payload + Quic_crypto.tag_length);
      add_u32 header p.pn;
      let header = Buffer.contents header in
      let lvl =
        match level p.ptype with Some l -> l | None -> assert false
      in
      (match Quic_crypto.seal crypto lvl sender ~pn:p.pn ~header payload with
      | None -> None
      | Some sealed -> Some (header ^ sealed))
  | Short ->
      let header = Buffer.create 16 in
      let phase_bit =
        if Quic_crypto.application_phase crypto land 1 = 1 then 0x04 else 0
      in
      Buffer.add_char header (Char.chr (0x40 lor phase_bit lor 0x03));
      Buffer.add_string header p.dcid (* fixed length, no prefix *);
      add_u32 header p.pn;
      let header = Buffer.contents header in
      let payload = Frame.encode_all p.frames in
      (match
         Quic_crypto.seal crypto Quic_crypto.Application_level sender ~pn:p.pn
           ~header payload
       with
      | None -> None
      | Some sealed -> Some (header ^ sealed))

let encode_stateless_reset ~rand ~token =
  (* First byte mimics a short header; at least 22 unpredictable bytes
     precede the 16-byte token. *)
  let bits = rand 22 in
  let first = Char.chr (0x40 lor (Char.code bits.[0] land 0x3F)) in
  String.make 1 first ^ String.sub bits 1 (String.length bits - 1) ^ token

exception Bad of string

type decode_result =
  | Decoded of t
  | Reset_detected of string
  | Undecodable of string

let decode ~crypto ~sender ~reset_tokens data =
  let len = String.length data in
  let need n off = if off + n > len then raise (Bad "truncated") in
  let read_cid off =
    need 1 off;
    let n = Char.code data.[off] in
    need n (off + 1);
    (String.sub data (off + 1) n, off + 1 + n)
  in
  try
    if len = 0 then Undecodable "empty datagram"
    else begin
      let first = Char.code data.[0] in
      if first land 0x80 <> 0 then begin
        (* Long header. *)
        need 5 0;
        let version = get_u32 data 1 in
        let dcid, off = read_cid 5 in
        let scid, off = read_cid off in
        if version = 0 then begin
          (* Version negotiation: list of supported versions. *)
          need 4 off;
          let supported = get_u32 data off in
          Decoded
            (make Version_negotiation ~version:supported ~dcid ~scid)
        end
        else begin
          let ptype =
            match (first lsr 4) land 0x03 with
            | 0 -> Initial
            | 1 -> Zero_rtt
            | 2 -> Handshake
            | _ -> Retry
          in
          match ptype with
          | Retry ->
              let rest = String.sub data off (len - off) in
              if String.length rest < 8 then raise (Bad "retry too short");
              let token = String.sub rest 0 (String.length rest - 8) in
              let tag = String.sub rest (String.length rest - 8) 8 in
              if retry_integrity_tag ~dcid ~scid ~token <> tag then
                Undecodable "retry integrity check failed"
              else Decoded (make Retry ~dcid ~scid ~token)
          | _ ->
              let token, off =
                if ptype = Initial then begin
                  let n, off = Varint.decode data off in
                  need n off;
                  (String.sub data off n, off + n)
                end
                else ("", off)
              in
              let length, off = Varint.decode data off in
              need length off;
              need 4 off;
              let pn = get_u32 data off in
              let header = String.sub data 0 (off + 4) in
              let sealed = String.sub data (off + 4) (length - 4) in
              let lvl =
                match level ptype with Some l -> l | None -> assert false
              in
              (match Quic_crypto.open_ crypto lvl sender ~pn ~header sealed with
              | None -> Undecodable "decryption failed"
              | Some payload -> (
                  match Frame.decode_all payload with
                  | Error e -> Undecodable ("bad frames: " ^ e)
                  | Ok frames ->
                      Decoded { ptype; version; dcid; scid; token; pn; frames }))
        end
      end
      else begin
        (* Short header (or stateless reset). *)
        let detect_reset () =
          if len >= 16 then begin
            let tail = String.sub data (len - 16) 16 in
            if List.mem tail reset_tokens then Some tail else None
          end
          else None
        in
        if len < 1 + cid_length + 4 + Quic_crypto.tag_length then
          match detect_reset () with
          | Some token -> Reset_detected token
          | None -> Undecodable "short packet too short"
        else begin
          let dcid = String.sub data 1 cid_length in
          let pn = get_u32 data (1 + cid_length) in
          let header = String.sub data 0 (1 + cid_length + 4) in
          let sealed =
            String.sub data (1 + cid_length + 4) (len - 1 - cid_length - 4)
          in
          let phase_bit = (first lsr 2) land 1 in
          let our_phase = Quic_crypto.application_phase crypto land 1 in
          let payload =
            if phase_bit = our_phase then
              Quic_crypto.open_ crypto Quic_crypto.Application_level sender ~pn
                ~header sealed
            else begin
              (* Peer-initiated key update (RFC 9001 §6): verify against
                 the next key generation and commit on success. *)
              match
                Quic_crypto.open_updated_application crypto sender ~pn ~header
                  sealed
              with
              | Some plaintext ->
                  Quic_crypto.update_application crypto;
                  Some plaintext
              | None -> None
            end
          in
          match payload with
          | Some payload -> (
              match Frame.decode_all payload with
              | Error e -> Undecodable ("bad frames: " ^ e)
              | Ok frames -> Decoded (make Short ~dcid ~pn ~frames))
          | None -> (
              match detect_reset () with
              | Some token -> Reset_detected token
              | None -> Undecodable "decryption failed")
        end
      end
    end
  with
  | Bad msg -> Undecodable msg
  | Invalid_argument msg -> Undecodable msg
