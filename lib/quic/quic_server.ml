module Rng = Prognosis_sul.Rng
module P = Quic_packet
module C = Quic_crypto

type phase =
  | Idle
  | Address_validation
  | Handshake_in_progress
  | Confirmed
  | Closing

let phase_to_string = function
  | Idle -> "idle"
  | Address_validation -> "address-validation"
  | Handshake_in_progress -> "handshaking"
  | Confirmed -> "confirmed"
  | Closing -> "closing"

type stream = {
  mutable recv_len : int;  (** request bytes received *)
  mutable sent : int;  (** response bytes sent *)
  mutable send_limit : int;  (** client's MAX_STREAM_DATA for us *)
  mutable fin_sent : bool;
  mutable blocked_at : int;  (** offset of the last STREAM_DATA_BLOCKED, -1 if none *)
}

type t = {
  prof : Quic_profile.t;
  rng : Rng.t;
  mutable crypto : C.t;
  mutable phase : phase;
  mutable scid_ : string;
  mutable client_cid : string;  (** client's scid: dcid of our responses *)
  mutable odcid : string;
  mutable retry_scid : string;
  mutable retry_token : string;
  mutable validated_port : int;
  mutable largest_pre_retry_pn : int;
  mutable initial_pn : int;
  mutable handshake_pn : int;
  mutable app_pn : int;
  mutable largest_recv : (P.ptype * int) list;  (** largest pn per space *)
  mutable conn_max_data : int;  (** client's MAX_DATA limit on our sending *)
  mutable total_sent : int;
  streams : (int, stream) Hashtbl.t;
  mutable ncid_seq : int;
  mutable active_port : int;  (** the currently validated path *)
  mutable outstanding_challenge : string option;
}

let create ?(profile = Quic_profile.quiche_like) rng =
  {
    prof = profile;
    rng;
    crypto = C.create ();
    phase = Idle;
    scid_ = "";
    client_cid = "";
    odcid = "";
    retry_scid = "";
    retry_token = "";
    validated_port = -1;
    largest_pre_retry_pn = -1;
    initial_pn = 0;
    handshake_pn = 0;
    app_pn = 0;
    largest_recv = [];
    conn_max_data = 0;
    total_sent = 0;
    streams = Hashtbl.create 4;
    ncid_seq = 0;
    active_port = -1;
    outstanding_challenge = None;
  }

let reset t =
  t.crypto <- C.create ();
  t.phase <- Idle;
  t.scid_ <- "";
  t.client_cid <- "";
  t.odcid <- "";
  t.retry_scid <- "";
  t.retry_token <- "";
  t.validated_port <- -1;
  t.largest_pre_retry_pn <- -1;
  t.initial_pn <- 0;
  t.handshake_pn <- 0;
  t.app_pn <- 0;
  t.largest_recv <- [];
  t.conn_max_data <- 0;
  t.total_sent <- 0;
  Hashtbl.reset t.streams;
  t.ncid_seq <- 0;
  t.active_port <- -1;
  t.outstanding_challenge <- None

let profile t = t.prof
let phase_name t = phase_to_string t.phase
let scid t = t.scid_

(* --- packet-number bookkeeping --- *)

let space_key (ptype : P.ptype) : P.ptype =
  match ptype with P.Zero_rtt -> P.Short | other -> other

let note_received t (p : P.t) =
  let key = space_key p.P.ptype in
  let current = try List.assoc key t.largest_recv with Not_found -> -1 in
  t.largest_recv <-
    (key, max current p.P.pn) :: List.remove_assoc key t.largest_recv

let largest_received t ptype =
  try List.assoc (space_key ptype) t.largest_recv with Not_found -> -1

let next_pn t (ptype : P.ptype) =
  match ptype with
  | P.Initial ->
      let pn = t.initial_pn in
      t.initial_pn <- pn + 1;
      pn
  | P.Handshake ->
      let pn = t.handshake_pn in
      t.handshake_pn <- pn + 1;
      pn
  | P.Short | P.Zero_rtt ->
      let pn = t.app_pn in
      t.app_pn <- pn + 1;
      pn
  | P.Retry | P.Version_negotiation | P.Stateless_reset -> -1

let ack_frame t ptype =
  Frame.Ack { largest = max 0 (largest_received t ptype); delay = 0; first_range = 0 }

(* --- response construction --- *)

let send t ptype frames =
  let pn = next_pn t ptype in
  let packet =
    P.make ptype ~dcid:t.client_cid ~scid:t.scid_ ~pn ~frames
  in
  match P.encode ~crypto:t.crypto ~sender:C.Server_to_client packet with
  | Some wire -> [ wire ]
  | None -> []

let connection_close t ?(space = P.Handshake) ~error ~reason () =
  t.phase <- Closing;
  let frame =
    Frame.Connection_close { error; frame_type = 0; reason; app = false }
  in
  (* Close in the space of the offending packet, downgrading to a space
     whose keys are actually installed. *)
  match space with
  | P.Short when C.has_level t.crypto C.Application_level ->
      send t P.Short [ frame ]
  | _ ->
      if C.has_level t.crypto C.Handshake_level then send t P.Handshake [ frame ]
      else send t P.Initial [ frame ]

let stateless_reset t =
  if Rng.bool t.rng t.prof.Quic_profile.reset_after_close_prob then begin
    let token = C.stateless_reset_token ~dcid:t.scid_ in
    [ P.encode_stateless_reset ~rand:(Rng.bytes t.rng) ~token ]
  end
  else []

(* --- handshake crypto payloads --- *)

(* The transport parameters ride in the ClientHello in this
   simulation: "CH:<random>;md=<max_data>;msd=<max_stream_data>". *)
let parse_client_hello data =
  match String.split_on_char ';' data with
  | ch :: params when String.length ch > 3 && String.sub ch 0 3 = "CH:" ->
      let random = String.sub ch 3 (String.length ch - 3) in
      let lookup key =
        List.fold_left
          (fun acc p ->
            match String.index_opt p '=' with
            | Some i when String.sub p 0 i = key ->
                int_of_string_opt (String.sub p (i + 1) (String.length p - i - 1))
            | _ -> acc)
          None params
      in
      Some (random, lookup "md", lookup "msd")
  | _ -> None

let crypto_data frames =
  List.filter_map
    (function Frame.Crypto { data; _ } -> Some data | _ -> None)
    frames
  |> String.concat ""

let has_handshake_done frames =
  List.exists (fun f -> Frame.kind f = Frame.K_handshake_done) frames

(* --- handshake steps --- *)

let hex_digits = "0123456789abcdef"

let to_hex s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get s i) in
    Bytes.unsafe_set b (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set b ((2 * i) + 1) (String.unsafe_get hex_digits (c land 0xF))
  done;
  Bytes.unsafe_to_string b

let begin_handshake t ~port (p : P.t) ch_random md msd =
  t.client_cid <- p.P.scid;
  t.active_port <- port;
  let server_random = to_hex (Rng.bytes t.rng 8) in
  C.install_handshake t.crypto ~client_random:ch_random ~server_random;
  t.conn_max_data <- (match md with Some v -> v | None -> 1 lsl 10);
  let msd_value = match msd with Some v -> v | None -> 1 lsl 9 in
  Hashtbl.replace t.streams 0
    { recv_len = 0; sent = 0; send_limit = msd_value; fin_sent = false; blocked_at = -1 };
  t.phase <- Handshake_in_progress;
  let sh = "SH:" ^ server_random in
  List.concat
    [
      send t P.Initial [ ack_frame t P.Initial; Frame.Crypto { offset = 0; data = sh } ];
      send t P.Handshake [ Frame.Crypto { offset = 0; data = "EE;CERT" } ];
      send t P.Handshake [ Frame.Crypto { offset = 7; data = ";FIN" } ];
    ]

let make_retry t (p : P.t) ~port =
  t.retry_scid <- Rng.bytes t.rng P.cid_length;
  t.retry_token <- Rng.bytes t.rng 16;
  t.validated_port <- port;
  t.largest_pre_retry_pn <- p.P.pn;
  t.phase <- Address_validation;
  let retry =
    P.make P.Retry ~dcid:p.P.scid ~scid:t.retry_scid ~token:t.retry_token
  in
  match P.encode ~crypto:t.crypto ~sender:C.Server_to_client retry with
  | Some wire -> [ wire ]
  | None -> []

(* --- per-phase packet processing --- *)

let handle_initial t ~port (p : P.t) =
  let frames = p.P.frames in
  if has_handshake_done frames then
    connection_close t ~space:P.Initial ~error:0x0A
      ~reason:"client sent HANDSHAKE_DONE" ()
  else begin
    match parse_client_hello (crypto_data frames) with
    | None ->
        (* An Initial without a ClientHello (e.g. pure ACK) is ignored
           before a connection exists. *)
        []
    | Some (ch_random, md, msd) -> (
        match (t.phase, t.prof.Quic_profile.retry) with
        | Idle, Quic_profile.No_retry -> begin_handshake t ~port p ch_random md msd
        | Idle, (Quic_profile.Retry_tolerant_pns_reset | Quic_profile.Retry_abort_on_pns_reset)
          ->
            make_retry t ~port p
        | Address_validation, mode ->
            if p.P.token <> t.retry_token then
              (* Invalid token: drop, address unvalidated. *)
              []
            else if port <> t.validated_port then
              (* Token echoed from a different port: validation fails
                 (the Issue-3 trigger). *)
              []
            else if
              mode = Quic_profile.Retry_abort_on_pns_reset
              && p.P.pn <= t.largest_pre_retry_pn
            then
              connection_close t ~space:P.Initial ~error:0x0A
                ~reason:"packet number space reset after Retry" ()
            else begin_handshake t ~port p ch_random md msd
        | (Handshake_in_progress | Confirmed | Closing), _ ->
            (* Duplicate ClientHello: retransmission; the handshake
               flight is resent. *)
            send t P.Initial [ ack_frame t P.Initial ])
  end

let finish_handshake t =
  t.phase <- Confirmed;
  let done_frames =
    Frame.Handshake_done
    ::
    (if t.prof.Quic_profile.send_new_connection_id then begin
       let mk () =
         let seq = t.ncid_seq in
         t.ncid_seq <- t.ncid_seq + t.prof.Quic_profile.ncid_seq_stride;
         let cid = Rng.bytes t.rng P.cid_length in
         Frame.New_connection_id
           {
             seq;
             retire_prior = 0;
             cid;
             reset_token = C.stateless_reset_token ~dcid:cid;
           }
       in
       t.ncid_seq <- 1;
       let first = mk () in
       let second = mk () in
       [ first; second ]
     end
     else [])
    @
    if t.prof.Quic_profile.send_new_token then
      [ Frame.New_token (Rng.bytes t.rng 16) ]
    else []
  in
  let responses =
    List.concat
      [ send t P.Handshake [ ack_frame t P.Handshake ]; send t P.Short done_frames ]
  in
  (* Handshake confirmed: earlier keys are discarded (RFC 9001 §4.9),
     so stray Initial/Handshake packets can no longer be read. *)
  C.drop_level t.crypto C.Initial_level;
  C.drop_level t.crypto C.Handshake_level;
  responses

let handle_handshake t (p : P.t) =
  if has_handshake_done p.P.frames then
    connection_close t ~space:P.Handshake ~error:0x0A
      ~reason:"client sent HANDSHAKE_DONE" ()
  else begin
    let data = crypto_data p.P.frames in
    match t.phase with
    | Handshake_in_progress when data = "CFIN" -> finish_handshake t
    | Handshake_in_progress ->
        (* ACK-only or unexpected handshake data: nothing to do. *)
        []
    | Idle | Address_validation | Confirmed | Closing -> []
  end

(* Send as much response-body data as flow control allows on a stream
   the client has fully requested on. *)
let pump_stream t id stream =
  let body = t.prof.Quic_profile.response_body in
  let body_len = String.length body in
  if stream.fin_sent || stream.recv_len = 0 then []
  else begin
    let stream_window = stream.send_limit - stream.sent in
    let conn_window = t.conn_max_data - t.total_sent in
    let can_send =
      if t.prof.Quic_profile.ignore_flow_control then max_int
      else min stream_window conn_window
    in
    let remaining = body_len - stream.sent in
    let chunk = min can_send remaining in
    let frames = ref [] in
    if chunk > 0 then begin
      let data = String.sub body stream.sent chunk in
      let fin = stream.sent + chunk = body_len in
      frames := [ Frame.Stream { id; offset = stream.sent; data; fin } ];
      stream.sent <- stream.sent + chunk;
      t.total_sent <- t.total_sent + chunk;
      if fin then stream.fin_sent <- true
    end;
    if (not stream.fin_sent) && stream.sent >= stream.send_limit
       && stream.blocked_at <> stream.sent
    then begin
      (* Blocked by the stream limit: advertise it. The Issue-4 bug
         reports the constant 0 instead of the blocked offset. *)
      let max =
        if t.prof.Quic_profile.stream_data_blocked_zero then 0 else stream.sent
      in
      frames := !frames @ [ Frame.Stream_data_blocked { stream_id = id; max } ];
      stream.blocked_at <- stream.sent
    end;
    !frames
  end

let handle_short t ~port (p : P.t) =
  if has_handshake_done p.P.frames then
    connection_close t ~space:P.Short ~error:0x0A
      ~reason:"client sent HANDSHAKE_DONE" ()
  else if t.phase <> Confirmed then
    (* 1-RTT data before handshake confirmation is not processed. *)
    []
  else begin
    let reply_frames = ref [] in
    (* Connection migration (RFC 9000 §9): a packet from a new source
       port triggers path validation; the new path is adopted once the
       client echoes our challenge. *)
    if port <> t.active_port && t.outstanding_challenge = None then begin
      let data = Rng.bytes t.rng 8 in
      t.outstanding_challenge <- Some data;
      reply_frames := !reply_frames @ [ Frame.Path_challenge data ]
    end;
    List.iter
      (fun frame ->
        match frame with
        | Frame.Path_response data when t.outstanding_challenge = Some data ->
            t.outstanding_challenge <- None;
            t.active_port <- port
        | Frame.Max_data v -> t.conn_max_data <- max t.conn_max_data v
        | Frame.Max_stream_data { stream_id; max } -> (
            match Hashtbl.find_opt t.streams stream_id with
            | Some s -> s.send_limit <- Stdlib.max s.send_limit max
            | None -> ())
        | Frame.Stream { id; offset; data; fin = _ } -> (
            match Hashtbl.find_opt t.streams id with
            | Some s ->
                s.recv_len <- Stdlib.max s.recv_len (offset + String.length data)
            | None ->
                Hashtbl.replace t.streams id
                  {
                    recv_len = offset + String.length data;
                    sent = 0;
                    send_limit = 0;
                    fin_sent = false;
                    blocked_at = -1;
                  })
        | Frame.Path_challenge data ->
            (* Path validation: echo the 8 challenge bytes. *)
            reply_frames := !reply_frames @ [ Frame.Path_response data ]
        | Frame.Stop_sending { stream_id; error } -> (
            (* The peer refuses our data: abandon the stream and
               declare its final size. *)
            match Hashtbl.find_opt t.streams stream_id with
            | Some s when not s.fin_sent ->
                s.fin_sent <- true;
                reply_frames :=
                  !reply_frames
                  @ [ Frame.Reset_stream { stream_id; error; final_size = s.sent } ]
            | Some _ | None -> ())
        | _ -> ())
      p.P.frames;
    Hashtbl.iter
      (fun id s -> reply_frames := !reply_frames @ pump_stream t id s)
      t.streams;
    let ack_eliciting = List.exists Frame.is_ack_eliciting p.P.frames in
    if !reply_frames <> [] then send t P.Short (ack_frame t P.Short :: !reply_frames)
    else if ack_eliciting then send t P.Short [ ack_frame t P.Short ]
    else []
  end

let install_initial_keys_if_needed t data =
  (* In Idle (or awaiting the post-Retry Initial) the server derives
     initial keys from the long header's destination connection id. *)
  if String.length data > 6 && Char.code data.[0] land 0x80 <> 0 then begin
    let dcid_len = Char.code data.[5] in
    if String.length data >= 6 + dcid_len then begin
      let dcid = String.sub data 6 dcid_len in
      match t.phase with
      | Idle ->
          t.odcid <- dcid;
          t.scid_ <- dcid;
          C.install_initial t.crypto ~dcid
      | Address_validation when dcid = t.retry_scid ->
          t.scid_ <- t.retry_scid;
          C.install_initial t.crypto ~dcid
      | Address_validation | Handshake_in_progress | Confirmed | Closing -> ()
    end
  end

let handle_datagram t ~port data =
  match t.phase with
  | Closing -> stateless_reset t
  | _ -> begin
      install_initial_keys_if_needed t data;
      match
        P.decode ~crypto:t.crypto ~sender:C.Client_to_server ~reset_tokens:[] data
      with
      | P.Undecodable _ -> []
      | P.Reset_detected _ -> []
      | P.Decoded p -> begin
          if p.P.ptype <> P.Retry && p.P.ptype <> P.Version_negotiation then
            note_received t p;
          if p.P.version <> P.draft29 && p.P.ptype = P.Initial then begin
            (* Unknown version: offer ours. *)
            let vn =
              P.make P.Version_negotiation ~version:P.draft29 ~dcid:p.P.scid
                ~scid:t.scid_
            in
            match P.encode ~crypto:t.crypto ~sender:C.Server_to_client vn with
            | Some wire -> [ wire ]
            | None -> []
          end
          else begin
            match p.P.ptype with
            | P.Initial -> handle_initial t ~port p
            | P.Handshake -> handle_handshake t p
            | P.Short -> handle_short t ~port p
            | P.Zero_rtt -> []
            | P.Retry | P.Version_negotiation | P.Stateless_reset -> []
          end
        end
    end
