module Rng = Prognosis_sul.Rng
module P = Quic_packet
module C = Quic_crypto

type config = { retry_port_bug : bool; pns_reset_on_retry : bool }

let default_config = { retry_port_bug = false; pns_reset_on_retry = true }

(* Flow-control limits the client announces: the initial values are
   deliberately smaller than the server's 80-byte response body so the
   server hits the stream limit and must emit STREAM_DATA_BLOCKED. *)
let initial_max_data = 100
let initial_max_stream_data = 50
let raised_max_data = 1000
let raised_max_stream_data = 200

type t = {
  cfg : config;
  rng : Rng.t;
  mutable port_ : int;
  mutable scid : string;
  mutable dcid : string;
  mutable odcid : string;
  mutable crypto : C.t;
  mutable client_random : string;
  mutable initial_pn : int;
  mutable handshake_pn : int;
  mutable app_pn : int;
  mutable largest : (P.ptype * int) list;
  mutable retry_token : string;
  mutable have_server_hello : bool;
  mutable server_crypto : string;
  mutable handshake_done_ : bool;
  mutable closed : bool;
  mutable stream_sent : bool;
  mutable msd_announced : int;
  mutable md_announced : int;
  mutable recv_stream_bytes : int;
  mutable ncid_seqs : int list;
  mutable sdb_values : int list;
  mutable flow_violation_ : bool;
  mutable queue : Frame.t list;
      (* reactive frames held back until the learner requests a matching
         symbol (the paper's Listing-1 queue, instrumentation property 1) *)
  mutable tokens_for_dcid : string;
  mutable tokens_for_odcid : string;
  mutable tokens_ : string list;
      (* stateless-reset tokens for the cids above; cache keyed by
         physical equality, so a cid swap always recomputes *)
}

let hex_digits = "0123456789abcdef"

let to_hex s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get s i) in
    Bytes.unsafe_set b (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set b ((2 * i) + 1) (String.unsafe_get hex_digits (c land 0xF))
  done;
  Bytes.unsafe_to_string b

let reset t =
  t.port_ <- 50000 + Rng.int t.rng 10000;
  t.scid <- Rng.bytes t.rng P.cid_length;
  t.odcid <- Rng.bytes t.rng P.cid_length;
  t.dcid <- t.odcid;
  t.crypto <- C.create ();
  C.install_initial t.crypto ~dcid:t.odcid;
  t.client_random <- to_hex (Rng.bytes t.rng 8);
  t.initial_pn <- 0;
  t.handshake_pn <- 0;
  t.app_pn <- 0;
  t.largest <- [];
  t.retry_token <- "";
  t.have_server_hello <- false;
  t.server_crypto <- "";
  t.handshake_done_ <- false;
  t.closed <- false;
  t.stream_sent <- false;
  t.msd_announced <- initial_max_stream_data;
  t.md_announced <- initial_max_data;
  t.recv_stream_bytes <- 0;
  t.ncid_seqs <- [];
  t.sdb_values <- [];
  t.flow_violation_ <- false;
  t.queue <- []

let create ?(config = default_config) rng =
  let t =
    {
      cfg = config;
      rng;
      port_ = 0;
      scid = "";
      dcid = "";
      odcid = "";
      crypto = C.create ();
      client_random = "";
      initial_pn = 0;
      handshake_pn = 0;
      app_pn = 0;
      largest = [];
      retry_token = "";
      have_server_hello = false;
      server_crypto = "";
      handshake_done_ = false;
      closed = false;
      stream_sent = false;
      msd_announced = initial_max_stream_data;
      md_announced = initial_max_data;
      recv_stream_bytes = 0;
      ncid_seqs = [];
      sdb_values = [];
      flow_violation_ = false;
      queue = [];
      tokens_for_dcid = "";
      tokens_for_odcid = "";
      tokens_ = [];
    }
  in
  reset t;
  t

let port t = t.port_

let space_key (ptype : P.ptype) : P.ptype =
  match ptype with P.Zero_rtt -> P.Short | other -> other

let largest_received t ptype =
  try List.assoc (space_key ptype) t.largest with Not_found -> -1

let note_received t (p : P.t) =
  let key = space_key p.P.ptype in
  let current = largest_received t key in
  t.largest <- (key, max current p.P.pn) :: List.remove_assoc key t.largest

let next_pn t (ptype : P.ptype) =
  match ptype with
  | P.Initial ->
      let pn = t.initial_pn in
      t.initial_pn <- pn + 1;
      pn
  | P.Handshake ->
      let pn = t.handshake_pn in
      t.handshake_pn <- pn + 1;
      pn
  | P.Short | P.Zero_rtt ->
      let pn = t.app_pn in
      t.app_pn <- pn + 1;
      pn
  | P.Retry | P.Version_negotiation | P.Stateless_reset -> -1

let ack_frame t ptype =
  Frame.Ack { largest = max 0 (largest_received t ptype); delay = 0; first_range = 0 }

let build t ptype ?(token = "") frames =
  let pn = next_pn t ptype in
  let packet = P.make ptype ~dcid:t.dcid ~scid:t.scid ~token ~pn ~frames in
  match P.encode ~crypto:t.crypto ~sender:C.Client_to_server packet with
  | Some wire -> Some (wire, packet)
  | None -> None

let client_hello t =
  String.concat ""
    [
      "CH:";
      t.client_random;
      ";md=";
      string_of_int initial_max_data;
      ";msd=";
      string_of_int initial_max_stream_data;
    ]

let concretize t symbol =
  match symbol with
  | Quic_alphabet.Initial_crypto ->
      build t P.Initial ~token:t.retry_token
        [ Frame.Crypto { offset = 0; data = client_hello t } ]
  | Quic_alphabet.Initial_ack_hsd ->
      build t P.Initial ~token:t.retry_token
        [ ack_frame t P.Initial; Frame.Handshake_done ]
  | Quic_alphabet.Handshake_ack_crypto ->
      if not t.have_server_hello then None
      else
        build t P.Handshake
          [ ack_frame t P.Handshake; Frame.Crypto { offset = 0; data = "CFIN" } ]
  | Quic_alphabet.Handshake_ack_hsd ->
      if not t.have_server_hello then None
      else build t P.Handshake [ ack_frame t P.Handshake; Frame.Handshake_done ]
  | Quic_alphabet.Short_ack_flow ->
      if not t.have_server_hello then None
      else begin
        t.md_announced <- raised_max_data;
        t.msd_announced <- raised_max_stream_data;
        build t P.Short
          [
            ack_frame t P.Short;
            Frame.Max_data raised_max_data;
            Frame.Max_stream_data { stream_id = 0; max = raised_max_stream_data };
          ]
      end
  | Quic_alphabet.Short_ack_stream ->
      if not t.have_server_hello then None
      else begin
        t.stream_sent <- true;
        build t P.Short
          [
            ack_frame t P.Short;
            Frame.Stream { id = 0; offset = 0; data = "GET /index"; fin = true };
          ]
      end
  | Quic_alphabet.Short_ack_hsd ->
      if not t.have_server_hello then None
      else build t P.Short [ ack_frame t P.Short; Frame.Handshake_done ]
  | Quic_alphabet.Short_ack_ping ->
      if not t.have_server_hello then None
      else build t P.Short [ ack_frame t P.Short; Frame.Ping ]
  | Quic_alphabet.Short_ack_path_challenge ->
      if not t.have_server_hello then None
      else
        build t P.Short
          [ ack_frame t P.Short; Frame.Path_challenge "\x01\x02\x03\x04\x05\x06\x07\x08" ]
  | Quic_alphabet.Short_ack_path_response -> (
      (* Only serviceable from the reactive queue: the response data
         must echo a server challenge we actually received. *)
      match
        List.partition
          (fun f -> Frame.kind f = Frame.K_path_response)
          t.queue
      with
      | response :: _, rest ->
          t.queue <- rest;
          build t P.Short [ ack_frame t P.Short; response ]
      | [], _ -> None)

let migrate t = t.port_ <- 50000 + Rng.int t.rng 10000
let queued_frames t = List.length t.queue

let initiate_key_update t = C.update_application t.crypto
let key_phase t = C.application_phase t.crypto

let send_frames t ptype frames =
  match ptype with
  | P.Initial -> build t P.Initial ~token:t.retry_token frames
  | P.Handshake | P.Short | P.Zero_rtt -> build t ptype frames
  | P.Retry | P.Version_negotiation | P.Stateless_reset ->
      invalid_arg "Quic_client.send_frames: clients cannot send this packet type"

type absorbed =
  | Packet of Quic_packet.t
  | Reset
  | Junk of string

let reset_tokens t =
  (* memoized per (dcid, odcid): recomputed only when a Retry or a
     server scid changes the destination cid, not on every datagram *)
  if t.tokens_for_dcid != t.dcid || t.tokens_for_odcid != t.odcid then begin
    t.tokens_for_dcid <- t.dcid;
    t.tokens_for_odcid <- t.odcid;
    t.tokens_ <-
      List.sort_uniq compare
        [
          C.stateless_reset_token ~dcid:t.dcid;
          C.stateless_reset_token ~dcid:t.odcid;
        ]
  end;
  t.tokens_

let parse_server_hello data =
  (* The SH may share a packet with other frames; CRYPTO data begins
     with "SH:". *)
  if String.length data >= 3 && String.sub data 0 3 = "SH:" then
    Some (String.sub data 3 (String.length data - 3))
  else None

let process_frame t (frame : Frame.t) =
  match frame with
  | Frame.Crypto { data; _ } -> (
      t.server_crypto <- t.server_crypto ^ data;
      match parse_server_hello data with
      | Some server_random ->
          t.have_server_hello <- true;
          C.install_handshake t.crypto ~client_random:t.client_random
            ~server_random
      | None -> ())
  | Frame.Handshake_done -> t.handshake_done_ <- true
  | Frame.Connection_close _ -> t.closed <- true
  | Frame.New_connection_id { seq; _ } -> t.ncid_seqs <- t.ncid_seqs @ [ seq ]
  | Frame.Stream_data_blocked { max; _ } -> t.sdb_values <- t.sdb_values @ [ max ]
  | Frame.Stream { offset; data; _ } ->
      let upto = offset + String.length data in
      t.recv_stream_bytes <- max t.recv_stream_bytes upto;
      if upto > t.msd_announced then t.flow_violation_ <- true
  | Frame.New_token token -> t.retry_token <- token
  | Frame.Path_challenge data ->
      (* A real client would answer immediately; the instrumented one
         queues the response for the learner (property 1). *)
      t.queue <- t.queue @ [ Frame.Path_response data ]
  | Frame.Padding _ | Frame.Ping | Frame.Ack _ | Frame.Reset_stream _
  | Frame.Stop_sending _ | Frame.Max_data _ | Frame.Max_stream_data _
  | Frame.Max_streams _ | Frame.Data_blocked _ | Frame.Streams_blocked _
  | Frame.Retire_connection_id _ | Frame.Path_response _ ->
      ()

let absorb t data =
  match
    P.decode ~crypto:t.crypto ~sender:C.Server_to_client
      ~reset_tokens:(reset_tokens t) data
  with
  | P.Reset_detected _ ->
      t.closed <- true;
      Reset
  | P.Undecodable reason -> Junk reason
  | P.Decoded p ->
      (match p.P.ptype with
      | P.Retry ->
          t.retry_token <- p.P.token;
          t.dcid <- p.P.scid;
          (* New initial keys are derived from the Retry's source
             connection id (RFC 9001 §5.2). *)
          C.install_initial t.crypto ~dcid:t.dcid;
          if t.cfg.pns_reset_on_retry then t.initial_pn <- 0;
          if t.cfg.retry_port_bug then
            (* The Issue-3 bug: the token is echoed from a brand-new
               socket bound to a random free port. *)
            t.port_ <- 50000 + Rng.int t.rng 10000
      | P.Version_negotiation -> ()
      | _ ->
          note_received t p;
          if p.P.scid <> "" then t.dcid <- p.P.scid;
          List.iter (process_frame t) p.P.frames);
      Packet p

let handshake_complete t = t.handshake_done_
let connection_closed t = t.closed
let ncid_sequence_numbers t = t.ncid_seqs
let stream_data_blocked_values t = t.sdb_values
let received_stream_bytes t = t.recv_stream_bytes
let announced_max_stream_data t = t.msd_announced
let flow_violation t = t.flow_violation_
