type level = Initial_level | Handshake_level | Application_level

let level_to_string = function
  | Initial_level -> "initial"
  | Handshake_level -> "handshake"
  | Application_level -> "application"

type direction = Client_to_server | Server_to_client

(* FNV-1a over OCaml's native (63-bit) int, then a splitmix-style
   finalizer for diffusion. Native int arithmetic keeps the whole
   per-packet path — key derivation, keystream, authentication —
   unboxed; the historical implementation iterated boxed [Int64]
   operations per byte and dominated the QUIC adapter's query cost.
   Constants are the usual FNV/splitmix ones truncated to 62 bits so
   they remain valid int literals. Hash values differ from the old
   Int64 variant, which is observable only inside one simulated
   connection (the scheme is symmetric and self-consistent). *)
let fnv_basis = 0x3BF29CE484222325
let fnv_prime = 0x100000001B3
let golden = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

(* Folds eight bytes per multiply where possible (the trailing mix
   supplies the diffusion FNV normally gets from its per-byte step). *)
let fold_string h s =
  let len = String.length s in
  let h = ref h in
  let i = ref 0 in
  while !i + 8 <= len do
    h := (!h lxor Int64.to_int (String.get_int64_le s !i)) * fnv_prime;
    i := !i + 8
  done;
  while !i < len do
    h := (!h lxor Char.code (String.unsafe_get s !i)) * fnv_prime;
    incr i
  done;
  !h

let fold_int h v =
  (((h lxor (v land 0xFFFFFFFF)) * fnv_prime) lxor ((v lsr 32) land 0xFFFFFFFF))
  * fnv_prime

let fold_byte h b = (h lxor b) * fnv_prime
let hash s = mix (fold_string fnv_basis s)
let hash64 s = Int64.of_int (hash s)

let bytes_of_hash v =
  String.init 8 (fun i -> Char.unsafe_chr ((v lsr (8 * (7 - i))) land 0xFF))

(* hash(secret ^ "/" ^ label) without building the concatenation *)
let derive secret label =
  let h = fold_byte (fold_string fnv_basis secret) (Char.code '/') in
  bytes_of_hash (mix (fold_string h label))

type secrets = { c2s : string; s2c : string }

type t = {
  mutable initial : secrets option;
  mutable handshake : secrets option;
  mutable application : secrets option;
  mutable app_phase : int;
}

let create () =
  { initial = None; handshake = None; application = None; app_phase = 0 }

let make_secrets base =
  { c2s = derive base "client"; s2c = derive base "server" }

let install_initial t ~dcid =
  t.initial <- Some (make_secrets (derive ("initial:" ^ dcid) "base"))

let install_handshake t ~client_random ~server_random =
  let base = derive ("hs:" ^ client_random ^ ":" ^ server_random) "base" in
  t.handshake <- Some (make_secrets base);
  t.application <- Some (make_secrets (derive base "app"))

let slot t = function
  | Initial_level -> t.initial
  | Handshake_level -> t.handshake
  | Application_level -> t.application

let drop_level t = function
  | Initial_level -> t.initial <- None
  | Handshake_level -> t.handshake <- None
  | Application_level -> t.application <- None

let has_level t level = slot t level <> None

let update_application t =
  match t.application with
  | None -> ()
  | Some secrets ->
      t.application <-
        Some { c2s = derive secrets.c2s "ku"; s2c = derive secrets.s2c "ku" };
      t.app_phase <- t.app_phase + 1

let application_phase t = t.app_phase

let key_for secrets = function
  | Client_to_server -> secrets.c2s
  | Server_to_client -> secrets.s2c

let tag_length = 8

(* Keystream-XOR in one pass: splitmix-style stream seeded from
   (key, packet number), consumed 8 bytes per mixing round, applied
   directly while copying [src[off, off+len)] into a fresh string.
   Encryption and decryption are the same operation. *)
let crypt key ~pn src off len =
  let out = Bytes.create len in
  let state = ref (mix (fold_int (fold_string fnv_basis key) pn)) in
  let i = ref 0 in
  (* whole 64-bit lanes: the keystream block is consumed low byte
     first, i.e. little-endian, so a masked int64 XOR reproduces the
     byte-at-a-time loop exactly (bit 63 of a keystream word is always
     zero: the state is a 63-bit int) *)
  while !i + 8 <= len do
    state := mix (!state + golden);
    let ks = Int64.logand (Int64.of_int !state) 0x7FFFFFFFFFFFFFFFL in
    Bytes.set_int64_le out !i
      (Int64.logxor (String.get_int64_le src (off + !i)) ks);
    i := !i + 8
  done;
  if !i < len then begin
    state := mix (!state + golden);
    let block = ref !state in
    while !i < len do
      Bytes.unsafe_set out !i
        (Char.unsafe_chr
           (Char.code (String.unsafe_get src (off + !i)) lxor (!block land 0xFF)));
      block := !block lsr 8;
      incr i
    done
  end;
  Bytes.unsafe_to_string out

(* hash(key | pn | header | data) without building the concatenation *)
let auth_hash key ~pn ~header data off len =
  let h = fold_string fnv_basis key in
  let h = fold_int (fold_byte h (Char.code '|')) pn in
  let h = fold_string (fold_byte h (Char.code '|')) header in
  let h = ref (fold_byte h (Char.code '|')) in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    h := (!h lxor Int64.to_int (String.get_int64_le data !i)) * fnv_prime;
    i := !i + 8
  done;
  while !i < stop do
    h := (!h lxor Char.code (String.unsafe_get data !i)) * fnv_prime;
    incr i
  done;
  mix !h

let auth_tag key ~pn ~header data =
  bytes_of_hash (auth_hash key ~pn ~header data 0 (String.length data))

let seal t level direction ~pn ~header plaintext =
  match slot t level with
  | None -> None
  | Some secrets ->
      let key = key_for secrets direction in
      let n = String.length plaintext in
      let out = Bytes.create (n + tag_length) in
      Bytes.blit_string (crypt key ~pn plaintext 0 n) 0 out 0 n;
      let tag = auth_hash key ~pn ~header plaintext 0 n in
      for i = 0 to tag_length - 1 do
        Bytes.unsafe_set out (n + i)
          (Char.unsafe_chr ((tag lsr (8 * (7 - i))) land 0xFF))
      done;
      Some (Bytes.unsafe_to_string out)

let open_ t level direction ~pn ~header sealed =
  match slot t level with
  | None -> None
  | Some secrets ->
      let n = String.length sealed in
      if n < tag_length then None
      else begin
        let key = key_for secrets direction in
        let body = n - tag_length in
        let plaintext = crypt key ~pn sealed 0 body in
        let tag = auth_hash key ~pn ~header plaintext 0 body in
        (* constant-shape tag comparison against the trailing bytes *)
        let ok = ref true in
        for i = 0 to tag_length - 1 do
          if
            Char.code (String.unsafe_get sealed (body + i))
            <> (tag lsr (8 * (7 - i))) land 0xFF
          then ok := false
        done;
        if !ok then Some plaintext else None
      end

let open_updated_application t direction ~pn ~header sealed =
  match t.application with
  | None -> None
  | Some secrets ->
      let next =
        { initial = None;
          handshake = None;
          application =
            Some { c2s = derive secrets.c2s "ku"; s2c = derive secrets.s2c "ku" };
          app_phase = t.app_phase + 1;
        }
      in
      open_ next Application_level direction ~pn ~header sealed

let stateless_reset_token ~dcid =
  derive ("srt:" ^ dcid) "token" ^ derive ("srt2:" ^ dcid) "token"
