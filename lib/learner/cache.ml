module Metrics = Prognosis_obs.Metrics

(* Compacted trie over interned symbol ids. Input and output symbols
   are interned once into dense int ids; the trie itself stores
   path-compressed edges — an [int array] of symbol ids with the
   matching output ids alongside — so a chain of single-child nodes
   costs one node and walking it is an int-array scan, not a hashtable
   probe per symbol. Children are kept sorted by first edge symbol id
   for cheap insertion; [dump] re-sorts siblings by the symbols
   themselves so the checkpoint order is canonical.

   [lookup] and [lookup_longest_prefix] never mutate the structure
   (unknown symbols are a miss, not an interning event), so concurrent
   read-only probes from the exec pool's worker domains are safe while
   inserts stay on the main domain — the same discipline the engine
   already follows. *)

type node = {
  path : int array; (* compressed edge into this subtree; immutable
                       once the node is reachable (see [split]) *)
  pouts : int array; (* output ids along the edge; same length *)
  mutable kids : node list; (* sorted by [path.(0)]; first ids distinct *)
}

type ('i, 'o) t = {
  sym_ids : ('i, int) Hashtbl.t;
  mutable syms : 'i array; (* id -> input symbol *)
  mutable n_syms : int;
  out_ids : ('o, int) Hashtbl.t;
  mutable outs : 'o array; (* id -> output symbol *)
  mutable n_outs : int;
  root : node;
  mutable prefixes : int; (* distinct cached non-empty prefixes *)
  mutable phys : int; (* physical (compacted) nodes, root included *)
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    sym_ids = Hashtbl.create 16;
    syms = [||];
    n_syms = 0;
    out_ids = Hashtbl.create 16;
    outs = [||];
    n_outs = 0;
    root = { path = [||]; pouts = [||]; kids = [] };
    prefixes = 0;
    phys = 1;
    hits = 0;
    misses = 0;
  }

let intern_sym t x =
  match Hashtbl.find_opt t.sym_ids x with
  | Some id -> id
  | None ->
      let id = t.n_syms in
      let cap = Array.length t.syms in
      if id >= cap then begin
        let a = Array.make (max 8 (2 * cap)) x in
        Array.blit t.syms 0 a 0 t.n_syms;
        t.syms <- a
      end;
      t.syms.(id) <- x;
      t.n_syms <- id + 1;
      Hashtbl.add t.sym_ids x id;
      id

let intern_out t o =
  match Hashtbl.find_opt t.out_ids o with
  | Some id -> id
  | None ->
      let id = t.n_outs in
      let cap = Array.length t.outs in
      if id >= cap then begin
        let a = Array.make (max 8 (2 * cap)) o in
        Array.blit t.outs 0 a 0 t.n_outs;
        t.outs <- a
      end;
      t.outs.(id) <- o;
      t.n_outs <- id + 1;
      Hashtbl.add t.out_ids o id;
      id

let conflict () =
  invalid_arg "Cache.insert: conflicting outputs (nondeterministic SUL?)"

let find_kid kids xi =
  let rec go = function
    | [] -> None
    | k :: rest -> if k.path.(0) = xi then Some k else go rest
  in
  go kids

let insert_sorted kid kids =
  let x = kid.path.(0) in
  let rec go = function
    | [] -> [ kid ]
    | k :: _ as l when x < k.path.(0) -> kid :: l
    | k :: rest -> k :: go rest
  in
  go kids

(* Split [kid]'s edge after its first [j] symbols. Mutation is
   publication-safe for lock-free concurrent readers ({!Sharded}): a
   reachable node's [path]/[pouts] arrays are never shrunk or
   overwritten in place. Instead a fresh head node (carrying the first
   [j] symbols, with a fresh tail inheriting the rest) replaces [kid]
   in [parent]'s child list with one pointer write, so a racing lookup
   sees either the old consistent node or the new consistent pair —
   never a half-mutated edge. *)
let split t parent kid j =
  let len = Array.length kid.path in
  let tail =
    {
      path = Array.sub kid.path j (len - j);
      pouts = Array.sub kid.pouts j (len - j);
      kids = kid.kids;
    }
  in
  let head =
    {
      path = Array.sub kid.path 0 j;
      pouts = Array.sub kid.pouts 0 j;
      kids = [ tail ];
    }
  in
  parent.kids <- List.map (fun k -> if k == kid then head else k) parent.kids;
  t.phys <- t.phys + 1;
  head

let insert t word outputs =
  if List.length word <> List.length outputs then
    invalid_arg "Cache.insert: word/outputs length mismatch";
  let fresh_leaf word outs =
    let ids = Array.of_list (List.map (intern_sym t) word) in
    let oids = Array.of_list (List.map (intern_out t) outs) in
    t.phys <- t.phys + 1;
    t.prefixes <- t.prefixes + Array.length ids;
    { path = ids; pouts = oids; kids = [] }
  in
  let rec at_node node word outs =
    match word with
    | [] -> ()
    | x :: _ -> (
        let xi = intern_sym t x in
        match find_kid node.kids xi with
        | None -> node.kids <- insert_sorted (fresh_leaf word outs) node.kids
        | Some kid -> in_edge node kid 0 word outs)
  and in_edge parent kid j word outs =
    if j = Array.length kid.path then at_node kid word outs
    else
      match (word, outs) with
      | [], [] -> ()
      | x :: word', o :: outs' ->
          let xi = intern_sym t x in
          if xi = kid.path.(j) then begin
            if intern_out t o <> kid.pouts.(j) then conflict ();
            in_edge parent kid (j + 1) word' outs'
          end
          else begin
            (* Diverges mid-edge: split, then branch off the head. *)
            let head = split t parent kid j in
            head.kids <- insert_sorted (fresh_leaf word outs) head.kids
          end
      | _ -> assert false
  in
  at_node t.root word outputs

let sym_id_opt t x = Hashtbl.find_opt t.sym_ids x

let lookup t word =
  let rec at_node node word acc =
    match word with
    | [] -> Some (List.rev acc)
    | x :: _ -> (
        match sym_id_opt t x with
        | None -> None
        | Some xi -> (
            match find_kid node.kids xi with
            | None -> None
            | Some kid -> in_edge kid 0 word acc))
  and in_edge kid j word acc =
    if j = Array.length kid.path then at_node kid word acc
    else
      match word with
      | [] -> Some (List.rev acc)
      | x :: word' -> (
          match sym_id_opt t x with
          | Some xi when xi = Array.unsafe_get kid.path j ->
              in_edge kid (j + 1) word' (t.outs.(Array.unsafe_get kid.pouts j) :: acc)
          | _ -> None)
  in
  at_node t.root word []

let lookup_longest_prefix t word =
  let stop acc_in acc_out =
    match acc_in with
    | [] -> None
    | _ -> Some (List.rev acc_in, List.rev acc_out)
  in
  let rec at_node node word acc_in acc_out =
    match word with
    | [] -> stop acc_in acc_out
    | x :: _ -> (
        match sym_id_opt t x with
        | None -> stop acc_in acc_out
        | Some xi -> (
            match find_kid node.kids xi with
            | None -> stop acc_in acc_out
            | Some kid -> in_edge kid 0 word acc_in acc_out))
  and in_edge kid j word acc_in acc_out =
    if j = Array.length kid.path then at_node kid word acc_in acc_out
    else
      match word with
      | [] -> stop acc_in acc_out
      | x :: word' -> (
          match sym_id_opt t x with
          | Some xi when xi = kid.path.(j) ->
              in_edge kid (j + 1) word' (x :: acc_in)
                (t.outs.(kid.pouts.(j)) :: acc_out)
          | _ -> stop acc_in acc_out)
  in
  at_node t.root word [] []

let size t = t.prefixes + 1
let compacted_nodes t = t.phys
let hits t = t.hits
let misses t = t.misses

(* Maximal cached words: the trie's leaves. Every inserted word is a
   prefix of some leaf word (insert fills outputs along the whole
   path), so re-inserting the leaves rebuilds the trie exactly.
   Children are sorted, so the order is deterministic for a given
   insertion history. *)
(* Canonical order: depth-first with siblings sorted by their actual
   first symbol, not its interned id — ids depend on insertion history,
   so sorting by id would make the dump of a restored cache differ from
   the dump it was restored from. With symbol-order DFS the dump is a
   function of the cached word set alone, and dump/restore round-trips
   byte-identically even for dumps written by the pre-compaction
   implementation in hash-table order. *)
let dump t =
  let acc = ref [] in
  let rec go node rev_in rev_out =
    match node.kids with
    | [] -> if rev_in <> [] then acc := (List.rev rev_in, List.rev rev_out) :: !acc
    | kids ->
        let kids =
          List.sort
            (fun a b -> compare t.syms.(a.path.(0)) t.syms.(b.path.(0)))
            kids
        in
        List.iter
          (fun k ->
            let ri = ref rev_in and ro = ref rev_out in
            for j = 0 to Array.length k.path - 1 do
              ri := t.syms.(k.path.(j)) :: !ri;
              ro := t.outs.(k.pouts.(j)) :: !ro
            done;
            go k !ri !ro)
          kids
  in
  go t.root [] [];
  List.rev !acc

let restore t words = List.iter (fun (w, outs) -> insert t w outs) words

let m_hits = Metrics.counter Metrics.default "cache.hits"
let m_misses = Metrics.counter Metrics.default "cache.misses"
let m_prefix_hits = Metrics.counter Metrics.default "cache.prefix_hits"
let m_prefix_symbols = Metrics.counter Metrics.default "cache.prefix_symbols"
let g_nodes = Metrics.gauge Metrics.default "cache.nodes"
let g_trie_nodes = Metrics.gauge Metrics.default "cache.trie.nodes"

let set_gauges t =
  Metrics.set g_nodes (float_of_int (size t));
  Metrics.set g_trie_nodes (float_of_int t.phys)

let rec split_at n l =
  if n = 0 then ([], l)
  else
    match l with
    | [] -> invalid_arg "Cache.split_at"
    | x :: rest ->
        let a, b = split_at (n - 1) rest in
        (x :: a, b)

let wrap t (mq : ('i, 'o) Oracle.membership) =
  (* On a miss the underlying oracle still replays the full word (a
     plain SUL cannot start mid-run), but when a cached word is a
     prefix of the query the cached per-step outputs stand in for the
     fresh prefix outputs: an engine-backed oracle uses the same cache
     to resume a worker mid-word, and the fresh/cached comparison
     preserves the nondeterminism detection [insert] would perform. *)
  let miss word =
    t.misses <- t.misses + 1;
    Metrics.inc m_misses;
    let answer =
      match lookup_longest_prefix t word with
      | None -> mq.ask word
      | Some (prefix, cached_outs) ->
          let k = List.length prefix in
          let fresh = mq.ask word in
          let fresh_prefix, fresh_suffix = split_at k fresh in
          if fresh_prefix <> cached_outs then
            invalid_arg
              "Cache.insert: conflicting outputs (nondeterministic SUL?)";
          Metrics.inc m_prefix_hits;
          Metrics.inc ~by:k m_prefix_symbols;
          cached_outs @ fresh_suffix
    in
    insert t word answer;
    set_gauges t;
    answer
  in
  let ask word =
    match lookup t word with
    | Some answer ->
        t.hits <- t.hits + 1;
        Metrics.inc m_hits;
        answer
    | None -> miss word
  in
  let ask_batch =
    Option.map
      (fun batch words ->
        (* Answer what the cache already knows, send only the misses
           down in one batch, then stitch answers back in order. The
           underlying batch may execute misses in any order, so cached
           answers for the hit words are resolved up front. *)
        let tagged =
          List.map
            (fun word ->
              match lookup t word with
              | Some answer ->
                  t.hits <- t.hits + 1;
                  Metrics.inc m_hits;
                  Either.Left answer
              | None ->
                  t.misses <- t.misses + 1;
                  Metrics.inc m_misses;
                  Either.Right word)
            words
        in
        let missing =
          List.filter_map
            (function Either.Right w -> Some w | Either.Left _ -> None)
            tagged
        in
        let answers =
          match missing with
          | [] -> []
          | _ ->
              let answers = batch missing in
              List.iter2 (insert t) missing answers;
              set_gauges t;
              answers
        in
        let rec stitch tagged answers =
          match (tagged, answers) with
          | [], [] -> []
          | Either.Left a :: rest, answers -> a :: stitch rest answers
          | Either.Right _ :: rest, a :: answers -> a :: stitch rest answers
          | _ -> invalid_arg "Cache.wrap: batch answer count mismatch"
        in
        stitch tagged answers)
      mq.Oracle.ask_batch
  in
  { mq with Oracle.ask; ask_batch }

(* --- Sharded facade -------------------------------------------------

   K independent tries, each guarded by a mutex taken only on insert,
   so fleet sessions on different domains can populate one shared
   membership cache. Lookups are optimistic and lock-free: each shard
   carries a seqlock-style generation counter (odd while an insert is
   in flight), and a lookup that overlaps a write on its shard discards
   the answer and retries under the shard mutex. Combined with the
   publication-safe [insert] above (reachable nodes are never mutated
   into inconsistent states), a racing reader can at worst observe a
   stale-but-consistent trie — and the generation check rejects even
   that before the answer escapes.

   Sharding is keyed by the word's first symbol (the root of the
   interning: per-shard interned ids depend on each shard's insertion
   history, so the stable equivalent of "hash of the first interned
   symbols" is a hash of the first symbol's value). Keying on the
   first symbol alone keeps every prefix of a word in the same shard,
   which [lookup_longest_prefix] and the canonical [dump] merge rely
   on. *)

module Sharded = struct
  type ('i, 'o) shard = {
    trie : ('i, 'o) t;
    lock : Mutex.t;
    gen : int Atomic.t; (* odd while an insert is in flight *)
    sh_hits : int Atomic.t;
    sh_misses : int Atomic.t;
    m_sh_hits : int ref; (* cache.shard.hits{shard=..} *)
    m_sh_misses : int ref;
    g_sh_nodes : float ref;
  }

  type nonrec ('i, 'o) t = { shards : ('i, 'o) shard array }

  let create ?(shards = 8) () =
    if shards < 1 then invalid_arg "Cache.Sharded.create: shards must be >= 1";
    let mk i =
      let l = [ ("shard", string_of_int i) ] in
      {
        trie = create ();
        lock = Mutex.create ();
        gen = Atomic.make 0;
        sh_hits = Atomic.make 0;
        sh_misses = Atomic.make 0;
        m_sh_hits = Metrics.counter_l Metrics.default "cache.shard.hits" l;
        m_sh_misses = Metrics.counter_l Metrics.default "cache.shard.misses" l;
        g_sh_nodes = Metrics.gauge_l Metrics.default "cache.shard.nodes" l;
      }
    in
    { shards = Array.init shards mk }

  let shards t = Array.length t.shards

  let shard_of t word =
    match word with
    | [] -> 0
    | x :: _ -> Hashtbl.hash x land max_int mod Array.length t.shards

  let shard t word = t.shards.(shard_of t word)

  let locked s f =
    Mutex.lock s.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

  let insert t word outs =
    let s = shard t word in
    locked s (fun () ->
        Atomic.incr s.gen;
        Fun.protect
          ~finally:(fun () -> Atomic.incr s.gen)
          (fun () -> insert s.trie word outs);
        Metrics.set s.g_sh_nodes (float_of_int (size s.trie)))

  (* Optimistic read: safe to run lock-free thanks to publication-safe
     inserts, but any overlap with a writer (generation moved, or odd
     at the start) voids the attempt — fall back to the mutex. *)
  let read s f =
    let g = Atomic.get s.gen in
    if g land 1 = 1 then locked s f
    else
      match f () with
      | v -> if Atomic.get s.gen = g then v else locked s f
      | exception _ -> locked s f

  let lookup t word =
    let s = shard t word in
    read s (fun () -> lookup s.trie word)

  let lookup_longest_prefix t word =
    let s = shard t word in
    read s (fun () -> lookup_longest_prefix s.trie word)

  let fold f t init =
    Array.fold_left (fun acc s -> f acc s) init t.shards

  (* [size] counts the root once across all shards, matching the
     unsharded accounting (each shard's [size] includes its root). *)
  let size t = fold (fun acc s -> acc + size s.trie - 1) t 1
  let compacted_nodes t = fold (fun acc s -> acc + compacted_nodes s.trie - 1) t 1
  let hits t = fold (fun acc s -> acc + Atomic.get s.sh_hits) t 0
  let misses t = fold (fun acc s -> acc + Atomic.get s.sh_misses) t 0

  (* The unsharded canonical dump is a symbol-sorted DFS, i.e. the
     maximal cached words in lexicographic symbol order; shards
     partition words by first symbol, so sorting the concatenation of
     the per-shard canonical dumps restores exactly that order —
     byte-identical to the dump of one trie holding every word. *)
  let dump t =
    Array.to_list t.shards
    |> List.concat_map (fun s -> dump s.trie)
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let restore t words = List.iter (fun (w, outs) -> insert t w outs) words

  let record_hit s =
    Atomic.incr s.sh_hits;
    Metrics.inc s.m_sh_hits;
    Metrics.inc m_hits

  let record_miss s =
    Atomic.incr s.sh_misses;
    Metrics.inc s.m_sh_misses;
    Metrics.inc m_misses

  let wrap t (mq : ('i, 'o) Oracle.membership) =
    (* Same contract as the unsharded {!wrap}: misses replay the full
       word on the underlying oracle, a cached prefix stands in for
       the fresh prefix outputs with the replay cross-checked for
       nondeterminism. Shared across sessions, so hit/miss tallies go
       through the shard atomics. *)
    let miss s word =
      record_miss s;
      let answer =
        match lookup_longest_prefix t word with
        | None -> mq.Oracle.ask word
        | Some (prefix, cached_outs) ->
            let k = List.length prefix in
            let fresh = mq.Oracle.ask word in
            let fresh_prefix, fresh_suffix = split_at k fresh in
            if fresh_prefix <> cached_outs then
              invalid_arg
                "Cache.insert: conflicting outputs (nondeterministic SUL?)";
            Metrics.inc m_prefix_hits;
            Metrics.inc ~by:k m_prefix_symbols;
            cached_outs @ fresh_suffix
      in
      insert t word answer;
      answer
    in
    let ask word =
      let s = shard t word in
      match lookup t word with
      | Some answer ->
          record_hit s;
          answer
      | None -> miss s word
    in
    let ask_batch =
      Option.map
        (fun batch words ->
          let tagged =
            List.map
              (fun word ->
                match lookup t word with
                | Some answer ->
                    record_hit (shard t word);
                    Either.Left answer
                | None ->
                    record_miss (shard t word);
                    Either.Right word)
              words
          in
          let missing =
            List.filter_map
              (function Either.Right w -> Some w | Either.Left _ -> None)
              tagged
          in
          let answers =
            match missing with
            | [] -> []
            | _ ->
                let answers = batch missing in
                List.iter2 (insert t) missing answers;
                answers
          in
          let rec stitch tagged answers =
            match (tagged, answers) with
            | [], [] -> []
            | Either.Left a :: rest, answers -> a :: stitch rest answers
            | Either.Right _ :: rest, a :: answers -> a :: stitch rest answers
            | _ -> invalid_arg "Cache.Sharded.wrap: batch answer count mismatch"
          in
          stitch tagged answers)
        mq.Oracle.ask_batch
    in
    { mq with Oracle.ask; ask_batch }
end
