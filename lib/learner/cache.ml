module Metrics = Prognosis_obs.Metrics

type ('i, 'o) node = {
  children : ('i, ('i, 'o) node) Hashtbl.t;
  mutable output : 'o option; (* output produced on the edge into this node *)
}

type ('i, 'o) t = {
  root : ('i, 'o) node;
  mutable nodes : int;
  mutable hits : int;
  mutable misses : int;
}

let fresh_node () = { children = Hashtbl.create 4; output = None }

let create () = { root = fresh_node (); nodes = 1; hits = 0; misses = 0 }

let insert t word outputs =
  if List.length word <> List.length outputs then
    invalid_arg "Cache.insert: word/outputs length mismatch";
  let rec go node word outputs =
    match (word, outputs) with
    | [], [] -> ()
    | x :: word', o :: outputs' ->
        let child =
          match Hashtbl.find_opt node.children x with
          | Some c ->
              (match c.output with
              | Some o' when o' <> o ->
                  invalid_arg "Cache.insert: conflicting outputs (nondeterministic SUL?)"
              | Some _ -> ()
              | None -> c.output <- Some o);
              c
          | None ->
              let c = fresh_node () in
              c.output <- Some o;
              Hashtbl.add node.children x c;
              t.nodes <- t.nodes + 1;
              c
        in
        go child word' outputs'
    | _ -> assert false
  in
  go t.root word outputs

let lookup t word =
  let rec go node word acc =
    match word with
    | [] -> Some (List.rev acc)
    | x :: word' -> (
        match Hashtbl.find_opt node.children x with
        | Some c -> (
            match c.output with Some o -> go c word' (o :: acc) | None -> None)
        | None -> None)
  in
  go t.root word []

let lookup_longest_prefix t word =
  let rec go node word acc_in acc_out =
    let stop () =
      match acc_in with
      | [] -> None
      | _ -> Some (List.rev acc_in, List.rev acc_out)
    in
    match word with
    | [] -> stop ()
    | x :: word' -> (
        match Hashtbl.find_opt node.children x with
        | Some c -> (
            match c.output with
            | Some o -> go c word' (x :: acc_in) (o :: acc_out)
            | None -> stop ())
        | None -> stop ())
  in
  go t.root word [] []

let size t = t.nodes
let hits t = t.hits
let misses t = t.misses

(* Maximal cached words: the trie's leaves. Every inserted word is a
   prefix of some leaf word (insert fills outputs along the whole
   path), so re-inserting the leaves rebuilds the trie exactly. *)
let dump t =
  let acc = ref [] in
  let rec go node rev_in rev_out =
    if Hashtbl.length node.children = 0 then begin
      if rev_in <> [] then acc := (List.rev rev_in, List.rev rev_out) :: !acc
    end
    else
      Hashtbl.iter
        (fun x c ->
          match c.output with
          | Some o -> go c (x :: rev_in) (o :: rev_out)
          | None -> ())
        node.children
  in
  go t.root [] [];
  !acc

let restore t words = List.iter (fun (w, outs) -> insert t w outs) words

let m_hits = Metrics.counter Metrics.default "cache.hits"
let m_misses = Metrics.counter Metrics.default "cache.misses"
let m_prefix_hits = Metrics.counter Metrics.default "cache.prefix_hits"
let m_prefix_symbols = Metrics.counter Metrics.default "cache.prefix_symbols"
let g_nodes = Metrics.gauge Metrics.default "cache.nodes"

let rec split_at n l =
  if n = 0 then ([], l)
  else
    match l with
    | [] -> invalid_arg "Cache.split_at"
    | x :: rest ->
        let a, b = split_at (n - 1) rest in
        (x :: a, b)

let wrap t (mq : ('i, 'o) Oracle.membership) =
  (* On a miss the underlying oracle still replays the full word (a
     plain SUL cannot start mid-run), but when a cached word is a
     prefix of the query the cached per-step outputs stand in for the
     fresh prefix outputs: an engine-backed oracle uses the same cache
     to resume a worker mid-word, and the fresh/cached comparison
     preserves the nondeterminism detection [insert] would perform. *)
  let miss word =
    t.misses <- t.misses + 1;
    Metrics.inc m_misses;
    let answer =
      match lookup_longest_prefix t word with
      | None -> mq.ask word
      | Some (prefix, cached_outs) ->
          let k = List.length prefix in
          let fresh = mq.ask word in
          let fresh_prefix, fresh_suffix = split_at k fresh in
          if fresh_prefix <> cached_outs then
            invalid_arg
              "Cache.insert: conflicting outputs (nondeterministic SUL?)";
          Metrics.inc m_prefix_hits;
          Metrics.inc ~by:k m_prefix_symbols;
          cached_outs @ fresh_suffix
    in
    insert t word answer;
    Metrics.set g_nodes (float_of_int t.nodes);
    answer
  in
  let ask word =
    match lookup t word with
    | Some answer ->
        t.hits <- t.hits + 1;
        Metrics.inc m_hits;
        answer
    | None -> miss word
  in
  let ask_batch =
    Option.map
      (fun batch words ->
        (* Answer what the cache already knows, send only the misses
           down in one batch, then stitch answers back in order. The
           underlying batch may execute misses in any order, so cached
           answers for the hit words are resolved up front. *)
        let tagged =
          List.map
            (fun word ->
              match lookup t word with
              | Some answer ->
                  t.hits <- t.hits + 1;
                  Metrics.inc m_hits;
                  Either.Left answer
              | None ->
                  t.misses <- t.misses + 1;
                  Metrics.inc m_misses;
                  Either.Right word)
            words
        in
        let missing =
          List.filter_map
            (function Either.Right w -> Some w | Either.Left _ -> None)
            tagged
        in
        let answers =
          match missing with
          | [] -> []
          | _ ->
              let answers = batch missing in
              List.iter2 (insert t) missing answers;
              Metrics.set g_nodes (float_of_int t.nodes);
              answers
        in
        let rec stitch tagged answers =
          match (tagged, answers) with
          | [], [] -> []
          | Either.Left a :: rest, answers -> a :: stitch rest answers
          | Either.Right _ :: rest, a :: answers -> a :: stitch rest answers
          | _ -> invalid_arg "Cache.wrap: batch answer count mismatch"
        in
        stitch tagged answers)
      mq.Oracle.ask_batch
  in
  { mq with Oracle.ask; ask_batch }
