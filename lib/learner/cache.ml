module Metrics = Prognosis_obs.Metrics

type ('i, 'o) node = {
  children : ('i, ('i, 'o) node) Hashtbl.t;
  mutable output : 'o option; (* output produced on the edge into this node *)
}

type ('i, 'o) t = {
  root : ('i, 'o) node;
  mutable nodes : int;
  mutable hits : int;
  mutable misses : int;
}

let fresh_node () = { children = Hashtbl.create 4; output = None }

let create () = { root = fresh_node (); nodes = 1; hits = 0; misses = 0 }

let insert t word outputs =
  if List.length word <> List.length outputs then
    invalid_arg "Cache.insert: word/outputs length mismatch";
  let rec go node word outputs =
    match (word, outputs) with
    | [], [] -> ()
    | x :: word', o :: outputs' ->
        let child =
          match Hashtbl.find_opt node.children x with
          | Some c ->
              (match c.output with
              | Some o' when o' <> o ->
                  invalid_arg "Cache.insert: conflicting outputs (nondeterministic SUL?)"
              | Some _ -> ()
              | None -> c.output <- Some o);
              c
          | None ->
              let c = fresh_node () in
              c.output <- Some o;
              Hashtbl.add node.children x c;
              t.nodes <- t.nodes + 1;
              c
        in
        go child word' outputs'
    | _ -> assert false
  in
  go t.root word outputs

let lookup t word =
  let rec go node word acc =
    match word with
    | [] -> Some (List.rev acc)
    | x :: word' -> (
        match Hashtbl.find_opt node.children x with
        | Some c -> (
            match c.output with Some o -> go c word' (o :: acc) | None -> None)
        | None -> None)
  in
  go t.root word []

let size t = t.nodes
let hits t = t.hits
let misses t = t.misses

let m_hits = Metrics.counter Metrics.default "cache.hits"
let m_misses = Metrics.counter Metrics.default "cache.misses"
let g_nodes = Metrics.gauge Metrics.default "cache.nodes"

let wrap t (mq : ('i, 'o) Oracle.membership) =
  let ask word =
    match lookup t word with
    | Some answer ->
        t.hits <- t.hits + 1;
        Metrics.inc m_hits;
        answer
    | None ->
        t.misses <- t.misses + 1;
        Metrics.inc m_misses;
        let answer = mq.ask word in
        insert t word answer;
        Metrics.set g_nodes (float_of_int t.nodes);
        answer
  in
  { mq with Oracle.ask }
