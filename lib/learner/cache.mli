(** Prefix-tree membership-query cache.

    Learner algorithms ask many overlapping queries; because the SUL is
    reset before each query, the answer to any prefix of a cached word
    is also known. The cache stores full observed words in a trie and
    answers any query that is a prefix of a previously executed one
    without touching the SUL.

    Internally the trie is compacted: input and output symbols are
    interned into dense int ids and chains of single-child nodes are
    collapsed into path-compressed edges, so lookups scan int arrays
    instead of probing a hashtable per symbol. {!lookup} and
    {!lookup_longest_prefix} never mutate the structure, so read-only
    probes from the exec pool's worker domains are safe while inserts
    stay on the main domain. *)

type ('i, 'o) t

val create : unit -> ('i, 'o) t

val insert : ('i, 'o) t -> 'i list -> 'o list -> unit
(** Records an executed query and its answer. Conflicting outputs for
    an already-cached prefix raise [Invalid_argument] — that situation
    means the SUL answered nondeterministically. *)

val lookup : ('i, 'o) t -> 'i list -> 'o list option

val lookup_longest_prefix : ('i, 'o) t -> 'i list -> ('i list * 'o list) option
(** [lookup_longest_prefix t word] is [Some (prefix, outputs)] for the
    longest non-empty prefix of [word] the cache can answer, or [None]
    when not even the first symbol is cached. A partial replay can
    resume from [prefix] instead of restarting: only the un-cached
    suffix still needs live execution. *)

val size : ('i, 'o) t -> int
(** Number of logical trie nodes — one per distinct cached non-empty
    prefix, plus the root (an upper bound on distinct cached symbols).
    Unchanged by path compression. *)

val compacted_nodes : ('i, 'o) t -> int
(** Number of physical nodes after path compression, root included
    (exported as the [cache.trie.nodes] gauge). Always ≤ {!size}. *)

val hits : ('i, 'o) t -> int
val misses : ('i, 'o) t -> int

val dump : ('i, 'o) t -> ('i list * 'o list) list
(** The maximal cached words with their outputs — enough to rebuild the
    whole trie with {!restore}, since every cached word is a prefix of
    a maximal one. Order is canonical: depth-first, siblings sorted by
    symbol (polymorphic compare), independent of insertion history —
    so [dump]→[restore]→[dump] round-trips byte-identically, including
    for dumps produced by the pre-compaction implementation, whose
    entry type is unchanged but whose hash-table order was arbitrary. *)

val restore : ('i, 'o) t -> ('i list * 'o list) list -> unit
(** Re-inserts a {!dump}. Restored entries do not count as hits or
    misses; conflicting outputs raise like {!insert}. *)

val wrap : ('i, 'o) t -> ('i, 'o) Oracle.membership -> ('i, 'o) Oracle.membership
(** Caching view of a membership oracle: only cache misses reach the
    underlying oracle (and are counted in its statistics). When a
    cached word is a prefix of a missing query, the cached per-step
    outputs are reused for the prefix and compared against the fresh
    replay — a mismatch raises the same [Invalid_argument] as a
    conflicting {!insert} (nondeterministic SUL). If the underlying
    oracle supports [ask_batch], so does the wrapped one: cached words
    are answered up front and only the misses are batched down. *)

(** Concurrent sharded facade over K independent tries, for fleet
    sessions that populate one shared membership cache from several
    domains ({!Prognosis_service}).

    Words are partitioned by a hash of the first symbol's value (the
    stable stand-in for its per-shard interned id, which depends on
    insertion history), so every prefix of a word lands in the same
    shard. Each shard's mutex is taken only on insert; lookups run
    lock-free and optimistic — a shard-level generation counter
    detects an overlapping insert, in which case the answer is
    discarded and the probe retried under the mutex. The per-shard
    [cache.shard.{hits,misses,nodes}{shard=..}] labelled metrics land
    in {!Prognosis_obs.Metrics.default}. *)
module Sharded : sig
  type ('i, 'o) t

  val create : ?shards:int -> unit -> ('i, 'o) t
  (** [shards] defaults to 8. @raise Invalid_argument when < 1. *)

  val shards : ('i, 'o) t -> int

  val shard_of : ('i, 'o) t -> 'i list -> int
  (** Which shard holds a word (deterministic; [0] for the empty
      word). Exposed for tests and shard-balance diagnostics. *)

  val insert : ('i, 'o) t -> 'i list -> 'o list -> unit
  (** Like the unsharded {!Cache.insert}, serialized per shard.
      Conflicting outputs raise [Invalid_argument]. *)

  val lookup : ('i, 'o) t -> 'i list -> 'o list option
  val lookup_longest_prefix : ('i, 'o) t -> 'i list -> ('i list * 'o list) option

  val size : ('i, 'o) t -> int
  val compacted_nodes : ('i, 'o) t -> int

  val hits : ('i, 'o) t -> int
  (** Aggregate {!wrap} hits across shards (exact: shard tallies are
      atomic). *)

  val misses : ('i, 'o) t -> int

  val dump : ('i, 'o) t -> ('i list * 'o list) list
  (** Canonical merged dump, byte-identical to the unsharded
      {!Cache.dump} of one trie holding the same words: per-shard
      canonical dumps merged back into global lexicographic symbol
      order. Safe only while no insert is in flight. *)

  val restore : ('i, 'o) t -> ('i list * 'o list) list -> unit

  val wrap :
    ('i, 'o) t -> ('i, 'o) Oracle.membership -> ('i, 'o) Oracle.membership
  (** Shared caching view, same contract as the unsharded
      {!Cache.wrap}. Multiple sessions may hold wrapped oracles over
      the same sharded cache concurrently — that is the point. *)
end
