(** Heuristic equivalence oracles (paper §4.1).

    True equivalence queries would require an omniscient oracle, so
    hypotheses are tested: a returned counterexample is always genuine,
    while "no counterexample" only means none was found by the chosen
    test strategy.

    When the membership oracle advertises [ask_batch] (see
    {!Oracle.membership}), suite-driven oracles execute their words in
    chunks through it — the engine behind the batch shares resets
    across prefix-related words — and still return the first
    counterexample in suite order. With a plain oracle the behaviour
    is exactly the historical word-at-a-time fold. *)

val random_words :
  rng:Prognosis_sul.Rng.t ->
  max_tests:int ->
  min_len:int ->
  max_len:int ->
  ('i, 'o) Oracle.equivalence
(** Uniformly random input words of length in [min_len, max_len]. *)

val random_walk :
  rng:Prognosis_sul.Rng.t ->
  max_tests:int ->
  stop_prob:float ->
  ('i, 'o) Oracle.equivalence
(** Random words with geometrically distributed length: after each
    symbol the walk stops with probability [stop_prob]. *)

val w_method : ?extra_states:int -> unit -> ('i, 'o) Oracle.equivalence
(** Conformance testing with the W-method suite generated from the
    hypothesis (guarantees correctness when the SUL has at most
    [states(hypothesis) + extra_states] states). *)

val wp_method : ?extra_states:int -> unit -> ('i, 'o) Oracle.equivalence
(** Like {!w_method} with the smaller Wp suite. *)

val fixed_words : 'i list list -> ('i, 'o) Oracle.equivalence
(** Tests a fixed scenario list (e.g. the protocol's happy paths).
    Deep sequential behaviour — a DTLS handshake needs five correct
    symbols in a row — is practically unreachable by random testing;
    seeding the equivalence oracle with domain scenarios is how
    reference-implementation test suites (QUIC-Tracker) guide
    exploration. Combine with {!w_method} so the conformance suite
    still covers the rest. *)

val exhaustive : max_len:int -> ('i, 'o) Oracle.equivalence
(** Every input word up to [max_len] (exponential; only for tiny
    alphabets/depths). *)

val against : ('i, 'o) Prognosis_automata.Mealy.t -> ('i, 'o) Oracle.equivalence
(** Perfect oracle for a known target machine; used in tests. Compares
    the hypothesis against the target by product construction; no
    membership queries are spent. *)

val combine : ('i, 'o) Oracle.equivalence list -> ('i, 'o) Oracle.equivalence
(** Tries oracles in order, returning the first counterexample. *)

val shrink : ('i, 'o) Oracle.membership -> ('i, 'o) Prognosis_automata.Mealy.t ->
  'i list -> 'i list
(** Greedily removes symbols from a counterexample while it still
    distinguishes SUL and hypothesis; shorter counterexamples cost
    fewer queries during refinement. *)
