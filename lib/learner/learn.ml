module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace
module Jsonx = Prognosis_obs.Jsonx

let src = Logs.Src.create "prognosis.learn" ~doc:"Learning driver"

module Log = (val Logs.src_log src : Logs.LOG)

type algorithm = L_star | Ttt_tree

type ('i, 'o) result = {
  model : ('i, 'o) Prognosis_automata.Mealy.t;
  rounds : int;
  stats : Oracle.stats;
  cache_hits : int;
  cache_misses : int;
}

let algorithm_label = function L_star -> "lstar" | Ttt_tree -> "ttt"

let g_hit_rate = Metrics.gauge Metrics.default "learn.cache_hit_rate"

let dispatch algorithm ?max_rounds ?on_round ~inputs ~mq ~eq () =
  match algorithm with
  | L_star -> Lstar.learn ?max_rounds ?on_round ~inputs ~mq ~eq ()
  | Ttt_tree -> Ttt.learn ?max_rounds ?on_round ~inputs ~mq ~eq ()

let log_result name (model : ('i, 'o) Prognosis_automata.Mealy.t) rounds
    (stats : Oracle.stats) =
  Log.info (fun m ->
      m "%s: %d states, %d transitions, %d membership queries, %d rounds" name
        (Prognosis_automata.Mealy.size model)
        (Prognosis_automata.Mealy.transitions model)
        stats.Oracle.membership_queries rounds)

let learn_span ~algorithm ~subject ~cache f =
  Trace.with_span
    ~attrs:
      [
        ("algorithm", Jsonx.String (algorithm_label algorithm));
        ("subject", Jsonx.String subject);
        ("cache", Jsonx.Bool cache);
      ]
    "learn" f

let finish_span (r : ('i, 'o) result) =
  Trace.add_attr "states"
    (Jsonx.Int (Prognosis_automata.Mealy.size r.model));
  Trace.add_attr "rounds" (Jsonx.Int r.rounds);
  Trace.add_attr "membership_queries"
    (Jsonx.Int r.stats.Oracle.membership_queries);
  Trace.add_attr "cache_hits" (Jsonx.Int r.cache_hits);
  r

(* With a checkpoint session the membership path gains the session's
   snapshot-or-abort check after every answer, and round boundaries
   flush pending material; [finish] leaves a snapshot of the completed
   run behind (a post-success [resume] is then a pure cache replay). *)
let ckpt_wrap checkpoint mq =
  match checkpoint with Some ck -> Checkpoint.instrument ck mq | None -> mq

let ckpt_on_round checkpoint =
  Option.map (fun ck -> Checkpoint.on_round ck) checkpoint

let ckpt_finish checkpoint = Option.iter Checkpoint.finish checkpoint

let run_mq ?(algorithm = Ttt_tree) ?max_rounds ?cache_stats ?checkpoint ~inputs
    ~mq ~eq () =
  let cached = Option.is_some cache_stats in
  learn_span ~algorithm ~subject:"mq" ~cache:cached (fun () ->
      let model, rounds =
        dispatch algorithm ?max_rounds
          ?on_round:(ckpt_on_round checkpoint)
          ~inputs
          ~mq:(ckpt_wrap checkpoint mq)
          ~eq ()
      in
      ckpt_finish checkpoint;
      log_result "run_mq" model rounds mq.Oracle.stats;
      let hits, misses =
        match cache_stats with Some f -> f () | None -> (0, 0)
      in
      if hits + misses > 0 then
        Metrics.set g_hit_rate
          (float_of_int hits /. float_of_int (hits + misses));
      finish_span
        {
          model;
          rounds;
          stats = mq.Oracle.stats;
          cache_hits = hits;
          cache_misses = misses;
        })

let run ?(algorithm = Ttt_tree) ?max_rounds ?(cache = true) ?checkpoint ~inputs
    ~sul ~eq () =
  let subject = sul.Prognosis_sul.Sul.description in
  let cache = cache || Option.is_some checkpoint in
  learn_span ~algorithm ~subject ~cache (fun () ->
      let raw = Oracle.of_sul sul in
      if cache then begin
        let c =
          match checkpoint with
          | Some ck -> Checkpoint.cache ck
          | None -> Cache.create ()
        in
        let mq = ckpt_wrap checkpoint (Cache.wrap c raw) in
        let model, rounds =
          dispatch algorithm ?max_rounds
            ?on_round:(ckpt_on_round checkpoint)
            ~inputs ~mq ~eq ()
        in
        ckpt_finish checkpoint;
        log_result subject model rounds raw.Oracle.stats;
        (* The cache is the single gate in front of the SUL: the raw
           oracle only ever answers cache misses, so the two counts
           must agree — a violation means some layer double-counted or
           bypassed the cache (see docs/OBSERVABILITY.md). *)
        assert (raw.Oracle.stats.Oracle.membership_queries = Cache.misses c);
        let hits = Cache.hits c and misses = Cache.misses c in
        if hits + misses > 0 then
          Metrics.set g_hit_rate
            (float_of_int hits /. float_of_int (hits + misses));
        finish_span
          {
            model;
            rounds;
            stats = raw.Oracle.stats;
            cache_hits = hits;
            cache_misses = misses;
          }
      end
      else begin
        let model, rounds =
          dispatch algorithm ?max_rounds ~inputs ~mq:raw ~eq ()
        in
        finish_span
          {
            model;
            rounds;
            stats = raw.Oracle.stats;
            cache_hits = 0;
            cache_misses = 0;
          }
      end)
