(** TTT-style discrimination-tree learning for Mealy machines
    (the paper's learning algorithm, §4.2; Isberner, Howar & Steffen).

    States are leaves of a discrimination tree whose internal nodes are
    labelled with suffix words (discriminators); a state's transitions
    are found by sifting its one-symbol extensions through the tree.
    Counterexamples are decomposed with Rivest–Schapire binary search,
    which both bounds the number of membership queries logarithmically
    in the counterexample length and keeps discriminators short — the
    property that gives TTT its redundancy-free tree. The third T
    (discriminator finalization against the spanning tree) is not
    implemented; suffix minimality is approximated by the
    binary-search decomposition, which in practice yields the same
    compact trees on the protocol alphabets used here. *)

type ('i, 'o) state

val create : inputs:'i array -> ('i, 'o) Oracle.membership -> ('i, 'o) state
val hypothesis : ('i, 'o) state -> ('i, 'o) Prognosis_automata.Mealy.t

val refine : ('i, 'o) state -> 'i list -> bool
(** Processes a counterexample; returns false when the word did not
    actually distinguish the SUL from the hypothesis (stale
    counterexample), true when a state was split. *)

val leaves : ('i, 'o) state -> int
(** Current number of discrimination-tree leaves (= hypothesis states). *)

val learn :
  ?max_rounds:int ->
  ?on_round:(round:int -> states:int -> unit) ->
  inputs:'i array ->
  mq:('i, 'o) Oracle.membership ->
  eq:('i, 'o) Oracle.equivalence ->
  unit ->
  ('i, 'o) Prognosis_automata.Mealy.t * int
(** Full learning loop; returns the final hypothesis and the number of
    equivalence rounds. [on_round] fires after each hypothesis is
    built, before its equivalence query — the stable point where
    {!Checkpoint} snapshots a run.
    @raise Failure if [max_rounds] (default 200) is exceeded. *)
