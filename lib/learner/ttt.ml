module Mealy = Prognosis_automata.Mealy
module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace
module Jsonx = Prognosis_obs.Jsonx

(* Same registry entries as Lstar: [Metrics.counter] is get-or-create,
   so both algorithms report into one set of learner metrics. *)
let m_rounds = Metrics.counter Metrics.default "learner.rounds"
let m_cex = Metrics.counter Metrics.default "learner.counterexamples"
let h_cex_len = Metrics.histogram Metrics.default "learner.cex_length"

type ('i, 'o) cell = { mutable contents : ('i, 'o) contents }

and ('i, 'o) contents =
  | Leaf of ('i, 'o) leaf
  | Node of ('i, 'o) node

and ('i, 'o) leaf = { access : 'i list; id : int }

and ('i, 'o) node = {
  discriminator : 'i list;
  mutable children : ('o list * ('i, 'o) cell) list;
}

type ('i, 'o) state = {
  inputs : 'i array;
  mq : ('i, 'o) Oracle.membership;
  root : ('i, 'o) cell;
  mutable next_id : int;
  cells : (int, ('i, 'o) cell) Hashtbl.t; (* leaf id -> enclosing cell *)
  accesses : (int, 'i list) Hashtbl.t;
}

let create ~inputs mq =
  if Array.length inputs = 0 then invalid_arg "Ttt.create: empty alphabet";
  let leaf = { access = []; id = 0 } in
  let root = { contents = Leaf leaf } in
  let cells = Hashtbl.create 16 in
  let accesses = Hashtbl.create 16 in
  Hashtbl.add cells 0 root;
  Hashtbl.add accesses 0 [];
  { inputs; mq; root; next_id = 1; cells; accesses }

let leaves t = t.next_id

(* Outputs produced for the suffix [v] when running u·v from the
   initial state. *)
let suffix_output t u v =
  let answer = t.mq.Oracle.ask (u @ v) in
  let n = List.length answer and k = List.length v in
  List.filteri (fun i _ -> i >= n - k) answer

let fresh_leaf t access =
  let leaf = { access; id = t.next_id } in
  t.next_id <- t.next_id + 1;
  Hashtbl.add t.accesses leaf.id access;
  leaf

(* Sift an access word down the tree to the leaf representing its
   SUL state, extending the tree with a fresh leaf when the word
   exhibits a new combination of discriminator outputs. *)
let rec sift t cell u =
  match cell.contents with
  | Leaf l -> l
  | Node n -> (
      let out = suffix_output t u n.discriminator in
      match List.assoc_opt out n.children with
      | Some child -> sift t child u
      | None ->
          let leaf = fresh_leaf t u in
          let child = { contents = Leaf leaf } in
          n.children <- (out, child) :: n.children;
          Hashtbl.add t.cells leaf.id child;
          leaf)

let hypothesis t =
  let n = Array.length t.inputs in
  let transitions : (int, int array * 'o array) Hashtbl.t = Hashtbl.create 16 in
  let pending = Queue.create () in
  let initial = (sift t t.root []).id in
  Queue.add initial pending;
  let enqueued = Hashtbl.create 16 in
  Hashtbl.add enqueued initial ();
  while not (Queue.is_empty pending) do
    let q = Queue.pop pending in
    if not (Hashtbl.mem transitions q) then begin
      let u = Hashtbl.find t.accesses q in
      let targets = Array.make n 0 in
      let outputs =
        Array.init n (fun i ->
            match suffix_output t u [ t.inputs.(i) ] with
            | [ o ] -> o
            | _ -> assert false)
      in
      for i = 0 to n - 1 do
        let target = (sift t t.root (u @ [ t.inputs.(i) ])).id in
        targets.(i) <- target;
        if not (Hashtbl.mem enqueued target) then begin
          Hashtbl.add enqueued target ();
          Queue.add target pending
        end
      done;
      Hashtbl.replace transitions q (targets, outputs)
    end
  done;
  (* Leaf ids are dense but possibly include leaves unreachable in the
     current hypothesis; renumber the reachable ones. *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) transitions [] in
  let ids = Array.of_list (List.sort compare ids) in
  let renumber = Hashtbl.create 16 in
  Array.iteri (fun idx id -> Hashtbl.add renumber id idx) ids;
  let size = Array.length ids in
  let delta = Array.init size (fun _ -> Array.make n 0) in
  let first_outputs = snd (Hashtbl.find transitions ids.(0)) in
  let lambda = Array.init size (fun _ -> Array.make n first_outputs.(0)) in
  Array.iteri
    (fun idx id ->
      let targets, outputs = Hashtbl.find transitions id in
      for i = 0 to n - 1 do
        delta.(idx).(i) <- Hashtbl.find renumber targets.(i);
        lambda.(idx).(i) <- outputs.(i)
      done)
    ids;
  let machine =
    Mealy.make ~size ~initial:(Hashtbl.find renumber initial) ~inputs:t.inputs
      ~delta ~lambda
  in
  (machine, fun state_idx -> Hashtbl.find t.accesses ids.(state_idx))

let take k l = List.filteri (fun i _ -> i < k) l
let drop k l = List.filteri (fun i _ -> i >= k) l

(* Recover the leaf id carrying a given access word. *)
let find_leaf_id t access =
  let found = ref (-1) in
  Hashtbl.iter (fun id a -> if a = access then found := id) t.accesses;
  assert (!found >= 0);
  !found

let refine t cex =
  let h, access_of = hypothesis t in
  let sul_out = t.mq.Oracle.ask cex in
  let hyp_out = Mealy.run h cex in
  if sul_out = hyp_out then false
  else begin
    let n = List.length cex in
    (* phi i = hypothesis outputs on cex[:i] followed by the SUL's
       outputs for cex[i:] after replaying the access word of the
       hypothesis state reached on cex[:i]. phi 0 <> phi n, and any
       adjacent disagreement yields a state to split. *)
    let memo = Hashtbl.create 8 in
    let phi i =
      match Hashtbl.find_opt memo i with
      | Some v -> v
      | None ->
          let prefix = take i cex and suffix = drop i cex in
          let state = Mealy.state_after h prefix in
          let v =
            Mealy.run h prefix @ suffix_output t (access_of state) suffix
          in
          Hashtbl.add memo i v;
          v
    in
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if phi mid <> phi !hi then lo := mid else hi := mid
    done;
    let i = !lo in
    let u = take i cex and rest = drop i cex in
    match rest with
    | [] -> false
    | a :: v ->
        if v = [] then false
        else begin
          let q_i = Mealy.state_after h u in
          let q' = fst (Mealy.step h q_i a) in
          let old_access = access_of q' in
          let new_access = access_of q_i @ [ a ] in
          let out_old = suffix_output t old_access v in
          let out_new = suffix_output t new_access v in
          if out_old = out_new then false
          else begin
            (* Split the leaf of q': its cell becomes an inner node
               discriminating with v between the old and the new state. *)
            let old_leaf =
              match (Hashtbl.find t.cells (find_leaf_id t old_access)).contents with
              | Leaf l -> l
              | Node _ -> assert false
            in
            let new_leaf = fresh_leaf t new_access in
            let cell = Hashtbl.find t.cells old_leaf.id in
            let old_cell = { contents = Leaf old_leaf } in
            let new_cell = { contents = Leaf new_leaf } in
            cell.contents <-
              Node
                {
                  discriminator = v;
                  children = [ (out_old, old_cell); (out_new, new_cell) ];
                };
            Hashtbl.replace t.cells old_leaf.id old_cell;
            Hashtbl.replace t.cells new_leaf.id new_cell;
            true
          end
        end
  end

let hypothesis t = fst (hypothesis t)

let learn ?(max_rounds = 200) ?(on_round = fun ~round:_ ~states:_ -> ()) ~inputs
    ~mq ~eq () =
  let t = create ~inputs mq in
  let rec loop round =
    if round > max_rounds then failwith "Ttt.learn: max_rounds exceeded";
    Metrics.inc m_rounds;
    let h, cex =
      Trace.with_span
        ~attrs:
          [
            ("algorithm", Jsonx.String "ttt");
            ("round", Jsonx.Int round);
            ("phase", Jsonx.String "learning");
          ]
        "learner.round"
        (fun () ->
          let h =
            Trace.with_span "learner.hypothesis" (fun () -> hypothesis t)
          in
          Trace.add_attr "hypothesis_states" (Jsonx.Int (Mealy.size h));
          Trace.add_attr "tree_leaves" (Jsonx.Int (leaves t));
          on_round ~round ~states:(Mealy.size h);
          mq.Oracle.stats.equivalence_queries <-
            mq.Oracle.stats.equivalence_queries + 1;
          let cex =
            Trace.with_span
              ~attrs:[ ("phase", Jsonx.String "eq-oracle") ]
              "learner.eq_query"
              (fun () -> eq mq h)
          in
          (h, cex))
    in
    match cex with
    | None -> (h, round)
    | Some cex ->
        Metrics.inc m_cex;
        Metrics.observe h_cex_len (float_of_int (List.length cex));
        let usable =
          Trace.with_span
            ~attrs:[ ("cex_len", Jsonx.Int (List.length cex)) ]
            "learner.refine"
            (fun () -> refine t cex)
        in
        if usable then loop (round + 1)
        else failwith "Ttt.learn: unusable counterexample (nondeterministic SUL?)"
  in
  loop 1
