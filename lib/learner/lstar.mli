(** Angluin-style L* for Mealy machines.

    Classic observation-table learning [Angluin 1987] adapted to Mealy
    machines: rows are access words, columns are suffixes (initialized
    to the single-symbol words so the output function is always
    defined), and counterexamples are handled by adding all their
    suffixes to the column set [Shahbaz & Groz 2009], which keeps the
    column set suffix-closed and the table automatically consistent.

    Kept alongside {!Ttt} both as a baseline (the paper's learning
    library, LearnLib, ships both) and as a cross-check in tests: both
    learners must converge to the same minimal machine. *)

type ('i, 'o) state
(** A learning run in progress (exposed for inspection in tests). *)

val create : inputs:'i array -> ('i, 'o) Oracle.membership -> ('i, 'o) state

val hypothesis : ('i, 'o) state -> ('i, 'o) Prognosis_automata.Mealy.t
(** Closes the table if needed and builds the current hypothesis. *)

val refine : ('i, 'o) state -> 'i list -> unit
(** Processes a counterexample word (a word on which the SUL and the
    current hypothesis disagree). *)

val rows : ('i, 'o) state -> int
val columns : ('i, 'o) state -> int

val learn :
  ?max_rounds:int ->
  ?on_round:(round:int -> states:int -> unit) ->
  inputs:'i array ->
  mq:('i, 'o) Oracle.membership ->
  eq:('i, 'o) Oracle.equivalence ->
  unit ->
  ('i, 'o) Prognosis_automata.Mealy.t * int
(** Full learning loop; returns the final hypothesis and the number of
    equivalence rounds used. [on_round] fires after each hypothesis is
    built, before its equivalence query — the stable point where
    {!Checkpoint} snapshots a run.
    @raise Failure if [max_rounds] (default 100) is exceeded. *)
