module Mealy = Prognosis_automata.Mealy
module Testing = Prognosis_automata.Testing
module Rng = Prognosis_sul.Rng
module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace

let m_test_words = Metrics.counter Metrics.default "eq.test_words"
let m_counterexamples = Metrics.counter Metrics.default "eq.counterexamples"

let check_word (mq : ('i, 'o) Oracle.membership) h word =
  if word = [] then None
  else begin
    mq.Oracle.stats.test_words <- mq.Oracle.stats.test_words + 1;
    Metrics.inc m_test_words;
    let sul_out = mq.ask word in
    let hyp_out = Mealy.run h word in
    if sul_out <> hyp_out then begin
      Metrics.inc m_counterexamples;
      if Trace.enabled () then
        Trace.event
          ~attrs:[ ("len", Prognosis_obs.Jsonx.Int (List.length word)) ]
          "eq.counterexample";
      Some word
    end
    else None
  end

let check_suite mq h suite =
  List.fold_left
    (fun acc word -> match acc with Some _ -> acc | None -> check_word mq h word)
    None suite

let random_word rng inputs len =
  List.init len (fun _ -> inputs.(Rng.int rng (Array.length inputs)))

let random_words ~rng ~max_tests ~min_len ~max_len mq h =
  let inputs = Mealy.inputs h in
  let rec loop k =
    if k = 0 then None
    else
      let len = min_len + Rng.int rng (max_len - min_len + 1) in
      match check_word mq h (random_word rng inputs len) with
      | Some cex -> Some cex
      | None -> loop (k - 1)
  in
  loop max_tests

let random_walk ~rng ~max_tests ~stop_prob mq h =
  let inputs = Mealy.inputs h in
  let rec draw acc =
    let acc = inputs.(Rng.int rng (Array.length inputs)) :: acc in
    if Rng.bool rng stop_prob then List.rev acc else draw acc
  in
  let rec loop k =
    if k = 0 then None
    else
      match check_word mq h (draw []) with
      | Some cex -> Some cex
      | None -> loop (k - 1)
  in
  loop max_tests

let w_method ?(extra_states = 0) () mq h =
  check_suite mq h (Testing.w_method ~extra_states h)

let wp_method ?(extra_states = 0) () mq h =
  check_suite mq h (Testing.wp_method ~extra_states h)

let fixed_words words mq h = check_suite mq h words

let exhaustive ~max_len mq h =
  let words = Testing.middle_words (Mealy.inputs h) max_len in
  check_suite mq h words

let against target _mq h = Mealy.equivalent target h

let combine oracles mq h =
  List.fold_left
    (fun acc oracle -> match acc with Some _ -> acc | None -> oracle mq h)
    None oracles

let shrink (mq : ('i, 'o) Oracle.membership) h cex =
  let distinguishes word =
    word <> [] && mq.ask word <> Mealy.run h word
  in
  let rec remove_one prefix = function
    | [] -> None
    | x :: rest ->
        let candidate = List.rev_append prefix rest in
        if distinguishes candidate then Some candidate
        else remove_one (x :: prefix) rest
  in
  let rec loop word =
    match remove_one [] word with Some shorter -> loop shorter | None -> word
  in
  if distinguishes cex then loop cex else cex
