module Mealy = Prognosis_automata.Mealy
module Testing = Prognosis_automata.Testing
module Rng = Prognosis_sul.Rng
module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace

let m_test_words = Metrics.counter Metrics.default "eq.test_words"
let m_counterexamples = Metrics.counter Metrics.default "eq.counterexamples"

let m_shards = Metrics.counter Metrics.default "eq.shards"
(* one per word-chunk handed to a batch-capable oracle: each shard is a
   unit the engine may spread across its worker domains *)

let check_word (mq : ('i, 'o) Oracle.membership) h word =
  if word = [] then None
  else begin
    mq.Oracle.stats.test_words <- mq.Oracle.stats.test_words + 1;
    Metrics.inc m_test_words;
    let sul_out = mq.ask word in
    let hyp_out = Mealy.run h word in
    if sul_out <> hyp_out then begin
      Metrics.inc m_counterexamples;
      if Trace.enabled () then
        Trace.event
          ~attrs:[ ("len", Prognosis_obs.Jsonx.Int (List.length word)) ]
          "eq.counterexample";
      Some word
    end
    else None
  end

(* When the oracle can plan whole batches (the query-execution
   engine), suites are executed [batch_chunk] words at a time: the
   batch executor shares resets across prefix-related words, and the
   first in-suite-order counterexample is still the one the sequential
   fold would have returned. Words after the counterexample within its
   chunk do get executed (and cached) — honest accounting counts them
   as test words. *)
let batch_chunk = 128

let check_batched mq batch h words =
  let words = List.filter (fun w -> w <> []) words in
  match words with
  | [] -> None
  | _ ->
      List.iter
        (fun _ ->
          mq.Oracle.stats.test_words <- mq.Oracle.stats.test_words + 1;
          Metrics.inc m_test_words)
        words;
      Metrics.inc m_shards;
      let answers = batch words in
      let rec find words answers =
        match (words, answers) with
        | word :: words', out :: answers' ->
            if out <> Mealy.run h word then begin
              Metrics.inc m_counterexamples;
              if Trace.enabled () then
                Trace.event
                  ~attrs:[ ("len", Prognosis_obs.Jsonx.Int (List.length word)) ]
                  "eq.counterexample";
              Some word
            end
            else find words' answers'
        | _ -> None
      in
      find words answers

let rec split_chunk n l =
  if n = 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: rest ->
        let a, b = split_chunk (n - 1) rest in
        (x :: a, b)

let check_suite mq h suite =
  match mq.Oracle.ask_batch with
  | Some batch ->
      let rec loop = function
        | [] -> None
        | words -> (
            let chunk, rest = split_chunk batch_chunk words in
            match check_batched mq batch h chunk with
            | Some cex -> Some cex
            | None -> loop rest)
      in
      loop suite
  | None ->
      List.fold_left
        (fun acc word ->
          match acc with Some _ -> acc | None -> check_word mq h word)
        None suite

let random_word rng inputs len =
  List.init len (fun _ -> inputs.(Rng.int rng (Array.length inputs)))

let random_words ~rng ~max_tests ~min_len ~max_len mq h =
  let inputs = Mealy.inputs h in
  match mq.Oracle.ask_batch with
  | Some batch ->
      (* Words are pre-drawn a chunk at a time so the engine can plan
         them together. The rng stream is consumed in the same
         len-then-symbols order as the sequential path, though chunks
         past a counterexample-bearing word never get drawn. *)
      let draw () =
        let len = min_len + Rng.int rng (max_len - min_len + 1) in
        random_word rng inputs len
      in
      let rec draw_chunk n acc =
        if n = 0 then List.rev acc else draw_chunk (n - 1) (draw () :: acc)
      in
      let rec loop k =
        if k = 0 then None
        else
          let n = min batch_chunk k in
          match check_batched mq batch h (draw_chunk n []) with
          | Some cex -> Some cex
          | None -> loop (k - n)
      in
      loop max_tests
  | None ->
      let rec loop k =
        if k = 0 then None
        else
          let len = min_len + Rng.int rng (max_len - min_len + 1) in
          match check_word mq h (random_word rng inputs len) with
          | Some cex -> Some cex
          | None -> loop (k - 1)
      in
      loop max_tests

let random_walk ~rng ~max_tests ~stop_prob mq h =
  let inputs = Mealy.inputs h in
  let rec draw acc =
    let acc = inputs.(Rng.int rng (Array.length inputs)) :: acc in
    if Rng.bool rng stop_prob then List.rev acc else draw acc
  in
  let rec loop k =
    if k = 0 then None
    else
      match check_word mq h (draw []) with
      | Some cex -> Some cex
      | None -> loop (k - 1)
  in
  loop max_tests

let w_method ?(extra_states = 0) () mq h =
  check_suite mq h (Testing.w_method ~extra_states h)

let wp_method ?(extra_states = 0) () mq h =
  check_suite mq h (Testing.wp_method ~extra_states h)

let fixed_words words mq h = check_suite mq h words

let exhaustive ~max_len mq h =
  let words = Testing.middle_words (Mealy.inputs h) max_len in
  check_suite mq h words

let against target _mq h = Mealy.equivalent target h

let combine oracles mq h =
  List.fold_left
    (fun acc oracle -> match acc with Some _ -> acc | None -> oracle mq h)
    None oracles

let shrink (mq : ('i, 'o) Oracle.membership) h cex =
  let distinguishes word =
    word <> [] && mq.ask word <> Mealy.run h word
  in
  let rec remove_one prefix = function
    | [] -> None
    | x :: rest ->
        let candidate = List.rev_append prefix rest in
        if distinguishes candidate then Some candidate
        else remove_one (x :: prefix) rest
  in
  let rec loop word =
    match remove_one [] word with Some shorter -> loop shorter | None -> word
  in
  if distinguishes cex then loop cex else cex
