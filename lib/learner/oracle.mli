(** Query oracles for the Minimally Adequate Teacher framework
    (paper §4.1).

    A membership oracle answers "if I send this input word, what does
    the implementation return?"; an equivalence oracle searches for a
    word on which a hypothesis machine and the implementation disagree.
    Both carry statistics so experiments can report query counts as the
    paper does. *)

type stats = {
  mutable membership_queries : int;
  mutable membership_symbols : int;
  mutable equivalence_queries : int;
  mutable test_words : int;  (** words executed by equivalence testing *)
}

val fresh_stats : unit -> stats

type ('i, 'o) membership = {
  ask : 'i list -> 'o list;
  ask_batch : ('i list list -> 'o list list) option;
      (** Optional bulk entry point: answers a whole list of words in
          one call, one answer per word, in order. Oracles that can
          plan query execution (the {!Prognosis_exec} engine) expose
          it; consumers must treat [None] as "ask one word at a time".
          Semantically [ask_batch ws = List.map ask ws] — batching may
          only change cost, never answers. *)
  stats : stats;
}

val of_fun :
  ?stats:stats ->
  ?batch:('i list list -> 'o list list) ->
  ('i list -> 'o list) ->
  ('i, 'o) membership
(** Wraps a raw query function, counting queries and symbols. When
    [batch] is given it becomes the oracle's [ask_batch], with every
    batched word counted exactly like a single query. *)

val of_sul : ?stats:stats -> ('i, 'o) Prognosis_sul.Sul.t -> ('i, 'o) membership

val of_sul_checked :
  ?stats:stats ->
  ?config:Prognosis_sul.Nondet.config ->
  pp:('i list -> string) ->
  ('i, 'o) Prognosis_sul.Sul.t ->
  ('i, 'o) membership
(** Membership oracle guarded by the nondeterminism check: every query
    is executed repeatedly per the config and must reach the agreement
    threshold.
    @raise Prognosis_sul.Nondet.Nondeterministic_sul otherwise. *)

type ('i, 'o) equivalence =
  ('i, 'o) membership -> ('i, 'o) Prognosis_automata.Mealy.t -> 'i list option
(** [eq mq hypothesis] is [Some w] for a counterexample word [w] on
    which the SUL (via [mq]) and the hypothesis disagree, or [None] if
    the heuristic search finds no difference. *)
