module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace
module Jsonx = Prognosis_obs.Jsonx

type error =
  | Missing_file of { path : string; detail : string }
  | Foreign_magic of { path : string; found : string }
  | Kind_mismatch of { path : string; found : string; expected : string }
  | Version_mismatch of { path : string; found : string; running : string }
  | Corrupt of { path : string; detail : string }

let error_to_string = function
  | Missing_file { path; detail } ->
      Printf.sprintf "%s: no checkpoint (%s)" path detail
  | Foreign_magic { path; found } ->
      Printf.sprintf "%s: not a prognosis checkpoint (found %S)" path found
  | Kind_mismatch { path; found; expected } ->
      Printf.sprintf "%s holds a %s checkpoint, expected %s" path found expected
  | Version_mismatch { path; found; running } ->
      Printf.sprintf
        "%s was written by OCaml %s; this binary runs %s (checkpoints are \
         local crash-recovery state — re-learn)"
        path found running
  | Corrupt { path; detail } -> Printf.sprintf "%s: corrupt checkpoint: %s" path detail

type ('i, 'o) snapshot = {
  queries : int;
  words : ('i list * 'o list) list;
  exec : string option;
}

let magic = "prognosis-checkpoint/1"

let m_saves = Metrics.counter Metrics.default "checkpoint.saves"
let g_queries = Metrics.gauge Metrics.default "checkpoint.queries"
let g_bytes = Metrics.gauge Metrics.default "checkpoint.bytes"
let g_words = Metrics.gauge Metrics.default "checkpoint.words"

let save ~path ~kind snapshot =
  Trace.with_span
    ~attrs:
      [
        ("kind", Jsonx.String kind);
        ("queries", Jsonx.Int snapshot.queries);
        ("words", Jsonx.Int (List.length snapshot.words));
        ("phase", Jsonx.String "checkpoint");
      ]
    "checkpoint.save"
    (fun () ->
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      (try
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () ->
             output_string oc magic;
             output_char oc '\n';
             output_string oc kind;
             output_char oc '\n';
             output_string oc Sys.ocaml_version;
             output_char oc '\n';
             Marshal.to_channel oc snapshot [])
       with e ->
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path;
      Metrics.inc m_saves;
      Metrics.set g_queries (float_of_int snapshot.queries);
      Metrics.set g_words (float_of_int (List.length snapshot.words));
      match Unix.stat path with
      | { Unix.st_size; _ } -> Metrics.set g_bytes (float_of_int st_size)
      | exception Unix.Unix_error _ -> ())

let load ~path ~kind =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Missing_file { path; detail = msg })
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let line () = try Some (input_line ic) with End_of_file -> None in
          match (line (), line (), line ()) with
          | Some m, _, _ when m <> magic ->
              Error (Foreign_magic { path; found = m })
          | _, Some k, _ when k <> kind ->
              Error (Kind_mismatch { path; found = k; expected = kind })
          | _, _, Some v when v <> Sys.ocaml_version ->
              Error
                (Version_mismatch { path; found = v; running = Sys.ocaml_version })
          | Some _, Some _, Some _ -> (
              match (Marshal.from_channel ic : ('i, 'o) snapshot) with
              | exception _ ->
                  Error (Corrupt { path; detail = "unreadable payload" })
              | s -> Ok s)
          | _ -> Error (Corrupt { path; detail = "truncated header" }))

(* --- run sessions --- *)

type spec = { dir : string; every : int; budget : int option; resume : bool }

let spec ?(every = 500) ?budget ?(resume = false) ~dir () =
  if every <= 0 then invalid_arg "Checkpoint.spec: every must be positive";
  { dir; every; budget; resume }

exception Budget_exhausted of { queries : int; path : string }

type ('i, 'o) session = {
  path : string;
  kind : string;
  s : spec;
  c : ('i, 'o) Cache.t;
  base : int; (* queries carried over from the loaded snapshot *)
  exec0 : string option;
  mutable exec_state : (unit -> string) option;
  mutable last_saved : int; (* cumulative query count at the last write *)
  mutable writes : int;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let start ~kind s =
  mkdir_p s.dir;
  let path = Filename.concat s.dir (kind ^ ".ckpt") in
  let c = Cache.create () in
  let base, exec0 =
    if not s.resume then (0, None)
    else
      match load ~path ~kind with
      | Ok snap ->
          Cache.restore c snap.words;
          Trace.event
            ~attrs:
              [
                ("kind", Jsonx.String kind);
                ("queries", Jsonx.Int snap.queries);
                ("words", Jsonx.Int (List.length snap.words));
              ]
            "checkpoint.resume";
          (snap.queries, snap.exec)
      | Error (Missing_file _) -> (0, None)
      | Error e -> failwith (error_to_string e)
  in
  {
    path;
    kind;
    s;
    c;
    base;
    exec0;
    exec_state = None;
    last_saved = base;
    writes = 0;
  }

let file t = t.path
let cache t = t.c
let resumed_queries t = t.base
let exec_blob t = t.exec0
let set_exec_state t f = t.exec_state <- Some f
let queries t = t.base + Cache.misses t.c
let saves t = t.writes

let write t =
  let q = queries t in
  save ~path:t.path ~kind:t.kind
    {
      queries = q;
      words = Cache.dump t.c;
      exec = Option.map (fun f -> f ()) t.exec_state;
    };
  t.last_saved <- q;
  t.writes <- t.writes + 1

let check t =
  let q = queries t in
  if q - t.last_saved >= t.s.every then write t;
  match t.s.budget with
  | Some b when q >= b ->
      if q > t.last_saved then write t;
      raise (Budget_exhausted { queries = q; path = t.path })
  | _ -> ()

let instrument t (mq : ('i, 'o) Oracle.membership) =
  let ask word =
    let answer = mq.Oracle.ask word in
    check t;
    answer
  in
  let ask_batch =
    Option.map
      (fun f words ->
        let answers = f words in
        check t;
        answers)
      mq.Oracle.ask_batch
  in
  { mq with Oracle.ask; ask_batch }

let on_round t ~round:_ ~states:_ = if queries t > t.last_saved then write t

let finish t = if queries t > t.last_saved then write t
