module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace
module Clock = Prognosis_obs.Clock

type stats = {
  mutable membership_queries : int;
  mutable membership_symbols : int;
  mutable equivalence_queries : int;
  mutable test_words : int;
}

let fresh_stats () =
  {
    membership_queries = 0;
    membership_symbols = 0;
    equivalence_queries = 0;
    test_words = 0;
  }

type ('i, 'o) membership = {
  ask : 'i list -> 'o list;
  ask_batch : ('i list list -> 'o list list) option;
  stats : stats;
}

let m_queries = Metrics.counter Metrics.default "oracle.membership_queries"
let m_symbols = Metrics.counter Metrics.default "oracle.membership_symbols"
let h_latency = Metrics.histogram Metrics.default "oracle.mq_latency_ns"

(* Every query through [of_fun] is one that reaches the underlying
   function (the SUL, or the nondeterminism check around it): cache
   layers sit *above* this oracle and short-circuit before [ask] runs,
   which is what keeps [membership_queries] an exact count of queries
   the SUL actually served. *)
let of_fun ?stats ?batch f =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let ask word =
    stats.membership_queries <- stats.membership_queries + 1;
    stats.membership_symbols <- stats.membership_symbols + List.length word;
    Metrics.inc m_queries;
    Metrics.inc ~by:(List.length word) m_symbols;
    let t0 = Clock.now_ns () in
    let answer =
      if Trace.enabled () then
        Trace.with_span
          ~attrs:[ ("len", Prognosis_obs.Jsonx.Int (List.length word)) ]
          "oracle.mq"
          (fun () -> f word)
      else f word
    in
    Metrics.observe_ns h_latency (Int64.sub (Clock.now_ns ()) t0);
    answer
  in
  (* A batch executor is accounted like the equivalent sequence of
     single queries: every batched word reached the underlying
     function, so the per-query invariants (and the cache-miss
     equality the driver asserts) keep holding. *)
  let ask_batch =
    Option.map
      (fun f words ->
        List.iter
          (fun word ->
            stats.membership_queries <- stats.membership_queries + 1;
            stats.membership_symbols <-
              stats.membership_symbols + List.length word;
            Metrics.inc m_queries;
            Metrics.inc ~by:(List.length word) m_symbols)
          words;
        f words)
      batch
  in
  { ask; ask_batch; stats }

let of_sul ?stats sul = of_fun ?stats (Prognosis_sul.Sul.query sul)

let of_sul_checked ?stats ?(config = Prognosis_sul.Nondet.default) ~pp sul =
  of_fun ?stats (Prognosis_sul.Nondet.deterministic_query config ~pp sul)

type ('i, 'o) equivalence =
  ('i, 'o) membership -> ('i, 'o) Prognosis_automata.Mealy.t -> 'i list option
