(** High-level learning driver: wires a SUL, a caching membership
    oracle, an equivalence oracle and a learning algorithm into one
    call, returning the model together with the statistics the paper's
    evaluation reports (states, transitions, membership queries,
    rounds). *)

type algorithm = L_star | Ttt_tree

type ('i, 'o) result = {
  model : ('i, 'o) Prognosis_automata.Mealy.t;
  rounds : int;  (** equivalence rounds (hypotheses built) *)
  stats : Oracle.stats;
  cache_hits : int;
  cache_misses : int;
}

val run :
  ?algorithm:algorithm ->
  ?max_rounds:int ->
  ?cache:bool ->
  ?checkpoint:('i, 'o) Checkpoint.session ->
  inputs:'i array ->
  sul:('i, 'o) Prognosis_sul.Sul.t ->
  eq:('i, 'o) Oracle.equivalence ->
  unit ->
  ('i, 'o) result
(** Learns a model of [sul]. Defaults: TTT, caching on, 200 rounds.
    Statistics count the queries that actually reached the SUL (cache
    hits are reported separately; with caching on, the driver checks
    [stats.membership_queries = cache_misses]). The whole run executes
    inside a ["learn"] span when {!Prognosis_obs.Trace} has a sink.

    With [?checkpoint], the session's (possibly pre-warmed) cache
    replaces the fresh one (caching is forced on), the membership path
    snapshots the run per the session's policy — and aborts it with
    {!Checkpoint.Budget_exhausted} when a query budget is set — and a
    final snapshot is written on success. *)

val run_mq :
  ?algorithm:algorithm ->
  ?max_rounds:int ->
  ?cache_stats:(unit -> int * int) ->
  ?checkpoint:('i, 'o) Checkpoint.session ->
  inputs:'i array ->
  mq:('i, 'o) Oracle.membership ->
  eq:('i, 'o) Oracle.equivalence ->
  unit ->
  ('i, 'o) result
(** Variant taking a prebuilt membership oracle (no extra caching).
    When [mq] carries its own cache (the query-execution engine does),
    pass [cache_stats] returning its (hits, misses) so the result and
    the [learn.cache_hit_rate] gauge reflect it. With [?checkpoint],
    [mq] must answer from the session's cache (build the engine with
    [Engine.create ~cache:(Checkpoint.cache session)]) so snapshots
    see every answered query. *)
