(** Crash-tolerant learning runs: periodic snapshots and resume.

    A learning run against a live implementation can take tens of
    thousands of membership queries (the paper's QUIC studies); losing
    everything to a crash mid-run is unacceptable at that scale. The
    observation here is that for the deterministic learners used in
    Prognosis (L*, TTT), the membership-query cache {b is} the
    recoverable learner state: replaying the algorithm against a
    pre-warmed cache reconstructs the observation table or
    discrimination tree without touching the SUL, so a snapshot only
    needs the cache contents (plus the query-execution engine's
    worker/quarantine bookkeeping when a pool is in use).

    Snapshots are written atomically (tmp + rename), every [every] SUL
    queries and at every learner round boundary, under a
    kind/OCaml-version guarded header. Instrumentation reports through
    [checkpoint.*] metrics and spans ({!Prognosis_obs}). *)

(** Structured load failures, mirroring [Persist.load_error]. *)
type error =
  | Missing_file of { path : string; detail : string }
  | Foreign_magic of { path : string; found : string }
  | Kind_mismatch of { path : string; found : string; expected : string }
  | Version_mismatch of { path : string; found : string; running : string }
  | Corrupt of { path : string; detail : string }

val error_to_string : error -> string

type ('i, 'o) snapshot = {
  queries : int;
      (** cumulative SUL queries answered when the snapshot was taken,
          across every resumed segment of the run *)
  words : ('i list * 'o list) list;  (** {!Cache.dump} of the query cache *)
  exec : string option;
      (** opaque engine worker state ([Engine.freeze]) when the run
          used the query-execution pool *)
}

val save : path:string -> kind:string -> ('i, 'o) snapshot -> unit
(** Atomic write: the snapshot lands at [path] completely or not at
    all (tmp file + rename). The header records [kind] and the OCaml
    version (the payload is [Marshal], a local crash-recovery format —
    portability is the model format's job, not the checkpoint's). *)

val load : path:string -> kind:string -> (('i, 'o) snapshot, error) result

(** {2 Run sessions}

    A [session] owns the query cache of one (possibly resumed)
    learning run and decides when to snapshot it. Studies create one
    per run when checkpointing is requested, learn through
    {!instrument}'d oracles, and {!finish} on success. *)

type spec = {
  dir : string;  (** checkpoint directory *)
  every : int;  (** SUL queries between periodic snapshots *)
  budget : int option;
      (** abort the run (after snapshotting) once this many cumulative
          SUL queries have been answered — the controlled "crash" used
          to test and demonstrate resume *)
  resume : bool;  (** pre-warm the cache from an existing snapshot *)
}

val spec : ?every:int -> ?budget:int -> ?resume:bool -> dir:string -> unit -> spec
(** Defaults: [every = 500], no budget, fresh run. *)

exception Budget_exhausted of { queries : int; path : string }
(** Raised by an {!instrument}'d oracle when the session's query
    budget is reached. The snapshot at [path] is written before the
    raise, so a later [resume] run loses nothing. *)

type ('i, 'o) session

val start : kind:string -> spec -> ('i, 'o) session
(** Creates [spec.dir] if needed. With [spec.resume], loads
    [dir/kind.ckpt] into a fresh cache (a missing file degrades to a
    fresh start; any other load failure raises [Failure] with the
    structured error rendered).
    @raise Failure on a foreign / mismatched / corrupt snapshot. *)

val file : ('i, 'o) session -> string
(** [dir/kind.ckpt], where snapshots are written. *)

val cache : ('i, 'o) session -> ('i, 'o) Cache.t
(** The session's query cache — pre-warmed when resuming. Pass it to
    [Learn.run ~cache_with] or [Engine.create ~cache]. *)

val resumed_queries : ('i, 'o) session -> int
(** Cumulative SUL queries recorded by the loaded snapshot (0 for a
    fresh run). *)

val exec_blob : ('i, 'o) session -> string option
(** Engine worker state carried by the loaded snapshot, for
    [Engine.thaw]. *)

val set_exec_state : ('i, 'o) session -> (unit -> string) -> unit
(** Register the engine's [freeze] so subsequent snapshots include
    worker/quarantine state. *)

val instrument :
  ('i, 'o) session -> ('i, 'o) Oracle.membership -> ('i, 'o) Oracle.membership
(** Checkpointing view of a membership oracle: answers pass through
    untouched; after each (batch of) answers the session snapshots if
    [every] new SUL queries accumulated since the last write, and
    raises {!Budget_exhausted} (after a final snapshot) once the
    cumulative query count reaches [spec.budget]. Wrap the {e cached}
    oracle — the session reads the cache's miss counter, so only
    queries that actually reached the SUL advance the clock. *)

val on_round : ('i, 'o) session -> round:int -> states:int -> unit
(** Round-boundary hook for [Learn.run ~on_round]: snapshots whenever
    new material accumulated since the last write — hypothesis
    construction points are the natural stable states of a run. *)

val queries : ('i, 'o) session -> int
(** Cumulative SUL queries so far (resumed + this segment). *)

val saves : ('i, 'o) session -> int
(** Snapshots written by this session. *)

val finish : ('i, 'o) session -> unit
(** Final snapshot (skipped when nothing changed since the last one). *)
