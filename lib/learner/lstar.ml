module Mealy = Prognosis_automata.Mealy
module Metrics = Prognosis_obs.Metrics
module Trace = Prognosis_obs.Trace
module Jsonx = Prognosis_obs.Jsonx

let m_rounds = Metrics.counter Metrics.default "learner.rounds"
let m_cex = Metrics.counter Metrics.default "learner.counterexamples"
let h_cex_len = Metrics.histogram Metrics.default "learner.cex_length"

type ('i, 'o) state = {
  inputs : 'i array;
  mq : ('i, 'o) Oracle.membership;
  mutable s : 'i list list; (* prefix-closed access words, insertion order *)
  mutable e : 'i list list; (* suffix-closed, nonempty columns *)
}

let create ~inputs mq =
  if Array.length inputs = 0 then invalid_arg "Lstar.create: empty alphabet";
  { inputs; mq; s = [ [] ]; e = Array.to_list (Array.map (fun a -> [ a ]) inputs) }

(* Output word for the suffix [e] after access word [u]: the last |e|
   outputs of the full query u·e. *)
let suffix_output t u e =
  let answer = t.mq.Oracle.ask (u @ e) in
  let n = List.length answer and k = List.length e in
  List.filteri (fun i _ -> i >= n - k) answer

let row t u = List.map (fun e -> suffix_output t u e) t.e

let rows t = List.length t.s
let columns t = List.length t.e

(* Make the table closed: every one-symbol extension of an S-row must
   match some S-row; otherwise promote the extension into S. *)
let close t =
  let progress = ref true in
  while !progress do
    progress := false;
    let s_rows = Hashtbl.create 16 in
    List.iter (fun u -> Hashtbl.replace s_rows (row t u) ()) t.s;
    let missing =
      List.concat_map
        (fun u ->
          List.filter_map
            (fun a ->
              let ua = u @ [ a ] in
              if List.mem ua t.s then None
              else if Hashtbl.mem s_rows (row t ua) then None
              else Some ua)
            (Array.to_list t.inputs))
        t.s
    in
    match missing with
    | [] -> ()
    | ua :: _ ->
        t.s <- t.s @ [ ua ];
        progress := true
  done

let hypothesis t =
  close t;
  (* Map each distinct row to a state number; the state of an S-word is
     the state of its row. *)
  let row_ids = Hashtbl.create 16 in
  let reps = ref [] in
  List.iter
    (fun u ->
      let r = row t u in
      if not (Hashtbl.mem row_ids r) then begin
        Hashtbl.add row_ids r (Hashtbl.length row_ids);
        reps := u :: !reps
      end)
    t.s;
  let reps = Array.of_list (List.rev !reps) in
  let size = Array.length reps in
  let n = Array.length t.inputs in
  let state_of u = Hashtbl.find row_ids (row t u) in
  let delta = Array.init size (fun _ -> Array.make n 0) in
  let lambda =
    Array.init size (fun q ->
        Array.init n (fun i ->
            match suffix_output t reps.(q) [ t.inputs.(i) ] with
            | [ o ] -> o
            | _ -> assert false))
  in
  for q = 0 to size - 1 do
    for i = 0 to n - 1 do
      delta.(q).(i) <- state_of (reps.(q) @ [ t.inputs.(i) ])
    done
  done;
  Mealy.make ~size ~initial:(state_of []) ~inputs:t.inputs ~delta ~lambda

let refine t cex =
  (* Shahbaz–Groz: add every nonempty suffix of the counterexample to E. *)
  let rec suffixes = function
    | [] -> []
    | _ :: rest as w -> w :: suffixes rest
  in
  List.iter
    (fun suffix -> if not (List.mem suffix t.e) then t.e <- t.e @ [ suffix ])
    (suffixes cex)

let learn ?(max_rounds = 100) ?(on_round = fun ~round:_ ~states:_ -> ()) ~inputs
    ~mq ~eq () =
  let t = create ~inputs mq in
  let rec loop round =
    if round > max_rounds then failwith "Lstar.learn: max_rounds exceeded";
    Metrics.inc m_rounds;
    let h, cex =
      Trace.with_span
        ~attrs:
          [
            ("algorithm", Jsonx.String "lstar");
            ("round", Jsonx.Int round);
            ("phase", Jsonx.String "learning");
          ]
        "learner.round"
        (fun () ->
          let h =
            Trace.with_span "learner.hypothesis" (fun () -> hypothesis t)
          in
          Trace.add_attr "hypothesis_states" (Jsonx.Int (Mealy.size h));
          Trace.add_attr "table_rows" (Jsonx.Int (rows t));
          Trace.add_attr "table_columns" (Jsonx.Int (columns t));
          on_round ~round ~states:(Mealy.size h);
          mq.Oracle.stats.equivalence_queries <-
            mq.Oracle.stats.equivalence_queries + 1;
          let cex =
            Trace.with_span
              ~attrs:[ ("phase", Jsonx.String "eq-oracle") ]
              "learner.eq_query"
              (fun () -> eq mq h)
          in
          (h, cex))
    in
    match cex with
    | None -> (h, round)
    | Some cex ->
        Metrics.inc m_cex;
        Metrics.observe h_cex_len (float_of_int (List.length cex));
        Trace.with_span
          ~attrs:[ ("cex_len", Jsonx.Int (List.length cex)) ]
          "learner.refine"
          (fun () -> refine t cex);
        loop (round + 1)
  in
  loop 1
