module Mealy = Prognosis_automata.Mealy

type ('i, 'o) witness = {
  word : 'i list;
  outputs_a : 'o list;
  outputs_b : 'o list;
}

let make_witness a b word =
  { word; outputs_a = Mealy.run a word; outputs_b = Mealy.run b word }

(* Breadth-first search over the product automaton, dequeuing product
   states in FIFO order and scanning inputs in alphabet order. The
   first disagreeing edge therefore has minimal depth, and ties break
   on (BFS discovery order, alphabet position) — both functions of the
   two machines alone, so the returned word is deterministic across
   runs. The fingerprint splitter relies on both properties: shortest
   words keep classification trees shallow, determinism keeps them
   byte-stable. *)
let shortest_difference a b =
  let n = Mealy.alphabet_size a in
  if n <> Mealy.alphabet_size b then
    invalid_arg "Model_diff.shortest_difference: different alphabets";
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.add seen (Mealy.initial a, Mealy.initial b) ();
  Queue.add (Mealy.initial a, Mealy.initial b, []) queue;
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let sa, sb, path = Queue.pop queue in
    let i = ref 0 in
    while !result = None && !i < n do
      let sa', oa = Mealy.step_idx a sa !i in
      let sb', ob = Mealy.step_idx b sb !i in
      if oa <> ob then
        result := Some (List.rev ((Mealy.inputs a).(!i) :: path))
      else if not (Hashtbl.mem seen (sa', sb')) then begin
        Hashtbl.add seen (sa', sb') ();
        Queue.add (sa', sb', (Mealy.inputs a).(!i) :: path) queue
      end;
      incr i
    done
  done;
  Option.map (make_witness a b) !result

let first_difference = shortest_difference
let equivalent a b = first_difference a b = None

(* BFS over the product, collecting one witness per (state-pair, input)
   whose outputs disagree; exploration continues past disagreements so
   several divergence sites are sampled. *)
let differences ~max a b =
  let n = Mealy.alphabet_size a in
  if n <> Mealy.alphabet_size b then
    invalid_arg "Model_diff.differences: different alphabets";
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let found = ref [] in
  let count = ref 0 in
  Hashtbl.add seen (Mealy.initial a, Mealy.initial b) ();
  Queue.add (Mealy.initial a, Mealy.initial b, []) queue;
  while (not (Queue.is_empty queue)) && !count < max do
    let sa, sb, path = Queue.pop queue in
    for i = 0 to n - 1 do
      if !count < max then begin
        let sa', oa = Mealy.step_idx a sa i in
        let sb', ob = Mealy.step_idx b sb i in
        let word = List.rev ((Mealy.inputs a).(i) :: path) in
        if oa <> ob then begin
          found := make_witness a b word :: !found;
          incr count
        end;
        if not (Hashtbl.mem seen (sa', sb')) then begin
          Hashtbl.add seen (sa', sb') ();
          Queue.add (sa', sb', (Mealy.inputs a).(i) :: path) queue
        end
      end
    done
  done;
  List.rev !found

type ('i, 'o) summary = {
  states_a : int;
  states_b : int;
  transitions_a : int;
  transitions_b : int;
  equivalent_ : bool;
  witnesses : ('i, 'o) witness list;
}

let summarize ?(max_witnesses = 5) a b =
  let witnesses = differences ~max:max_witnesses a b in
  {
    states_a = Mealy.size a;
    states_b = Mealy.size b;
    transitions_a = Mealy.transitions a;
    transitions_b = Mealy.transitions b;
    equivalent_ = witnesses = [];
    witnesses;
  }

let pp_summary ~input_pp ~output_pp fmt s =
  Format.fprintf fmt "model A: %d states / %d transitions@\n" s.states_a
    s.transitions_a;
  Format.fprintf fmt "model B: %d states / %d transitions@\n" s.states_b
    s.transitions_b;
  if s.equivalent_ then Format.fprintf fmt "models are equivalent@\n"
  else begin
    Format.fprintf fmt "models differ; %d witness(es):@\n"
      (List.length s.witnesses);
    List.iter
      (fun w ->
        Format.fprintf fmt "  on %a:@\n    A: %a@\n    B: %a@\n"
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
             input_pp)
          w.word
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
             output_pp)
          w.outputs_a
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
             output_pp)
          w.outputs_b)
      s.witnesses
  end
