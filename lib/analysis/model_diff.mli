(** Comparing learned models of different implementations of the same
    protocol (paper §5, "Learned Model Analysis", and §6.2.3/§6.2.5).

    Model equivalence is decided by product construction; when models
    differ, the shortest distinguishing input words are concrete,
    replayable evidence — the paper used exactly such witnesses to
    explain Issues 1 and 3 to developers. *)

type ('i, 'o) witness = {
  word : 'i list;
  outputs_a : 'o list;
  outputs_b : 'o list;
}

val equivalent : ('i, 'o) Prognosis_automata.Mealy.t -> ('i, 'o) Prognosis_automata.Mealy.t -> bool

val shortest_difference :
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) witness option
(** A {e shortest} input word on which the models disagree, with both
    output words, found by breadth-first search over the product
    automaton. Deterministic: product states are dequeued in FIFO
    order and inputs scanned in alphabet order, so equal-length
    candidates tie-break identically on every run — the property that
    keeps fingerprint classification trees minimal and byte-stable.
    Machines are aligned positionally; only the alphabet {e sizes}
    must match.
    @raise Invalid_argument if the alphabet sizes differ. *)

val first_difference :
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) witness option
(** Alias for {!shortest_difference}. *)

val differences :
  max:int ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) witness list
(** Up to [max] distinguishing words discovered by breadth-first
    product exploration: one per disagreeing (state-pair, input) edge,
    shortest first — a structural sample of *where* the behaviours
    diverge, not just that they do. *)

type ('i, 'o) summary = {
  states_a : int;
  states_b : int;
  transitions_a : int;
  transitions_b : int;
  equivalent_ : bool;
  witnesses : ('i, 'o) witness list;
}

val summarize :
  ?max_witnesses:int ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  ('i, 'o) summary

val pp_summary :
  input_pp:(Format.formatter -> 'i -> unit) ->
  output_pp:(Format.formatter -> 'o -> unit) ->
  Format.formatter ->
  ('i, 'o) summary ->
  unit
