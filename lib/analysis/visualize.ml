module Mealy = Prognosis_automata.Mealy

let model_dot ?name ~input_pp ~output_pp m = Mealy.to_dot ?name ~input_pp ~output_pp m

let escape label = String.concat "\\\"" (String.split_on_char '"' label)

let diff_dot ?(name = "diff") ~input_pp ~output_pp a b =
  let n = Mealy.alphabet_size a in
  if n <> Mealy.alphabet_size b then
    invalid_arg "Visualize.diff_dot: different alphabets";
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "digraph %s {@\n  rankdir=LR;@\n  node [shape=circle];@\n" name;
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let id (sa, sb) = Printf.sprintf "s%d_%d" sa sb in
  let start = (Mealy.initial a, Mealy.initial b) in
  Hashtbl.add seen start ();
  Queue.add start queue;
  Format.fprintf fmt "  __start [shape=none,label=\"\"];@\n  __start -> %s;@\n"
    (id start);
  while not (Queue.is_empty queue) do
    let ((sa, sb) as pair) = Queue.pop queue in
    for i = 0 to n - 1 do
      let sa', oa = Mealy.step_idx a sa i in
      let sb', ob = Mealy.step_idx b sb i in
      let sym = (Mealy.inputs a).(i) in
      if oa = ob then
        Format.fprintf fmt "  %s -> %s [label=\"%s\"];@\n" (id pair)
          (id (sa', sb'))
          (escape (Format.asprintf "%a / %a" input_pp sym output_pp oa))
      else
        Format.fprintf fmt
          "  %s -> %s [color=red,fontcolor=red,label=\"%s\"];@\n" (id pair)
          (id (sa', sb'))
          (escape
             (Format.asprintf "%a / A:%a | B:%a" input_pp sym output_pp oa
                output_pp ob));
      if not (Hashtbl.mem seen (sa', sb')) then begin
        Hashtbl.add seen (sa', sb') ();
        Queue.add (sa', sb') queue
      end
    done
  done;
  Format.fprintf fmt "}@.";
  Buffer.contents buf

let write_file ~path contents =
  (* atomic (temp-file + rename), like every other report writer *)
  Prognosis_obs.Atomic_file.write ~path contents
