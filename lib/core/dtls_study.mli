(** The MiniDTLS study pipeline: the third protocol wired through the
    identical learning stack — the concrete demonstration of the
    paper's claim that "different protocols and protocol
    implementations can easily be swapped without changes to the
    learning engine" (contribution 1). *)

module Alphabet = Prognosis_dtls.Dtls_alphabet

type model = (Alphabet.symbol, Alphabet.output) Prognosis_automata.Mealy.t

type result = {
  model : model;
  report : Report.t;
  adapter :
    ( Alphabet.symbol,
      Alphabet.output,
      Prognosis_dtls.Dtls_wire.record_,
      Prognosis_dtls.Dtls_wire.record_ )
    Prognosis_sul.Adapter.t;
  client : Prognosis_dtls.Dtls_client.t;
}

val learn :
  ?seed:int64 ->
  ?algorithm:Prognosis_learner.Learn.algorithm ->
  ?server_config:Prognosis_dtls.Dtls_server.config ->
  ?exec:Prognosis_exec.Engine.config ->
  ?checkpoint:Prognosis_learner.Checkpoint.spec ->
  unit ->
  result
(** With [?exec], membership queries run through the query-execution
    engine pool and the report carries an [exec] stats section. With
    [?checkpoint], the run snapshots and resumes per the spec; may
    raise {!Prognosis_learner.Checkpoint.Budget_exhausted}. *)

val model_dot : model -> string
