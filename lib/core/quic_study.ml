module Mealy = Prognosis_automata.Mealy
module Rng = Prognosis_sul.Rng
module Adapter = Prognosis_sul.Adapter
module Oracle_table = Prognosis_sul.Oracle_table
module Nondet = Prognosis_sul.Nondet
module Sul = Prognosis_sul.Sul
module Learn = Prognosis_learner.Learn
module Eq_oracle = Prognosis_learner.Eq_oracle
module Checkpoint = Prognosis_learner.Checkpoint
module Ext_mealy = Prognosis_synthesis.Ext_mealy
module Synthesizer = Prognosis_synthesis.Synthesizer
module Term = Prognosis_synthesis.Term
module Alphabet = Prognosis_quic.Quic_alphabet
module Profile = Prognosis_quic.Quic_profile
module Packet = Prognosis_quic.Quic_packet
module Frame = Prognosis_quic.Frame
module Quic_adapter = Prognosis_quic.Quic_adapter

type model = (Alphabet.symbol, Alphabet.output) Mealy.t

type result = {
  model : model;
  report : Report.t;
  adapter : (Alphabet.symbol, Alphabet.output, Packet.t, Packet.t) Adapter.t;
  client : Prognosis_quic.Quic_client.t;
}

let algorithm_name = function Learn.L_star -> "L*" | Learn.Ttt_tree -> "TTT"

let learn ?(seed = 1L) ?(algorithm = Learn.Ttt_tree) ?(alphabet = Alphabet.all)
    ?client_config ?exec ?checkpoint ~profile () =
  let module Metrics = Prognosis_obs.Metrics in
  Metrics.inc
    (Metrics.counter_l Metrics.default "study.learn_runs"
       [ ("study", "quic"); ("profile", profile.Profile.name) ]);
  let adapter, client = Quic_adapter.create ~profile ?client_config ~seed () in
  let rng = Rng.create (Int64.add seed 7L) in
  let eq =
    Eq_oracle.combine
      [
        Eq_oracle.w_method ~extra_states:1 ();
        Eq_oracle.random_words ~rng ~max_tests:400 ~min_len:1 ~max_len:10;
      ]
  in
  let ck =
    Option.map
      (Checkpoint.start ~kind:("quic-" ^ profile.Profile.name))
      checkpoint
  in
  let result, exec_json =
    match exec with
    | None ->
        let sul = Adapter.to_sul adapter in
        (Learn.run ~algorithm ?checkpoint:ck ~inputs:alphabet ~sul ~eq (), None)
    | Some config ->
        let module Engine = Prognosis_exec.Engine in
        let master = Rng.create seed in
        let wseeds =
          Array.map Rng.next64 (Rng.split_n master config.Engine.workers)
        in
        let factory i =
          Quic_adapter.sul ~profile ?client_config ~seed:wseeds.(i) ()
        in
        let engine =
          Engine.create ~config ?cache:(Option.map Checkpoint.cache ck) ~factory ()
        in
        Option.iter
          (fun ck ->
            (match Checkpoint.exec_blob ck with
            | Some blob -> ( try Engine.thaw engine blob with Invalid_argument _ -> ())
            | None -> ());
            Checkpoint.set_exec_state ck (fun () -> Engine.freeze engine))
          ck;
        let r =
          Learn.run_mq ~algorithm ?checkpoint:ck
            ~cache_stats:(fun () -> Engine.cache_stats engine)
            ~inputs:alphabet
            ~mq:(Engine.membership engine)
            ~eq ()
        in
        (r, Some (Engine.stats_json engine))
  in
  {
    model = result.Learn.model;
    report =
      Report.of_learn_result
        ~subject:("quic:" ^ profile.Profile.name)
        ~algorithm:(algorithm_name algorithm) ?exec:exec_json result;
    adapter;
    client;
  }

let compare_profiles ?(seed = 1L) pa pb =
  let a = learn ~seed ~profile:pa () in
  let b = learn ~seed:(Int64.add seed 31L) ~profile:pb () in
  Prognosis_analysis.Model_diff.summarize a.model b.model

let close_reset_rate ?(seed = 9L) ?(runs = 200) profile =
  let sul = Quic_adapter.sul ~profile ~seed () in
  let word =
    Alphabet.[ Initial_crypto; Handshake_ack_hsd; Short_ack_stream ]
  in
  let obs = Nondet.distribution ~runs sul word in
  Nondet.frequency obs (fun answer ->
      match List.rev answer with
      | last :: _ -> last = [ Alphabet.abstract_reset ]
      | [] -> false)

(* --- Issue-4 synthesis --- *)

let input_field_names = [| "pn"; "msd" |]
let output_field_names = [| "pn"; "sdb" |]

(* The Maximum Stream Data value a client packet announces: parsed from
   the ClientHello transport parameters or a MAX_STREAM_DATA frame. *)
let msd_of_packet (p : Packet.t) =
  List.fold_left
    (fun acc frame ->
      match frame with
      | Frame.Max_stream_data { max; _ } -> max
      | Frame.Crypto { data; _ } -> (
          (* "CH:<random>;md=..;msd=.." *)
          match String.index_opt data ';' with
          | None -> acc
          | Some _ ->
              List.fold_left
                (fun acc part ->
                  match String.index_opt part '=' with
                  | Some i when String.sub part 0 i = "msd" ->
                      Option.value
                        (int_of_string_opt
                           (String.sub part (i + 1) (String.length part - i - 1)))
                        ~default:acc
                  | _ -> acc)
                acc
                (String.split_on_char ';' data))
      | _ -> acc)
    0 p.Packet.frames

let sdb_of_packet (p : Packet.t) =
  List.fold_left
    (fun acc frame ->
      match frame with
      | Frame.Stream_data_blocked { max; _ } -> Some max
      | _ -> acc)
    None p.Packet.frames

let fields_in (p : Packet.t) = [| max 0 p.Packet.pn; msd_of_packet p |]

let fields_out packets =
  match packets with
  | [] -> [| None; None |]
  | (first : Packet.t) :: _ ->
      let sdb = List.fold_left (fun acc p ->
          match sdb_of_packet p with Some v -> Some v | None -> acc)
          None packets
      in
      [| (if first.Packet.pn >= 0 then Some first.Packet.pn else None); sdb |]

let witness_traces result words =
  List.map
    (fun word ->
      let _ = Adapter.query result.adapter word in
      match Oracle_table.find result.adapter.Adapter.table word with
      | None -> invalid_arg "Quic_study.witness_traces: query was not recorded"
      | Some entry ->
          List.map2
            (fun (sym, out) (step : _ Oracle_table.step) ->
              let fi =
                match step.Oracle_table.sent with
                | p :: _ -> fields_in p
                | [] -> [| 0; 0 |]
              in
              let fo = fields_out step.Oracle_table.received in
              { Ext_mealy.sym_in = sym; fields_in = fi; sym_out = out; fields_out = fo })
            (List.combine entry.Oracle_table.abstract_inputs
               entry.Oracle_table.abstract_outputs)
            entry.Oracle_table.steps)
    words

let synthesize_sdb ?(nregs = 1) result words =
  let traces = witness_traces result words in
  let cfg =
    {
      (Synthesizer.default_config ~nregs ~in_arity:2 ~out_arity:2) with
      Synthesizer.consts = [ 0 ];
    }
  in
  Synthesizer.solve cfg ~skeleton:result.model ~traces ()

let sdb_verdict machine =
  (* Inspect the sdb output field (index 1) across all transitions. *)
  let skeleton = machine.Ext_mealy.skeleton in
  let constant = ref None and symbolic = ref false and any = ref false in
  for s = 0 to Mealy.size skeleton - 1 do
    for i = 0 to Mealy.alphabet_size skeleton - 1 do
      match machine.Ext_mealy.outputs.(s).(i).(1) with
      | Some (Term.Const c) ->
          any := true;
          (match !constant with
          | None -> constant := Some c
          | Some c' when c' <> c -> symbolic := true
          | Some _ -> ())
      | Some _ ->
          any := true;
          symbolic := true
      | None -> ()
    done
  done;
  if not !any then `Unobserved
  else if !symbolic then `Symbolic
  else match !constant with Some c -> `Constant c | None -> `Unobserved

let packet_number_sequences result words =
  List.map
    (fun word ->
      let _ = Adapter.query result.adapter word in
      match Oracle_table.find result.adapter.Adapter.table word with
      | None -> []
      | Some entry ->
          List.concat_map
            (fun (step : _ Oracle_table.step) ->
              List.filter_map
                (fun (p : Packet.t) ->
                  if p.Packet.ptype = Packet.Short && p.Packet.pn >= 0 then
                    Some p.Packet.pn
                  else None)
                step.Oracle_table.received)
            entry.Oracle_table.steps)
    words

let model_dot model =
  Prognosis_analysis.Visualize.model_dot ~name:"quic"
    ~input_pp:(fun fmt s -> Format.pp_print_string fmt (Alphabet.to_string s))
    ~output_pp:(fun fmt o -> Format.pp_print_string fmt (Alphabet.output_to_string o))
    model
