(** Persisting learned models.

    Learning a production-scale implementation is the expensive step
    (the paper's QUIC runs took tens of thousands of queries); analyses
    are cheap. Saving learned models lets `compare`, `check`, `replay`
    and `difftest` style workflows reuse them across invocations.

    Two formats coexist:

    - the {b Marshal cache} ({!save}/{!load}): fast and exact, but a
      local format — not portable across OCaml versions or
      architectures (the header stores enough to fail loudly instead
      of corrupting);
    - the {b canonical text format} [prognosis.model/1]
      ({!save_text}/{!load_text}): line-oriented plain text with
      sorted output table and BFS-renumbered states, designed to be
      committed, diffed and reviewed. Two equivalent learned machines
      serialize byte-identically — the property the `prognosis ci`
      golden-model regression gate relies on. *)

type kind = Tcp_model | Quic_model | Dtls_model | Tcp_client_model

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}; [None] for unknown tags. *)

val all_kinds : kind list

(** Structured load failures — every case a caller might want to
    branch on (a missing golden is refreshable, a kind mismatch is a
    usage error, a version mismatch means re-learn). *)
type load_error =
  | Missing_file of { path : string; detail : string }
  | Foreign_magic of { path : string; found : string }
  | Kind_mismatch of { path : string; found : string; expected : string }
  | Version_mismatch of { path : string; found : string; running : string }
      (** Marshal cache: OCaml version; text format: format version. *)
  | Corrupt of { path : string; detail : string }

val load_error_to_string : load_error -> string

val save :
  path:string -> kind -> ('i, 'o) Prognosis_automata.Mealy.t -> unit

val load :
  path:string ->
  kind ->
  (('i, 'o) Prognosis_automata.Mealy.t, load_error) result
(** The ['i]/['o] types must match what was saved — the [kind] tag is
    the guard, so only load through the typed wrappers below in
    application code. *)

val load_tcp :
  path:string ->
  ( (Prognosis_tcp.Tcp_alphabet.symbol, Prognosis_tcp.Tcp_alphabet.output)
    Prognosis_automata.Mealy.t,
    load_error )
  result

val load_quic :
  path:string ->
  ( (Prognosis_quic.Quic_alphabet.symbol, Prognosis_quic.Quic_alphabet.output)
    Prognosis_automata.Mealy.t,
    load_error )
  result

val load_dtls :
  path:string ->
  ( (Prognosis_dtls.Dtls_alphabet.symbol, Prognosis_dtls.Dtls_alphabet.output)
    Prognosis_automata.Mealy.t,
    load_error )
  result

(** {2 The canonical text format}

    Text models are string-typed: symbols are rendered once, at save
    time, through the study alphabet's printers, and a loaded text
    model is a [(string, string) Mealy.t]. That is exactly what the
    regression gate needs — structural comparison and replayable
    distinguishing words over the printed alphabet — while staying
    independent of OCaml's value representation. *)

val to_string_model :
  input_to_string:('i -> string) ->
  output_to_string:('o -> string) ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  (string, string) Prognosis_automata.Mealy.t
(** Render every symbol; structure is untouched. *)

val text_of_model :
  kind:kind ->
  input_to_string:('i -> string) ->
  output_to_string:('o -> string) ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  string
(** The canonical serialization: the model is rendered to strings,
    minimized, BFS-renumbered ({!Prognosis_automata.Mealy.canonicalize}),
    its distinct outputs interned into a lexicographically sorted
    table, and emitted as [prognosis.model/1] text (versioned magic,
    [kind]/[states]/[initial]/[inputs]/[outputs]/[transitions]
    sections, one symbol per line, transitions in row-major
    state-then-input order, closing [end] marker). Equivalent machines
    over the same printed alphabet produce byte-identical text.
    @raise Invalid_argument if a printed symbol contains a line break. *)

val save_text :
  path:string ->
  kind ->
  input_to_string:('i -> string) ->
  output_to_string:('o -> string) ->
  ('i, 'o) Prognosis_automata.Mealy.t ->
  unit
(** {!text_of_model} written atomically (tmp + rename). *)

val parse_text :
  path:string ->
  kind ->
  string ->
  ((string, string) Prognosis_automata.Mealy.t, load_error) result
(** Parse serialized text ([path] only labels errors). Round-trip is
    exact: [text_of_model] of a parsed model reproduces the input
    bytes. [Corrupt] details are prefixed with the 1-based line number
    of the offending line (["line 17: bad transition line ..."]), so
    tooling over directories of committed models — the fingerprint
    library builder — can pinpoint damage. *)

val load_text :
  path:string ->
  kind ->
  ((string, string) Prognosis_automata.Mealy.t, load_error) result
