(** The TCP case study pipeline (paper §6.1): learn a model of the TCP
    server, report statistics, and synthesize a register-extended
    machine for the sequence/acknowledgement numbers from the Oracle
    Table (Figure 3(c)). *)

module Alphabet = Prognosis_tcp.Tcp_alphabet

type model = (Alphabet.symbol, Alphabet.output) Prognosis_automata.Mealy.t

type result = {
  model : model;
  report : Report.t;
  adapter :
    ( Alphabet.symbol,
      Alphabet.output,
      Prognosis_tcp.Tcp_wire.segment,
      Prognosis_tcp.Tcp_wire.segment )
    Prognosis_sul.Adapter.t;
}

val learn :
  ?seed:int64 ->
  ?algorithm:Prognosis_learner.Learn.algorithm ->
  ?server_config:Prognosis_tcp.Tcp_server.config ->
  ?exec:Prognosis_exec.Engine.config ->
  ?checkpoint:Prognosis_learner.Checkpoint.spec ->
  unit ->
  result
(** Learns through a W-method + random-word equivalence oracle. With
    [?exec], membership queries run through the query-execution engine
    ({!Prognosis_exec.Engine}): a pool of [exec.workers] independent
    adapters (seeds derived by {!Prognosis_sul.Rng.split_n}), batched
    and prefix-sharing; the report then carries an [exec] stats
    section. With [?checkpoint], the run snapshots its query cache (and
    the engine's robustness bookkeeping) into the spec's directory and,
    when the spec says [resume], restarts from the last snapshot — see
    {!Prognosis_learner.Checkpoint}. May raise
    {!Prognosis_learner.Checkpoint.Budget_exhausted} when the spec
    carries a query budget. *)

val input_field_names : string array
(** [seq; ack; len] — the concrete fields synthesis ranges over. *)

val output_field_names : string array
(** [seq; ack]; the server-chosen initial sequence number is left
    unconstrained. *)

val witness_traces :
  result ->
  Alphabet.symbol list list ->
  (Alphabet.symbol, Alphabet.output) Prognosis_synthesis.Ext_mealy.trace list
(** Replay the given abstract words through the adapter and convert the
    Oracle Table records into synthesis traces. *)

val synthesize :
  ?nregs:int ->
  result ->
  Alphabet.symbol list list ->
  ( (Alphabet.symbol, Alphabet.output) Prognosis_synthesis.Ext_mealy.t,
    string )
  Stdlib.result
(** Synthesize register updates and output terms over seq/ack numbers
    from witness traces for the given words. *)

val model_dot : model -> string
