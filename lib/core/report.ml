module Mealy = Prognosis_automata.Mealy
module Learn = Prognosis_learner.Learn
module Oracle = Prognosis_learner.Oracle
module Jsonx = Prognosis_obs.Jsonx
module Metrics = Prognosis_obs.Metrics

type t = {
  subject : string;
  algorithm : string;
  states : int;
  transitions : int;
  membership_queries : int;
  membership_symbols : int;
  cache_hits : int;
  cache_misses : int;
  equivalence_rounds : int;
  test_words : int;
  alphabet : int;
  exec : Jsonx.t option;
  identification : Jsonx.t option;
  service : Jsonx.t option;
}

let of_learn_result ~subject ~algorithm ?exec (r : ('i, 'o) Learn.result) =
  {
    subject;
    algorithm;
    states = Mealy.size r.Learn.model;
    transitions = Mealy.transitions r.Learn.model;
    membership_queries = r.Learn.stats.Oracle.membership_queries;
    membership_symbols = r.Learn.stats.Oracle.membership_symbols;
    (* the cache is the authoritative source for both numbers; the
       learning driver asserts membership_queries = cache_misses when
       caching is on *)
    cache_hits = r.Learn.cache_hits;
    cache_misses = r.Learn.cache_misses;
    equivalence_rounds = r.Learn.rounds;
    test_words = r.Learn.stats.Oracle.test_words;
    alphabet = Mealy.alphabet_size r.Learn.model;
    exec;
    identification = None;
    service = None;
  }

let with_identification ident t = { t with identification = Some ident }
let with_service service t = { t with service = Some service }

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let trace_count t ~max_len = Mealy.count_words ~alphabet:t.alphabet ~max_len

let pp fmt t =
  Format.fprintf fmt
    "%s (%s): %d states, %d transitions, %d membership queries (%d symbols, %d \
     cache hits / %d misses), %d equivalence rounds, %d test words"
    t.subject t.algorithm t.states t.transitions t.membership_queries
    t.membership_symbols t.cache_hits t.cache_misses t.equivalence_rounds
    t.test_words

let header =
  [
    "subject";
    "algorithm";
    "states";
    "transitions";
    "mem queries";
    "symbols";
    "cache hits";
    "cache misses";
    "eq rounds";
    "test words";
  ]

let to_row t =
  [
    t.subject;
    t.algorithm;
    string_of_int t.states;
    string_of_int t.transitions;
    string_of_int t.membership_queries;
    string_of_int t.membership_symbols;
    string_of_int t.cache_hits;
    string_of_int t.cache_misses;
    string_of_int t.equivalence_rounds;
    string_of_int t.test_words;
  ]

let to_json ?metrics t =
  let fields =
    [
      ("schema", Jsonx.String "prognosis.report/1");
      ("subject", Jsonx.String t.subject);
      ("algorithm", Jsonx.String t.algorithm);
      ("states", Jsonx.Int t.states);
      ("transitions", Jsonx.Int t.transitions);
      ("alphabet", Jsonx.Int t.alphabet);
      ("membership_queries", Jsonx.Int t.membership_queries);
      ("membership_symbols", Jsonx.Int t.membership_symbols);
      ("cache_hits", Jsonx.Int t.cache_hits);
      ("cache_misses", Jsonx.Int t.cache_misses);
      ("cache_hit_rate", Jsonx.Float (cache_hit_rate t));
      ("equivalence_rounds", Jsonx.Int t.equivalence_rounds);
      ("test_words", Jsonx.Int t.test_words);
    ]
  in
  let fields =
    match t.exec with
    | None -> fields
    | Some e -> fields @ [ ("exec", e) ]
  in
  let fields =
    match t.identification with
    | None -> fields
    | Some i -> fields @ [ ("identification", i) ]
  in
  let fields =
    match t.service with
    | None -> fields
    | Some s -> fields @ [ ("service", s) ]
  in
  let fields =
    match metrics with
    | None -> fields
    | Some m -> fields @ [ ("metrics", Metrics.to_json m) ]
  in
  Jsonx.Obj fields

let to_json_string ?metrics t = Jsonx.to_string (to_json ?metrics t)
