(** The QUIC case study pipeline (paper §6.2): learn models of the
    profiled QUIC servers, compare them, run the nondeterminism check,
    and synthesize the extended machine behind Issue 4. *)

module Alphabet = Prognosis_quic.Quic_alphabet
module Profile = Prognosis_quic.Quic_profile

type model = (Alphabet.symbol, Alphabet.output) Prognosis_automata.Mealy.t

type result = {
  model : model;
  report : Report.t;
  adapter :
    ( Alphabet.symbol,
      Alphabet.output,
      Prognosis_quic.Quic_packet.t,
      Prognosis_quic.Quic_packet.t )
    Prognosis_sul.Adapter.t;
  client : Prognosis_quic.Quic_client.t;
}

val learn :
  ?seed:int64 ->
  ?algorithm:Prognosis_learner.Learn.algorithm ->
  ?alphabet:Alphabet.symbol array ->
  ?client_config:Prognosis_quic.Quic_client.config ->
  ?exec:Prognosis_exec.Engine.config ->
  ?checkpoint:Prognosis_learner.Checkpoint.spec ->
  profile:Profile.t ->
  unit ->
  result
(** [alphabet] defaults to the paper's seven symbols
    ({!Alphabet.all}); pass {!Alphabet.extended} for the nine-symbol
    variant used by the alphabet-size ablation. With [?exec],
    membership queries run through the query-execution engine pool
    and the report carries an [exec] stats section. With [?checkpoint],
    the run snapshots and resumes per the spec (the checkpoint kind is
    profile-qualified, so a snapshot made against one profile refuses
    to resume another); may raise
    {!Prognosis_learner.Checkpoint.Budget_exhausted}. *)

val compare_profiles :
  ?seed:int64 ->
  Profile.t ->
  Profile.t ->
  (Alphabet.symbol, Alphabet.output) Prognosis_analysis.Model_diff.summary
(** Learn both and diff the models (the Issue-1/Issue-3 analysis). *)

val close_reset_rate : ?seed:int64 -> ?runs:int -> Profile.t -> float
(** The Issue-2 measurement: close the connection with a client-sent
    HANDSHAKE_DONE, then probe repeatedly and report the fraction of
    probes answered with a Stateless Reset (paper: 82% for mvfst). *)

(** {2 Issue-4 synthesis} *)

val input_field_names : string array
(** [pn; msd] — packet number and the Maximum Stream Data value carried
    by the packet (transport parameter or MAX_STREAM_DATA frame),
    0 when absent. *)

val output_field_names : string array
(** [pn; sdb] — packet number and the Maximum Stream Data field of a
    STREAM_DATA_BLOCKED frame, unconstrained when absent. *)

val synthesize_sdb :
  ?nregs:int ->
  result ->
  Alphabet.symbol list list ->
  ( (Alphabet.symbol, Alphabet.output) Prognosis_synthesis.Ext_mealy.t,
    string )
  Stdlib.result
(** Synthesize the extended machine over the STREAM_DATA_BLOCKED
    Maximum Stream Data field (paper Appendix B.1). *)

val sdb_verdict :
  (Alphabet.symbol, Alphabet.output) Prognosis_synthesis.Ext_mealy.t ->
  [ `Constant of int | `Symbolic | `Unobserved ]
(** Issue-4 detector on the synthesized machine: [`Constant 0] is the
    Google bug; a compliant implementation yields [`Symbolic]. *)

val packet_number_sequences : result -> Alphabet.symbol list list -> int list list
(** Per-query sequences of application-space packet numbers observed
    from the server (for the "packet numbers always increasing"
    property). *)

val model_dot : model -> string
