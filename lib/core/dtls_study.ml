module Rng = Prognosis_sul.Rng
module Adapter = Prognosis_sul.Adapter
module Learn = Prognosis_learner.Learn
module Eq_oracle = Prognosis_learner.Eq_oracle
module Checkpoint = Prognosis_learner.Checkpoint
module Alphabet = Prognosis_dtls.Dtls_alphabet

type model = (Alphabet.symbol, Alphabet.output) Prognosis_automata.Mealy.t

type result = {
  model : model;
  report : Report.t;
  adapter :
    ( Alphabet.symbol,
      Alphabet.output,
      Prognosis_dtls.Dtls_wire.record_,
      Prognosis_dtls.Dtls_wire.record_ )
    Adapter.t;
  client : Prognosis_dtls.Dtls_client.t;
}

let algorithm_name = function Learn.L_star -> "L*" | Learn.Ttt_tree -> "TTT"

(* The DTLS handshake needs five correct symbols in a row; random
   testing practically never finds that path, so the equivalence oracle
   is seeded with scenario words (the QUIC-Tracker approach) before the
   conformance and random phases. *)
let scenarios =
  Alphabet.
    [
      [ Client_hello; Client_hello; Client_key_exchange; Change_cipher_spec; Finished ];
      [
        Client_hello; Client_hello; Client_key_exchange; Change_cipher_spec;
        Finished; App_data; Alert_close; App_data;
      ];
      [
        Client_hello; Client_hello; Client_key_exchange; Change_cipher_spec;
        Finished; Finished; App_data;
      ];
      [ Client_hello; Client_key_exchange; Change_cipher_spec; Finished; App_data ];
    ]

let learn ?(seed = 1L) ?(algorithm = Learn.Ttt_tree) ?server_config ?exec
    ?checkpoint () =
  let module Metrics = Prognosis_obs.Metrics in
  Metrics.inc
    (Metrics.counter_l Metrics.default "study.learn_runs" [ ("study", "dtls") ]);
  let adapter, client = Prognosis_dtls.Dtls_adapter.create ?server_config ~seed () in
  let rng = Rng.create (Int64.add seed 7L) in
  let eq =
    Eq_oracle.combine
      [
        Eq_oracle.fixed_words scenarios;
        Eq_oracle.w_method ~extra_states:1 ();
        Eq_oracle.random_words ~rng ~max_tests:400 ~min_len:1 ~max_len:10;
      ]
  in
  let ck = Option.map (Checkpoint.start ~kind:"dtls") checkpoint in
  let result, exec_json =
    match exec with
    | None ->
        let sul = Adapter.to_sul adapter in
        (Learn.run ~algorithm ?checkpoint:ck ~inputs:Alphabet.all ~sul ~eq (), None)
    | Some config ->
        let module Engine = Prognosis_exec.Engine in
        let master = Rng.create seed in
        let wseeds =
          Array.map Rng.next64 (Rng.split_n master config.Engine.workers)
        in
        let factory i =
          Prognosis_dtls.Dtls_adapter.sul ?server_config ~seed:wseeds.(i) ()
        in
        let engine =
          Engine.create ~config ?cache:(Option.map Checkpoint.cache ck) ~factory ()
        in
        Option.iter
          (fun ck ->
            (match Checkpoint.exec_blob ck with
            | Some blob -> ( try Engine.thaw engine blob with Invalid_argument _ -> ())
            | None -> ());
            Checkpoint.set_exec_state ck (fun () -> Engine.freeze engine))
          ck;
        let r =
          Learn.run_mq ~algorithm ?checkpoint:ck
            ~cache_stats:(fun () -> Engine.cache_stats engine)
            ~inputs:Alphabet.all
            ~mq:(Engine.membership engine)
            ~eq ()
        in
        (r, Some (Engine.stats_json engine))
  in
  {
    model = result.Learn.model;
    report =
      Report.of_learn_result ~subject:"dtls" ~algorithm:(algorithm_name algorithm)
        ?exec:exec_json result;
    adapter;
    client;
  }

let model_dot model =
  Prognosis_analysis.Visualize.model_dot ~name:"dtls"
    ~input_pp:(fun fmt s -> Format.pp_print_string fmt (Alphabet.to_string s))
    ~output_pp:(fun fmt o -> Format.pp_print_string fmt (Alphabet.output_to_string o))
    model
