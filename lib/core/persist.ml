module Mealy = Prognosis_automata.Mealy

type kind = Tcp_model | Quic_model | Dtls_model | Tcp_client_model

let kind_to_string = function
  | Tcp_model -> "tcp"
  | Quic_model -> "quic"
  | Dtls_model -> "dtls"
  | Tcp_client_model -> "tcp-client"

let kind_of_string = function
  | "tcp" -> Some Tcp_model
  | "quic" -> Some Quic_model
  | "dtls" -> Some Dtls_model
  | "tcp-client" -> Some Tcp_client_model
  | _ -> None

let all_kinds = [ Tcp_model; Quic_model; Dtls_model; Tcp_client_model ]

type load_error =
  | Missing_file of { path : string; detail : string }
  | Foreign_magic of { path : string; found : string }
  | Kind_mismatch of { path : string; found : string; expected : string }
  | Version_mismatch of { path : string; found : string; running : string }
  | Corrupt of { path : string; detail : string }

let load_error_to_string = function
  | Missing_file { path = _; detail } -> detail
  | Foreign_magic { path; found = _ } -> path ^ ": not a prognosis model file"
  | Kind_mismatch { path; found; expected } ->
      Printf.sprintf "%s holds a %s model, expected %s" path found expected
  | Version_mismatch { path; found; running } ->
      Printf.sprintf
        "%s was written by OCaml %s; this binary runs %s (re-learn and \
         re-save)"
        path found running
  | Corrupt { path; detail } -> path ^ ": " ^ detail

(* --- the Marshal cache format (fast, local, version-locked) --- *)

let magic = "prognosis-model/1"

(* The payload is the raw Mealy record; private rows are reconstructed
   through Mealy.make on load so invariants are revalidated. *)
type ('i, 'o) payload = {
  size : int;
  initial : int;
  inputs : 'i array;
  delta : int array array;
  lambda : 'o array array;
}

let save ~path kind model =
  let payload =
    {
      size = Mealy.size model;
      initial = Mealy.initial model;
      inputs = Mealy.inputs model;
      delta =
        Array.init (Mealy.size model) (fun s ->
            Array.init (Mealy.alphabet_size model) (fun i ->
                fst (Mealy.step_idx model s i)));
      lambda =
        Array.init (Mealy.size model) (fun s ->
            Array.init (Mealy.alphabet_size model) (fun i ->
                snd (Mealy.step_idx model s i)));
    }
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (kind_to_string kind);
  Buffer.add_char buf '\n';
  Buffer.add_string buf Sys.ocaml_version;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Marshal.to_string payload []);
  (* temp-file + rename: a crash mid-save never leaves a truncated
     model where a good one may have stood *)
  Prognosis_obs.Atomic_file.write ~path (Buffer.contents buf)

let load ~path kind =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Missing_file { path; detail = msg })
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let read_line_opt () = try Some (input_line ic) with End_of_file -> None in
          match (read_line_opt (), read_line_opt (), read_line_opt ()) with
          | Some m, _, _ when m <> magic ->
              Error (Foreign_magic { path; found = m })
          | _, Some k, _ when k <> kind_to_string kind ->
              Error
                (Kind_mismatch
                   { path; found = k; expected = kind_to_string kind })
          | _, _, Some v when v <> Sys.ocaml_version ->
              Error
                (Version_mismatch { path; found = v; running = Sys.ocaml_version })
          | Some _, Some _, Some _ -> (
              match (Marshal.from_channel ic : ('i, 'o) payload) with
              | exception _ -> Error (Corrupt { path; detail = "corrupt payload" })
              | p ->
                  (try
                     Ok
                       (Mealy.make ~size:p.size ~initial:p.initial
                          ~inputs:p.inputs ~delta:p.delta ~lambda:p.lambda)
                   with Invalid_argument msg ->
                     Error (Corrupt { path; detail = "invalid machine: " ^ msg })))
          | _ -> Error (Corrupt { path; detail = "truncated header" }))

let load_tcp ~path = load ~path Tcp_model
let load_quic ~path = load ~path Quic_model
let load_dtls ~path = load ~path Dtls_model

(* --- the portable canonical textual format (prognosis.model/1) ---

   A line-oriented plain-text serialization meant to be committed,
   diffed and reviewed: symbols are printed one per line (a symbol is
   the whole line, so spaces inside symbols are harmless), outputs are
   interned into a lexicographically sorted table, and states are BFS
   renumbered after minimization — so two equivalent learned machines
   serialize to byte-identical files, on any OCaml version or
   architecture. *)

let text_magic = "prognosis.model/1"
let text_magic_prefix = "prognosis.model/"

let to_string_model ~input_to_string ~output_to_string model =
  let inputs = Array.map input_to_string (Mealy.inputs model) in
  let delta =
    Array.init (Mealy.size model) (fun s ->
        Array.init (Mealy.alphabet_size model) (fun i ->
            fst (Mealy.step_idx model s i)))
  in
  let lambda =
    Array.init (Mealy.size model) (fun s ->
        Array.init (Mealy.alphabet_size model) (fun i ->
            output_to_string (snd (Mealy.step_idx model s i))))
  in
  Mealy.make ~size:(Mealy.size model) ~initial:(Mealy.initial model) ~inputs
    ~delta ~lambda

let check_symbol what s =
  String.iter
    (fun c ->
      if c = '\n' || c = '\r' then
        invalid_arg
          (Printf.sprintf "Persist: %s symbol %S contains a line break" what s))
    s;
  s

let text_of_model ~kind ~input_to_string ~output_to_string model =
  let m =
    Mealy.canonicalize
      (Mealy.minimize (to_string_model ~input_to_string ~output_to_string model))
  in
  let n = Mealy.alphabet_size m in
  let inputs = Mealy.inputs m in
  Array.iter (fun s -> ignore (check_symbol "input" s)) inputs;
  (* Intern distinct outputs, indices assigned in sorted order. *)
  let outputs = Hashtbl.create 16 in
  for s = 0 to Mealy.size m - 1 do
    for i = 0 to n - 1 do
      Hashtbl.replace outputs (snd (Mealy.step_idx m s i)) ()
    done
  done;
  let out_table =
    List.sort String.compare (Hashtbl.fold (fun o () acc -> o :: acc) outputs [])
  in
  List.iter (fun o -> ignore (check_symbol "output" o)) out_table;
  let out_index = Hashtbl.create 16 in
  List.iteri (fun idx o -> Hashtbl.add out_index o idx) out_table;
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s" text_magic;
  line "kind %s" (kind_to_string kind);
  line "states %d" (Mealy.size m);
  line "initial %d" (Mealy.initial m);
  line "inputs %d" n;
  Array.iter (fun s -> line "%s" s) inputs;
  line "outputs %d" (List.length out_table);
  List.iter (fun o -> line "%s" o) out_table;
  line "transitions %d" (Mealy.transitions m);
  for s = 0 to Mealy.size m - 1 do
    for i = 0 to n - 1 do
      let s', o = Mealy.step_idx m s i in
      line "t %d %d %d %d" s i s' (Hashtbl.find out_index o)
    done
  done;
  line "end";
  Buffer.contents buf

let save_text ~path kind ~input_to_string ~output_to_string model =
  let text = text_of_model ~kind ~input_to_string ~output_to_string model in
  Prognosis_obs.Atomic_file.write ~path text

let parse_text ~path kind text =
  (* Errors carry the 1-based line number of the offending line, so a
     caller staring at a corrupt library of committed model files
     (`prognosis library build`) can pinpoint the damage. *)
  let lines = String.split_on_char '\n' text in
  (* A well-formed file ends with "end\n": drop the trailing "". *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let total = List.length lines in
  let corrupt_at line detail =
    Error (Corrupt { path; detail = Printf.sprintf "line %d: %s" line detail })
  in
  let ( let* ) = Result.bind in
  let pos = ref (List.mapi (fun i l -> (i + 1, l)) lines) in
  let next what =
    match !pos with
    | [] ->
        corrupt_at (total + 1)
          (Printf.sprintf "truncated file (expected %s)" what)
    | l :: rest ->
        pos := rest;
        Ok l
  in
  let field name =
    let* ln, l = next (name ^ " line") in
    match String.index_opt l ' ' with
    | Some i when String.sub l 0 i = name ->
        Ok (ln, String.sub l (i + 1) (String.length l - i - 1))
    | _ -> corrupt_at ln (Printf.sprintf "expected %S line, found %S" name l)
  in
  let int_field name =
    let* ln, v = field name in
    match int_of_string_opt v with
    | Some n -> Ok (ln, n)
    | None -> corrupt_at ln (Printf.sprintf "%s is not a number: %S" name v)
  in
  let* _, m = next "magic" in
  if m <> text_magic then
    if
      String.length m >= String.length text_magic_prefix
      && String.sub m 0 (String.length text_magic_prefix) = text_magic_prefix
    then Error (Version_mismatch { path; found = m; running = text_magic })
    else Error (Foreign_magic { path; found = m })
  else
    let* _, k = field "kind" in
    if k <> kind_to_string kind then
      Error (Kind_mismatch { path; found = k; expected = kind_to_string kind })
    else
      let* _, size = int_field "states" in
      let* _, initial = int_field "initial" in
      let* inputs_ln, n_inputs = int_field "inputs" in
      if n_inputs <= 0 then corrupt_at inputs_ln "empty input alphabet"
      else
        let rec read_symbols k acc =
          if k = 0 then Ok (List.rev acc)
          else
            let* _, l = next "symbol" in
            read_symbols (k - 1) (l :: acc)
        in
        let* inputs = read_symbols n_inputs [] in
        let* _, n_outputs = int_field "outputs" in
        let* out_table = read_symbols n_outputs [] in
        let out_table = Array.of_list out_table in
        let* trans_ln, n_trans = int_field "transitions" in
        if size <= 0 then corrupt_at trans_ln "no states"
        else if n_trans <> size * n_inputs then
          corrupt_at trans_ln
            (Printf.sprintf "transition count %d is not states*inputs = %d"
               n_trans (size * n_inputs))
        else begin
          let delta = Array.init size (fun _ -> Array.make n_inputs 0) in
          let lambda = Array.init size (fun _ -> Array.make n_inputs "") in
          let rec read_trans k =
            if k = 0 then Ok ()
            else
              let* ln, l = next "transition" in
              match String.split_on_char ' ' l with
              | [ "t"; s; i; s'; o ] -> (
                  match
                    ( int_of_string_opt s,
                      int_of_string_opt i,
                      int_of_string_opt s',
                      int_of_string_opt o )
                  with
                  | Some s, Some i, Some s', Some o
                    when s >= 0 && s < size && i >= 0 && i < n_inputs
                         && o >= 0 && o < n_outputs ->
                      delta.(s).(i) <- s';
                      lambda.(s).(i) <- out_table.(o);
                      read_trans (k - 1)
                  | _ -> corrupt_at ln (Printf.sprintf "bad transition line %S" l))
              | _ -> corrupt_at ln (Printf.sprintf "bad transition line %S" l)
          in
          let* () = read_trans n_trans in
          let* end_ln, e = next "end marker" in
          if e <> "end" then
            corrupt_at end_ln (Printf.sprintf "expected \"end\", found %S" e)
          else
            try
              Ok
                (Mealy.make ~size ~initial ~inputs:(Array.of_list inputs)
                   ~delta ~lambda)
            with Invalid_argument msg ->
              corrupt_at end_ln ("invalid machine: " ^ msg)
        end

let load_text ~path kind =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Missing_file { path; detail = msg })
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      parse_text ~path kind text
