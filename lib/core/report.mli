(** Learning reports: the quantities the paper's evaluation tabulates
    for each case study (§6.1, §6.2.2) — model size, membership-query
    counts, equivalence rounds — plus the trace-reduction figures
    derived from the learned model. *)

type t = {
  subject : string;  (** what was learned, e.g. "tcp" or "quic:mvfst-like" *)
  algorithm : string;
  states : int;
  transitions : int;
  membership_queries : int;  (** queries that reached the SUL *)
  membership_symbols : int;
  cache_hits : int;  (** from the query cache, the authoritative source *)
  cache_misses : int;
      (** equals [membership_queries] when learning ran with the cache;
          the driver asserts this *)
  equivalence_rounds : int;
  test_words : int;  (** words spent by equivalence testing *)
  alphabet : int;
  exec : Prognosis_obs.Jsonx.t option;
      (** query-execution engine stats ([prognosis.exec/1]) when
          learning ran through {!Prognosis_exec.Engine} *)
  identification : Prognosis_obs.Jsonx.t option;
      (** fingerprint-identification stats
          ([prognosis.identification/1]) when the run came from
          [prognosis identify] — see [lib/fingerprint] *)
  service : Prognosis_obs.Jsonx.t option;
      (** fleet-scheduler stats ([prognosis.service/1]) when the run
          came from [prognosis serve] — see [lib/service] *)
}

val of_learn_result :
  subject:string ->
  algorithm:string ->
  ?exec:Prognosis_obs.Jsonx.t ->
  ('i, 'o) Prognosis_learner.Learn.result ->
  t

val with_identification : Prognosis_obs.Jsonx.t -> t -> t
(** Attach a [prognosis.identification/1] block; {!to_json} then
    emits it as an ["identification"] field. *)

val with_service : Prognosis_obs.Jsonx.t -> t -> t
(** Attach a [prognosis.service/1] block; {!to_json} then emits it as
    a ["service"] field. *)

val trace_count : t -> max_len:int -> int
(** Number of input words of length ≤ [max_len] over this alphabet
    (the exhaustive-exploration cost the paper contrasts with). *)

val cache_hit_rate : t -> float
(** hits / (hits + misses); 0 when the cache was unused. *)

val pp : Format.formatter -> t -> unit
val to_row : t -> string list

val header : string list
(** Column names matching {!to_row}. *)

val to_json : ?metrics:Prognosis_obs.Metrics.t -> t -> Prognosis_obs.Jsonx.t
(** Machine-readable report ([schema] field ["prognosis.report/1"]).
    With [?metrics], folds a snapshot of the given registry into a
    ["metrics"] field — the same shape the CLI's [--metrics-out] and
    the bench harness's [BENCH_run.json] use. A report produced by an
    engine-backed run additionally carries an ["exec"] object (schema
    ["prognosis.exec/1"]). *)

val to_json_string : ?metrics:Prognosis_obs.Metrics.t -> t -> string
