module Mealy = Prognosis_automata.Mealy
module Rng = Prognosis_sul.Rng
module Adapter = Prognosis_sul.Adapter
module Oracle_table = Prognosis_sul.Oracle_table
module Learn = Prognosis_learner.Learn
module Eq_oracle = Prognosis_learner.Eq_oracle
module Checkpoint = Prognosis_learner.Checkpoint
module Ext_mealy = Prognosis_synthesis.Ext_mealy
module Synthesizer = Prognosis_synthesis.Synthesizer
module Wire = Prognosis_tcp.Tcp_wire
module Alphabet = Prognosis_tcp.Tcp_alphabet
module Tcp_adapter = Prognosis_tcp.Tcp_adapter

type model = (Alphabet.symbol, Alphabet.output) Mealy.t

type result = {
  model : model;
  report : Report.t;
  adapter : (Alphabet.symbol, Alphabet.output, Wire.segment, Wire.segment) Adapter.t;
}

let algorithm_name = function Learn.L_star -> "L*" | Learn.Ttt_tree -> "TTT"

let eq_oracle ~seed =
  let rng = Rng.create (Int64.add seed 7L) in
  Eq_oracle.combine
    [
      Eq_oracle.w_method ~extra_states:1 ();
      Eq_oracle.random_words ~rng ~max_tests:500 ~min_len:1 ~max_len:12;
    ]

let ckpt_kind = "tcp"

let learn ?(seed = 1L) ?(algorithm = Learn.Ttt_tree) ?server_config ?exec
    ?checkpoint () =
  let module Metrics = Prognosis_obs.Metrics in
  Metrics.inc
    (Metrics.counter_l Metrics.default "study.learn_runs" [ ("study", "tcp") ]);
  (* The adapter kept in the result records the Oracle Table for
     synthesis; with an engine the pool workers are separate instances
     and witness queries replay through this one. *)
  let adapter = Tcp_adapter.create ?server_config ~seed () in
  let eq = eq_oracle ~seed in
  let ck = Option.map (Checkpoint.start ~kind:ckpt_kind) checkpoint in
  let result, exec_json =
    match exec with
    | None ->
        let sul = Adapter.to_sul adapter in
        (Learn.run ~algorithm ?checkpoint:ck ~inputs:Alphabet.all ~sul ~eq (), None)
    | Some config ->
        let module Engine = Prognosis_exec.Engine in
        let master = Rng.create seed in
        let wseeds =
          Array.map Rng.next64
            (Rng.split_n master config.Engine.workers)
        in
        let factory i = Tcp_adapter.sul ?server_config ~seed:wseeds.(i) () in
        let engine =
          Engine.create ~config ?cache:(Option.map Checkpoint.cache ck) ~factory ()
        in
        Option.iter
          (fun ck ->
            (* A thaw failure only loses advisory robustness bookkeeping
               (a resumed run with a resized pool starts its strike
               counters fresh); the query cache is what matters. *)
            (match Checkpoint.exec_blob ck with
            | Some blob -> ( try Engine.thaw engine blob with Invalid_argument _ -> ())
            | None -> ());
            Checkpoint.set_exec_state ck (fun () -> Engine.freeze engine))
          ck;
        let r =
          Learn.run_mq ~algorithm ?checkpoint:ck
            ~cache_stats:(fun () -> Engine.cache_stats engine)
            ~inputs:Alphabet.all
            ~mq:(Engine.membership engine)
            ~eq ()
        in
        (r, Some (Engine.stats_json engine))
  in
  {
    model = result.Learn.model;
    report =
      Report.of_learn_result ~subject:"tcp" ~algorithm:(algorithm_name algorithm)
        ?exec:exec_json result;
    adapter;
  }

let input_field_names = [| "seq"; "ack"; "len" |]
let output_field_names = [| "seq"; "ack" |]

let fields_in (seg : Wire.segment) =
  [| seg.Wire.seq; seg.Wire.ack; String.length seg.Wire.payload |]

(* The server's initial sequence number is freshly random per
   connection and therefore inexpressible; only acknowledgement
   numbers are constrained (the paper's models likewise leave such
   parameters as '?'). *)
let fields_out (seg : Wire.segment) =
  [| None; (if seg.Wire.flags.Wire.ack then Some seg.Wire.ack else None) |]

let witness_traces result words =
  List.map
    (fun word ->
      let _ = Adapter.query result.adapter word in
      match Oracle_table.find result.adapter.Adapter.table word with
      | None -> invalid_arg "Tcp_study.witness_traces: query was not recorded"
      | Some entry ->
          List.map2
            (fun (sym, out) (step : _ Oracle_table.step) ->
              let fi =
                match step.Oracle_table.sent with
                | [ seg ] -> fields_in seg
                | _ -> [| 0; 0; 0 |]
              in
              let fo =
                match step.Oracle_table.received with
                | [] -> [| None; None |]
                | seg :: _ -> fields_out seg
              in
              { Ext_mealy.sym_in = sym; fields_in = fi; sym_out = out; fields_out = fo })
            (List.combine entry.Oracle_table.abstract_inputs
               entry.Oracle_table.abstract_outputs)
            entry.Oracle_table.steps)
    words

let synthesize ?(nregs = 1) result words =
  let traces = witness_traces result words in
  let cfg =
    {
      (Synthesizer.default_config ~nregs ~in_arity:3 ~out_arity:2) with
      Synthesizer.consts = [ 0 ];
    }
  in
  Synthesizer.solve cfg ~skeleton:result.model ~traces ()

let model_dot model =
  Prognosis_analysis.Visualize.model_dot ~name:"tcp"
    ~input_pp:(fun fmt s -> Format.pp_print_string fmt (Alphabet.to_string s))
    ~output_pp:(fun fmt o -> Format.pp_print_string fmt (Alphabet.output_to_string o))
    model
